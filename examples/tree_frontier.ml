(* Toward general trees (the paper's conclusion).

   Optimal scheduling on arbitrary trees of heterogeneous processors is the
   open problem the paper points at; its proposed attack is to cover the
   tree with structures it can schedule optimally.  This example walks that
   frontier on a concrete tree:

     - three spider covers (keep one child under every branching node),
       each scheduled optimally with the §7 algorithm;
     - the myopic forward heuristic that uses the whole tree;
     - the exhaustive FIFO search (exact within its class) on a small
       instance, to see how much the covers leave on the table;
     - the bandwidth-centric steady-state rate of the full tree, the
       asymptotic target no cover can beat.

   Run with: dune exec examples/tree_frontier.exe *)

let leaf ~latency ~work = Msts.Tree.node ~latency ~work ()

(* a two-level office network: two switches behind the master, machines of
   mixed speed behind each switch *)
let tree =
  Msts.Tree.make
    [
      Msts.Tree.node ~latency:1 ~work:6
        ~children:
          [ leaf ~latency:2 ~work:4; leaf ~latency:1 ~work:9; leaf ~latency:3 ~work:2 ]
        ();
      Msts.Tree.node ~latency:2 ~work:3
        ~children:[ leaf ~latency:1 ~work:5; leaf ~latency:4 ~work:2 ] ();
    ]

let () =
  Printf.printf "Tree platform: %s\n" (Msts.Tree.to_string tree);
  Printf.printf "%d processors, depth %d, steady-state rate %.3f tasks/unit\n\n"
    (Msts.Tree.processor_count tree) (Msts.Tree.depth tree)
    (Msts.Tree_steady.throughput tree);

  let n = 24 in
  let table =
    Msts.Table.create
      ~title:(Printf.sprintf "scheduling %d tasks on the tree" n)
      ~columns:[ "method"; "makespan"; "vs lower bound" ]
  in
  let lb = Msts.Tree_search.lower_bound tree n in
  let row name makespan =
    Msts.Table.add_row table
      [
        name;
        string_of_int makespan;
        Printf.sprintf "%.2fx" (float_of_int makespan /. float_of_int lb);
      ]
  in
  List.iter
    (fun (name, policy) -> row ("cover: " ^ name) (Msts.Tree_heuristics.spider_cover_makespan policy tree n))
    [
      ("fastest processor", Msts.Tree.Fastest_processor);
      ("cheapest link", Msts.Tree.Cheapest_link);
      ("best subtree rate", Msts.Tree.Best_rate);
    ];
  List.iter
    (fun policy ->
      row
        ("forward: " ^ Msts.Tree_heuristics.policy_name policy)
        (Msts.Tree_heuristics.makespan policy tree n))
    Msts.Tree_heuristics.all_policies;
  Msts.Table.add_row table [ "lower bound"; string_of_int lb; "1.00x" ];
  Msts.Table.print table;

  (* every cover schedule really is feasible on the tree *)
  let cover =
    Msts.Tree_heuristics.spider_cover Msts.Tree.Best_rate tree n
  in
  assert (Msts.Tree_schedule.is_feasible ~require_nonnegative:true cover);
  Printf.printf "\nBest-rate cover schedule uses nodes: %s\n"
    (String.concat ", "
       (List.filter_map
          (fun info ->
            let id = info.Msts.Tree_flat.id in
            if Msts.Tree_schedule.tasks_on cover id <> [] then
              Some (string_of_int id)
            else None)
          (Msts.Tree_flat.nodes (Msts.Tree_schedule.flat cover))));

  (* a tiny instance where we can afford the exhaustive FIFO search *)
  let small =
    Msts.Tree.make
      [
        Msts.Tree.node ~latency:1 ~work:3
          ~children:[ leaf ~latency:2 ~work:2 ] ();
        leaf ~latency:3 ~work:4;
      ]
  in
  let sn = 5 in
  Printf.printf "\nSmall tree %s, n=%d:\n" (Msts.Tree.to_string small) sn;
  Printf.printf "  exhaustive FIFO search: %d\n"
    (Msts.Tree_search.best_fifo_makespan small sn);
  let policy, cover_makespan = Msts.Tree_heuristics.best_cover small sn in
  Printf.printf "  best spider cover:      %d (%s)\n" cover_makespan
    (match policy with
    | Msts.Tree.Fastest_processor -> "fastest processor"
    | Msts.Tree.Cheapest_link -> "cheapest link"
    | Msts.Tree.Best_rate -> "best subtree rate");
  Printf.printf "  lower bound:            %d\n"
    (Msts.Tree_search.lower_bound small sn);
  print_endline
    "\nThe gap between the best cover and the search is the price of";
  print_endline
    "discarding subtrees -- the open problem the paper leaves for trees."
