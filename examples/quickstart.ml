(* Quickstart: schedule 8 identical tasks on a small heterogeneous chain,
   inspect the result, check it against Definition 1, and compare with what
   a naive forward heuristic would have done.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A chain of three workers behind the master: each pair is
     (link latency, per-task work time), nearest worker first. *)
  let chain = Msts.Chain.of_pairs [ (2, 5); (1, 4); (3, 3) ] in
  let n = 8 in

  (* The paper's algorithm: optimal makespan, O(n p^2). *)
  let schedule = Msts.Chain_algorithm.schedule chain n in
  Printf.printf "Optimal makespan for %d tasks: %d\n\n" n
    (Msts.Schedule.makespan schedule);
  print_endline (Msts.Schedule.to_string schedule);

  (* The feasibility checker shares no code with the constructor. *)
  assert (Msts.Feasibility.is_feasible ~require_nonnegative:true schedule);

  (* Where did each task go, and how busy was each processor? *)
  List.iter
    (fun k ->
      Printf.printf "processor %d runs tasks %s\n" k
        (String.concat ", "
           (List.map string_of_int (Msts.Schedule.tasks_on schedule k))))
    [ 1; 2; 3 ];

  print_newline ();
  print_endline (Msts.Gantt.render ~width:80 schedule);

  (* How much does optimality buy over sensible heuristics? *)
  print_newline ();
  List.iter
    (fun policy ->
      Printf.printf "%-22s -> makespan %d\n"
        (Msts.List_sched.chain_policy_name policy)
        (Msts.List_sched.chain_makespan policy chain n))
    Msts.List_sched.all_chain_policies;
  Printf.printf "%-22s -> makespan %d\n" "optimal (this paper)"
    (Msts.Schedule.makespan schedule)
