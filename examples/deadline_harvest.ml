(* Deadline harvesting (the §7 deadline variant).

   An operator has the platform until a hard deadline (say, until the lab
   reopens) and wants to finish as many work units as possible.  This
   example walks the deadline variant of the chain algorithm and its spider
   extension:

     - the task-count staircase as a function of the deadline;
     - its inverse consistency with the makespan variant (the least
       deadline admitting n tasks equals the optimal makespan for n);
     - the paper's own worked instance (Figure 2) re-done under a deadline,
       including the chain -> fork transformation of Figure 7.

   Run with: dune exec examples/deadline_harvest.exe *)

let () =
  (* The paper's Figure 2 chain. *)
  let chain = Msts.Chain.of_pairs [ (2, 3); (3, 5) ] in

  let table =
    Msts.Table.create ~title:"tasks harvested within a deadline (Fig. 2 chain)"
      ~columns:[ "deadline"; "tasks"; "makespan used" ]
  in
  List.iter
    (fun deadline ->
      let sched = Msts.Chain_deadline.schedule chain ~deadline in
      assert (Msts.Feasibility.meets_deadline sched ~deadline);
      Msts.Table.add_row table
        [
          string_of_int deadline;
          string_of_int (Msts.Schedule.task_count sched);
          string_of_int (Msts.Schedule.makespan sched);
        ])
    (Msts.Intx.range 4 20);
  Msts.Table.print table;

  (* Inverse consistency: least deadline fitting n = optimal makespan(n). *)
  print_newline ();
  List.iter
    (fun n ->
      let direct = Msts.Chain_algorithm.makespan chain n in
      let inverse = Msts.Chain_deadline.min_makespan_via_deadline chain n in
      Printf.printf "n=%2d  optimal makespan %2d  via deadline search %2d  %s\n" n
        direct inverse
        (if direct = inverse then "ok" else "MISMATCH");
      assert (direct = inverse))
    [ 1; 2; 3; 5; 8; 13 ];

  (* Figure 7: the chain seen by the master as a fork of single-task nodes. *)
  print_newline ();
  let deadline = 14 in
  let leg_schedule = Msts.Chain_deadline.schedule chain ~deadline in
  Printf.printf
    "Figure 7 reproduction: deadline %d fits %d tasks; virtual nodes:\n" deadline
    (Msts.Schedule.task_count leg_schedule);
  List.iter
    (fun v ->
      Printf.printf "  comm %d, remaining work %d (task %d of the leg schedule)\n"
        v.Msts.Fork_expansion.comm v.Msts.Fork_expansion.work
        (Msts.Spider_transform.task_of_rank leg_schedule
           ~rank:v.Msts.Fork_expansion.rank))
    (Msts.Spider_transform.virtual_nodes ~leg:1 ~deadline leg_schedule);

  (* The same harvest on a spider: two instruments share the master. *)
  print_newline ();
  let spider =
    Msts.Spider.of_legs [ chain; Msts.Chain.of_pairs [ (1, 4); (2, 6) ] ]
  in
  let table2 =
    Msts.Table.create ~title:"spider harvest (Fig. 2 chain + a second leg)"
      ~columns:[ "deadline"; "tasks"; "on leg 1"; "on leg 2" ]
  in
  List.iter
    (fun deadline ->
      let sched = Msts.Spider_algorithm.schedule spider ~deadline in
      assert (Msts.Spider_schedule.meets_deadline sched ~deadline);
      Msts.Table.add_row table2
        [
          string_of_int deadline;
          string_of_int (Msts.Spider_schedule.task_count sched);
          string_of_int (List.length (Msts.Spider_schedule.tasks_on_leg sched 1));
          string_of_int (List.length (Msts.Spider_schedule.tasks_on_leg sched 2));
        ])
    [ 6; 8; 10; 12; 14; 16; 20; 24 ];
  Msts.Table.print table2
