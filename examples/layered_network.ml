(* Layered networks reduced to heterogeneous chains (Li [7], cited in the
   paper's related work): a homogeneous grid traversed layer by layer
   behaves, from the master's point of view, like a heterogeneous chain in
   which layer k aggregates more processors (smaller effective work time)
   but sits behind k hops of latency.

   This example builds that reduction synthetically and asks the questions
   a deployment would: how deep into the network is it still worth sending
   tasks, and how does that depth grow with the batch size n?

   Run with: dune exec examples/layered_network.exe *)

(* Layer k of a W-wide grid: one hop of latency [hop] to cross, and an
   effective per-task work time of [ceil (w / min(k*fanout, W))] since the
   layer's machines drain tasks in parallel. *)
let layered_chain ~layers ~hop ~base_work ~fanout ~max_width =
  Msts.Chain.of_pairs
    (List.map
       (fun k ->
         let width = min (k * fanout) max_width in
         (hop, max 1 (Msts.Intx.ceil_div base_work width)))
       (Msts.Intx.range 1 layers))

let () =
  let layers = 8 in
  let chain = layered_chain ~layers ~hop:3 ~base_work:24 ~fanout:2 ~max_width:10 in
  Printf.printf "Reduced chain: %s\n\n" (Msts.Chain.to_string chain);

  let table =
    Msts.Table.create ~title:"how deep the batch reaches into the grid"
      ~columns:[ "n"; "makespan"; "deepest layer used"; "tasks per layer" ]
  in
  List.iter
    (fun n ->
      let sched = Msts.Chain_algorithm.schedule chain n in
      assert (Msts.Feasibility.is_feasible ~require_nonnegative:true sched);
      let per_layer =
        String.concat "/"
          (List.map string_of_int
             (Array.to_list (Msts.Chain_analysis.tasks_per_processor chain n)))
      in
      Msts.Table.add_row table
        [
          string_of_int n;
          string_of_int (Msts.Schedule.makespan sched);
          string_of_int (Msts.Chain_analysis.used_depth chain n);
          per_layer;
        ])
    [ 1; 2; 4; 8; 16; 32; 64 ];
  Msts.Table.print table;

  print_newline ();
  print_endline
    "Small batches stay shallow: the 3-unit hop dominates and remote layers";
  print_endline
    "cannot amortise their path latency.  As n grows, the first link's";
  print_endline
    "one-port rule saturates and the optimal schedule pushes work deeper --";
  print_endline
    "exactly the bandwidth-centric behaviour the steady-state analysis";
  Printf.printf
    "predicts (chain absorbs %.3f tasks/unit in the limit; saturation at link 1: %.3f).\n"
    (Msts.Steady_state.chain_throughput chain)
    (1.0 /. float_of_int (Msts.Chain.latency chain 1));

  (* Where the crossover happens for deep layers as the hop latency grows. *)
  let table2 =
    Msts.Table.create ~title:"hop latency vs useful depth (n = 32)"
      ~columns:[ "hop"; "makespan"; "deepest layer used" ]
  in
  List.iter
    (fun hop ->
      let chain = layered_chain ~layers ~hop ~base_work:24 ~fanout:2 ~max_width:10 in
      let sched = Msts.Chain_algorithm.schedule chain 32 in
      Msts.Table.add_row table2
        [
          string_of_int hop;
          string_of_int (Msts.Schedule.makespan sched);
          string_of_int (Msts.Chain_analysis.used_depth chain 32);
        ])
    [ 1; 2; 3; 5; 8; 12 ];
  Msts.Table.print table2
