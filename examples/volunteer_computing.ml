(* Volunteer computing (the paper's motivating scenario, SETI@home-style).

   A project master distributes equal-sized work units to heterogeneous
   volunteer pools.  Each pool is modelled as a spider leg: a campus relay
   that both computes and forwards to machines behind it.  We compare:

     - the optimal spider schedule (paper, §7);
     - the online demand-driven master actually used by volunteer projects
       (idle machine asks for work; first-come-first-served), simulated on
       the discrete-event substrate;
     - myopic forward heuristics;
     - the steady-state throughput bound, showing all of them converge to
       the same rate but differ in the transient.

   Run with: dune exec examples/volunteer_computing.exe *)

let platform =
  Msts.Spider.of_legs
    [
      (* campus lab: fast link, relay plus two workstations behind it *)
      Msts.Chain.of_pairs [ (1, 6); (2, 5); (2, 7) ];
      (* cable-modem volunteers: medium link, one relay, one slow box *)
      Msts.Chain.of_pairs [ (3, 4); (4, 9) ];
      (* DSL volunteer: slow link, fast machine *)
      Msts.Chain.of_pairs [ (5, 3) ];
    ]

let () =
  Printf.printf "Platform: %s\n" (Msts.Spider.to_string platform);
  Printf.printf "Processors: %d; steady-state capacity %.3f tasks/unit\n\n"
    (Msts.Spider.processor_count platform)
    (Msts.Steady_state.spider_throughput platform);

  let table =
    Msts.Table.create ~title:"work units served: optimal vs online vs heuristics"
      ~columns:
        [ "n"; "optimal"; "pull b=1"; "pull b=3"; "greedy ECT"; "round-robin"; "opt rate" ]
  in
  List.iter
    (fun n ->
      let optimal = Msts.Spider_algorithm.min_makespan platform n in
      let pull1 =
        Msts.Spider_schedule.makespan
          (Msts.Netsim.pull_policy ~buffer:1 platform ~tasks:n)
      in
      let pull3 =
        Msts.Spider_schedule.makespan
          (Msts.Netsim.pull_policy ~buffer:3 platform ~tasks:n)
      in
      let ect =
        Msts.List_sched.(spider_makespan Spider_earliest_completion) platform n
      in
      let rr = Msts.List_sched.(spider_makespan Spider_round_robin) platform n in
      Msts.Table.add_row table
        [
          string_of_int n;
          string_of_int optimal;
          string_of_int pull1;
          string_of_int pull3;
          string_of_int ect;
          string_of_int rr;
          Printf.sprintf "%.3f" (float_of_int n /. float_of_int optimal);
        ])
    [ 5; 10; 20; 40; 80; 160 ];
  Msts.Table.print table;

  print_newline ();
  Printf.printf
    "The optimal rate column approaches the steady-state capacity %.3f;\n"
    (Msts.Steady_state.spider_throughput platform);
  print_endline
    "the demand-driven master pays a constant-factor transient cost that";
  print_endline "larger per-node buffers only partially hide.";

  (* A small instance in full detail. *)
  let n = 12 in
  let sched = Msts.Spider_algorithm.schedule_tasks platform n in
  Printf.printf "\nOptimal schedule for %d work units (makespan %d):\n\n" n
    (Msts.Spider_schedule.makespan sched);
  print_endline (Msts.Gantt.render_spider ~width:90 sched);
  assert (Msts.Spider_schedule.is_feasible ~require_nonnegative:true sched)
