(* Benchmark and experiment harness.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig2      # one experiment by name
     dune exec bench/main.exe -- --list    # available names

   Reproduction experiments (DESIGN.md par.3) come first, then the
   ablations, then the Bechamel timing benches backing the complexity
   claims. *)

let registry = Experiments.all @ Ablations.all @ Faults.all @ Timing.all

let run_one (name, description, fn) =
  Printf.printf "\n==================== %s ====================\n" name;
  Printf.printf "-- %s\n\n" description;
  fn ();
  flush stdout

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--list" ] ->
      List.iter
        (fun (name, description, _) -> Printf.printf "%-20s %s\n" name description)
        registry
  | [] ->
      print_endline "msts reproduction harness: experiments, ablations, timing";
      List.iter run_one registry;
      print_endline "\nall experiments completed; assertions all held."
  | names ->
      List.iter
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) registry with
          | Some entry -> run_one entry
          | None ->
              Printf.eprintf "unknown experiment %S (try --list)\n" name;
              exit 2)
        names
