(* Benchmark and experiment harness.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig2      # one experiment by name
     dune exec bench/main.exe -- --list    # available names

   Reproduction experiments (DESIGN.md par.3) come first, then the
   ablations, then the Bechamel timing benches backing the complexity
   claims.

   Every experiment runs under an in-memory observability sink; its
   counter totals and span timings are written to BENCH_<name>.json so
   CI (and humans) can diff algorithmic work — candidate scans, hull
   updates, simulator events — across revisions, not just wall time. *)

let registry =
  Experiments.all @ Ablations.all @ Faults.all @ Fuzz.all @ Batch_bench.all
  @ Serve_bench.all @ Online_bench.all @ Timing.all

let counters_path name = Printf.sprintf "BENCH_%s.json" name

(* One-line latency digest: the dominant span (by total time) and the
   busiest histogram, with their p50/p99 — enough to eyeball a latency
   shift in CI logs without opening the JSON. *)
let latency_summary mem =
  let heaviest column rows =
    List.fold_left
      (fun acc row ->
        match (List.nth_opt row column, acc) with
        | Some v, Some (_, best) when int_of_string v <= best -> acc
        | Some v, _ -> Some (row, int_of_string v)
        | None, _ -> acc)
      None rows
  in
  let span =
    match heaviest 2 (Msts.Obs.Memory.span_rows mem) with
    | Some ([ name; calls; _; _; p50; p99 ], _) ->
        Some (Printf.sprintf "span %s: %s calls, p50=%sus p99=%sus" name calls p50 p99)
    | _ -> None
  in
  let hist =
    match heaviest 1 (Msts.Obs.Memory.histogram_rows mem) with
    | Some ([ name; count; p50; _; p99; _ ], _) ->
        Some (Printf.sprintf "hist %s: %s samples, p50=%s p99=%s" name count p50 p99)
    | _ -> None
  in
  match List.filter_map Fun.id [ span; hist ] with
  | [] -> "no instrumentation recorded"
  | parts -> String.concat "; " parts

let run_one (name, description, fn) =
  Printf.printf "\n==================== %s ====================\n" name;
  Printf.printf "-- %s\n\n" description;
  let mem = Msts.Obs.Memory.create () in
  let t0 = Unix.gettimeofday () in
  Msts.Obs.with_sink (Msts.Obs.Memory.sink mem) fn;
  let elapsed = Unix.gettimeofday () -. t0 in
  let summary = latency_summary mem in
  let json =
    Msts.Json.Obj
      [
        ("experiment", Msts.Json.String name);
        ("description", Msts.Json.String description);
        ("wall_s", Msts.Json.Float elapsed);
        ("summary", Msts.Json.String summary);
        ( "profile",
          Msts.Obs.Memory.to_json mem );
      ]
  in
  Out_channel.with_open_text (counters_path name) (fun oc ->
      Out_channel.output_string oc (Msts.Json.to_string ~pretty:true json);
      Out_channel.output_char oc '\n');
  let totals =
    List.map
      (function
        | [ counter; total ] -> Printf.sprintf "%s=%s" counter total
        | _ -> "?")
      (Msts.Obs.Memory.counter_rows mem)
  in
  if totals <> [] then
    Printf.printf "\n[obs] counters: %s\n" (String.concat " " totals);
  Printf.printf "[obs] latency: %s\n" summary;
  Printf.printf "[obs] profile written to %s\n" (counters_path name);
  flush stdout

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--list" ] ->
      List.iter
        (fun (name, description, _) -> Printf.printf "%-20s %s\n" name description)
        registry
  | [] ->
      print_endline "msts reproduction harness: experiments, ablations, timing";
      List.iter run_one registry;
      print_endline "\nall experiments completed; assertions all held."
  | names ->
      List.iter
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) registry with
          | Some entry -> run_one entry
          | None ->
              Printf.eprintf "unknown experiment %S (try --list)\n" name;
              exit 2)
        names
