(* fuzz-smoke: a deterministic, bounded slice of the trace-invariant fuzz
   campaign, sized for CI.  test/test_trace.ml runs the full QCheck
   harness (500+ interleavings); this stage replays a fixed seed so its
   output — including the `invariant violations: 0` line CI greps for —
   is byte-stable across runs. *)

let smoke () =
  let rng = Msts.Prng.create 20030815 in
  let runs = 120 in
  let violations = ref 0 in
  let events_total = ref 0 in
  let aborts = ref 0 in
  let returns = ref 0 in
  for i = 1 to runs do
    let spider =
      Msts.Generator.spider rng Msts.Generator.default_profile ~legs:3
        ~max_depth:3
    in
    let n = 1 + Msts.Prng.int rng 8 in
    let plan = Msts.Spider_algorithm.schedule_tasks spider n in
    let horizon = Msts.Spider_schedule.makespan plan + 5 in
    let trace =
      Msts.Fault.random rng spider ~events:(Msts.Prng.int rng 5) ~horizon
    in
    let recorder = Msts.Trace.Recorder.create () in
    let report =
      Msts.Trace.with_recorder recorder (fun () ->
          if i mod 2 = 0 then
            Msts.Netsim.replay_under_faults ~max_events:500_000 ~trace plan
          else
            Msts.Netsim.pull_under_faults ~max_events:500_000 ~trace spider
              ~tasks:n)
    in
    let tr = Msts.Trace.recorded recorder in
    events_total := !events_total + Msts.Trace.length tr;
    aborts := !aborts + report.Msts.Netsim.aborted_ops;
    returns := !returns + report.Msts.Netsim.returned_tasks;
    match Msts.Trace.check ~require_nonnegative:true tr with
    | [] -> ()
    | viols ->
        incr violations;
        print_endline (Msts.Trace.report tr viols)
  done;
  Printf.printf "fuzz-smoke: %d runs, %d trace events, %d aborts, %d returns\n"
    runs !events_total !aborts !returns;
  Printf.printf "invariant violations: %d\n" !violations;
  assert (!violations = 0);
  (* the checker must keep its teeth: two tasks emitted through the port
     at the same instant are rejected with a localized one-port violation *)
  let spider =
    Msts.Spider.make
      [| Msts.Chain.of_pairs [ (2, 3) ]; Msts.Chain.of_pairs [ (3, 4) ] |]
  in
  let entry leg start c0 =
    {
      Msts.Spider_schedule.address = { Msts.Spider.leg; depth = 1 };
      start;
      comms = [| c0 |];
    }
  in
  let bad = Msts.Spider_schedule.make spider [| entry 1 2 0; entry 2 3 0 |] in
  let bad_tr = Msts.Trace.of_plan (Msts.Plan.Spider bad) in
  let viols = Msts.Trace.check bad_tr in
  assert (List.exists (fun v -> v.Msts.Trace.invariant = "one-port") viols);
  assert (
    List.for_all
      (fun v -> Msts.Trace.length (Msts.Trace.localize bad_tr v) > 0)
      viols);
  print_endline "corrupted plan rejected: one-port violation localized"

let all : (string * string * (unit -> unit)) list =
  [
    ( "fuzz-smoke",
      "bounded trace-invariant fuzz campaign over fault runs (CI)",
      smoke );
  ]
