(* Load generator for `msts serve`.

   Four stages, all driving a real daemon (forked child running
   Msts_serve.Server.run on a throw-away Unix socket) through pipelined
   connections with bounded outstanding windows:

     serve-smoke     ~2k mixed requests with telemetry streaming on, then
                     a SIGTERM with in-flight requests — asserts the drain
                     contract (every written request answered, exit 0) and
                     recovers the serve.queue_wait_us / serve.batch_size
                     histograms from the telemetry JSONL.
     serve-scaling   100k mixed requests, latency histogram from
                     client-side timestamps, throughput gated per core.
     serve-mcore     the same compute-bound script against a jobs=1 and a
                     jobs=4 daemon; records the speedup and — on hosts
                     with >= 4 cores — gates it at 1.5x.
     serve-fairness  a greedy pipelining connection floods a lockstep
                     daemon while a polite connection does one-at-a-time
                     RPCs; the polite p99 latency must stay within 3x of
                     its uncontended baseline (deficit round robin at
                     work, where FIFO would give backlog-proportional
                     waits).

   Every request carries its index as the correlation id; responses are
   paired by id, so the control-operation fast path (ping/stats answered
   on receipt, overtaking queued solves) measures correctly.  Results
   accumulate into BENCH_serve.json: p50/p99 latency, per-core
   throughput, queue-wait histograms, speedup/fairness gates, and the
   drain audit.  MSTS_BENCH_REPORT_ONLY=1 downgrades every gate to a
   printed warning + JSON field (for cramped CI runners). *)

module Api = Msts.Api
module Json = Msts.Json
module Hist = Msts.Obs.Histogram

let window = 32
let drain_inflight = 100

(* Conservative floor: pings and mostly-cached solves over a local socket
   clear this by an order of magnitude even on a loaded 1-core runner. *)
let per_core_floor_rps = 200.0

(* MSTS_BENCH_REPORT_ONLY=1 turns every gate below into a warning: the
   numbers still land in BENCH_serve.json, the process still exits 0.
   Meant for CI smoke runs on 1–2 core shared runners where latency
   ratios and absolute throughput are hostage to noisy neighbours. *)
let report_only =
  match Sys.getenv_opt "MSTS_BENCH_REPORT_ONLY" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* Enforce a gate, or — report-only mode — print the failure and keep
   going.  Returns the verdict for the stage record. *)
let gate ~name ~ok message =
  if ok then Json.String "pass"
  else if report_only then begin
    Printf.printf "%s [report-only]: %s\n" name message;
    Json.String "report-only"
  end
  else failwith (Printf.sprintf "serve bench: %s: %s" name message)

let platforms =
  lazy
    (let profile = Msts.Generator.default_profile in
     [|
       Msts.Platform_format.Chain_platform
         (Msts.Generator.chain (Msts.Prng.create 11) profile ~p:3);
       Msts.Platform_format.Chain_platform
         (Msts.Generator.chain (Msts.Prng.create 12) profile ~p:4);
       Msts.Platform_format.Spider_platform
         (Msts.Generator.spider (Msts.Prng.create 13) profile ~legs:3
            ~max_depth:2);
       Msts.Platform_format.Fork_platform
         (Msts.Generator.fork (Msts.Prng.create 14) profile ~slaves:3);
     |])

(* The mixed script: mostly solves over a small platform/task rotation
   (cache hits and misses both exercised), a sprinkle of control ops. *)
let request i =
  let platforms = Lazy.force platforms in
  let platform = platforms.(i mod Array.length platforms) in
  let op =
    if i mod 101 = 0 then Api.Stats
    else
      match i mod 7 with
      | 0 -> Api.Ping
      | 1 | 2 | 3 ->
          Api.Schedule (Msts.Solve.problem ~tasks:(4 + (i mod 8)) platform)
      | 4 ->
          Api.Deadline (Msts.Solve.problem ~deadline:(40 + (i mod 50)) platform)
      | 5 -> Api.Metrics (Msts.Solve.problem ~tasks:(4 + (i mod 5)) platform)
      | _ ->
          Api.Schedule (Msts.Solve.problem ~tasks:(4 + ((i / 7) mod 8)) platform)
  in
  { Api.id = Some i; trace = None; op }

let sock_path stage = Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "msts-bench-%s-%d.sock" stage (Unix.getpid ()))

let start_daemon ~stage ?(engine = Msts_serve.Engine.default_config) ~telemetry
    () =
  let socket_path = sock_path stage in
  if Sys.file_exists socket_path then Sys.remove socket_path;
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let cfg =
        {
          (Msts_serve.Server.default_config ~socket_path) with
          engine;
          telemetry;
          quiet = true;
        }
      in
      (* _exit: skip the parent's at_exit machinery and buffered output *)
      let code = try Msts_serve.Server.run cfg with _ -> 125 in
      Unix._exit code
  | pid ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      while
        (not (Sys.file_exists socket_path))
        && Unix.gettimeofday () < deadline
      do
        ignore (Unix.select [] [] [] 0.02)
      done;
      if not (Sys.file_exists socket_path) then
        failwith "serve bench: daemon did not come up";
      (pid, socket_path)

let connect_or_fail socket_path =
  match Msts_serve.Client.connect socket_path with
  | Ok t -> t
  | Error msg -> failwith ("serve bench: " ^ msg)

let response_id line =
  match Api.response_of_line line with
  | Ok { Api.id = Some i; result; _ } -> (i, result)
  | Ok { Api.id = None; _ } -> failwith "serve bench: response without id"
  | Error e -> failwith ("serve bench: unreadable response: " ^ e.Api.message)

(* Pipelined replay: keep at most [window] requests outstanding, pair
   responses by id, return the latency histogram and wall time. *)
let replay ?(script = request) client ~total =
  let send_at = Array.make total 0.0 in
  let seen = Array.make total false in
  let latency = Hist.create () in
  let errors = ref 0 in
  let t0 = Unix.gettimeofday () in
  let rec loop sent received =
    if received < total then
      if sent < total && sent - received < window then begin
        send_at.(sent) <- Unix.gettimeofday ();
        Msts_serve.Client.send_line client (Api.request_to_line (script sent));
        loop (sent + 1) received
      end
      else begin
        match Msts_serve.Client.recv_line client with
        | None -> failwith "serve bench: server closed mid-replay"
        | Some line ->
            let i, result = response_id line in
            if seen.(i) then failwith "serve bench: duplicate response id";
            seen.(i) <- true;
            (match result with Ok _ -> () | Error _ -> incr errors);
            Hist.add latency
              (int_of_float ((Unix.gettimeofday () -. send_at.(i)) *. 1e6));
            loop sent (received + 1)
      end
  in
  loop 0 0;
  let wall = Unix.gettimeofday () -. t0 in
  Array.iteri
    (fun i ok -> if not ok then failwith (Printf.sprintf "serve bench: response %d dropped" i))
    seen;
  if !errors > 0 then
    failwith (Printf.sprintf "serve bench: %d error responses" !errors);
  (latency, wall)

(* Lockstep exchange on an otherwise-quiet connection (the replay has
   fully drained, so the next received line answers the sent frame). *)
let exchange client frame =
  Msts_serve.Client.send_line client frame;
  match Msts_serve.Client.recv_line client with
  | Some line -> line
  | None -> failwith "serve bench: server closed during audit"

let payload_of_line line =
  match Api.response_of_line line with
  | Ok { Api.result = Ok payload; _ } -> payload
  | Ok { Api.result = Error e; _ } ->
      failwith ("serve bench: audit request refused: " ^ e.Api.message)
  | Error e -> failwith ("serve bench: unreadable audit response: " ^ e.Api.message)

let member_exn what json name =
  match Json.member name json with
  | Some v -> v
  | None -> failwith (Printf.sprintf "serve bench: %s lacks %S" what name)

(* Post-replay observability audit: the slow-request log must stay at its
   top-K cap (no growth across the whole replay), the per-request
   queue-wait histogram must count exactly the dispatched solves, and the
   Prometheus exposition's global serve.queue_wait_us family must agree —
   the same requests, tallied in two independent layers.  Returns extra
   fields for the stage record, including the mean scrape cost. *)
let observability_audit client ~total =
  let expected_solves =
    let n = ref 0 in
    for i = 0 to total - 1 do
      if i mod 101 <> 0 && i mod 7 <> 0 then incr n
    done;
    !n
  in
  let stats = payload_of_line (exchange client {|{"op":"stats"}|}) in
  let slow =
    match member_exn "stats" stats "slow_requests" with
    | Json.List l -> List.length l
    | _ -> failwith "serve bench: slow_requests is not a list"
  in
  if slow > 16 then
    failwith
      (Printf.sprintf "serve bench: slow-request log grew to %d (cap 16)" slow);
  let request_count =
    match
      member_exn "request.queue_wait_us"
        (member_exn "stats.request"
           (member_exn "stats" stats "request")
           "queue_wait_us")
        "count"
    with
    | Json.Int n -> n
    | _ -> failwith "serve bench: request histogram count is not an int"
  in
  if request_count <> expected_solves then
    failwith
      (Printf.sprintf
         "serve bench: request.queue_wait_us counted %d, %d solves dispatched"
         request_count expected_solves);
  let scrapes = 20 in
  let scrape_us = ref 0 in
  let body = ref "" in
  for _ = 1 to scrapes do
    let t0 = Unix.gettimeofday () in
    let payload = payload_of_line (exchange client {|{"op":"metrics"}|}) in
    scrape_us := !scrape_us + int_of_float ((Unix.gettimeofday () -. t0) *. 1e6);
    match member_exn "metrics" payload "body" with
    | Json.String b -> body := b
    | _ -> failwith "serve bench: metrics body is not a string"
  done;
  let exposed_count =
    let prefix = "msts_serve_queue_wait_us_count " in
    let found = ref None in
    String.split_on_char '\n' !body
    |> List.iter (fun line ->
           if String.starts_with ~prefix line then
             found :=
               Some
                 (int_of_string
                    (String.sub line (String.length prefix)
                       (String.length line - String.length prefix))));
    match !found with
    | Some n -> n
    | None -> failwith "serve bench: exposition lost msts_serve_queue_wait_us"
  in
  if exposed_count <> request_count then
    failwith
      (Printf.sprintf
         "serve bench: exposition counted %d queue waits, stats counted %d"
         exposed_count request_count);
  [
    ("slow_requests", Json.Int slow);
    ("metrics_scrape_us", Json.Int (!scrape_us / scrapes));
  ]

(* The drain contract: write [drain_inflight] frames, SIGTERM the daemon
   with them still unanswered, and demand every one of them back plus a
   clean EOF and exit 0. *)
let sigterm_drain client pid ~offset =
  for i = offset to offset + drain_inflight - 1 do
    Msts_serve.Client.send_line client (Api.request_to_line (request i))
  done;
  Unix.kill pid Sys.sigterm;
  let got = ref 0 in
  (try
     while !got < drain_inflight do
       match Msts_serve.Client.recv_line client with
       | None -> raise Exit
       | Some line ->
           let i, _ = response_id line in
           if i >= offset && i < offset + drain_inflight then incr got
     done
   with Exit -> ());
  if !got <> drain_inflight then
    failwith
      (Printf.sprintf "serve bench: SIGTERM dropped %d in-flight request(s)"
         (drain_inflight - !got));
  (match Msts_serve.Client.recv_line client with
  | None -> ()
  | Some _ -> failwith "serve bench: frames past the drain");
  Msts_serve.Client.close client;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n ->
      failwith (Printf.sprintf "serve bench: daemon exited %d" n)
  | _ -> failwith "serve bench: daemon died on a signal"

(* Recover the daemon-side histograms from the telemetry JSONL. *)
let telemetry_histograms path =
  let hists = Hashtbl.create 8 in
  In_channel.with_open_text path (fun ic ->
      let rec go () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
            (match Json.parse line with
            | Ok json -> (
                match
                  (Json.member "ev" json, Json.member "name" json,
                   Json.member "value" json)
                with
                | Some (Json.String "V"), Some (Json.String name),
                  Some (Json.Int v) ->
                    let h =
                      match Hashtbl.find_opt hists name with
                      | Some h -> h
                      | None ->
                          let h = Hist.create () in
                          Hashtbl.add hists name h;
                          h
                    in
                    Hist.add h v
                | _ -> ())
            | Error _ -> ());
            go ()
      in
      go ());
  hists

(* Both stages accumulate here; the file is rewritten after each so a
   solo run still produces a valid artefact. *)
let sections : (string * Json.t) list ref = ref []

let write_bench () =
  let json = Json.Obj (("bench", Json.String "serve") :: List.rev !sections) in
  Out_channel.with_open_text "BENCH_serve.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string ~pretty:true json);
      Out_channel.output_char oc '\n')

let stage_json ~jobs ~total ~latency ~wall ~extra =
  let throughput = float_of_int (total + drain_inflight) /. wall in
  (* Per-core divides by the daemon's actual worker count, not a
     hard-coded 1: the figure stays honest when a stage runs jobs>1. *)
  let per_core = throughput /. float_of_int jobs in
  let verdict =
    gate ~name:"per-core floor" ~ok:(per_core >= per_core_floor_rps)
      (Printf.sprintf "throughput %.0f rps/core below floor %.0f" per_core
         per_core_floor_rps)
  in
  Json.Obj
    ([
       ("requests", Json.Int total);
       ("drain_inflight", Json.Int drain_inflight);
       ("jobs", Json.Int jobs);
       ("wall_s", Json.Float wall);
       ("throughput_rps", Json.Float throughput);
       ("per_core_throughput_rps", Json.Float per_core);
       ("per_core_floor_gate", verdict);
       ("latency_us", Hist.to_json latency);
       ("p50_us", Json.Int (Hist.quantile latency 0.5));
       ("p99_us", Json.Int (Hist.quantile latency 0.99));
       ("dropped_in_flight", Json.Int 0);
     ]
    @ extra)

let run_stage ~stage ~total ~with_telemetry =
  let telemetry =
    if with_telemetry then
      Some (Filename.temp_file "msts-serve-telemetry" ".jsonl")
    else None
  in
  let pid, socket_path = start_daemon ~stage ~telemetry () in
  let finish () = if Sys.file_exists socket_path then Sys.remove socket_path in
  Fun.protect ~finally:finish @@ fun () ->
  let client = connect_or_fail socket_path in
  let t0 = Unix.gettimeofday () in
  let latency, _replay_wall = replay client ~total in
  let audit_t0 = Unix.gettimeofday () in
  let audit = observability_audit client ~total in
  let audit_wall = Unix.gettimeofday () -. audit_t0 in
  sigterm_drain client pid ~offset:total;
  (* The audit's lockstep exchanges are not load; keep the throughput
     figure about the replay + drain. *)
  let wall = Unix.gettimeofday () -. t0 -. audit_wall in
  let extra =
    match telemetry with
    | None -> []
    | Some path ->
        let hists = telemetry_histograms path in
        let take name =
          match Hashtbl.find_opt hists name with
          | Some h -> [ (name, Hist.to_json h) ]
          | None -> failwith ("serve bench: telemetry lost " ^ name)
        in
        Sys.remove path;
        take "serve.queue_wait_us" @ take "serve.batch_size"
  in
  let extra = extra @ audit in
  sections := (stage, stage_json ~jobs:1 ~total ~latency ~wall ~extra) :: !sections;
  write_bench ();
  Printf.printf
    "%s: %d requests + %d in-flight at SIGTERM, all answered; p50=%dus p99=%dus\n"
    stage total drain_inflight (Hist.quantile latency 0.5)
    (Hist.quantile latency 0.99)

let smoke () = run_stage ~stage:"smoke" ~total:2_000 ~with_telemetry:true
let scaling () = run_stage ~stage:"scaling" ~total:100_000 ~with_telemetry:false

(* ---------- compute-bound stages: serve-mcore, serve-fairness ---------- *)

(* A spider large enough that one cold solve costs milliseconds: queue
   position, not socket round-trips, dominates the latencies measured
   below.  The task count is calibrated at runtime so the stages stay
   meaningful across hosts of very different speeds. *)
let heavy_platform =
  lazy
    (Msts.Platform_format.Spider_platform
       (Msts.Generator.spider (Msts.Prng.create 21)
          Msts.Generator.compute_bound_profile ~legs:4 ~max_depth:3))

let heavy_problem ~tasks = Msts.Solve.problem ~tasks (Lazy.force heavy_platform)

let heavy_solve_us ~tasks =
  let t0 = Unix.gettimeofday () in
  (match Msts.Solve.solve (heavy_problem ~tasks) with
  | Ok _ -> ()
  | Error msg -> failwith ("serve bench: heavy solve failed: " ^ msg));
  int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)

(* Double the task count until one cold solve crosses [target_us].  The
   cap keeps the stage bounded on very fast hosts going very wrong. *)
let calibrate_heavy ~target_us =
  let rec go tasks =
    let us = heavy_solve_us ~tasks in
    if us >= target_us || tasks >= 2048 then (tasks, us) else go (tasks * 2)
  in
  go 64

(* Clean shutdown for stages that already drained every response:
   SIGTERM, demand an immediate EOF and exit 0. *)
let stop_daemon client pid =
  Unix.kill pid Sys.sigterm;
  (match Msts_serve.Client.recv_line client with
  | None -> ()
  | Some _ -> failwith "serve bench: unexpected frame after the drain");
  Msts_serve.Client.close client;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n ->
      failwith (Printf.sprintf "serve bench: daemon exited %d" n)
  | _ -> failwith "serve bench: daemon died on a signal"

(* The same compute-bound script (every problem distinct, so the solve
   cache never short-circuits a request) against a jobs=1 and a jobs=4
   daemon.  On hosts with >= 4 cores the speedup gates at 1.5x; below
   that the figure is recorded but cannot mean anything, so the gate
   reports itself skipped. *)
let mcore () =
  let cores = Domain.recommended_domain_count () in
  let tasks, solve_us = calibrate_heavy ~target_us:3_000 in
  let total = 48 in
  let script i =
    { Api.id = Some i; trace = None;
      op = Api.Schedule (heavy_problem ~tasks:(tasks + i)) }
  in
  let run jobs =
    let pid, socket_path =
      start_daemon
        ~stage:(Printf.sprintf "mcore%d" jobs)
        ~engine:{ Msts_serve.Engine.default_config with jobs }
        ~telemetry:None ()
    in
    let finish () =
      if Sys.file_exists socket_path then Sys.remove socket_path
    in
    Fun.protect ~finally:finish @@ fun () ->
    let client = connect_or_fail socket_path in
    let latency, wall = replay ~script client ~total in
    stop_daemon client pid;
    (float_of_int total /. wall, latency)
  in
  let rps1, latency1 = run 1 in
  let rps4, latency4 = run 4 in
  let speedup = rps4 /. rps1 in
  let verdict =
    if cores >= 4 then
      gate ~name:"multi-core speedup" ~ok:(speedup >= 1.5)
        (Printf.sprintf "jobs=4 gave %.2fx over jobs=1 (want >= 1.5x)" speedup)
    else Json.String (Printf.sprintf "skipped (%d core(s) < 4)" cores)
  in
  sections :=
    ( "mcore",
      Json.Obj
        [
          ("cores", Json.Int cores);
          ("requests", Json.Int total);
          ("solve_tasks", Json.Int tasks);
          ("solve_us_calibrated", Json.Int solve_us);
          ("jobs1_throughput_rps", Json.Float rps1);
          ("jobs4_throughput_rps", Json.Float rps4);
          ("jobs4_per_core_throughput_rps", Json.Float (rps4 /. 4.0));
          ("speedup", Json.Float speedup);
          ("speedup_gate", verdict);
          ("jobs1_p99_us", Json.Int (Hist.quantile latency1 0.99));
          ("jobs4_p99_us", Json.Int (Hist.quantile latency4 0.99));
        ] )
    :: !sections;
  write_bench ();
  Printf.printf
    "mcore: %d cores, solve ~%dus; jobs=1 %.0f rps, jobs=4 %.0f rps (%.2fx)\n"
    cores solve_us rps1 rps4 speedup

(* One greedy connection floods a lockstep daemon (max_inflight=1,
   max_batch=1, cache_capacity=1 so every request is a real solve) while
   a polite connection keeps doing one-at-a-time RPCs.  Deficit round
   robin bounds the polite wait by the connection count: its p99 must
   stay within 3x of the uncontended baseline, where FIFO would put it
   at backlog x solve time (~100x here). *)
let fairness () =
  let tasks, solve_us = calibrate_heavy ~target_us:3_000 in
  let engine =
    {
      Msts_serve.Engine.default_config with
      cache_capacity = 1;
      max_batch = 1;
      max_inflight = 1;
    }
  in
  let pid, socket_path =
    start_daemon ~stage:"fairness" ~engine ~telemetry:None ()
  in
  let finish () = if Sys.file_exists socket_path then Sys.remove socket_path in
  Fun.protect ~finally:finish @@ fun () ->
  let polite = connect_or_fail socket_path in
  (* Globally unique ids; tasks cycle over a per-connection 4-value band
     so adjacent solves never share a fingerprint (the capacity-1 cache
     stays cold, and polite requests can never ride a greedy solve's
     cache entry) while the per-solve cost stays flat. *)
  let next = ref 0 in
  let fresh_heavy ~band =
    let k = !next in
    incr next;
    { Api.id = Some k; trace = None;
      op = Api.Schedule (heavy_problem ~tasks:(tasks + band + (k mod 4))) }
  in
  let polite_rounds = 40 in
  let lockstep () =
    let hist = Hist.create () in
    for _ = 1 to polite_rounds do
      let frame = Api.request_to_line (fresh_heavy ~band:0) in
      let t0 = Unix.gettimeofday () in
      (match Api.response_of_line (exchange polite frame) with
      | Ok { Api.result = Ok _; _ } -> ()
      | Ok { Api.result = Error e; _ } ->
          failwith ("serve bench: polite request refused: " ^ e.Api.message)
      | Error e ->
          failwith ("serve bench: unreadable polite response: " ^ e.Api.message));
      Hist.add hist (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))
    done;
    hist
  in
  let baseline = lockstep () in
  let greedy = connect_or_fail socket_path in
  let backlog = 96 in
  for _ = 1 to backlog do
    Msts_serve.Client.send_line greedy
      (Api.request_to_line (fresh_heavy ~band:8))
  done;
  let contended = lockstep () in
  (* Server-side evidence for the record: per-connection queue waits,
     deficits and delivery counts as the scheduler saw them. *)
  let connections =
    member_exn "stats"
      (payload_of_line (exchange polite {|{"op":"stats"}|}))
      "connections"
  in
  let drained = ref 0 in
  while !drained < backlog do
    match Msts_serve.Client.recv_line greedy with
    | None -> failwith "serve bench: greedy connection lost responses"
    | Some line ->
        (match response_id line with
        | _, Ok _ -> incr drained
        | _, Error e ->
            failwith ("serve bench: greedy request refused: " ^ e.Api.message))
  done;
  Msts_serve.Client.close greedy;
  stop_daemon polite pid;
  let p99_base = Hist.quantile baseline 0.99 in
  let p99_cont = Hist.quantile contended 0.99 in
  let ratio = float_of_int p99_cont /. float_of_int (max 1 p99_base) in
  let verdict =
    gate ~name:"fairness" ~ok:(ratio <= 3.0)
      (Printf.sprintf
         "contended polite p99 %dus is %.2fx the uncontended %dus (want <= 3x)"
         p99_cont ratio p99_base)
  in
  sections :=
    ( "fairness",
      Json.Obj
        [
          ("solve_tasks", Json.Int tasks);
          ("solve_us_calibrated", Json.Int solve_us);
          ("polite_rounds", Json.Int polite_rounds);
          ("greedy_backlog", Json.Int backlog);
          ("baseline_p50_us", Json.Int (Hist.quantile baseline 0.5));
          ("baseline_p99_us", Json.Int p99_base);
          ("contended_p50_us", Json.Int (Hist.quantile contended 0.5));
          ("contended_p99_us", Json.Int p99_cont);
          ("p99_ratio", Json.Float ratio);
          ("fairness_gate", verdict);
          ("connections", connections);
        ] )
    :: !sections;
  write_bench ();
  Printf.printf
    "fairness: solve ~%dus; polite p99 %dus uncontended, %dus against %d greedy (%.2fx)\n"
    solve_us p99_base p99_cont backlog ratio

let all =
  [
    ( "serve-smoke",
      "boot msts serve, replay a small mixed script, audit the SIGTERM drain",
      smoke );
    ( "serve-scaling",
      "100k-request mixed replay against msts serve; per-core throughput gate",
      scaling );
    ( "serve-mcore",
      "compute-bound replay against jobs=1 and jobs=4 daemons; speedup gate on >=4-core hosts",
      mcore );
    ( "serve-fairness",
      "greedy flood vs polite lockstep RPCs; polite p99 within 3x of uncontended",
      fairness );
  ]
