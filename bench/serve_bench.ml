(* Load generator for `msts serve`.

   Two stages, both driving a real daemon (forked child running
   Msts_serve.Server.run on a throw-away Unix socket) through a single
   pipelined connection with a bounded outstanding window:

     serve-smoke    ~2k mixed requests with telemetry streaming on, then
                    a SIGTERM with in-flight requests — asserts the drain
                    contract (every written request answered, exit 0) and
                    recovers the serve.queue_wait_us / serve.batch_size
                    histograms from the telemetry JSONL.
     serve-scaling  100k mixed requests, latency histogram from client-side
                    timestamps, throughput gated per core (the CI host has
                    one; raw speedup would be meaningless there).

   Every request carries its index as the correlation id; responses are
   paired by id, so the control-operation fast path (ping/stats answered
   on receipt, overtaking queued solves) measures correctly.  Results
   accumulate into BENCH_serve.json: p50/p99 latency, per-core
   throughput, queue-wait histograms, and the drain audit. *)

module Api = Msts.Api
module Json = Msts.Json
module Hist = Msts.Obs.Histogram

let window = 32
let drain_inflight = 100

(* Conservative floor: pings and mostly-cached solves over a local socket
   clear this by an order of magnitude even on a loaded 1-core runner. *)
let per_core_floor_rps = 200.0

let platforms =
  lazy
    (let profile = Msts.Generator.default_profile in
     [|
       Msts.Platform_format.Chain_platform
         (Msts.Generator.chain (Msts.Prng.create 11) profile ~p:3);
       Msts.Platform_format.Chain_platform
         (Msts.Generator.chain (Msts.Prng.create 12) profile ~p:4);
       Msts.Platform_format.Spider_platform
         (Msts.Generator.spider (Msts.Prng.create 13) profile ~legs:3
            ~max_depth:2);
       Msts.Platform_format.Fork_platform
         (Msts.Generator.fork (Msts.Prng.create 14) profile ~slaves:3);
     |])

(* The mixed script: mostly solves over a small platform/task rotation
   (cache hits and misses both exercised), a sprinkle of control ops. *)
let request i =
  let platforms = Lazy.force platforms in
  let platform = platforms.(i mod Array.length platforms) in
  let op =
    if i mod 101 = 0 then Api.Stats
    else
      match i mod 7 with
      | 0 -> Api.Ping
      | 1 | 2 | 3 ->
          Api.Schedule (Msts.Solve.problem ~tasks:(4 + (i mod 8)) platform)
      | 4 ->
          Api.Deadline (Msts.Solve.problem ~deadline:(40 + (i mod 50)) platform)
      | 5 -> Api.Metrics (Msts.Solve.problem ~tasks:(4 + (i mod 5)) platform)
      | _ ->
          Api.Schedule (Msts.Solve.problem ~tasks:(4 + ((i / 7) mod 8)) platform)
  in
  { Api.id = Some i; trace = None; op }

let sock_path stage = Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "msts-bench-%s-%d.sock" stage (Unix.getpid ()))

let start_daemon ~stage ~telemetry =
  let socket_path = sock_path stage in
  if Sys.file_exists socket_path then Sys.remove socket_path;
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let cfg =
        {
          (Msts_serve.Server.default_config ~socket_path) with
          telemetry;
          quiet = true;
        }
      in
      (* _exit: skip the parent's at_exit machinery and buffered output *)
      let code = try Msts_serve.Server.run cfg with _ -> 125 in
      Unix._exit code
  | pid ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      while
        (not (Sys.file_exists socket_path))
        && Unix.gettimeofday () < deadline
      do
        ignore (Unix.select [] [] [] 0.02)
      done;
      if not (Sys.file_exists socket_path) then
        failwith "serve bench: daemon did not come up";
      (pid, socket_path)

let connect_or_fail socket_path =
  match Msts_serve.Client.connect socket_path with
  | Ok t -> t
  | Error msg -> failwith ("serve bench: " ^ msg)

let response_id line =
  match Api.response_of_line line with
  | Ok { Api.id = Some i; result; _ } -> (i, result)
  | Ok { Api.id = None; _ } -> failwith "serve bench: response without id"
  | Error e -> failwith ("serve bench: unreadable response: " ^ e.Api.message)

(* Pipelined replay: keep at most [window] requests outstanding, pair
   responses by id, return the latency histogram and wall time. *)
let replay client ~total =
  let send_at = Array.make total 0.0 in
  let seen = Array.make total false in
  let latency = Hist.create () in
  let errors = ref 0 in
  let t0 = Unix.gettimeofday () in
  let rec loop sent received =
    if received < total then
      if sent < total && sent - received < window then begin
        send_at.(sent) <- Unix.gettimeofday ();
        Msts_serve.Client.send_line client (Api.request_to_line (request sent));
        loop (sent + 1) received
      end
      else begin
        match Msts_serve.Client.recv_line client with
        | None -> failwith "serve bench: server closed mid-replay"
        | Some line ->
            let i, result = response_id line in
            if seen.(i) then failwith "serve bench: duplicate response id";
            seen.(i) <- true;
            (match result with Ok _ -> () | Error _ -> incr errors);
            Hist.add latency
              (int_of_float ((Unix.gettimeofday () -. send_at.(i)) *. 1e6));
            loop sent (received + 1)
      end
  in
  loop 0 0;
  let wall = Unix.gettimeofday () -. t0 in
  Array.iteri
    (fun i ok -> if not ok then failwith (Printf.sprintf "serve bench: response %d dropped" i))
    seen;
  if !errors > 0 then
    failwith (Printf.sprintf "serve bench: %d error responses" !errors);
  (latency, wall)

(* Lockstep exchange on an otherwise-quiet connection (the replay has
   fully drained, so the next received line answers the sent frame). *)
let exchange client frame =
  Msts_serve.Client.send_line client frame;
  match Msts_serve.Client.recv_line client with
  | Some line -> line
  | None -> failwith "serve bench: server closed during audit"

let payload_of_line line =
  match Api.response_of_line line with
  | Ok { Api.result = Ok payload; _ } -> payload
  | Ok { Api.result = Error e; _ } ->
      failwith ("serve bench: audit request refused: " ^ e.Api.message)
  | Error e -> failwith ("serve bench: unreadable audit response: " ^ e.Api.message)

let member_exn what json name =
  match Json.member name json with
  | Some v -> v
  | None -> failwith (Printf.sprintf "serve bench: %s lacks %S" what name)

(* Post-replay observability audit: the slow-request log must stay at its
   top-K cap (no growth across the whole replay), the per-request
   queue-wait histogram must count exactly the dispatched solves, and the
   Prometheus exposition's global serve.queue_wait_us family must agree —
   the same requests, tallied in two independent layers.  Returns extra
   fields for the stage record, including the mean scrape cost. *)
let observability_audit client ~total =
  let expected_solves =
    let n = ref 0 in
    for i = 0 to total - 1 do
      if i mod 101 <> 0 && i mod 7 <> 0 then incr n
    done;
    !n
  in
  let stats = payload_of_line (exchange client {|{"op":"stats"}|}) in
  let slow =
    match member_exn "stats" stats "slow_requests" with
    | Json.List l -> List.length l
    | _ -> failwith "serve bench: slow_requests is not a list"
  in
  if slow > 16 then
    failwith
      (Printf.sprintf "serve bench: slow-request log grew to %d (cap 16)" slow);
  let request_count =
    match
      member_exn "request.queue_wait_us"
        (member_exn "stats.request"
           (member_exn "stats" stats "request")
           "queue_wait_us")
        "count"
    with
    | Json.Int n -> n
    | _ -> failwith "serve bench: request histogram count is not an int"
  in
  if request_count <> expected_solves then
    failwith
      (Printf.sprintf
         "serve bench: request.queue_wait_us counted %d, %d solves dispatched"
         request_count expected_solves);
  let scrapes = 20 in
  let scrape_us = ref 0 in
  let body = ref "" in
  for _ = 1 to scrapes do
    let t0 = Unix.gettimeofday () in
    let payload = payload_of_line (exchange client {|{"op":"metrics"}|}) in
    scrape_us := !scrape_us + int_of_float ((Unix.gettimeofday () -. t0) *. 1e6);
    match member_exn "metrics" payload "body" with
    | Json.String b -> body := b
    | _ -> failwith "serve bench: metrics body is not a string"
  done;
  let exposed_count =
    let prefix = "msts_serve_queue_wait_us_count " in
    let found = ref None in
    String.split_on_char '\n' !body
    |> List.iter (fun line ->
           if String.starts_with ~prefix line then
             found :=
               Some
                 (int_of_string
                    (String.sub line (String.length prefix)
                       (String.length line - String.length prefix))));
    match !found with
    | Some n -> n
    | None -> failwith "serve bench: exposition lost msts_serve_queue_wait_us"
  in
  if exposed_count <> request_count then
    failwith
      (Printf.sprintf
         "serve bench: exposition counted %d queue waits, stats counted %d"
         exposed_count request_count);
  [
    ("slow_requests", Json.Int slow);
    ("metrics_scrape_us", Json.Int (!scrape_us / scrapes));
  ]

(* The drain contract: write [drain_inflight] frames, SIGTERM the daemon
   with them still unanswered, and demand every one of them back plus a
   clean EOF and exit 0. *)
let sigterm_drain client pid ~offset =
  for i = offset to offset + drain_inflight - 1 do
    Msts_serve.Client.send_line client (Api.request_to_line (request i))
  done;
  Unix.kill pid Sys.sigterm;
  let got = ref 0 in
  (try
     while !got < drain_inflight do
       match Msts_serve.Client.recv_line client with
       | None -> raise Exit
       | Some line ->
           let i, _ = response_id line in
           if i >= offset && i < offset + drain_inflight then incr got
     done
   with Exit -> ());
  if !got <> drain_inflight then
    failwith
      (Printf.sprintf "serve bench: SIGTERM dropped %d in-flight request(s)"
         (drain_inflight - !got));
  (match Msts_serve.Client.recv_line client with
  | None -> ()
  | Some _ -> failwith "serve bench: frames past the drain");
  Msts_serve.Client.close client;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n ->
      failwith (Printf.sprintf "serve bench: daemon exited %d" n)
  | _ -> failwith "serve bench: daemon died on a signal"

(* Recover the daemon-side histograms from the telemetry JSONL. *)
let telemetry_histograms path =
  let hists = Hashtbl.create 8 in
  In_channel.with_open_text path (fun ic ->
      let rec go () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
            (match Json.parse line with
            | Ok json -> (
                match
                  (Json.member "ev" json, Json.member "name" json,
                   Json.member "value" json)
                with
                | Some (Json.String "V"), Some (Json.String name),
                  Some (Json.Int v) ->
                    let h =
                      match Hashtbl.find_opt hists name with
                      | Some h -> h
                      | None ->
                          let h = Hist.create () in
                          Hashtbl.add hists name h;
                          h
                    in
                    Hist.add h v
                | _ -> ())
            | Error _ -> ());
            go ()
      in
      go ());
  hists

(* Both stages accumulate here; the file is rewritten after each so a
   solo run still produces a valid artefact. *)
let sections : (string * Json.t) list ref = ref []

let write_bench () =
  let json = Json.Obj (("bench", Json.String "serve") :: List.rev !sections) in
  Out_channel.with_open_text "BENCH_serve.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string ~pretty:true json);
      Out_channel.output_char oc '\n')

let stage_json ~total ~latency ~wall ~extra =
  let throughput = float_of_int (total + drain_inflight) /. wall in
  (* jobs=1 in the daemon: per-core == absolute on the CI host, and stays
     honest if the default ever grows. *)
  let per_core = throughput /. 1.0 in
  if per_core < per_core_floor_rps then
    failwith
      (Printf.sprintf "serve bench: per-core throughput %.0f rps below floor %.0f"
         per_core per_core_floor_rps);
  Json.Obj
    ([
       ("requests", Json.Int total);
       ("drain_inflight", Json.Int drain_inflight);
       ("wall_s", Json.Float wall);
       ("throughput_rps", Json.Float throughput);
       ("per_core_throughput_rps", Json.Float per_core);
       ("latency_us", Hist.to_json latency);
       ("p50_us", Json.Int (Hist.quantile latency 0.5));
       ("p99_us", Json.Int (Hist.quantile latency 0.99));
       ("dropped_in_flight", Json.Int 0);
     ]
    @ extra)

let run_stage ~stage ~total ~with_telemetry =
  let telemetry =
    if with_telemetry then
      Some (Filename.temp_file "msts-serve-telemetry" ".jsonl")
    else None
  in
  let pid, socket_path = start_daemon ~stage ~telemetry in
  let finish () = if Sys.file_exists socket_path then Sys.remove socket_path in
  Fun.protect ~finally:finish @@ fun () ->
  let client = connect_or_fail socket_path in
  let t0 = Unix.gettimeofday () in
  let latency, _replay_wall = replay client ~total in
  let audit_t0 = Unix.gettimeofday () in
  let audit = observability_audit client ~total in
  let audit_wall = Unix.gettimeofday () -. audit_t0 in
  sigterm_drain client pid ~offset:total;
  (* The audit's lockstep exchanges are not load; keep the throughput
     figure about the replay + drain. *)
  let wall = Unix.gettimeofday () -. t0 -. audit_wall in
  let extra =
    match telemetry with
    | None -> []
    | Some path ->
        let hists = telemetry_histograms path in
        let take name =
          match Hashtbl.find_opt hists name with
          | Some h -> [ (name, Hist.to_json h) ]
          | None -> failwith ("serve bench: telemetry lost " ^ name)
        in
        Sys.remove path;
        take "serve.queue_wait_us" @ take "serve.batch_size"
  in
  let extra = extra @ audit in
  sections := (stage, stage_json ~total ~latency ~wall ~extra) :: !sections;
  write_bench ();
  Printf.printf
    "%s: %d requests + %d in-flight at SIGTERM, all answered; p50=%dus p99=%dus\n"
    stage total drain_inflight (Hist.quantile latency 0.5)
    (Hist.quantile latency 0.99)

let smoke () = run_stage ~stage:"smoke" ~total:2_000 ~with_telemetry:true
let scaling () = run_stage ~stage:"scaling" ~total:100_000 ~with_telemetry:false

let all =
  [
    ( "serve-smoke",
      "boot msts serve, replay a small mixed script, audit the SIGTERM drain",
      smoke );
    ( "serve-scaling",
      "100k-request mixed replay against msts serve; per-core throughput gate",
      scaling );
  ]
