(* Batch-scaling experiments: throughput of the multicore batch solver.

   `batch-scaling` solves one 200-instance mixed batch at jobs 1, 2 and 4
   (fresh cache each run, so every run does the same work), checks that
   every parallel outcome is structurally identical to the sequential one,
   then re-runs the batch against the now-warm shared cache.  Per-jobs
   throughput goes to BENCH_batch.json — the file CI validates and the
   perf trajectory tracks.  `batch-smoke` is the small CI variant.

   The speedup assertion is gated on the host actually having cores: on a
   single-core runner domains only timeshare, and asserting a parallel
   speedup there would test the machine, not the code. *)

let gettime = Unix.gettimeofday

let mixed_batch ~count ~seed ~tasks_lo ~tasks_hi =
  let rng = Msts.Prng.create seed in
  let profiles =
    [|
      Msts.Generator.default_profile;
      Msts.Generator.balanced_profile;
      Msts.Generator.compute_bound_profile;
      Msts.Generator.comm_bound_profile;
    |]
  in
  Array.init count (fun i ->
      let profile = profiles.(i mod Array.length profiles) in
      let platform =
        match i mod 3 with
        | 0 ->
            Msts.Platform_format.Chain_platform
              (Msts.Generator.chain rng profile ~p:(Msts.Prng.int_in rng 4 8))
        | 1 ->
            Msts.Platform_format.Spider_platform
              (Msts.Generator.spider rng profile
                 ~legs:(Msts.Prng.int_in rng 3 5)
                 ~max_depth:3)
        | _ ->
            Msts.Platform_format.Fork_platform
              (Msts.Generator.fork rng profile
                 ~slaves:(Msts.Prng.int_in rng 5 9))
      in
      Msts.Solve.problem ~tasks:(Msts.Prng.int_in rng tasks_lo tasks_hi) platform)

let outcomes_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Ok p, Ok q -> Msts.Plan.equal p q
         | Error e, Error f -> e = f
         | _ -> false)
       a b

let run_campaign ~name ~count ~seed ~tasks_hi ~jobs_list ~assert_speedup () =
  let problems = mixed_batch ~count ~seed ~tasks_lo:40 ~tasks_hi in
  let reference = ref [||] in
  let runs =
    List.map
      (fun jobs ->
        let cache = Msts.Batch.cache ~capacity:count in
        let t0 = gettime () in
        let outcomes, stats =
          Msts.Batch.run ~jobs ~cache ~solve:Msts.Solve.solve problems
        in
        let wall = gettime () -. t0 in
        assert (stats.Msts.Batch.requests = count);
        Array.iter (fun o -> assert (Result.is_ok o)) outcomes;
        if !reference = [||] then reference := outcomes
        else assert (outcomes_equal !reference outcomes);
        Printf.printf
          "  jobs=%d  wall %.3fs  %.1f instances/s  (cache %d hits / %d misses)\n"
          jobs wall
          (float_of_int count /. wall)
          stats.Msts.Batch.cache_hits stats.Msts.Batch.cache_misses;
        (jobs, wall, cache))
      jobs_list
  in
  (* warm-cache second pass: same batch against the last run's cache *)
  let _, _, warm_cache = List.nth runs (List.length runs - 1) in
  let t0 = gettime () in
  let warm_outcomes, warm_stats =
    Msts.Batch.run ~jobs:(List.length runs) ~cache:warm_cache
      ~solve:Msts.Solve.solve problems
  in
  let warm_wall = gettime () -. t0 in
  assert (warm_stats.Msts.Batch.cache_misses = 0);
  assert (outcomes_equal !reference warm_outcomes);
  Printf.printf "  warm cache  wall %.3fs  (%d hits, 0 misses)\n" warm_wall
    warm_stats.Msts.Batch.cache_hits;
  let wall_of jobs =
    match List.find_opt (fun (j, _, _) -> j = jobs) runs with
    | Some (_, w, _) -> Some w
    | None -> None
  in
  let base = Option.get (wall_of 1) in
  let speedup jobs = Option.map (fun w -> base /. w) (wall_of jobs) in
  let cores = Domain.recommended_domain_count () in
  List.iter
    (fun jobs ->
      Option.iter
        (fun s -> Printf.printf "  speedup jobs=%d: %.2fx (host cores: %d)\n" jobs s cores)
        (speedup jobs))
    (List.filter (( <> ) 1) jobs_list);
  let json =
    Msts.Json.Obj
      [
        ("experiment", Msts.Json.String name);
        ("instances", Msts.Json.Int count);
        ("host_cores", Msts.Json.Int cores);
        ( "runs",
          Msts.Json.List
            (List.map
               (fun (jobs, wall, _) ->
                 Msts.Json.Obj
                   [
                     ("jobs", Msts.Json.Int jobs);
                     ("wall_s", Msts.Json.Float wall);
                     ( "throughput_per_s",
                       Msts.Json.Float (float_of_int count /. wall) );
                   ])
               runs) );
        ( "speedups",
          Msts.Json.Obj
            (List.filter_map
               (fun jobs ->
                 Option.map
                   (fun s -> (Printf.sprintf "jobs%d" jobs, Msts.Json.Float s))
                   (speedup jobs))
               (List.filter (( <> ) 1) jobs_list)) );
        ( "warm_cache",
          Msts.Json.Obj
            [
              ("wall_s", Msts.Json.Float warm_wall);
              ("hits", Msts.Json.Int warm_stats.Msts.Batch.cache_hits);
              ("misses", Msts.Json.Int warm_stats.Msts.Batch.cache_misses);
            ] );
      ]
  in
  Out_channel.with_open_text "BENCH_batch.json" (fun oc ->
      Out_channel.output_string oc (Msts.Json.to_string ~pretty:true json);
      Out_channel.output_char oc '\n');
  print_endline "  BENCH_batch.json written";
  (* The cache pass must beat re-solving by a wide margin whatever the
     host: hits are O(1) lookups. *)
  assert (warm_wall < base);
  if assert_speedup then
    match speedup 4 with
    | Some s when cores >= 2 ->
        if s < 1.3 then (
          Printf.eprintf
            "batch-scaling: jobs=4 speedup %.2fx < 1.3x on a %d-core host\n" s
            cores;
          assert false)
    | _ ->
        Printf.printf
          "  (single-core host: scaling assertion skipped, determinism still checked)\n"

let scaling () =
  run_campaign ~name:"batch-scaling" ~count:200 ~seed:42 ~tasks_hi:120
    ~jobs_list:[ 1; 2; 4 ] ~assert_speedup:true ()

let smoke () =
  run_campaign ~name:"batch-smoke" ~count:48 ~seed:42 ~tasks_hi:80
    ~jobs_list:[ 1; 2 ] ~assert_speedup:false ()

let all =
  [
    ( "batch-scaling",
      "200-instance mixed batch at jobs 1/2/4: throughput, cache, determinism",
      scaling );
    ( "batch-smoke",
      "small batch-solver campaign for CI: structure, cache, determinism",
      smoke );
  ]
