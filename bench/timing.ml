(* Bechamel timing benches: the complexity claims.

   E10: the chain algorithm is O(n·p²) — run time should scale linearly in
   n at fixed p and quadratically in p at fixed n.
   E8: the spider algorithm is polynomial (Theorem 2 bounds it by
   O(n²·p²); the binary search adds a log factor on top of the single
   deadline pass measured here).

   Each bench prints the OLS estimate of ns/run plus the measured scaling
   ratios next to the ideal ones. *)

open Bechamel
open Toolkit

let run_tests tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Instance.monotonic_clock raw

let estimate results name =
  match Analyze.OLS.estimates (Hashtbl.find results name) with
  | Some (est :: _) -> est
  | _ -> nan

let r2 results name =
  match Analyze.OLS.r_square (Hashtbl.find results name) with
  | Some r -> r
  | None -> nan

(* deterministic platform for a given size *)
let bench_chain ~p =
  Msts.Generator.chain (Msts.Prng.create (p * 7919)) Msts.Generator.default_profile ~p

let scaling_in_n () =
  let p = 8 in
  let chain = bench_chain ~p in
  let sizes = [ 125; 250; 500; 1000; 2000 ] in
  let tests =
    Test.make_grouped ~name:"chain-n"
      (List.map
         (fun n ->
           Test.make
             ~name:(Printf.sprintf "n=%d" n)
             (Staged.stage (fun () ->
                  ignore (Msts.Chain_algorithm.makespan chain n))))
         sizes)
  in
  let results = run_tests tests in
  let table =
    Msts.Table.create
      ~title:
        (Printf.sprintf
           "E10a: chain algorithm runtime vs n (p=%d fixed; O(n p^2) predicts \
            ratio 2.00 per row)"
           p)
      ~columns:[ "n"; "ns/run"; "r^2"; "ratio vs previous" ]
  in
  let previous = ref nan in
  List.iter
    (fun n ->
      let key = Printf.sprintf "chain-n/n=%d" n in
      let est = estimate results key in
      Msts.Table.add_row table
        [
          string_of_int n;
          Printf.sprintf "%.0f" est;
          Printf.sprintf "%.4f" (r2 results key);
          (if Float.is_nan !previous then "-"
           else Printf.sprintf "%.2f" (est /. !previous));
        ];
      previous := est)
    sizes;
  Msts.Table.print table

let scaling_in_p () =
  let n = 400 in
  let sizes = [ 4; 8; 16; 32 ] in
  let tests =
    Test.make_grouped ~name:"chain-p"
      (List.map
         (fun p ->
           let chain = bench_chain ~p in
           Test.make
             ~name:(Printf.sprintf "p=%d" p)
             (Staged.stage (fun () ->
                  ignore (Msts.Chain_algorithm.makespan chain n))))
         sizes)
  in
  let results = run_tests tests in
  let table =
    Msts.Table.create
      ~title:
        (Printf.sprintf
           "E10b: chain algorithm runtime vs p (n=%d fixed; O(n p^2) predicts \
            ratio 4.00 per row)"
           n)
      ~columns:[ "p"; "ns/run"; "r^2"; "ratio vs previous" ]
  in
  let previous = ref nan in
  List.iter
    (fun p ->
      let key = Printf.sprintf "chain-p/p=%d" p in
      let est = estimate results key in
      Msts.Table.add_row table
        [
          string_of_int p;
          Printf.sprintf "%.0f" est;
          Printf.sprintf "%.4f" (r2 results key);
          (if Float.is_nan !previous then "-"
           else Printf.sprintf "%.2f" (est /. !previous));
        ];
      previous := est)
    sizes;
  Msts.Table.print table

let spider_scaling () =
  let sizes = [ (2, 50); (4, 50); (2, 100); (4, 100); (4, 200) ] in
  let tests =
    Test.make_grouped ~name:"spider"
      (List.map
         (fun (legs, n) ->
           let spider =
             Msts.Generator.spider
               (Msts.Prng.create ((legs * 1000) + n))
               Msts.Generator.default_profile ~legs ~max_depth:4
           in
           let deadline = Msts.Spider_algorithm.makespan_upper_bound spider n in
           Test.make
             ~name:(Printf.sprintf "legs=%d,n=%d" legs n)
             (Staged.stage (fun () ->
                  ignore
                    (Msts.Spider_algorithm.max_tasks ~budget:n spider ~deadline))))
         sizes)
  in
  let results = run_tests tests in
  let table =
    Msts.Table.create
      ~title:
        "E8 (Theorem 2): one spider deadline pass (legs x depth<=4); \
         polynomial growth"
      ~columns:[ "legs"; "n"; "ns/run"; "r^2" ]
  in
  List.iter
    (fun (legs, n) ->
      let key = Printf.sprintf "spider/legs=%d,n=%d" legs n in
      Msts.Table.add_row table
        [
          string_of_int legs;
          string_of_int n;
          Printf.sprintf "%.0f" (estimate results key);
          Printf.sprintf "%.4f" (r2 results key);
        ])
    sizes;
  Msts.Table.print table

let component_costs () =
  let chain = bench_chain ~p:8 in
  let n = 500 in
  let sched = Msts.Chain_algorithm.schedule chain n in
  let spider_plan = Msts.Spider_schedule.of_chain_schedule sched in
  let seq =
    Array.map (fun (e : Msts.Schedule.entry) -> e.proc) (Msts.Schedule.entries sched)
  in
  let tests =
    Test.make_grouped ~name:"components"
      [
        Test.make ~name:"schedule(500 tasks)"
          (Staged.stage (fun () -> ignore (Msts.Chain_algorithm.schedule chain n)));
        Test.make ~name:"feasibility check"
          (Staged.stage (fun () -> ignore (Msts.Feasibility.check sched)));
        Test.make ~name:"ASAP timing"
          (Staged.stage (fun () -> ignore (Msts.Asap.chain_makespan chain seq)));
        Test.make ~name:"event-driven execution"
          (Staged.stage (fun () -> ignore (Msts.Netsim.execute (Msts.Plan.Spider spider_plan))));
        Test.make ~name:"deadline pass"
          (Staged.stage (fun () ->
               ignore
                 (Msts.Chain_deadline.max_tasks chain
                    ~deadline:(Msts.Chain_algorithm.horizon chain n))));
      ]
  in
  let results = run_tests tests in
  let table =
    Msts.Table.create
      ~title:"component costs (p=8, n=500)"
      ~columns:[ "component"; "ns/run"; "r^2" ]
  in
  List.iter
    (fun name ->
      let key = "components/" ^ name in
      Msts.Table.add_row table
        [
          name;
          Printf.sprintf "%.0f" (estimate results key);
          Printf.sprintf "%.4f" (r2 results key);
        ])
    [
      "schedule(500 tasks)";
      "feasibility check";
      "ASAP timing";
      "event-driven execution";
      "deadline pass";
    ];
  Msts.Table.print table

let fork_allocator () =
  let sizes = [ 50; 100; 200 ] in
  let tests =
    Test.make_grouped ~name:"fork"
      (List.map
         (fun n ->
           let fork =
             Msts.Generator.fork (Msts.Prng.create n)
               Msts.Generator.default_profile ~slaves:8
           in
           Test.make
             ~name:(Printf.sprintf "n=%d" n)
             (Staged.stage (fun () ->
                  ignore (Msts.Fork_allocator.max_tasks fork ~deadline:(n * 4) ~budget:n))))
         sizes)
  in
  let results = run_tests tests in
  let table =
    Msts.Table.create ~title:"fork allocator (8 slaves; quadratic in accepted tasks)"
      ~columns:[ "n"; "ns/run"; "r^2" ]
  in
  List.iter
    (fun n ->
      let key = Printf.sprintf "fork/n=%d" n in
      Msts.Table.add_row table
        [
          string_of_int n;
          Printf.sprintf "%.0f" (estimate results key);
          Printf.sprintf "%.4f" (r2 results key);
        ])
    sizes;
  Msts.Table.print table

let implementation_comparison () =
  let chain = bench_chain ~p:6 in
  let n = 300 in
  let tests =
    Test.make_grouped ~name:"impl"
      [
        Test.make ~name:"production"
          (Staged.stage (fun () -> ignore (Msts.Chain_algorithm.schedule chain n)));
        Test.make ~name:"figure-3 transcription"
          (Staged.stage (fun () -> ignore (Msts.Chain_pseudocode.schedule chain n)));
        Test.make ~name:"incremental (deadline fill)"
          (Staged.stage (fun () ->
               let c =
                 Msts.Chain_incremental.create chain
                   ~horizon:(Msts.Chain_algorithm.horizon chain n)
               in
               ignore (Msts.Chain_incremental.fill c ~max_tasks:n ())));
        Test.make ~name:"hill climbing (same instance)"
          (Staged.stage (fun () ->
               ignore (Msts.Local_search.hill_climb_makespan ~max_rounds:3 chain n)));
      ]
  in
  let results = run_tests tests in
  let table =
    Msts.Table.create
      ~title:(Printf.sprintf "implementation comparison (p=6, n=%d)" n)
      ~columns:[ "implementation"; "ns/run"; "r^2" ]
  in
  List.iter
    (fun name ->
      let key = "impl/" ^ name in
      Msts.Table.add_row table
        [
          name;
          Printf.sprintf "%.0f" (estimate results key);
          Printf.sprintf "%.4f" (r2 results key);
        ])
    [
      "production";
      "figure-3 transcription";
      "incremental (deadline fill)";
      "hill climbing (same instance)";
    ];
  Msts.Table.print table;
  print_endline
    "  (the three exact variants produce identical schedules -- see the"
  ;
  print_endline
    "   differential tests; the production variant exists to expose the"
  ;
  print_endline
    "   construction machinery the rest of the library builds on, at no"
  ;
  print_endline "   speed penalty over the paper's transcription)"

(* Fast vs reference kernel: head-to-head at fixed (n,p), allocation
   counts, and the p-scaling ratio check backing the complexity claim —
   the fast kernel doubles per doubling of p (linear), the reference
   quadruples (quadratic).  Results go to BENCH_kernel.json (written here;
   the harness adds the usual counter/latency profile next to it). *)
let kernel_comparison () =
  let n = 400 and p0 = 16 in
  let chain0 = bench_chain ~p:p0 in
  let solve kernel chain () =
    ignore (Msts.Chain_algorithm.makespan ~kernel chain n)
  in
  let head_tests =
    Test.make_grouped ~name:"kernel"
      [
        Test.make ~name:"fast" (Staged.stage (solve Msts.Chain_kernel.Fast chain0));
        Test.make ~name:"reference"
          (Staged.stage (solve Msts.Chain_kernel.Reference chain0));
      ]
  in
  let head = run_tests head_tests in
  let fast_ns = estimate head "kernel/fast" in
  let reference_ns = estimate head "kernel/reference" in
  let head_table =
    Msts.Table.create
      ~title:(Printf.sprintf "kernel head-to-head (n=%d, p=%d)" n p0)
      ~columns:[ "kernel"; "ns/run"; "r^2" ]
  in
  List.iter
    (fun name ->
      let key = "kernel/" ^ name in
      Msts.Table.add_row head_table
        [
          name;
          Printf.sprintf "%.0f" (estimate head key);
          Printf.sprintf "%.4f" (r2 head key);
        ])
    [ "fast"; "reference" ];
  Msts.Table.print head_table;
  let bytes_per_solve kernel =
    let iters = 20 in
    let before = Gc.allocated_bytes () in
    for _ = 1 to iters do
      solve kernel chain0 ()
    done;
    (Gc.allocated_bytes () -. before) /. float_of_int iters
  in
  let fast_bytes = bytes_per_solve Msts.Chain_kernel.Fast in
  let reference_bytes = bytes_per_solve Msts.Chain_kernel.Reference in
  Printf.printf
    "  allocations per makespan solve: fast %.0f B, reference %.0f B (%.0fx)\n"
    fast_bytes reference_bytes
    (reference_bytes /. fast_bytes);
  let sizes = [ 4; 8; 16; 32 ] in
  let scale_tests =
    Test.make_grouped ~name:"kernel-p"
      (List.concat_map
         (fun p ->
           let chain = bench_chain ~p in
           [
             Test.make
               ~name:(Printf.sprintf "fast,p=%d" p)
               (Staged.stage (solve Msts.Chain_kernel.Fast chain));
             Test.make
               ~name:(Printf.sprintf "reference,p=%d" p)
               (Staged.stage (solve Msts.Chain_kernel.Reference chain));
           ])
         sizes)
  in
  let scale = run_tests scale_tests in
  let estimates kernel =
    List.map
      (fun p -> estimate scale (Printf.sprintf "kernel-p/%s,p=%d" kernel p))
      sizes
  in
  let fast_curve = estimates "fast" and reference_curve = estimates "reference" in
  (* Geometric mean of the per-doubling growth, i.e. (last/first)^(1/k):
     2.00 is ideal linear, 4.00 ideal quadratic. *)
  let avg_ratio curve =
    let first = List.hd curve and last = List.nth curve (List.length curve - 1) in
    Float.pow (last /. first) (1.0 /. float_of_int (List.length curve - 1))
  in
  let fast_ratio = avg_ratio fast_curve
  and reference_ratio = avg_ratio reference_curve in
  let scale_table =
    Msts.Table.create
      ~title:
        (Printf.sprintf
           "kernel p-scaling (n=%d; per-doubling growth: linear predicts 2.00, \
            quadratic 4.00)"
           n)
      ~columns:[ "p"; "fast ns/run"; "reference ns/run" ]
  in
  List.iteri
    (fun i p ->
      Msts.Table.add_row scale_table
        [
          string_of_int p;
          Printf.sprintf "%.0f" (List.nth fast_curve i);
          Printf.sprintf "%.0f" (List.nth reference_curve i);
        ])
    sizes;
  Msts.Table.print scale_table;
  Printf.printf
    "  avg per-doubling growth: fast %.2fx, reference %.2fx (ideal 2.00 vs 4.00)\n"
    fast_ratio reference_ratio;
  let json =
    Msts.Json.Obj
      [
        ("experiment", Msts.Json.String "kernel");
        ( "head_to_head",
          Msts.Json.Obj
            [
              ("n", Msts.Json.Int n);
              ("p", Msts.Json.Int p0);
              ("fast_ns", Msts.Json.Float fast_ns);
              ("reference_ns", Msts.Json.Float reference_ns);
              ("speedup", Msts.Json.Float (reference_ns /. fast_ns));
            ] );
        ( "allocations_per_solve_bytes",
          Msts.Json.Obj
            [
              ("fast", Msts.Json.Float fast_bytes);
              ("reference", Msts.Json.Float reference_bytes);
              ("ratio", Msts.Json.Float (reference_bytes /. fast_bytes));
            ] );
        ( "p_scaling",
          Msts.Json.Obj
            [
              ("n", Msts.Json.Int n);
              ("sizes", Msts.Json.List (List.map (fun p -> Msts.Json.Int p) sizes));
              ("fast_ns", Msts.Json.List (List.map (fun e -> Msts.Json.Float e) fast_curve));
              ( "reference_ns",
                Msts.Json.List (List.map (fun e -> Msts.Json.Float e) reference_curve) );
              ("fast_avg_doubling_ratio", Msts.Json.Float fast_ratio);
              ("reference_avg_doubling_ratio", Msts.Json.Float reference_ratio);
              ("ideal_linear", Msts.Json.Float 2.0);
              ("ideal_quadratic", Msts.Json.Float 4.0);
            ] );
      ]
  in
  Out_channel.with_open_text "BENCH_kernel.json" (fun oc ->
      Out_channel.output_string oc (Msts.Json.to_string ~pretty:true json);
      Out_channel.output_char oc '\n');
  print_endline "  BENCH_kernel.json written";
  (* The acceptance gates: sub-quadratic p-scaling, >= 5x fewer
     allocations.  Wall-clock speedup is reported but not asserted (CI
     machines are noisy); the scaling exponent is the robust signal. *)
  assert (fast_ratio < reference_ratio);
  assert (reference_bytes >= 5.0 *. fast_bytes)

let all : (string * string * (unit -> unit)) list =
  [
    ("kernel-scaling", "fast vs reference kernel: head-to-head, allocations, p-scaling",
     kernel_comparison);
    ("bench-chain-n", "E10a: runtime linear in n", scaling_in_n);
    ("bench-chain-p", "E10b: runtime quadratic in p", scaling_in_p);
    ("bench-spider", "E8: spider deadline pass scaling", spider_scaling);
    ("bench-components", "component costs", component_costs);
    ("bench-fork", "fork allocator scaling", fork_allocator);
    ("bench-impl", "production vs transcription vs incremental", implementation_comparison);
  ]
