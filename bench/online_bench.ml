(* The online anytime scheduler's two performance contracts, gated:

     online        amortized O(p) work per arrival — the fast kernel's
                   candidate scans per submitted task equal the processor
                   count exactly, independent of how many tasks are
                   already placed — and a zero-allocation steady state
                   (no minor-heap words per arrival once the session's
                   buffers are preallocated and telemetry is off).
                   Results and counter profiles land in BENCH_online.json.
     online-smoke  end-to-end session lifecycle (submit / advance /
                   extend / degrade / plan) through the same
                   Msts_online.Service the daemon uses, plus a scripted
                   driver run whose frozen-prefix trace must satisfy the
                   Definition-1 invariants.  Cheap enough for every CI
                   run; writes BENCH_online-smoke.json.

   Violations fail the experiment (failwith), so CI gates on exit
   status, not on eyeballing the JSON. *)

module Online = Msts_online.Online
module Driver = Msts_online.Driver
module Service = Msts_online.Service
module Obs = Msts.Obs
module Json = Msts.Json

let chain_with ~p =
  Msts.Generator.chain (Msts.Prng.create (100 + p)) Msts.Generator.default_profile ~p

(* Candidate scans per arrival, measured over [n] submissions on a
   [p]-processor chain under a private sink (the horizon is generous
   enough that every arrival is placed, so each one is a single sweep). *)
let scans_per_arrival ~p ~n =
  let chain = chain_with ~p in
  let mem = Obs.Memory.create () in
  Obs.with_sink (Obs.Memory.sink mem) (fun () ->
      let o =
        Online.create ~kernel:Msts.Solve.Fast ~capacity:n chain
          ~deadline:(200 * n)
      in
      let placed = Online.submit o n in
      if placed <> n then
        failwith
          (Printf.sprintf "online: only %d of %d arrivals fit at p=%d" placed n p));
  let scans = Obs.Memory.counter mem "chain.candidate_scans" in
  if scans mod n <> 0 then
    failwith
      (Printf.sprintf "online: %d scans not divisible by %d arrivals (p=%d)"
         scans n p);
  scans / n

let run_scaling () =
  Printf.printf "%6s %8s %16s %s\n" "p" "n" "scans/arrival" "verdict";
  List.iter
    (fun p ->
      let small = scans_per_arrival ~p ~n:512 in
      let large = scans_per_arrival ~p ~n:1024 in
      (* O(p) per arrival, exactly: the fast kernel probes each processor
         once.  Doubling n must not change the per-arrival cost at all —
         that is the whole point of the incremental construction. *)
      if small <> p then
        failwith
          (Printf.sprintf "online: %d scans per arrival at p=%d (want %d)"
             small p p);
      if large <> small then
        failwith
          (Printf.sprintf
             "online: per-arrival cost grew with n at p=%d (%d -> %d)" p small
             large);
      Printf.printf "%6d %8d %16d exactly p, flat in n\n" p 1024 large)
    [ 2; 4; 8; 16; 32 ]

(* Two back-to-back reads calibrate the boxing cost of Gc.minor_words
   itself (it returns a float). *)
let calibrate () =
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  b -. a

let run_allocation () =
  (* Telemetry off: the claim is about the scheduler's own hot path. *)
  Obs.set_sink None;
  let n = 4096 in
  let chain = chain_with ~p:8 in
  let o =
    Online.create ~kernel:Msts.Solve.Fast ~capacity:n chain ~deadline:(200 * n)
  in
  ignore (Online.submit o 64) (* warm-up *);
  let baseline = calibrate () in
  let before = Gc.minor_words () in
  let placed = Online.submit o (n - 64) in
  let after = Gc.minor_words () in
  let extra = after -. before -. baseline in
  if placed <> n - 64 then
    failwith (Printf.sprintf "online: steady state rejected %d arrivals" (n - 64 - placed));
  (* One boxed accumulator per submit call is amortized over the batch;
     nothing may scale with the arrival count. *)
  if extra > 64.0 then
    failwith
      (Printf.sprintf
         "online: steady state allocated %.0f minor words over %d arrivals"
         extra (n - 64));
  Printf.printf "steady state: %d arrivals, %.0f minor words beyond calibration\n"
    (n - 64) extra

let run_online () =
  run_scaling ();
  run_allocation ()

(* ---------- smoke ---------- *)

let expect_ok = function
  | Ok payload -> payload
  | Error e ->
      failwith
        (Printf.sprintf "online-smoke: %s: %s"
           (Msts.Api.error_code_to_string e.Msts.Api.code)
           e.Msts.Api.message)

let int_field name json =
  match Json.member name json with
  | Some (Json.Int v) -> v
  | _ -> failwith (Printf.sprintf "online-smoke: missing %s field" name)

let run_smoke () =
  let svc = Service.create () in
  let platform =
    Msts.Platform_format.Chain_platform (Msts.Chain.of_pairs [ (2, 3); (3, 5) ])
  in
  let session =
    int_field "session"
      (expect_ok
         (Service.exec svc
            (Msts.Api.Online_open { platform; deadline = 14; capacity = 0 })))
  in
  let placed =
    int_field "placed"
      (expect_ok (Service.exec svc (Msts.Api.Online_submit { session; tasks = 6 })))
  in
  if placed <> 5 then failwith "online-smoke: figure-2 session should place 5";
  let frozen =
    int_field "frozen"
      (expect_ok (Service.exec svc (Msts.Api.Online_advance { session; time = 1 })))
  in
  if frozen <> 1 then failwith "online-smoke: frontier 1 should freeze 1";
  (match Service.exec svc (Msts.Api.Online_extend { session; deadline = 15 }) with
  | Error _ -> ()
  | Ok _ -> failwith "online-smoke: a one-tick extension cannot clear the prefix");
  ignore
    (expect_ok (Service.exec svc (Msts.Api.Online_extend { session; deadline = 40 })));
  (* processor 2 holds no frozen placement at frontier 1 *)
  ignore
    (expect_ok
       (Service.exec svc
          (Msts.Api.Online_degrade { session; at = 2; work_factor = 2 })));
  let plan_doc =
    expect_ok (Service.exec svc (Msts.Api.Online_plan { session }))
  in
  if int_field "tasks" plan_doc <> 5 then
    failwith "online-smoke: plan lost tasks across extend/degrade";
  ignore (expect_ok (Service.exec svc (Msts.Api.Online_close { session })));
  (* The scripted driver: arrivals, an extension and a degradation on the
     simulator clock; the frozen prefix's trace must be invariant-clean. *)
  let recorder = Msts.Trace.Recorder.create () in
  let outcome =
    Msts.Trace.with_recorder recorder (fun () ->
        Driver.run
          (Msts.Chain.of_pairs [ (2, 3); (3, 5) ])
          ~deadline:30
          [
            { Driver.at = 0; action = Driver.Submit 4 };
            { Driver.at = 6; action = Driver.Extend 60 };
            { Driver.at = 8; action = Driver.Submit 3 };
            { Driver.at = 12; action = Driver.Degrade { at = 2; work_factor = 2 } };
          ])
  in
  (match Msts.Trace.check ~require_nonnegative:true (Msts.Trace.recorded recorder) with
  | [] -> ()
  | vs ->
      failwith
        (Printf.sprintf "online-smoke: executed prefix violates Definition 1:\n%s"
           (Msts.Trace.report (Msts.Trace.recorded recorder) vs)));
  if outcome.Driver.frozen <> outcome.Driver.placed then
    failwith "online-smoke: driver left revisable tasks after the deadline";
  (match Msts.Plan.check ~require_nonnegative:true outcome.Driver.plan with
  | [] -> ()
  | problems ->
      failwith
        (Printf.sprintf "online-smoke: infeasible final plan: %s"
           (String.concat "; " problems)));
  Printf.printf
    "session lifecycle ok; driver: %d placed, %d frozen, %d refusals, trace clean\n"
    outcome.Driver.placed outcome.Driver.frozen
    (List.length outcome.Driver.refusals)

let all =
  [
    ( "online",
      "anytime scheduler: amortized O(p) per arrival, zero-allocation steady state",
      run_online );
    ( "online-smoke",
      "anytime scheduler end-to-end: session lifecycle + frozen-prefix trace audit",
      run_smoke );
  ]
