(* Ablation studies for the design decisions called out in DESIGN.md §5.

   1. Definition 3's order: what happens to optimality if the candidate
      selection rule is changed?  (The backward construction stays feasible
      for any rule; only the paper's rule is optimal.)
   2. Backward vs forward construction: the best myopic forward rule
      (earliest completion) against the backward optimum. *)

let selector_def3 = Msts.Chain_algorithm.select

(* Flip only the prefix tie-break of Definition 3: on an equal common
   prefix prefer the LONGER vector (the farther processor). *)
let selector_longer_ties cands =
  let compare_flipped a b =
    let la = Array.length a and lb = Array.length b in
    let n = min la lb in
    let rec loop j =
      if j < n then
        if a.(j) < b.(j) then -1
        else if a.(j) > b.(j) then 1
        else loop (j + 1)
      else Int.compare la lb
    in
    loop 0
  in
  let best = ref 0 in
  for idx = 1 to Array.length cands - 1 do
    if compare_flipped cands.(!best) cands.(idx) < 0 then best := idx
  done;
  !best

(* Always route to the nearest processor (degenerates to master-only). *)
let selector_nearest _ = 0

(* Minimise instead of maximise Definition 3's order. *)
let selector_smallest cands =
  let best = ref 0 in
  for idx = 1 to Array.length cands - 1 do
    if Msts.Comm_vector.precedes cands.(idx) cands.(!best) then best := idx
  done;
  !best

let selectors =
  [
    ("Def.3 max (paper)", selector_def3);
    ("ties -> farther proc", selector_longer_ties);
    ("always nearest", selector_nearest);
    ("Def.3 min", selector_smallest);
  ]

let order_ablation () =
  let rng = Msts.Prng.create 424242 in
  let trials = 80 in
  let instances =
    List.init trials (fun _ ->
        let p = 2 + Msts.Prng.int rng 4 in
        ( Msts.Generator.chain rng Msts.Generator.default_profile ~p,
          10 + Msts.Prng.int rng 30 ))
  in
  let table =
    Msts.Table.create
      ~title:
        (Printf.sprintf
           "ablation: candidate selection rule (%d random chains, p in 2..5, \
            n in 10..39)"
           trials)
      ~columns:[ "selection rule"; "mean ratio vs optimal"; "max ratio"; "optimal %" ]
  in
  List.iter
    (fun (name, select) ->
      let ratios =
        Array.of_list
          (List.map
             (fun (chain, n) ->
               let sched =
                 Msts.Chain_algorithm.schedule_with_selector ~select chain n
               in
               assert (Msts.Feasibility.is_feasible ~require_nonnegative:true sched);
               float_of_int (Msts.Schedule.makespan sched)
               /. float_of_int (Msts.Chain_algorithm.makespan chain n))
             instances)
      in
      let optimal_count =
        Array.fold_left (fun acc r -> if r < 1.0000001 then acc + 1 else acc) 0 ratios
      in
      let optimal_pct = 100.0 *. float_of_int optimal_count /. float_of_int trials in
      let _, max_ratio = Msts.Stats.min_max ratios in
      Msts.Table.add_row table
        [
          name;
          Printf.sprintf "%.4f" (Msts.Stats.mean ratios);
          Printf.sprintf "%.4f" max_ratio;
          Printf.sprintf "%.0f%%" optimal_pct;
        ])
    selectors;
  Msts.Table.print table;
  print_endline
    "  (any selection rule yields a feasible schedule; only Definition 3's"
  ;
  print_endline "   maximum is always optimal)"

let forward_ablation () =
  let rng = Msts.Prng.create 515151 in
  let trials = 80 in
  let table =
    Msts.Table.create
      ~title:
        "ablation: backward (paper) vs best forward rule (earliest completion)"
      ~columns:[ "profile"; "forward/backward mean"; "max"; "forward optimal %" ]
  in
  List.iter
    (fun (name, profile) ->
      let ratios = Array.make trials 0.0 in
      let optimal = ref 0 in
      for t = 0 to trials - 1 do
        let p = 2 + Msts.Prng.int rng 4 in
        let n = 10 + Msts.Prng.int rng 30 in
        let chain = Msts.Generator.chain rng profile ~p in
        let fwd = Msts.List_sched.(chain_makespan Earliest_completion) chain n in
        let bwd = Msts.Chain_algorithm.makespan chain n in
        ratios.(t) <- float_of_int fwd /. float_of_int bwd;
        if fwd = bwd then incr optimal
      done;
      let _, max_ratio = Msts.Stats.min_max ratios in
      Msts.Table.add_row table
        [
          name;
          Printf.sprintf "%.4f" (Msts.Stats.mean ratios);
          Printf.sprintf "%.4f" max_ratio;
          Printf.sprintf "%.0f%%" (100.0 *. float_of_int !optimal /. float_of_int trials);
        ])
    [
      ("default", Msts.Generator.default_profile);
      ("compute-bound", Msts.Generator.compute_bound_profile);
      ("comm-bound", Msts.Generator.comm_bound_profile);
    ];
  Msts.Table.print table

let tree_extraction () =
  let rng = Msts.Prng.create 606060 in
  let trials = 40 in
  let n = 20 in
  let policies =
    [
      ("fastest processor", Msts.Tree.Fastest_processor);
      ("cheapest link", Msts.Tree.Cheapest_link);
      ("best subtree rate", Msts.Tree.Best_rate);
    ]
  in
  let table =
    Msts.Table.create
      ~title:
        (Printf.sprintf
           "extension: spider-cover heuristics for general trees (%d random \
            trees, 10 nodes, n=%d) -- mean makespan ratio vs best of the three"
           trials n)
      ~columns:("tree policy" :: [ "mean ratio"; "wins" ])
  in
  let makespans =
    List.init trials (fun _ ->
        let tree =
          Msts.Generator.tree rng Msts.Generator.default_profile ~nodes:10
            ~max_children:3
        in
        List.map
          (fun (_, policy) ->
            Msts.Spider_algorithm.min_makespan
              (Msts.Tree.extract_spider policy tree)
              n)
          policies)
  in
  List.iteri
    (fun i (name, _) ->
      let ratios =
        Array.of_list
          (List.map
             (fun row ->
               let best = List.fold_left min max_int row in
               float_of_int (List.nth row i) /. float_of_int best)
             makespans)
      in
      let wins =
        List.length
          (List.filter
             (fun row -> List.nth row i = List.fold_left min max_int row)
             makespans)
      in
      Msts.Table.add_row table
        [ name; Printf.sprintf "%.4f" (Msts.Stats.mean ratios); string_of_int wins ])
    policies;
  Msts.Table.print table;
  print_endline
    "  (the conclusion's future-work direction: cover general graphs with"
  ;
  print_endline "   simpler structures, then schedule those optimally)"

let tree_frontier () =
  let rng = Msts.Prng.create 717171 in
  let trials = 40 in
  let n = 5 in
  let ratios_cover = Array.make trials 0.0 in
  let ratios_forward = Array.make trials 0.0 in
  let ratios_lb = Array.make trials 0.0 in
  let cover_matches = ref 0 in
  for t = 0 to trials - 1 do
    let tree =
      Msts.Generator.tree rng Msts.Generator.balanced_profile ~nodes:4
        ~max_children:3
    in
    let exact = float_of_int (Msts.Tree_search.best_fifo_makespan tree n) in
    let _, cover = Msts.Tree_heuristics.best_cover tree n in
    let forward =
      Msts.Tree_heuristics.makespan Msts.Tree_heuristics.Tree_earliest_completion
        tree n
    in
    ratios_cover.(t) <- float_of_int cover /. exact;
    ratios_forward.(t) <- float_of_int forward /. exact;
    ratios_lb.(t) <- float_of_int (Msts.Tree_search.lower_bound tree n) /. exact;
    if cover = int_of_float exact then incr cover_matches
  done;
  let table =
    Msts.Table.create
      ~title:
        (Printf.sprintf
           "tree frontier: vs exhaustive FIFO search (%d random 4-node trees, \
            n=%d)"
           trials n)
      ~columns:[ "method"; "mean ratio"; "max ratio" ]
  in
  let row name ratios =
    let _, hi = Msts.Stats.min_max ratios in
    Msts.Table.add_row table
      [ name; Printf.sprintf "%.4f" (Msts.Stats.mean ratios); Printf.sprintf "%.4f" hi ]
  in
  row "best spider cover" ratios_cover;
  row "forward greedy (whole tree)" ratios_forward;
  row "lower bound" ratios_lb;
  Msts.Table.print table;
  Printf.printf "  spider cover already exact on %d/%d of these trees\n"
    !cover_matches trials

let local_search () =
  let rng = Msts.Prng.create 97531 in
  let trials = 40 in
  let n = 40 and p = 6 in
  let ect = Array.make trials 0.0
  and climb = Array.make trials 0.0
  and restarts = Array.make trials 0.0
  and evals = Array.make trials 0.0 in
  for t = 0 to trials - 1 do
    let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p in
    let opt = float_of_int (Msts.Chain_algorithm.makespan chain n) in
    let report = Msts.Local_search.hill_climb ~seed:t chain n in
    ect.(t) <- float_of_int report.Msts.Local_search.start_makespan /. opt;
    climb.(t) <-
      float_of_int (Msts.Schedule.makespan report.Msts.Local_search.schedule) /. opt;
    evals.(t) <- float_of_int report.Msts.Local_search.evaluations;
    (* give random restarts the same evaluation budget the climber used *)
    restarts.(t) <-
      float_of_int
        (Msts.Schedule.makespan
           (Msts.Local_search.random_restarts ~seed:t
              ~restarts:report.Msts.Local_search.evaluations chain n))
      /. opt
  done;
  let table =
    Msts.Table.create
      ~title:
        (Printf.sprintf
           "could a generic optimiser replace the paper? (%d random chains, \
            p=%d, n=%d; ratios vs optimal)"
           trials p n)
      ~columns:[ "method"; "mean ratio"; "max ratio" ]
  in
  let row name ratios =
    let _, hi = Msts.Stats.min_max ratios in
    Msts.Table.add_row table
      [ name; Printf.sprintf "%.4f" (Msts.Stats.mean ratios); Printf.sprintf "%.4f" hi ]
  in
  row "greedy ECT (start)" ect;
  row "hill climbing" climb;
  row "random restarts, same budget" restarts;
  Msts.Table.print table;
  Printf.printf
    "  mean ASAP evaluations spent by the climber: %.0f (each O(n*p));\n"
    (Msts.Stats.mean evals);
  print_endline
    "  the exact algorithm costs a single O(n*p^2) pass and is always 1.0000"

let all : (string * string * (unit -> unit)) list =
  [
    ("ablation-order", "candidate selection rule ablation", order_ablation);
    ("ablation-forward", "backward vs forward construction", forward_ablation);
    ("tree-cover", "tree -> spider cover heuristics", tree_extraction);
    ("tree-frontier", "covers vs exhaustive FIFO search on tiny trees", tree_frontier);
    ("local-search", "generic optimisers vs the exact algorithm", local_search);
  ]
