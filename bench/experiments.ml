(* Reproduction experiments E1–E12 (see DESIGN.md §3).

   The paper has no numeric tables; its reproducible artefacts are worked
   figures and theorems.  Each experiment regenerates one of them and
   prints a table; EXPERIMENTS.md records the expected output. *)

let seeded seed = Msts.Prng.create seed

(* ---------------- E1: Figure 1 — the chain model ---------------- *)

let fig1 () =
  let chain = Msts.Chain.of_pairs [ (2, 3); (3, 5); (1, 7) ] in
  print_endline "E1 (Figure 1): a chain platform, master on the left.";
  Printf.printf "  %s\n" (Msts.Chain.to_string chain);
  print_endline "  DOT rendering (also via `msts dot`):";
  print_string (Msts.Dot.of_chain chain);
  (* Figure 5: a spider -- only the master branches *)
  let spider =
    Msts.Spider.of_legs
      [
        Msts.Chain.of_pairs [ (2, 3); (3, 5) ];
        Msts.Chain.of_pairs [ (1, 4) ];
        Msts.Chain.of_pairs [ (2, 2); (1, 6); (2, 3) ];
      ]
  in
  print_endline "\nE1b (Figure 5): a spider -- only the master has arity > 1.";
  Printf.printf "  %s\n" (Msts.Spider.to_string spider);
  print_string (Msts.Dot.of_spider spider)

(* ---------------- E2: Figure 2 — the worked schedule ---------------- *)

let fig2 () =
  let chain = Msts.Chain.of_pairs [ (2, 3); (3, 5) ] in
  let n = 5 in
  print_endline "E2 (Figure 2): optimal schedule on chain (2,3),(3,5), n=5.";
  let sched = Msts.Chain_algorithm.schedule chain n in
  Printf.printf "  makespan: %d (paper: 14)\n" (Msts.Schedule.makespan sched);
  let emissions =
    List.map
      (fun i ->
        Msts.Comm_vector.first_emission (Msts.Schedule.entry sched i).comms)
      [ 1; 2; 3; 4; 5 ]
  in
  Printf.printf "  emissions: %s (paper: 0,2,4,6,9)\n"
    (String.concat "," (List.map string_of_int emissions));
  Printf.printf "  task on P2: %s (paper: task 3)\n"
    (String.concat "," (List.map string_of_int (Msts.Schedule.tasks_on sched 2)));
  print_endline (Msts.Gantt.render ~width:70 sched);
  assert (Msts.Schedule.makespan sched = 14);
  assert (emissions = [ 0; 2; 4; 6; 9 ]);
  (* publishable SVG artefact of the reproduced figure *)
  (try Unix.mkdir "artifacts" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Msts.Svg.save "artifacts/figure2.svg" (Msts.Svg.render sched);
  print_endline "  [checked against the paper's values; artifacts/figure2.svg written]"

(* ---------------- E3/E4: Lemmas 1 and 2 on random instances ------------- *)

let lemma_sweep () =
  let rng = seeded 101 in
  let trials = 400 in
  let failures1 = ref 0 and failures2 = ref 0 in
  for _ = 1 to trials do
    let p = 1 + Msts.Prng.int rng 5 in
    let n = 1 + Msts.Prng.int rng 15 in
    let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p in
    if not (Msts.Chain_lemmas.check_no_crossing_throughout chain n) then
      incr failures1;
    if not (Msts.Chain_lemmas.subchain_projection chain n) then incr failures2
  done;
  Printf.printf
    "E3 (Lemma 1, Fig. 4): no candidate crossing in %d/%d random constructions.\n"
    (trials - !failures1) trials;
  Printf.printf
    "E4 (Lemma 2): sub-chain projection held in %d/%d random constructions.\n"
    (trials - !failures2) trials;
  assert (!failures1 = 0 && !failures2 = 0)

(* ---------------- E5: Theorem 1 — chain optimality ---------------- *)

let chain_optimality () =
  let rng = seeded 2003 in
  let profiles =
    [
      ("default", Msts.Generator.default_profile);
      ("balanced", Msts.Generator.balanced_profile);
      ("compute-bound", Msts.Generator.compute_bound_profile);
      ("comm-bound", Msts.Generator.comm_bound_profile);
    ]
  in
  let table =
    Msts.Table.create ~title:"E5 (Theorem 1): algorithm vs brute force on random chains"
      ~columns:[ "profile"; "instances"; "agreements"; "max |gap|" ]
  in
  List.iter
    (fun (name, profile) ->
      let trials = 150 in
      let agree = ref 0 and max_gap = ref 0 in
      for _ = 1 to trials do
        let p = 1 + Msts.Prng.int rng 4 in
        let n = Msts.Prng.int rng 7 in
        let chain = Msts.Generator.chain rng profile ~p in
        let a = Msts.Chain_algorithm.makespan chain n in
        let b = Msts.Brute_force.chain_makespan chain n in
        if a = b then incr agree;
        max_gap := max !max_gap (abs (a - b))
      done;
      Msts.Table.add_row table
        [ name; string_of_int trials; string_of_int !agree; string_of_int !max_gap ];
      assert (!agree = trials))
    profiles;
  Msts.Table.print table

(* ---------------- E6: Figure 6 — node expansion ---------------- *)

let fig6 () =
  let table =
    Msts.Table.create
      ~title:"E6 (Figure 6): virtual single-task nodes of a slave (c,w)"
      ~columns:[ "slave"; "rank 0"; "rank 1"; "rank 2"; "rank 3" ]
  in
  List.iter
    (fun (c, w) ->
      Msts.Table.add_row table
        (Printf.sprintf "(c=%d,w=%d)" c w
        :: List.map
             (fun rank ->
               string_of_int (Msts.Fork_expansion.virtual_work ~c ~w ~rank))
             [ 0; 1; 2; 3 ]))
    [ (2, 4); (5, 4); (3, 3); (1, 10) ];
  Msts.Table.print table;
  print_endline "  (rank r needs w + r*max(c,w) after its transfer: the j-th"
  ;
  print_endline "   task from the end on a slave cannot start later than that)"

(* ---------------- E7: Figure 7 — chain -> fork transformation ----------- *)

let fig7 () =
  let chain = Msts.Chain.of_pairs [ (2, 3); (3, 5) ] in
  let deadline = 14 in
  let leg = Msts.Chain_deadline.schedule chain ~deadline in
  let nodes = Msts.Spider_transform.virtual_nodes ~leg:1 ~deadline leg in
  let table =
    Msts.Table.create
      ~title:
        "E7 (Figure 7): virtual fork of the Figure-2 chain at T_lim=14 \
         (paper: works {12,10,8,6,3}, comms all 2)"
      ~columns:[ "leg task"; "emission C1"; "comm"; "virtual work" ]
  in
  List.iter
    (fun v ->
      let task = Msts.Spider_transform.task_of_rank leg ~rank:v.Msts.Fork_expansion.rank in
      let c1 = Msts.Comm_vector.first_emission (Msts.Schedule.entry leg task).comms in
      Msts.Table.add_row table
        [
          string_of_int task;
          string_of_int c1;
          string_of_int v.Msts.Fork_expansion.comm;
          string_of_int v.Msts.Fork_expansion.work;
        ])
    nodes;
  Msts.Table.print table;
  let works =
    List.sort compare (List.map (fun v -> v.Msts.Fork_expansion.work) nodes)
  in
  assert (works = [ 3; 6; 8; 10; 12 ]);
  print_endline "  [checked against the paper's values]"

(* ---------------- E9: Theorem 3 — spider optimality ---------------- *)

let spider_optimality () =
  let rng = seeded 31337 in
  let trials = 120 in
  let agree_makespan = ref 0 and agree_tasks = ref 0 and used = ref 0 in
  for _ = 1 to trials do
    let legs = 1 + Msts.Prng.int rng 3 in
    let spider =
      Msts.Generator.spider rng Msts.Generator.balanced_profile ~legs ~max_depth:2
    in
    if Msts.Spider.processor_count spider <= 5 then begin
      incr used;
      let n = 1 + Msts.Prng.int rng 5 in
      if
        Msts.Spider_algorithm.min_makespan spider n
        = Msts.Brute_force.spider_makespan spider n
      then incr agree_makespan;
      let d = Msts.Prng.int rng 40 in
      if
        min 5 (Msts.Spider_algorithm.max_tasks ~budget:5 spider ~deadline:d)
        = Msts.Brute_force.spider_max_tasks spider ~deadline:d ~limit:5
      then incr agree_tasks
    end
  done;
  Printf.printf
    "E9 (Theorem 3): spider vs brute force on %d random spiders:\n\
    \  optimal makespan agreement: %d/%d\n\
    \  deadline task-count agreement: %d/%d\n"
    !used !agree_makespan !used !agree_tasks !used;
  assert (!agree_makespan = !used && !agree_tasks = !used)

(* ---------------- E11: heuristics gap ---------------- *)

let heuristics_gap () =
  let rng = seeded 555 in
  let profiles =
    [
      ("default", Msts.Generator.default_profile);
      ("compute-bound", Msts.Generator.compute_bound_profile);
      ("comm-bound", Msts.Generator.comm_bound_profile);
    ]
  in
  let policies = Msts.List_sched.all_chain_policies in
  let table =
    Msts.Table.create
      ~title:
        "E11: heuristic makespan / optimal makespan (geometric mean over 60 \
         random chains, p=6, n=40)"
      ~columns:("profile" :: List.map Msts.List_sched.chain_policy_name policies
               @ [ "LB/opt" ])
  in
  List.iter
    (fun (name, profile) ->
      let trials = 60 in
      let ratios = Array.make_matrix (List.length policies) trials 0.0 in
      let bound_ratio = Array.make trials 0.0 in
      for t = 0 to trials - 1 do
        let chain = Msts.Generator.chain rng profile ~p:6 in
        let n = 40 in
        let opt = float_of_int (Msts.Chain_algorithm.makespan chain n) in
        List.iteri
          (fun i policy ->
            ratios.(i).(t) <-
              float_of_int (Msts.List_sched.chain_makespan policy chain n) /. opt)
          policies;
        bound_ratio.(t) <- float_of_int (Msts.Bounds.combined_bound chain n) /. opt
      done;
      Msts.Table.add_row table
        (name
        :: List.mapi
             (fun i _ ->
               Printf.sprintf "%.3f" (Msts.Stats.geometric_mean ratios.(i)))
             policies
        @ [ Printf.sprintf "%.3f" (Msts.Stats.geometric_mean bound_ratio) ]))
    profiles;
  Msts.Table.print table;
  print_endline
    "  (every ratio >= 1.000 by Theorem 1; LB/opt <= 1.000 by construction)"

(* ---------------- E12: deadline staircase ---------------- *)

let deadline_staircase () =
  let chain = Msts.Chain.of_pairs [ (2, 3); (3, 5) ] in
  let table =
    Msts.Table.create
      ~title:"E12: tasks completed within T_lim (Figure-2 chain) and inverse check"
      ~columns:[ "T_lim"; "tasks"; "opt makespan for that many" ]
  in
  List.iter
    (fun d ->
      let k = Msts.Chain_deadline.max_tasks chain ~deadline:d in
      Msts.Table.add_row table
        [
          string_of_int d;
          string_of_int k;
          string_of_int (Msts.Chain_algorithm.makespan chain k);
        ];
      (* inverse consistency *)
      assert (Msts.Chain_algorithm.makespan chain k <= d))
    [ 4; 5; 7; 8; 10; 11; 13; 14; 16; 17; 20; 25; 30 ];
  Msts.Table.print table

(* ---------------- steady-state convergence (supports E11) --------------- *)

let throughput_convergence () =
  let chain = Msts.Chain.of_pairs [ (2, 3); (3, 5) ] in
  let rho = Msts.Steady_state.chain_throughput chain in
  let table =
    Msts.Table.create
      ~title:
        (Printf.sprintf
           "steady state: optimal makespan/n vs asymptotic 1/rho = %.3f" (1.0 /. rho))
      ~columns:[ "n"; "makespan"; "makespan/n" ]
  in
  List.iter
    (fun n ->
      let m = Msts.Chain_algorithm.makespan chain n in
      Msts.Table.add_row table
        [
          string_of_int n;
          string_of_int m;
          Printf.sprintf "%.4f" (float_of_int m /. float_of_int n);
        ])
    [ 5; 10; 20; 50; 100; 200; 500; 1000 ];
  Msts.Table.print table

(* ---------------- pull-policy transient (supports E11) --------------- *)

let pull_gap () =
  let rng = seeded 808 in
  let table =
    Msts.Table.create
      ~title:
        "online demand-driven master vs optimal (mean over 30 random spiders, \
         3 legs, depth <= 3)"
      ~columns:[ "n"; "pull b=1 / opt"; "pull b=2 / opt"; "ECT / opt" ]
  in
  List.iter
    (fun n ->
      let trials = 30 in
      let r1 = Array.make trials 0.0
      and r2 = Array.make trials 0.0
      and r3 = Array.make trials 0.0 in
      for t = 0 to trials - 1 do
        let spider =
          Msts.Generator.spider rng Msts.Generator.default_profile ~legs:3
            ~max_depth:3
        in
        let opt = float_of_int (Msts.Spider_algorithm.min_makespan spider n) in
        let mk b =
          float_of_int
            (Msts.Spider_schedule.makespan
               (Msts.Netsim.pull_policy ~buffer:b spider ~tasks:n))
          /. opt
        in
        r1.(t) <- mk 1;
        r2.(t) <- mk 2;
        r3.(t) <-
          float_of_int
            (Msts.List_sched.(spider_makespan Spider_earliest_completion) spider n)
          /. opt
      done;
      Msts.Table.add_row table
        [
          string_of_int n;
          Printf.sprintf "%.3f" (Msts.Stats.mean r1);
          Printf.sprintf "%.3f" (Msts.Stats.mean r2);
          Printf.sprintf "%.3f" (Msts.Stats.mean r3);
        ])
    [ 5; 10; 20; 40 ];
  Msts.Table.print table

(* ---------------- activation frontier (chain usage analysis) ----------- *)

let activation_frontier () =
  let layers = 6 in
  let chain_for hop =
    Msts.Chain.of_pairs
      (List.map
         (fun k -> (hop, max 1 (24 / min (2 * k) 10)))
         (Msts.Intx.range 1 layers))
  in
  let table =
    Msts.Table.create
      ~title:
        "activation frontier: least n at which each layer of a layered chain \
         receives work (by hop latency)"
      ~columns:
        ("hop"
        :: List.map (fun k -> Printf.sprintf "layer %d" k) (Msts.Intx.range 1 layers))
  in
  List.iter
    (fun hop ->
      let chain = chain_for hop in
      Msts.Table.add_row table
        (string_of_int hop
        :: List.map
             (fun k ->
               match Msts.Chain_analysis.activation_threshold chain ~k ~max_n:200 with
               | Some n -> string_of_int n
               | None -> "-")
             (Msts.Intx.range 1 layers)))
    [ 1; 2; 3; 5; 8 ];
  Msts.Table.print table;
  print_endline
    "  (cheap hops light layers up almost immediately; expensive hops push"
  ;
  print_endline "   the activation thresholds out or beyond the tested range)"

(* ---------------- heterogeneity sweep (supports §1's motivation) -------- *)

let heterogeneity_sweep () =
  let rng = seeded 909 in
  let trials = 50 in
  let n = 40 and p = 6 in
  let table =
    Msts.Table.create
      ~title:
        (Printf.sprintf
           "heterogeneity sweep: same mean scale, growing spread (%d chains \
            each, p=%d, n=%d)"
           trials p n)
      ~columns:
        [ "spread"; "mean CV"; "ECT/opt"; "round-robin/opt"; "LB/opt"; "opt/n" ]
  in
  List.iter
    (fun spread ->
      let cv = Array.make trials 0.0
      and ect = Array.make trials 0.0
      and rr = Array.make trials 0.0
      and lb = Array.make trials 0.0
      and per_task = Array.make trials 0.0 in
      for t = 0 to trials - 1 do
        let profile =
          Msts.Generator.spread_profile ~mean_latency:5 ~mean_work:12 ~spread
        in
        let chain = Msts.Generator.chain rng profile ~p in
        let opt = float_of_int (Msts.Chain_algorithm.makespan chain n) in
        cv.(t) <- Msts.Generator.heterogeneity chain;
        ect.(t) <-
          float_of_int (Msts.List_sched.(chain_makespan Earliest_completion) chain n)
          /. opt;
        rr.(t) <-
          float_of_int (Msts.List_sched.(chain_makespan Round_robin) chain n) /. opt;
        lb.(t) <- float_of_int (Msts.Bounds.combined_bound chain n) /. opt;
        per_task.(t) <- opt /. float_of_int n
      done;
      Msts.Table.add_row table
        [
          Printf.sprintf "%.1f" spread;
          Printf.sprintf "%.3f" (Msts.Stats.mean cv);
          Printf.sprintf "%.3f" (Msts.Stats.geometric_mean ect);
          Printf.sprintf "%.3f" (Msts.Stats.geometric_mean rr);
          Printf.sprintf "%.3f" (Msts.Stats.geometric_mean lb);
          Printf.sprintf "%.2f" (Msts.Stats.mean per_task);
        ])
    [ 0.0; 0.5; 1.0; 2.0; 4.0 ];
  Msts.Table.print table;
  print_endline
    "  (the more heterogeneous the platform, the more myopic rules pay;"
  ;
  print_endline "   spread 0.0 is the homogeneous control)"

(* ---------------- finite-buffer sensitivity (model extension) ----------- *)

let buffer_sensitivity () =
  let rng = seeded 13579 in
  let trials = 40 in
  let n = 30 in
  let table =
    Msts.Table.create
      ~title:
        (Printf.sprintf
           "finite buffers: realised/planned makespan of the optimal plan \
            (mean over %d random spiders, n=%d)"
           trials n)
      ~columns:[ "buffer"; "mean inflation"; "max inflation"; "plans unharmed" ]
  in
  let plans =
    List.init trials (fun _ ->
        let spider =
          Msts.Generator.spider rng Msts.Generator.default_profile ~legs:3
            ~max_depth:3
        in
        Msts.Spider_algorithm.schedule_tasks spider n)
  in
  List.iter
    (fun buffer ->
      let ratios =
        Array.of_list
          (List.map
             (fun plan ->
               let report = Msts.Netsim.execute_plan_bounded ~buffer plan in
               float_of_int report.Msts.Netsim.realized_makespan
               /. float_of_int report.Msts.Netsim.planned_makespan)
             plans)
      in
      let unharmed =
        Array.fold_left (fun acc r -> if r <= 1.0 +. 1e-9 then acc + 1 else acc) 0 ratios
      in
      let _, hi = Msts.Stats.min_max ratios in
      Msts.Table.add_row table
        [
          string_of_int buffer;
          Printf.sprintf "%.4f" (Msts.Stats.mean ratios);
          Printf.sprintf "%.4f" hi;
          Printf.sprintf "%d/%d" unharmed trials;
        ])
    [ 1; 2; 3; 8; 30 ];
  Msts.Table.print table;
  print_endline
    "  (the paper's model assumes unlimited buffering; with per-node slots"
  ;
  print_endline
    "   the optimal plan's routing survives but its dates can slip)"

(* ---------------- failure injection / robustness ---------------- *)

let robustness () =
  let rng = seeded 24680 in
  let trials = 30 in
  let n = 30 in
  let table =
    Msts.Table.create
      ~title:
        (Printf.sprintf
           "failure injection: one random processor slows down by a factor \
            (mean makespan ratios vs replanning, %d random spiders, n=%d)"
           trials n)
      ~columns:
        [ "slowdown"; "static plan / replan"; "pull b=2 / replan"; "replan / healthy" ]
  in
  List.iter
    (fun factor ->
      let static = Array.make trials 0.0
      and pull = Array.make trials 0.0
      and replan = Array.make trials 0.0 in
      for t = 0 to trials - 1 do
        let spider =
          Msts.Generator.spider rng Msts.Generator.default_profile ~legs:3
            ~max_depth:3
        in
        let plan = Msts.Spider_algorithm.schedule_tasks spider n in
        let addresses = Array.of_list (Msts.Spider.addresses spider) in
        let victim = addresses.(Msts.Prng.int rng (Array.length addresses)) in
        let hurt = Msts.Netsim.degrade spider ~address:victim ~work_factor:factor in
        let replanned = float_of_int (Msts.Spider_algorithm.min_makespan hurt n) in
        static.(t) <-
          float_of_int
            (Msts.Netsim.replay_routing ~on:hurt plan).Msts.Netsim.realized_makespan
          /. replanned;
        pull.(t) <-
          float_of_int
            (Msts.Spider_schedule.makespan
               (Msts.Netsim.pull_policy ~buffer:2 hurt ~tasks:n))
          /. replanned;
        replan.(t) <-
          replanned /. float_of_int (Msts.Spider_schedule.makespan plan)
      done;
      Msts.Table.add_row table
        [
          Printf.sprintf "x%d" factor;
          Printf.sprintf "%.3f" (Msts.Stats.mean static);
          Printf.sprintf "%.3f" (Msts.Stats.mean pull);
          Printf.sprintf "%.3f" (Msts.Stats.mean replan);
        ])
    [ 1; 2; 4; 8 ];
  Msts.Table.print table;
  print_endline
    "  (mild faults: the static optimal plan stays ahead of the oblivious"
  ;
  print_endline
    "   pull master; severe faults: adaptivity wins -- the crossover is the"
  ;
  print_endline "   planning-vs-reacting trade-off in one table)"

(* ---------------- prefix sweep: how many processors are worth having --- *)

let prefix_sweep () =
  let chain =
    Msts.Chain.of_pairs [ (2, 9); (1, 7); (3, 6); (2, 5); (1, 8); (4, 4) ]
  in
  let table =
    Msts.Table.create
      ~title:
        "prefix sweep: optimal makespan using only the first k processors \
         (fixed 6-processor chain)"
      ~columns:[ "k"; "n=10"; "n=40"; "n=160"; "steady rate" ]
  in
  List.iter
    (fun k ->
      let prefix = Msts.Chain.prefix chain k in
      Msts.Table.add_row table
        [
          string_of_int k;
          string_of_int (Msts.Chain_algorithm.makespan prefix 10);
          string_of_int (Msts.Chain_algorithm.makespan prefix 40);
          string_of_int (Msts.Chain_algorithm.makespan prefix 160);
          Printf.sprintf "%.3f" (Msts.Steady_state.chain_throughput prefix);
        ])
    (Msts.Intx.range 1 (Msts.Chain.length chain));
  Msts.Table.print table;
  print_endline
    "  (each extra processor helps monotonically -- the algebraic property"
  ;
  print_endline
    "   tests prove it can never hurt -- but with diminishing returns once"
  ;
  print_endline "   the steady rate approaches the first link's 1/c1 cap)"

let all : (string * string * (unit -> unit)) list =
  [
    ("fig1", "Figures 1 & 5: chain and spider platform renderings", fig1);
    ("fig2", "Figure 2: the worked optimal schedule", fig2);
    ("lemmas", "Lemmas 1 & 2 on random instances (E3/E4)", lemma_sweep);
    ("chain-optimality", "Theorem 1 vs brute force (E5)", chain_optimality);
    ("fig6", "Figure 6: virtual-node expansion", fig6);
    ("fig7", "Figure 7: chain->fork transformation", fig7);
    ("spider-optimality", "Theorem 3 vs brute force (E9)", spider_optimality);
    ("heuristics", "heuristic gap across profiles (E11)", heuristics_gap);
    ("heterogeneity", "heuristic gap vs heterogeneity spread", heterogeneity_sweep);
    ("activation", "activation frontier of a layered chain", activation_frontier);
    ("prefix-sweep", "marginal value of each extra processor", prefix_sweep);
    ("deadline", "deadline staircase and inverse (E12)", deadline_staircase);
    ("throughput", "steady-state convergence", throughput_convergence);
    ("pull", "online pull policy transient cost", pull_gap);
    ("buffers", "finite-buffer sensitivity of optimal plans", buffer_sensitivity);
    ("robustness", "failure injection: static plan vs replanning vs pull", robustness);
  ]
