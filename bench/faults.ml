(* Mid-run fault injection: blind static replay vs online replanning vs the
   demand-driven pull master, under identical seeded fault traces.  Unlike
   bench/experiments.ml's `robustness` (which degrades the platform before
   the run), faults here strike while tasks are in flight. *)

let seeded seed = Msts.Prng.create seed

let figure2_spider () =
  Msts.Spider.make
    [|
      Msts.Chain.of_pairs [ (2, 3); (3, 5) ];
      Msts.Chain.of_pairs [ (1, 4); (2, 6); (1, 3) ];
    |]

let mid_run () =
  let rng = seeded 20030408 in
  let trials = 20 in
  let n = 20 in
  let table =
    Msts.Table.create
      ~title:
        (Printf.sprintf
           "mid-run faults (mean makespan ratios, %d random spiders, n=%d, \
            identical traces per row)"
           trials n)
      ~columns:
        [
          "events";
          "static / replan";
          "pull / replan";
          "replan / planned";
          "replans adopted";
        ]
  in
  List.iter
    (fun events ->
      let static = Array.make trials 0.0
      and pull = Array.make trials 0.0
      and stretch = Array.make trials 0.0 in
      let adopted = ref 0 in
      for t = 0 to trials - 1 do
        let spider =
          Msts.Generator.spider rng Msts.Generator.default_profile ~legs:3
            ~max_depth:3
        in
        let plan = Msts.Spider_algorithm.schedule_tasks spider n in
        let planned = Msts.Spider_schedule.makespan plan in
        let trace = Msts.Fault.random rng spider ~events ~horizon:planned in
        let blind = Msts.Netsim.replay_under_faults ~trace plan in
        let smart = Msts.Replan.replay ~trace plan in
        let demand = Msts.Netsim.pull_under_faults ~trace spider ~tasks:n in
        let sm = smart.Msts.Replan.report.Msts.Netsim.observed_makespan in
        (* the replanner's defining guarantee *)
        assert (sm <= blind.Msts.Netsim.observed_makespan);
        adopted := !adopted + smart.Msts.Replan.replans;
        static.(t) <-
          float_of_int blind.Msts.Netsim.observed_makespan /. float_of_int sm;
        pull.(t) <-
          float_of_int demand.Msts.Netsim.observed_makespan /. float_of_int sm;
        stretch.(t) <- float_of_int sm /. float_of_int planned
      done;
      Msts.Table.add_row table
        [
          string_of_int events;
          Printf.sprintf "%.3f" (Msts.Stats.mean static);
          Printf.sprintf "%.3f" (Msts.Stats.mean pull);
          Printf.sprintf "%.3f" (Msts.Stats.mean stretch);
          Printf.sprintf "%d/%d" !adopted trials;
        ])
    [ 1; 2; 4; 8 ];
  Msts.Table.print table;
  print_endline
    "  (every trial checks replan <= static; heavier traces widen the gap"
  ;
  print_endline
    "   because each crash strands more of the blindly-followed plan)"

(* Deterministic fast path for CI: a handful of fixed scenarios, each with
   the invariants asserted. *)
let smoke () =
  let spider = figure2_spider () in
  let n = 8 in
  let plan = Msts.Spider_algorithm.schedule_tasks spider n in
  (* 1. empty trace reproduces the fault-free executors exactly *)
  let base = Msts.Netsim.replay_routing plan in
  let quiet = Msts.Netsim.replay_under_faults plan in
  assert (
    quiet.Msts.Netsim.observed_makespan = base.Msts.Netsim.realized_makespan);
  let p0 = Msts.Netsim.pull_policy spider ~tasks:n in
  let pq = Msts.Netsim.pull_under_faults spider ~tasks:n in
  assert (Msts.Spider_schedule.makespan p0 = pq.Msts.Netsim.observed_makespan);
  Printf.printf "no-fault parity: replay %d, pull %d\n"
    quiet.Msts.Netsim.observed_makespan pq.Msts.Netsim.observed_makespan;
  (* 2. a scripted trace with all four event kinds *)
  let trace =
    match
      Msts.Fault.parse
        "3 slow-proc 2 2 3\n5 drop 1 2 2\n7 slow-link 2 1 2\n9 crash 2 2\n"
    with
    | Ok t -> t
    | Error msg -> failwith msg
  in
  let blind = Msts.Netsim.replay_under_faults ~trace plan in
  let smart = Msts.Replan.replay ~trace plan in
  let demand = Msts.Netsim.pull_under_faults ~trace spider ~tasks:n in
  Printf.printf "scripted trace: static %d, replan %d (%d adopted), pull %d\n"
    blind.Msts.Netsim.observed_makespan
    smart.Msts.Replan.report.Msts.Netsim.observed_makespan
    smart.Msts.Replan.replans demand.Msts.Netsim.observed_makespan;
  assert (
    smart.Msts.Replan.report.Msts.Netsim.observed_makespan
    <= blind.Msts.Netsim.observed_makespan);
  Array.iter (fun c -> assert (c > 0)) blind.Msts.Netsim.completions;
  Array.iter (fun c -> assert (c > 0)) demand.Msts.Netsim.completions;
  (* 3. seeded random traces keep the guarantee *)
  let rng = seeded 42 in
  for _ = 1 to 10 do
    let trace =
      Msts.Fault.random rng spider ~events:4
        ~horizon:(Msts.Spider_schedule.makespan plan)
    in
    let blind = Msts.Netsim.replay_under_faults ~trace plan in
    let smart = Msts.Replan.replay ~trace plan in
    assert (
      smart.Msts.Replan.report.Msts.Netsim.observed_makespan
      <= blind.Msts.Netsim.observed_makespan)
  done;
  print_endline "seeded traces: replan <= static held on all 10"

let all : (string * string * (unit -> unit)) list =
  [
    ("faults", "mid-run fault injection: static vs replan vs pull", mid_run);
    ("faults-smoke", "fast deterministic fault-injection checks (CI)", smoke);
  ]
