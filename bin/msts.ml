(* msts — command-line front-end to the library.

   Every subcommand works on a platform description file (see
   Msts.Platform_format for the format); `msts generate` produces such
   files.  Solving goes through the `Msts.Solve` facade: chains get the §3
   algorithm, everything else is promoted to a spider for the §7 algorithm.
   Read-only subcommands accept `--format=text|json`; JSON goes through the
   shared `Msts.Json` encoder. *)

open Cmdliner

let read_platform path =
  match Msts.Platform_format.load path with
  | Ok platform -> platform
  | Error msg ->
      Printf.eprintf "error: cannot load platform %s: %s\n" path msg;
      exit 2

let as_spider platform =
  match Msts.Solve.as_spider platform with
  | Ok spider -> spider
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2

(* ---------- common arguments ---------- *)

let platform_arg =
  let doc = "Platform description file." in
  Arg.(required & opt (some file) None & info [ "p"; "platform" ] ~docv:"FILE" ~doc)

let tasks_arg =
  let doc = "Number of tasks to schedule." in
  Arg.(required & opt (some int) None & info [ "n"; "tasks" ] ~docv:"N" ~doc)

let width_arg =
  let doc = "Maximum width (columns) of ASCII Gantt charts." in
  Arg.(value & opt int 100 & info [ "width" ] ~docv:"COLS" ~doc)

let output_arg =
  let doc = "Write to $(docv) instead of standard output." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

type fmt = Text | Json

let format_arg =
  let doc = "Output format: $(b,text) (default) or $(b,json)." in
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json) ]) Text
    & info [ "format" ] ~docv:"FMT" ~doc)

(* Evaluates to () after setting the process-wide kernel, so commands can
   splice it in front of their own arguments. *)
let kernel_setter =
  let doc =
    "Backward-construction kernel: $(b,fast) (single O(p) sweep per task, \
     the default) or $(b,reference) (the paper-literal candidate scan; \
     byte-identical plans, kept as the escape hatch and executable \
     specification)."
  in
  let kernel_conv =
    let parse s =
      match Msts.Solve.kernel_of_string s with
      | Some k -> Ok k
      | None ->
          Error (`Msg (Printf.sprintf "unknown kernel %S (expected fast or reference)" s))
    in
    Arg.conv
      (parse, fun ppf k -> Format.pp_print_string ppf (Msts.Solve.kernel_to_string k))
  in
  Term.(
    const Msts.Solve.set_kernel
    $ Arg.(value & opt kernel_conv Msts.Solve.Fast & info [ "kernel" ] ~docv:"KERNEL" ~doc))

let emit output text =
  match output with
  | None -> print_string text
  | Some path ->
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text)

let emit_json json = print_endline (Msts.Json.to_string ~pretty:true json)

let json_of_table table =
  Msts.Json.of_table ~title:(Msts.Table.title table)
    ~columns:(Msts.Table.columns table) ~rows:(Msts.Table.rows table)

let print_table fmt table =
  match fmt with
  | Text -> Msts.Table.print table
  | Json -> emit_json (json_of_table table)

(* Every solving subcommand routes through the typed request API: build an
   [Msts.Api.op], run it with {!Msts.Api.exec} over the direct (poolless)
   solver, render text from the typed reply or JSON from the one shared
   [Msts.Api.json_of_reply] — the same code path [msts serve] answers on. *)

let die_api (e : Msts.Api.error) =
  Printf.eprintf "error: %s\n" e.Msts.Api.message;
  exit 2

let exec_or_die ?cache_capacity ?(solver = Msts.Api.direct_solver) op =
  match Msts.Api.exec ?cache_capacity ~solver op with
  | Ok reply -> reply
  | Error e -> die_api e

(* ---------- generate ---------- *)

let profile_conv =
  let parse = function
    | "default" -> Ok Msts.Generator.default_profile
    | "balanced" -> Ok Msts.Generator.balanced_profile
    | "compute-bound" -> Ok Msts.Generator.compute_bound_profile
    | "comm-bound" -> Ok Msts.Generator.comm_bound_profile
    | other -> Error (`Msg (Printf.sprintf "unknown profile %S" other))
  in
  Arg.conv (parse, fun ppf _ -> Format.pp_print_string ppf "<profile>")

let generate_cmd =
  let kind =
    let doc = "Platform kind: chain, fork, spider or tree." in
    Arg.(value & opt string "chain" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let size =
    let doc = "Processors per chain / slaves per fork / legs per spider." in
    Arg.(value & opt int 4 & info [ "size" ] ~docv:"P" ~doc)
  in
  let depth =
    let doc = "Maximum leg depth (spiders only)." in
    Arg.(value & opt int 3 & info [ "depth" ] ~docv:"D" ~doc)
  in
  let seed =
    let doc = "PRNG seed (results are reproducible)." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let profile =
    let doc =
      "Heterogeneity profile: default, balanced, compute-bound or comm-bound."
    in
    Arg.(value & opt profile_conv Msts.Generator.default_profile
         & info [ "profile" ] ~docv:"PROFILE" ~doc)
  in
  let run kind size depth seed profile output =
    let rng = Msts.Prng.create seed in
    let platform =
      match kind with
      | "chain" ->
          Msts.Platform_format.Chain_platform (Msts.Generator.chain rng profile ~p:size)
      | "fork" ->
          Msts.Platform_format.Fork_platform (Msts.Generator.fork rng profile ~slaves:size)
      | "spider" ->
          Msts.Platform_format.Spider_platform
            (Msts.Generator.spider rng profile ~legs:size ~max_depth:depth)
      | "tree" ->
          Msts.Platform_format.Tree_platform
            (Msts.Generator.tree rng profile ~nodes:size ~max_children:3)
      | other ->
          Printf.eprintf "error: unknown kind %S\n" other;
          exit 2
    in
    emit output (Msts.Platform_format.platform_to_string platform)
  in
  let doc = "Generate a random platform description." in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(const run $ kind $ size $ depth $ seed $ profile $ output_arg)

(* ---------- schedule ---------- *)

let schedule_cmd =
  let gantt =
    let doc = "Also print an ASCII Gantt chart." in
    Arg.(value & flag & info [ "gantt" ] ~doc)
  in
  let svg =
    let doc = "Write an SVG Gantt chart to $(docv)." in
    Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc)
  in
  let plan_out =
    let doc = "Write the machine-readable schedule to $(docv)." in
    Arg.(value & opt (some string) None & info [ "plan-out" ] ~docv:"FILE" ~doc)
  in
  let csv =
    let doc = "Write a per-task CSV table to $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let run () path n fmt gantt svg plan_out csv width =
    let platform = read_platform path in
    let reply =
      exec_or_die (Msts.Api.Schedule (Msts.Solve.problem ~tasks:n platform))
    in
    let plan =
      match reply with Msts.Api.Solved { plan; _ } -> plan | _ -> assert false
    in
    (match fmt with
    | Text ->
        Printf.printf "optimal makespan: %d\n%s\n" (Msts.Plan.makespan plan)
          (Msts.Plan.to_string plan);
        if gantt then print_endline (Msts.Plan.gantt ~width plan)
    | Json -> emit_json (Msts.Api.json_of_reply reply));
    Option.iter (fun f -> Msts.Svg.save f (Msts.Plan.svg plan)) svg;
    Option.iter (fun f -> emit (Some f) (Msts.Plan.serialize plan)) plan_out;
    Option.iter (fun f -> emit (Some f) (Msts.Plan.to_csv plan ^ "\n")) csv
  in
  let doc = "Compute the optimal schedule for N tasks." in
  Cmd.v (Cmd.info "schedule" ~doc)
    Term.(
      const run $ kernel_setter $ platform_arg $ tasks_arg $ format_arg $ gantt
      $ svg $ plan_out $ csv $ width_arg)

(* ---------- deadline ---------- *)

let deadline_cmd =
  let deadline =
    let doc = "Time limit." in
    Arg.(required & opt (some int) None & info [ "d"; "deadline" ] ~docv:"T" ~doc)
  in
  let run () path deadline fmt =
    let platform = read_platform path in
    let reply =
      exec_or_die (Msts.Api.Deadline (Msts.Solve.problem ~deadline platform))
    in
    let plan =
      match reply with Msts.Api.Solved { plan; _ } -> plan | _ -> assert false
    in
    match fmt with
    | Text ->
        Printf.printf "tasks completed by %d: %d\n%s\n" deadline
          (Msts.Plan.task_count plan)
          (Msts.Plan.to_string plan)
    | Json -> emit_json (Msts.Api.json_of_reply reply)
  in
  let doc = "Maximise the number of tasks completed within a deadline." in
  Cmd.v (Cmd.info "deadline" ~doc)
    Term.(const run $ kernel_setter $ platform_arg $ deadline $ format_arg)

(* ---------- validate ---------- *)

let validate_cmd =
  let plan =
    let doc = "Schedule file produced by $(b,schedule --plan-out)." in
    Arg.(required & opt (some file) None & info [ "plan" ] ~docv:"FILE" ~doc)
  in
  let run path plan_path =
    let text = In_channel.with_open_text plan_path In_channel.input_all in
    match read_platform path with
    | Msts.Platform_format.Chain_platform chain -> (
        match Msts.Serial.schedule_of_string chain text with
        | Error msg ->
            Printf.eprintf "parse error: %s\n" msg;
            exit 2
        | Ok sched -> (
            match Msts.Feasibility.check ~require_nonnegative:true sched with
            | [] ->
                Printf.printf "feasible; makespan %d\n" (Msts.Schedule.makespan sched)
            | violations ->
                List.iter
                  (fun v ->
                    print_endline (Msts.Feasibility.violation_to_string v))
                  violations;
                exit 1))
    | platform -> (
        let spider = as_spider platform in
        match Msts.Serial.spider_schedule_of_string spider text with
        | Error msg ->
            Printf.eprintf "parse error: %s\n" msg;
            exit 2
        | Ok sched -> (
            match Msts.Spider_schedule.check ~require_nonnegative:true sched with
            | [] ->
                Printf.printf "feasible; makespan %d\n"
                  (Msts.Spider_schedule.makespan sched)
            | violations ->
                List.iter print_endline violations;
                exit 1))
  in
  let doc = "Check a schedule against Definition 1 (exit 1 if infeasible)." in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const run $ platform_arg $ plan)

(* ---------- check ---------- *)

let check_cmd =
  let trace_flag =
    let doc =
      "Also run the plan through the simulator under the trace recorder — \
       the eager execution and a seeded fault replay — and audit the \
       recorded events, not just the planned ones."
    in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed for the fault replay recorded under $(b,--trace)." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let events_arg =
    let doc = "Fault events injected into the recorded fault replay." in
    Arg.(value & opt int 3 & info [ "events" ] ~docv:"E" ~doc)
  in
  let run () path n do_trace seed events fmt =
    let platform = read_platform path in
    let reply =
      exec_or_die
        (Msts.Api.Check
           {
             problem = Msts.Solve.problem ~tasks:n platform;
             trace = do_trace;
             seed;
             events;
           })
    in
    let plan, oracle, sections, ok =
      match reply with
      | Msts.Api.Checked { plan; oracle; sections; ok } ->
          (plan, oracle, sections, ok)
      | _ -> assert false
    in
    (match fmt with
    | Text ->
        Printf.printf "plan: %d tasks, makespan %d\n"
          (Msts.Plan.task_count plan) (Msts.Plan.makespan plan);
        (match oracle with
        | [] -> print_endline "feasibility oracle: ok"
        | problems ->
            Printf.printf "feasibility oracle: %d violation(s)\n"
              (List.length problems);
            List.iter (fun p -> Printf.printf "  %s\n" p) problems);
        List.iter
          (fun { Msts.Api.label; trace; violations } ->
            match violations with
            | [] ->
                Printf.printf "%s: %d events — all invariants hold\n" label
                  (Msts.Trace.length trace)
            | _ ->
                Printf.printf "%s: %d events\n%s\n" label
                  (Msts.Trace.length trace)
                  (Msts.Trace.report trace violations))
          sections
    | Json -> emit_json (Msts.Api.json_of_reply reply));
    if not ok then exit 1
  in
  let doc =
    "Audit a solved plan with the trace invariant checker \
     (docs/VERIFICATION.md): the planned trace always, plus ($(b,--trace)) \
     the recorded eager execution and a seeded fault replay.  The \
     feasibility oracle runs alongside as a cross-check.  Exits 1 on any \
     violation."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ kernel_setter $ platform_arg $ tasks_arg $ trace_flag
      $ seed_arg $ events_arg $ format_arg)

(* ---------- explain ---------- *)

let explain_cmd =
  let run path n =
    match read_platform path with
    | Msts.Platform_format.Chain_platform chain ->
        print_string (Msts.Chain_trace.render (Msts.Chain_trace.run chain n))
    | platform ->
        let spider = as_spider platform in
        let deadline = Msts.Spider_algorithm.min_makespan spider n in
        print_string
          (Msts.Spider_trace.render (Msts.Spider_trace.run ~budget:n spider ~deadline))
  in
  let doc = "Narrate the construction step by step (chains and spiders)." in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const run $ platform_arg $ tasks_arg)

(* ---------- bounds ---------- *)

let bounds_cmd =
  let run path n fmt =
    let table =
      match read_platform path with
      | Msts.Platform_format.Chain_platform chain ->
          let table =
            Msts.Table.create ~title:(Printf.sprintf "bounds and schedulers, n=%d" n)
              ~columns:[ "method"; "makespan" ]
          in
          Msts.Table.add_row table
            [ "port lower bound"; string_of_int (Msts.Bounds.port_bound chain n) ];
          Msts.Table.add_row table
            [ "capacity lower bound"; string_of_int (Msts.Bounds.capacity_bound chain n) ];
          Msts.Table.add_row table
            [ "fluid lower bound"; Msts.Table.cell_float (Msts.Bounds.fluid_bound chain n) ];
          Msts.Table.add_row table
            [ "optimal (this paper)"; string_of_int (Msts.Chain_algorithm.makespan chain n) ];
          List.iter
            (fun policy ->
              Msts.Table.add_row table
                [
                  "heuristic " ^ Msts.List_sched.chain_policy_name policy;
                  string_of_int (Msts.List_sched.chain_makespan policy chain n);
                ])
            Msts.List_sched.all_chain_policies;
          table
      | platform ->
          let spider = as_spider platform in
          let table =
            Msts.Table.create ~title:(Printf.sprintf "bounds and schedulers, n=%d" n)
              ~columns:[ "method"; "makespan" ]
          in
          Msts.Table.add_row table
            [
              "port lower bound";
              string_of_int (Msts.Bounds.spider_port_bound spider n);
            ];
          Msts.Table.add_row table
            [
              "capacity lower bound";
              string_of_int (Msts.Bounds.spider_capacity_bound spider n);
            ];
          Msts.Table.add_row table
            [
              "fluid lower bound";
              Msts.Table.cell_float (Msts.Bounds.spider_fluid_bound spider n);
            ];
          Msts.Table.add_row table
            [
              "optimal (this paper)";
              string_of_int (Msts.Spider_algorithm.min_makespan spider n);
            ];
          List.iter
            (fun policy ->
              Msts.Table.add_row table
                [
                  "heuristic " ^ Msts.List_sched.spider_policy_name policy;
                  string_of_int (Msts.List_sched.spider_makespan policy spider n);
                ])
            Msts.List_sched.all_spider_policies;
          table
    in
    print_table fmt table
  in
  let doc = "Compare the optimal makespan with lower bounds and heuristics." in
  Cmd.v (Cmd.info "bounds" ~doc)
    Term.(const run $ platform_arg $ tasks_arg $ format_arg)

(* ---------- throughput ---------- *)

let throughput_cmd =
  let run path =
    let spider = as_spider (read_platform path) in
    let rates = Msts.Steady_state.spider_leg_rates spider in
    Printf.printf "steady-state throughput: %.4f tasks/unit\n"
      (Msts.Steady_state.spider_throughput spider);
    Array.iteri
      (fun idx rate -> Printf.printf "  leg %d: %.4f tasks/unit\n" (idx + 1) rate)
      rates
  in
  let doc = "Bandwidth-centric steady-state analysis." in
  Cmd.v (Cmd.info "throughput" ~doc) Term.(const run $ platform_arg)

(* ---------- pull ---------- *)

let pull_cmd =
  let buffer =
    let doc = "Per-processor credit of the demand-driven master." in
    Arg.(value & opt int 1 & info [ "buffer" ] ~docv:"B" ~doc)
  in
  let run path n buffer =
    let spider = as_spider (read_platform path) in
    let sched = Msts.Netsim.pull_policy ~buffer spider ~tasks:n in
    let optimal = Msts.Spider_algorithm.min_makespan spider n in
    Printf.printf
      "demand-driven makespan: %d (optimal %d, overhead %.1f%%)\n"
      (Msts.Spider_schedule.makespan sched)
      optimal
      (100.0
      *. (float_of_int (Msts.Spider_schedule.makespan sched - optimal)
         /. float_of_int (max optimal 1)))
  in
  let doc = "Simulate the online demand-driven baseline (SETI@home style)." in
  Cmd.v (Cmd.info "pull" ~doc) Term.(const run $ platform_arg $ tasks_arg $ buffer)

(* ---------- tree ---------- *)

let tree_cmd =
  let run path n =
    match read_platform path with
    | Msts.Platform_format.Tree_platform tree ->
        let table =
          Msts.Table.create
            ~title:(Printf.sprintf "tree scheduling, n=%d" n)
            ~columns:[ "method"; "makespan" ]
        in
        List.iter
          (fun (name, policy) ->
            Msts.Table.add_row table
              [
                "cover: " ^ name;
                string_of_int (Msts.Tree_heuristics.spider_cover_makespan policy tree n);
              ])
          [
            ("fastest processor", Msts.Tree.Fastest_processor);
            ("cheapest link", Msts.Tree.Cheapest_link);
            ("best subtree rate", Msts.Tree.Best_rate);
          ];
        List.iter
          (fun policy ->
            Msts.Table.add_row table
              [
                "forward: " ^ Msts.Tree_heuristics.policy_name policy;
                string_of_int (Msts.Tree_heuristics.makespan policy tree n);
              ])
          Msts.Tree_heuristics.all_policies;
        Msts.Table.add_row table
          [ "lower bound"; string_of_int (Msts.Tree_search.lower_bound tree n) ];
        Msts.Table.print table;
        Printf.printf "steady-state rate of the full tree: %.4f tasks/unit\n"
          (Msts.Tree_steady.throughput tree)
    | _ ->
        Printf.eprintf "error: `msts tree` expects a tree platform\n";
        exit 2
  in
  let doc = "Schedule on a general tree via spider covers and heuristics." in
  Cmd.v (Cmd.info "tree" ~doc) Term.(const run $ platform_arg $ tasks_arg)

(* ---------- metrics ---------- *)

let metrics_cmd =
  let run () path n fmt =
    let platform = read_platform path in
    let reply =
      exec_or_die (Msts.Api.Metrics (Msts.Solve.problem ~tasks:n platform))
    in
    let plan =
      match reply with Msts.Api.Measured plan -> plan | _ -> assert false
    in
    match (fmt, plan) with
    | Text, Msts.Plan.Chain sched -> print_string (Msts.Metrics.summary sched)
    | Text, Msts.Plan.Spider sched ->
        print_string (Msts.Metrics.spider_summary sched)
    | Json, _ -> emit_json (Msts.Api.json_of_reply reply)
  in
  let doc = "Waiting, buffering and utilisation report for the optimal schedule." in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(const run $ kernel_setter $ platform_arg $ tasks_arg $ format_arg)

(* ---------- faults ---------- *)

let faults_cmd =
  let trace_arg =
    let doc =
      "Fault trace file: one `<time> <kind> <leg> <depth> [<value>]` per \
       line, kinds slow-proc, slow-link, drop, crash.  Omit to generate a \
       seeded random trace instead."
    in
    Arg.(value & opt (some file) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed for the generated trace (ignored with --trace)." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let events_arg =
    let doc = "Number of events in the generated trace (ignored with --trace)." in
    Arg.(value & opt int 4 & info [ "events" ] ~docv:"E" ~doc)
  in
  let gantt_arg =
    let doc = "Also print the realised routing of the replanned run." in
    Arg.(value & flag & info [ "gantt" ] ~doc)
  in
  let run path n trace_file seed events fmt gantt width =
    let spider = as_spider (read_platform path) in
    let plan = Msts.Spider_algorithm.schedule_tasks spider n in
    let planned = Msts.Spider_schedule.makespan plan in
    let trace =
      match trace_file with
      | Some file -> (
          match Msts.Fault.load file with
          | Ok trace -> trace
          | Error msg ->
              Printf.eprintf "error: cannot load trace %s: %s\n" file msg;
              exit 2)
      | None ->
          if events < 0 then (
            Printf.eprintf "error: --events must be >= 0\n";
            exit 2);
          Msts.Fault.random (Msts.Prng.create seed) spider ~events
            ~horizon:planned
    in
    (match Msts.Fault.validate spider trace with
    | [] -> ()
    | problems ->
        Printf.eprintf "error: trace does not fit the platform:\n";
        List.iter (fun p -> Printf.eprintf "  %s\n" p) problems;
        exit 2);
    if fmt = Text then
      Printf.printf "fault trace:\n%s" (Msts.Fault.to_string trace);
    let static, replanned, pull =
      try
        ( Msts.Netsim.replay_under_faults ~trace plan,
          Msts.Replan.replay ~trace plan,
          Msts.Netsim.pull_under_faults ~trace spider ~tasks:n )
      with Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    in
    let table =
      Msts.Table.create
        ~title:(Printf.sprintf "execution under faults, n=%d" n)
        ~columns:[ "policy"; "makespan"; "aborted"; "re-issued"; "retries" ]
    in
    Msts.Table.add_row table
      [ "planned (no faults)"; string_of_int planned; "-"; "-"; "-" ];
    let row name (r : Msts.Netsim.fault_report) =
      Msts.Table.add_row table
        [
          name;
          string_of_int r.observed_makespan;
          string_of_int r.aborted_ops;
          string_of_int r.returned_tasks;
          string_of_int r.transfer_retries;
        ]
    in
    row "static replay (blind)" static;
    row
      (Printf.sprintf "replan on fault (%d/%d adopted)" replanned.Msts.Replan.replans
         replanned.Msts.Replan.considered)
      replanned.Msts.Replan.report;
    row "demand-driven pull" pull;
    (match fmt with
    | Text ->
        Msts.Table.print table;
        if gantt then
          print_string
            (Msts.Gantt.render_spider ~width replanned.Msts.Replan.report.observed)
    | Json ->
        emit_json
          (Msts.Json.Obj
             [
               ( "trace",
                 Msts.Json.List
                   (Msts.Fault.to_string trace |> String.split_on_char '\n'
                   |> List.filter (fun l -> l <> "")
                   |> List.map (fun l -> Msts.Json.String l)) );
               ("replans_adopted", Msts.Json.Int replanned.Msts.Replan.replans);
               ("replans_considered", Msts.Json.Int replanned.Msts.Replan.considered);
               ("results", json_of_table table);
             ]))
  in
  let doc =
    "Inject mid-run faults (slowdowns, transfer drops, crashes) and compare \
     blind static replay, online replanning and the demand-driven baseline."
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(
      const run $ platform_arg $ tasks_arg $ trace_arg $ seed_arg $ events_arg
      $ format_arg $ gantt_arg $ width_arg)

(* ---------- batch ---------- *)

let batch_cmd =
  let manifest_arg =
    let doc =
      "Manifest file: one instance per line, `<platform-file> <tasks> \
       [<deadline>]` ($(b,-) for no task budget), `#` comments ignored."
    in
    Arg.(value & opt (some file) None & info [ "manifest" ] ~docv:"FILE" ~doc)
  in
  let count_arg =
    let doc = "Generate $(docv) seeded random instances instead of reading a manifest." in
    Arg.(value & opt (some int) None & info [ "count" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed for the generated instances." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains ($(b,0) = one per recommended core).  Outputs are \
       byte-identical whatever $(docv) is."
    in
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"J" ~doc)
  in
  let cache_arg =
    let doc = "Capacity of the LRU solve cache." in
    Arg.(value & opt int 256 & info [ "cache-size" ] ~docv:"K" ~doc)
  in
  let parse_manifest path =
    let problems = ref [] in
    In_channel.with_open_text path (fun ic ->
        let lineno = ref 0 in
        try
          while true do
            let line = In_channel.input_line ic |> Option.get in
            incr lineno;
            let line =
              match String.index_opt line '#' with
              | Some i -> String.sub line 0 i
              | None -> line
            in
            match String.split_on_char ' ' line |> List.filter (( <> ) "") with
            | [] -> ()
            | file :: rest ->
                let objective name = function
                  | "-" -> None
                  | s -> (
                      match int_of_string_opt s with
                      | Some v -> Some v
                      | None ->
                          Printf.eprintf "error: %s:%d: bad %s %S\n" path !lineno
                            name s;
                          exit 2)
                in
                let tasks, deadline =
                  match rest with
                  | [ n ] -> (objective "task count" n, None)
                  | [ n; d ] -> (objective "task count" n, objective "deadline" d)
                  | _ ->
                      Printf.eprintf
                        "error: %s:%d: expected `<file> <tasks> [<deadline>]`\n"
                        path !lineno;
                      exit 2
                in
                problems :=
                  Msts.Solve.problem ?tasks ?deadline (read_platform file)
                  :: !problems
          done
        with Invalid_argument _ -> ());
    Array.of_list (List.rev !problems)
  in
  (* Seeded mixed workload: all four generator profiles, three platform
     shapes, and a deterministic sprinkling of exact duplicates so the
     solve cache has something to do. *)
  let generated ~count ~seed =
    let rng = Msts.Prng.create seed in
    let profiles =
      [|
        Msts.Generator.default_profile;
        Msts.Generator.balanced_profile;
        Msts.Generator.compute_bound_profile;
        Msts.Generator.comm_bound_profile;
      |]
    in
    let fresh i =
      let profile = profiles.(i mod Array.length profiles) in
      let platform =
        match i mod 3 with
        | 0 ->
            Msts.Platform_format.Chain_platform
              (Msts.Generator.chain rng profile ~p:(Msts.Prng.int_in rng 2 5))
        | 1 ->
            Msts.Platform_format.Spider_platform
              (Msts.Generator.spider rng profile
                 ~legs:(Msts.Prng.int_in rng 2 4)
                 ~max_depth:2)
        | _ ->
            Msts.Platform_format.Fork_platform
              (Msts.Generator.fork rng profile ~slaves:(Msts.Prng.int_in rng 2 5))
      in
      Msts.Solve.problem ~tasks:(Msts.Prng.int_in rng 3 24) platform
    in
    let out = Array.make count (Msts.Solve.problem (fresh 0).Msts.Solve.platform) in
    for i = 0 to count - 1 do
      out.(i) <- (if i mod 4 = 3 then out.(i / 2) else fresh i)
    done;
    out
  in
  let run () manifest count seed jobs cache_size fmt =
    if cache_size < 1 then begin
      Printf.eprintf "error: --cache-size must be >= 1\n";
      exit 2
    end;
    let problems =
      match (manifest, count) with
      | Some _, Some _ ->
          Printf.eprintf "error: --manifest and --count are mutually exclusive\n";
          exit 2
      | Some path, None -> parse_manifest path
      | None, Some n ->
          if n < 1 then begin
            Printf.eprintf "error: --count must be >= 1\n";
            exit 2
          end;
          generated ~count:n ~seed
      | None, None ->
          Printf.eprintf "error: give either --manifest or --count\n";
          exit 2
    in
    let cache = Msts.Batch.cache ~capacity:cache_size in
    let jobs = if jobs <= 0 then None else Some jobs in
    let solver requests =
      Msts.Batch.run ?jobs ~cache ~solve:Msts.Solve.solve requests
    in
    let reply =
      exec_or_die ~cache_capacity:cache_size ~solver (Msts.Api.Batch problems)
    in
    let outcomes, stats =
      match reply with
      | Msts.Api.Batched { outcomes; stats; _ } -> (outcomes, stats)
      | _ -> assert false
    in
    let kind_of i =
      match problems.(i).Msts.Solve.platform with
      | Msts.Platform_format.Chain_platform _ -> "chain"
      | Msts.Platform_format.Fork_platform _ -> "fork"
      | Msts.Platform_format.Spider_platform _ -> "spider"
      | Msts.Platform_format.Tree_platform _ -> "tree"
    in
    let failures =
      Array.fold_left
        (fun acc -> function Ok _ -> acc | Error _ -> acc + 1)
        0 outcomes
    in
    (match fmt with
    | Text ->
        Printf.printf "batch: %d instances (cache capacity %d)\n"
          stats.Msts.Batch.requests cache_size;
        Array.iteri
          (fun i outcome ->
            match outcome with
            | Ok plan ->
                Printf.printf "  %d: kind=%s tasks=%d makespan=%d\n" (i + 1)
                  (kind_of i) (Msts.Plan.task_count plan) (Msts.Plan.makespan plan)
            | Error msg ->
                Printf.printf "  %d: kind=%s error=%s\n" (i + 1) (kind_of i) msg)
          outcomes;
        (* The counter block `msts profile` would show, without running a
           sink: batch statistics are part of the deterministic output. *)
        Printf.printf "pool.cache_hits: %d\n" stats.Msts.Batch.cache_hits;
        Printf.printf "pool.cache_misses: %d\n" stats.Msts.Batch.cache_misses;
        Printf.printf "pool.solves: %d\n" stats.Msts.Batch.cache_misses
    | Json -> emit_json (Msts.Api.json_of_reply reply));
    if failures > 0 then exit 1
  in
  let doc =
    "Solve many instances at once on a domain pool with an LRU solve cache.  \
     Results are in submission order and byte-identical for any --jobs."
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const run $ kernel_setter $ manifest_arg $ count_arg $ seed_arg $ jobs_arg
      $ cache_arg $ format_arg)

(* ---------- profile ---------- *)

let profile_cmd =
  let tasks_arg =
    let doc = "Number of tasks in the profiled workload." in
    Arg.(value & opt int 16 & info [ "n"; "tasks" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Solve for a deadline instead of a task count." in
    Arg.(value & opt (some int) None & info [ "d"; "deadline" ] ~docv:"T" ~doc)
  in
  let workload_arg =
    let doc =
      "Workload to instrument: $(b,solve) (construction only), \
       $(b,execute) (solve, then event-driven execution; default), \
       $(b,pull) (demand-driven baseline) or $(b,faults) (seeded fault \
       trace with online replanning)."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("solve", Msts.Api.Solve_only);
               ("execute", Msts.Api.Execute);
               ("pull", Msts.Api.Pull);
               ("faults", Msts.Api.Faults);
             ])
          Msts.Api.Execute
      & info [ "workload" ] ~docv:"KIND" ~doc)
  in
  let trace_out_arg =
    let doc = "Write a Chrome trace_event JSON file to $(docv) (open in \
               about:tracing or Perfetto)." in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed for the faults workload." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let events_arg =
    let doc = "Fault events for the faults workload." in
    Arg.(value & opt int 4 & info [ "events" ] ~docv:"E" ~doc)
  in
  let run () path n deadline workload trace_out seed events fmt =
    let platform = read_platform path in
    let reply =
      exec_or_die
        (Msts.Api.Profile { platform; tasks = n; deadline; workload; seed; events })
    in
    let summary, mem =
      match reply with
      | Msts.Api.Profiled { summary; mem } -> (summary, mem)
      | _ -> assert false
    in
    let trace_info =
      Option.map
        (fun file ->
          let trace = Msts.Obs.Memory.chrome_trace mem in
          let text = Msts.Json.to_string ~pretty:true trace in
          emit (Some file) (text ^ "\n");
          (* re-read and re-parse: the written artefact itself is checked *)
          let events =
            match
              Msts.Json.parse (In_channel.with_open_text file In_channel.input_all)
            with
            | Error msg ->
                Printf.eprintf "error: emitted trace is invalid JSON: %s\n" msg;
                exit 1
            | Ok json -> (
                match Msts.Json.member "traceEvents" json with
                | Some (Msts.Json.List evs) -> List.length evs
                | _ ->
                    Printf.eprintf "error: emitted trace lacks traceEvents\n";
                    exit 1)
          in
          (file, events))
        trace_out
    in
    match fmt with
    | Text ->
        List.iter
          (fun (key, value) ->
            let v =
              match value with
              | Msts.Json.String s -> s
              | Msts.Json.Int i -> string_of_int i
              | other -> Msts.Json.to_string other
            in
            Printf.printf "%s: %s\n" key v)
          summary;
        let counters =
          Msts.Table.create ~title:"counters" ~columns:[ "counter"; "total" ]
        in
        List.iter (Msts.Table.add_row counters) (Msts.Obs.Memory.counter_rows mem);
        Msts.Table.print counters;
        let spans =
          Msts.Table.create ~title:"spans"
            ~columns:[ "span"; "calls"; "total_us"; "max_us"; "p50_us"; "p99_us" ]
        in
        List.iter (Msts.Table.add_row spans) (Msts.Obs.Memory.span_rows mem);
        Msts.Table.print spans;
        (match Msts.Obs.Memory.histogram_rows mem with
        | [] -> ()
        | rows ->
            let hists =
              Msts.Table.create ~title:"histograms"
                ~columns:[ "histogram"; "count"; "p50"; "p90"; "p99"; "max" ]
            in
            List.iter (Msts.Table.add_row hists) rows;
            Msts.Table.print hists);
        Option.iter
          (fun (file, events) ->
            Printf.printf "trace: %s (%d events, valid chrome trace)\n" file events)
          trace_info
    | Json -> (
        let trace_fields =
          match trace_info with
          | None -> []
          | Some (file, events) ->
              [
                ( "trace",
                  Msts.Json.Obj
                    [
                      ("file", Msts.Json.String file);
                      ("events", Msts.Json.Int events);
                    ] );
              ]
        in
        match Msts.Api.json_of_reply reply with
        | Msts.Json.Obj kvs -> emit_json (Msts.Json.Obj (kvs @ trace_fields))
        | other -> emit_json other)
  in
  let doc =
    "Run a solve/simulate workload with the observability sink installed: \
     counter totals, span timings, and optionally a Chrome trace_event \
     file for about:tracing / Perfetto."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ kernel_setter $ platform_arg $ tasks_arg $ deadline_arg
      $ workload_arg $ trace_out_arg $ seed_arg $ events_arg $ format_arg)

(* ---------- report ---------- *)

let report_cmd =
  let tasks_arg =
    let doc = "Number of tasks in the reported workload." in
    Arg.(value & opt int 16 & info [ "n"; "tasks" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Solve for a deadline instead of a task count." in
    Arg.(value & opt (some int) None & info [ "d"; "deadline" ] ~docv:"T" ~doc)
  in
  let planned_arg =
    let doc = "Report the planned schedule instead of the realized execution." in
    Arg.(value & flag & info [ "planned" ] ~doc)
  in
  let run () path n deadline planned fmt =
    let platform = read_platform path in
    let problem =
      match deadline with
      | Some d -> Msts.Solve.problem ~deadline:d platform
      | None -> Msts.Solve.problem ~tasks:n platform
    in
    let reply = exec_or_die (Msts.Api.Report { problem; planned }) in
    let source, report =
      match reply with
      | Msts.Api.Reported { source; report } -> (source, report)
      | _ -> assert false
    in
    match fmt with
    | Text ->
        Printf.printf "source: %s\n" source;
        print_string (Msts.Obs.Report.summary report)
    | Json -> emit_json (Msts.Api.json_of_reply reply)
  in
  let doc =
    "Per-resource utilization of a run: master-port saturation, per-link \
     busy fractions, and per-processor compute/starved/idle breakdowns \
     (the three sum to the makespan exactly)."
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ kernel_setter $ platform_arg $ tasks_arg $ deadline_arg
      $ planned_arg $ format_arg)

(* ---------- trace diff ---------- *)

let trace_diff_cmd =
  let file_a =
    let doc =
      "Baseline profile JSON ($(b,msts profile --format=json) output or a \
       $(b,BENCH_*.json) file)."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc)
  in
  let file_b =
    let doc = "Candidate profile JSON compared against the baseline." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CANDIDATE" ~doc)
  in
  let threshold_arg =
    let doc =
      "Relative increase (percent) beyond which a change counts as a \
       regression."
    in
    Arg.(value & opt float 10.0 & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  (* Only deterministic material is compared: counter totals, span call
     counts and the simulated-time histograms.  Wall-clock span durations
     vary run to run and would make the exit status flaky. *)
  let load_profile path =
    let text = In_channel.with_open_text path In_channel.input_all in
    match Msts.Json.parse text with
    | Error msg ->
        Printf.eprintf "error: %s: %s\n" path msg;
        exit 2
    | Ok json -> (
        match Msts.Json.member "profile" json with
        | Some profile -> profile (* BENCH_<name>.json wrapper *)
        | None -> json)
  in
  let run file_a file_b threshold fmt =
    let a = load_profile file_a and b = load_profile file_b in
    let changes = ref [] in
    let note section name metric va vb =
      if va <> vb then changes := (section, name, metric, va, vb) :: !changes
    in
    let names kvs kvs' =
      List.sort_uniq compare (List.map fst kvs @ List.map fst kvs')
    in
    let int_member key = function
      | Some (Msts.Json.Obj kvs) -> (
          match List.assoc_opt key kvs with
          | Some (Msts.Json.Int i) -> i
          | _ -> 0)
      | _ -> 0
    in
    (* top-level summary integers: makespans, task counts *)
    (match (a, b) with
    | Msts.Json.Obj ka, Msts.Json.Obj kb ->
        List.iter
          (fun name ->
            let get kvs =
              match List.assoc_opt name kvs with
              | Some (Msts.Json.Int i) -> Some i
              | _ -> None
            in
            match (get ka, get kb) with
            | Some va, Some vb -> note "summary" name "value" va vb
            | _ -> ())
          (names ka kb)
    | _ -> ());
    let section name json =
      match Msts.Json.member name json with
      | Some (Msts.Json.Obj kvs) -> kvs
      | _ -> []
    in
    let ca = section "counters" a and cb = section "counters" b in
    List.iter
      (fun name ->
        let get kvs =
          match List.assoc_opt name kvs with
          | Some (Msts.Json.Int i) -> i
          | _ -> 0
        in
        note "counter" name "total" (get ca) (get cb))
      (names ca cb);
    let sa = section "spans" a and sb = section "spans" b in
    List.iter
      (fun name ->
        note "span" name "calls"
          (int_member "calls" (List.assoc_opt name sa))
          (int_member "calls" (List.assoc_opt name sb)))
      (names sa sb);
    let ha = section "histograms" a and hb = section "histograms" b in
    List.iter
      (fun name ->
        List.iter
          (fun metric ->
            note "histogram" name metric
              (int_member metric (List.assoc_opt name ha))
              (int_member metric (List.assoc_opt name hb)))
          [ "count"; "p50"; "p99"; "max" ])
      (names ha hb);
    let changes = List.rev !changes in
    let regression (_, _, _, va, vb) =
      vb > va
      && float_of_int (vb - va) *. 100.0 > threshold *. float_of_int (max va 1)
    in
    let regressions = List.filter regression changes in
    let delta_pct va vb =
      100.0 *. float_of_int (vb - va) /. float_of_int (max va 1)
    in
    (match fmt with
    | Text ->
        Printf.printf "trace diff: %s -> %s (threshold %.1f%%)\n" file_a file_b
          threshold;
        if changes = [] then print_endline "no differences"
        else begin
          let table =
            Msts.Table.create ~title:"changes"
              ~columns:
                [ "section"; "name"; "metric"; "baseline"; "candidate"; "delta" ]
          in
          List.iter
            (fun ((s, n, m, va, vb) as c) ->
              Msts.Table.add_row table
                [
                  s;
                  n;
                  m;
                  string_of_int va;
                  string_of_int vb;
                  Printf.sprintf "%+.1f%%%s" (delta_pct va vb)
                    (if regression c then " !" else "");
                ])
            changes;
          Msts.Table.print table
        end;
        Printf.printf "regressions: %d\n" (List.length regressions)
    | Json ->
        let change_json ((s, n, m, va, vb) as c) =
          Msts.Json.Obj
            [
              ("section", Msts.Json.String s);
              ("name", Msts.Json.String n);
              ("metric", Msts.Json.String m);
              ("baseline", Msts.Json.Int va);
              ("candidate", Msts.Json.Int vb);
              ("regression", Msts.Json.Bool (regression c));
            ]
        in
        emit_json
          (Msts.Json.Obj
             [
               ("baseline", Msts.Json.String file_a);
               ("candidate", Msts.Json.String file_b);
               ("threshold_pct", Msts.Json.Float threshold);
               ("changes", Msts.Json.List (List.map change_json changes));
               ("regressions", Msts.Json.Int (List.length regressions));
             ]));
    if regressions <> [] then exit 1
  in
  let doc =
    "Compare two profile JSON files: counter deltas, span call-count deltas \
     and simulated-time histogram shifts (p50/p99/max).  Exits 1 when any \
     metric regressed beyond the threshold."
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(const run $ file_a $ file_b $ threshold_arg $ format_arg)

let trace_cmd =
  let doc = "Operate on saved profile JSON artefacts." in
  Cmd.group (Cmd.info "trace" ~doc) [ trace_diff_cmd ]

(* ---------- serve ---------- *)

let socket_arg =
  let doc = "Unix-domain socket path of the daemon." in
  Arg.(
    value & opt string "msts.sock" & info [ "s"; "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let jobs_arg =
    let doc = "Worker domains of the solve pool ($(b,0) = one per recommended core)." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"J" ~doc)
  in
  let cache_arg =
    let doc = "Capacity of the shared LRU solve cache." in
    Arg.(value & opt int 256 & info [ "cache-size" ] ~docv:"K" ~doc)
  in
  let queue_arg =
    let doc =
      "Admission control: queued solve requests beyond $(docv) are rejected \
       with the $(b,overloaded) error code."
    in
    Arg.(value & opt int 1024 & info [ "queue-cap" ] ~docv:"Q" ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-request queue-wait deadline in milliseconds (checked at dispatch; \
       $(b,0) disables timeouts)."
    in
    Arg.(value & opt int 0 & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let batch_arg =
    let doc = "Most work units launched per dispatch round." in
    Arg.(value & opt int 32 & info [ "max-batch" ] ~docv:"B" ~doc)
  in
  let conn_queue_arg =
    let doc =
      "Per-connection admission control: one connection's queued requests \
       beyond $(docv) are rejected with $(b,overloaded) even when the \
       global queue has room."
    in
    Arg.(value & opt int 256 & info [ "max-queue-per-conn" ] ~docv:"Q" ~doc)
  in
  let quantum_arg =
    let doc =
      "Deficit-round-robin credit per scheduler visit: work units one \
       connection may launch per fairness turn."
    in
    Arg.(value & opt int 1 & info [ "quantum" ] ~docv:"N" ~doc)
  in
  let inflight_arg =
    let doc =
      "Most work units concurrently in flight on worker domains ($(b,0) = \
       twice the pool size)."
    in
    Arg.(value & opt int 0 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let telemetry_arg =
    let doc = "Stream every observability event to $(docv) as JSONL." in
    Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)
  in
  let ring_arg =
    let doc = "Post-mortem ring buffer size (last-N telemetry events)." in
    Arg.(value & opt int 1024 & info [ "ring" ] ~docv:"N" ~doc)
  in
  let quiet_arg =
    let doc = "Suppress the readiness and shutdown notices." in
    Arg.(value & flag & info [ "quiet" ] ~doc)
  in
  let slow_log_arg =
    let doc =
      "Retain the $(docv) slowest requests (by total latency) in the \
       $(b,stats) reply's slow-request log ($(b,0) disables it)."
    in
    Arg.(value & opt int 16 & info [ "slow-log" ] ~docv:"K" ~doc)
  in
  let metrics_out_arg =
    let doc =
      "Atomically rewrite $(docv) with the live Prometheus text exposition \
       (write to $(docv).tmp, rename) — point a node-exporter textfile \
       collector or a file-scraping agent at it."
    in
    Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let metrics_interval_arg =
    let doc = "Seconds between $(b,--metrics-out) rewrites." in
    Arg.(value & opt float 1.0 & info [ "metrics-interval" ] ~docv:"S" ~doc)
  in
  let run () socket jobs cache_size queue_cap timeout_ms max_batch
      max_queue_per_conn quantum max_inflight telemetry ring quiet slow_log
      metrics_out metrics_interval =
    List.iter
      (fun (what, v) ->
        if v < 1 then begin
          Printf.eprintf "error: --%s must be >= 1\n" what;
          exit 2
        end)
      [
        ("jobs", jobs);
        ("cache-size", cache_size);
        ("queue-cap", queue_cap);
        ("max-batch", max_batch);
        ("max-queue-per-conn", max_queue_per_conn);
        ("quantum", quantum);
        ("ring", ring);
      ];
    if timeout_ms < 0 then begin
      Printf.eprintf "error: --timeout-ms must be >= 0\n";
      exit 2
    end;
    if slow_log < 0 then begin
      Printf.eprintf "error: --slow-log must be >= 0\n";
      exit 2
    end;
    if max_inflight < 0 then begin
      Printf.eprintf "error: --max-inflight must be >= 0\n";
      exit 2
    end;
    if metrics_interval <= 0.0 then begin
      Printf.eprintf "error: --metrics-interval must be > 0\n";
      exit 2
    end;
    let cfg =
      {
        Msts_serve.Server.socket_path = socket;
        engine =
          {
            Msts_serve.Engine.jobs;
            cache_capacity = cache_size;
            queue_cap;
            timeout_us = timeout_ms * 1000;
            max_batch;
            slow_log;
            max_queue_per_conn;
            quantum;
            max_inflight;
          };
        telemetry;
        ring_capacity = ring;
        quiet;
        metrics_out;
        metrics_interval;
      }
    in
    exit (Msts_serve.Server.run cfg)
  in
  let doc =
    "Run the solver as a persistent daemon on a Unix-domain socket (JSONL \
     framing, versioned typed requests — see docs/API.md).  Requests are \
     served from a bounded queue on a domain pool with the shared LRU solve \
     cache; SIGTERM drains in-flight work before exiting."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ kernel_setter $ socket_arg $ jobs_arg $ cache_arg $ queue_arg
      $ timeout_arg $ batch_arg $ conn_queue_arg $ quantum_arg $ inflight_arg
      $ telemetry_arg $ ring_arg $ quiet_arg $ slow_log_arg $ metrics_out_arg
      $ metrics_interval_arg)

(* ---------- call ---------- *)

let call_cmd =
  let frame_arg =
    let doc =
      "The request: one JSONL frame, e.g. \
       $(b,{\"op\":\"ping\"}) or \
       $(b,{\"op\":\"schedule\",\"platform\":\"chain\\\\n1 3\\\\n2 2\",\"tasks\":4}) \
       (the platform travels as its canonical multi-line serialization, \
       newlines escaped)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"REQUEST" ~doc)
  in
  let raw_arg =
    let doc = "Print the raw response frame instead of the decoded payload." in
    Arg.(value & flag & info [ "raw" ] ~doc)
  in
  let stdin_arg =
    let doc =
      "Stream request frames from standard input over one connection, in \
       lockstep (send a frame, print its response, repeat) — scripted \
       online sessions keep their session ids valid because the \
       connection persists."
    in
    Arg.(value & flag & info [ "stdin" ] ~doc)
  in
  let print_response ~raw line =
    if raw then begin
      print_endline line;
      0
    end
    else
      match Msts.Api.response_of_line line with
      | Error e ->
          Printf.eprintf "error: unreadable response: %s\n" e.Msts.Api.message;
          2
      | Ok { Msts.Api.result = Ok payload; _ } ->
          print_endline (Msts.Json.to_string ~pretty:true payload);
          0
      | Ok { Msts.Api.result = Error e; _ } ->
          Printf.eprintf "error [%s]: %s\n"
            (Msts.Api.error_code_to_string e.Msts.Api.code)
            e.Msts.Api.message;
          1
  in
  let run socket frame raw use_stdin =
    match Msts_serve.Client.connect socket with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | Ok client ->
        let exchange frame =
          Msts_serve.Client.send_line client frame;
          match Msts_serve.Client.recv_line client with
          | Some line -> print_response ~raw line
          | None ->
              Printf.eprintf "error: connection closed by server\n";
              2
        in
        let status =
          match (use_stdin, frame) with
          | true, Some _ | false, None ->
              Printf.eprintf
                "error: give either one REQUEST frame or --stdin\n";
              2
          | false, Some frame -> exchange frame
          | true, None ->
              let worst = ref 0 in
              (try
                 while true do
                   let line = input_line stdin in
                   if String.trim line <> "" then
                     worst := max !worst (exchange line)
                 done
               with End_of_file -> ());
              !worst
        in
        Msts_serve.Client.close client;
        if status <> 0 then exit status
  in
  let doc =
    "Send request frames to a running $(b,msts serve) daemon and print the \
     responses — the decoded $(b,ok) payload (pretty JSON, byte-identical \
     to the matching subcommand's $(b,--format=json) output), or the raw \
     frame with $(b,--raw).  One positional frame, or a JSONL stream over \
     a single connection with $(b,--stdin) (how scripted online sessions \
     talk to the daemon).  Exits 1 on a structured error response."
  in
  Cmd.v (Cmd.info "call" ~doc)
    Term.(const run $ socket_arg $ frame_arg $ raw_arg $ stdin_arg)

(* ---------- stats ---------- *)

let stats_cmd =
  let watch_arg =
    let doc = "Poll the daemon repeatedly instead of printing one snapshot." in
    Arg.(value & flag & info [ "w"; "watch" ] ~doc)
  in
  let interval_arg =
    let doc = "Seconds between polls with $(b,--watch)." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"S" ~doc)
  in
  let count_arg =
    let doc =
      "Stop after $(docv) polls with $(b,--watch) ($(b,0) = poll forever)."
    in
    Arg.(value & opt int 0 & info [ "count" ] ~docv:"N" ~doc)
  in
  let metrics_arg =
    let doc =
      "Print the Prometheus text exposition (the $(b,metrics) control op) \
       instead of the $(b,stats) JSON."
    in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let run socket watch interval count metrics =
    if interval <= 0.0 then begin
      Printf.eprintf "error: --interval must be > 0\n";
      exit 2
    end;
    if count < 0 then begin
      Printf.eprintf "error: --count must be >= 0\n";
      exit 2
    end;
    match Msts_serve.Client.connect socket with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | Ok client ->
        let frame =
          if metrics then {|{"op":"metrics"}|} else {|{"op":"stats"}|}
        in
        let print_payload payload =
          (* The metrics payload wraps the exposition; print the body raw
             so the output pipes straight into promtool-style checkers. *)
          match payload with
          | Msts.Json.Obj fields when metrics -> (
              match List.assoc_opt "body" fields with
              | Some (Msts.Json.String body) -> print_string body
              | _ -> print_endline (Msts.Json.to_string ~pretty:true payload))
          | _ -> print_endline (Msts.Json.to_string ~pretty:true payload)
        in
        let once () =
          Msts_serve.Client.send_line client frame;
          match Msts_serve.Client.recv_line client with
          | None ->
              Printf.eprintf "error: connection closed by server\n";
              2
          | Some line -> (
              match Msts.Api.response_of_line line with
              | Error e ->
                  Printf.eprintf "error: unreadable response: %s\n"
                    e.Msts.Api.message;
                  2
              | Ok { Msts.Api.result = Ok payload; _ } ->
                  print_payload payload;
                  0
              | Ok { Msts.Api.result = Error e; _ } ->
                  Printf.eprintf "error [%s]: %s\n"
                    (Msts.Api.error_code_to_string e.Msts.Api.code)
                    e.Msts.Api.message;
                  1)
        in
        let rec loop i =
          let status = once () in
          if status <> 0 then status
          else if (not watch) || (count > 0 && i + 1 >= count) then 0
          else begin
            flush stdout;
            Unix.sleepf interval;
            print_endline "---";
            loop (i + 1)
          end
        in
        let status = loop 0 in
        Msts_serve.Client.close client;
        if status <> 0 then exit status
  in
  let doc =
    "Show a running $(b,msts serve) daemon's live counters: one $(b,stats) \
     snapshot (pretty JSON — queue depth, served/rejected totals, the \
     per-request queue-wait/solve/encode latency breakdown and the \
     slow-request log), polled repeatedly with $(b,--watch) (snapshots \
     separated by $(b,---)), or the Prometheus text exposition with \
     $(b,--metrics).  Exits 2 when the daemon is unreachable."
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const run $ socket_arg $ watch_arg $ interval_arg $ count_arg
      $ metrics_arg)

(* ---------- online ---------- *)

let online_cmd =
  let script_arg =
    let doc =
      "Read request frames from $(docv) instead of standard input (one \
       JSONL frame per line, blank lines and $(b,#) comments ignored)."
    in
    Arg.(value & opt (some file) None & info [ "script" ] ~docv:"FILE" ~doc)
  in
  let run () script =
    (* The same Msts_online.Service the daemon engine embeds, driven
       locally: transcripts are byte-identical to a daemon session. *)
    let svc = Msts_online.Service.create () in
    let step line =
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then ()
      else
        let response =
          match Msts.Api.request_of_line line with
          | Error e ->
              {
                Msts.Api.id = Msts.Api.frame_id line;
                trace = Msts.Api.frame_trace line;
                result = Error e;
              }
          | Ok { Msts.Api.id; trace; op } ->
              let result =
                if Msts_online.Service.handles op then
                  Msts_online.Service.exec svc op
                else
                  Error
                    (Msts.Api.error Msts.Api.Bad_request
                       (Printf.sprintf
                          "%s is not an online operation; use msts call"
                          (Msts.Api.op_name op)))
              in
              { Msts.Api.id; trace; result }
        in
        print_string (Msts.Api.response_to_line response)
    in
    let each ic = try
        while true do
          step (input_line ic)
        done
      with End_of_file -> ()
    in
    match script with
    | None -> each stdin
    | Some path -> In_channel.with_open_text path each
  in
  let doc =
    "Run an anytime-scheduling session locally: read $(b,online-*) request \
     frames (JSONL, from $(b,--script) or standard input), apply them to an \
     in-process session registry, and print one response frame per request \
     — tasks arrive over time, the solver streams $(b,placed) / \
     $(b,displaced) / $(b,rejected) / $(b,frozen) deltas, and the plan's \
     executed prefix is immutable.  The exact frames a $(b,msts serve) \
     daemon would produce for the same requests (docs/ONLINE.md)."
  in
  Cmd.v (Cmd.info "online" ~doc) Term.(const run $ kernel_setter $ script_arg)

(* ---------- dot ---------- *)

let dot_cmd =
  let run path output = emit output (Msts.Dot.of_platform (read_platform path)) in
  let doc = "Export the platform as a Graphviz DOT graph." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ platform_arg $ output_arg)

let main_cmd =
  let doc = "optimal master-slave tasking on heterogeneous chains and spiders" in
  let info = Cmd.info "msts" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      generate_cmd;
      schedule_cmd;
      deadline_cmd;
      validate_cmd;
      check_cmd;
      explain_cmd;
      bounds_cmd;
      throughput_cmd;
      pull_cmd;
      faults_cmd;
      batch_cmd;
      metrics_cmd;
      profile_cmd;
      report_cmd;
      serve_cmd;
      call_cmd;
      stats_cmd;
      online_cmd;
      trace_cmd;
      tree_cmd;
      dot_cmd;
    ]

let () =
  try exit (Cmd.eval ~catch:false main_cmd) with
  | Sys_error msg ->
      (* unwritable -o/--svg/--plan-out/--csv/--trace-out targets etc. *)
      Printf.eprintf "error: %s\n" msg;
      exit 2
  | e ->
      Printf.eprintf "msts: internal error, uncaught exception:\n      %s\n"
        (Printexc.to_string e);
      exit 125
