(* Tests for the core contribution: the backward chain algorithm (§3), its
   deadline variant (§7), the structural lemmas (§4) and the construction
   trace. *)

open Helpers

(* ---------- the paper's worked example (Figure 2 / Figure 7) ---------- *)

let figure2_exact () =
  let s = Msts.Chain_algorithm.schedule figure2_chain 5 in
  Alcotest.(check int) "makespan 14" 14 (Msts.Schedule.makespan s);
  let expect = [ (1, 2, [ 0 ]); (1, 5, [ 2 ]); (2, 9, [ 4; 6 ]); (1, 8, [ 6 ]); (1, 11, [ 9 ]) ] in
  List.iteri
    (fun idx (proc, start, comms) ->
      let e = Msts.Schedule.entry s (idx + 1) in
      Alcotest.(check int) (Printf.sprintf "P(%d)" (idx + 1)) proc e.Msts.Schedule.proc;
      Alcotest.(check int) (Printf.sprintf "T(%d)" (idx + 1)) start e.Msts.Schedule.start;
      Alcotest.(check (list int))
        (Printf.sprintf "C(%d)" (idx + 1))
        comms
        (Array.to_list e.Msts.Schedule.comms))
    expect

let figure2_second_task_buffered () =
  (* the dashed curve of Figure 2: task 2 arrives at 4 but starts at 5 *)
  let s = Msts.Chain_algorithm.schedule figure2_chain 5 in
  let e = Msts.Schedule.entry s 2 in
  let arrival =
    e.Msts.Schedule.comms.(0) + Msts.Chain.latency figure2_chain 1
  in
  Alcotest.(check int) "arrival" 4 arrival;
  Alcotest.(check int) "start (delayed by one)" 5 e.Msts.Schedule.start

let horizon_formula () =
  Alcotest.(check int) "T-inf" 17 (Msts.Chain_algorithm.horizon figure2_chain 5);
  Alcotest.(check int) "T-inf n=0" 0 (Msts.Chain_algorithm.horizon figure2_chain 0)

(* ---------- limit cases ---------- *)

let single_processor () =
  let chain = Msts.Chain.of_pairs [ (2, 5) ] in
  let s = Msts.Chain_algorithm.schedule chain 4 in
  Alcotest.(check int) "p=1 makespan" (2 + (3 * 5) + 5) (Msts.Schedule.makespan s);
  Alcotest.(check bool) "feasible" true (check_feasible s)

let single_processor_comm_bound () =
  let chain = Msts.Chain.of_pairs [ (5, 2) ] in
  let s = Msts.Chain_algorithm.schedule chain 4 in
  Alcotest.(check int) "comm-bound makespan" (5 + (3 * 5) + 2) (Msts.Schedule.makespan s)

let single_task () =
  (* n=1 picks the processor with minimal path latency + work *)
  let chain = Msts.Chain.of_pairs [ (2, 30); (3, 4); (1, 20) ] in
  let s = Msts.Chain_algorithm.schedule chain 1 in
  Alcotest.(check int) "best processor" 2 (Msts.Schedule.entry s 1).Msts.Schedule.proc;
  Alcotest.(check int) "makespan" (2 + 3 + 4) (Msts.Schedule.makespan s)

let zero_tasks () =
  let s = Msts.Chain_algorithm.schedule figure2_chain 0 in
  Alcotest.(check int) "empty" 0 (Msts.Schedule.task_count s);
  Alcotest.(check int) "makespan 0" 0 (Msts.Schedule.makespan s);
  Alcotest.(check int) "makespan fn" 0 (Msts.Chain_algorithm.makespan figure2_chain 0)

let negative_tasks_rejected () =
  Alcotest.check_raises "negative n"
    (Invalid_argument "Algorithm.schedule: negative task count") (fun () ->
      ignore (Msts.Chain_algorithm.schedule figure2_chain (-1)))

(* ---------- candidate machinery ---------- *)

let candidates_shape () =
  let st = Msts.Chain_algorithm.initial_state figure2_chain ~horizon:17 in
  let cands = Msts.Chain_algorithm.candidates figure2_chain st in
  Alcotest.(check int) "one candidate per processor" 2 (Array.length cands);
  Alcotest.(check int) "candidate 1 length" 1 (Array.length cands.(0));
  Alcotest.(check int) "candidate 2 length" 2 (Array.length cands.(1));
  (* from the paper's walk-through: first placement on P1 emits at 12 *)
  Alcotest.(check int) "kC1 for P1" 12 cands.(0).(0);
  Alcotest.(check (list int)) "kC for P2" [ 7; 9 ] (Array.to_list cands.(1));
  Alcotest.(check int) "select picks P1" 0 (Msts.Chain_algorithm.select cands)

let place_updates_state () =
  let st = Msts.Chain_algorithm.initial_state figure2_chain ~horizon:17 in
  let step = Msts.Chain_algorithm.place figure2_chain st ~task:5 in
  Alcotest.(check int) "chose P1" 1 step.Msts.Chain_algorithm.chosen_proc;
  Alcotest.(check int) "start 14" 14 step.Msts.Chain_algorithm.start;
  Alcotest.(check int) "occupancy updated" 14 st.Msts.Chain_algorithm.occupancy.(0);
  Alcotest.(check int) "hull updated" 12 st.Msts.Chain_algorithm.hull.(0);
  Alcotest.(check int) "other hull untouched" 17 st.Msts.Chain_algorithm.hull.(1)

(* ---------- schedules are always feasible ---------- *)

let always_feasible =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:400 ~name:"algorithm output satisfies Definition 1"
       (chain_with_n_arb ~max_p:6 ~max_n:25 ~max_val:12 ())
       (fun (chain, n) -> check_feasible (Msts.Chain_algorithm.schedule chain n)))

let emissions_sorted =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"tasks are emitted in index order"
       (chain_with_n_arb ~max_p:5 ~max_n:20 ())
       (fun (chain, n) ->
         let s = Msts.Chain_algorithm.schedule chain n in
         Msts.Schedule.emission_order s = List.init n (fun i -> i + 1)))

let starts_at_zero =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"normalised schedule starts at time 0"
       (chain_with_n_arb ~max_p:5 ~max_n:20 ())
       (fun (chain, n) ->
         n = 0 || Msts.Schedule.start_time (Msts.Chain_algorithm.schedule chain n) = 0))

(* ---------- Theorem 1: optimality ---------- *)

let optimal_vs_brute_force =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"Theorem 1: makespan equals brute force"
       (chain_with_n_arb ~max_p:4 ~max_n:7 ())
       (fun (chain, n) ->
         Msts.Chain_algorithm.makespan chain n
         = Msts.Brute_force.chain_makespan chain n))

let optimal_extreme_profiles =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:250 ~name:"Theorem 1 under extreme heterogeneity"
       (QCheck.make
          ~print:(fun (chain, n) ->
            Printf.sprintf "%s, n=%d" (Msts.Chain.to_string chain) n)
          QCheck.Gen.(
            pair
              (map Msts.Chain.of_pairs
                 (list_size (int_range 1 3)
                    (pair (int_range 1 40) (int_range 1 40))))
              (int_range 0 6)))
       (fun (chain, n) ->
         Msts.Chain_algorithm.makespan chain n
         = Msts.Brute_force.chain_makespan chain n))

let pruned_oracle_agrees_with_enumeration =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"the two exact oracles (enumeration, pruned search) agree"
       (chain_with_n_arb ~max_p:4 ~max_n:7 ())
       (fun (chain, n) ->
         Msts.Brute_force.chain_makespan chain n
         = Msts.Brute_force.chain_makespan_pruned chain n))

let optimal_vs_pruned_oracle =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:"Theorem 1 at larger n (dominance-pruned oracle, n up to 12)"
       (QCheck.make
          ~print:(fun (chain, n) ->
            Printf.sprintf "%s, n=%d" (Msts.Chain.to_string chain) n)
          QCheck.Gen.(pair (chain_gen ~max_p:5 ~max_val:8 ()) (int_range 8 12)))
       (fun (chain, n) ->
         Msts.Chain_algorithm.makespan chain n
         = Msts.Brute_force.chain_makespan_pruned chain n))

let makespan_agrees_with_schedule =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"makespan() equals makespan of schedule()"
       (chain_with_n_arb ~max_p:5 ~max_n:20 ())
       (fun (chain, n) ->
         Msts.Chain_algorithm.makespan chain n
         = Msts.Schedule.makespan (Msts.Chain_algorithm.schedule chain n)))

let makespan_monotone_in_n =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"optimal makespan is non-decreasing in n"
       (chain_with_n_arb ~max_p:5 ~max_n:15 ())
       (fun (chain, n) ->
         Msts.Chain_algorithm.makespan chain n
         <= Msts.Chain_algorithm.makespan chain (n + 1)))

let never_worse_than_heuristics =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"optimal beats every forward heuristic"
       (chain_with_n_arb ~max_p:5 ~max_n:15 ())
       (fun (chain, n) ->
         let opt = Msts.Chain_algorithm.makespan chain n in
         List.for_all
           (fun policy -> opt <= Msts.List_sched.chain_makespan policy chain n)
           Msts.List_sched.all_chain_policies))

let bounded_by_master_only =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"optimal never exceeds the T-inf horizon"
       (chain_with_n_arb ~max_p:5 ~max_n:15 ())
       (fun (chain, n) ->
         Msts.Chain_algorithm.makespan chain n
         <= Msts.Chain.master_only_makespan chain n))

(* ---------- deadline variant ---------- *)

let deadline_fig2 () =
  (* Tlim = 14 fits exactly the 5 tasks of Figure 2 *)
  Alcotest.(check int) "14 fits 5" 5 (Msts.Chain_deadline.max_tasks figure2_chain ~deadline:14);
  Alcotest.(check int) "13 fits 4" 4 (Msts.Chain_deadline.max_tasks figure2_chain ~deadline:13);
  Alcotest.(check int) "4 fits none" 0 (Msts.Chain_deadline.max_tasks figure2_chain ~deadline:4);
  Alcotest.(check int) "0 fits none" 0 (Msts.Chain_deadline.max_tasks figure2_chain ~deadline:0)

let deadline_schedule_fits =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"deadline schedules are feasible and fit"
       (QCheck.make
          ~print:(fun (chain, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Chain.to_string chain) d)
          QCheck.Gen.(pair (chain_gen ~max_p:5 ()) (int_range 0 80)))
       (fun (chain, deadline) ->
         let s = Msts.Chain_deadline.schedule chain ~deadline in
         check_feasible s && Msts.Schedule.makespan s <= deadline
         || Msts.Schedule.task_count s = 0))

let deadline_vs_brute_force =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:250 ~name:"deadline variant is optimal (vs brute force)"
       (QCheck.make
          ~print:(fun (chain, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Chain.to_string chain) d)
          QCheck.Gen.(pair (chain_gen ~max_p:3 ()) (int_range 0 50)))
       (fun (chain, deadline) ->
         min 7 (Msts.Chain_deadline.max_tasks chain ~deadline)
         = Msts.Brute_force.chain_max_tasks chain ~deadline ~limit:7))

let deadline_staircase_monotone =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"task count is monotone in the deadline"
       (QCheck.make
          ~print:(fun (chain, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Chain.to_string chain) d)
          QCheck.Gen.(pair (chain_gen ~max_p:4 ()) (int_range 0 60)))
       (fun (chain, d) ->
         Msts.Chain_deadline.max_tasks chain ~deadline:d
         <= Msts.Chain_deadline.max_tasks chain ~deadline:(d + 1)))

let deadline_budget_cap () =
  let s = Msts.Chain_deadline.schedule ~max_tasks:2 figure2_chain ~deadline:14 in
  Alcotest.(check int) "capped at 2" 2 (Msts.Schedule.task_count s);
  Alcotest.(check bool) "still feasible" true (check_feasible s)

let deadline_inverse_consistency =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:120
       ~name:"least deadline fitting n equals the optimal makespan"
       (chain_with_n_arb ~max_p:4 ~max_n:10 ())
       (fun (chain, n) ->
         Msts.Chain_deadline.min_makespan_via_deadline chain n
         = Msts.Chain_algorithm.makespan chain n))

let deadline_rejects_negative () =
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Deadline.max_tasks: negative deadline") (fun () ->
      ignore (Msts.Chain_deadline.max_tasks figure2_chain ~deadline:(-1)))

(* ---------- lemmas (§4) ---------- *)

let lemma1_no_crossing =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"Lemma 1: candidate vectors never cross"
       (chain_with_n_arb ~max_p:5 ~max_n:12 ())
       (fun (chain, n) -> Msts.Chain_lemmas.check_no_crossing_throughout chain n))

let lemma2_subchain =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"Lemma 2: tasks beyond P1 form the sub-chain schedule"
       (chain_with_n_arb ~max_p:5 ~max_n:12 ())
       (fun (chain, n) -> Msts.Chain_lemmas.subchain_projection chain n))

let lemma4_incremental =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"incrementality: m-task optimum is a suffix of the n-task one"
       (chain_with_n_arb ~max_p:4 ~max_n:10 ())
       (fun (chain, n) -> Msts.Chain_lemmas.incremental_suffix chain n))

(* ---------- differential: Figure 3's pseudo-code transcription ---------- *)

let pseudocode_matches_production =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"Figure 3's literal pseudo-code produces the same schedule"
       (chain_with_n_arb ~max_p:6 ~max_n:20 ~max_val:15 ())
       (fun (chain, n) ->
         Msts.Schedule.equal
           (Msts.Chain_pseudocode.schedule chain n)
           (Msts.Chain_algorithm.schedule chain n)))

let pseudocode_figure2 () =
  let s = Msts.Chain_pseudocode.schedule figure2_chain 5 in
  Alcotest.(check int) "makespan 14" 14 (Msts.Schedule.makespan s);
  Alcotest.(check bool) "identical to production" true
    (Msts.Schedule.equal s (Msts.Chain_algorithm.schedule figure2_chain 5))

let pseudocode_extremes =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"pseudo-code transcription agrees under extreme heterogeneity"
       (QCheck.make
          ~print:(fun (chain, n) ->
            Printf.sprintf "%s, n=%d" (Msts.Chain.to_string chain) n)
          QCheck.Gen.(
            pair
              (map Msts.Chain.of_pairs
                 (list_size (int_range 1 4) (pair (int_range 1 60) (int_range 1 60))))
              (int_range 0 12)))
       (fun (chain, n) ->
         Msts.Schedule.equal
           (Msts.Chain_pseudocode.schedule chain n)
           (Msts.Chain_algorithm.schedule chain n)))

(* ---------- trace ---------- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let trace_records_steps () =
  let t = Msts.Chain_trace.run figure2_chain 5 in
  Alcotest.(check int) "five steps" 5 (List.length t.Msts.Chain_trace.steps);
  Alcotest.(check int) "horizon" 17 t.Msts.Chain_trace.horizon;
  let step = Msts.Chain_trace.step_for t 3 in
  Alcotest.(check int) "task 3 on P2" 2 step.Msts.Chain_algorithm.chosen_proc;
  Alcotest.(check bool) "result is the schedule" true
    (Msts.Schedule.equal t.Msts.Chain_trace.result
       (Msts.Chain_algorithm.schedule figure2_chain 5))

let trace_renders () =
  let t = Msts.Chain_trace.run figure2_chain 3 in
  let text = Msts.Chain_trace.render t in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~sub:needle text))
    [ "Placing task 3"; "greatest (Def. 3)"; "candidate for P1"; "makespan" ]

let trace_missing_task () =
  let t = Msts.Chain_trace.run figure2_chain 2 in
  Alcotest.check_raises "absent task" Not_found (fun () ->
      ignore (Msts.Chain_trace.step_for t 9))

let suites =
  [
    ( "chain.figure2",
      [
        case "exact reproduction of Figure 2" figure2_exact;
        case "task 2 is buffered (dashed curve)" figure2_second_task_buffered;
        case "horizon formula" horizon_formula;
      ] );
    ( "chain.limits",
      [
        case "p=1 compute-bound" single_processor;
        case "p=1 communication-bound" single_processor_comm_bound;
        case "n=1 picks the best processor" single_task;
        case "n=0" zero_tasks;
        case "n<0 rejected" negative_tasks_rejected;
      ] );
    ( "chain.machinery",
      [
        case "candidate vectors" candidates_shape;
        case "place mutates hull and occupancy" place_updates_state;
      ] );
    ( "chain.properties",
      [
        always_feasible;
        emissions_sorted;
        starts_at_zero;
        makespan_agrees_with_schedule;
        makespan_monotone_in_n;
        never_worse_than_heuristics;
        bounded_by_master_only;
      ] );
    ( "chain.optimality",
      [
        optimal_vs_brute_force;
        optimal_extreme_profiles;
        pruned_oracle_agrees_with_enumeration;
        optimal_vs_pruned_oracle;
      ] );
    ( "chain.deadline",
      [
        case "figure-2 staircase anchors" deadline_fig2;
        deadline_schedule_fits;
        deadline_vs_brute_force;
        deadline_staircase_monotone;
        case "budget cap" deadline_budget_cap;
        deadline_inverse_consistency;
        case "negative deadline rejected" deadline_rejects_negative;
      ] );
    ( "chain.lemmas",
      [ lemma1_no_crossing; lemma2_subchain; lemma4_incremental ] );
    ( "chain.pseudocode",
      [
        pseudocode_matches_production;
        case "figure 2 via the transcription" pseudocode_figure2;
        pseudocode_extremes;
      ] );
    ( "chain.trace",
      [
        case "records every placement" trace_records_steps;
        case "renders the narrative" trace_renders;
        case "step_for missing task" trace_missing_task;
      ] );
  ]
