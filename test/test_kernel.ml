(* Differential and search tests for the fast chain kernel (O(n·p) fused
   sweep) against the reference kernel (the paper-literal O(n·p²)
   candidate scan).  The two must produce byte-identical plans on every
   instance; the warm-started binary searches must return the same
   answers as full-range searches with strictly fewer probes. *)

open Helpers
module Kernel = Msts.Chain_kernel
module Obs = Msts.Obs

let with_kernel k f =
  let prev = Kernel.default () in
  Kernel.set_default k;
  Fun.protect ~finally:(fun () -> Kernel.set_default prev) f

let chain_plan kernel chain n =
  Msts.Plan.Chain (Msts.Chain_algorithm.schedule ~kernel chain n)

(* ---------- differential: fast vs reference ---------- *)

let schedules_identical =
  to_alcotest
    (QCheck.Test.make ~count:300 ~name:"schedule: fast = reference (chains)"
       (chain_with_n_arb ~max_p:6 ~max_n:12 ())
       (fun (chain, n) ->
         Msts.Plan.equal (chain_plan Kernel.Fast chain n)
           (chain_plan Kernel.Reference chain n)))

let makespans_identical =
  to_alcotest
    (QCheck.Test.make ~count:300 ~name:"makespan: fast = reference = schedule"
       (chain_with_n_arb ~max_p:6 ~max_n:12 ())
       (fun (chain, n) ->
         let fast = Msts.Chain_algorithm.makespan ~kernel:Kernel.Fast chain n in
         fast = Msts.Chain_algorithm.makespan ~kernel:Kernel.Reference chain n
         && fast
            = Msts.Schedule.makespan
                (Msts.Chain_algorithm.schedule ~kernel:Kernel.Fast chain n)))

let deadline_schedules_identical =
  to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"deadline schedule: fast = reference at several deadlines"
       (chain_with_n_arb ~max_p:5 ~max_n:8 ())
       (fun (chain, n) ->
         let opt = Msts.Chain_algorithm.makespan chain n in
         List.for_all
           (fun deadline ->
             Msts.Plan.equal
               (Msts.Plan.Chain
                  (Msts.Chain_deadline.schedule ~kernel:Kernel.Fast chain ~deadline))
               (Msts.Plan.Chain
                  (Msts.Chain_deadline.schedule ~kernel:Kernel.Reference chain
                     ~deadline)))
           [ opt; opt / 2; (2 * opt) + 3 ]))

let incremental_identical =
  to_alcotest
    (QCheck.Test.make ~count:200 ~name:"incremental fill: fast = reference"
       (chain_with_n_arb ~max_p:5 ~max_n:8 ())
       (fun (chain, n) ->
         let horizon = Msts.Chain_algorithm.horizon chain n in
         let run kernel =
           let t = Msts.Chain_incremental.create ~kernel chain ~horizon in
           let placed = Msts.Chain_incremental.fill t () in
           (placed, Msts.Chain_incremental.schedule t,
            Msts.Chain_incremental.earliest_emission t)
         in
         let pf, sf, ef = run Kernel.Fast in
         let pr, sr, er = run Kernel.Reference in
         pf = pr && ef = er && Msts.Plan.equal (Msts.Plan.Chain sf) (Msts.Plan.Chain sr)))

let spider_plans_identical =
  to_alcotest
    (QCheck.Test.make ~count:100 ~name:"spider: fast = reference plans"
       (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:6 ())
       (fun (spider, n) ->
         let run k = with_kernel k (fun () -> Msts.Spider_algorithm.schedule_tasks spider n) in
         Msts.Plan.equal
           (Msts.Plan.Spider (run Kernel.Fast))
           (Msts.Plan.Spider (run Kernel.Reference))))

let spider_makespans_identical =
  to_alcotest
    (QCheck.Test.make ~count:100 ~name:"spider: fast = reference min_makespan"
       (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:6 ())
       (fun (spider, n) ->
         with_kernel Kernel.Fast (fun () -> Msts.Spider_algorithm.min_makespan spider n)
         = with_kernel Kernel.Reference (fun () ->
               Msts.Spider_algorithm.min_makespan spider n)))

(* Times are typed positive in the paper (T : [1;n] -> N+), and Chain.make
   enforces it — c = 0 links or w = 0 slaves are outside the model.  The
   degenerate corner is therefore the minimal legal platform. *)
let degenerate_rejected () =
  Alcotest.check_raises "c = 0 is outside the model"
    (Invalid_argument "Msts.Chain.make: non-positive latency") (fun () ->
      ignore (Msts.Chain.of_pairs [ (0, 1) ]));
  Alcotest.check_raises "w = 0 is outside the model"
    (Invalid_argument "Msts.Chain.make: non-positive work time") (fun () ->
      ignore (Msts.Chain.of_pairs [ (1, 0) ]))

let minimal_platform () =
  let unit_chain = Msts.Chain.of_pairs [ (1, 1) ] in
  List.iter
    (fun (chain, n) ->
      Alcotest.(check bool)
        (Printf.sprintf "p=%d n=%d identical" (Msts.Chain.length chain) n)
        true
        (Msts.Plan.equal (chain_plan Kernel.Fast chain n)
           (chain_plan Kernel.Reference chain n));
      Alcotest.(check int)
        (Printf.sprintf "p=%d n=%d makespan" (Msts.Chain.length chain) n)
        (Msts.Chain_algorithm.makespan ~kernel:Kernel.Reference chain n)
        (Msts.Chain_algorithm.makespan ~kernel:Kernel.Fast chain n))
    [
      (unit_chain, 0);
      (unit_chain, 1);
      (unit_chain, 5);
      (figure2_chain, 0);
      (figure2_chain, 1);
      (Msts.Chain.of_pairs [ (7, 2) ], 4);
    ]

(* ---------- warm-started searches ---------- *)

let counter_total mem name =
  List.fold_left
    (fun acc -> function
      | [ n; total ] when n = name -> acc + int_of_string total
      | _ -> acc)
    0
    (Obs.Memory.counter_rows mem)

(* Probe count of the old cold search (lo = 0), measured independently so
   the test does not depend on implementation details of the search. *)
let naive_probes ~lo ~hi p =
  let probes = ref 0 in
  let result =
    Msts.Intx.binary_search_least ~lo ~hi (fun x ->
        incr probes;
        p x)
  in
  (result, !probes)

let chain_search_probes_drop () =
  let n = 40 in
  let hi = Msts.Chain.master_only_makespan figure2_chain n in
  let naive_result, naive =
    naive_probes ~lo:0 ~hi (fun d ->
        Msts.Chain_deadline.max_tasks figure2_chain ~deadline:d >= n)
  in
  let mem = Obs.Memory.create () in
  let warm_result =
    Obs.with_sink (Obs.Memory.sink mem) (fun () ->
        Msts.Chain_deadline.min_makespan_via_deadline figure2_chain n)
  in
  let warm = counter_total mem "chain.deadline.search_probes" in
  Alcotest.(check (option int)) "same makespan" (Some warm_result) naive_result;
  Alcotest.(check int)
    "agrees with the direct algorithm"
    (Msts.Chain_algorithm.makespan figure2_chain n)
    warm_result;
  Alcotest.(check bool)
    (Printf.sprintf "fewer probes (%d warm < %d naive)" warm naive)
    true (warm < naive)

let spider_search_probes_drop () =
  let spider = Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 2) ] ] in
  let n = 12 in
  let hi = Msts.Spider_algorithm.makespan_upper_bound spider n in
  let naive_result, naive =
    naive_probes ~lo:0 ~hi (fun d ->
        Msts.Spider_algorithm.max_tasks ~budget:n spider ~deadline:d >= n)
  in
  let mem = Obs.Memory.create () in
  let warm_result =
    Obs.with_sink (Obs.Memory.sink mem) (fun () ->
        Msts.Spider_algorithm.min_makespan spider n)
  in
  let warm = counter_total mem "spider.search_probes" in
  Alcotest.(check (option int)) "same makespan" (Some warm_result) naive_result;
  Alcotest.(check bool)
    (Printf.sprintf "fewer probes (%d warm < %d naive)" warm naive)
    true (warm < naive);
  Alcotest.(check bool) "legs are replayed from the cache" true
    (counter_total mem "spider.leg_reuses" > 0)

let suites =
  [
    ( "kernel.differential",
      [
        schedules_identical;
        makespans_identical;
        deadline_schedules_identical;
        incremental_identical;
        spider_plans_identical;
        spider_makespans_identical;
        case "degenerate c=0/w=0 are outside the model" degenerate_rejected;
        case "minimal legal platforms" minimal_platform;
      ] );
    ( "kernel.search",
      [
        case "chain deadline search probes drop (Fig. 2)" chain_search_probes_drop;
        case "spider search probes drop (Fig. 2 spider)" spider_search_probes_drop;
      ] );
  ]
