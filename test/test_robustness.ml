(* Tests for failure injection: degraded platforms and routing replay. *)

open Helpers

let degrade_shape () =
  let spider = Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 4) ] ] in
  let hurt =
    Msts.Netsim.degrade spider ~address:{ Msts.Spider.leg = 1; depth = 2 } ~work_factor:3
  in
  Alcotest.(check int) "same legs" 2 (Msts.Spider.legs hurt);
  Alcotest.(check int) "slowed node" 15
    (Msts.Spider.work hurt { Msts.Spider.leg = 1; depth = 2 });
  Alcotest.(check int) "other node untouched" 3
    (Msts.Spider.work hurt { Msts.Spider.leg = 1; depth = 1 });
  Alcotest.(check int) "other leg untouched" 4
    (Msts.Spider.work hurt { Msts.Spider.leg = 2; depth = 1 });
  Alcotest.check_raises "factor 0"
    (Invalid_argument "Msts.Netsim.degrade: work_factor must be >= 1") (fun () ->
      ignore
        (Msts.Netsim.degrade spider ~address:{ Msts.Spider.leg = 1; depth = 1 }
           ~work_factor:0))

let degrade_identity =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"work_factor 1 is the identity"
       (spider_arb ~max_legs:3 ~max_depth:3 ())
       (fun spider ->
         let addr = List.hd (Msts.Spider.addresses spider) in
         Msts.Spider.equal spider (Msts.Netsim.degrade spider ~address:addr ~work_factor:1)))

let replay_on_same_platform_is_bounded_replay =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"replay_routing ~on:self equals plain replay"
       (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:8 ())
       (fun (spider, n) ->
         QCheck.assume (n > 0);
         let plan = Msts.Spider_algorithm.schedule_tasks spider n in
         let a = Msts.Netsim.replay_routing plan in
         let b = Msts.Netsim.replay_routing ~on:spider plan in
         a.Msts.Netsim.realized_makespan = b.Msts.Netsim.realized_makespan))

let replay_on_degraded_feasible =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:80
       ~name:"replaying on a degraded platform stays feasible there"
       (QCheck.make
          ~print:(fun ((spider, n), f) ->
            Printf.sprintf "%s, n=%d, x%d" (Msts.Spider.to_string spider) n f)
          QCheck.Gen.(
            pair
              (pair (spider_gen ~max_legs:3 ~max_depth:3 ()) (int_range 1 10))
              (int_range 1 4)))
       (fun ((spider, n), factor) ->
         let plan = Msts.Spider_algorithm.schedule_tasks spider n in
         let addr = List.hd (Msts.Spider.addresses spider) in
         let hurt = Msts.Netsim.degrade spider ~address:addr ~work_factor:factor in
         let report = Msts.Netsim.replay_routing ~on:hurt plan in
         Msts.Spider_schedule.task_count report.Msts.Netsim.realized = n
         && Msts.Spider_schedule.is_feasible ~require_nonnegative:true
              report.Msts.Netsim.realized))

let replay_never_beats_replanning =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"static plan under a fault never beats replanning for the fault"
       (QCheck.make
          ~print:(fun ((spider, n), f) ->
            Printf.sprintf "%s, n=%d, x%d" (Msts.Spider.to_string spider) n f)
          QCheck.Gen.(
            pair
              (pair (spider_gen ~max_legs:3 ~max_depth:2 ()) (int_range 1 8))
              (int_range 2 4)))
       (fun ((spider, n), factor) ->
         let plan = Msts.Spider_algorithm.schedule_tasks spider n in
         let addr = List.hd (Msts.Spider.addresses spider) in
         let hurt = Msts.Netsim.degrade spider ~address:addr ~work_factor:factor in
         let static =
           (Msts.Netsim.replay_routing ~on:hurt plan).Msts.Netsim.realized_makespan
         in
         static >= Msts.Spider_algorithm.min_makespan hurt n))

let replay_shape_mismatch () =
  let plan = Msts.Spider_algorithm.schedule_tasks (Msts.Spider.of_chain figure2_chain) 2 in
  let other = Msts.Spider.of_legs [ figure2_chain; figure2_chain ] in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Msts.Netsim.replay_routing: platform shape mismatch") (fun () ->
      ignore (Msts.Netsim.replay_routing ~on:other plan))

let suites =
  [
    ( "sim.robustness",
      [
        case "degrade targets one node" degrade_shape;
        degrade_identity;
        replay_on_same_platform_is_bounded_replay;
        replay_on_degraded_feasible;
        replay_never_beats_replanning;
        case "shape mismatch rejected" replay_shape_mismatch;
      ] );
  ]
