(* Tests for the spider usage analysis. *)

open Helpers

let counts_sum_to_n =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"per-leg counts sum to n"
       (spider_with_n_arb ~max_legs:3 ~max_depth:3 ~max_n:12 ())
       (fun (spider, n) ->
         Msts.Intx.sum (Msts.Spider_analysis.tasks_per_leg spider n) = n))

let fast_leg_activates_first () =
  (* one cheap fast leg, one expensive slow leg *)
  let spider =
    Msts.Spider.of_legs
      [ Msts.Chain.of_pairs [ (1, 2) ]; Msts.Chain.of_pairs [ (8, 9) ] ]
  in
  Alcotest.(check (option int)) "fast leg at n=1" (Some 1)
    (Msts.Spider_analysis.leg_activation spider ~leg:1 ~max_n:20);
  let slow = Msts.Spider_analysis.leg_activation spider ~leg:2 ~max_n:20 in
  Alcotest.(check bool) "slow leg later (or never)" true
    (match slow with None -> true | Some n -> n > 1)

let activation_bad_leg () =
  let spider = Msts.Spider.of_chain figure2_chain in
  Alcotest.check_raises "leg out of range"
    (Invalid_argument "Analysis.leg_activation: leg out of range") (fun () ->
      ignore (Msts.Spider_analysis.leg_activation spider ~leg:2 ~max_n:5))

let port_utilisation_bounds =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"port utilisation lies in [0,1]"
       (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:10 ())
       (fun (spider, n) ->
         let u = Msts.Spider_analysis.port_utilisation spider n in
         u >= 0.0 && u <= 1.0 +. 1e-9))

let port_saturates_with_cheap_legs () =
  (* compute-heavy legs behind cheap links: the port becomes the bottleneck *)
  let spider =
    Msts.Spider.of_legs
      [ Msts.Chain.of_pairs [ (3, 4) ]; Msts.Chain.of_pairs [ (3, 4) ] ]
  in
  Alcotest.(check bool) "port above 90% busy at n=60" true
    (Msts.Spider_analysis.port_utilisation spider 60 > 0.90)

let rate_agreement_converges () =
  (* both legs receive a positive bandwidth-centric rate (0.2 each): the
     compute caps bind before the port does, so the steady split is
     unique -- a tie-free instance for the agreement check *)
  let spider =
    Msts.Spider.of_legs
      [ Msts.Chain.of_pairs [ (2, 5) ]; Msts.Chain.of_pairs [ (3, 4) ] ]
  in
  let agreement = Msts.Spider_analysis.rate_agreement spider 300 in
  Array.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "within 15%% of the steady split (%.3f)" r)
        true
        (r > 0.85 && r < 1.15))
    agreement

let split_profile_shape () =
  let spider = Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 4) ] ] in
  let profile = Msts.Spider_analysis.split_profile spider ~ns:[ 2; 6; 10 ] in
  Alcotest.(check int) "rows" 3 (List.length profile);
  List.iter
    (fun (n, counts) -> Alcotest.(check int) "row sums" n (Msts.Intx.sum counts))
    profile

let suites =
  [
    ( "spider.analysis",
      [
        counts_sum_to_n;
        case "fast leg activates first" fast_leg_activates_first;
        case "bad leg rejected" activation_bad_leg;
        port_utilisation_bounds;
        case "cheap legs saturate the port" port_saturates_with_cheap_legs;
        case "split converges to the steady rates" rate_agreement_converges;
        case "split profile" split_profile_shape;
      ] );
  ]
