(* The overlapped serve engine: deficit-round-robin fairness across
   connections, admission caps per connection, batch sharding with
   byte-identical assembly, and the drain guarantee with solves
   mid-flight on worker domains. *)

open Helpers
module Api = Msts.Api
module Engine = Msts_serve.Engine
module Json = Msts.Json

let chain_platform = Msts.Platform_format.Chain_platform figure2_chain

let schedule ?(tasks = 4) () =
  Api.Schedule (Msts.Solve.problem ~tasks chain_platform)

let request ?id ?trace op = { Api.id; trace; op }

(* A config that launches exactly one unit per dispatch, so the
   scheduler's pick order is the delivery order — fully deterministic on
   a jobs=1 (inline) pool. *)
let lockstep_config =
  { Engine.default_config with cache_capacity = 4; max_batch = 1 }

(* ---------- fairness ---------- *)

(* One greedy pipelining connection floods 10 requests before two polite
   connections submit one each.  Deficit round robin must serve the
   polite requests on the 2nd and 3rd dispatch — under FIFO they would
   be 11th and 12th. *)
let greedy_cannot_starve_polite () =
  let engine = Engine.create lockstep_config in
  let order = ref [] in
  let submit conn tag tasks =
    Engine.submit engine ~conn
      ~reply:(fun r ->
        match r.Api.result with
        | Ok _ -> order := tag :: !order
        | Error e -> Alcotest.failf "%s failed: %s" tag e.Api.message)
      (request ~trace:tag (schedule ~tasks ()))
  in
  let greedy = Engine.open_conn engine in
  let polite1 = Engine.open_conn engine in
  let polite2 = Engine.open_conn engine in
  for i = 1 to 10 do
    submit greedy (Printf.sprintf "greedy-%d" i) i
  done;
  submit polite1 "polite-1" 11;
  submit polite2 "polite-2" 12;
  Alcotest.(check int) "all queued" 12 (Engine.pending engine);
  (* three dispatches: one unit each, round-robin over the three conns *)
  for _ = 1 to 3 do
    Alcotest.(check int) "one delivery per dispatch" 1
      (Engine.dispatch engine)
  done;
  (match List.rev !order with
  | [ "greedy-1"; "polite-1"; "polite-2" ] -> ()
  | got ->
      Alcotest.failf "unfair pick order: %s" (String.concat ", " got));
  ignore (Engine.drain engine);
  Alcotest.(check int) "everyone answered" 12 (List.length !order);
  Engine.shutdown engine

(* The polite request's queue wait, measured in dispatch turns, is
   bounded by the number of connections — not by the greedy backlog. *)
let polite_wait_bounded_by_conns () =
  let engine = Engine.create lockstep_config in
  let greedy = Engine.open_conn engine in
  let polite = Engine.open_conn engine in
  let answered = ref false in
  for i = 1 to 50 do
    Engine.submit engine ~conn:greedy
      ~reply:(fun _ -> ())
      (request (schedule ~tasks:(i mod 13) ()))
  done;
  Engine.submit engine ~conn:polite
    ~reply:(fun _ -> answered := true)
    (request (schedule ~tasks:14 ()));
  let turns = ref 0 in
  while not !answered do
    incr turns;
    if !turns > 3 then Alcotest.fail "polite request starved";
    ignore (Engine.dispatch engine)
  done;
  Alcotest.(check int) "answered on the second turn" 2 !turns;
  ignore (Engine.drain engine);
  Engine.shutdown engine

(* ---------- per-connection admission ---------- *)

let per_conn_queue_cap () =
  let engine =
    Engine.create
      { lockstep_config with max_queue_per_conn = 2; queue_cap = 100 }
  in
  let flooder = Engine.open_conn engine in
  let other = Engine.open_conn engine in
  let errors = ref [] in
  let submit conn =
    Engine.submit engine ~conn
      ~reply:(fun r ->
        match r.Api.result with
        | Error e -> errors := e :: !errors
        | Ok _ -> ())
      (request (schedule ()))
  in
  submit flooder;
  submit flooder;
  submit flooder (* third on one conn: rejected *);
  (match !errors with
  | [ { Api.code = Api.Overloaded; message; _ } ] ->
      Alcotest.(check bool) "per-conn message" true
        (String.length message >= 10 && String.sub message 0 10 = "connection")
  | _ -> Alcotest.fail "expected exactly one per-connection rejection");
  submit other (* a different conn still has room *);
  Alcotest.(check int) "only the flooder bounced" 1 (List.length !errors);
  Alcotest.(check int) "three requests queued" 3 (Engine.pending engine);
  ignore (Engine.drain engine);
  Engine.shutdown engine

(* ---------- batch sharding ---------- *)

let batch_op n =
  Api.Batch
    (Array.init n (fun i ->
         Msts.Solve.problem ~tasks:(2 + (i mod 4)) chain_platform))

let ask_engine engine frame =
  let got = ref None in
  Engine.handle_line engine ~reply:(fun l -> got := Some l) frame;
  ignore (Engine.drain engine);
  match !got with
  | Some line -> line
  | None -> Alcotest.fail "engine never replied"

(* The sharded path must produce the exact bytes of the jobs=1 path:
   same outcomes, same hit/miss accounting, regardless of worker count
   or completion order. *)
let sharded_batch_bytes_stable_across_jobs () =
  let frame =
    Api.request_to_line (request ~id:7 (batch_op 9))
  in
  let run jobs =
    let engine =
      Engine.create { Engine.default_config with jobs; cache_capacity = 8 }
    in
    let line = ask_engine engine frame in
    Engine.shutdown engine;
    line
  in
  let reference = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d batch reply = jobs=1 bytes" jobs)
        reference (run jobs))
    [ 2; 4 ]

(* A fully cached batch (every problem a duplicate or a prior solve)
   takes the zero-shard fast path and still answers. *)
let cached_batch_answers () =
  let engine =
    Engine.create { Engine.default_config with cache_capacity = 16 }
  in
  let first = ask_engine engine (Api.request_to_line (request (batch_op 5))) in
  let second = ask_engine engine (Api.request_to_line (request (batch_op 5))) in
  let field line name =
    match Api.response_of_line line with
    | Ok { Api.result = Ok (Json.Obj fields); _ } -> (
        match List.assoc_opt "cache" fields with
        | Some (Json.Obj cache) -> List.assoc_opt name cache
        | _ -> None)
    | _ -> None
  in
  (match field first "misses" with
  | Some (Json.Int m) ->
      Alcotest.(check bool) "cold batch solves something" true (m > 0)
  | _ -> Alcotest.fail "cold batch reply unreadable");
  (match field second "misses" with
  | Some (Json.Int 0) -> ()
  | _ -> Alcotest.fail "warm batch must be all hits");
  Engine.shutdown engine

(* One connection's big batch must not head-of-line-block another
   connection's singleton: the singleton lands before the batch reply. *)
let batch_interleaves_with_singletons () =
  let engine =
    Engine.create { Engine.default_config with cache_capacity = 32 }
  in
  let batcher = Engine.open_conn engine in
  let single = Engine.open_conn engine in
  let order = ref [] in
  Engine.submit engine ~conn:batcher
    ~reply:(fun _ -> order := "batch" :: !order)
    (request (batch_op 8));
  Engine.submit engine ~conn:single
    ~reply:(fun _ -> order := "singleton" :: !order)
    (request (schedule ~tasks:9 ()));
  ignore (Engine.drain engine);
  (match List.rev !order with
  | [ "singleton"; "batch" ] -> ()
  | got -> Alcotest.failf "wrong order: %s" (String.concat ", " got));
  Engine.shutdown engine

(* ---------- stats surface ---------- *)

let stats_exposes_fairness_state () =
  let engine = Engine.create lockstep_config in
  let conn = Engine.open_conn engine in
  Engine.submit engine ~conn ~reply:(fun _ -> ()) (request (schedule ()));
  match Engine.stats_json engine with
  | Json.Obj fields ->
      (match List.assoc_opt "inflight" fields with
      | Some (Json.Int _) -> ()
      | _ -> Alcotest.fail "stats lost the inflight count");
      (match List.assoc_opt "connections" fields with
      | Some (Json.List conns) ->
          Alcotest.(check bool) "default + opened conn listed" true
            (List.length conns >= 2);
          List.iter
            (fun c ->
              match c with
              | Json.Obj cf ->
                  List.iter
                    (fun key ->
                      if not (List.mem_assoc key cf) then
                        Alcotest.failf "connection stats lost %s" key)
                    [
                      "id"; "queued_units"; "queued_requests"; "deficit";
                      "inflight"; "admitted"; "delivered"; "queue_wait_us";
                    ]
              | _ -> Alcotest.fail "connection entry not an object")
            conns
      | _ -> Alcotest.fail "stats lost the connections list");
      ignore (Engine.drain engine);
      Engine.shutdown engine
  | _ -> Alcotest.fail "stats_json not an object"

(* ---------- drain with worker domains mid-flight ---------- *)

(* Launch real solves onto a 4-domain pool, then stop and drain while
   they are executing: every admitted frame must still be answered
   exactly once — the SIGTERM guarantee, minus the sockets. *)
let drain_answers_inflight_worker_solves () =
  let engine =
    Engine.create
      { Engine.default_config with jobs = 4; cache_capacity = 64 }
  in
  let conn_a = Engine.open_conn engine in
  let conn_b = Engine.open_conn engine in
  let replies = ref 0 in
  let reply r =
    (match r.Api.result with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "drained request failed: %s" e.Api.message);
    incr replies
  in
  for i = 0 to 7 do
    Engine.submit engine
      ~conn:(if i land 1 = 0 then conn_a else conn_b)
      ~reply
      (request (schedule ~tasks:(3 + i) ()))
  done;
  Engine.submit engine ~conn:conn_a ~reply (request (batch_op 6));
  (* one non-blocking turn: units are now on the worker domains *)
  ignore (Engine.dispatch engine);
  Alcotest.(check bool) "work is in flight or queued" true
    (Engine.inflight engine > 0 || Engine.pending engine > 0);
  Engine.stop engine;
  let drained = Engine.drain engine in
  Alcotest.(check int) "every frame answered" 9 !replies;
  Alcotest.(check int) "nothing dropped in flight" 9
    (Engine.served engine);
  Alcotest.(check bool) "drain delivered the backlog" true (drained > 0);
  Alcotest.(check int) "no units left" 0 (Engine.inflight engine);
  Alcotest.(check int) "no requests left" 0 (Engine.pending engine);
  Engine.shutdown engine

let suites =
  [
    ( "serve.fairness",
      [
        case "greedy pipeliner cannot starve polite conns"
          greedy_cannot_starve_polite;
        case "polite wait bounded by conn count, not backlog"
          polite_wait_bounded_by_conns;
        case "per-connection queue cap" per_conn_queue_cap;
      ] );
    ( "serve.sharding",
      [
        case "batch reply bytes stable across jobs"
          sharded_batch_bytes_stable_across_jobs;
        case "fully cached batch answers via the fast path"
          cached_batch_answers;
        case "batch interleaves with other conns' singletons"
          batch_interleaves_with_singletons;
      ] );
    ( "serve.lifecycle",
      [
        case "stats exposes inflight and per-conn scheduler state"
          stats_exposes_fairness_state;
        case "drain answers solves mid-flight on worker domains"
          drain_answers_inflight_worker_solves;
      ] );
  ]
