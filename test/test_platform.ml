(* Tests for Msts_platform: chains, forks, spiders, trees, generators,
   the textual format and DOT export. *)

open Helpers

(* ---------- Chain ---------- *)

let chain_accessors () =
  let chain = Msts.Chain.of_pairs [ (2, 3); (3, 5); (1, 7) ] in
  Alcotest.(check int) "length" 3 (Msts.Chain.length chain);
  Alcotest.(check int) "c1" 2 (Msts.Chain.latency chain 1);
  Alcotest.(check int) "c3" 1 (Msts.Chain.latency chain 3);
  Alcotest.(check int) "w2" 5 (Msts.Chain.work chain 2);
  Alcotest.(check int) "path 1" 2 (Msts.Chain.path_latency chain 1);
  Alcotest.(check int) "path 3" 6 (Msts.Chain.path_latency chain 3)

let chain_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Msts.Chain.make: empty chain")
    (fun () -> ignore (Msts.Chain.make ~c:[||] ~w:[||]));
  Alcotest.check_raises "mismatch" (Invalid_argument "Msts.Chain.make: c/w length mismatch")
    (fun () -> ignore (Msts.Chain.make ~c:[| 1 |] ~w:[| 1; 2 |]));
  Alcotest.check_raises "zero latency"
    (Invalid_argument "Msts.Chain.make: non-positive latency") (fun () ->
      ignore (Msts.Chain.make ~c:[| 0 |] ~w:[| 1 |]));
  Alcotest.check_raises "zero work"
    (Invalid_argument "Msts.Chain.make: non-positive work time") (fun () ->
      ignore (Msts.Chain.make ~c:[| 1 |] ~w:[| 0 |]))

let chain_out_of_range () =
  let chain = figure2_chain in
  Alcotest.check_raises "latency 0"
    (Invalid_argument "Msts.Chain.latency: processor 0 outside 1..2") (fun () ->
      ignore (Msts.Chain.latency chain 0));
  Alcotest.check_raises "work 3"
    (Invalid_argument "Msts.Chain.work: processor 3 outside 1..2") (fun () ->
      ignore (Msts.Chain.work chain 3))

let chain_drop_first () =
  let chain = Msts.Chain.of_pairs [ (2, 3); (3, 5); (1, 7) ] in
  let sub = Msts.Chain.drop_first chain in
  Alcotest.(check bool) "drop" true
    (Msts.Chain.equal sub (Msts.Chain.of_pairs [ (3, 5); (1, 7) ]));
  Alcotest.check_raises "drop singleton"
    (Invalid_argument "Msts.Chain.drop_first: chain of length 1") (fun () ->
      ignore (Msts.Chain.drop_first (Msts.Chain.of_pairs [ (1, 1) ])))

let chain_prefix () =
  let chain = Msts.Chain.of_pairs [ (2, 3); (3, 5); (1, 7) ] in
  Alcotest.(check bool) "prefix 2" true
    (Msts.Chain.equal (Msts.Chain.prefix chain 2) (Msts.Chain.of_pairs [ (2, 3); (3, 5) ]))

let chain_pairs_roundtrip =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"Msts.Chain.of_pairs/to_pairs round-trip"
       (chain_arb ~max_p:6 ())
       (fun chain ->
         Msts.Chain.equal chain (Msts.Chain.of_pairs (Msts.Chain.to_pairs chain))))

let chain_master_only () =
  (* T-inf of the paper's Figure 2 instance with n=5: 2 + 4*3 + 3 = 17 *)
  Alcotest.(check int) "figure 2 horizon" 17
    (Msts.Chain.master_only_makespan figure2_chain 5);
  Alcotest.(check int) "n=0" 0 (Msts.Chain.master_only_makespan figure2_chain 0);
  Alcotest.(check int) "n=1" 5 (Msts.Chain.master_only_makespan figure2_chain 1);
  (* communication-bound first processor: gaps of max(w1,c1)=c1 *)
  let comm_bound = Msts.Chain.of_pairs [ (4, 2) ] in
  Alcotest.(check int) "comm bound" (4 + (2 * 4) + 2)
    (Msts.Chain.master_only_makespan comm_bound 3)

(* ---------- Fork ---------- *)

let fork_accessors () =
  let fork = Msts.Fork.of_pairs [ (1, 2); (3, 4) ] in
  Alcotest.(check int) "slaves" 2 (Msts.Fork.slave_count fork);
  Alcotest.(check int) "c2" 3 (Msts.Fork.latency fork 2);
  Alcotest.(check int) "w1" 2 (Msts.Fork.work fork 1)

let fork_as_chains () =
  let fork = Msts.Fork.of_pairs [ (1, 2); (3, 4) ] in
  let chains = Msts.Fork.as_chains fork in
  Alcotest.(check int) "two legs" 2 (Array.length chains);
  Alcotest.(check bool) "leg 2" true
    (Msts.Chain.equal chains.(1) (Msts.Chain.of_pairs [ (3, 4) ]))

let fork_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Fork.make: no slaves")
    (fun () -> ignore (Msts.Fork.make [||]))

(* ---------- Spider ---------- *)

let spider_addresses () =
  let spider =
    Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 1) ] ]
  in
  Alcotest.(check int) "legs" 2 (Msts.Spider.legs spider);
  Alcotest.(check int) "processors" 3 (Msts.Spider.processor_count spider);
  Alcotest.(check int) "addresses" 3 (List.length (Msts.Spider.addresses spider));
  Alcotest.(check int) "max depth" 2 (Msts.Spider.max_depth spider);
  let a = { Msts.Spider.leg = 1; depth = 2 } in
  Alcotest.(check int) "latency" 3 (Msts.Spider.latency spider a);
  Alcotest.(check int) "work" 5 (Msts.Spider.work spider a)

let spider_of_chain_fork () =
  let spider = Msts.Spider.of_chain figure2_chain in
  Alcotest.(check int) "one leg" 1 (Msts.Spider.legs spider);
  let fork = Msts.Fork.of_pairs [ (1, 2); (3, 4); (5, 6) ] in
  let as_spider = Msts.Spider.of_fork fork in
  Alcotest.(check int) "three legs" 3 (Msts.Spider.legs as_spider);
  Alcotest.(check int) "all depth 1" 1 (Msts.Spider.max_depth as_spider)

let spider_scale () =
  let spider =
    Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 4) ] ]
  in
  let target = { Msts.Spider.leg = 1; depth = 2 } in
  let scaled = Msts.Spider.scale ~latency_factor:2 ~work_factor:3 spider target in
  Alcotest.(check int) "latency scaled" 6 (Msts.Spider.latency scaled target);
  Alcotest.(check int) "work scaled" 15 (Msts.Spider.work scaled target);
  Alcotest.(check int) "shallower node untouched" 2
    (Msts.Spider.latency scaled { Msts.Spider.leg = 1; depth = 1 });
  Alcotest.(check int) "other leg untouched" 4
    (Msts.Spider.work scaled { Msts.Spider.leg = 2; depth = 1 });
  Alcotest.(check bool) "original unchanged" true
    (Msts.Spider.work spider target = 5);
  Alcotest.check_raises "factor < 1 rejected"
    (Invalid_argument "Msts.Chain.scale: work_factor must be >= 1") (fun () ->
      ignore (Msts.Spider.scale ~work_factor:0 spider target))

let spider_restrict () =
  let spider =
    Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 4) ] ]
  in
  (match Msts.Spider.restrict spider ~depths:[| 1; 0 |] with
  | None -> Alcotest.fail "leg 1 survives"
  | Some (r, leg_map) ->
      Alcotest.(check int) "one leg" 1 (Msts.Spider.legs r);
      Alcotest.(check (array int)) "leg map" [| 1 |] leg_map;
      Alcotest.(check int) "prefix kept" 1
        (Msts.Chain.length (Msts.Spider.leg_chain r 1));
      Alcotest.(check int) "values preserved" 3
        (Msts.Spider.work r { Msts.Spider.leg = 1; depth = 1 }));
  (match Msts.Spider.restrict spider ~depths:[| 2; 1 |] with
  | None -> Alcotest.fail "everything survives"
  | Some (r, leg_map) ->
      Alcotest.(check bool) "full depths reproduce the spider" true
        (Msts.Spider.equal r spider);
      Alcotest.(check (array int)) "identity map" [| 1; 2 |] leg_map);
  Alcotest.(check bool) "all dead" true
    (Msts.Spider.restrict spider ~depths:[| 0; 0 |] = None);
  Alcotest.(check bool) "wrong length rejected" true
    (match Msts.Spider.restrict spider ~depths:[| 1 |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "depth beyond the leg rejected" true
    (match Msts.Spider.restrict spider ~depths:[| 3; 1 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- Tree ---------- *)

let leaf ~latency ~work = Msts.Tree.node ~latency ~work ()

let sample_tree =
  (* master -> a(b, c(d)), e : only node a branches *)
  Msts.Tree.make
    [
      Msts.Tree.node ~latency:1 ~work:2
        ~children:
          [
            leaf ~latency:2 ~work:3;
            Msts.Tree.node ~latency:1 ~work:4
              ~children:[ leaf ~latency:3 ~work:1 ] ();
          ]
        ();
      leaf ~latency:5 ~work:6;
    ]

let tree_shape () =
  Alcotest.(check int) "count" 5 (Msts.Tree.processor_count sample_tree);
  Alcotest.(check int) "depth" 3 (Msts.Tree.depth sample_tree);
  Alcotest.(check bool) "not chain" false (Msts.Tree.is_chain sample_tree);
  Alcotest.(check bool) "not spider" false (Msts.Tree.is_spider sample_tree)

let tree_spider_detection () =
  let spiderish =
    Msts.Tree.make
      [
        Msts.Tree.node ~latency:1 ~work:2 ~children:[ leaf ~latency:2 ~work:3 ] ();
        leaf ~latency:4 ~work:5;
      ]
  in
  Alcotest.(check bool) "is spider" true (Msts.Tree.is_spider spiderish);
  match Msts.Tree.to_spider spiderish with
  | None -> Alcotest.fail "expected conversion"
  | Some spider ->
      Alcotest.(check int) "legs" 2 (Msts.Spider.legs spider);
      Alcotest.(check int) "procs" 3 (Msts.Spider.processor_count spider)

let tree_extract_policies () =
  let check_policy policy =
    let spider = Msts.Tree.extract_spider policy sample_tree in
    Alcotest.(check int) "two legs" 2 (Msts.Spider.legs spider)
  in
  List.iter check_policy
    [ Msts.Tree.Fastest_processor; Msts.Tree.Cheapest_link; Msts.Tree.Best_rate ];
  (* fastest processor at the branch picks w=3 leaf -> leg depth 2 *)
  let fast = Msts.Tree.extract_spider Msts.Tree.Fastest_processor sample_tree in
  Alcotest.(check bool) "fastest keeps (2,3)" true
    (Msts.Chain.equal (Msts.Spider.leg_chain fast 1)
       (Msts.Chain.of_pairs [ (1, 2); (2, 3) ]));
  (* cheapest link picks the c=1 child -> continues to its child *)
  let cheap = Msts.Tree.extract_spider Msts.Tree.Cheapest_link sample_tree in
  Alcotest.(check bool) "cheapest keeps (1,4)->(3,1)" true
    (Msts.Chain.equal (Msts.Spider.leg_chain cheap 1)
       (Msts.Chain.of_pairs [ (1, 2); (1, 4); (3, 1) ]))

let tree_validation () =
  Alcotest.check_raises "empty tree" (Invalid_argument "Tree.make: empty tree")
    (fun () -> ignore (Msts.Tree.make []));
  Alcotest.check_raises "bad latency" (Invalid_argument "Tree: non-positive latency")
    (fun () -> ignore (Msts.Tree.node ~latency:0 ~work:1 ()))

(* ---------- Generator ---------- *)

let generator_respects_profile =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"generated chains respect the profile"
       QCheck.(pair small_int (int_range 1 8))
       (fun (seed, p) ->
         let rng = Msts.Prng.create seed in
         let profile = Msts.Generator.comm_bound_profile in
         let chain = Msts.Generator.chain rng profile ~p in
         List.for_all
           (fun (c, w) ->
             c >= profile.latency_min && c <= profile.latency_max
             && w >= profile.work_min && w <= profile.work_max)
           (Msts.Chain.to_pairs chain)))

let generator_deterministic () =
  let make seed =
    Msts.Generator.spider (Msts.Prng.create seed) Msts.Generator.default_profile
      ~legs:3 ~max_depth:3
  in
  Alcotest.(check bool) "same seed same platform" true
    (Msts.Spider.equal (make 42) (make 42));
  Alcotest.(check bool) "seeds differ" false (Msts.Spider.equal (make 1) (make 2))

let generator_tree_size =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"generated trees have the requested size"
       QCheck.(pair small_int (int_range 1 20))
       (fun (seed, nodes) ->
         let rng = Msts.Prng.create seed in
         let tree =
           Msts.Generator.tree rng Msts.Generator.default_profile ~nodes
             ~max_children:3
         in
         Msts.Tree.processor_count tree = nodes))

(* ---------- Parse ---------- *)

let platform_eq a b =
  match (a, b) with
  | Msts.Platform_format.Chain_platform x, Msts.Platform_format.Chain_platform y ->
      Msts.Chain.equal x y
  | Msts.Platform_format.Fork_platform x, Msts.Platform_format.Fork_platform y ->
      Msts.Fork.equal x y
  | Msts.Platform_format.Spider_platform x, Msts.Platform_format.Spider_platform y ->
      Msts.Spider.equal x y
  | _ -> false

let parse_roundtrip_chain =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"platform format round-trip (chain)"
       (chain_arb ~max_p:6 ())
       (fun chain ->
         let p = Msts.Platform_format.Chain_platform chain in
         match Msts.Platform_format.of_string (Msts.Platform_format.platform_to_string p) with
         | Ok parsed -> platform_eq p parsed
         | Error _ -> false))

let parse_roundtrip_spider =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"platform format round-trip (spider)"
       (spider_arb ~max_legs:4 ~max_depth:3 ())
       (fun spider ->
         let p = Msts.Platform_format.Spider_platform spider in
         match Msts.Platform_format.of_string (Msts.Platform_format.platform_to_string p) with
         | Ok parsed -> platform_eq p parsed
         | Error _ -> false))

let parse_roundtrip_tree =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"platform format round-trip (tree)"
       (QCheck.make ~print:(fun t -> Msts.Tree.to_string t)
          QCheck.Gen.(
            pair small_int (int_range 1 12) |> map (fun (seed, nodes) ->
                Msts.Generator.tree (Msts.Prng.create seed)
                  Msts.Generator.default_profile ~nodes ~max_children:3)))
       (fun tree ->
         let p = Msts.Platform_format.Tree_platform tree in
         match
           Msts.Platform_format.of_string (Msts.Platform_format.platform_to_string p)
         with
         | Ok (Msts.Platform_format.Tree_platform parsed) ->
             (* structural equality via the canonical rendering *)
             Msts.Tree.to_string parsed = Msts.Tree.to_string tree
         | _ -> false))

let parse_tree_errors () =
  let expect_error text =
    match Msts.Platform_format.of_string text with
    | Ok _ -> Alcotest.fail ("parsed: " ^ text)
    | Error _ -> ()
  in
  expect_error "tree\n";
  expect_error "tree\n1 2\n";
  expect_error "tree\n1 2 5\n" (* forward parent reference *);
  expect_error "tree\n1 2 0\n1 2 2\n" (* self/forward parent *);
  expect_error "tree\n0 2 0\n"

let parse_tree_spider_promotion () =
  (* a tree that only branches at the master is accepted as a spider *)
  let text = "tree\n2 3 0\n3 5 1\n1 4 0\n" in
  match Msts.Platform_format.spider_of_string text with
  | Ok spider ->
      Alcotest.(check int) "two legs" 2 (Msts.Spider.legs spider);
      Alcotest.(check bool) "leg 1 is the figure-2 chain" true
        (Msts.Chain.equal (Msts.Spider.leg_chain spider 1) figure2_chain)
  | Error e -> Alcotest.fail e

let parse_tree_spider_rejection () =
  (* branching below the master cannot be promoted *)
  let text = "tree\n1 2 0\n1 2 1\n1 2 1\n" in
  match Msts.Platform_format.spider_of_string text with
  | Ok _ -> Alcotest.fail "promoted a branching tree"
  | Error _ -> ()

let parse_errors () =
  let expect_error text =
    match Msts.Platform_format.of_string text with
    | Ok _ -> Alcotest.fail ("parsed: " ^ text)
    | Error _ -> ()
  in
  expect_error "";
  expect_error "volcano\n1 2\n";
  expect_error "chain\n1\n";
  expect_error "chain\n1 x\n";
  expect_error "chain\n0 2\n";
  expect_error "chain\n";
  expect_error "spider\n1 2\n";
  expect_error "spider\nleg\n";
  expect_error "chain\nleg\n1 2\n"

let parse_comments_blanks () =
  let text = "# a comment\n\nchain\n# inner\n2 3\n\n3 5\n" in
  match Msts.Platform_format.chain_of_string text with
  | Ok chain -> Alcotest.(check bool) "parsed" true (Msts.Chain.equal chain figure2_chain)
  | Error e -> Alcotest.fail e

let parse_promotion () =
  let fork_text = "fork\n1 2\n3 4\n" in
  match Msts.Platform_format.spider_of_string fork_text with
  | Ok spider -> Alcotest.(check int) "fork promoted" 2 (Msts.Spider.legs spider)
  | Error e -> Alcotest.fail e

(* ---------- Dot ---------- *)

let dot_mentions_everything () =
  let spider =
    Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 9) ] ]
  in
  let dot = Msts.Dot.of_spider spider in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (let n = String.length dot and m = String.length needle in
         let rec at i = i + m <= n && (String.sub dot i m = needle || at (i + 1)) in
         at 0))
    [ "master"; "w=3"; "w=5"; "w=9"; "c=2"; "c=3"; "c=1"; "digraph" ]

let suites =
  [
    ( "platform.chain",
      [
        case "accessors" chain_accessors;
        case "validation" chain_validation;
        case "out-of-range indices" chain_out_of_range;
        case "drop_first" chain_drop_first;
        case "prefix" chain_prefix;
        chain_pairs_roundtrip;
        case "master-only makespan (T-inf)" chain_master_only;
      ] );
    ( "platform.fork",
      [
        case "accessors" fork_accessors;
        case "as_chains" fork_as_chains;
        case "validation" fork_validation;
      ] );
    ( "platform.spider",
      [
        case "addresses and lookups" spider_addresses;
        case "chain/fork promotion" spider_of_chain_fork;
        case "scale (fault surgery)" spider_scale;
        case "restrict (residual platforms)" spider_restrict;
      ] );
    ( "platform.tree",
      [
        case "shape predicates" tree_shape;
        case "spider detection and conversion" tree_spider_detection;
        case "extraction policies" tree_extract_policies;
        case "validation" tree_validation;
      ] );
    ( "platform.generator",
      [
        generator_respects_profile;
        case "deterministic from seed" generator_deterministic;
        generator_tree_size;
      ] );
    ( "platform.format",
      [
        parse_roundtrip_chain;
        parse_roundtrip_spider;
        parse_roundtrip_tree;
        case "tree parse errors" parse_tree_errors;
        case "spider-shaped tree promoted" parse_tree_spider_promotion;
        case "branching tree not promoted" parse_tree_spider_rejection;
        case "errors are reported" parse_errors;
        case "comments and blanks ignored" parse_comments_blanks;
        case "fork promoted to spider" parse_promotion;
      ] );
    ("platform.dot", [ case "dot export mentions everything" dot_mentions_everything ]);
  ]
