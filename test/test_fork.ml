(* Tests for the fork-graph substrate (§6): virtual-node expansion
   (Figure 6), the greedy one-port allocator, and the schedule builder. *)

open Helpers

(* ---------- expansion (Figure 6) ---------- *)

let virtual_work_formula () =
  (* Figure 6: (c,w) becomes w, w+m, w+2m, ... with m = max(c,w) *)
  Alcotest.(check int) "rank 0" 4 (Msts.Fork_expansion.virtual_work ~c:2 ~w:4 ~rank:0);
  Alcotest.(check int) "rank 1, compute-bound" 8
    (Msts.Fork_expansion.virtual_work ~c:2 ~w:4 ~rank:1);
  Alcotest.(check int) "rank 2, compute-bound" 12
    (Msts.Fork_expansion.virtual_work ~c:2 ~w:4 ~rank:2);
  Alcotest.(check int) "rank 1, comm-bound" 9
    (Msts.Fork_expansion.virtual_work ~c:5 ~w:4 ~rank:1)

let expansion_counts () =
  let fork = Msts.Fork.of_pairs [ (1, 2); (3, 4) ] in
  let nodes = Msts.Fork_expansion.expand fork ~count:3 in
  Alcotest.(check int) "3 per slave" 6 (List.length nodes);
  (* sorted by ascending comm then work *)
  let comms = List.map (fun v -> v.Msts.Fork_expansion.comm) nodes in
  Alcotest.(check (list int)) "comm sorted" [ 1; 1; 1; 3; 3; 3 ] comms;
  let works = List.map (fun v -> v.Msts.Fork_expansion.work) nodes in
  Alcotest.(check (list int)) "works" [ 2; 4; 6; 4; 8; 12 ] works

let expansion_order_ties () =
  (* equal comm: ascending work breaks the tie *)
  let fork = Msts.Fork.of_pairs [ (2, 9); (2, 1) ] in
  let nodes = Msts.Fork_expansion.expand fork ~count:2 in
  let works = List.map (fun v -> v.Msts.Fork_expansion.work) nodes in
  Alcotest.(check (list int)) "tie broken by work" [ 1; 3; 9; 18 ] works

(* ---------- allocator ---------- *)

let feasible_set_condition () =
  (* prefix condition: sum of comms before each node + its work <= Tlim *)
  let node slave comm work = { Msts.Fork_expansion.slave; rank = 0; comm; work } in
  Alcotest.(check bool) "fits" true
    (Msts.Fork_allocator.is_feasible_set [ node 1 2 8; node 2 3 5 ] ~deadline:10);
  (* emitted in decreasing work order: (2,8) then (3,5): 2+8=10 ok; 2+3+5=10 ok *)
  Alcotest.(check bool) "tight fits" true
    (Msts.Fork_allocator.is_feasible_set [ node 1 2 8; node 2 3 5 ] ~deadline:10);
  Alcotest.(check bool) "overflow" false
    (Msts.Fork_allocator.is_feasible_set [ node 1 2 8; node 2 3 6 ] ~deadline:10)

let allocate_emits_back_to_back () =
  let fork = Msts.Fork.of_pairs [ (2, 3) ] in
  let nodes = Msts.Fork_expansion.expand fork ~count:4 in
  let allocs = Msts.Fork_allocator.allocate nodes ~deadline:14 ~budget:10 in
  (* works 3,6,9,12: emitted 12 first. 2+12=14; 4+9=13; 6+6=12; 8+3=11 *)
  Alcotest.(check int) "four accepted" 4 (List.length allocs);
  List.iteri
    (fun idx a ->
      Alcotest.(check int) "back-to-back" (2 * idx) a.Msts.Fork_allocator.emission)
    allocs;
  let works = List.map (fun a -> a.Msts.Fork_allocator.node.Msts.Fork_expansion.work) allocs in
  Alcotest.(check (list int)) "decreasing work order" [ 12; 9; 6; 3 ] works

let allocate_budget () =
  let fork = Msts.Fork.of_pairs [ (1, 1) ] in
  let nodes = Msts.Fork_expansion.expand fork ~count:50 in
  let allocs = Msts.Fork_allocator.allocate nodes ~deadline:1000 ~budget:5 in
  Alcotest.(check int) "budget respected" 5 (List.length allocs)

let tasks_per_slave () =
  let fork = Msts.Fork.of_pairs [ (1, 2); (4, 1) ] in
  let nodes = Msts.Fork_expansion.expand fork ~count:6 in
  let allocs = Msts.Fork_allocator.allocate nodes ~deadline:12 ~budget:100 in
  let per_slave = Msts.Fork_allocator.tasks_per_slave allocs in
  let total = List.fold_left (fun acc (_, k) -> acc + k) 0 per_slave in
  Alcotest.(check int) "totals agree" (List.length allocs) total;
  List.iter (fun (slave, k) -> Alcotest.(check bool) "valid slave" true (slave >= 1 && slave <= 2 && k > 0)) per_slave

let allocator_prefix_ranks =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"accepted ranks form a prefix per slave (0..k-1)"
       (QCheck.make
          ~print:(fun (fork, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Fork.to_string fork) d)
          QCheck.Gen.(pair (fork_gen ~max_slaves:4 ()) (int_range 0 60)))
       (fun (fork, deadline) ->
         let nodes = Msts.Fork_expansion.expand fork ~count:8 in
         let allocs = Msts.Fork_allocator.allocate nodes ~deadline ~budget:8 in
         List.for_all
           (fun (slave, k) ->
             let ranks =
               List.filter_map
                 (fun a ->
                   let v = a.Msts.Fork_allocator.node in
                   if v.Msts.Fork_expansion.slave = slave then
                     Some v.Msts.Fork_expansion.rank
                   else None)
                 allocs
             in
             List.sort compare ranks = List.init k (fun i -> i))
           (Msts.Fork_allocator.tasks_per_slave allocs)))

let allocator_feasible_output =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"allocated set satisfies the prefix condition"
       (QCheck.make
          ~print:(fun (fork, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Fork.to_string fork) d)
          QCheck.Gen.(pair (fork_gen ~max_slaves:4 ()) (int_range 0 60)))
       (fun (fork, deadline) ->
         let nodes = Msts.Fork_expansion.expand fork ~count:8 in
         let allocs = Msts.Fork_allocator.allocate nodes ~deadline ~budget:8 in
         Msts.Fork_allocator.is_feasible_set
           (List.map (fun a -> a.Msts.Fork_allocator.node) allocs)
           ~deadline))

let allocator_optimal_vs_brute_force =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:120
       ~name:"fork algorithm is optimal (vs spider brute force)"
       (QCheck.make
          ~print:(fun (fork, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Fork.to_string fork) d)
          QCheck.Gen.(pair (fork_gen ~max_slaves:4 ~max_val:8 ()) (int_range 0 40)))
       (fun (fork, deadline) ->
         min 6 (Msts.Fork_allocator.max_tasks fork ~deadline ~budget:6)
         = Msts.Brute_force.spider_max_tasks (Msts.Spider.of_fork fork) ~deadline
             ~limit:6))

let allocator_monotone_in_deadline =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"accepted count is monotone in the deadline"
       (QCheck.make
          ~print:(fun (fork, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Fork.to_string fork) d)
          QCheck.Gen.(pair (fork_gen ~max_slaves:3 ()) (int_range 0 50)))
       (fun (fork, d) ->
         Msts.Fork_allocator.max_tasks fork ~deadline:d ~budget:10
         <= Msts.Fork_allocator.max_tasks fork ~deadline:(d + 1) ~budget:10))

(* ---------- builder ---------- *)

let builder_schedules_are_feasible =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"realised fork schedules are feasible and meet the deadline"
       (QCheck.make
          ~print:(fun (fork, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Fork.to_string fork) d)
          QCheck.Gen.(pair (fork_gen ~max_slaves:4 ()) (int_range 0 60)))
       (fun (fork, deadline) ->
         let s = Msts.Fork_builder.schedule fork ~deadline ~budget:8 in
         check_spider_feasible s
         && (Msts.Spider_schedule.task_count s = 0
            || Msts.Spider_schedule.makespan s <= deadline)))

let builder_counts_match_allocator =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"builder schedules exactly the allocated tasks"
       (QCheck.make
          ~print:(fun (fork, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Fork.to_string fork) d)
          QCheck.Gen.(pair (fork_gen ~max_slaves:4 ()) (int_range 0 60)))
       (fun (fork, deadline) ->
         Msts.Spider_schedule.task_count
           (Msts.Fork_builder.schedule fork ~deadline ~budget:8)
         = Msts.Fork_allocator.max_tasks fork ~deadline ~budget:8))

let builder_example () =
  (* one fast-link slow slave, one slow-link fast slave *)
  let fork = Msts.Fork.of_pairs [ (1, 10); (4, 2) ] in
  let s = Msts.Fork_builder.schedule fork ~deadline:20 ~budget:100 in
  Alcotest.(check bool) "feasible" true
    (Msts.Spider_schedule.is_feasible ~require_nonnegative:true s);
  Alcotest.(check bool) "meets deadline" true
    (Msts.Spider_schedule.meets_deadline s ~deadline:20);
  (* both slaves get work: the fork algorithm is bandwidth-centric *)
  Alcotest.(check bool) "slave 1 used" true
    (Msts.Spider_schedule.tasks_on_leg s 1 <> []);
  Alcotest.(check bool) "slave 2 used" true
    (Msts.Spider_schedule.tasks_on_leg s 2 <> [])

let suites =
  [
    ( "fork.expansion",
      [
        case "virtual work formula (Figure 6)" virtual_work_formula;
        case "expansion counts and order" expansion_counts;
        case "ties broken by work" expansion_order_ties;
      ] );
    ( "fork.allocator",
      [
        case "prefix feasibility condition" feasible_set_condition;
        case "back-to-back emissions" allocate_emits_back_to_back;
        case "budget respected" allocate_budget;
        case "tasks per slave" tasks_per_slave;
        allocator_prefix_ranks;
        allocator_feasible_output;
        allocator_optimal_vs_brute_force;
        allocator_monotone_in_deadline;
      ] );
    ( "fork.builder",
      [
        builder_schedules_are_feasible;
        builder_counts_match_allocator;
        case "bandwidth-centric example" builder_example;
      ] );
  ]
