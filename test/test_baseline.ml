(* Tests for the baseline library: ASAP timing, brute force internals,
   list-scheduling heuristics, lower bounds and steady-state analysis. *)

open Helpers

(* ---------- ASAP ---------- *)

let asap_sequences_feasible =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"ASAP timing of any sequence is feasible"
       (QCheck.make
          ~print:(fun (chain, seq) ->
            Printf.sprintf "%s, seq=[%s]" (Msts.Chain.to_string chain)
              (String.concat ";" (List.map string_of_int (Array.to_list seq))))
          QCheck.Gen.(
            chain_gen ~max_p:5 () >>= fun chain ->
            map
              (fun dests -> (chain, Array.of_list dests))
              (list_size (int_range 0 15)
                 (int_range 1 (Msts.Chain.length chain)))))
       (fun (chain, seq) ->
         check_feasible (Msts.Asap.chain_of_sequence chain seq)))

let asap_makespan_agrees =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"chain_makespan equals the schedule's makespan"
       (QCheck.make
          ~print:(fun (chain, seq) ->
            Printf.sprintf "%s, seq=[%s]" (Msts.Chain.to_string chain)
              (String.concat ";" (List.map string_of_int (Array.to_list seq))))
          QCheck.Gen.(
            chain_gen ~max_p:5 () >>= fun chain ->
            map
              (fun dests -> (chain, Array.of_list dests))
              (list_size (int_range 0 15)
                 (int_range 1 (Msts.Chain.length chain)))))
       (fun (chain, seq) ->
         Msts.Asap.chain_makespan chain seq
         = Msts.Schedule.makespan (Msts.Asap.chain_of_sequence chain seq)))

let asap_known_example () =
  (* single processor (c=2,w=3): emissions 0,2,4; starts 2,5,8 *)
  let chain = Msts.Chain.of_pairs [ (2, 3) ] in
  let s = Msts.Asap.chain_of_sequence chain [| 1; 1; 1 |] in
  Alcotest.(check int) "makespan" 11 (Msts.Schedule.makespan s);
  Alcotest.(check int) "second start" 5 (Msts.Schedule.entry s 2).Msts.Schedule.start

let asap_push_rejects_bad_dest () =
  let st = Msts.Asap.chain_start figure2_chain in
  Alcotest.check_raises "dest 0"
    (Invalid_argument "Asap.chain_push: destination outside the chain") (fun () ->
      ignore (Msts.Asap.chain_push st ~dest:0))

let asap_spider_feasible =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"spider ASAP timing is feasible"
       (QCheck.make
          ~print:(fun (spider, _) -> Msts.Spider.to_string spider)
          QCheck.Gen.(
            spider_gen ~max_legs:3 ~max_depth:3 () >>= fun spider ->
            let addresses = Array.of_list (Msts.Spider.addresses spider) in
            map
              (fun picks ->
                (spider, Array.of_list (List.map (Array.get addresses) picks)))
              (list_size (int_range 0 12)
                 (int_range 0 (Array.length addresses - 1)))))
       (fun (spider, seq) ->
         check_spider_feasible (Msts.Asap.spider_of_sequence spider seq)))

(* ---------- brute force ---------- *)

let brute_force_schedule_witness =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"brute-force witness schedule attains its makespan"
       (chain_with_n_arb ~max_p:3 ~max_n:6 ())
       (fun (chain, n) ->
         let s = Msts.Brute_force.chain_schedule chain n in
         check_feasible s
         && Msts.Schedule.makespan s = Msts.Brute_force.chain_makespan chain n))

let brute_force_zero () =
  Alcotest.(check int) "0 tasks" 0 (Msts.Brute_force.chain_makespan figure2_chain 0);
  Alcotest.(check int) "spider 0 tasks" 0
    (Msts.Brute_force.spider_makespan (Msts.Spider.of_chain figure2_chain) 0)

let brute_force_search_space () =
  Alcotest.(check (Alcotest.float 1e-9)) "4^7" (16384.0)
    (Msts.Brute_force.search_space ~procs:4 ~tasks:7)

(* ---------- heuristics ---------- *)

let heuristics_feasible =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"every chain heuristic yields a feasible schedule"
       (chain_with_n_arb ~max_p:5 ~max_n:15 ())
       (fun (chain, n) ->
         List.for_all
           (fun policy -> check_feasible (Msts.List_sched.chain policy chain n))
           Msts.List_sched.all_chain_policies))

let spider_heuristics_feasible =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"every spider heuristic yields a feasible schedule"
       (spider_with_n_arb ~max_legs:3 ~max_depth:3 ~max_n:12 ())
       (fun (spider, n) ->
         List.for_all
           (fun policy -> check_spider_feasible (Msts.List_sched.spider policy spider n))
           Msts.List_sched.all_spider_policies))

let master_only_matches_formula =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"master-only heuristic equals the T-inf formula"
       (chain_with_n_arb ~max_p:5 ~max_n:15 ())
       (fun (chain, n) ->
         n = 0
         || Msts.List_sched.(chain_makespan Master_only) chain n
            = Msts.Chain.master_only_makespan chain n))

let heuristic_task_counts =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"heuristics schedule exactly n tasks"
       (chain_with_n_arb ~max_p:4 ~max_n:12 ())
       (fun (chain, n) ->
         List.for_all
           (fun policy ->
             Msts.Schedule.task_count (Msts.List_sched.chain policy chain n) = n)
           Msts.List_sched.all_chain_policies))

let random_policy_deterministic () =
  let chain = figure2_chain in
  let a = Msts.List_sched.(chain (Random 5)) chain 10 in
  let b = Msts.List_sched.(chain (Random 5)) chain 10 in
  Alcotest.(check bool) "same seed, same schedule" true (Msts.Schedule.equal a b)

(* ---------- bounds ---------- *)

let bounds_below_optimal =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"all chain lower bounds are <= optimal"
       (chain_with_n_arb ~max_p:4 ~max_n:7 ())
       (fun (chain, n) ->
         let opt = Msts.Brute_force.chain_makespan chain n in
         Msts.Bounds.port_bound chain n <= opt
         && Msts.Bounds.capacity_bound chain n <= opt
         && Msts.Bounds.combined_bound chain n <= opt
         && Msts.Bounds.fluid_bound chain n <= float_of_int opt +. 1e-6))

let spider_bounds_below_optimal =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"all spider lower bounds are <= optimal"
       (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:5 ())
       (fun (spider, n) ->
         QCheck.assume (Msts.Spider.processor_count spider <= 5);
         let opt = Msts.Brute_force.spider_makespan spider n in
         Msts.Bounds.spider_port_bound spider n <= opt
         && Msts.Bounds.spider_capacity_bound spider n <= opt
         && Msts.Bounds.spider_combined_bound spider n <= opt))

let spider_fluid_below_optimal =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"spider fluid bound is <= optimal"
       (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:5 ())
       (fun (spider, n) ->
         QCheck.assume (Msts.Spider.processor_count spider <= 5);
         Msts.Bounds.spider_fluid_bound spider n
         <= float_of_int (Msts.Brute_force.spider_makespan spider n) +. 1e-6))

let spider_fluid_single_leg_consistent =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"spider fluid bound on one leg equals the chain fluid bound"
       (chain_with_n_arb ~max_p:4 ~max_n:8 ())
       (fun (chain, n) ->
         abs_float
           (Msts.Bounds.spider_fluid_bound (Msts.Spider.of_chain chain) n
           -. Msts.Bounds.fluid_bound chain n)
         < 1e-6))

let bounds_known_instance () =
  (* Figure 2 chain, n=5: optimal is 14 *)
  Alcotest.(check bool) "port bound" true (Msts.Bounds.port_bound figure2_chain 5 <= 14);
  Alcotest.(check bool) "port bound formula" true
    (Msts.Bounds.port_bound figure2_chain 5 = (4 * 2) + 5);
  Alcotest.(check bool) "capacity bound sane" true
    (Msts.Bounds.capacity_bound figure2_chain 5 <= 14);
  Alcotest.(check int) "n=0" 0 (Msts.Bounds.port_bound figure2_chain 0)

let bounds_single_processor_tight () =
  (* one processor: capacity/port bounds must meet the exact optimum *)
  let chain = Msts.Chain.of_pairs [ (2, 3) ] in
  let n = 6 in
  Alcotest.(check int) "combined = optimal" (Msts.Chain_algorithm.makespan chain n)
    (Msts.Bounds.combined_bound chain n)

(* ---------- steady state ---------- *)

let throughput_known_values () =
  (* single processor: rate = min(1/c, 1/w) *)
  let feq = Alcotest.float 1e-9 in
  Alcotest.check feq "compute bound" (1.0 /. 5.0)
    (Msts.Steady_state.chain_throughput (Msts.Chain.of_pairs [ (2, 5) ]));
  Alcotest.check feq "comm bound" (1.0 /. 4.0)
    (Msts.Steady_state.chain_throughput (Msts.Chain.of_pairs [ (4, 2) ]));
  (* figure-2 chain: rho2 = min(1/3, 1/5) = 1/5; rho1 = min(1/2, 1/3 + 1/5) *)
  Alcotest.check feq "figure 2" 0.5
    (Msts.Steady_state.chain_throughput figure2_chain)

let throughput_prefixes () =
  let rho = Msts.Steady_state.chain_prefix_throughputs figure2_chain in
  Alcotest.(check int) "length" 2 (Array.length rho);
  Alcotest.(check (Alcotest.float 1e-9)) "rho2" 0.2 rho.(1)

let throughput_bounded_by_port =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"throughput never exceeds the first link rate"
       (chain_arb ~max_p:6 ())
       (fun chain ->
         Msts.Steady_state.chain_throughput chain
         <= (1.0 /. float_of_int (Msts.Chain.latency chain 1)) +. 1e-9))

let spider_rates_sum_and_cap =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"spider leg rates are capped and saturate the port correctly"
       (spider_arb ~max_legs:4 ~max_depth:3 ())
       (fun spider ->
         let rates = Msts.Steady_state.spider_leg_rates spider in
         let port_use = ref 0.0 in
         let ok = ref true in
         Array.iteri
           (fun idx rate ->
             let chain = Msts.Spider.leg_chain spider (idx + 1) in
             if rate < -1e-9 then ok := false;
             if rate > Msts.Steady_state.chain_throughput chain +. 1e-9 then
               ok := false;
             port_use :=
               !port_use +. (rate *. float_of_int (Msts.Chain.latency chain 1)))
           rates;
         !ok && !port_use <= 1.0 +. 1e-9))

let asymptotic_prediction () =
  (* optimal makespan / n approaches 1/throughput for large n *)
  let chain = figure2_chain in
  let n = 400 in
  let per_task =
    float_of_int (Msts.Chain_algorithm.makespan chain n) /. float_of_int n
  in
  let predicted = 1.0 /. Msts.Steady_state.chain_throughput chain in
  Alcotest.(check bool)
    (Printf.sprintf "%.3f within 5%% of %.3f" per_task predicted)
    true
    (abs_float (per_task -. predicted) /. predicted < 0.05)

let asymptotic_prediction_random =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:20 ~name:"asymptotic rate holds on random chains"
       (chain_arb ~max_p:4 ~max_val:6 ())
       (fun chain ->
         let n = 300 in
         let per_task =
           float_of_int (Msts.Chain_algorithm.makespan chain n) /. float_of_int n
         in
         let predicted = 1.0 /. Msts.Steady_state.chain_throughput chain in
         abs_float (per_task -. predicted) /. predicted < 0.10))

let suites =
  [
    ( "baseline.asap",
      [
        asap_sequences_feasible;
        asap_makespan_agrees;
        case "known single-processor pipeline" asap_known_example;
        case "bad destination rejected" asap_push_rejects_bad_dest;
        asap_spider_feasible;
      ] );
    ( "baseline.brute_force",
      [
        brute_force_schedule_witness;
        case "zero tasks" brute_force_zero;
        case "search space arithmetic" brute_force_search_space;
      ] );
    ( "baseline.heuristics",
      [
        heuristics_feasible;
        spider_heuristics_feasible;
        master_only_matches_formula;
        heuristic_task_counts;
        case "seeded random policy is deterministic" random_policy_deterministic;
      ] );
    ( "baseline.bounds",
      [
        bounds_below_optimal;
        spider_bounds_below_optimal;
        spider_fluid_below_optimal;
        spider_fluid_single_leg_consistent;
        case "figure-2 values" bounds_known_instance;
        case "single processor tightness" bounds_single_processor_tight;
      ] );
    ( "baseline.steady_state",
      [
        case "known throughputs" throughput_known_values;
        case "prefix throughputs" throughput_prefixes;
        throughput_bounded_by_port;
        spider_rates_sum_and_cap;
        case "asymptotic prediction (figure 2)" asymptotic_prediction;
        asymptotic_prediction_random;
      ] );
  ]
