(* Tests for the per-resource utilization report (Msts.Obs.Report): a
   hand-computed instance checked field by field, and the exact-accounting
   invariant (compute + starved + idle = makespan on every processor)
   over random chains and spiders, planned and executed. *)

open Helpers
module Report = Msts.Obs.Report

let solve problem =
  match Msts.Solve.solve problem with
  | Ok plan -> plan
  | Error msg -> Alcotest.fail msg

(* chain (c,w) = (1,2),(1,2), n=2.  The optimal plan (makespan 4):
     task 1 -> P2: master->P1 on [0,1], P1->P2 on [1,2], computes [2,4]
     task 2 -> P1: master->P1 on [1,2],                  computes [2,4]
   Master port busy [0,2]; link 1 carries both transfers ([0,1] and
   [1,2]), link 2 one ([1,2]); both processors compute 2, wait 2, never
   sit idle after their task. *)
let hand_computed_two_slave_chain () =
  let chain = Msts.Chain.of_pairs [ (1, 2); (1, 2) ] in
  let plan =
    solve
      (Msts.Solve.problem ~tasks:2 (Msts.Platform_format.Chain_platform chain))
  in
  let r = Report.of_plan plan in
  Alcotest.(check int) "tasks" 2 r.Report.tasks;
  Alcotest.(check int) "makespan" 4 r.Report.makespan;
  Alcotest.(check int) "master port busy" 2 r.Report.master_port.Report.busy;
  Alcotest.(check (float 1e-9)) "master port fraction" 0.5
    r.Report.master_port.Report.fraction;
  (match r.Report.nodes with
  | [ p1; p2 ] ->
      Alcotest.(check int) "link 1 busy" 2 p1.Report.link.Report.busy;
      Alcotest.(check int) "link 2 busy" 1 p2.Report.link.Report.busy;
      Alcotest.(check (float 1e-9)) "link 2 fraction" 0.25
        p2.Report.link.Report.fraction;
      List.iteri
        (fun i node ->
          let proc = node.Report.proc in
          let where = Printf.sprintf "P%d" (i + 1) in
          Alcotest.(check int) (where ^ " tasks") 1 proc.Report.tasks;
          Alcotest.(check int) (where ^ " compute") 2 proc.Report.compute;
          Alcotest.(check int) (where ^ " starved") 2 proc.Report.starved;
          Alcotest.(check int) (where ^ " idle") 0 proc.Report.idle;
          Alcotest.(check (float 1e-9)) (where ^ " fraction") 0.5
            proc.Report.fraction)
        [ p1; p2 ]
  | nodes -> Alcotest.failf "expected 2 nodes, got %d" (List.length nodes));
  (* the realized execution of a fault-free run reports identically *)
  let executed = Report.of_execution (Msts.Netsim.execute plan) in
  Alcotest.(check int) "executed makespan" 4 executed.Report.makespan;
  Alcotest.(check int) "executed master port busy" 2
    executed.Report.master_port.Report.busy

(* The acceptance invariant: the three-way breakdown is an exact partition
   of [0, makespan) for every processor, and no busy time or fraction can
   escape its bounds. *)
let check_accounting r =
  let total_tasks =
    List.fold_left (fun acc n -> acc + n.Report.proc.Report.tasks) 0 r.Report.nodes
  in
  if total_tasks <> r.Report.tasks then
    QCheck.Test.fail_reportf "task counts: %d placed vs %d reported"
      total_tasks r.Report.tasks;
  if r.Report.master_port.Report.busy > r.Report.makespan then
    QCheck.Test.fail_reportf "master port busier than the makespan";
  List.iter
    (fun node ->
      let proc = node.Report.proc in
      let parts = proc.Report.compute + proc.Report.starved + proc.Report.idle in
      if parts <> r.Report.makespan then
        QCheck.Test.fail_reportf
          "leg %d depth %d: compute %d + starved %d + idle %d = %d <> makespan %d"
          node.Report.address.Msts.Spider.leg node.Report.address.Msts.Spider.depth
          proc.Report.compute proc.Report.starved proc.Report.idle parts
          r.Report.makespan;
      if node.Report.link.Report.busy > r.Report.makespan then
        QCheck.Test.fail_reportf "link busier than the makespan";
      List.iter
        (fun f ->
          if f < 0.0 || f > 1.0 +. 1e-9 then
            QCheck.Test.fail_reportf "fraction %f out of [0,1]" f)
        [ node.Report.link.Report.fraction; proc.Report.fraction ])
    r.Report.nodes;
  true

let chain_breakdown_sums =
  QCheck.Test.make ~name:"chain report partitions the makespan exactly"
    ~count:150
    (chain_with_n_arb ~max_p:4 ~max_n:9 ())
    (fun (chain, n) ->
      let plan = Msts.Plan.Chain (Msts.Chain_algorithm.schedule chain n) in
      check_accounting (Report.of_plan plan)
      && check_accounting (Report.of_execution (Msts.Netsim.execute plan)))

let spider_breakdown_sums =
  QCheck.Test.make ~name:"spider report partitions the makespan exactly"
    ~count:100
    (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:6 ())
    (fun (spider, n) ->
      let plan = Msts.Plan.Spider (Msts.Spider_algorithm.schedule_tasks spider n) in
      check_accounting (Report.of_plan plan)
      && check_accounting (Report.of_execution (Msts.Netsim.execute plan)))

let empty_report () =
  let chain = Msts.Chain.of_pairs [ (2, 3) ] in
  let r = Report.of_plan (Msts.Plan.Chain (Msts.Chain_algorithm.schedule chain 0)) in
  Alcotest.(check int) "tasks" 0 r.Report.tasks;
  Alcotest.(check int) "makespan" 0 r.Report.makespan;
  List.iter
    (fun node ->
      Alcotest.(check int) "no compute" 0 node.Report.proc.Report.compute;
      Alcotest.(check int) "no idle on an empty horizon" 0
        node.Report.proc.Report.idle)
    r.Report.nodes

let summary_and_json_shape () =
  let spider =
    Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 2) ] ]
  in
  let plan =
    solve
      (Msts.Solve.problem ~tasks:5 (Msts.Platform_format.Spider_platform spider))
  in
  let r = Report.of_plan plan in
  let text = Report.summary r in
  let contains needle =
    let lh = String.length text and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub text i ln = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("summary contains " ^ needle) true (contains needle))
    [ "master port"; "leg 1"; "leg 2"; "compute"; "starved" ];
  match Report.to_json r with
  | Msts.Json.Obj fields ->
      List.iter
        (fun key ->
          Alcotest.(check bool) ("json has " ^ key) true
            (List.mem_assoc key fields))
        [ "tasks"; "makespan"; "master_port"; "legs" ]
  | _ -> Alcotest.fail "to_json is not an object"

let suites =
  [
    ( "report",
      [
        case "hand-computed 2-slave chain" hand_computed_two_slave_chain;
        case "empty plan" empty_report;
        case "summary text and JSON shape" summary_and_json_shape;
        to_alcotest chain_breakdown_sums;
        to_alcotest spider_breakdown_sums;
      ] );
  ]
