(* Tests for the discrete-event substrate: engine, resources, and the
   master-slave network simulation. *)

open Helpers

(* ---------- engine ---------- *)

let engine_orders_events () =
  let e = Msts.Engine.create () in
  let log = ref [] in
  Msts.Engine.schedule_at e 5 (fun () -> log := 5 :: !log);
  Msts.Engine.schedule_at e 1 (fun () -> log := 1 :: !log);
  Msts.Engine.schedule_at e 3 (fun () -> log := 3 :: !log);
  Msts.Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 3; 5 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 5 (Msts.Engine.now e);
  Alcotest.(check int) "three events" 3 (Msts.Engine.events_processed e)

let engine_fifo_within_time () =
  let e = Msts.Engine.create () in
  let log = ref [] in
  List.iter
    (fun tag -> Msts.Engine.schedule_at e 7 (fun () -> log := tag :: !log))
    [ "a"; "b"; "c" ];
  Msts.Engine.run e;
  Alcotest.(check (list string)) "insertion order preserved" [ "a"; "b"; "c" ]
    (List.rev !log)

let engine_cascading () =
  let e = Msts.Engine.create () in
  let log = ref [] in
  Msts.Engine.schedule_at e 2 (fun () ->
      log := "first" :: !log;
      Msts.Engine.schedule_after e 3 (fun () -> log := "second" :: !log));
  Msts.Engine.run e;
  Alcotest.(check (list string)) "cascade" [ "first"; "second" ] (List.rev !log);
  Alcotest.(check int) "final clock" 5 (Msts.Engine.now e)

let engine_rejects_past () =
  let e = Msts.Engine.create () in
  Msts.Engine.schedule_at e 10 (fun () ->
      Alcotest.check_raises "past"
        (Invalid_argument "Engine.schedule_at: time 3 is before now (10)")
        (fun () -> Msts.Engine.schedule_at e 3 (fun () -> ())));
  Msts.Engine.run e

let engine_stress =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:20 ~name:"engine executes thousands of events in time order"
       QCheck.(small_int)
       (fun seed ->
         let rng = Msts.Prng.create seed in
         let e = Msts.Engine.create () in
         let fired = ref [] in
         for _ = 1 to 2000 do
           let t = Msts.Prng.int rng 10000 in
           Msts.Engine.schedule_at e t (fun () -> fired := Msts.Engine.now e :: !fired)
         done;
         Msts.Engine.run e;
         let times = List.rev !fired in
         List.length times = 2000
         && Msts.Engine.events_processed e = 2000
         && List.for_all2 ( <= ) times (List.tl times @ [ max_int ])))

let engine_step () =
  let e = Msts.Engine.create () in
  Alcotest.(check bool) "empty step" false (Msts.Engine.step e);
  Msts.Engine.schedule_at e 1 (fun () -> ());
  Alcotest.(check bool) "one step" true (Msts.Engine.step e);
  Alcotest.(check bool) "drained" false (Msts.Engine.step e)

let engine_rejects_negative_delay () =
  let e = Msts.Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
      Msts.Engine.schedule_after e (-2) (fun () -> ()))

let engine_counts_cascades () =
  let e = Msts.Engine.create () in
  (* a chain of events, each scheduling the next: the counter must see
     callbacks created mid-run, not just the initial batch *)
  let rec ripple n =
    if n > 0 then Msts.Engine.schedule_after e 1 (fun () -> ripple (n - 1))
  in
  ripple 5;
  Msts.Engine.run e;
  Alcotest.(check int) "all five counted" 5 (Msts.Engine.events_processed e);
  Alcotest.(check int) "clock followed" 5 (Msts.Engine.now e);
  (* same-time events count individually *)
  Msts.Engine.schedule_at e 5 (fun () -> ());
  Msts.Engine.schedule_at e 5 (fun () -> ());
  Msts.Engine.run e;
  Alcotest.(check int) "seven total" 7 (Msts.Engine.events_processed e)

(* ---------- resource ---------- *)

let resource_fifo () =
  let e = Msts.Engine.create () in
  let r = Msts.Resource.create e ~name:"port" in
  let starts = ref [] in
  List.iter
    (fun tag ->
      Msts.Resource.request r ~duration:3 ~tag ~on_start:(fun t ->
          starts := (tag, t) :: !starts))
    [ 1; 2; 3 ];
  Msts.Engine.run e;
  Alcotest.(check (list (pair int int))) "sequential grants"
    [ (1, 0); (2, 3); (3, 6) ]
    (List.rev !starts);
  Alcotest.(check int) "served" 3 (Msts.Resource.served r);
  Alcotest.(check int) "idle at" 9 (Msts.Resource.idle_until r);
  Alcotest.(check bool) "log disjoint" true
    (Msts.Intervals.are_disjoint (Msts.Resource.busy_log r))

let resource_respects_now () =
  let e = Msts.Engine.create () in
  let r = Msts.Resource.create e ~name:"r" in
  let granted = ref (-1) in
  Msts.Engine.schedule_at e 10 (fun () ->
      Msts.Resource.request r ~duration:2 ~tag:1 ~on_start:(fun t -> granted := t));
  Msts.Engine.run e;
  Alcotest.(check int) "not before request time" 10 !granted

let resource_rejects_negative () =
  let e = Msts.Engine.create () in
  let r = Msts.Resource.create e ~name:"r" in
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Resource.request: negative duration") (fun () ->
      Msts.Resource.request r ~duration:(-1) ~tag:0 ~on_start:(fun _ -> ()))

(* ---------- netsim vs analytic ASAP ---------- *)

let netsim_equals_asap_chain =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:250
       ~name:"event-driven execution equals analytic ASAP (chains)"
       (QCheck.make
          ~print:(fun (chain, seq) ->
            Printf.sprintf "%s, seq=[%s]" (Msts.Chain.to_string chain)
              (String.concat ";" (List.map string_of_int (Array.to_list seq))))
          QCheck.Gen.(
            chain_gen ~max_p:5 () >>= fun chain ->
            map
              (fun dests -> (chain, Array.of_list dests))
              (list_size (int_range 0 15)
                 (int_range 1 (Msts.Chain.length chain)))))
       (fun (chain, seq) ->
         Msts.Schedule.equal
           (Msts.Netsim.run_sequence_chain chain seq)
           (Msts.Asap.chain_of_sequence chain seq)))

let netsim_equals_asap_spider =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"event-driven execution equals analytic ASAP (spiders)"
       (QCheck.make
          ~print:(fun (spider, _) -> Msts.Spider.to_string spider)
          QCheck.Gen.(
            spider_gen ~max_legs:3 ~max_depth:3 () >>= fun spider ->
            let addresses = Array.of_list (Msts.Spider.addresses spider) in
            map
              (fun picks ->
                (spider, Array.of_list (List.map (Array.get addresses) picks)))
              (list_size (int_range 0 12)
                 (int_range 0 (Array.length addresses - 1)))))
       (fun (spider, seq) ->
         let a = Msts.Netsim.run_sequence_spider spider seq in
         let b = Msts.Asap.spider_of_sequence spider seq in
         Msts.Serial.spider_schedule_to_string a
         = Msts.Serial.spider_schedule_to_string b))

(* ---------- plan execution ---------- *)

let execute_plan_dominates =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"executing an optimal plan never finishes anything late"
       (chain_with_n_arb ~max_p:4 ~max_n:12 ())
       (fun (chain, n) ->
         let plan = Msts.Chain_algorithm.schedule chain n in
         let report = Msts.Netsim.execute (Msts.Plan.Chain plan) in
         report.Msts.Netsim.realized_makespan <= report.Msts.Netsim.planned_makespan
         && Array.for_all (fun s -> s >= 0) report.Msts.Netsim.per_task_slack))

let execute_spider_plan_dominates =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:80
       ~name:"executing an optimal spider plan never finishes anything late"
       (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:8 ())
       (fun (spider, n) ->
         let plan = Msts.Spider_algorithm.schedule_tasks spider n in
         let report = Msts.Netsim.execute (Msts.Plan.Spider plan) in
         report.Msts.Netsim.realized_makespan <= report.Msts.Netsim.planned_makespan))

let execute_plan_realized_feasible =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"realised execution is itself feasible"
       (chain_with_n_arb ~max_p:4 ~max_n:10 ())
       (fun (chain, n) ->
         let plan = Msts.Chain_algorithm.schedule chain n in
         let report = Msts.Netsim.execute (Msts.Plan.Chain plan) in
         check_spider_feasible report.Msts.Netsim.realized))

let execute_plan_rejects_infeasible () =
  let bogus =
    Msts.Spider_schedule.of_chain_schedule
      (Msts.Schedule.make figure2_chain
         [| { Msts.Schedule.proc = 1; start = 1; comms = [| 0 |] } |])
  in
  Alcotest.(check bool) "raises" true
    (match Msts.Netsim.execute (Msts.Plan.Spider bogus) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- pull policy ---------- *)

let pull_feasible_and_complete =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"pull policy is feasible and serves all tasks"
       (QCheck.make
          ~print:(fun ((spider, n), b) ->
            Printf.sprintf "%s, n=%d, b=%d" (Msts.Spider.to_string spider) n b)
          QCheck.Gen.(
            pair
              (pair (spider_gen ~max_legs:3 ~max_depth:3 ()) (int_range 0 20))
              (int_range 1 3)))
       (fun ((spider, n), buffer) ->
         let s = Msts.Netsim.pull_policy ~buffer spider ~tasks:n in
         Msts.Spider_schedule.task_count s = n && check_spider_feasible s))

let pull_never_beats_optimal =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"pull policy never beats the optimal makespan"
       (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:10 ())
       (fun (spider, n) ->
         QCheck.assume (n > 0);
         Msts.Spider_schedule.makespan (Msts.Netsim.pull_policy spider ~tasks:n)
         >= Msts.Spider_algorithm.min_makespan spider n))

let pull_rejects_bad_args () =
  let spider = Msts.Spider.of_chain figure2_chain in
  Alcotest.check_raises "buffer 0"
    (Invalid_argument "Msts.Netsim.pull_policy: buffer must be >= 1") (fun () ->
      ignore (Msts.Netsim.pull_policy ~buffer:0 spider ~tasks:1))

let suites =
  [
    ( "sim.engine",
      [
        case "time ordering" engine_orders_events;
        case "FIFO within a timestamp" engine_fifo_within_time;
        case "cascading events" engine_cascading;
        case "past scheduling rejected" engine_rejects_past;
        engine_stress;
        case "step" engine_step;
        case "negative delay rejected" engine_rejects_negative_delay;
        case "events_processed counts cascades" engine_counts_cascades;
      ] );
    ( "sim.resource",
      [
        case "FIFO grants" resource_fifo;
        case "grants respect current time" resource_respects_now;
        case "negative duration rejected" resource_rejects_negative;
      ] );
    ( "sim.netsim",
      [
        netsim_equals_asap_chain;
        netsim_equals_asap_spider;
        execute_plan_dominates;
        execute_spider_plan_dominates;
        execute_plan_realized_feasible;
        case "infeasible plans rejected" execute_plan_rejects_infeasible;
      ] );
    ( "sim.pull",
      [
        pull_feasible_and_complete;
        pull_never_beats_optimal;
        case "bad arguments rejected" pull_rejects_bad_args;
      ] );
  ]
