(* Tests for the schedule metrics: waiting, buffering, utilisation. *)

open Helpers

let fig2 () = Msts.Chain_algorithm.schedule figure2_chain 5

let timings_fig2 () =
  let timings = Msts.Metrics.task_timings (fig2 ()) in
  Alcotest.(check int) "five tasks" 5 (List.length timings);
  (* task 2 (the dashed curve): arrives at 4, starts at 5 *)
  let t2 = List.nth timings 1 in
  Alcotest.(check int) "arrival" 4 t2.Msts.Metrics.arrival;
  Alcotest.(check int) "waiting" 1 t2.Msts.Metrics.waiting;
  Alcotest.(check int) "completion" 8 t2.Msts.Metrics.completion;
  (* task 1 computes immediately on arrival *)
  let t1 = List.nth timings 0 in
  Alcotest.(check int) "no wait" 0 t1.Msts.Metrics.waiting

let waiting_totals () =
  let s = fig2 () in
  Alcotest.(check int) "total" 1 (Msts.Metrics.total_waiting s);
  Alcotest.(check int) "max" 1 (Msts.Metrics.max_waiting s)

let waiting_nonnegative_when_feasible =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"waiting times are never negative"
       (chain_with_n_arb ~max_p:5 ~max_n:15 ())
       (fun (chain, n) ->
         List.for_all
           (fun t -> t.Msts.Metrics.waiting >= 0)
           (Msts.Metrics.task_timings (Msts.Chain_algorithm.schedule chain n))))

let buffer_high_water_fig2 () =
  let s = fig2 () in
  (* only task 2 waits, for a single time unit *)
  Alcotest.(check int) "P1 buffers at most one" 1
    (Msts.Metrics.buffer_high_water s 1);
  Alcotest.(check int) "P2 no buffering" 0 (Msts.Metrics.buffer_high_water s 2)

let buffer_bounded_by_load =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"buffered tasks never exceed the tasks placed"
       (chain_with_n_arb ~max_p:4 ~max_n:12 ())
       (fun (chain, n) ->
         let s = Msts.Chain_algorithm.schedule chain n in
         List.for_all
           (fun k ->
             Msts.Metrics.buffer_high_water s k
             <= List.length (Msts.Schedule.tasks_on s k))
           (Msts.Intx.range 1 (Msts.Chain.length chain))))

let utilisation_bounds =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"utilisations are within [0,1]"
       (chain_with_n_arb ~max_p:4 ~max_n:12 ())
       (fun (chain, n) ->
         QCheck.assume (n > 0);
         let s = Msts.Chain_algorithm.schedule chain n in
         List.for_all
           (fun k ->
             let lu = Msts.Metrics.link_utilisation s k in
             let pu = Msts.Metrics.proc_utilisation s k in
             lu >= 0.0 && lu <= 1.0 +. 1e-9 && pu >= 0.0 && pu <= 1.0 +. 1e-9)
           (Msts.Intx.range 1 (Msts.Chain.length chain))))

let first_link_saturated_for_large_n () =
  (* comm-bound chain: the master's port should be the bottleneck *)
  let chain = Msts.Chain.of_pairs [ (4, 2); (4, 2) ] in
  let s = Msts.Chain_algorithm.schedule chain 100 in
  Alcotest.(check bool) "link 1 above 95% busy" true
    (Msts.Metrics.link_utilisation s 1 > 0.95)

let summary_mentions_everything () =
  let text = Msts.Metrics.summary (fig2 ()) in
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~sub:needle text))
    [ "makespan: 14"; "total waiting: 1"; "P1"; "P2"; "max buffered" ]

let spider_master_utilisation () =
  let spider = Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 4) ] ] in
  let s = Msts.Spider_algorithm.schedule_tasks spider 10 in
  let u = Msts.Metrics.spider_master_utilisation s in
  Alcotest.(check bool) "within bounds" true (u > 0.0 && u <= 1.0 +. 1e-9)

let suites =
  [
    ( "schedule.metrics",
      [
        case "figure-2 task timings" timings_fig2;
        case "figure-2 waiting totals" waiting_totals;
        waiting_nonnegative_when_feasible;
        case "figure-2 buffer high-water" buffer_high_water_fig2;
        buffer_bounded_by_load;
        utilisation_bounds;
        case "saturated first link" first_link_saturated_for_large_n;
        case "summary rendering" summary_mentions_everything;
        case "spider master utilisation" spider_master_utilisation;
      ] );
  ]
