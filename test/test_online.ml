(* The online anytime scheduler: differential byte-identity to batch
   solves over random arrival orders, freezing semantics, the admission
   mechanism (extension re-opens the session), replans under degradation,
   the zero-allocation arrival hot path, and the trace-audited driver
   campaign where arrivals, faults and replans interleave. *)

open Helpers
module Online = Msts_online.Online
module Driver = Msts_online.Driver
module Service = Msts_online.Service
module Incremental = Msts.Chain_incremental
module Api = Msts.Api
module Json = Msts.Json

let plan_feasible plan =
  match Msts.Plan.check ~require_nonnegative:true plan with
  | [] -> true
  | problems ->
      QCheck.Test.fail_reportf "infeasible plan: %s" (String.concat "; " problems)

(* ---------- differential: online = batch, both kernels ---------- *)

(* Tasks are identical, so an "arrival order" is the sequence of batch
   sizes the session sees.  500+ random orders across the two kernels. *)
let arrivals_gen =
  QCheck.Gen.(
    triple
      (chain_gen ~max_p:4 ())
      (int_range 0 80)
      (list_size (int_range 1 12) (int_range 0 6)))

let arrivals_print (chain, deadline, batches) =
  Printf.sprintf "%s, d=%d, batches=[%s]"
    (Msts.Chain.to_string chain)
    deadline
    (String.concat ";" (List.map string_of_int batches))

let online_matches_batch kernel =
  to_alcotest
    (QCheck.Test.make ~count:300
       ~name:
         (Printf.sprintf "online arrivals = batch solve (%s kernel)"
            (Msts.Solve.kernel_to_string kernel))
       (QCheck.make ~print:arrivals_print arrivals_gen)
       (fun (chain, deadline, batches) ->
         let o = Online.create ~kernel chain ~deadline in
         List.iter (fun b -> ignore (Online.submit o b)) batches;
         let total = List.fold_left ( + ) 0 batches in
         let batch =
           Msts.Chain_deadline.schedule ~kernel ~max_tasks:total chain ~deadline
         in
         Msts.Plan.equal (Online.plan o) (Msts.Plan.Chain batch)
         && Online.arrivals o = total
         && Online.placed o + Online.rejected o = total))

(* With nothing frozen, a deadline extension is an exact uniform shift:
   interleaving submits and extends still lands byte-identical to one
   batch solve at the final deadline. *)
let script_gen =
  QCheck.Gen.(
    triple
      (chain_gen ~max_p:4 ())
      (int_range 0 40)
      (list_size (int_range 1 10)
         (oneof
            [
              map (fun n -> `Submit n) (int_range 0 5);
              map (fun d -> `Extend d) (int_range 0 20);
            ])))

let script_print (chain, d0, script) =
  Printf.sprintf "%s, d0=%d, script=[%s]"
    (Msts.Chain.to_string chain)
    d0
    (String.concat ";"
       (List.map
          (function
            | `Submit n -> Printf.sprintf "submit %d" n
            | `Extend d -> Printf.sprintf "extend +%d" d)
          script))

let extends_match_batch kernel =
  to_alcotest
    (QCheck.Test.make ~count:150
       ~name:
         (Printf.sprintf
            "interleaved extends stay batch-identical (%s kernel)"
            (Msts.Solve.kernel_to_string kernel))
       (QCheck.make ~print:script_print script_gen)
       (fun (chain, d0, script) ->
         let o = Online.create ~kernel chain ~deadline:d0 in
         let d = ref d0 in
         List.iter
           (function
             | `Submit n -> ignore (Online.submit o n)
             | `Extend inc -> (
                 d := !d + inc;
                 match Online.extend o ~deadline:!d with
                 | Ok _ -> ()
                 | Error msg ->
                     QCheck.Test.fail_reportf
                       "extend refused with nothing frozen: %s" msg))
           script;
         let batch =
           Msts.Chain_deadline.schedule ~kernel ~max_tasks:(Online.placed o)
             chain ~deadline:!d
         in
         Msts.Plan.equal (Online.plan o) (Msts.Plan.Chain batch)))

(* ---------- freezing ---------- *)

let emission (e : Msts.Schedule.entry) = e.Msts.Schedule.comms.(0)

let frozen_entries o =
  Array.init (Online.frozen o) (fun i -> Online.frozen_entry o i)

let freeze_gen =
  QCheck.Gen.(
    triple
      (chain_gen ~min_p:1 ~max_p:4 ())
      (pair (int_range 1 80) (int_range 0 80))
      (pair (int_range 0 10) (int_range 0 10)))

let freeze_print (chain, (deadline, time), (n1, n2)) =
  Printf.sprintf "%s, d=%d, t=%d, n1=%d, n2=%d"
    (Msts.Chain.to_string chain)
    deadline time n1 n2

let freezing_partitions_the_plan =
  to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"frozen placements sit strictly behind the frontier, immutably"
       (QCheck.make ~print:freeze_print freeze_gen)
       (fun (chain, (deadline, time), (n1, n2)) ->
         let o = Online.create chain ~deadline in
         ignore (Online.submit o n1);
         let newly = Online.advance o ~time in
         let before = frozen_entries o in
         Array.iter
           (fun (_, e) ->
             if emission e >= Online.frontier o then
               QCheck.Test.fail_reportf "frozen emission %d >= frontier %d"
                 (emission e) (Online.frontier o))
           before;
         (* later placements never re-enter the frozen region *)
         ignore (Online.submit o n2);
         ignore (Online.advance o ~time:(time / 2)) (* monotone: no-op *);
         newly = Array.length before
         && Online.frontier o = time
         && frozen_entries o = before
         && plan_feasible (Online.plan o)
         && plan_feasible (Msts.Plan.Chain (Online.frozen_schedule o))))

(* Once anything is frozen the region between frontier and deadline is
   spoken for: new arrivals are rejected until the deadline is extended —
   extension is the admission mechanism. *)
let admission_reopens_after_extend () =
  let o = Online.create figure2_chain ~deadline:14 in
  Alcotest.(check int) "five fit in 14" 5 (Online.submit o 5);
  ignore (Online.advance o ~time:1);
  Alcotest.(check bool) "something froze" true (Online.frozen o > 0);
  Alcotest.(check int) "frozen region admits nothing" 0 (Online.submit o 3);
  Alcotest.(check int) "three rejections" 3 (Online.rejected o);
  let before = frozen_entries o in
  (match Online.extend o ~deadline:60 with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "big extension refused: %s" msg);
  Alcotest.(check bool) "extension re-opens admission" true
    (Online.submit o 3 > 0);
  Alcotest.(check bool) "frozen prefix untouched" true
    (before = frozen_entries o);
  Alcotest.(check bool) "combined plan stays feasible" true
    (Msts.Plan.check ~require_nonnegative:true (Online.plan o) = [])

let shrinking_deadline_refused () =
  let o = Online.create figure2_chain ~deadline:20 in
  match Online.extend o ~deadline:19 with
  | Ok _ -> Alcotest.fail "shrink accepted"
  | Error msg ->
      Alcotest.(check bool) "message carries the prefix" true
        (String.length msg >= 12 && String.sub msg 0 12 = "Msts.Online.")

(* A refused too-small extension names the minimal acceptable deadline,
   and extending to exactly that deadline succeeds.  Figure 2 at deadline
   14 places five tasks with emissions 9,6,4,2,0; the frontier at 5
   freezes three of them (the processor-2 task runs to 14, so the barrier
   is 14) and leaves the two latest processor-1 tasks revisable — an
   8-wide block that needs the deadline at 14 + 8 = 22. *)
let refusal_names_minimal_deadline () =
  let o = Online.create figure2_chain ~deadline:14 in
  Alcotest.(check int) "five placed" 5 (Online.submit o 5);
  Alcotest.(check int) "three freeze at time 5" 3 (Online.advance o ~time:5);
  let before = frozen_entries o in
  let minimal =
    match Online.extend o ~deadline:15 with
    | Ok _ -> Alcotest.fail "one tick cannot clear the frozen prefix"
    | Error msg -> (
        (* "... extend to at least %d" *)
        match String.rindex_opt msg ' ' with
        | Some i ->
            int_of_string (String.sub msg (i + 1) (String.length msg - i - 1))
        | None -> Alcotest.failf "unparseable refusal: %s" msg)
  in
  Alcotest.(check int) "minimal deadline is 22" 22 minimal;
  (match Online.extend o ~deadline:(minimal - 1) with
  | Ok _ -> Alcotest.fail "the bound is not tight"
  | Error _ -> ());
  match Online.extend o ~deadline:minimal with
  | Error msg -> Alcotest.failf "minimal deadline still refused: %s" msg
  | Ok displaced ->
      Alcotest.(check int) "both unfrozen tasks moved" 2 displaced;
      Alcotest.(check bool) "frozen prefix untouched" true
        (before = frozen_entries o);
      Alcotest.(check bool) "plan feasible at the minimal deadline" true
        (Msts.Plan.check ~require_nonnegative:true (Online.plan o) = [])

(* ---------- degradation (fault rendezvous) ---------- *)

let degrade_gen =
  QCheck.Gen.(
    triple
      (chain_gen ~min_p:2 ~max_p:4 ())
      (pair (int_range 10 80) (int_range 0 20))
      (pair (int_range 0 8) (int_range 2 4)))

let degrade_print (chain, (deadline, time), (n, wf)) =
  Printf.sprintf "%s, d=%d, t=%d, n=%d, wf=%d"
    (Msts.Chain.to_string chain)
    deadline time n wf

let degrade_replaces_only_unfrozen =
  to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"degradation re-places the unfrozen suffix on the slower chain"
       (QCheck.make ~print:degrade_print degrade_gen)
       (fun (chain, (deadline, time), (n, wf)) ->
         let o = Online.create chain ~deadline in
         ignore (Online.submit o n);
         ignore (Online.advance o ~time);
         let before = frozen_entries o in
         let unfrozen = Online.placed o - Online.frozen o in
         (* pick a processor with no frozen placements, if any *)
         let p = Msts.Chain.length chain in
         let holds at =
           Array.exists (fun (_, e) -> e.Msts.Schedule.proc = at) before
         in
         let free_proc =
           List.find_opt (fun at -> not (holds at)) (List.init p (fun i -> i + 1))
         in
         match free_proc with
         | None -> true (* every processor executed something: nothing to test *)
         | Some at -> (
             match Online.degrade o ~at ~work_factor:wf with
             | Error msg -> QCheck.Test.fail_reportf "degrade refused: %s" msg
             | Ok { Online.replaced; extended_by; deadline = d' } ->
                 replaced = unfrozen
                 && extended_by >= 0
                 && d' = Online.deadline o
                 && frozen_entries o = before
                 && Msts.Chain.work (Online.chain o) at
                    = wf * Msts.Chain.work chain at
                 && plan_feasible (Online.plan o))))

let degrade_refusals () =
  let o = Online.create figure2_chain ~deadline:14 in
  ignore (Online.submit o 5);
  ignore (Online.advance o ~time:14);
  let committed =
    let _, e = Online.frozen_entry o 0 in
    e.Msts.Schedule.proc
  in
  (match Online.degrade o ~at:committed ~work_factor:2 with
  | Ok _ -> Alcotest.fail "degraded a processor with frozen placements"
  | Error msg ->
      Alcotest.(check bool) "refusal names the commitment" true
        (String.length msg >= 12 && String.sub msg 0 12 = "Msts.Online."));
  (match Online.degrade o ~at:0 ~work_factor:2 with
  | Ok _ -> Alcotest.fail "accepted processor 0"
  | Error _ -> ());
  match Online.degrade o ~at:1 ~work_factor:0 with
  | Ok _ -> Alcotest.fail "accepted work_factor 0"
  | Error _ -> ()

(* ---------- the zero-allocation arrival hot path ---------- *)

(* Gc.minor_words boxes its float result, so two back-to-back reads
   calibrate the cost of the measurement itself. *)
let calibrate () =
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  b -. a

let incremental_arrivals_allocation_free () =
  let chain = Msts.Chain.of_pairs [ (1, 3); (2, 2); (1, 4) ] in
  let n = 256 in
  let t =
    Incremental.create ~kernel:Msts.Solve.Fast ~capacity:n chain
      ~horizon:1_000_000
  in
  ignore (Incremental.add_task t) (* warm-up *);
  let baseline = calibrate () in
  let before = Gc.minor_words () in
  for _ = 2 to n do
    ignore (Incremental.add_task t)
  done;
  let after = Gc.minor_words () in
  let extra = after -. before -. baseline in
  Alcotest.(check bool)
    (Printf.sprintf "%d arrivals allocated %.0f minor words" (n - 1) extra)
    true (extra <= 0.5);
  Alcotest.(check int) "and all landed" n (Incremental.placed t)

let online_submit_allocation_free () =
  let chain = Msts.Chain.of_pairs [ (1, 3); (2, 2); (1, 4) ] in
  let n = 256 in
  let o = Online.create ~kernel:Msts.Solve.Fast ~capacity:n chain
      ~deadline:1_000_000 in
  ignore (Online.submit o 8) (* warm-up *);
  let baseline = calibrate () in
  let before = Gc.minor_words () in
  ignore (Online.submit o (n - 8));
  let after = Gc.minor_words () in
  let extra = after -. before -. baseline in
  (* one boxed ref per submit call is amortized over the whole batch;
     nothing may scale with the arrival count *)
  Alcotest.(check bool)
    (Printf.sprintf "%d arrivals allocated %.0f minor words" (n - 8) extra)
    true (extra <= 16.0);
  Alcotest.(check int) "and all landed" n (Online.placed o)

let fill_edges_never_raise () =
  let t = Incremental.create figure2_chain ~horizon:50 in
  Alcotest.(check int) "max_tasks:0 is a no-op" 0
    (Incremental.fill t ~max_tasks:0 ());
  let zero = Incremental.create figure2_chain ~horizon:0 in
  Alcotest.(check int) "horizon 0 fits nothing" 0 (Incremental.fill zero ());
  Alcotest.check_raises "zero-processor chains cannot exist"
    (Invalid_argument "Msts.Chain.make: empty chain") (fun () ->
      ignore (Msts.Chain.of_pairs []))

let error_prefixes () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Msts.Chain.Incremental.create: negative capacity")
    (fun () -> ignore (Incremental.create ~capacity:(-1) figure2_chain ~horizon:4));
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Msts.Online.create: negative deadline") (fun () ->
      ignore (Online.create figure2_chain ~deadline:(-1)));
  Alcotest.check_raises "negative arrival count"
    (Invalid_argument "Msts.Online.submit: negative arrival count") (fun () ->
      ignore (Online.submit (Online.create figure2_chain ~deadline:5) (-1)));
  Alcotest.check_raises "frozen_entry outside the prefix"
    (Invalid_argument "Msts.Online.frozen_entry: outside the frozen prefix")
    (fun () -> ignore (Online.frozen_entry (Online.create figure2_chain ~deadline:5) 0))

(* ---------- deltas ---------- *)

let deltas_narrate_the_session () =
  let deltas = ref [] in
  let emit d = deltas := d :: !deltas in
  let o = Online.create figure2_chain ~deadline:14 in
  ignore (Online.submit ~emit o 6);
  let placed, rejected =
    List.fold_left
      (fun (p, r) -> function
        | Online.Placed _ -> (p + 1, r)
        | Online.Rejected _ -> (p, r + 1)
        | _ -> (p, r))
      (0, 0) !deltas
  in
  Alcotest.(check int) "five Placed deltas" 5 placed;
  Alcotest.(check int) "one Rejected delta" 1 rejected;
  deltas := [];
  ignore (Online.advance ~emit o ~time:14);
  (match !deltas with
  | [ Online.Frozen { frontier = 14; tasks = 5 } ] -> ()
  | _ -> Alcotest.fail "one Frozen delta summarising all five");
  deltas := [];
  (match Online.extend ~emit o ~deadline:100 with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "displaced %d frozen tasks" n
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "no Displaced deltas for an empty suffix" 0
    (List.length !deltas)

(* ---------- driver + trace fuzz campaign ---------- *)

let driver_script_gen =
  QCheck.Gen.(
    triple
      (chain_gen ~min_p:1 ~max_p:4 ())
      (int_range 5 60)
      (list_size (int_range 1 10)
         (pair (int_range 0 60)
            (frequency
               [
                 (5, map (fun n -> `Submit n) (int_range 0 5));
                 (2, map (fun d -> `Extend d) (int_range 0 120));
                 ( 2,
                   map2
                     (fun at wf -> `Degrade (at, wf))
                     (int_range 1 4) (int_range 1 3) );
               ]))))

let driver_script_print (chain, deadline, events) =
  Printf.sprintf "%s, d=%d, events=[%s]"
    (Msts.Chain.to_string chain)
    deadline
    (String.concat ";"
       (List.map
          (fun (at, a) ->
            match a with
            | `Submit n -> Printf.sprintf "%d:submit %d" at n
            | `Extend d -> Printf.sprintf "%d:extend %d" at d
            | `Degrade (p, wf) -> Printf.sprintf "%d:degrade %d x%d" at p wf)
          events))

let to_driver_events chain events =
  let p = Msts.Chain.length chain in
  List.map
    (fun (at, a) ->
      {
        Driver.at;
        action =
          (match a with
          | `Submit n -> Driver.Submit n
          | `Extend d -> Driver.Extend d
          | `Degrade (proc, wf) ->
              Driver.Degrade
                { at = 1 + ((proc - 1) mod p); work_factor = wf });
      })
    events

let driver_executions_satisfy_definition1 =
  to_alcotest
    (QCheck.Test.make ~count:150
       ~name:
         "interleaved arrivals/extends/degrades: frozen-prefix executions \
          satisfy Definition 1"
       (QCheck.make ~print:driver_script_print driver_script_gen)
       (fun (chain, deadline, events) ->
         let r = Msts.Trace.Recorder.create () in
         let outcome =
           Msts.Trace.with_recorder r (fun () ->
               Driver.run chain ~deadline (to_driver_events chain events))
         in
         let trace = Msts.Trace.recorded r in
         (match Msts.Trace.check ~require_nonnegative:true trace with
         | [] -> ()
         | vs ->
             QCheck.Test.fail_reportf "executed prefix violates Definition 1:\n%s"
               (Msts.Trace.report trace vs));
         List.iter
           (fun (_, msg) ->
             if not (String.length msg >= 12 && String.sub msg 0 12 = "Msts.Online.")
             then QCheck.Test.fail_reportf "unprefixed refusal: %s" msg)
           outcome.Driver.refusals;
         outcome.Driver.frozen = outcome.Driver.placed
         && plan_feasible outcome.Driver.plan
         && Msts.Plan.equal outcome.Driver.plan outcome.Driver.frozen_plan))

(* Negative control: corrupt a clean driver trace and the checker must
   not only flag it but localize it — re-checking the localized segment
   reproduces the violation. *)
let corrupted_trace_localized () =
  let r = Msts.Trace.Recorder.create () in
  ignore
    (Msts.Trace.with_recorder r (fun () ->
         Driver.run figure2_chain ~deadline:40
           [ { Driver.at = 0; action = Driver.Submit 4 } ]));
  let trace = Msts.Trace.recorded r in
  Alcotest.(check int) "clean before corruption" 0
    (List.length (Msts.Trace.check trace));
  let events = Msts.Trace.events trace in
  let clash =
    (* overlap a busy cpu: shift one compute pair onto a second task *)
    List.filter_map
      (fun (e : Msts.Trace.event) ->
        match e.Msts.Trace.kind with
        | Msts.Trace.Start (Msts.Trace.Compute _)
        | Msts.Trace.Finish (Msts.Trace.Compute _) ->
            Some
              {
                e with
                Msts.Trace.task = 99;
                time = e.Msts.Trace.time + 1;
                seq = e.Msts.Trace.seq + 1000;
              }
        | _ -> None)
      events
  in
  let bad = Msts.Trace.of_events (events @ clash) in
  match
    List.find_opt
      (fun v -> v.Msts.Trace.invariant = "cpu-exclusive")
      (Msts.Trace.check bad)
  with
  | None -> Alcotest.fail "overlapping computes not flagged"
  | Some v ->
      Alcotest.(check bool) "localized segment reproduces the violation" true
        (Msts.Trace.check_segment (Msts.Trace.localize bad v) <> [])

(* ---------- the session service (daemon + CLI share it) ---------- *)

let chain_platform = Msts.Platform_format.Chain_platform figure2_chain

let service_lifecycle () =
  let svc = Service.create ~max_sessions:1 () in
  let opened =
    Service.exec svc
      (Api.Online_open { platform = chain_platform; deadline = 40; capacity = 0 })
  in
  (match opened with
  | Ok (Json.Obj kvs) ->
      Alcotest.(check bool) "session 1" true
        (List.assoc_opt "session" kvs = Some (Json.Int 1))
  | _ -> Alcotest.fail "open failed");
  Alcotest.(check int) "one session" 1 (Service.sessions svc);
  (match
     Service.exec svc
       (Api.Online_open { platform = chain_platform; deadline = 9; capacity = 0 })
   with
  | Error { Api.code = Api.Overloaded; _ } -> ()
  | _ -> Alcotest.fail "session limit not enforced");
  (match Service.exec svc (Api.Online_submit { session = 7; tasks = 1 }) with
  | Error { Api.code = Api.Invalid_argument_error; _ } -> ()
  | _ -> Alcotest.fail "unknown session not rejected");
  (match Service.exec svc (Api.Online_submit { session = 1; tasks = 3 }) with
  | Ok (Json.Obj kvs) -> (
      Alcotest.(check bool) "three placed" true
        (List.assoc_opt "placed" kvs = Some (Json.Int 3));
      match List.assoc_opt "deltas" kvs with
      | Some (Json.List deltas) ->
          Alcotest.(check int) "one delta per arrival" 3 (List.length deltas)
      | _ -> Alcotest.fail "deltas missing")
  | _ -> Alcotest.fail "submit failed");
  (match Service.exec svc Api.Ping with
  | Error { Api.code = Api.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "non-online op accepted");
  (match Service.exec svc (Api.Online_close { session = 1 }) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "close failed: %s" e.Api.message);
  Alcotest.(check int) "closed" 0 (Service.sessions svc);
  let svc2 = Service.create () in
  (match
     Service.exec svc2
       (Api.Online_open
          {
            platform =
              Msts.Platform_format.Fork_platform
                (Msts.Fork.of_pairs [ (1, 2) ]);
            deadline = 10;
            capacity = 0;
          })
   with
  | Error { Api.code = Api.Invalid_platform; _ } -> ()
  | _ -> Alcotest.fail "fork platform accepted");
  ignore
    (Service.exec svc2
       (Api.Online_open { platform = chain_platform; deadline = 5; capacity = 0 }));
  Alcotest.(check int) "close_all reports the count" 1 (Service.close_all svc2)

(* The session plan payload is byte-identical to the batch deadline
   solve's JSON — the daemon's online stream ends exactly where the
   one-shot CLI would have landed. *)
let service_plan_equals_deadline_solve () =
  let svc = Service.create () in
  ignore
    (Service.exec svc
       (Api.Online_open { platform = chain_platform; deadline = 14; capacity = 0 }));
  ignore (Service.exec svc (Api.Online_submit { session = 1; tasks = 5 }));
  let online_doc =
    match Service.exec svc (Api.Online_plan { session = 1 }) with
    | Ok (Json.Obj kvs) ->
        (* strip the session-specific prefix fields *)
        Json.Obj
          (List.filter
             (fun (k, _) ->
               not (List.mem k [ "session"; "frontier"; "frozen"; "rejected" ]))
             kvs)
    | _ -> Alcotest.fail "plan failed"
  in
  let batch_doc =
    match
      Api.exec ~solver:Api.direct_solver
        (Api.Deadline
           {
             Msts.Solve.platform = chain_platform;
             tasks = Some 5;
             deadline = Some 14;
           })
    with
    | Ok reply -> Api.json_of_reply reply
    | Error e -> Alcotest.failf "batch solve failed: %s" e.Api.message
  in
  Alcotest.(check string) "same JSON document"
    (Json.to_string batch_doc)
    (Json.to_string online_doc)

(* The serve engine answers online operations synchronously, even while
   draining — the zero-dropped-deltas guarantee. *)
let engine_serves_online_while_draining () =
  let engine =
    Msts_serve.Engine.create
      { Msts_serve.Engine.default_config with jobs = 1; cache_capacity = 4 }
  in
  let ask op =
    let got = ref None in
    Msts_serve.Engine.submit engine
      ~reply:(fun r -> got := Some r)
      { Api.id = None; trace = None; op };
    match !got with
    | Some r -> r.Api.result
    | None -> Alcotest.fail "online op was queued instead of answered"
  in
  (match
     ask (Api.Online_open { platform = chain_platform; deadline = 40; capacity = 0 })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "open failed: %s" e.Api.message);
  Alcotest.(check int) "engine tracks the session" 1
    (Msts_serve.Engine.online_sessions engine);
  Msts_serve.Engine.stop engine;
  (match ask (Api.Online_submit { session = 1; tasks = 2 }) with
  | Ok (Json.Obj kvs) ->
      Alcotest.(check bool) "deltas delivered during drain" true
        (List.assoc_opt "placed" kvs = Some (Json.Int 2))
  | _ -> Alcotest.fail "online op refused during drain");
  (match ask (Api.Schedule (Msts.Solve.problem ~tasks:2 chain_platform)) with
  | Error { Api.code = Api.Shutting_down; _ } -> ()
  | _ -> Alcotest.fail "solve admitted during drain");
  (match Msts_serve.Engine.stats_json engine with
  | Json.Obj kvs ->
      Alcotest.(check bool) "stats expose online_sessions" true
        (List.assoc_opt "online_sessions" kvs = Some (Json.Int 1))
  | _ -> Alcotest.fail "stats not an object");
  Msts_serve.Engine.shutdown engine

let suites =
  [
    ( "online.differential",
      [
        online_matches_batch Msts.Solve.Fast;
        online_matches_batch Msts.Solve.Reference;
        extends_match_batch Msts.Solve.Fast;
        extends_match_batch Msts.Solve.Reference;
      ] );
    ( "online.freezing",
      [
        freezing_partitions_the_plan;
        case "extension re-opens admission" admission_reopens_after_extend;
        case "shrinking refused" shrinking_deadline_refused;
        case "refusal names the minimal deadline" refusal_names_minimal_deadline;
      ] );
    ( "online.degrade",
      [
        degrade_replaces_only_unfrozen;
        case "refusals: committed processor, bad arguments" degrade_refusals;
      ] );
    ( "online.allocation",
      [
        case "incremental arrivals allocation-free after warm-up"
          incremental_arrivals_allocation_free;
        case "online submit allocation-free after warm-up"
          online_submit_allocation_free;
        case "fill edge cases never raise" fill_edges_never_raise;
        case "error messages carry the Msts. prefix" error_prefixes;
      ] );
    ("online.deltas", [ case "deltas narrate the session" deltas_narrate_the_session ]);
    ( "online.driver",
      [
        driver_executions_satisfy_definition1;
        case "corrupted traces are localized" corrupted_trace_localized;
      ] );
    ( "online.service",
      [
        case "session lifecycle and error codes" service_lifecycle;
        case "plan payload = batch deadline solve" service_plan_equals_deadline_solve;
        case "engine answers online ops while draining"
          engine_serves_online_while_draining;
      ] );
  ]
