(* Tests for the spider pipeline trace. *)

open Helpers

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let fig7_trace () =
  (* the one-leg spider over the Figure-2 chain at T_lim = 14 *)
  let spider = Msts.Spider.of_chain figure2_chain in
  let trace = Msts.Spider_trace.run spider ~deadline:14 in
  Alcotest.(check int) "five tasks on the leg" 5
    (Msts.Schedule.task_count trace.Msts.Spider_trace.leg_schedules.(0));
  Alcotest.(check int) "five virtual nodes" 5
    (List.length trace.Msts.Spider_trace.virtual_nodes);
  Alcotest.(check int) "five accepted" 5
    (List.length trace.Msts.Spider_trace.accepted);
  (* emission order is by decreasing virtual work, back-to-back *)
  let emissions =
    List.map (fun a -> a.Msts.Spider_trace.emission) trace.Msts.Spider_trace.accepted
  in
  Alcotest.(check (list int)) "back-to-back emissions" [ 0; 2; 4; 6; 8 ] emissions;
  let works =
    List.map (fun a -> a.Msts.Spider_trace.virtual_work) trace.Msts.Spider_trace.accepted
  in
  Alcotest.(check (list int)) "decreasing works" [ 12; 10; 8; 6; 3 ] works;
  (* Lemma 3 visible in the trace: re-stamped emissions never later *)
  List.iter
    (fun a ->
      Alcotest.(check bool) "never later" true
        (a.Msts.Spider_trace.emission <= a.Msts.Spider_trace.original_emission))
    trace.Msts.Spider_trace.accepted

let trace_result_matches_algorithm =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"trace result equals the plain algorithm's"
       (QCheck.make
          ~print:(fun (spider, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Spider.to_string spider) d)
          QCheck.Gen.(pair (spider_gen ~max_legs:3 ~max_depth:2 ()) (int_range 0 40)))
       (fun (spider, deadline) ->
         let trace = Msts.Spider_trace.run spider ~deadline in
         Msts.Serial.spider_schedule_to_string trace.Msts.Spider_trace.result
         = Msts.Serial.spider_schedule_to_string
             (Msts.Spider_algorithm.schedule spider ~deadline)))

let trace_renders () =
  let spider =
    Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 4) ] ]
  in
  let text = Msts.Spider_trace.render (Msts.Spider_trace.run spider ~deadline:14) in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~sub:needle text))
    [
      "Step 1";
      "Steps 2-3";
      "Step 4";
      "Step 5";
      "leg 1";
      "leg 2";
      "Lemma 3";
      "T_lim = 14";
    ]

let suites =
  [
    ( "spider.trace",
      [
        case "figure-7 pipeline" fig7_trace;
        trace_result_matches_algorithm;
        case "narrative rendering" trace_renders;
      ] );
  ]
