(* Tests for finite-buffer plan execution. *)

open Helpers

let bounded_feasible_and_complete =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"bounded execution stays feasible and serves every task"
       (QCheck.make
          ~print:(fun ((chain, n), b) ->
            Printf.sprintf "%s, n=%d, b=%d" (Msts.Chain.to_string chain) n b)
          QCheck.Gen.(
            pair (pair (chain_gen ~max_p:4 ()) (int_range 0 12)) (int_range 1 3)))
       (fun ((chain, n), buffer) ->
         let plan =
           Msts.Spider_schedule.of_chain_schedule (Msts.Chain_algorithm.schedule chain n)
         in
         let report = Msts.Netsim.execute_plan_bounded ~buffer plan in
         Msts.Spider_schedule.task_count report.Msts.Netsim.realized = n
         && check_spider_feasible report.Msts.Netsim.realized))

let large_buffer_matches_unbounded =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"a buffer as large as n reproduces the unbounded makespan"
       (chain_with_n_arb ~max_p:4 ~max_n:10 ())
       (fun (chain, n) ->
         QCheck.assume (n > 0);
         let plan =
           Msts.Spider_schedule.of_chain_schedule (Msts.Chain_algorithm.schedule chain n)
         in
         let bounded = Msts.Netsim.execute_plan_bounded ~buffer:n plan in
         (* with n slots nothing can stall, so the eager replay meets the
            plan (it may even beat it by compressing idle port time) *)
         bounded.Msts.Netsim.realized_makespan
         <= Msts.Spider_schedule.makespan plan))

(* Strict per-instance monotonicity in the buffer size is NOT a theorem —
   credit-induced reordering can produce Graham-style anomalies — so two
   sound checks replace it: every bounded execution is a feasible schedule
   and therefore at least the true optimum; and ON AVERAGE more buffer
   space helps (checked over a fixed instance set). *)
let bounded_at_least_optimal =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"bounded execution never beats the true optimum"
       (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:8 ())
       (fun (spider, n) ->
         QCheck.assume (n > 0);
         let plan = Msts.Spider_algorithm.schedule_tasks spider n in
         let optimum = Msts.Spider_schedule.makespan plan in
         List.for_all
           (fun b ->
             (Msts.Netsim.execute_plan_bounded ~buffer:b plan).Msts.Netsim
               .realized_makespan
             >= optimum)
           [ 1; 2; 4 ]))

let buffers_help_on_average () =
  let rng = Msts.Prng.create 8642 in
  let trials = 40 in
  let total = Array.make 3 0 in
  for _ = 1 to trials do
    let spider =
      Msts.Generator.spider rng Msts.Generator.default_profile ~legs:3 ~max_depth:3
    in
    let plan = Msts.Spider_algorithm.schedule_tasks spider 20 in
    List.iteri
      (fun idx b ->
        total.(idx) <-
          total.(idx)
          + (Msts.Netsim.execute_plan_bounded ~buffer:b plan).Msts.Netsim
              .realized_makespan)
      [ 1; 2; 4 ]
  done;
  Alcotest.(check bool)
    (Printf.sprintf "totals %d >= %d >= %d" total.(0) total.(1) total.(2))
    true
    (total.(0) >= total.(1) && total.(1) >= total.(2))

let bounded_at_least_lower_bound =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"bounded execution respects the port lower bound"
       (chain_with_n_arb ~max_p:3 ~max_n:8 ())
       (fun (chain, n) ->
         QCheck.assume (n > 0);
         let plan =
           Msts.Spider_schedule.of_chain_schedule (Msts.Chain_algorithm.schedule chain n)
         in
         let report = Msts.Netsim.execute_plan_bounded ~buffer:1 plan in
         report.Msts.Netsim.realized_makespan >= Msts.Bounds.port_bound chain n))

let stall_example () =
  (* a deep slow chain where single-buffering visibly stalls the pipeline:
     all tasks go to the far processor through a slow relay *)
  let chain = Msts.Chain.of_pairs [ (1, 50); (1, 2) ] in
  let n = 6 in
  let plan =
    Msts.Spider_schedule.of_chain_schedule (Msts.Chain_algorithm.schedule chain n)
  in
  let b1 = (Msts.Netsim.execute_plan_bounded ~buffer:1 plan).Msts.Netsim.realized_makespan in
  let b4 = (Msts.Netsim.execute_plan_bounded ~buffer:4 plan).Msts.Netsim.realized_makespan in
  Alcotest.(check bool)
    (Printf.sprintf "b=4 (%d) is no slower than b=1 (%d)" b4 b1)
    true (b4 <= b1)

let rejects_bad_buffer () =
  let plan =
    Msts.Spider_schedule.of_chain_schedule
      (Msts.Chain_algorithm.schedule figure2_chain 2)
  in
  Alcotest.check_raises "buffer 0"
    (Invalid_argument "Msts.Netsim.execute_plan_bounded: buffer must be >= 1") (fun () ->
      ignore (Msts.Netsim.execute_plan_bounded ~buffer:0 plan))

let suites =
  [
    ( "sim.buffers",
      [
        bounded_feasible_and_complete;
        large_buffer_matches_unbounded;
        bounded_at_least_optimal;
        case "buffers help on average" buffers_help_on_average;
        bounded_at_least_lower_bound;
        case "stalling pipeline example" stall_example;
        case "bad buffer rejected" rejects_bad_buffer;
      ] );
  ]
