(* Mid-run fault injection and online replanning: trace parsing, the
   dynamic platform state, the faulty executor's semantics against
   hand-computed scenarios, and the differential/refinement properties
   tying it back to the fault-free executors. *)

open Helpers

let figure2_spider =
  Msts.Spider.of_legs
    [ figure2_chain; Msts.Chain.of_pairs [ (1, 4); (2, 6); (1, 3) ] ]

let addr leg depth = { Msts.Spider.leg; depth }

(* ---------- trace parsing and validation ---------- *)

let parse_round_trip () =
  let text = "0 crash 2 1\n# comment\n\n5 slow-proc 1 2 3\n5 drop 2 2 4\n2 slow-link 1 1 2\n" in
  match Msts.Fault.parse text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok trace ->
      Alcotest.(check int) "four events" 4 (List.length trace);
      (* normalized: sorted by time, stable *)
      Alcotest.(check (list int)) "times sorted" [ 0; 2; 5; 5 ]
        (List.map (fun t -> t.Msts.Fault.at) trace);
      (match Msts.Fault.parse (Msts.Fault.to_string trace) with
      | Ok again -> Alcotest.(check bool) "round trip" true (again = trace)
      | Error msg -> Alcotest.failf "re-parse failed: %s" msg)

let parse_rejects_garbage () =
  let bad text =
    match Msts.Fault.parse text with
    | Ok _ -> Alcotest.failf "accepted %S" text
    | Error _ -> ()
  in
  bad "x crash 1 1";
  bad "-3 crash 1 1";
  bad "5 crash 1";
  bad "5 slow-proc 1 2";
  bad "5 meteor 1 1"

let validate_catches_problems () =
  let trace =
    [
      { Msts.Fault.at = 0; event = Msts.Fault.Crash_proc (addr 9 1) };
      {
        Msts.Fault.at = 1;
        event = Msts.Fault.Slow_proc { address = addr 1 2; factor = 0 };
      };
      {
        Msts.Fault.at = 2;
        event = Msts.Fault.Drop_transfer { address = addr 2 9; penalty = -1 };
      };
    ]
  in
  (* the drop is doubly wrong: bad address and negative penalty *)
  Alcotest.(check int) "four problems" 4
    (List.length (Msts.Fault.validate figure2_spider trace));
  Alcotest.(check (list string)) "clean trace" []
    (Msts.Fault.validate figure2_spider
       [ { Msts.Fault.at = 3; event = Msts.Fault.Crash_proc (addr 1 2) } ])

let random_traces_validate =
  to_alcotest
    (QCheck.Test.make ~count:100 ~name:"random traces validate and keep one survivor"
       QCheck.(pair (spider_arb ~max_legs:3 ~max_depth:3 ()) small_nat)
       (fun (spider, seed) ->
         let rng = Msts.Prng.create seed in
         let trace = Msts.Fault.random rng spider ~events:6 ~horizon:40 in
         if Msts.Fault.validate spider trace <> [] then
           QCheck.Test.fail_report "generated trace does not validate";
         (* folding every event in must leave at least one processor *)
         let state = Msts.Fault.init spider in
         List.iter (fun t -> Msts.Fault.apply state t.Msts.Fault.event) trace;
         List.exists
           (fun l -> Msts.Fault.alive_depth state ~leg:l >= 1)
           (List.init (Msts.Spider.legs spider) (fun i -> i + 1))))

(* ---------- dynamic state and residual platforms ---------- *)

let state_bookkeeping () =
  let state = Msts.Fault.init figure2_spider in
  Alcotest.(check int) "initial factor" 1 (Msts.Fault.proc_factor state (addr 2 2));
  Msts.Fault.apply state
    (Msts.Fault.Slow_proc { address = addr 2 2; factor = 3 });
  Msts.Fault.apply state
    (Msts.Fault.Slow_proc { address = addr 2 2; factor = 2 });
  Alcotest.(check int) "slowdowns compound" 6
    (Msts.Fault.proc_factor state (addr 2 2));
  Msts.Fault.apply state (Msts.Fault.Crash_proc (addr 2 3));
  Alcotest.(check int) "leg truncated" 2 (Msts.Fault.alive_depth state ~leg:2);
  Msts.Fault.apply state (Msts.Fault.Crash_proc (addr 2 1));
  Alcotest.(check int) "crashes never resurrect" 0
    (Msts.Fault.alive_depth state ~leg:2);
  Alcotest.(check bool) "dead" false (Msts.Fault.is_alive state (addr 2 1));
  Alcotest.(check bool) "other leg untouched" true
    (Msts.Fault.is_alive state (addr 1 2))

let residual_platform () =
  let state = Msts.Fault.init figure2_spider in
  Msts.Fault.apply state (Msts.Fault.Crash_proc (addr 1 1));
  Msts.Fault.apply state
    (Msts.Fault.Slow_proc { address = addr 2 1; factor = 2 });
  (match Msts.Fault.residual state with
  | None -> Alcotest.fail "leg 2 survives"
  | Some (survivor, leg_map) ->
      Alcotest.(check int) "one leg left" 1 (Msts.Spider.legs survivor);
      Alcotest.(check (array int)) "maps back to leg 2" [| 2 |] leg_map;
      Alcotest.(check int) "slowdown folded into work" 8
        (Msts.Spider.work survivor (addr 1 1));
      Alcotest.(check int) "latency untouched" 1
        (Msts.Spider.latency survivor (addr 1 1)));
  Msts.Fault.apply state (Msts.Fault.Crash_proc (addr 2 1));
  Alcotest.(check bool) "nothing left" true (Msts.Fault.residual state = None)

(* ---------- executor semantics on hand-computed scenarios ---------- *)

(* One task on a single processor (c=1, w=2): emission [0,1), execution
   [1,3).  A slowdown at t=2 doubles the remaining 1 unit: completion 4. *)
let slowdown_stretches_in_flight () =
  let spider = Msts.Spider.of_chain (Msts.Chain.of_pairs [ (1, 2) ]) in
  let plan = Msts.Spider_algorithm.schedule_tasks spider 1 in
  let trace =
    [
      {
        Msts.Fault.at = 2;
        event = Msts.Fault.Slow_proc { address = addr 1 1; factor = 2 };
      };
    ]
  in
  let r = Msts.Netsim.replay_under_faults ~trace plan in
  Alcotest.(check int) "stretched completion" 4 r.Msts.Netsim.observed_makespan;
  (* at t=1 — the execution's grant instant — the factor applies in full *)
  let trace0 =
    [
      {
        Msts.Fault.at = 1;
        event = Msts.Fault.Slow_proc { address = addr 1 1; factor = 2 };
      };
    ]
  in
  let r0 = Msts.Netsim.replay_under_faults ~trace:trace0 plan in
  Alcotest.(check int) "full execution doubled" 5 r0.Msts.Netsim.observed_makespan

(* Chain (2,1),(3,1), one task to depth 2: port [0,2), hop 2 [2,5),
   execution [5,6).  A drop at t=3 aborts the hop; with penalty 1 the task
   re-requests at t=4: hop [4,7), execution [7,8). *)
let drop_retries_after_backoff () =
  let spider = Msts.Spider.of_chain (Msts.Chain.of_pairs [ (2, 1); (3, 1) ]) in
  let plan =
    Msts.Spider_schedule.make spider
      [| { Msts.Spider_schedule.address = addr 1 2; start = 5; comms = [| 0; 2 |] } |]
  in
  let trace =
    [
      {
        Msts.Fault.at = 3;
        event = Msts.Fault.Drop_transfer { address = addr 1 2; penalty = 1 };
      };
    ]
  in
  let r = Msts.Netsim.replay_under_faults ~trace plan in
  Alcotest.(check int) "retried completion" 8 r.Msts.Netsim.observed_makespan;
  Alcotest.(check int) "one abort" 1 r.Msts.Netsim.aborted_ops;
  Alcotest.(check int) "one retry" 1 r.Msts.Netsim.transfer_retries;
  let e = (Msts.Spider_schedule.entries r.Msts.Netsim.observed).(0) in
  Alcotest.(check (array int)) "second hop re-recorded" [| 0; 4 |]
    e.Msts.Spider_schedule.comms;
  (* a drop while nothing is in flight is a no-op *)
  let quiet =
    Msts.Netsim.replay_under_faults
      ~trace:
        [
          {
            Msts.Fault.at = 1;
            event = Msts.Fault.Drop_transfer { address = addr 1 2; penalty = 5 };
          };
        ]
      plan
  in
  Alcotest.(check int) "no-op drop" 6 quiet.Msts.Netsim.observed_makespan;
  Alcotest.(check int) "nothing aborted" 0 quiet.Msts.Netsim.aborted_ops

let crash_returns_and_retargets () =
  let n = 8 in
  let plan = Msts.Spider_algorithm.schedule_tasks figure2_spider n in
  let crash_time = 6 in
  let trace =
    [ { Msts.Fault.at = crash_time; event = Msts.Fault.Crash_proc (addr 2 1) } ]
  in
  let r = Msts.Netsim.replay_under_faults ~trace plan in
  (* everything completes, and nothing completes on the dead leg after the
     crash: results computed before it survive, nothing else *)
  Array.iteri
    (fun idx c ->
      Alcotest.(check bool) "completed" true (c > 0);
      let e = (Msts.Spider_schedule.entries r.Msts.Netsim.observed).(idx) in
      if e.Msts.Spider_schedule.address.Msts.Spider.leg = 2 then
        Alcotest.(check bool) "dead-leg completion predates the crash" true
          (c < crash_time))
    r.Msts.Netsim.completions;
  Alcotest.(check bool) "some tasks were re-issued" true
    (r.Msts.Netsim.returned_tasks > 0)

let killing_everything_raises () =
  let spider = Msts.Spider.of_chain (Msts.Chain.of_pairs [ (1, 3) ]) in
  let plan = Msts.Spider_algorithm.schedule_tasks spider 2 in
  let trace =
    [ { Msts.Fault.at = 2; event = Msts.Fault.Crash_proc (addr 1 1) } ]
  in
  Alcotest.(check bool) "static replay raises" true
    (match Msts.Netsim.replay_under_faults ~trace plan with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "pull raises too" true
    (match Msts.Netsim.pull_under_faults ~trace spider ~tasks:2 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let redirect_validation () =
  let plan = Msts.Spider_algorithm.schedule_tasks figure2_spider 6 in
  let trace =
    [ { Msts.Fault.at = 1; event = Msts.Fault.Crash_proc (addr 2 3) } ]
  in
  let bad_decide lst _ = Msts.Fault.Redirect lst in
  Alcotest.(check bool) "wrong task set rejected" true
    (match
       Msts.Netsim.replay_under_faults ~trace
         ~decide:(bad_decide [ (999, addr 1 1) ])
         plan
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let dead_decide snap =
    match snap.Msts.Fault.at_master with
    | [] -> Msts.Fault.Keep
    | ids -> Msts.Fault.Redirect (List.map (fun (id, _) -> (id, addr 2 3)) ids)
  in
  Alcotest.(check bool) "dead destination rejected" true
    (match Msts.Netsim.replay_under_faults ~trace ~decide:dead_decide plan with
    | _ -> false
    | exception Invalid_argument _ -> true)

let snapshot_partitions_tasks () =
  let n = 6 in
  let plan = Msts.Spider_algorithm.schedule_tasks figure2_spider n in
  let seen = ref [] in
  let decide snap =
    seen := snap :: !seen;
    Msts.Fault.Keep
  in
  let trace =
    [
      {
        Msts.Fault.at = 4;
        event = Msts.Fault.Slow_link { address = addr 1 1; factor = 2 };
      };
      { Msts.Fault.at = 8; event = Msts.Fault.Crash_proc (addr 1 2) };
    ]
  in
  ignore (Msts.Netsim.replay_under_faults ~trace ~decide plan);
  Alcotest.(check int) "hook called once per event" 2 (List.length !seen);
  List.iter
    (fun snap ->
      let ids =
        List.concat
          [
            snap.Msts.Fault.completed;
            List.map fst snap.Msts.Fault.in_flight;
            List.map fst snap.Msts.Fault.at_master;
          ]
      in
      Alcotest.(check (list int)) "partition of 1..n"
        (List.init n (fun i -> i + 1))
        (List.sort compare ids))
    !seen;
  match List.rev !seen with
  | [ first; second ] ->
      Alcotest.(check int) "first snapshot time" 4 first.Msts.Fault.time;
      Alcotest.(check int) "events still to come" 1
        (List.length first.Msts.Fault.remaining);
      Alcotest.(check int) "last sees an empty future" 0
        (List.length second.Msts.Fault.remaining)
  | _ -> Alcotest.fail "expected two snapshots"

(* ---------- refinement and differential properties ---------- *)

let no_fault_refinement =
  to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"empty trace: replay_under_faults = replay_routing, exactly"
       (spider_with_n_arb ~max_legs:3 ~max_depth:3 ~max_n:7 ())
       (fun (spider, n) ->
         let plan = Msts.Spider_algorithm.schedule_tasks spider n in
         let base = Msts.Netsim.replay_routing plan in
         let f = Msts.Netsim.replay_under_faults plan in
         if
           f.Msts.Netsim.observed_makespan
           <> base.Msts.Netsim.realized_makespan
         then
           QCheck.Test.fail_reportf "makespan %d <> %d"
             f.Msts.Netsim.observed_makespan base.Msts.Netsim.realized_makespan;
         Msts.Spider_schedule.entries f.Msts.Netsim.observed
         = Msts.Spider_schedule.entries base.Msts.Netsim.realized))

let pull_no_fault_refinement =
  to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"empty trace: pull_under_faults = pull_policy ~buffer:1, exactly"
       (spider_with_n_arb ~max_legs:3 ~max_depth:3 ~max_n:7 ())
       (fun (spider, n) ->
         let base = Msts.Netsim.pull_policy ~buffer:1 spider ~tasks:n in
         let f = Msts.Netsim.pull_under_faults spider ~tasks:n in
         Msts.Spider_schedule.entries f.Msts.Netsim.observed
         = Msts.Spider_schedule.entries base))

let slow_at_zero_is_degrade =
  to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"slowdowns at t=0 = replay_routing on the degraded platform"
       QCheck.(
         pair (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:6 ()) (pair small_nat small_nat))
       (fun ((spider, n), (pick, seed)) ->
         let addresses = Array.of_list (Msts.Spider.addresses spider) in
         let victim = addresses.(pick mod Array.length addresses) in
         let work_factor = 2 + (seed mod 3) in
         let latency_factor = 1 + (seed mod 2) in
         let plan = Msts.Spider_algorithm.schedule_tasks spider n in
         let trace =
           [
             {
               Msts.Fault.at = 0;
               event = Msts.Fault.Slow_link { address = victim; factor = latency_factor };
             };
             {
               Msts.Fault.at = 0;
               event = Msts.Fault.Slow_proc { address = victim; factor = work_factor };
             };
           ]
         in
         let hurt = Msts.Netsim.degrade ~latency_factor spider ~address:victim ~work_factor in
         let a = Msts.Netsim.replay_under_faults ~trace plan in
         let b = Msts.Netsim.replay_routing ~on:hurt plan in
         a.Msts.Netsim.observed_makespan = b.Msts.Netsim.realized_makespan))

let replan_never_worse =
  to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"replan-on-fault never exceeds blind static replay"
       QCheck.(
         pair (spider_with_n_arb ~max_legs:3 ~max_depth:3 ~max_n:6 ()) small_nat)
       (fun ((spider, n), seed) ->
         let plan = Msts.Spider_algorithm.schedule_tasks spider n in
         let horizon = max 1 (Msts.Spider_schedule.makespan plan) in
         let rng = Msts.Prng.create seed in
         let trace = Msts.Fault.random rng spider ~events:4 ~horizon in
         let blind = Msts.Netsim.replay_under_faults ~trace plan in
         let smart = Msts.Replan.replay ~trace plan in
         let sm = smart.Msts.Replan.report.Msts.Netsim.observed_makespan in
         if sm > blind.Msts.Netsim.observed_makespan then
           QCheck.Test.fail_reportf "replan %d > static %d on trace\n%s" sm
             blind.Msts.Netsim.observed_makespan
             (Msts.Fault.to_string trace);
         (* no task is ever lost, in either executor *)
         Array.for_all (fun c -> c > 0) blind.Msts.Netsim.completions
         && Array.for_all (fun c -> c > 0)
              smart.Msts.Replan.report.Msts.Netsim.completions))

let pull_survives_random_traces =
  to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"pull master completes every task under feasible traces"
       QCheck.(
         pair (spider_with_n_arb ~max_legs:3 ~max_depth:3 ~max_n:6 ()) small_nat)
       (fun ((spider, n), seed) ->
         let rng = Msts.Prng.create seed in
         let trace = Msts.Fault.random rng spider ~events:4 ~horizon:30 in
         let r = Msts.Netsim.pull_under_faults ~trace spider ~tasks:n in
         Array.length r.Msts.Netsim.completions = n
         && Array.for_all (fun c -> c > 0) r.Msts.Netsim.completions))

let final_intent_covers_all_tasks () =
  let n = 8 in
  let plan = Msts.Spider_algorithm.schedule_tasks figure2_spider n in
  let trace =
    [ { Msts.Fault.at = 5; event = Msts.Fault.Crash_proc (addr 2 2) } ]
  in
  let r = Msts.Replan.replay ~trace plan in
  match r.Msts.Replan.final_intent with
  | None -> Alcotest.(check int) "no replan adopted" 0 r.Msts.Replan.replans
  | Some intent ->
      Alcotest.(check int) "splice keeps the task count" n
        (Msts.Spider_schedule.task_count intent);
      Array.iter
        (fun (e : Msts.Spider_schedule.entry) ->
          Alcotest.(check bool) "splice avoids the dead suffix" true
            (not
               (e.address.Msts.Spider.leg = 2 && e.address.Msts.Spider.depth >= 2)
            || e.start + Msts.Spider.work figure2_spider e.address <= 5))
        (Msts.Spider_schedule.entries intent)

let suites =
  [
    ( "faults.trace",
      [
        case "parse round trip" parse_round_trip;
        case "parse rejects garbage" parse_rejects_garbage;
        case "validate catches problems" validate_catches_problems;
        random_traces_validate;
      ] );
    ( "faults.state",
      [
        case "bookkeeping" state_bookkeeping;
        case "residual platform" residual_platform;
      ] );
    ( "faults.executor",
      [
        case "slowdown stretches in-flight work" slowdown_stretches_in_flight;
        case "drop retries after backoff" drop_retries_after_backoff;
        case "crash returns and retargets" crash_returns_and_retargets;
        case "killing everything raises" killing_everything_raises;
        case "redirect validation" redirect_validation;
        case "snapshots partition the tasks" snapshot_partitions_tasks;
      ] );
    ( "faults.properties",
      [
        no_fault_refinement;
        pull_no_fault_refinement;
        slow_at_zero_is_degrade;
        replan_never_worse;
        pull_survives_random_traces;
        case "final intent covers all tasks" final_intent_covers_all_tasks;
      ] );
  ]
