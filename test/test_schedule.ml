(* Tests for Msts_schedule: communication vectors (Definition 3),
   schedules, the feasibility checker (Definition 1), intervals, Gantt,
   SVG and serialisation. *)

open Helpers

module Gen = QCheck.Gen

(* ---------- Comm_vector: Definition 3 ---------- *)

let vec = Array.of_list

let cv_first_coordinate_wins () =
  (* first differing coordinate decides *)
  Alcotest.(check bool) "a < b" true
    (Msts.Comm_vector.precedes (vec [ 1; 9 ]) (vec [ 2; 0 ]));
  Alcotest.(check bool) "b > a" false
    (Msts.Comm_vector.precedes (vec [ 2; 0 ]) (vec [ 1; 9 ]))

let cv_prefix_rule () =
  (* equal common prefix: the LONGER vector is the smaller one *)
  Alcotest.(check bool) "longer < shorter" true
    (Msts.Comm_vector.precedes (vec [ 3; 4; 5 ]) (vec [ 3; 4 ]));
  Alcotest.(check bool) "shorter > longer" false
    (Msts.Comm_vector.precedes (vec [ 3; 4 ]) (vec [ 3; 4; 5 ]));
  Alcotest.(check int) "equal" 0 (Msts.Comm_vector.compare (vec [ 3; 4 ]) (vec [ 3; 4 ]))

let cv_later_coordinate_breaks_ties () =
  Alcotest.(check bool) "second coordinate decides" true
    (Msts.Comm_vector.precedes (vec [ 3; 4 ]) (vec [ 3; 5 ]))

let int_vec_gen = Gen.(list_size (int_range 1 5) (int_range (-10) 10) |> map vec)

let cv_arb =
  QCheck.make ~print:Msts.Comm_vector.to_string int_vec_gen

let cv_total_order_antisym =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"Def.3 compare is antisymmetric"
       (QCheck.pair cv_arb cv_arb)
       (fun (a, b) ->
         Msts.Comm_vector.compare a b = -Msts.Comm_vector.compare b a))

let cv_total_order_transitive =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"Def.3 compare is transitive"
       (QCheck.triple cv_arb cv_arb cv_arb)
       (fun (a, b, c) ->
         let ( <= ) x y = Msts.Comm_vector.compare x y <= 0 in
         not (a <= b && b <= c) || a <= c))

let cv_compare_reflexive =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"Def.3 compare is reflexive" cv_arb
       (fun a -> Msts.Comm_vector.compare a a = 0))

let cv_max_of =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"max_of returns an upper bound from the list"
       (QCheck.list_of_size (Gen.int_range 1 6) cv_arb)
       (fun vs ->
         let m = Msts.Comm_vector.max_of vs in
         List.memq m vs
         && List.for_all (fun v -> not (Msts.Comm_vector.precedes m v)) vs))

(* model-based check of Definition 3: an independent list-shaped
   specification written directly from the paper's two bullet points *)
let spec_compare a b =
  let a = Array.to_list a and b = Array.to_list b in
  let rec common_prefix_equal xs ys =
    match (xs, ys) with
    | x :: xs', y :: ys' -> x = y && common_prefix_equal xs' ys'
    | _ -> true
  in
  let rec first_diff xs ys =
    match (xs, ys) with
    | x :: xs', y :: ys' -> if x = y then first_diff xs' ys' else Some (x, y)
    | _ -> None
  in
  match first_diff a b with
  | Some (x, y) -> compare x y
  | None ->
      assert (common_prefix_equal a b);
      compare (List.length b) (List.length a)

let cv_matches_specification =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:1000 ~name:"Def.3 compare matches its list specification"
       (QCheck.pair cv_arb cv_arb)
       (fun (a, b) ->
         let sign x = compare x 0 in
         sign (Msts.Comm_vector.compare a b) = sign (spec_compare a b)))

let cv_shift () =
  Alcotest.(check bool) "shift" true (Msts.Comm_vector.shift 2 (vec [ 5; 7 ]) = vec [ 3; 5 ]);
  Alcotest.(check int) "first emission" 5 (Msts.Comm_vector.first_emission (vec [ 5; 7 ]));
  Alcotest.(check int) "target" 2 (Msts.Comm_vector.target (vec [ 5; 7 ]))

let cv_is_prefix () =
  Alcotest.(check bool) "prefix" true (Msts.Comm_vector.is_prefix (vec [ 1; 2 ]) (vec [ 1; 2; 3 ]));
  Alcotest.(check bool) "not prefix" false
    (Msts.Comm_vector.is_prefix (vec [ 1; 3 ]) (vec [ 1; 2; 3 ]));
  Alcotest.(check bool) "longer not prefix" false
    (Msts.Comm_vector.is_prefix (vec [ 1; 2; 3 ]) (vec [ 1; 2 ]))

(* ---------- Intervals ---------- *)

let iv start duration tag = { Msts.Intervals.start; duration; tag }

let intervals_disjoint () =
  Alcotest.(check bool) "disjoint" true
    (Msts.Intervals.are_disjoint [ iv 0 2 1; iv 2 2 2; iv 10 1 3 ]);
  Alcotest.(check bool) "overlap" false
    (Msts.Intervals.are_disjoint [ iv 0 3 1; iv 2 2 2 ]);
  Alcotest.(check bool) "zero-length never overlaps" true
    (Msts.Intervals.are_disjoint [ iv 0 0 1; iv 0 5 2; iv 0 0 3 ])

let intervals_witness_nonadjacent () =
  (* a long interval hidden behind a short one must still be caught *)
  match Msts.Intervals.overlap_witness [ iv 0 10 1; iv 1 2 2; iv 5 1 3 ] with
  | Some _ -> ()
  | None -> Alcotest.fail "missed the overlap"

let intervals_utilisation () =
  Alcotest.(check (Alcotest.float 1e-9)) "half busy" 0.5
    (Msts.Intervals.utilisation [ iv 0 2 1; iv 4 3 2 ] ~horizon:10)

(* ---------- Schedule structure ---------- *)

let entry proc start comms = { Msts.Schedule.proc; start; comms = vec comms }

let fig2_schedule () =
  (* The paper's Figure 2 schedule, written out by hand. *)
  Msts.Schedule.make figure2_chain
    [|
      entry 1 2 [ 0 ];
      entry 1 5 [ 2 ];
      entry 2 9 [ 4; 6 ];
      entry 1 8 [ 6 ];
      entry 1 11 [ 9 ];
    |]

let schedule_structure () =
  let s = fig2_schedule () in
  Alcotest.(check int) "tasks" 5 (Msts.Schedule.task_count s);
  Alcotest.(check int) "makespan" 14 (Msts.Schedule.makespan s);
  Alcotest.(check int) "start time" 0 (Msts.Schedule.start_time s);
  Alcotest.(check (list int)) "P1 tasks" [ 1; 2; 4; 5 ] (Msts.Schedule.tasks_on s 1);
  Alcotest.(check (list int)) "P2 tasks" [ 3 ] (Msts.Schedule.tasks_on s 2);
  Alcotest.(check int) "P1 load" 12 (Msts.Schedule.load_of s 1);
  Alcotest.(check (list int)) "emission order" [ 1; 2; 3; 4; 5 ]
    (Msts.Schedule.emission_order s)

let schedule_validation () =
  Alcotest.check_raises "bad proc"
    (Invalid_argument "Schedule.make: task 1 on processor 7 outside 1..2")
    (fun () -> ignore (Msts.Schedule.make figure2_chain [| entry 7 0 [ 0 ] |]));
  Alcotest.check_raises "bad comms"
    (Invalid_argument "Schedule.make: task 1 has 1 communications for processor 2")
    (fun () -> ignore (Msts.Schedule.make figure2_chain [| entry 2 0 [ 0 ] |]))

let schedule_shift_normalise () =
  let s = fig2_schedule () in
  let shifted = Msts.Schedule.shift (-3) s in
  Alcotest.(check int) "shifted start" 3 (Msts.Schedule.start_time shifted);
  Alcotest.(check int) "shifted makespan" 17 (Msts.Schedule.makespan shifted);
  Alcotest.(check bool) "normalise undoes shift" true
    (Msts.Schedule.equal s (Msts.Schedule.normalise shifted));
  Alcotest.(check bool) "equal modulo shift" true
    (Msts.Schedule.equal_modulo_shift s shifted)

let schedule_restrict () =
  let s = fig2_schedule () in
  let sub = Msts.Schedule.restrict_beyond_first s in
  Alcotest.(check int) "one task beyond P1" 1 (Msts.Schedule.task_count sub);
  let e = Msts.Schedule.entry sub 1 in
  Alcotest.(check int) "on sub-chain P1" 1 e.Msts.Schedule.proc;
  Alcotest.(check bool) "comm vector dropped first" true (e.Msts.Schedule.comms = vec [ 6 ])

let schedule_intervals () =
  let s = fig2_schedule () in
  let link1 = Msts.Schedule.link_intervals s 1 in
  Alcotest.(check int) "five transfers on link 1" 5 (List.length link1);
  Alcotest.(check int) "one transfer on link 2" 1
    (List.length (Msts.Schedule.link_intervals s 2));
  Alcotest.(check bool) "link 1 disjoint" true (Msts.Intervals.are_disjoint link1)

(* ---------- Feasibility: each property violated in isolation ---------- *)

let feasible_fig2 () =
  Alcotest.(check (list string)) "figure 2 is feasible" []
    (List.map Msts.Feasibility.violation_to_string
       (Msts.Feasibility.check ~require_nonnegative:true (fig2_schedule ())))

let property1_detected () =
  (* re-emitted on link 2 before received: C2 < C1 + c1 *)
  let s = Msts.Schedule.make figure2_chain [| entry 2 20 [ 0; 1 ] |] in
  match Msts.Feasibility.check s with
  | [ Msts.Feasibility.Reemitted_before_received { task = 1; link = 2 } ] -> ()
  | vs ->
      Alcotest.failf "expected property-1 violation, got [%s]"
        (String.concat "; " (List.map Msts.Feasibility.violation_to_string vs))

let property2_detected () =
  (* starts at 3 but only fully received at 0+2=2 on P1... use start 1 *)
  let s = Msts.Schedule.make figure2_chain [| entry 1 1 [ 0 ] |] in
  match Msts.Feasibility.check s with
  | [ Msts.Feasibility.Started_before_received { task = 1 } ] -> ()
  | vs ->
      Alcotest.failf "expected property-2 violation, got [%s]"
        (String.concat "; " (List.map Msts.Feasibility.violation_to_string vs))

let property3_detected () =
  (* two tasks overlap on P1 (w1 = 3) *)
  let s =
    Msts.Schedule.make figure2_chain [| entry 1 2 [ 0 ]; entry 1 4 [ 2 ] |]
  in
  match Msts.Feasibility.check s with
  | [ Msts.Feasibility.Computation_overlap { proc = 1; _ } ] -> ()
  | vs ->
      Alcotest.failf "expected property-3 violation, got [%s]"
        (String.concat "; " (List.map Msts.Feasibility.violation_to_string vs))

let property4_detected () =
  (* transfers overlap on link 1 (c1 = 2) *)
  let s =
    Msts.Schedule.make figure2_chain [| entry 1 3 [ 0 ]; entry 1 6 [ 1 ] |]
  in
  let has_comm_overlap =
    List.exists
      (function Msts.Feasibility.Communication_overlap { link = 1; _ } -> true | _ -> false)
      (Msts.Feasibility.check s)
  in
  Alcotest.(check bool) "link overlap detected" true has_comm_overlap

let negative_dates_detected () =
  let s = Msts.Schedule.make figure2_chain [| entry 1 0 [ -2 ] |] in
  Alcotest.(check bool) "allowed without flag" true
    (List.for_all
       (function Msts.Feasibility.Negative_date _ -> false | _ -> true)
       (Msts.Feasibility.check s));
  Alcotest.(check bool) "flagged with require_nonnegative" true
    (List.exists
       (function Msts.Feasibility.Negative_date { task = 1 } -> true | _ -> false)
       (Msts.Feasibility.check ~require_nonnegative:true s))

let meets_deadline () =
  let s = fig2_schedule () in
  Alcotest.(check bool) "meets 14" true (Msts.Feasibility.meets_deadline s ~deadline:14);
  Alcotest.(check bool) "misses 13" false (Msts.Feasibility.meets_deadline s ~deadline:13)

(* ---------- Spider schedules ---------- *)

let two_leg_spider =
  Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 4) ] ]

let sentry leg depth start comms =
  { Msts.Spider_schedule.address = { Msts.Spider.leg; depth }; start; comms = vec comms }

let spider_schedule_basics () =
  let s =
    Msts.Spider_schedule.make two_leg_spider
      [| sentry 1 1 2 [ 0 ]; sentry 2 1 3 [ 2 ] |]
  in
  Alcotest.(check int) "tasks" 2 (Msts.Spider_schedule.task_count s);
  Alcotest.(check int) "makespan" 7 (Msts.Spider_schedule.makespan s);
  Alcotest.(check (list int)) "leg 1" [ 1 ] (Msts.Spider_schedule.tasks_on_leg s 1);
  Alcotest.(check (list int)) "leg 2" [ 2 ] (Msts.Spider_schedule.tasks_on_leg s 2);
  Alcotest.(check (list string)) "feasible" []
    (Msts.Spider_schedule.check ~require_nonnegative:true s)

let spider_master_port_conflict () =
  (* both emissions at 0: master sends two tasks at once *)
  let s =
    Msts.Spider_schedule.make two_leg_spider
      [| sentry 1 1 2 [ 0 ]; sentry 2 1 10 [ 0 ] |]
  in
  Alcotest.(check bool) "master port violation" true
    (List.exists
       (fun msg -> String.length msg >= 11 && String.sub msg 0 11 = "master port")
       (Msts.Spider_schedule.check s))

let spider_leg_violation_reported () =
  let s = Msts.Spider_schedule.make two_leg_spider [| sentry 1 1 1 [ 0 ] |] in
  Alcotest.(check bool) "leg 1 violation" true
    (List.exists
       (fun msg -> String.length msg >= 5 && String.sub msg 0 5 = "leg 1")
       (Msts.Spider_schedule.check s))

let spider_schedule_validation () =
  Alcotest.check_raises "unknown leg"
    (Invalid_argument "Spider_schedule.make: task 1 on leg 5") (fun () ->
      ignore (Msts.Spider_schedule.make two_leg_spider [| sentry 5 1 0 [ 0 ] |]));
  Alcotest.check_raises "bad depth"
    (Invalid_argument "Spider_schedule.make: task 1 at depth 2 on leg 2")
    (fun () ->
      ignore (Msts.Spider_schedule.make two_leg_spider [| sentry 2 2 0 [ 0; 0 ] |]))

let spider_schedule_splice () =
  let s =
    Msts.Spider_schedule.make two_leg_spider
      [| sentry 1 1 2 [ 0 ]; sentry 2 1 3 [ 2 ]; sentry 1 2 8 [ 3; 5 ] |]
  in
  (* shift re-anchors every date *)
  let moved = Msts.Spider_schedule.shift s ~delta:4 in
  let e = (Msts.Spider_schedule.entries moved).(2) in
  Alcotest.(check int) "start moved" 12 e.Msts.Spider_schedule.start;
  Alcotest.(check (array int)) "comms moved" [| 7; 9 |]
    e.Msts.Spider_schedule.comms;
  Alcotest.check_raises "negative dates rejected"
    (Invalid_argument "Spider_schedule.shift: negative date after shift")
    (fun () -> ignore (Msts.Spider_schedule.shift s ~delta:(-1)));
  (* filter keeps a subset in order *)
  let odd = Msts.Spider_schedule.filter_tasks s ~keep:(fun i -> i mod 2 = 1) in
  Alcotest.(check int) "two survivors" 2 (Msts.Spider_schedule.task_count odd);
  Alcotest.(check int) "order preserved" 8
    (Msts.Spider_schedule.entry odd 2).Msts.Spider_schedule.start;
  (* concat splices two partial schedules *)
  let spliced = Msts.Spider_schedule.concat odd (Msts.Spider_schedule.filter_tasks s ~keep:(( = ) 2)) in
  Alcotest.(check int) "spliced tasks" 3 (Msts.Spider_schedule.task_count spliced);
  Alcotest.(check int) "second part appended" 3
    (Msts.Spider_schedule.entry spliced 3).Msts.Spider_schedule.start;
  let other = Msts.Spider_schedule.make (Msts.Spider.of_chain figure2_chain) [||] in
  Alcotest.check_raises "different spiders rejected"
    (Invalid_argument "Spider_schedule.concat: schedules are on different spiders")
    (fun () -> ignore (Msts.Spider_schedule.concat s other))

let spider_of_chain_schedule () =
  let s = fig2_schedule () in
  let sp = Msts.Spider_schedule.of_chain_schedule s in
  Alcotest.(check int) "same makespan" (Msts.Schedule.makespan s)
    (Msts.Spider_schedule.makespan sp);
  Alcotest.(check (list string)) "still feasible" []
    (Msts.Spider_schedule.check ~require_nonnegative:true sp);
  let back = Msts.Spider_schedule.leg_schedule sp 1 in
  Alcotest.(check bool) "leg schedule round-trips" true (Msts.Schedule.equal s back)

(* ---------- Gantt & SVG ---------- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let gantt_renders () =
  let s = fig2_schedule () in
  let chart = Msts.Gantt.render ~width:40 s in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~sub:needle chart))
    [ "link 1"; "proc 1"; "link 2"; "proc 2" ]

let gantt_symbols () =
  Alcotest.(check char) "task 1" '1' (Msts.Gantt.task_symbol 1);
  Alcotest.(check char) "task 9" '9' (Msts.Gantt.task_symbol 9);
  Alcotest.(check char) "task 10" 'a' (Msts.Gantt.task_symbol 10);
  Alcotest.(check char) "task 35" 'z' (Msts.Gantt.task_symbol 35);
  Alcotest.(check char) "task 36" '#' (Msts.Gantt.task_symbol 36)

let gantt_scales_down () =
  let chain = Msts.Chain.of_pairs [ (1, 1) ] in
  let s = Msts.Chain_algorithm.schedule chain 300 in
  let chart = Msts.Gantt.render ~width:50 s in
  let first_line = List.hd (String.split_on_char '\n' chart) in
  Alcotest.(check bool) "fits width" true (String.length first_line < 80)

let svg_renders () =
  let svg = Msts.Svg.render (fig2_schedule ()) in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~sub:needle svg))
    [ "<svg"; "</svg>"; "link 1"; "proc 2"; "rect" ]

let spider_gantt_renders () =
  let s =
    Msts.Spider_schedule.make two_leg_spider
      [| sentry 1 1 2 [ 0 ]; sentry 2 1 3 [ 2 ] |]
  in
  let chart = Msts.Gantt.render_spider ~width:40 s in
  Alcotest.(check bool) "master row" true (contains ~sub:"master port" chart);
  let svg = Msts.Svg.render_spider s in
  Alcotest.(check bool) "svg master row" true (contains ~sub:"master port" svg)

(* ---------- Serialisation ---------- *)

let serial_roundtrip_chain =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"chain schedule serialisation round-trips"
       (chain_with_n_arb ~max_p:4 ~max_n:8 ())
       (fun (chain, n) ->
         let s = Msts.Chain_algorithm.schedule chain n in
         match
           Msts.Serial.schedule_of_string chain (Msts.Serial.schedule_to_string s)
         with
         | Ok parsed -> Msts.Schedule.equal s parsed
         | Error _ -> false))

let serial_roundtrip_spider =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"spider schedule serialisation round-trips"
       (spider_with_n_arb ~max_n:6 ())
       (fun (spider, n) ->
         let s = Msts.Spider_algorithm.schedule_tasks spider n in
         match
           Msts.Serial.spider_schedule_of_string spider
             (Msts.Serial.spider_schedule_to_string s)
         with
         | Ok parsed ->
             Msts.Serial.spider_schedule_to_string parsed
             = Msts.Serial.spider_schedule_to_string s
         | Error _ -> false))

let serial_errors () =
  let expect_error text =
    match Msts.Serial.schedule_of_string figure2_chain text with
    | Ok _ -> Alcotest.fail ("parsed: " ^ text)
    | Error _ -> ()
  in
  expect_error "";
  expect_error "spider-schedule\n";
  expect_error "chain-schedule\nnope 1 2\n";
  expect_error "chain-schedule\ntask 1 2\n";
  (* comm count mismatch *)
  expect_error "chain-schedule\ntask 2 5 0\n";
  (* processor out of range -> structural error from Schedule.make *)
  expect_error "chain-schedule\ntask 9 5 0 1 2 3 4 5 6 7 8\n"

let suites =
  [
    ( "schedule.comm_vector",
      [
        case "first coordinate wins" cv_first_coordinate_wins;
        case "prefix rule: shorter is greater" cv_prefix_rule;
        case "later coordinates break ties" cv_later_coordinate_breaks_ties;
        cv_total_order_antisym;
        cv_total_order_transitive;
        cv_compare_reflexive;
        cv_matches_specification;
        cv_max_of;
        case "shift/first_emission/target" cv_shift;
        case "is_prefix" cv_is_prefix;
      ] );
    ( "schedule.intervals",
      [
        case "disjointness" intervals_disjoint;
        case "non-adjacent overlap caught" intervals_witness_nonadjacent;
        case "utilisation" intervals_utilisation;
      ] );
    ( "schedule.structure",
      [
        case "figure-2 views" schedule_structure;
        case "structural validation" schedule_validation;
        case "shift and normalise" schedule_shift_normalise;
        case "restrict beyond first" schedule_restrict;
        case "resource intervals" schedule_intervals;
      ] );
    ( "schedule.feasibility",
      [
        case "figure 2 is feasible" feasible_fig2;
        case "property 1 (store-and-forward)" property1_detected;
        case "property 2 (receive before start)" property2_detected;
        case "property 3 (computation overlap)" property3_detected;
        case "property 4 (communication overlap)" property4_detected;
        case "negative dates" negative_dates_detected;
        case "meets_deadline" meets_deadline;
      ] );
    ( "schedule.spider",
      [
        case "basics" spider_schedule_basics;
        case "master one-port conflict" spider_master_port_conflict;
        case "leg violations reported" spider_leg_violation_reported;
        case "structural validation" spider_schedule_validation;
        case "shift/filter/concat (replan splicing)" spider_schedule_splice;
        case "chain schedule as one-leg spider" spider_of_chain_schedule;
      ] );
    ( "schedule.render",
      [
        case "ascii gantt" gantt_renders;
        case "task symbols" gantt_symbols;
        case "scaling" gantt_scales_down;
        case "svg" svg_renders;
        case "spider charts" spider_gantt_renders;
      ] );
    ( "schedule.serial",
      [
        serial_roundtrip_chain;
        serial_roundtrip_spider;
        case "parse errors" serial_errors;
      ] );
  ]
