(* Shared generators and Alcotest plumbing for the test suite. *)

module Gen = QCheck.Gen

let case name f = Alcotest.test_case name `Quick f

(* All property tests share one fixed random state so runs are reproducible
   (a flaky failure in CI is useless as an oracle). *)
let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed; 2003 |]) test

(* ---------- generators ---------- *)

let pair_gen ~max_val =
  Gen.map2 (fun c w -> (c, w)) (Gen.int_range 1 max_val) (Gen.int_range 1 max_val)

let chain_gen ?(min_p = 1) ?(max_p = 4) ?(max_val = 10) () =
  Gen.(int_range min_p max_p >>= fun p ->
       Gen.map Msts.Chain.of_pairs (Gen.list_size (Gen.return p) (pair_gen ~max_val)))

(* Shrinker: drop the last processor, then halve any latency/work > 1 —
   failures get reported on the smallest chain still exhibiting them. *)
let chain_shrink chain yield =
  let pairs = Msts.Chain.to_pairs chain in
  let len = List.length pairs in
  if len > 1 then
    yield (Msts.Chain.of_pairs (List.filteri (fun i _ -> i < len - 1) pairs));
  List.iteri
    (fun target (c, w) ->
      let rebuild f =
        Msts.Chain.of_pairs
          (List.mapi (fun i pair -> if i = target then f pair else pair) pairs)
      in
      if c > 1 then yield (rebuild (fun (c, w) -> (c / 2, w)));
      if w > 1 then yield (rebuild (fun (c, w) -> (c, w / 2))))
    pairs

let chain_arb ?min_p ?max_p ?max_val () =
  QCheck.make ~print:Msts.Chain.to_string ~shrink:chain_shrink
    (chain_gen ?min_p ?max_p ?max_val ())

let fork_gen ?(max_slaves = 4) ?(max_val = 10) () =
  Gen.(int_range 1 max_slaves >>= fun m ->
       Gen.map Msts.Fork.of_pairs (Gen.list_size (Gen.return m) (pair_gen ~max_val)))

let fork_arb ?max_slaves ?max_val () =
  QCheck.make ~print:Msts.Fork.to_string (fork_gen ?max_slaves ?max_val ())

let spider_gen ?(max_legs = 3) ?(max_depth = 2) ?(max_val = 10) () =
  Gen.(int_range 1 max_legs >>= fun legs ->
       Gen.map Msts.Spider.of_legs
         (Gen.list_size (Gen.return legs)
            (chain_gen ~min_p:1 ~max_p:max_depth ~max_val ())))

let spider_arb ?max_legs ?max_depth ?max_val () =
  QCheck.make ~print:Msts.Spider.to_string (spider_gen ?max_legs ?max_depth ?max_val ())

(* Small instances with a task count, for oracle comparisons. *)
let chain_with_n_shrink (chain, n) yield =
  if n > 0 then yield (chain, n - 1);
  chain_shrink chain (fun smaller -> yield (smaller, n))

let chain_with_n_arb ?(max_p = 4) ?(max_n = 7) ?(max_val = 10) () =
  QCheck.make
    ~print:(fun (chain, n) -> Printf.sprintf "%s, n=%d" (Msts.Chain.to_string chain) n)
    ~shrink:chain_with_n_shrink
    (Gen.pair (chain_gen ~max_p ~max_val ()) (Gen.int_range 0 max_n))

let spider_with_n_arb ?(max_legs = 3) ?(max_depth = 2) ?(max_n = 5) ?(max_val = 8) () =
  QCheck.make
    ~print:(fun (spider, n) ->
      Printf.sprintf "%s, n=%d" (Msts.Spider.to_string spider) n)
    (Gen.pair (spider_gen ~max_legs ~max_depth ~max_val ()) (Gen.int_range 0 max_n))

(* The paper's Figure 2 instance: chain (c,w) = (2,3),(3,5). *)
let figure2_chain = Msts.Chain.of_pairs [ (2, 3); (3, 5) ]

let check_feasible ?(require_nonnegative = true) sched =
  match Msts.Feasibility.check ~require_nonnegative sched with
  | [] -> true
  | violations ->
      QCheck.Test.fail_reportf "infeasible: %s"
        (String.concat "; " (List.map Msts.Feasibility.violation_to_string violations))

let check_spider_feasible ?(require_nonnegative = true) sched =
  match Msts.Spider_schedule.check ~require_nonnegative sched with
  | [] -> true
  | violations ->
      QCheck.Test.fail_reportf "infeasible: %s" (String.concat "; " violations)
