(* Tests for the tree extension: flat view, tree ASAP, tree schedules and
   their checker, heuristics, spider-cover pipeline, FIFO search and the
   bandwidth-centric steady state. *)

open Helpers

let leaf ~latency ~work = Msts.Tree.node ~latency ~work ()

(* master -> n1(c=1,w=2) -> { n2(c=2,w=3), n3(c=1,w=4) -> n4(c=3,w=1) },
   master -> n5(c=5,w=6) ; preorder ids 1..5 *)
let sample_tree =
  Msts.Tree.make
    [
      Msts.Tree.node ~latency:1 ~work:2
        ~children:
          [
            leaf ~latency:2 ~work:3;
            Msts.Tree.node ~latency:1 ~work:4
              ~children:[ leaf ~latency:3 ~work:1 ] ();
          ]
        ();
      leaf ~latency:5 ~work:6;
    ]

let tree_gen ?(max_nodes = 8) ?(max_val = 8) () =
  QCheck.Gen.(
    pair small_int (int_range 1 max_nodes) |> map (fun (seed, nodes) ->
        Msts.Generator.tree (Msts.Prng.create seed)
          {
            Msts.Generator.latency_min = 1;
            latency_max = max_val;
            work_min = 1;
            work_max = max_val;
          }
          ~nodes ~max_children:3))

let tree_arb ?max_nodes ?max_val () =
  QCheck.make ~print:Msts.Tree.to_string (tree_gen ?max_nodes ?max_val ())

let tree_with_n_arb ?max_nodes ?(max_n = 8) () =
  QCheck.make
    ~print:(fun (tree, n) -> Printf.sprintf "%s, n=%d" (Msts.Tree.to_string tree) n)
    QCheck.Gen.(pair (tree_gen ?max_nodes ()) (int_range 0 max_n))

(* ---------- Flat ---------- *)

let flat_preorder () =
  let flat = Msts.Tree_flat.of_tree sample_tree in
  Alcotest.(check int) "count" 5 (Msts.Tree_flat.node_count flat);
  let info i = Msts.Tree_flat.info flat i in
  Alcotest.(check int) "n1 parent" 0 (info 1).Msts.Tree_flat.parent;
  Alcotest.(check int) "n2 parent" 1 (info 2).Msts.Tree_flat.parent;
  Alcotest.(check int) "n3 parent" 1 (info 3).Msts.Tree_flat.parent;
  Alcotest.(check int) "n4 parent" 3 (info 4).Msts.Tree_flat.parent;
  Alcotest.(check int) "n5 parent" 0 (info 5).Msts.Tree_flat.parent;
  Alcotest.(check (list int)) "path to n4" [ 1; 3; 4 ] (info 4).Msts.Tree_flat.path;
  Alcotest.(check int) "n4 depth" 3 (info 4).Msts.Tree_flat.depth;
  Alcotest.(check (list int)) "master children" [ 1; 5 ]
    (Msts.Tree_flat.children flat 0);
  Alcotest.(check int) "path latency n4" (1 + 1 + 3)
    (Msts.Tree_flat.path_latency flat 4)

let flat_counts_match =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"flat view has one entry per tree node"
       (tree_arb ~max_nodes:15 ())
       (fun tree ->
         Msts.Tree_flat.node_count (Msts.Tree_flat.of_tree tree)
         = Msts.Tree.processor_count tree))

(* ---------- tree ASAP + checker ---------- *)

let tree_asap_feasible =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"tree ASAP sequences are feasible"
       (QCheck.make
          ~print:(fun (tree, _) -> Msts.Tree.to_string tree)
          QCheck.Gen.(
            tree_gen () >>= fun tree ->
            let count = Msts.Tree.processor_count tree in
            map
              (fun dests -> (tree, Array.of_list dests))
              (list_size (int_range 0 10) (int_range 1 count))))
       (fun (tree, seq) ->
         let flat = Msts.Tree_flat.of_tree tree in
         let s = Msts.Tree_asap.of_sequence flat seq in
         match Msts.Tree_schedule.check ~require_nonnegative:true s with
         | [] -> true
         | problems ->
             QCheck.Test.fail_reportf "infeasible: %s" (String.concat "; " problems)))

let tree_asap_chain_consistency =
  (* a path-shaped tree must time exactly like the chain ASAP *)
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"tree ASAP degenerates to chain ASAP on paths"
       (QCheck.make
          ~print:(fun (chain, _) -> Msts.Chain.to_string chain)
          QCheck.Gen.(
            chain_gen ~max_p:4 () >>= fun chain ->
            map
              (fun dests -> (chain, Array.of_list dests))
              (list_size (int_range 0 10) (int_range 1 (Msts.Chain.length chain)))))
       (fun (chain, seq) ->
         let rec to_nodes = function
           | [] -> []
           | (c, w) :: rest ->
               [ Msts.Tree.node ~latency:c ~work:w ~children:(to_nodes rest) () ]
         in
         let tree = Msts.Tree.make (to_nodes (Msts.Chain.to_pairs chain)) in
         let flat = Msts.Tree_flat.of_tree tree in
         Msts.Tree_asap.makespan flat seq = Msts.Asap.chain_makespan chain seq))

let tree_checker_catches_port_conflict () =
  let flat = Msts.Tree_flat.of_tree sample_tree in
  (* two tasks emitted by the master at the same instant *)
  let s =
    Msts.Tree_schedule.make flat
      [|
        { Msts.Tree_schedule.node = 1; start = 1; comms = [| 0 |] };
        { Msts.Tree_schedule.node = 5; start = 5; comms = [| 0 |] };
      |]
  in
  Alcotest.(check bool) "conflict detected" true
    (List.exists
       (fun msg ->
         String.length msg >= 6 && String.sub msg 0 6 = "node 0")
       (Msts.Tree_schedule.check s))

let tree_checker_catches_relay_violation () =
  let flat = Msts.Tree_flat.of_tree sample_tree in
  (* node 1 forwards to node 2 before receiving (c=1 on hop 1) *)
  let s =
    Msts.Tree_schedule.make flat
      [| { Msts.Tree_schedule.node = 2; start = 10; comms = [| 0; 0 |] } |]
  in
  Alcotest.(check bool) "relay violation detected" true
    (Msts.Tree_schedule.check s <> [])

let tree_checker_catches_compute_overlap () =
  let flat = Msts.Tree_flat.of_tree sample_tree in
  let s =
    Msts.Tree_schedule.make flat
      [|
        { Msts.Tree_schedule.node = 1; start = 1; comms = [| 0 |] };
        { Msts.Tree_schedule.node = 1; start = 2; comms = [| 1 |] };
      |]
  in
  Alcotest.(check bool) "overlap detected" true
    (List.exists
       (fun msg ->
         String.length msg >= 5 && String.sub msg 0 5 = "tasks")
       (Msts.Tree_schedule.check s))

let tree_schedule_structure () =
  let flat = Msts.Tree_flat.of_tree sample_tree in
  let s = Msts.Tree_asap.of_sequence flat [| 1; 2; 1 |] in
  Alcotest.(check int) "three tasks" 3 (Msts.Tree_schedule.task_count s);
  Alcotest.(check (list int)) "node 1 runs 1 and 3" [ 1; 3 ]
    (Msts.Tree_schedule.tasks_on s 1);
  Alcotest.check_raises "bad node"
    (Invalid_argument "Tree_schedule.make: task 1 on node 9") (fun () ->
      ignore
        (Msts.Tree_schedule.make flat
           [| { Msts.Tree_schedule.node = 9; start = 0; comms = [| 0 |] } |]))

(* ---------- heuristics ---------- *)

let tree_heuristics_feasible =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"tree heuristics are feasible and complete"
       (tree_with_n_arb ~max_nodes:8 ~max_n:10 ())
       (fun (tree, n) ->
         List.for_all
           (fun policy ->
             let s = Msts.Tree_heuristics.schedule policy tree n in
             Msts.Tree_schedule.task_count s = n
             && Msts.Tree_schedule.is_feasible ~require_nonnegative:true s)
           Msts.Tree_heuristics.all_policies))

(* ---------- spider cover ---------- *)

let cover_feasible_on_tree =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"spider-cover schedules are feasible on the original tree"
       (tree_with_n_arb ~max_nodes:10 ~max_n:10 ())
       (fun (tree, n) ->
         List.for_all
           (fun policy ->
             let s = Msts.Tree_heuristics.spider_cover policy tree n in
             Msts.Tree_schedule.task_count s = n
             && Msts.Tree_schedule.is_feasible ~require_nonnegative:true s)
           [ Msts.Tree.Fastest_processor; Msts.Tree.Cheapest_link; Msts.Tree.Best_rate ]))

let cover_matches_platform_extraction =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"cover legs equal Msts_platform.Tree.extract_spider"
       (tree_arb ~max_nodes:10 ())
       (fun tree ->
         (* the cover re-derives the extraction with a node-id mapping; both
            routes must therefore produce the same optimal makespan *)
         List.for_all
           (fun policy ->
             Msts.Spider_algorithm.min_makespan (Msts.Tree.extract_spider policy tree) 6
             = Msts.Tree_heuristics.spider_cover_makespan policy tree 6)
           [ Msts.Tree.Fastest_processor; Msts.Tree.Cheapest_link; Msts.Tree.Best_rate ]))

let cover_beats_or_matches_root_only =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"best cover never loses to root-only"
       (tree_with_n_arb ~max_nodes:8 ~max_n:10 ())
       (fun (tree, n) ->
         QCheck.assume (n > 0);
         let _, best = Msts.Tree_heuristics.best_cover tree n in
         best
         <= Msts.Tree_heuristics.makespan Msts.Tree_heuristics.Tree_root_only tree n))

(* ---------- search & bounds ---------- *)

let search_below_heuristics =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"FIFO search lower-bounds every heuristic"
       (tree_with_n_arb ~max_nodes:4 ~max_n:5 ())
       (fun (tree, n) ->
         let best = Msts.Tree_search.best_fifo_makespan tree n in
         List.for_all
           (fun policy -> best <= Msts.Tree_heuristics.makespan policy tree n)
           Msts.Tree_heuristics.all_policies
         && List.for_all
              (fun policy ->
                best <= Msts.Tree_heuristics.spider_cover_makespan policy tree n)
              [ Msts.Tree.Fastest_processor; Msts.Tree.Cheapest_link ]))

let search_witness_attains =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"FIFO search witness attains its makespan"
       (tree_with_n_arb ~max_nodes:4 ~max_n:5 ())
       (fun (tree, n) ->
         let s = Msts.Tree_search.best_fifo_schedule tree n in
         Msts.Tree_schedule.is_feasible ~require_nonnegative:true s
         && Msts.Tree_schedule.makespan s = Msts.Tree_search.best_fifo_makespan tree n))

let lower_bound_valid =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"tree lower bound is below the FIFO optimum"
       (tree_with_n_arb ~max_nodes:4 ~max_n:5 ())
       (fun (tree, n) ->
         Msts.Tree_search.lower_bound tree n
         <= Msts.Tree_search.best_fifo_makespan tree n))

let search_on_path_equals_chain =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"FIFO search on a path equals the chain optimum"
       (chain_with_n_arb ~max_p:3 ~max_n:5 ())
       (fun (chain, n) ->
         let rec to_nodes = function
           | [] -> []
           | (c, w) :: rest ->
               [ Msts.Tree.node ~latency:c ~work:w ~children:(to_nodes rest) () ]
         in
         let tree = Msts.Tree.make (to_nodes (Msts.Chain.to_pairs chain)) in
         Msts.Tree_search.best_fifo_makespan tree n
         = Msts.Chain_algorithm.makespan chain n))

(* ---------- steady state ---------- *)

let steady_path_equals_chain =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"tree steady state on a path equals the chain's"
       (chain_arb ~max_p:5 ())
       (fun chain ->
         let rec to_nodes = function
           | [] -> []
           | (c, w) :: rest ->
               [ Msts.Tree.node ~latency:c ~work:w ~children:(to_nodes rest) () ]
         in
         let tree = Msts.Tree.make (to_nodes (Msts.Chain.to_pairs chain)) in
         abs_float
           (Msts.Tree_steady.throughput tree -. Msts.Steady_state.chain_throughput chain)
         < 1e-9))

let steady_spider_equals_spider =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"tree steady state on a spider shape equals the spider's"
       (spider_arb ~max_legs:3 ~max_depth:3 ())
       (fun spider ->
         let leg_to_nodes chain =
           let rec to_nodes = function
             | [] -> []
             | (c, w) :: rest ->
                 [ Msts.Tree.node ~latency:c ~work:w ~children:(to_nodes rest) () ]
           in
           List.hd (to_nodes (Msts.Chain.to_pairs chain))
         in
         let tree =
           Msts.Tree.make
             (List.init (Msts.Spider.legs spider) (fun idx ->
                  leg_to_nodes (Msts.Spider.leg_chain spider (idx + 1))))
         in
         abs_float
           (Msts.Tree_steady.throughput tree
           -. Msts.Steady_state.spider_throughput spider)
         < 1e-9))

let steady_bounded_by_master_port =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"tree throughput respects the master's port"
       (tree_arb ~max_nodes:12 ())
       (fun tree ->
         let flat = Msts.Tree_flat.of_tree tree in
         let min_c =
           List.fold_left
             (fun acc id -> min acc (Msts.Tree_flat.info flat id).Msts.Tree_flat.latency)
             max_int
             (Msts.Tree_flat.children flat 0)
         in
         Msts.Tree_steady.throughput tree <= (1.0 /. float_of_int min_c) +. 1e-9))

let steady_subtree_rates_positive () =
  let rates = Msts.Tree_steady.subtree_rates sample_tree in
  Alcotest.(check int) "one rate per node" 5 (List.length rates);
  List.iter
    (fun (_, r) -> Alcotest.(check bool) "positive" true (r > 0.0))
    rates

let suites =
  [
    ( "tree.flat",
      [ case "preorder and paths" flat_preorder; flat_counts_match ] );
    ( "tree.schedule",
      [
        tree_asap_feasible;
        tree_asap_chain_consistency;
        case "port conflict detected" tree_checker_catches_port_conflict;
        case "relay violation detected" tree_checker_catches_relay_violation;
        case "compute overlap detected" tree_checker_catches_compute_overlap;
        case "structure and validation" tree_schedule_structure;
      ] );
    ("tree.heuristics", [ tree_heuristics_feasible ]);
    ( "tree.cover",
      [
        cover_feasible_on_tree;
        cover_matches_platform_extraction;
        cover_beats_or_matches_root_only;
      ] );
    ( "tree.search",
      [
        search_below_heuristics;
        search_witness_attains;
        lower_bound_valid;
        search_on_path_equals_chain;
      ] );
    ( "tree.steady",
      [
        steady_path_equals_chain;
        steady_spider_equals_spider;
        steady_bounded_by_master_port;
        case "subtree rates" steady_subtree_rates_positive;
      ] );
  ]
