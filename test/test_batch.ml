(* The multicore batch solver: parallel must equal sequential, bit for bit.

   The load-bearing test is the differential campaign: ~200 seeded random
   instances — chains, spiders and forks across all four generator
   profiles, task-count and deadline objectives — solved through
   `Solve.solve_batch ~jobs:4` and compared structurally (every route,
   start and emission date) against `Solve.solve` called one instance at a
   time.  The parallel path may not change a single date. *)

open Helpers
module Solve = Msts.Solve
module Batch = Msts.Batch
module Plan = Msts.Plan

let profiles =
  [
    Msts.Generator.default_profile;
    Msts.Generator.balanced_profile;
    Msts.Generator.compute_bound_profile;
    Msts.Generator.comm_bound_profile;
  ]

(* 200 mixed instances: 4 profiles x 50 each, cycling chain/spider/fork
   and task/deadline/budgeted objectives. *)
let campaign_instances () =
  let rng = Msts.Prng.create 20260806 in
  List.concat_map
    (fun profile ->
      List.init 50 (fun i ->
          let platform =
            match i mod 3 with
            | 0 ->
                Msts.Platform_format.Chain_platform
                  (Msts.Generator.chain rng profile ~p:(Msts.Prng.int_in rng 1 5))
            | 1 ->
                Msts.Platform_format.Spider_platform
                  (Msts.Generator.spider rng profile
                     ~legs:(Msts.Prng.int_in rng 1 3)
                     ~max_depth:2)
            | _ ->
                Msts.Platform_format.Fork_platform
                  (Msts.Generator.fork rng profile
                     ~slaves:(Msts.Prng.int_in rng 1 4))
          in
          match i mod 4 with
          | 0 | 1 -> Solve.problem ~tasks:(Msts.Prng.int_in rng 0 10) platform
          | 2 -> Solve.problem ~deadline:(Msts.Prng.int_in rng 0 60) platform
          | _ ->
              Solve.problem
                ~tasks:(Msts.Prng.int_in rng 1 8)
                ~deadline:(Msts.Prng.int_in rng 10 80)
                platform))
    profiles
  |> Array.of_list

let outcome_equal a b =
  match (a, b) with
  | Ok p, Ok q -> Plan.equal p q
  | Error e, Error f -> String.equal e f
  | _ -> false

let differential_campaign () =
  let problems = campaign_instances () in
  Alcotest.(check int) "campaign size" 200 (Array.length problems);
  let sequential = Array.map Solve.solve problems in
  let parallel = Solve.solve_batch ~jobs:4 problems in
  Alcotest.(check int) "one result per instance" (Array.length problems)
    (Array.length parallel);
  (* the campaign must actually exercise the solver, not fail en masse *)
  let solved =
    Array.fold_left (fun n o -> if Result.is_ok o then n + 1 else n) 0 parallel
  in
  Alcotest.(check bool)
    (Printf.sprintf "most instances solve (%d/200)" solved)
    true (solved >= 150);
  Array.iteri
    (fun i outcome ->
      if not (outcome_equal sequential.(i) outcome) then
        Alcotest.failf "instance %d: parallel result differs from sequential" i;
      (* every plan must independently pass the feasibility audit *)
      match outcome with
      | Ok plan ->
          (match Plan.check plan with
          | [] -> ()
          | v :: _ -> Alcotest.failf "instance %d infeasible: %s" i v);
          (* and serialise identically: same bytes end to end *)
          (match sequential.(i) with
          | Ok seq_plan ->
              Alcotest.(check string)
                (Printf.sprintf "instance %d serialisation" i)
                (Plan.serialize seq_plan) (Plan.serialize plan)
          | Error _ -> assert false)
      | Error _ -> ())
    parallel

let jobs_sweep_agrees () =
  let problems = campaign_instances () in
  let problems = Array.sub problems 0 60 in
  let reference = Solve.solve_batch ~jobs:1 problems in
  List.iter
    (fun jobs ->
      let got = Solve.solve_batch ~jobs problems in
      Array.iteri
        (fun i outcome ->
          if not (outcome_equal reference.(i) outcome) then
            Alcotest.failf "jobs=%d instance %d differs from jobs=1" jobs i)
        got)
    [ 2; 3; 4 ]

let errors_keep_their_slot () =
  let leaf = Msts.Tree.node ~latency:1 ~work:1 () in
  let branchy =
    Msts.Platform_format.Tree_platform
      (Msts.Tree.make [ Msts.Tree.node ~latency:1 ~work:1 ~children:[ leaf; leaf ] () ])
  in
  let good = Msts.Platform_format.Chain_platform figure2_chain in
  let problems =
    [|
      Solve.problem ~tasks:3 good;
      Solve.problem ~tasks:3 branchy;
      Solve.problem good (* no objective *);
      Solve.problem ~tasks:5 good;
    |]
  in
  let outcomes = Solve.solve_batch ~jobs:2 problems in
  (match outcomes.(0) with Ok _ -> () | Error m -> Alcotest.failf "slot 0: %s" m);
  (match outcomes.(1) with
  | Error m ->
      Alcotest.(check bool) "tree error text" true
        (String.length m > 0 && String.sub m 0 9 = "this tree")
  | Ok _ -> Alcotest.fail "branchy tree must not solve");
  (match outcomes.(2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "objective-less problem must not solve");
  match outcomes.(3) with
  | Ok plan -> Alcotest.(check int) "slot 3 intact" 5 (Plan.task_count plan)
  | Error m -> Alcotest.failf "slot 3: %s" m

(* ---------- the batch cache ---------- *)

let stats_invariants () =
  let problems = Array.sub (campaign_instances ()) 0 40 in
  let cache = Batch.cache ~capacity:64 in
  let _, stats = Batch.run ~jobs:2 ~cache ~solve:Solve.solve problems in
  Alcotest.(check int) "requests" 40 stats.Batch.requests;
  Alcotest.(check int) "hits + misses = requests" 40
    (stats.Batch.cache_hits + stats.Batch.cache_misses);
  Alcotest.(check bool) "cache filled" true (Batch.cache_length cache > 0);
  Alcotest.(check bool) "cache bounded" true (Batch.cache_length cache <= 64);
  (* second pass over a warm cache: zero solves *)
  let again, warm = Batch.run ~jobs:2 ~cache ~solve:Solve.solve problems in
  Alcotest.(check int) "warm pass all hits" 40 warm.Batch.cache_hits;
  Alcotest.(check int) "warm pass no solves" 0 warm.Batch.cache_misses;
  Array.iter (fun o -> Alcotest.(check bool) "warm ok" true (Result.is_ok o)) again

let cache_hit_returns_identical_plan () =
  let platform = Msts.Platform_format.Chain_platform figure2_chain in
  let problem = Solve.problem ~tasks:5 platform in
  let cache = Batch.cache ~capacity:8 in
  let first, _ = Batch.run ~jobs:1 ~cache ~solve:Solve.solve [| problem |] in
  let second, stats = Batch.run ~jobs:1 ~cache ~solve:Solve.solve [| problem |] in
  Alcotest.(check int) "second run hits" 1 stats.Batch.cache_hits;
  match (first.(0), second.(0)) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "physically the same plan" true (a == b)
  | _ -> Alcotest.fail "solve failed"

let duplicates_inside_one_batch () =
  let platform = Msts.Platform_format.Chain_platform figure2_chain in
  let p = Solve.problem ~tasks:4 platform in
  let q = Solve.problem ~tasks:6 platform in
  let outcomes, stats =
    Batch.run ~jobs:3 ~solve:Solve.solve [| p; q; p; q; p |]
  in
  Alcotest.(check int) "two distinct solves" 2 stats.Batch.cache_misses;
  Alcotest.(check int) "three duplicates" 3 stats.Batch.cache_hits;
  (match (outcomes.(0), outcomes.(2), outcomes.(4)) with
  | Ok a, Ok b, Ok c ->
      Alcotest.(check bool) "duplicates share one plan" true (a == b && b == c)
  | _ -> Alcotest.fail "solve failed");
  match (outcomes.(1), outcomes.(3)) with
  | Ok a, Ok b -> Alcotest.(check bool) "other family too" true (a == b)
  | _ -> Alcotest.fail "solve failed"

(* Fingerprints must separate near-identical requests: same platform with
   different objectives, and different platforms of equal shape. *)
let fingerprint_separates () =
  let platform = Msts.Platform_format.Chain_platform figure2_chain in
  let close = Msts.Platform_format.Chain_platform (Msts.Chain.of_pairs [ (2, 3); (3, 6) ]) in
  let fps =
    [
      Batch.fingerprint (Solve.problem ~tasks:5 platform);
      Batch.fingerprint (Solve.problem ~tasks:6 platform);
      Batch.fingerprint (Solve.problem ~deadline:5 platform);
      Batch.fingerprint (Solve.problem ~tasks:5 ~deadline:5 platform);
      Batch.fingerprint (Solve.problem ~tasks:5 close);
    ]
  in
  let distinct = List.sort_uniq String.compare fps in
  Alcotest.(check int) "all distinct" (List.length fps) (List.length distinct);
  Alcotest.(check string) "stable for equal requests"
    (Batch.fingerprint (Solve.problem ~tasks:5 platform))
    (List.hd fps)

(* A cache too small for the batch still returns correct results and never
   exceeds its bound — eviction under pressure. *)
let tiny_cache_under_pressure () =
  let problems = Array.sub (campaign_instances ()) 0 30 in
  let cache = Batch.cache ~capacity:3 in
  let sequential = Array.map Solve.solve problems in
  let outcomes, _ = Batch.run ~jobs:4 ~cache ~solve:Solve.solve problems in
  Alcotest.(check bool) "bound held" true (Batch.cache_length cache <= 3);
  Array.iteri
    (fun i o ->
      if not (outcome_equal sequential.(i) o) then
        Alcotest.failf "instance %d wrong under eviction pressure" i)
    outcomes

(* ---------- the pool itself ---------- *)

let pool_map_preserves_order () =
  Msts.Pool.with_pool ~jobs:4 (fun pool ->
      let items = Array.init 101 Fun.id in
      let got = Msts.Pool.map pool (fun i -> i * i) items in
      Alcotest.(check (array int)) "squares in order"
        (Array.map (fun i -> i * i) items)
        got)

let pool_reuse_across_batches () =
  Msts.Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check int) "size" 3 (Msts.Pool.jobs pool);
      for round = 1 to 5 do
        let items = Array.init (10 * round) Fun.id in
        let got = Msts.Pool.map pool (fun i -> i + round) items in
        Alcotest.(check int) "length" (Array.length items) (Array.length got);
        Array.iteri
          (fun i v -> Alcotest.(check int) "value" (i + round) v)
          got
      done)

let pool_propagates_exceptions () =
  Msts.Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.check_raises "first error resurfaces" (Failure "boom") (fun () ->
          ignore
            (Msts.Pool.map pool
               (fun i -> if i = 7 then failwith "boom" else i)
               (Array.init 16 Fun.id))))

let pool_batch_through_shared_pool () =
  let problems = Array.sub (campaign_instances ()) 0 20 in
  let sequential = Array.map Solve.solve problems in
  Msts.Pool.with_pool ~jobs:4 (fun pool ->
      let outcomes = Solve.solve_batch ~pool problems in
      Array.iteri
        (fun i o ->
          if not (outcome_equal sequential.(i) o) then
            Alcotest.failf "instance %d differs through shared pool" i)
        outcomes)

(* ---------- asynchronous submission ---------- *)

let tickets_complete_in_any_order () =
  Msts.Pool.with_pool ~jobs:3 (fun pool ->
      let tickets =
        List.init 20 (fun i -> (i, Msts.Pool.submit pool (fun () -> i * i)))
      in
      List.iter
        (fun (i, ticket) ->
          match Msts.Pool.await pool ticket with
          | Ok v -> Alcotest.(check int) "ticket value" (i * i) v
          | Error e -> raise e)
        (List.rev tickets))

let ticket_captures_exceptions () =
  Msts.Pool.with_pool ~jobs:2 (fun pool ->
      let t = Msts.Pool.submit pool (fun () -> failwith "ticket boom") in
      match Msts.Pool.await pool t with
      | Error (Failure msg) -> Alcotest.(check string) "payload" "ticket boom" msg
      | Error e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | Ok () -> Alcotest.fail "the thunk must fail")

let inline_pool_completes_on_submit () =
  Msts.Pool.with_pool ~jobs:1 (fun pool ->
      let t = Msts.Pool.submit pool (fun () -> 41 + 1) in
      (match Msts.Pool.poll t with
      | Some (Ok 42) -> ()
      | _ -> Alcotest.fail "inline submit must complete before returning");
      Alcotest.(check int) "inline completion counted" 1
        (Msts.Pool.drain_completions pool))

let completion_pipe_wakes_a_select_loop () =
  Msts.Pool.with_pool ~jobs:2 (fun pool ->
      let fd = Msts.Pool.completion_fd pool in
      let tickets =
        Array.init 5 (fun i -> Msts.Pool.submit pool (fun () -> i))
      in
      Array.iter (fun t -> ignore (Msts.Pool.await pool t)) tickets;
      let readable, _, _ = Unix.select [ fd ] [] [] 1.0 in
      Alcotest.(check bool) "pipe turned readable" true (readable <> []);
      Alcotest.(check int) "drain counts every completion" 5
        (Msts.Pool.drain_completions pool);
      Alcotest.(check int) "drain is idempotent" 0
        (Msts.Pool.drain_completions pool);
      (* drained pipe no longer readable *)
      let readable, _, _ = Unix.select [ fd ] [] [] 0.0 in
      Alcotest.(check bool) "pipe drained" true (readable = []))

(* ---------- sharded execution ---------- *)

(* shard / solve-in-any-order / assemble must reproduce run's bytes:
   same outcomes, same hit/miss accounting, same cache content. *)
let shard_assemble_equals_run () =
  let problems = Array.sub (campaign_instances ()) 0 30 in
  let ref_cache = Batch.cache ~capacity:16 in
  let reference, ref_stats =
    Batch.run ~jobs:1 ~cache:ref_cache ~solve:Solve.solve problems
  in
  let cache = Batch.cache ~capacity:16 in
  let plan = Batch.shard ~cache problems in
  let k = Batch.shard_count plan in
  Alcotest.(check int) "shards = misses" ref_stats.Batch.cache_misses k;
  (* solve the slots in reverse, proving completion order is irrelevant *)
  let solved = Array.make k (Error "pending") in
  for slot = k - 1 downto 0 do
    solved.(slot) <- Solve.solve (Batch.shard_request plan slot)
  done;
  let outcomes, stats =
    Batch.assemble plan ~jobs:1 ~solved ~wait_us:(Array.make k 0)
      ~busy_us:(Array.make k 0)
  in
  Array.iteri
    (fun i o ->
      if not (outcome_equal reference.(i) o) then
        Alcotest.failf "instance %d differs from run" i)
    outcomes;
  Alcotest.(check int) "hits agree" ref_stats.Batch.cache_hits
    stats.Batch.cache_hits;
  Alcotest.(check int) "misses agree" ref_stats.Batch.cache_misses
    stats.Batch.cache_misses;
  Alcotest.(check int) "same cache occupancy"
    (Batch.cache_length ref_cache) (Batch.cache_length cache)

let assemble_rejects_mis_sized_solved () =
  let problems = Array.sub (campaign_instances ()) 0 6 in
  let plan = Batch.shard problems in
  Alcotest.check_raises "mis-sized solved array"
    (Invalid_argument "Msts.Batch.assemble: solved array does not match the plan")
    (fun () ->
      ignore
        (Batch.assemble plan ~jobs:1
           ~solved:(Array.make (Batch.shard_count plan + 1) (Error "x"))
           ~wait_us:[||] ~busy_us:[||]))

let suites =
  [
    ( "batch.differential",
      [
        case "200-instance campaign: parallel = sequential" differential_campaign;
        case "jobs 1/2/3/4 all agree" jobs_sweep_agrees;
        case "errors keep their slot" errors_keep_their_slot;
      ] );
    ( "batch.cache",
      [
        case "stats invariants and warm pass" stats_invariants;
        case "hit returns the identical plan" cache_hit_returns_identical_plan;
        case "within-batch duplicates" duplicates_inside_one_batch;
        case "fingerprints separate close requests" fingerprint_separates;
        case "tiny cache under eviction pressure" tiny_cache_under_pressure;
      ] );
    ( "batch.pool",
      [
        case "map preserves order" pool_map_preserves_order;
        case "pool survives many batches" pool_reuse_across_batches;
        case "exceptions propagate" pool_propagates_exceptions;
        case "facade over a shared pool" pool_batch_through_shared_pool;
      ] );
    ( "batch.tickets",
      [
        case "tickets complete in any order" tickets_complete_in_any_order;
        case "exceptions are captured, not thrown" ticket_captures_exceptions;
        case "inline pool completes on submit" inline_pool_completes_on_submit;
        case "completion pipe wakes a select loop"
          completion_pipe_wakes_a_select_loop;
      ] );
    ( "batch.sharding",
      [
        case "shard + assemble = run, any completion order"
          shard_assemble_equals_run;
        case "assemble rejects a mis-sized solved array"
          assemble_rejects_mis_sized_solved;
      ] );
  ]
