(* Tests for the incremental backward construction and the
   controlled-heterogeneity generator additions. *)

open Helpers

let incremental_matches_deadline =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"incremental fill reproduces the deadline variant"
       (QCheck.make
          ~print:(fun (chain, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Chain.to_string chain) d)
          QCheck.Gen.(pair (chain_gen ~max_p:4 ()) (int_range 0 60)))
       (fun (chain, deadline) ->
         let construction = Msts.Chain_incremental.create chain ~horizon:deadline in
         let placed = Msts.Chain_incremental.fill construction () in
         placed = Msts.Chain_deadline.max_tasks chain ~deadline
         && Msts.Schedule.equal
              (Msts.Chain_incremental.schedule construction)
              (Msts.Chain_deadline.schedule chain ~deadline)))

let incremental_step_by_step () =
  (* Figure-2 chain, horizon 14: snapshots must stay feasible; count ends at 5 *)
  let construction = Msts.Chain_incremental.create figure2_chain ~horizon:14 in
  Alcotest.(check int) "empty" 0 (Msts.Chain_incremental.placed construction);
  Alcotest.(check (option int)) "no emission yet" None
    (Msts.Chain_incremental.earliest_emission construction);
  let rec grow count =
    if Msts.Chain_incremental.add_task construction then begin
      let snapshot = Msts.Chain_incremental.schedule construction in
      Alcotest.(check int) "placed" (count + 1) (Msts.Chain_incremental.placed construction);
      Alcotest.(check bool) "snapshot feasible" true
        (Msts.Feasibility.is_feasible ~require_nonnegative:true snapshot);
      Alcotest.(check bool) "snapshot fits" true (Msts.Schedule.makespan snapshot <= 14);
      grow (count + 1)
    end
    else count
  in
  let total = grow 0 in
  Alcotest.(check int) "five tasks fit in 14" 5 total;
  Alcotest.(check bool) "add_task keeps refusing" false
    (Msts.Chain_incremental.add_task construction);
  Alcotest.(check int) "earliest emission at 0" 0
    (Option.get (Msts.Chain_incremental.earliest_emission construction))

let incremental_max_tasks_cap () =
  let construction = Msts.Chain_incremental.create figure2_chain ~horizon:200 in
  Alcotest.(check int) "capped" 3 (Msts.Chain_incremental.fill construction ~max_tasks:3 ());
  (* filling again with a larger cap keeps extending the same construction *)
  Alcotest.(check int) "extended" 6 (Msts.Chain_incremental.fill construction ~max_tasks:6 ())

let incremental_state_copy () =
  let construction = Msts.Chain_incremental.create figure2_chain ~horizon:14 in
  let st = Msts.Chain_incremental.state construction in
  st.Msts.Chain_algorithm.hull.(0) <- -999;
  (* mutating the copy must not corrupt the construction *)
  Alcotest.(check int) "still fills five" 5 (Msts.Chain_incremental.fill construction ())

let incremental_rejects_negative () =
  Alcotest.check_raises "negative horizon"
    (Invalid_argument "Msts.Chain.Incremental.create: negative horizon") (fun () ->
      ignore (Msts.Chain_incremental.create figure2_chain ~horizon:(-1)))

(* ---------- spread profile / heterogeneity ---------- *)

let spread_zero_is_homogeneous () =
  let profile = Msts.Generator.spread_profile ~mean_latency:5 ~mean_work:12 ~spread:0.0 in
  let chain = Msts.Generator.chain (Msts.Prng.create 4) profile ~p:6 in
  List.iter
    (fun (c, w) ->
      Alcotest.(check int) "latency" 5 c;
      Alcotest.(check int) "work" 12 w)
    (Msts.Chain.to_pairs chain);
  Alcotest.(check (Alcotest.float 1e-9)) "CV zero" 0.0
    (Msts.Generator.heterogeneity chain)

let spread_bounds =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"spread profile brackets the mean"
       QCheck.(triple (int_range 1 20) (int_range 1 20) (int_range 0 40))
       (fun (mean_latency, mean_work, spread10) ->
         let spread = float_of_int spread10 /. 10.0 in
         let profile = Msts.Generator.spread_profile ~mean_latency ~mean_work ~spread in
         profile.Msts.Generator.latency_min >= 1
         && profile.Msts.Generator.latency_min <= mean_latency
         && profile.Msts.Generator.latency_max >= mean_latency
         && profile.Msts.Generator.work_min >= 1
         && profile.Msts.Generator.work_min <= mean_work
         && profile.Msts.Generator.work_max >= mean_work))

let heterogeneity_monotone_in_spread () =
  (* statistically: larger spread -> larger average CV *)
  let rng = Msts.Prng.create 2718 in
  let avg_cv spread =
    let acc = ref 0.0 in
    for _ = 1 to 50 do
      let profile = Msts.Generator.spread_profile ~mean_latency:6 ~mean_work:10 ~spread in
      acc := !acc +. Msts.Generator.heterogeneity (Msts.Generator.chain rng profile ~p:6)
    done;
    !acc /. 50.0
  in
  let low = avg_cv 0.3 and high = avg_cv 3.0 in
  Alcotest.(check bool)
    (Printf.sprintf "CV grows with spread (%.3f < %.3f)" low high)
    true (low < high)

let spread_rejects_bad_input () =
  Alcotest.check_raises "bad mean"
    (Invalid_argument "Generator.spread_profile: non-positive mean") (fun () ->
      ignore (Msts.Generator.spread_profile ~mean_latency:0 ~mean_work:1 ~spread:1.0));
  Alcotest.check_raises "bad spread"
    (Invalid_argument "Generator.spread_profile: negative spread") (fun () ->
      ignore (Msts.Generator.spread_profile ~mean_latency:1 ~mean_work:1 ~spread:(-0.5)))

(* ---------- spider summary ---------- *)

let spider_summary_renders () =
  let spider = Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 4) ] ] in
  let sched = Msts.Spider_algorithm.schedule_tasks spider 8 in
  let text = Msts.Metrics.spider_summary sched in
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~sub:needle text))
    [ "tasks: 8"; "master port busy"; "leg 1"; "leg 2"; "depth 1"; "max buffered" ]

let suites =
  [
    ( "chain.incremental",
      [
        incremental_matches_deadline;
        case "step-by-step snapshots" incremental_step_by_step;
        case "max_tasks cap and resumption" incremental_max_tasks_cap;
        case "state is a defensive copy" incremental_state_copy;
        case "negative horizon rejected" incremental_rejects_negative;
      ] );
    ( "platform.spread",
      [
        case "spread 0 is homogeneous" spread_zero_is_homogeneous;
        spread_bounds;
        case "CV grows with spread" heterogeneity_monotone_in_spread;
        case "bad inputs rejected" spread_rejects_bad_input;
      ] );
    ("schedule.spider_summary", [ case "rendering" spider_summary_renders ]);
  ]
