(* Tests for the observability layer: span nesting under a deterministic
   clock, counter totals, Chrome-trace well-formedness, and — crucially —
   that the default null sink changes no output at all. *)

open Helpers
module Obs = Msts.Obs
module Json = Msts.Json

(* Install a deterministic clock ticking [step] microseconds per read and
   run [f] with a fresh memory sink; restores the wall clock afterwards. *)
let with_ticking_clock ?(step = 10) f =
  let t = ref 0 in
  Obs.set_clock
    (Some
       (fun () ->
         let now = !t in
         t := now + step;
         now));
  Fun.protect
    ~finally:(fun () -> Obs.set_clock None)
    (fun () ->
      let mem = Obs.Memory.create () in
      Obs.with_sink (Obs.Memory.sink mem) (fun () -> f ());
      mem)

(* ---------- spans ---------- *)

let span_nesting () =
  let mem =
    with_ticking_clock (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span "inner" (fun () -> ());
            Obs.span "inner" (fun () -> ())))
  in
  Alcotest.(check int) "max depth" 2 (Obs.Memory.max_depth mem);
  Alcotest.(check (list string)) "balanced" [] (Obs.Memory.open_spans mem);
  let stats = Obs.Memory.spans mem in
  let stat name = List.assoc name stats in
  Alcotest.(check int) "inner calls" 2 (stat "inner").Obs.Memory.calls;
  Alcotest.(check int) "outer calls" 1 (stat "outer").Obs.Memory.calls;
  (* clock ticks once per event: outer B, inner B, inner E, inner B,
     inner E, outer E at ts 0,10,20,30,40,50 *)
  Alcotest.(check int) "outer total" 50 (stat "outer").Obs.Memory.total_us;
  Alcotest.(check int) "inner total" 20 (stat "inner").Obs.Memory.total_us;
  Alcotest.(check int) "inner max" 10 (stat "inner").Obs.Memory.max_us

let span_survives_exception () =
  let mem =
    with_ticking_clock (fun () ->
        try Obs.span "risky" (fun () -> failwith "boom")
        with Failure _ -> ())
  in
  Alcotest.(check (list string)) "end emitted on raise" []
    (Obs.Memory.open_spans mem);
  Alcotest.(check int) "one completed call" 1
    (List.assoc "risky" (Obs.Memory.spans mem)).Obs.Memory.calls

let span_returns_value () =
  Alcotest.(check int) "pass-through without a sink" 42
    (Obs.span "x" (fun () -> 42));
  let mem = Obs.Memory.create () in
  let v = Obs.with_sink (Obs.Memory.sink mem) (fun () -> Obs.span "x" (fun () -> 7)) in
  Alcotest.(check int) "pass-through with a sink" 7 v

(* ---------- counters ---------- *)

let counter_totals () =
  let mem =
    with_ticking_clock (fun () ->
        Obs.count "a";
        Obs.count ~n:4 "b";
        Obs.count ~n:2 "a";
        Obs.count "b")
  in
  Alcotest.(check (list (pair string int)))
    "sorted totals"
    [ ("a", 3); ("b", 5) ]
    (Obs.Memory.counters mem);
  Alcotest.(check int) "single lookup" 3 (Obs.Memory.counter mem "a");
  Alcotest.(check int) "missing is zero" 0 (Obs.Memory.counter mem "zzz")

let counter_rows_match () =
  let mem =
    with_ticking_clock (fun () ->
        Obs.count ~n:3 "x";
        Obs.count "y")
  in
  Alcotest.(check (list (list string)))
    "table rows"
    [ [ "x"; "3" ]; [ "y"; "1" ] ]
    (Obs.Memory.counter_rows mem)

(* ---------- null sink: no behavioural change ---------- *)

let null_sink_is_default () =
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  (* count/span with no sink must be pure no-ops *)
  Obs.count ~n:1000 "ghost";
  Obs.span "ghost" (fun () -> ());
  let mem = with_ticking_clock (fun () -> ()) in
  Alcotest.(check (list (pair string int)))
    "nothing leaked into later sinks" [] (Obs.Memory.counters mem)

let null_sink_identical_outputs () =
  let chain = figure2_chain in
  let quiet = Msts.Chain_algorithm.schedule chain 5 in
  let mem = Obs.Memory.create () in
  let observed =
    Obs.with_sink (Obs.Memory.sink mem) (fun () ->
        Msts.Chain_algorithm.schedule chain 5)
  in
  Alcotest.(check string)
    "schedule text identical with and without a sink"
    (Msts.Schedule.to_string quiet)
    (Msts.Schedule.to_string observed);
  Alcotest.(check bool)
    "and the sink did observe work" true
    (Obs.Memory.counter mem "chain.tasks_placed" > 0)

let with_sink_restores () =
  let outer = Obs.Memory.create () in
  Obs.with_sink (Obs.Memory.sink outer) (fun () ->
      let inner = Obs.Memory.create () in
      (try
         Obs.with_sink (Obs.Memory.sink inner) (fun () -> failwith "boom")
       with Failure _ -> ());
      Obs.count "after");
  Alcotest.(check bool) "no sink after with_sink" false (Obs.enabled ());
  Alcotest.(check int) "outer sink restored after inner raised" 1
    (Obs.Memory.counter outer "after")

(* ---------- Chrome trace export ---------- *)

let chrome_trace_wellformed () =
  let mem =
    with_ticking_clock (fun () ->
        Obs.span "phase" ~args:[ ("n", "5") ] (fun () -> Obs.count ~n:2 "work");
        Obs.count "work")
  in
  let text = Json.to_string ~pretty:true (Obs.Memory.chrome_trace mem) in
  match Json.parse text with
  | Error msg -> Alcotest.failf "emitted trace does not re-parse: %s" msg
  | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.List events) ->
          Alcotest.(check int) "B + E + two counter samples" 4
            (List.length events);
          let phases =
            List.filter_map
              (fun ev ->
                match Json.member "ph" ev with
                | Some (Json.String ph) -> Some ph
                | _ -> None)
              events
          in
          Alcotest.(check (list string)) "phases" [ "B"; "C"; "E"; "C" ] phases;
          (* counter samples carry running totals *)
          let totals =
            List.filter_map
              (fun ev ->
                match (Json.member "ph" ev, Json.member "args" ev) with
                | Some (Json.String "C"), Some (Json.Obj [ (_, Json.Int v) ]) ->
                    Some v
                | _ -> None)
              events
          in
          Alcotest.(check (list int)) "running totals" [ 2; 3 ] totals
      | _ -> Alcotest.fail "traceEvents missing or not a list")

(* ---------- the shared JSON encoder ---------- *)

let json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\nline");
        ("i", Json.Int (-42));
        ("f", Json.Float 31.3);
        ("b", Json.Bool true);
        ("null", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int 2 ]);
      ]
  in
  List.iter
    (fun pretty ->
      match Json.parse (Json.to_string ~pretty doc) with
      | Ok parsed ->
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip pretty=%b" pretty)
            true (parsed = doc)
      | Error msg -> Alcotest.failf "roundtrip failed: %s" msg)
    [ false; true ]

let json_rejects_garbage () =
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated" ]

let suites =
  [
    ( "obs.spans",
      [
        case "nesting and totals" span_nesting;
        case "end emitted on exception" span_survives_exception;
        case "returns the body's value" span_returns_value;
      ] );
    ( "obs.counters",
      [
        case "totals and lookup" counter_totals;
        case "table rows" counter_rows_match;
      ] );
    ( "obs.sink",
      [
        case "null sink is the default" null_sink_is_default;
        case "outputs identical with and without a sink"
          null_sink_identical_outputs;
        case "with_sink restores on exceptions" with_sink_restores;
      ] );
    ( "obs.export",
      [
        case "chrome trace is well-formed" chrome_trace_wellformed;
        case "json roundtrip" json_roundtrip;
        case "json rejects garbage" json_rejects_garbage;
      ] );
  ]
