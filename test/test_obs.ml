(* Tests for the observability layer: span nesting under a deterministic
   clock, counter totals, Chrome-trace well-formedness, and — crucially —
   that the default null sink changes no output at all. *)

open Helpers
module Obs = Msts.Obs
module Json = Msts.Json

(* Install a deterministic clock ticking [step] microseconds per read and
   run [f] with a fresh memory sink; restores the wall clock afterwards. *)
let with_ticking_clock ?(step = 10) f =
  let t = ref 0 in
  Obs.set_clock
    (Some
       (fun () ->
         let now = !t in
         t := now + step;
         now));
  Fun.protect
    ~finally:(fun () -> Obs.set_clock None)
    (fun () ->
      let mem = Obs.Memory.create () in
      Obs.with_sink (Obs.Memory.sink mem) (fun () -> f ());
      mem)

(* ---------- spans ---------- *)

let span_nesting () =
  let mem =
    with_ticking_clock (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span "inner" (fun () -> ());
            Obs.span "inner" (fun () -> ())))
  in
  Alcotest.(check int) "max depth" 2 (Obs.Memory.max_depth mem);
  Alcotest.(check (list string)) "balanced" [] (Obs.Memory.open_spans mem);
  let stats = Obs.Memory.spans mem in
  let stat name = List.assoc name stats in
  Alcotest.(check int) "inner calls" 2 (stat "inner").Obs.Memory.calls;
  Alcotest.(check int) "outer calls" 1 (stat "outer").Obs.Memory.calls;
  (* clock ticks once per event: outer B, inner B, inner E, inner B,
     inner E, outer E at ts 0,10,20,30,40,50 *)
  Alcotest.(check int) "outer total" 50 (stat "outer").Obs.Memory.total_us;
  Alcotest.(check int) "inner total" 20 (stat "inner").Obs.Memory.total_us;
  Alcotest.(check int) "inner max" 10 (stat "inner").Obs.Memory.max_us

let span_survives_exception () =
  let mem =
    with_ticking_clock (fun () ->
        try Obs.span "risky" (fun () -> failwith "boom")
        with Failure _ -> ())
  in
  Alcotest.(check (list string)) "end emitted on raise" []
    (Obs.Memory.open_spans mem);
  Alcotest.(check int) "one completed call" 1
    (List.assoc "risky" (Obs.Memory.spans mem)).Obs.Memory.calls

let span_returns_value () =
  Alcotest.(check int) "pass-through without a sink" 42
    (Obs.span "x" (fun () -> 42));
  let mem = Obs.Memory.create () in
  let v = Obs.with_sink (Obs.Memory.sink mem) (fun () -> Obs.span "x" (fun () -> 7)) in
  Alcotest.(check int) "pass-through with a sink" 7 v

(* ---------- counters ---------- *)

let counter_totals () =
  let mem =
    with_ticking_clock (fun () ->
        Obs.count "a";
        Obs.count ~n:4 "b";
        Obs.count ~n:2 "a";
        Obs.count "b")
  in
  Alcotest.(check (list (pair string int)))
    "sorted totals"
    [ ("a", 3); ("b", 5) ]
    (Obs.Memory.counters mem);
  Alcotest.(check int) "single lookup" 3 (Obs.Memory.counter mem "a");
  Alcotest.(check int) "missing is zero" 0 (Obs.Memory.counter mem "zzz")

let counter_rows_match () =
  let mem =
    with_ticking_clock (fun () ->
        Obs.count ~n:3 "x";
        Obs.count "y")
  in
  Alcotest.(check (list (list string)))
    "table rows"
    [ [ "x"; "3" ]; [ "y"; "1" ] ]
    (Obs.Memory.counter_rows mem)

(* ---------- null sink: no behavioural change ---------- *)

let null_sink_is_default () =
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  (* count/span with no sink must be pure no-ops *)
  Obs.count ~n:1000 "ghost";
  Obs.span "ghost" (fun () -> ());
  let mem = with_ticking_clock (fun () -> ()) in
  Alcotest.(check (list (pair string int)))
    "nothing leaked into later sinks" [] (Obs.Memory.counters mem)

let null_sink_identical_outputs () =
  let chain = figure2_chain in
  let quiet = Msts.Chain_algorithm.schedule chain 5 in
  let mem = Obs.Memory.create () in
  let observed =
    Obs.with_sink (Obs.Memory.sink mem) (fun () ->
        Msts.Chain_algorithm.schedule chain 5)
  in
  Alcotest.(check string)
    "schedule text identical with and without a sink"
    (Msts.Schedule.to_string quiet)
    (Msts.Schedule.to_string observed);
  Alcotest.(check bool)
    "and the sink did observe work" true
    (Obs.Memory.counter mem "chain.tasks_placed" > 0)

let with_sink_restores () =
  let outer = Obs.Memory.create () in
  Obs.with_sink (Obs.Memory.sink outer) (fun () ->
      let inner = Obs.Memory.create () in
      (try
         Obs.with_sink (Obs.Memory.sink inner) (fun () -> failwith "boom")
       with Failure _ -> ());
      Obs.count "after");
  Alcotest.(check bool) "no sink after with_sink" false (Obs.enabled ());
  Alcotest.(check int) "outer sink restored after inner raised" 1
    (Obs.Memory.counter outer "after")

(* ---------- Chrome trace export ---------- *)

let chrome_trace_wellformed () =
  let mem =
    with_ticking_clock (fun () ->
        Obs.span "phase" ~args:[ ("n", "5") ] (fun () -> Obs.count ~n:2 "work");
        Obs.count "work")
  in
  let text = Json.to_string ~pretty:true (Obs.Memory.chrome_trace mem) in
  match Json.parse text with
  | Error msg -> Alcotest.failf "emitted trace does not re-parse: %s" msg
  | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.List events) ->
          Alcotest.(check int) "B + E + two counter samples" 4
            (List.length events);
          let phases =
            List.filter_map
              (fun ev ->
                match Json.member "ph" ev with
                | Some (Json.String ph) -> Some ph
                | _ -> None)
              events
          in
          Alcotest.(check (list string)) "phases" [ "B"; "C"; "E"; "C" ] phases;
          (* counter samples carry running totals *)
          let totals =
            List.filter_map
              (fun ev ->
                match (Json.member "ph" ev, Json.member "args" ev) with
                | Some (Json.String "C"), Some (Json.Obj [ (_, Json.Int v) ]) ->
                    Some v
                | _ -> None)
              events
          in
          Alcotest.(check (list int)) "running totals" [ 2; 3 ] totals
      | _ -> Alcotest.fail "traceEvents missing or not a list")

(* ---------- histograms ---------- *)

let hist_exact_small () =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.add h) [ 3; 1; 4; 1; 5; 9; 2; 6 ];
  Alcotest.(check int) "count" 8 (Obs.Histogram.count h);
  Alcotest.(check int) "sum" 31 (Obs.Histogram.sum h);
  Alcotest.(check int) "min" 1 (Obs.Histogram.min_value h);
  Alcotest.(check int) "max" 9 (Obs.Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" (31.0 /. 8.0) (Obs.Histogram.mean h);
  (* sorted: 1 1 2 3 4 5 6 9 — values below 16 are exact *)
  Alcotest.(check int) "p0 = min" 1 (Obs.Histogram.quantile h 0.0);
  Alcotest.(check int) "p50" 3 (Obs.Histogram.quantile h 0.5);
  Alcotest.(check int) "p90" 9 (Obs.Histogram.quantile h 0.9);
  Alcotest.(check int) "p100 = max" 9 (Obs.Histogram.quantile h 1.0);
  Obs.Histogram.add h (-5);
  Alcotest.(check int) "negative clamps to 0" 0 (Obs.Histogram.min_value h);
  let empty = Obs.Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Obs.Histogram.count empty);
  Alcotest.(check int) "empty quantile" 0 (Obs.Histogram.quantile empty 0.5)

let hist_merge () =
  let a = Obs.Histogram.create () and b = Obs.Histogram.create () in
  for v = 1 to 10 do
    Obs.Histogram.add a v
  done;
  for v = 100 to 110 do
    Obs.Histogram.add b v
  done;
  Obs.Histogram.merge_into ~into:a b;
  Alcotest.(check int) "count" 21 (Obs.Histogram.count a);
  Alcotest.(check int) "sum" (55 + 1155) (Obs.Histogram.sum a);
  Alcotest.(check int) "min" 1 (Obs.Histogram.min_value a);
  Alcotest.(check int) "max" 110 (Obs.Histogram.max_value a);
  (* rank 11 of 21 is the first of b's samples; 100 is a bucket lower
     bound, so it reports exactly *)
  Alcotest.(check int) "p50 across the merge" 100 (Obs.Histogram.quantile a 0.5)

(* Against a naive sorted-array oracle: the log-bucketed quantile never
   overshoots and undershoots by at most 1/16 of the exact value. *)
let hist_quantile_error_bound =
  QCheck.Test.make ~name:"histogram quantile within 1/16 of exact" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 100_000))
    (fun values ->
      let h = Obs.Histogram.create () in
      List.iter (Obs.Histogram.add h) values;
      let sorted = Array.of_list (List.sort compare values) in
      let n = Array.length sorted in
      List.for_all
        (fun q ->
          let rank =
            max 1 (min n (int_of_float (ceil (q *. float_of_int n))))
          in
          let exact = sorted.(rank - 1) in
          let approx = Obs.Histogram.quantile h q in
          approx <= exact && exact - approx <= exact / 16)
        [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ])

let record_feeds_histograms () =
  let mem =
    with_ticking_clock (fun () ->
        List.iter (fun v -> Obs.record "lat" v) [ 1; 2; 3; 100 ])
  in
  (match Obs.Memory.histogram mem "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "count" 4 (Obs.Histogram.count h);
      Alcotest.(check int) "max" 100 (Obs.Histogram.max_value h));
  Alcotest.(check (list (list string)))
    "table rows"
    [ [ "lat"; "4"; "2"; "100"; "100"; "100" ] ]
    (Obs.Memory.histogram_rows mem);
  Alcotest.(check bool) "absent name" true
    (Obs.Memory.histogram mem "zzz" = None)

let span_duration_histograms () =
  (* ticking clock: every event advances 10us, so each call lasts 10us *)
  let mem =
    with_ticking_clock (fun () ->
        for _ = 1 to 3 do
          Obs.span "work" (fun () -> ())
        done)
  in
  match Obs.Memory.span_histogram mem "work" with
  | None -> Alcotest.fail "span histogram missing"
  | Some h ->
      Alcotest.(check int) "calls" 3 (Obs.Histogram.count h);
      Alcotest.(check int) "p100" 10 (Obs.Histogram.quantile h 1.0)

(* ---------- bounded raw log ---------- *)

let memory_cap_bounds_log () =
  let mem = Obs.Memory.create ~max_events:8 () in
  Obs.with_sink (Obs.Memory.sink mem) (fun () ->
      for _ = 1 to 100 do
        Obs.count "n"
      done;
      Obs.record "v" 5);
  Alcotest.(check int) "cap recorded" 8 (Obs.Memory.max_events mem);
  Alcotest.(check int) "log bounded" 8 (Obs.Memory.stored_events mem);
  Alcotest.(check int) "dropped" 93 (Obs.Memory.dropped_events mem);
  Alcotest.(check int) "log holds the cap" 8 (List.length (Obs.Memory.events mem));
  (* aggregates are exact past the cap *)
  Alcotest.(check int) "counter exact" 100 (Obs.Memory.counter mem "n");
  (match Obs.Memory.histogram mem "v" with
  | Some h -> Alcotest.(check int) "histogram exact" 1 (Obs.Histogram.count h)
  | None -> Alcotest.fail "histogram missing");
  (* the newest events are the ones retained *)
  match List.rev (Obs.Memory.events mem) with
  | Obs.Value { name = "v"; value = 5; _ } :: _ -> ()
  | _ -> Alcotest.fail "newest event not retained"

(* ---------- streaming sink ---------- *)

let streaming_sink_bounded () =
  let path = Filename.temp_file "msts_stream" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let st = Obs.Streaming.create ~flush_every:8 oc in
  Obs.with_sink (Obs.Streaming.sink st) (fun () ->
      for i = 1 to 50 do
        Obs.record "v" i
      done;
      Obs.count "c";
      Obs.span "s" ~args:[ ("k", "x") ] (fun () -> ()));
  Obs.Streaming.flush st;
  close_out oc;
  Alcotest.(check int) "events seen" 53 (Obs.Streaming.events_seen st);
  Alcotest.(check int) "all written after flush" 53
    (Obs.Streaming.events_written st);
  Alcotest.(check bool) "buffer high-water bounded by flush_every" true
    (Obs.Streaming.max_buffered st <= 8);
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one JSON line per event" 53 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Error msg -> Alcotest.failf "bad JSONL line %s: %s" line msg
      | Ok json -> (
          match Json.member "ev" json with
          | Some (Json.String ("B" | "E" | "C" | "V")) -> ()
          | _ -> Alcotest.failf "line lacks an event tag: %s" line))
    lines

let streaming_rejects_bad_flush_every () =
  let oc = open_out Filename.null in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  match Obs.Streaming.create ~flush_every:0 oc with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "flush_every 0 accepted"

(* ---------- ring sink ---------- *)

let ring_keeps_last_n () =
  let r = Obs.Ring.create ~capacity:4 () in
  Obs.with_sink (Obs.Ring.sink r) (fun () ->
      for i = 1 to 10 do
        Obs.record "v" i
      done);
  Alcotest.(check int) "capacity" 4 (Obs.Ring.capacity r);
  Alcotest.(check int) "seen" 10 (Obs.Ring.seen r);
  Alcotest.(check int) "dropped" 6 (Obs.Ring.dropped r);
  let values =
    List.map
      (function Obs.Value { value; _ } -> value | _ -> -1)
      (Obs.Ring.events r)
  in
  Alcotest.(check (list int)) "newest 4, oldest first" [ 7; 8; 9; 10 ] values;
  let lines =
    Obs.Ring.to_jsonl r |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "jsonl lines" 4 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "bad ring line %s: %s" line msg)
    lines

let tee_fans_out () =
  let mem = Obs.Memory.create () in
  let r = Obs.Ring.create ~capacity:2 () in
  Obs.with_sink (Obs.tee [ Obs.Memory.sink mem; Obs.Ring.sink r ]) (fun () ->
      Obs.count "a";
      Obs.count "a";
      Obs.count "b");
  Alcotest.(check int) "memory saw the counts" 2 (Obs.Memory.counter mem "a");
  Alcotest.(check int) "ring saw every event" 3 (Obs.Ring.seen r);
  Alcotest.(check int) "ring kept the last two" 2
    (List.length (Obs.Ring.events r))

(* ---------- request scopes ---------- *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let scope_attribution () =
  let mem = Obs.Memory.create () in
  Obs.with_sink (Obs.Memory.sink mem) (fun () ->
      Obs.count "plain";
      Obs.Scope.with_scope 5 (fun () ->
          Obs.count "hits";
          Obs.count ~n:2 "hits";
          Obs.record "lat" 10);
      Obs.Scope.with_scope 9 (fun () ->
          Obs.count "hits";
          Obs.record "lat" 100));
  (* global aggregates see everything *)
  Alcotest.(check int) "global counter" 4 (Obs.Memory.counter mem "hits");
  (* per-scope tallies are split *)
  Alcotest.(check (list int)) "both scopes tracked" [ 5; 9 ]
    (List.sort compare (Obs.Memory.scopes mem));
  Alcotest.(check int) "scope 5 counter" 3
    (Obs.Memory.scope_counter mem 5 "hits");
  Alcotest.(check int) "scope 9 counter" 1
    (Obs.Memory.scope_counter mem 9 "hits");
  Alcotest.(check int) "unscoped name absent per-scope" 0
    (Obs.Memory.scope_counter mem 5 "plain");
  (match Obs.Memory.scope_histogram mem 9 "lat" with
  | Some h ->
      Alcotest.(check int) "scope 9 sample count" 1 (Obs.Histogram.count h);
      Alcotest.(check int) "scope 9 max" 100 (Obs.Histogram.max_value h)
  | None -> Alcotest.fail "scope 9 lost its histogram");
  Alcotest.(check int) "no eviction" 0 (Obs.Memory.evicted_scopes mem)

let scope_stamped_in_json () =
  let r = Obs.Ring.create ~capacity:8 () in
  Obs.with_sink (Obs.Ring.sink r) (fun () ->
      Obs.count "plain";
      Obs.Scope.with_scope 5 (fun () -> Obs.count "scoped"));
  match
    Obs.Ring.to_jsonl r |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  with
  | [ plain; scoped ] ->
      Alcotest.(check bool) "unscoped event carries no sc field" false
        (contains plain "\"sc\"");
      Alcotest.(check bool) "scoped event stamped sc:5" true
        (contains scoped "\"sc\":5")
  | lines -> Alcotest.failf "expected 2 events, got %d" (List.length lines)

let scope_nesting_and_exceptions () =
  let mem = Obs.Memory.create () in
  Obs.with_sink (Obs.Memory.sink mem) (fun () ->
      Obs.Scope.with_scope 3 (fun () ->
          Alcotest.(check int) "inside" 3 (Obs.Scope.current ());
          Obs.Scope.with_scope 4 (fun () ->
              Alcotest.(check int) "nested" 4 (Obs.Scope.current ()));
          Alcotest.(check int) "restored after nesting" 3 (Obs.Scope.current ());
          (try Obs.Scope.with_scope 8 (fun () -> failwith "boom")
           with Failure _ -> ());
          Alcotest.(check int) "restored after exception" 3
            (Obs.Scope.current ()));
      Alcotest.(check int) "back to none" Obs.Scope.none (Obs.Scope.current ()))

let scope_table_bounded () =
  let mem = Obs.Memory.create ~max_scopes:2 () in
  Obs.with_sink (Obs.Memory.sink mem) (fun () ->
      List.iter
        (fun sc -> Obs.Scope.with_scope sc (fun () -> Obs.count "hits"))
        [ 11; 12; 13 ]);
  Alcotest.(check int) "cap honoured" 2 (List.length (Obs.Memory.scopes mem));
  Alcotest.(check int) "one eviction" 1 (Obs.Memory.evicted_scopes mem);
  (* FIFO: the oldest scope went *)
  Alcotest.(check (list int)) "newest two retained" [ 12; 13 ]
    (List.sort compare (Obs.Memory.scopes mem));
  (* global aggregates are unaffected by scope eviction *)
  Alcotest.(check int) "global counter exact" 3 (Obs.Memory.counter mem "hits")

let scope_fresh_monotone () =
  let a = Obs.Scope.fresh () in
  let b = Obs.Scope.fresh () in
  Alcotest.(check bool) "fresh scopes are distinct and nonzero" true
    (a <> b && a <> Obs.Scope.none && b <> Obs.Scope.none)

(* With no sink installed the scope machinery must stay entirely off the
   hot path: [with_scope] runs the thunk directly, allocating nothing. *)
let calibrate () =
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  b -. a

let disabled_scope_path_allocation_free () =
  Alcotest.(check bool) "no sink installed" false (Obs.enabled ());
  let tick = ref 0 in
  (* allocate the thunk once — a literal [fun () -> incr tick] at the call
     site would heap-allocate its closure on every iteration and drown the
     measurement *)
  let thunk () = incr tick in
  let work () = Obs.Scope.with_scope 42 thunk in
  work () (* warm-up *);
  let baseline = calibrate () in
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    work ()
  done;
  let after = Gc.minor_words () in
  let extra = after -. before -. baseline in
  Alcotest.(check bool)
    (Printf.sprintf "1000 disabled with_scope calls allocated %.0f minor words"
       extra)
    true (extra <= 0.5);
  Alcotest.(check int) "thunks all ran" 1001 !tick

let scope_propagates_to_pool_workers () =
  let mem = Obs.Memory.create () in
  Obs.with_sink (Obs.Memory.sink mem) @@ fun () ->
  Msts.Pool.with_pool ~jobs:2 @@ fun pool ->
  Obs.Scope.with_scope 7 @@ fun () ->
  let seen =
    Msts.Pool.map pool (fun _ -> Obs.Scope.current ()) (Array.init 8 Fun.id)
  in
  Array.iteri
    (fun i sc ->
      Alcotest.(check int) (Printf.sprintf "item %d ran under scope 7" i) 7 sc)
    seen;
  (* the worker resets its scope after each item *)
  let cleared =
    Obs.Scope.with_scope Obs.Scope.none (fun () ->
        Msts.Pool.map pool (fun _ -> Obs.Scope.current ()) (Array.init 4 Fun.id))
  in
  Array.iter
    (fun sc -> Alcotest.(check int) "scope cleared between batches" 0 sc)
    cleared

(* ---------- sinks under exceptions ---------- *)

let tee_isolates_failing_sinks () =
  let mem = Obs.Memory.create () in
  let deliveries = ref 0 in
  let failing _ =
    incr deliveries;
    failwith "sink died"
  in
  Obs.with_sink
    (Obs.tee [ failing; Obs.Memory.sink mem ])
    (fun () ->
      Obs.count "a";
      Obs.count "a");
  Alcotest.(check int) "failing sink was offered every event" 2 !deliveries;
  Alcotest.(check int) "surviving sink saw every event" 2
    (Obs.Memory.counter mem "a")

let streaming_no_partial_line_on_exception () =
  let path = Filename.temp_file "msts_stream_exn" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let st = Obs.Streaming.create ~flush_every:4 oc in
  (try
     Obs.with_sink (Obs.Streaming.sink st) (fun () ->
         for i = 1 to 10 do
           Obs.record "v" i
         done;
         Obs.span "dies" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Obs.Streaming.flush st;
  close_out oc;
  Alcotest.(check bool) "sink restored after the raise" false (Obs.enabled ());
  let text = In_channel.with_open_text path In_channel.input_all in
  Alcotest.(check bool) "file ends on a newline" true
    (text <> "" && text.[String.length text - 1] = '\n');
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  (* 10 records + span B and E (span re-raises after emitting its end) *)
  Alcotest.(check int) "every buffered event flushed whole" 12
    (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "partial JSONL line %S: %s" line msg)
    lines

(* ---------- Chrome trace of a real workload ---------- *)

(* Parse the exported trace and verify the structural invariants viewers
   rely on: B/E balanced per name (LIFO), timestamps non-decreasing. *)
let chrome_trace_execution_valid () =
  let mem = Obs.Memory.create () in
  Obs.with_sink (Obs.Memory.sink mem) (fun () ->
      let spider =
        Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 2) ] ]
      in
      let problem =
        Msts.Solve.problem ~tasks:6 (Msts.Platform_format.Spider_platform spider)
      in
      match Msts.Solve.solve problem with
      | Error msg -> Alcotest.fail msg
      | Ok plan -> ignore (Msts.Netsim.execute plan));
  let text = Json.to_string ~pretty:true (Obs.Memory.chrome_trace mem) in
  match Json.parse text with
  | Error msg -> Alcotest.failf "trace does not re-parse: %s" msg
  | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.List events) ->
          Alcotest.(check bool) "non-empty" true (List.length events > 0);
          let stacks : (string, int) Hashtbl.t = Hashtbl.create 16 in
          let last_ts = ref min_int in
          let opened = ref 0 in
          List.iter
            (fun ev ->
              let name =
                match Json.member "name" ev with
                | Some (Json.String s) -> s
                | _ -> Alcotest.fail "event without a name"
              in
              (match Json.member "ts" ev with
              | Some (Json.Int ts) ->
                  if ts < !last_ts then
                    Alcotest.failf "timestamps decrease at %s" name;
                  last_ts := ts
              | _ -> ());
              match Json.member "ph" ev with
              | Some (Json.String "B") ->
                  incr opened;
                  Hashtbl.replace stacks name
                    (1 + Option.value ~default:0 (Hashtbl.find_opt stacks name))
              | Some (Json.String "E") ->
                  let depth =
                    Option.value ~default:0 (Hashtbl.find_opt stacks name)
                  in
                  if depth <= 0 then Alcotest.failf "E without B for %s" name;
                  Hashtbl.replace stacks name (depth - 1)
              | Some (Json.String "C") | None -> ()
              | Some other ->
                  Alcotest.failf "unexpected phase %s" (Json.to_string other))
            events;
          Alcotest.(check bool) "spans were exported" true (!opened > 0);
          Hashtbl.iter
            (fun name depth ->
              if depth <> 0 then Alcotest.failf "unbalanced span %s" name)
            stacks
      | _ -> Alcotest.fail "traceEvents missing")

(* ---------- metric-name drift guard ---------- *)

(* A corpus touching every instrumented subsystem: chain and spider
   solves, the deadline variant, event-driven execution, the pull
   baseline, faults with replanning, and a pooled batch. *)
let corpus () =
  let chain_platform = Msts.Platform_format.Chain_platform figure2_chain in
  let spider =
    Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 2) ] ]
  in
  let spider_platform = Msts.Platform_format.Spider_platform spider in
  let solve problem =
    match Msts.Solve.solve problem with
    | Ok plan -> plan
    | Error msg -> Alcotest.fail msg
  in
  ignore (Msts.Netsim.execute (solve (Msts.Solve.problem ~tasks:5 chain_platform)));
  ignore (Msts.Netsim.execute (solve (Msts.Solve.problem ~tasks:6 spider_platform)));
  ignore (solve (Msts.Solve.problem ~deadline:30 chain_platform));
  ignore (Msts.Netsim.pull_policy spider ~tasks:4);
  let plan = Msts.Spider_algorithm.schedule_tasks spider 5 in
  let horizon = Msts.Spider_schedule.makespan plan in
  let trace = Msts.Fault.random (Msts.Prng.create 3) spider ~events:3 ~horizon in
  ignore (Msts.Replan.replay ~trace plan);
  ignore (Msts.Netsim.replay_under_faults ~trace plan);
  (let r = Msts.Trace.Recorder.create () in
   Msts.Trace.with_recorder r (fun () ->
       ignore (Msts.Netsim.execute (Msts.Plan.Spider plan)));
   ignore (Msts.Trace.check (Msts.Trace.recorded r));
   (* a dirty planned trace, so trace.violations is exercised too *)
   let dirty =
     Msts.Trace.of_events
       [
         { Msts.Trace.time = 0; seq = 0; task = 1;
           kind = Msts.Trace.Start (Msts.Trace.Transfer { leg = 1; hop = 1 }) };
         { Msts.Trace.time = 0; seq = 1; task = 2;
           kind = Msts.Trace.Start (Msts.Trace.Transfer { leg = 1; hop = 1 }) };
       ]
   in
   ignore (Msts.Trace.check dirty));
  ignore
    (Msts.Batch.run ~jobs:1 ~solve:Msts.Solve.solve
       [|
         Msts.Solve.problem ~tasks:4 chain_platform;
         Msts.Solve.problem ~tasks:4 chain_platform;
       |]);
  (* The online anytime scheduler: one session with arrivals, a deadline
     extension (displacements) and an adopted degradation (replan); a
     second session exercising rejection and freezing. *)
  (let o = Msts_online.Online.create figure2_chain ~deadline:40 in
   ignore (Msts_online.Online.submit o 6);
   (match Msts_online.Online.extend o ~deadline:60 with
   | Ok _ -> ()
   | Error msg -> Alcotest.fail msg);
   match Msts_online.Online.degrade o ~at:1 ~work_factor:2 with
   | Ok _ -> ()
   | Error msg -> Alcotest.fail msg);
  (let o = Msts_online.Online.create figure2_chain ~deadline:14 in
   ignore (Msts_online.Online.submit o 9) (* only 5 fit: rejections *);
   ignore (Msts_online.Online.advance o ~time:14) (* freeze them all *));
  (* The serve engine, under a deterministic clock so the queue-wait
     timeout path fires without sleeping: two requests age past the
     10us deadline, a third lands on a full queue (overloaded), a
     malformed frame exercises the rejection counters, and a final
     dispatch at a frozen clock solves live. *)
  let clock = ref 0 in
  Msts.Obs.set_clock (Some (fun () -> !clock));
  Fun.protect ~finally:(fun () -> Msts.Obs.set_clock None) @@ fun () ->
  let engine =
    Msts_serve.Engine.create
      {
        Msts_serve.Engine.default_config with
        cache_capacity = 4;
        queue_cap = 2;
        timeout_us = 10;
      }
  in
  let sink _ = () in
  let ask op =
    Msts_serve.Engine.handle_line engine ~reply:sink
      (Msts.Api.request_to_line { Msts.Api.id = None; trace = None; op })
  in
  let schedule = Msts.Api.Schedule (Msts.Solve.problem ~tasks:4 chain_platform) in
  ask schedule;
  ask schedule;
  ask schedule (* queue_cap 2: rejected as overloaded *);
  ask Msts.Api.Ping (* control fast path *);
  Msts_serve.Engine.handle_line engine ~reply:sink "{not json" (* bad frame *);
  clock := 1000;
  ignore (Msts_serve.Engine.dispatch engine) (* both queued solves time out *);
  ask schedule;
  ignore (Msts_serve.Engine.dispatch engine) (* live solve at wait 0 *);
  Msts_serve.Engine.shutdown engine

(* Backticked lowercase dotted tokens of docs/OBSERVABILITY.md (the test
   rule copies the file next to the runner). *)
let documented_names () =
  let text =
    In_channel.with_open_text "../docs/OBSERVABILITY.md" In_channel.input_all
  in
  let is_name s =
    s <> ""
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' || c = '.')
         s
  in
  String.split_on_char '`' text
  |> List.filteri (fun i _ -> i land 1 = 1)
  |> List.filter is_name |> List.sort_uniq compare

let emitted_names () =
  let mem = Obs.Memory.create () in
  Obs.with_sink (Obs.Memory.sink mem) corpus;
  List.map fst (Obs.Memory.counters mem)
  @ List.map fst (Obs.Memory.spans mem)
  @ List.map fst (Obs.Memory.histograms mem)
  |> List.sort_uniq compare

(* Every name the corpus emits must appear in docs/OBSERVABILITY.md, and a
   curated core set must both be emitted and be documented — so neither
   the code nor the catalogue can drift silently. *)
let metric_names_documented () =
  let documented = documented_names () in
  let emitted = emitted_names () in
  Alcotest.(check (list string))
    "emitted but undocumented names" []
    (List.filter (fun n -> not (List.mem n documented)) emitted);
  let core =
    [
      "solve";
      "chain.candidate_scans";
      "chain.tasks_placed";
      "chain.kernel.fast_placements";
      "spider.leg_reuses";
      "engine.events";
      "engine.event_gap_us";
      "netsim.execute";
      "netsim.executions";
      "netsim.transfers";
      "netsim.transfer_us";
      "spider.search_probes";
      "pool.requests";
      "pool.queue_wait_us";
      "serve.requests";
      "serve.accepted";
      "serve.rejected";
      "serve.timeouts";
      "serve.responses";
      "serve.errors";
      "serve.queue_wait_us";
      "serve.batch_size";
      "serve.inflight";
      "serve.fairness.deficit";
      "pool.completion_wait_us";
      "serve.request";
      "request.queue_wait_us";
      "request.solve_us";
      "request.encode_us";
      "trace.events";
      "trace.segments_checked";
      "trace.violations";
      "trace.check";
      "online.sessions";
      "online.arrivals";
      "online.placed";
      "online.rejected";
      "online.frozen";
      "online.displaced";
      "online.extends";
      "online.replans";
      "online.place_us";
    ]
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " emitted by the corpus") true
        (List.mem name emitted);
      Alcotest.(check bool) (name ^ " documented") true
        (List.mem name documented))
    core

(* ---------- Prometheus text exposition ---------- *)

let prometheus_mangle () =
  Alcotest.(check string)
    "dots and dashes become underscores" "msts_serve_queue_wait_us"
    (Obs.Prometheus.mangle "serve.queue-wait.us");
  Alcotest.(check string)
    "already-clean names only gain the prefix" "msts_requests"
    (Obs.Prometheus.mangle "requests")

let prometheus_render_wellformed () =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.add h) [ 1; 2; 3; 1000 ];
  let text =
    Obs.Prometheus.render
      ~counters:[ ("serve.requests", 5) ]
      ~gauges:[ ("serve.queue_depth", 2) ]
      ~histograms:[ ("request.solve_us", h) ]
      ()
  in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  let has line = List.mem line lines in
  Alcotest.(check bool) "counter TYPE line" true
    (has "# TYPE msts_serve_requests_total counter");
  Alcotest.(check bool) "counter sample" true (has "msts_serve_requests_total 5");
  Alcotest.(check bool) "gauge TYPE line" true
    (has "# TYPE msts_serve_queue_depth gauge");
  Alcotest.(check bool) "gauge sample" true (has "msts_serve_queue_depth 2");
  Alcotest.(check bool) "histogram TYPE line" true
    (has "# TYPE msts_request_solve_us histogram");
  Alcotest.(check bool) "every family has a HELP line" true
    (List.exists
       (String.starts_with ~prefix:"# HELP msts_request_solve_us ")
       lines);
  (* cumulative buckets: non-decreasing, closed by +Inf = count *)
  let bucket_counts =
    List.filter_map
      (fun line ->
        if String.starts_with ~prefix:"msts_request_solve_us_bucket{le=" line
        then
          match String.rindex_opt line ' ' with
          | Some sp ->
              Some
                (int_of_string
                   (String.sub line (sp + 1) (String.length line - sp - 1)))
          | None -> None
        else None)
      lines
  in
  Alcotest.(check bool) "at least one bucket plus +Inf" true
    (List.length bucket_counts >= 2);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative buckets are monotone" true
    (monotone bucket_counts);
  Alcotest.(check bool) "+Inf bucket equals the count" true
    (has "msts_request_solve_us_bucket{le=\"+Inf\"} 4");
  Alcotest.(check bool) "sum line" true (has "msts_request_solve_us_sum 1006");
  Alcotest.(check bool) "count line" true (has "msts_request_solve_us_count 4")

let prometheus_of_memory () =
  let mem = Obs.Memory.create () in
  Obs.with_sink (Obs.Memory.sink mem) (fun () ->
      Obs.count ~n:3 "hits";
      Obs.record "lat" 7);
  let text = Obs.Prometheus.of_memory mem in
  Alcotest.(check bool) "counter family present" true
    (contains text "msts_hits_total 3");
  Alcotest.(check bool) "histogram family present" true
    (contains text "msts_lat_count 1")

(* ---------- the shared JSON encoder ---------- *)

let json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\nline");
        ("i", Json.Int (-42));
        ("f", Json.Float 31.3);
        ("b", Json.Bool true);
        ("null", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int 2 ]);
      ]
  in
  List.iter
    (fun pretty ->
      match Json.parse (Json.to_string ~pretty doc) with
      | Ok parsed ->
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip pretty=%b" pretty)
            true (parsed = doc)
      | Error msg -> Alcotest.failf "roundtrip failed: %s" msg)
    [ false; true ]

let json_rejects_garbage () =
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated" ]

let suites =
  [
    ( "obs.spans",
      [
        case "nesting and totals" span_nesting;
        case "end emitted on exception" span_survives_exception;
        case "returns the body's value" span_returns_value;
      ] );
    ( "obs.counters",
      [
        case "totals and lookup" counter_totals;
        case "table rows" counter_rows_match;
      ] );
    ( "obs.sink",
      [
        case "null sink is the default" null_sink_is_default;
        case "outputs identical with and without a sink"
          null_sink_identical_outputs;
        case "with_sink restores on exceptions" with_sink_restores;
      ] );
    ( "obs.histograms",
      [
        case "small values are exact" hist_exact_small;
        case "merge combines buckets and extremes" hist_merge;
        to_alcotest hist_quantile_error_bound;
        case "record feeds memory histograms" record_feeds_histograms;
        case "span durations feed histograms" span_duration_histograms;
      ] );
    ( "obs.bounded",
      [
        case "raw log capped, aggregates exact" memory_cap_bounds_log;
        case "streaming sink bounded buffer + JSONL" streaming_sink_bounded;
        case "streaming rejects flush_every < 1" streaming_rejects_bad_flush_every;
        case "ring keeps the newest N" ring_keeps_last_n;
        case "tee fans out to several sinks" tee_fans_out;
        case "tee isolates a failing sink" tee_isolates_failing_sinks;
        case "streaming flushes whole lines despite exceptions"
          streaming_no_partial_line_on_exception;
      ] );
    ( "obs.scopes",
      [
        case "per-scope aggregation next to globals" scope_attribution;
        case "scope id stamped into event JSON" scope_stamped_in_json;
        case "with_scope nests and restores on exceptions"
          scope_nesting_and_exceptions;
        case "per-scope table is FIFO-bounded" scope_table_bounded;
        case "fresh scopes are distinct" scope_fresh_monotone;
        case "disabled path allocates nothing"
          disabled_scope_path_allocation_free;
        case "scopes ride onto pool workers" scope_propagates_to_pool_workers;
      ] );
    ( "obs.prometheus",
      [
        case "name mangling" prometheus_mangle;
        case "render emits HELP/TYPE and monotone cumulative buckets"
          prometheus_render_wellformed;
        case "of_memory renders both families" prometheus_of_memory;
      ] );
    ( "obs.export",
      [
        case "chrome trace is well-formed" chrome_trace_wellformed;
        case "chrome trace of an execution validates" chrome_trace_execution_valid;
        case "json roundtrip" json_roundtrip;
        case "json rejects garbage" json_rejects_garbage;
      ] );
    ( "obs.drift",
      [ case "metric names match docs/OBSERVABILITY.md" metric_names_documented ] );
  ]
