(* Tests for the Msts.Solve facade: the one-call entry point must agree
   exactly with the underlying per-shape algorithms, and Netsim.execute
   must accept either plan shape. *)

open Helpers
module Solve = Msts.Solve
module Plan = Msts.Plan

let fig2_platform = Msts.Platform_format.Chain_platform figure2_chain

let spider_fixture () =
  Msts.Spider.make
    [|
      Msts.Chain.of_pairs [ (2, 3); (3, 5) ];
      Msts.Chain.of_pairs [ (1, 4) ];
      Msts.Chain.of_pairs [ (3, 2); (2, 2) ];
    |]

let chain_tasks_agrees () =
  match Solve.solve (Solve.problem ~tasks:5 fig2_platform) with
  | Ok (Plan.Chain sched) ->
      let direct = Msts.Chain_algorithm.schedule figure2_chain 5 in
      Alcotest.(check string) "same schedule"
        (Msts.Schedule.to_string direct)
        (Msts.Schedule.to_string sched);
      Alcotest.(check int) "plan makespan" (Msts.Schedule.makespan direct)
        (Plan.makespan (Plan.Chain sched))
  | Ok (Plan.Spider _) -> Alcotest.fail "chain problem produced a spider plan"
  | Error msg -> Alcotest.fail msg

let chain_deadline_agrees () =
  match Solve.solve (Solve.problem ~deadline:20 fig2_platform) with
  | Ok (Plan.Chain sched) ->
      let direct = Msts.Chain_deadline.schedule figure2_chain ~deadline:20 in
      Alcotest.(check int) "same task count"
        (Msts.Schedule.task_count direct)
        (Plan.task_count (Plan.Chain sched))
  | Ok (Plan.Spider _) -> Alcotest.fail "chain problem produced a spider plan"
  | Error msg -> Alcotest.fail msg

let spider_tasks_agrees () =
  let spider = spider_fixture () in
  let platform = Msts.Platform_format.Spider_platform spider in
  match Solve.solve (Solve.problem ~tasks:7 platform) with
  | Ok (Plan.Spider sched) ->
      let direct = Msts.Spider_algorithm.schedule_tasks spider 7 in
      Alcotest.(check int) "same makespan"
        (Msts.Spider_schedule.makespan direct)
        (Msts.Spider_schedule.makespan sched)
  | Ok (Plan.Chain _) -> Alcotest.fail "spider problem produced a chain plan"
  | Error msg -> Alcotest.fail msg

let fork_is_promoted () =
  let fork = Msts.Fork.of_pairs [ (2, 3); (1, 4); (3, 2) ] in
  let platform = Msts.Platform_format.Fork_platform fork in
  match Solve.solve (Solve.problem ~tasks:6 platform) with
  | Ok (Plan.Spider sched) ->
      let direct =
        Msts.Spider_algorithm.schedule_tasks (Msts.Spider.of_fork fork) 6
      in
      Alcotest.(check int) "fork promoted to one-node legs"
        (Msts.Spider_schedule.makespan direct)
        (Msts.Spider_schedule.makespan sched)
  | Ok (Plan.Chain _) -> Alcotest.fail "fork should become a spider plan"
  | Error msg -> Alcotest.fail msg

let budgeted_deadline () =
  (* tasks AND deadline: fill the deadline but never exceed the budget *)
  match Solve.solve (Solve.problem ~tasks:2 ~deadline:50 fig2_platform) with
  | Ok plan ->
      Alcotest.(check int) "budget caps the count" 2 (Plan.task_count plan)
  | Error msg -> Alcotest.fail msg

let errors_are_reported () =
  let check_error name problem =
    match Solve.solve problem with
    | Ok _ -> Alcotest.failf "%s should be rejected" name
    | Error _ -> ()
  in
  check_error "no objective" (Solve.problem fig2_platform);
  check_error "negative tasks" (Solve.problem ~tasks:(-1) fig2_platform);
  check_error "negative deadline" (Solve.problem ~deadline:(-3) fig2_platform);
  let branchy =
    (* a node below the master with two children: not a spider *)
    let leaf = Msts.Tree.node ~latency:1 ~work:1 () in
    Msts.Tree.make
      [ Msts.Tree.node ~latency:1 ~work:1 ~children:[ leaf; leaf ] () ]
  in
  check_error "branching tree"
    (Solve.problem ~tasks:3 (Msts.Platform_format.Tree_platform branchy));
  Alcotest.check_raises "solve_exn raises"
    (Invalid_argument "Solve.solve: nothing to solve: set a task count or a deadline")
    (fun () -> ignore (Solve.solve_exn (Solve.problem fig2_platform)))

let plan_check_dispatches () =
  let chain_plan = Solve.solve_exn (Solve.problem ~tasks:4 fig2_platform) in
  Alcotest.(check (list string)) "chain plan feasible" [] (Plan.check chain_plan);
  let spider_plan =
    Solve.solve_exn
      (Solve.problem ~tasks:4
         (Msts.Platform_format.Spider_platform (spider_fixture ())))
  in
  Alcotest.(check (list string)) "spider plan feasible" [] (Plan.check spider_plan)

(* ---------- the unified executor ---------- *)

let execute_accepts_both_shapes () =
  let chain_plan = Solve.solve_exn (Solve.problem ~tasks:4 fig2_platform) in
  let report = Msts.Netsim.execute chain_plan in
  Alcotest.(check int) "chain plan replays exactly"
    (Plan.makespan chain_plan)
    report.Msts.Netsim.realized_makespan;
  let spider_plan =
    Solve.solve_exn
      (Solve.problem ~tasks:5
         (Msts.Platform_format.Spider_platform (spider_fixture ())))
  in
  let report = Msts.Netsim.execute spider_plan in
  Alcotest.(check int) "spider plan replays exactly"
    (Plan.makespan spider_plan)
    report.Msts.Netsim.realized_makespan

(* A chain plan and its explicit one-leg spider promotion are the same
   execution — the guarantee the deprecated [execute_plan] wrappers leaned
   on before their removal. *)
let chain_promotion_executes_identically () =
  let chain_sched = Msts.Chain_algorithm.schedule figure2_chain 4 in
  let via_chain = Msts.Netsim.execute (Plan.Chain chain_sched) in
  let via_spider =
    Msts.Netsim.execute
      (Plan.Spider (Msts.Spider_schedule.of_chain_schedule chain_sched))
  in
  Alcotest.(check int) "execute (Chain _) = execute (Spider (promote _))"
    via_spider.Msts.Netsim.realized_makespan
    via_chain.Msts.Netsim.realized_makespan;
  Alcotest.(check bool) "same realised schedule" true
    (Msts.Spider_schedule.equal via_chain.Msts.Netsim.realized
       via_spider.Msts.Netsim.realized)

let facade_matches_direct_stress =
  to_alcotest
    (QCheck.Test.make ~count:40
       ~name:"facade chain solve equals direct algorithm"
       (chain_with_n_arb ())
       (fun (chain, n) ->
         let direct = Msts.Chain_algorithm.schedule chain n in
         match
           Solve.solve
             (Solve.problem ~tasks:n (Msts.Platform_format.Chain_platform chain))
         with
         | Ok plan -> Plan.makespan plan = Msts.Schedule.makespan direct
         | Error _ -> false))

let suites =
  [
    ( "solve.facade",
      [
        case "chain tasks" chain_tasks_agrees;
        case "chain deadline" chain_deadline_agrees;
        case "spider tasks" spider_tasks_agrees;
        case "fork promotion" fork_is_promoted;
        case "budgeted deadline" budgeted_deadline;
        case "error reporting" errors_are_reported;
        case "plan feasibility dispatch" plan_check_dispatches;
        facade_matches_direct_stress;
      ] );
    ( "solve.execute",
      [
        case "unified executor accepts both shapes" execute_accepts_both_shapes;
        case "chain promotion executes identically"
          chain_promotion_executes_identically;
      ] );
  ]
