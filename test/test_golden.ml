(* Golden-output tests: exact renderings of the paper's worked example.

   These pin the user-visible artefacts byte for byte, so accidental
   changes to formatting (or, worse, to the schedule itself) show up as a
   readable diff. *)

open Helpers

let fig2 () = Msts.Chain_algorithm.schedule figure2_chain 5

let golden_gantt () =
  let expected =
    String.concat "\n"
      [
        "        0         10  ";
        "link 1 |11223344.55...|";
        "proc 1 |..111222444555|";
        "link 2 |......333.....|";
        "proc 2 |.........33333|";
      ]
  in
  Alcotest.(check string) "figure-2 gantt" expected (Msts.Gantt.render ~width:70 (fig2 ()))

let golden_schedule_text () =
  let expected =
    String.concat "\n"
      [
        "schedule on chain[(c=2,w=3); (c=3,w=5)] (makespan 14):";
        "  task 1 -> P1, start 2, comms {0}";
        "  task 2 -> P1, start 5, comms {2}";
        "  task 3 -> P2, start 9, comms {4; 6}";
        "  task 4 -> P1, start 8, comms {6}";
        "  task 5 -> P1, start 11, comms {9}";
        "";
      ]
  in
  Alcotest.(check string) "figure-2 listing" expected (Msts.Schedule.to_string (fig2 ()))

let golden_serialisation () =
  let expected =
    String.concat "\n"
      [
        "chain-schedule";
        "task 1 2 0";
        "task 1 5 2";
        "task 2 9 4 6";
        "task 1 8 6";
        "task 1 11 9";
        "";
      ]
  in
  Alcotest.(check string) "figure-2 plan file" expected
    (Msts.Serial.schedule_to_string (fig2 ()))

let golden_platform_file () =
  Alcotest.(check string) "figure-2 platform file" "chain\n2 3\n3 5\n"
    (Msts.Platform_format.platform_to_string
       (Msts.Platform_format.Chain_platform figure2_chain))

let golden_trace_fragment () =
  (* the first placement of the n=5 construction, exactly as narrated *)
  let text = Msts.Chain_trace.render (Msts.Chain_trace.run figure2_chain 5) in
  let expected_head =
    String.concat "\n"
      [
        "Backward construction on chain[(c=2,w=3); (c=3,w=5)], n = 5, horizon T-inf = 17";
        "";
        "Placing task 5:";
        "  candidate for P1: {12}   <- greatest (Def. 3)";
        "  candidate for P2: {7; 9}";
        "  => P(5) = 1, T(5) = 14 (before shift)";
      ]
  in
  let head = String.sub text 0 (String.length expected_head) in
  Alcotest.(check string) "trace head" expected_head head

let golden_spider_gantt () =
  (* two-leg spider over the Figure-2 chain; global task ids on every row *)
  let spider =
    Msts.Spider.of_legs [ figure2_chain; Msts.Chain.of_pairs [ (1, 4) ] ]
  in
  let sched = Msts.Spider_algorithm.schedule_tasks spider 8 in
  let expected =
    String.concat "\n"
      [
        "              0         10    ";
        "master port  |1223345566788...|";
        "leg 1 link 1 |.2233.5566.88...|";
        "leg 1 proc 1 |....222333666888|";
        "leg 1 link 2 |........555.....|";
        "leg 1 proc 2 |...........55555|";
        "leg 2 link 1 |1....4....7.....|";
        "leg 2 proc 1 |....111144447777|";
      ]
  in
  Alcotest.(check string) "spider gantt" expected
    (Msts.Gantt.render_spider ~width:60 sched)

let suites =
  [
    ( "golden.figure2",
      [
        case "gantt chart" golden_gantt;
        case "schedule listing" golden_schedule_text;
        case "plan serialisation" golden_serialisation;
        case "platform file" golden_platform_file;
        case "trace narration" golden_trace_fragment;
        case "spider gantt with global task ids" golden_spider_gantt;
      ] );
  ]
