(* Aggregate all suites into one Alcotest run. *)
let () =
  Alcotest.run "msts"
    (List.concat
       [
         Test_util.suites;
         Test_platform.suites;
         Test_schedule.suites;
         Test_chain.suites;
         Test_fork.suites;
         Test_spider.suites;
         Test_baseline.suites;
         Test_sim.suites;
         Test_metrics.suites;
         Test_incremental.suites;
         Test_kernel.suites;
         Test_fuzz.suites;
         Test_analysis.suites;
         Test_properties.suites;
         Test_buffers.suites;
         Test_golden.suites;
         Test_robustness.suites;
         Test_faults.suites;
         Test_local_search.suites;
         Test_spider_trace.suites;
         Test_spider_analysis.suites;
         Test_parsers_fuzz.suites;
         Test_tree.suites;
         Test_obs.suites;
         Test_trace.suites;
         Test_report.suites;
         Test_solve.suites;
         Test_batch.suites;
         Test_api.suites;
         Test_serve.suites;
         Test_integration.suites;
         Test_online.suites;
       ])
