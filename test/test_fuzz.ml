(* Mutation fuzzing of the feasibility checker.

   The checker is the oracle everything else is audited against, so it
   gets its own oracle here: a deliberately naive O(n²) transcription of
   Definition 1's four properties, written independently of the library's
   sorted-interval implementation.  Random mutations of feasible schedules
   must get the same verdict from both. *)

open Helpers

module Gen = QCheck.Gen

(* ---------- the naive oracle ---------- *)

let naive_feasible chain (entries : Msts.Schedule.entry array) =
  let c = Msts.Chain.latency chain and w = Msts.Chain.work chain in
  let n = Array.length entries in
  let ok = ref true in
  Array.iter
    (fun (e : Msts.Schedule.entry) ->
      (* property 1 *)
      for k = 2 to e.proc do
        if e.comms.(k - 2) + c (k - 1) > e.comms.(k - 1) then ok := false
      done;
      (* property 2 *)
      if e.comms.(e.proc - 1) + c e.proc > e.start then ok := false)
    entries;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let a = entries.(i) and b = entries.(j) in
        (* property 3 *)
        if a.proc = b.proc && abs (a.start - b.start) < w a.proc then ok := false;
        (* property 4 *)
        for k = 1 to min a.proc b.proc do
          if abs (a.comms.(k - 1) - b.comms.(k - 1)) < c k then ok := false
        done
      end
    done
  done;
  !ok

(* ---------- mutations ---------- *)

type mutation =
  | Nudge_start of int * int (* task index (0-based), delta *)
  | Nudge_comm of int * int * int (* task, hop (0-based), delta *)
  | Swap_starts of int * int

let mutation_gen n =
  Gen.oneof
    [
      Gen.map2 (fun t d -> Nudge_start (t, d)) (Gen.int_range 0 (n - 1)) (Gen.int_range (-4) 4);
      Gen.map3
        (fun t hop d -> Nudge_comm (t, hop, d))
        (Gen.int_range 0 (n - 1))
        (Gen.int_range 0 5)
        (Gen.int_range (-4) 4);
      Gen.map2 (fun a b -> Swap_starts (a, b)) (Gen.int_range 0 (n - 1)) (Gen.int_range 0 (n - 1));
    ]

let apply_mutation entries mutation =
  let entries = Array.map (fun (e : Msts.Schedule.entry) -> { e with comms = Array.copy e.comms }) entries in
  (match mutation with
  | Nudge_start (t, d) -> entries.(t) <- { (entries.(t)) with start = entries.(t).start + d }
  | Nudge_comm (t, hop, d) ->
      let e = entries.(t) in
      let hop = hop mod Array.length e.comms in
      e.comms.(hop) <- e.comms.(hop) + d
  | Swap_starts (a, b) ->
      let sa = entries.(a).start and sb = entries.(b).start in
      entries.(a) <- { (entries.(a)) with start = sb };
      entries.(b) <- { (entries.(b)) with start = sa });
  entries

let fuzz_case_gen =
  Gen.(
    chain_gen ~max_p:4 () >>= fun chain ->
    int_range 1 10 >>= fun n ->
    mutation_gen n >>= fun mutation -> return (chain, n, mutation))

let fuzz_arb =
  QCheck.make
    ~print:(fun (chain, n, _) ->
      Printf.sprintf "%s, n=%d (mutated)" (Msts.Chain.to_string chain) n)
    fuzz_case_gen

let checker_agrees_with_naive_oracle =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:1000
       ~name:"checker verdicts match the naive Definition-1 oracle under mutation"
       fuzz_arb
       (fun (chain, n, mutation) ->
         let base = Msts.Schedule.entries (Msts.Chain_algorithm.schedule chain n) in
         let mutated = apply_mutation base mutation in
         let sched = Msts.Schedule.make chain mutated in
         Msts.Feasibility.is_feasible sched = naive_feasible chain mutated))

let checker_agrees_on_heuristic_schedules =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"checker verdicts match the naive oracle on heuristic schedules"
       (chain_with_n_arb ~max_p:4 ~max_n:10 ())
       (fun (chain, n) ->
         List.for_all
           (fun policy ->
             let s = Msts.List_sched.chain policy chain n in
             Msts.Feasibility.is_feasible s
             = naive_feasible chain (Msts.Schedule.entries s))
           Msts.List_sched.all_chain_policies))

(* growing a comm/start never repairs anything the paper's order relies on:
   specifically, shifting a WHOLE task later by less than the gap to its
   successor keeps verdicts stable only sometimes — so instead we check a
   guaranteed metamorphic property: translating the whole schedule in time
   never changes the verdict. *)
let translation_invariance =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"feasibility is invariant under time translation"
       (QCheck.make
          ~print:(fun ((chain, n, _), d) ->
            Printf.sprintf "%s, n=%d, shift=%d" (Msts.Chain.to_string chain) n d)
          Gen.(pair fuzz_case_gen (int_range (-20) 20)))
       (fun ((chain, n, mutation), d) ->
         let base = Msts.Schedule.entries (Msts.Chain_algorithm.schedule chain n) in
         let mutated = Msts.Schedule.make chain (apply_mutation base mutation) in
         Msts.Feasibility.is_feasible mutated
         = Msts.Feasibility.is_feasible (Msts.Schedule.shift d mutated)))

(* any strict compaction of a feasible schedule that the simulator produces
   must also satisfy the checker: cross-validating Netsim against
   Feasibility on mutated-then-executed plans *)
let executed_plans_always_feasible =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"eager re-execution of any feasible mutation stays feasible"
       fuzz_arb
       (fun (chain, n, mutation) ->
         let base = Msts.Schedule.entries (Msts.Chain_algorithm.schedule chain n) in
         let mutated = Msts.Schedule.make chain (apply_mutation base mutation) in
         (* only feasible non-negative mutants can be executed *)
         QCheck.assume (Msts.Feasibility.is_feasible ~require_nonnegative:true mutated);
         let report = Msts.Netsim.execute (Msts.Plan.Chain mutated) in
         Msts.Spider_schedule.is_feasible ~require_nonnegative:true
           report.Msts.Netsim.realized
         && report.Msts.Netsim.realized_makespan <= report.Msts.Netsim.planned_makespan))

let suites =
  [
    ( "fuzz.checker",
      [
        checker_agrees_with_naive_oracle;
        checker_agrees_on_heuristic_schedules;
        translation_invariance;
        executed_plans_always_feasible;
      ] );
  ]
