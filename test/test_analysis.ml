(* Tests for the chain-usage analysis module. *)

open Helpers

let counts_sum_to_n =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"per-processor counts sum to n"
       (chain_with_n_arb ~max_p:5 ~max_n:20 ())
       (fun (chain, n) ->
         Msts.Intx.sum (Msts.Chain_analysis.tasks_per_processor chain n) = n))

let counts_match_schedule =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"counts agree with the schedule's task lists"
       (chain_with_n_arb ~max_p:5 ~max_n:15 ())
       (fun (chain, n) ->
         let counts = Msts.Chain_analysis.tasks_per_processor chain n in
         let sched = Msts.Chain_algorithm.schedule chain n in
         List.for_all
           (fun k -> counts.(k - 1) = List.length (Msts.Schedule.tasks_on sched k))
           (Msts.Intx.range 1 (Msts.Chain.length chain))))

let figure2_profile () =
  (* measured once, pinned: P2 activates at n=3; at n=5 the split is 4/1 *)
  Alcotest.(check (option int)) "P2 activation" (Some 3)
    (Msts.Chain_analysis.activation_threshold figure2_chain ~k:2 ~max_n:20);
  Alcotest.(check (list int)) "n=5 split" [ 4; 1 ]
    (Array.to_list (Msts.Chain_analysis.tasks_per_processor figure2_chain 5));
  Alcotest.(check int) "depth at n=2" 1 (Msts.Chain_analysis.used_depth figure2_chain 2);
  Alcotest.(check int) "depth at n=3" 2 (Msts.Chain_analysis.used_depth figure2_chain 3);
  Alcotest.(check int) "depth at n=0" 0 (Msts.Chain_analysis.used_depth figure2_chain 0)

let activation_none_when_useless () =
  (* second processor behind a hopeless link never activates in range *)
  let chain = Msts.Chain.of_pairs [ (1, 2); (50, 1) ] in
  Alcotest.(check (option int)) "never used" None
    (Msts.Chain_analysis.activation_threshold chain ~k:2 ~max_n:15)

let activation_bad_k () =
  Alcotest.check_raises "k out of range"
    (Invalid_argument "Analysis.activation_threshold: processor out of range")
    (fun () ->
      ignore (Msts.Chain_analysis.activation_threshold figure2_chain ~k:3 ~max_n:5))

let efficiency_bounds =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"efficiency lies in (0, 1] and grows with n"
       (chain_arb ~max_p:4 ~max_val:8 ())
       (fun chain ->
         let e20 = Msts.Chain_analysis.efficiency chain 20 in
         let e200 = Msts.Chain_analysis.efficiency chain 200 in
         e20 > 0.0 && e200 <= 1.0 +. 1e-9 && e200 >= e20 -. 0.05))

let efficiency_approaches_one () =
  Alcotest.(check bool) "n=2000 within 1% of the rate" true
    (Msts.Chain_analysis.efficiency figure2_chain 2000 > 0.99)

let depth_profile_shape () =
  let profile = Msts.Chain_analysis.depth_profile figure2_chain ~ns:[ 1; 3; 5 ] in
  Alcotest.(check int) "three rows" 3 (List.length profile);
  List.iter
    (fun (n, counts) -> Alcotest.(check int) "row sums" n (Msts.Intx.sum counts))
    profile

let suites =
  [
    ( "chain.analysis",
      [
        counts_sum_to_n;
        counts_match_schedule;
        case "figure-2 activation profile" figure2_profile;
        case "hopeless processors never activate" activation_none_when_useless;
        case "bad processor index" activation_bad_k;
        efficiency_bounds;
        case "efficiency approaches 1" efficiency_approaches_one;
        case "depth profile" depth_profile_shape;
      ] );
  ]
