(* Tests for Msts.Trace: the segment algebra (split/concat/project), the
   compositional invariant checker, a differential validation of the trace
   checker against Feasibility on hundreds of random plans, and the fuzz
   harness that drives random fault/replan interleavings through the
   simulator while checking every invariant on the recorded trace.  See
   docs/VERIFICATION.md for the catalogue being exercised here. *)

open Helpers
module Trace = Msts.Trace

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let spider_fixture () =
  Msts.Spider.make
    [|
      Msts.Chain.of_pairs [ (2, 3); (3, 5) ];
      Msts.Chain.of_pairs [ (1, 4) ];
      Msts.Chain.of_pairs [ (3, 2); (2, 2) ];
    |]

(* Record the trace of one simulator run. *)
let record f =
  let r = Trace.Recorder.create () in
  let result = Trace.with_recorder r f in
  (result, Trace.recorded r)

let fail_violations tr = function
  | [] -> ()
  | viols -> Alcotest.failf "unexpected violations:\n%s" (Trace.report tr viols)

(* ---------- algebra ---------- *)

let ev ~time ~seq ~task kind = { Trace.time; seq; task; kind }
let port_op = Trace.Transfer { leg = 1; hop = 1 }
let cpu_op = Trace.Compute { leg = 1; depth = 1 }

let canonical_order () =
  (* out of emission order on purpose: of_events must sort by time, then
     finishes-before-starts, then seq *)
  let tr =
    Trace.of_events
      [
        ev ~time:5 ~seq:0 ~task:2 (Trace.Start port_op);
        ev ~time:5 ~seq:1 ~task:1 (Trace.Finish cpu_op);
        ev ~time:3 ~seq:2 ~task:1 (Trace.Start cpu_op);
      ]
  in
  match Trace.events tr with
  | [ a; b; c ] ->
      Alcotest.(check int) "earliest event first" 3 a.Trace.time;
      Alcotest.(check bool) "finish precedes start at the same instant" true
        (match b.Trace.kind with Trace.Finish _ -> true | _ -> false);
      Alcotest.(check int) "start at the shared instant comes last" 5 c.Trace.time;
      Alcotest.(check (option (pair int int))) "time span" (Some (3, 5))
        (Trace.time_span tr)
  | _ -> Alcotest.fail "three events in, not three events out"

let split_concat_roundtrip () =
  let plan = Msts.Chain_algorithm.schedule figure2_chain 5 in
  let _, tr =
    record (fun () -> Msts.Netsim.execute (Msts.Plan.Chain plan))
  in
  Alcotest.(check bool) "execution recorded events" true (Trace.length tr > 0);
  let lo, hi =
    match Trace.time_span tr with
    | Some s -> s
    | None -> Alcotest.fail "recorded trace is empty"
  in
  List.iter
    (fun at ->
      let a, b = Trace.split tr ~at in
      Alcotest.(check int)
        (Printf.sprintf "split at %d loses nothing" at)
        (Trace.length tr)
        (Trace.length a + Trace.length b);
      let glued = Trace.concat a b in
      Alcotest.(check string)
        (Printf.sprintf "concat undoes split at %d" at)
        (Trace.to_string tr) (Trace.to_string glued))
    [ lo; (lo + hi) / 2; hi; hi + 1 ]

let concat_rejects_overlap () =
  let a =
    Trace.of_events
      [
        ev ~time:0 ~seq:0 ~task:1 (Trace.Start port_op);
        ev ~time:10 ~seq:1 ~task:1 (Trace.Finish port_op);
      ]
  in
  let b = Trace.of_events [ ev ~time:5 ~seq:2 ~task:2 (Trace.Start port_op) ] in
  (match Trace.concat a b with
  | _ -> Alcotest.fail "overlapping concat accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "error names the function" true
        (String.starts_with ~prefix:"Msts.Trace.concat" msg));
  (* sharing the boundary instant is fine: busy intervals are half-open *)
  let c = Trace.of_events [ ev ~time:10 ~seq:3 ~task:2 (Trace.Start port_op) ] in
  Alcotest.(check int) "boundary-sharing concat" 3 (Trace.length (Trace.concat a c))

let project_partitions () =
  let spider = spider_fixture () in
  let plan = Msts.Spider_algorithm.schedule_tasks spider 6 in
  let tr = Trace.of_spider_schedule plan in
  let total = Trace.length tr in
  Alcotest.(check bool) "planned trace nonempty" true (total > 0);
  let port = Trace.project tr (Trace.On_resource Trace.Port) in
  Alcotest.(check bool) "port projection nonempty" true (Trace.length port > 0);
  List.iter
    (fun e ->
      match e.Trace.kind with
      | Trace.Start (Trace.Transfer { hop = 1; _ })
      | Trace.Finish (Trace.Transfer { hop = 1; _ }) -> ()
      | _ ->
          Alcotest.failf "non-port event in the port projection: %s"
            (Trace.event_to_string e))
    (Trace.events port);
  let sum_lengths selectors =
    List.fold_left (fun acc s -> acc + Trace.length (Trace.project tr s)) 0 selectors
  in
  let legs = List.init (Msts.Spider.legs spider) (fun i -> Trace.On_leg (i + 1)) in
  Alcotest.(check int) "leg projections partition the trace" total
    (sum_lengths legs);
  let tasks =
    List.sort_uniq compare (List.map (fun e -> e.Trace.task) (Trace.events tr))
  in
  Alcotest.(check int) "task projections partition the trace" total
    (sum_lengths (List.map (fun t -> Trace.On_task t) tasks))

(* Two tasks on distinct one-node legs, both emitted through the master's
   port at time 0: the minimal one-port violation. *)
let overlapping_port_plan () =
  let spider =
    Msts.Spider.make
      [| Msts.Chain.of_pairs [ (2, 3) ]; Msts.Chain.of_pairs [ (3, 4) ] |]
  in
  let entry leg start c0 =
    {
      Msts.Spider_schedule.address = { Msts.Spider.leg; depth = 1 };
      start;
      comms = [| c0 |];
    }
  in
  Msts.Spider_schedule.make spider [| entry 1 2 0; entry 2 3 0 |]

(* Checking a whole trace and checking its slices with one threaded state
   must agree — even slice by slice, and even on a dirty trace. *)
let segment_composition () =
  let tr = Trace.of_spider_schedule (overlapping_port_plan ()) in
  let whole = Trace.check tr in
  Alcotest.(check bool) "fixture is dirty" true (whole <> []);
  let lo, hi = Option.get (Trace.time_span tr) in
  let st = Trace.Check.strict () in
  let threaded = ref [] in
  let rest = ref tr in
  for at = lo + 1 to hi do
    let a, b = Trace.split !rest ~at in
    threaded := !threaded @ Trace.Check.segment st a;
    rest := b
  done;
  threaded := !threaded @ Trace.Check.segment st !rest;
  Alcotest.(check bool) "slice-threaded check equals whole-trace check" true
    (!threaded = whole)

(* Cutting a clean trace anywhere yields segments that are clean in
   isolation: Check.unknown infers the mid-operation state at first contact
   instead of inventing violations. *)
let clean_cuts_stay_clean () =
  let spider = spider_fixture () in
  let plan = Msts.Spider_algorithm.schedule_tasks spider 6 in
  let _, tr =
    record (fun () -> Msts.Netsim.execute (Msts.Plan.Spider plan))
  in
  fail_violations tr (Trace.check ~require_nonnegative:true tr);
  let lo, hi = Option.get (Trace.time_span tr) in
  List.iter
    (fun at ->
      let a, b = Trace.split tr ~at in
      fail_violations a (Trace.check_segment a);
      fail_violations b (Trace.check_segment b))
    [ lo; (lo + hi) / 2; (lo + (3 * hi)) / 4; hi ]

(* ---------- invariants ---------- *)

let planned_figure2_clean () =
  let tr = Trace.of_chain_schedule (Msts.Chain_algorithm.schedule figure2_chain 7) in
  fail_violations tr (Trace.check ~require_nonnegative:true tr)

let recorded_execution_clean () =
  let spider = spider_fixture () in
  let plan = Msts.Spider_algorithm.schedule_tasks spider 6 in
  let r = Trace.Recorder.create () in
  let report =
    Trace.with_recorder r (fun () -> Msts.Netsim.execute (Msts.Plan.Spider plan))
  in
  let tr = Trace.recorded r in
  Alcotest.(check int) "recorder counted every event" (Trace.length tr)
    (Trace.Recorder.event_count r);
  Alcotest.(check bool) "events recorded" true (Trace.length tr > 0);
  Alcotest.(check bool) "no recorder, no events" false (Trace.recording ());
  fail_violations tr (Trace.check ~require_nonnegative:true tr);
  Alcotest.(check int) "execution still exact under recording"
    (Msts.Spider_schedule.makespan plan)
    report.Msts.Netsim.realized_makespan

(* The acceptance criterion: a deliberately corrupted plan whose two tasks
   emit through the master's port at the same instant is rejected with a
   one-port violation, and localize cuts the trace down to exactly the two
   offending emissions. *)
let corrupted_port_overlap_localized () =
  let tr = Trace.of_spider_schedule (overlapping_port_plan ()) in
  match Trace.check ~require_nonnegative:true tr with
  | [ v ] ->
      Alcotest.(check string) "the one-port invariant fired" "one-port"
        v.Trace.invariant;
      (match v.Trace.witness with
      | [ a; b ] ->
          Alcotest.(check bool) "witness events are distinct tasks" true
            (a.Trace.task <> b.Trace.task);
          List.iter
            (fun e ->
              match e.Trace.kind with
              | Trace.Start (Trace.Transfer { hop = 1; _ }) -> ()
              | _ ->
                  Alcotest.failf "witness is not a port emission: %s"
                    (Trace.event_to_string e))
            [ a; b ]
      | w ->
          Alcotest.failf "expected the two offending events, got %d" (List.length w));
      let seg = Trace.localize tr v in
      Alcotest.(check int) "minimal segment: exactly the two emissions" 2
        (Trace.length seg);
      (match Trace.check_segment seg with
      | [ v' ] ->
          Alcotest.(check string) "re-checking the segment reproduces it"
            "one-port" v'.Trace.invariant
      | other ->
          Alcotest.failf "localized segment re-check found %d violations"
            (List.length other));
      let rendered = Trace.report tr [ v ] in
      Alcotest.(check bool) "report names the invariant" true
        (contains ~sub:"one-port" rendered);
      Alcotest.(check bool) "report prints the segment" true
        (contains ~sub:"  | " rendered)
  | viols ->
      Alcotest.failf "expected exactly the one-port violation:\n%s"
        (Trace.report tr viols)

let negative_dates_flagged () =
  let tr =
    Trace.of_events
      [
        ev ~time:(-1) ~seq:0 ~task:1 (Trace.Start port_op);
        ev ~time:1 ~seq:1 ~task:1 (Trace.Finish port_op);
      ]
  in
  fail_violations tr (Trace.check tr);
  match Trace.check ~require_nonnegative:true tr with
  | [ v ] -> Alcotest.(check string) "flagged" "negative-date" v.Trace.invariant
  | viols -> Alcotest.failf "expected one negative-date, got %d" (List.length viols)

(* A crash that cuts off a whole leg mid-run: the recorded trace carries
   Abort and Return events, agrees event-for-event with the report's
   counters, and still satisfies every invariant. *)
let fault_run_trace_clean () =
  let spider = spider_fixture () in
  let plan = Msts.Spider_algorithm.schedule_tasks spider 6 in
  let trace =
    match Msts.Fault.parse "3 crash 1 1" with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let report, tr =
    record (fun () -> Msts.Netsim.replay_under_faults ~trace plan)
  in
  fail_violations tr (Trace.check ~require_nonnegative:true tr);
  let count p = List.length (List.filter p (Trace.events tr)) in
  let aborts =
    count (fun e -> match e.Trace.kind with Trace.Abort _ -> true | _ -> false)
  in
  let returns = count (fun e -> e.Trace.kind = Trace.Return) in
  Alcotest.(check int) "abort events match the report" report.Msts.Netsim.aborted_ops
    aborts;
  Alcotest.(check int) "return events match the report"
    report.Msts.Netsim.returned_tasks returns;
  Alcotest.(check bool) "the crash was actually disruptive" true
    (aborts + returns > 0)

let event_budget_guard () =
  let spider = spider_fixture () in
  let plan = Msts.Spider_algorithm.schedule_tasks spider 5 in
  (match Msts.Netsim.replay_under_faults ~max_events:1 plan with
  | _ -> Alcotest.fail "a one-event budget completed a five-task plan"
  | exception Failure msg ->
      Alcotest.(check bool) "failure names the budget" true
        (contains ~sub:"event budget" msg));
  (match Msts.Netsim.replay_under_faults ~max_events:0 plan with
  | _ -> Alcotest.fail "max_events 0 accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "invalid budget names Engine.run" true
        (String.starts_with ~prefix:"Msts.Engine.run" msg));
  let free = Msts.Netsim.replay_under_faults plan in
  let bounded = Msts.Netsim.replay_under_faults ~max_events:100_000 plan in
  Alcotest.(check int) "a generous budget changes nothing"
    free.Msts.Netsim.observed_makespan bounded.Msts.Netsim.observed_makespan

(* ---------- differential: trace checker vs Feasibility ---------- *)

(* Both checkers must agree on every plan; dirty traces must localize. *)
let agree_on plan =
  let oracle_clean = Msts.Plan.check ~require_nonnegative:true plan = [] in
  let tr = Trace.of_plan plan in
  let viols = Trace.check ~require_nonnegative:true tr in
  if oracle_clean <> (viols = []) then
    QCheck.Test.fail_reportf
      "trace checker disagrees with Feasibility (oracle %s, trace %s)\n%s"
      (if oracle_clean then "clean" else "dirty")
      (if viols = [] then "clean" else "dirty")
      (Trace.report tr viols);
  List.iter
    (fun v ->
      if v.Trace.invariant <> "negative-date" && Trace.length (Trace.localize tr v) = 0
      then
        QCheck.Test.fail_reportf "violation did not localize: %s" (Trace.explain v))
    viols;
  (oracle_clean, viols)

let differential_feasible_chains =
  to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"trace verdict matches Feasibility on solver chain plans"
       (chain_with_n_arb ~max_p:4 ~max_n:8 ())
       (fun (chain, n) ->
         let plan = Msts.Plan.Chain (Msts.Chain_algorithm.schedule chain n) in
         let clean, _ = agree_on plan in
         clean || QCheck.Test.fail_reportf "solver chain plan rejected"))

let differential_feasible_spiders =
  to_alcotest
    (QCheck.Test.make ~count:110
       ~name:"trace verdict matches Feasibility on solver spider plans"
       (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:6 ())
       (fun (spider, n) ->
         let plan =
           Msts.Plan.Spider (Msts.Spider_algorithm.schedule_tasks spider n)
         in
         let clean, _ = agree_on plan in
         clean || QCheck.Test.fail_reportf "solver spider plan rejected"))

(* Corrupt a solver chain plan: either let the second task's first emission
   collide with the first task's (a port/link-1 overlap), or start the
   second task before its data arrives. *)
let corrupt_chain sched ~collide =
  let entries =
    Array.map
      (fun e -> { e with Msts.Schedule.comms = Array.copy e.Msts.Schedule.comms })
      (Msts.Schedule.entries sched)
  in
  let a = entries.(0) and b = entries.(1) in
  if collide then b.Msts.Schedule.comms.(0) <- a.Msts.Schedule.comms.(0)
  else
    entries.(1) <-
      { b with Msts.Schedule.start = b.Msts.Schedule.comms.(b.Msts.Schedule.proc - 1) };
  Msts.Schedule.make (Msts.Schedule.chain sched) entries

let differential_corrupted_chains =
  to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"corrupted chain plans are rejected by both checkers"
       (QCheck.pair (chain_with_n_arb ~max_p:4 ~max_n:8 ()) QCheck.bool)
       (fun ((chain, n), collide) ->
         let n = max 2 n in
         let sched = corrupt_chain (Msts.Chain_algorithm.schedule chain n) ~collide in
         let clean, _ = agree_on (Msts.Plan.Chain sched) in
         (not clean) || QCheck.Test.fail_reportf "corruption went undetected"))

let differential_corrupted_spiders =
  to_alcotest
    (QCheck.Test.make ~count:110
       ~name:"corrupted spider plans are rejected with a one-port violation"
       (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:6 ())
       (fun (spider, n) ->
         let n = max 2 n in
         let sched = Msts.Spider_algorithm.schedule_tasks spider n in
         let entries =
           Array.map
             (fun e ->
               { e with Msts.Spider_schedule.comms = Array.copy e.Msts.Spider_schedule.comms })
             (Msts.Spider_schedule.entries sched)
         in
         entries.(1).Msts.Spider_schedule.comms.(0) <-
           entries.(0).Msts.Spider_schedule.comms.(0);
         let sched = Msts.Spider_schedule.make spider entries in
         let clean, viols = agree_on (Msts.Plan.Spider sched) in
         if clean then QCheck.Test.fail_reportf "port collision went undetected";
         List.exists (fun v -> v.Trace.invariant = "one-port") viols
         || QCheck.Test.fail_reportf
              "port collision flagged, but not as one-port:\n%s"
              (String.concat "\n" (List.map Trace.explain viols))))

(* ---------- fuzz: random fault/replan interleavings ---------- *)

let scenario_arb =
  QCheck.pair
    (spider_with_n_arb ~max_legs:3 ~max_depth:3 ~max_n:6 ())
    (QCheck.pair QCheck.small_nat (QCheck.int_bound 5))

(* Check every invariant on the recorded trace of one fault run and tie the
   report's counters to the recorded Abort/Return events. *)
let audit_fault_run tr (report : Msts.Netsim.fault_report) =
  (match Trace.check ~require_nonnegative:true tr with
  | [] -> ()
  | viols ->
      QCheck.Test.fail_reportf "invariant violated under faults:\n%s"
        (Trace.report tr viols));
  let count p = List.length (List.filter p (Trace.events tr)) in
  let aborts =
    count (fun e -> match e.Trace.kind with Trace.Abort _ -> true | _ -> false)
  in
  let returns = count (fun e -> e.Trace.kind = Trace.Return) in
  aborts = report.Msts.Netsim.aborted_ops
  && returns = report.Msts.Netsim.returned_tasks
  || QCheck.Test.fail_reportf
       "trace/report drift: %d abort events vs %d aborted_ops, %d returns vs %d returned_tasks"
       aborts report.Msts.Netsim.aborted_ops returns
       report.Msts.Netsim.returned_tasks

let fuzz_replay =
  to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"replay_under_faults holds every invariant on random fault schedules"
       scenario_arb
       (fun ((spider, n), (seed, events)) ->
         let plan = Msts.Spider_algorithm.schedule_tasks spider n in
         let rng = Msts.Prng.create (0x7ace + (31 * seed)) in
         let horizon = Msts.Spider_schedule.makespan plan + 10 in
         let trace = Msts.Fault.random rng spider ~events ~horizon in
         (* random arrival order: replay the same decisions from a permuted
            task numbering *)
         let entries = Array.copy (Msts.Spider_schedule.entries plan) in
         Msts.Prng.shuffle rng entries;
         let plan = Msts.Spider_schedule.make spider entries in
         let report, tr =
           record (fun () ->
               Msts.Netsim.replay_under_faults ~max_events:200_000 ~trace plan)
         in
         (n = 0 || Trace.length tr > 0) && audit_fault_run tr report))

let fuzz_pull =
  to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"pull_under_faults holds every invariant on random fault schedules"
       scenario_arb
       (fun ((spider, n), (seed, events)) ->
         let rng = Msts.Prng.create (0xbee5 + (17 * seed)) in
         let trace = Msts.Fault.random rng spider ~events ~horizon:40 in
         let report, tr =
           record (fun () ->
               Msts.Netsim.pull_under_faults ~max_events:200_000 ~trace spider
                 ~tasks:n)
         in
         audit_fault_run tr report))

(* The replanner runs its own lookahead simulations internally, so it is
   exercised unrecorded; the recorded blind replay of the same scenario
   provides the invariant check, and the replanner must beat or match it —
   the guarantee Replan documents. *)
let fuzz_replan =
  to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"Replan.replay never loses to the blind replay, invariants hold"
       scenario_arb
       (fun ((spider, n), (seed, events)) ->
         let plan = Msts.Spider_algorithm.schedule_tasks spider n in
         let rng = Msts.Prng.create (0xf1a7 + (13 * seed)) in
         let horizon = Msts.Spider_schedule.makespan plan + 10 in
         let trace = Msts.Fault.random rng spider ~events ~horizon in
         let blind, tr =
           record (fun () ->
               Msts.Netsim.replay_under_faults ~max_events:200_000 ~trace plan)
         in
         ignore (audit_fault_run tr blind : bool);
         let outcome = Msts.Replan.replay ~trace plan in
         (outcome.Msts.Replan.replans <= outcome.Msts.Replan.considered
         || QCheck.Test.fail_reportf "%d replans out of %d considered"
              outcome.Msts.Replan.replans outcome.Msts.Replan.considered)
         && (outcome.Msts.Replan.report.Msts.Netsim.observed_makespan
             <= blind.Msts.Netsim.observed_makespan
            || QCheck.Test.fail_reportf "replanner lost: %d > %d"
                 outcome.Msts.Replan.report.Msts.Netsim.observed_makespan
                 blind.Msts.Netsim.observed_makespan)))

let suites =
  [
    ( "trace.algebra",
      [
        case "canonical event order" canonical_order;
        case "split/concat roundtrip" split_concat_roundtrip;
        case "concat rejects overlapping segments" concat_rejects_overlap;
        case "projections partition the trace" project_partitions;
        case "checking slices with a threaded state equals the whole"
          segment_composition;
        case "cuts of a clean trace are clean in isolation" clean_cuts_stay_clean;
      ] );
    ( "trace.invariants",
      [
        case "planned figure-2 trace is clean" planned_figure2_clean;
        case "recorded execution is clean and fully counted"
          recorded_execution_clean;
        case "overlapping port emissions localize to a minimal segment"
          corrupted_port_overlap_localized;
        case "negative dates flagged only on request" negative_dates_flagged;
        case "crash run records aborts/returns and stays clean"
          fault_run_trace_clean;
        case "event budget turns livelock into failure" event_budget_guard;
      ] );
    ( "trace.differential",
      [
        differential_feasible_chains;
        differential_feasible_spiders;
        differential_corrupted_chains;
        differential_corrupted_spiders;
      ] );
    ("trace.fuzz", [ fuzz_replay; fuzz_pull; fuzz_replan ]);
  ]
