(* The typed request API: total codecs (decode ∘ encode = id on random
   requests and responses, garbage in → structured errors out, never an
   exception), version gating, the error-code taxonomy, and the
   CLI-vs-daemon equivalence contract — the engine's wire answer to a
   request is byte-identical to Api.exec over the direct solver, because
   both are the same code path. *)

open Helpers
module Api = Msts.Api
module Json = Msts.Json
module Gen = QCheck.Gen

(* ---------- generators ---------- *)

let platform_gen =
  let profile = Msts.Generator.default_profile in
  Gen.(
    int_range 0 1_000_000 >>= fun seed ->
    let rng = Msts.Prng.create seed in
    oneofl [ `Chain; `Fork; `Spider; `Tree ] >|= function
    | `Chain ->
        Msts.Platform_format.Chain_platform
          (Msts.Generator.chain rng profile ~p:(1 + (seed mod 5)))
    | `Fork ->
        Msts.Platform_format.Fork_platform
          (Msts.Generator.fork rng profile ~slaves:(1 + (seed mod 5)))
    | `Spider ->
        Msts.Platform_format.Spider_platform
          (Msts.Generator.spider rng profile ~legs:(1 + (seed mod 4)) ~max_depth:2)
    | `Tree ->
        Msts.Platform_format.Tree_platform
          (Msts.Generator.tree rng profile ~nodes:(2 + (seed mod 6)) ~max_children:3))

let problem_gen =
  Gen.(
    platform_gen >>= fun platform ->
    opt (int_range 0 40) >>= fun tasks ->
    opt (int_range 0 200) >|= fun deadline ->
    { Msts.Solve.platform; tasks; deadline })

let workload_gen =
  Gen.oneofl [ Api.Solve_only; Api.Execute; Api.Pull; Api.Faults ]

let op_gen =
  Gen.(
    oneof
      [
        return Api.Ping;
        return Api.Stats;
        return Api.Shutdown;
        map (fun p -> Api.Schedule p) problem_gen;
        map (fun p -> Api.Deadline p) problem_gen;
        map (fun p -> Api.Metrics p) problem_gen;
        map
          (fun ps -> Api.Batch (Array.of_list ps))
          (list_size (int_range 0 5) problem_gen);
        map2 (fun problem planned -> Api.Report { problem; planned }) problem_gen
          bool;
        map2
          (fun problem (trace, seed, events) ->
            Api.Check { problem; trace; seed; events })
          problem_gen
          (triple bool (int_range 0 1000) (int_range 0 10));
        map2
          (fun (platform, tasks, deadline) (workload, seed, events) ->
            Api.Profile { platform; tasks; deadline; workload; seed; events })
          (triple platform_gen (int_range 0 30) (opt (int_range 0 100)))
          (triple workload_gen (int_range 0 1000) (int_range 0 10));
        map
          (fun (platform, deadline, capacity) ->
            Api.Online_open { platform; deadline; capacity })
          (triple platform_gen (int_range 0 500) (int_range 0 8));
        map2
          (fun session tasks -> Api.Online_submit { session; tasks })
          (int_range 1 64) (int_range 0 40);
        map2
          (fun session time -> Api.Online_advance { session; time })
          (int_range 1 64) (int_range 0 500);
        map2
          (fun session deadline -> Api.Online_extend { session; deadline })
          (int_range 1 64) (int_range 0 500);
        map2
          (fun session (at, work_factor) ->
            Api.Online_degrade { session; at; work_factor })
          (int_range 1 64)
          (pair (int_range 1 5) (int_range 1 4));
        map (fun session -> Api.Online_plan { session }) (int_range 1 64);
        map (fun session -> Api.Online_close { session }) (int_range 1 64);
        return Api.Metrics_dump;
      ])

let trace_gen =
  Gen.(opt (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)))

let request_gen =
  Gen.(
    map3
      (fun id trace op -> { Api.id; trace; op })
      (opt (int_range 0 1_000_000))
      trace_gen op_gen)

let rec json_gen depth =
  Gen.(
    if depth = 0 then
      oneof
        [
          map (fun i -> Json.Int i) (int_range (-1000) 1000);
          map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12));
          map (fun b -> Json.Bool b) bool;
          return Json.Null;
        ]
    else
      oneof
        [
          map (fun i -> Json.Int i) (int_range (-1000) 1000);
          map (fun l -> Json.List l) (list_size (int_range 0 3) (json_gen (depth - 1)));
          map
            (fun kvs -> Json.Obj kvs)
            (list_size (int_range 0 3)
               (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 6))
                  (json_gen (depth - 1))));
        ])

let error_code_gen =
  Gen.oneofl
    [
      Api.Bad_request; Api.Unsupported_version; Api.Invalid_platform;
      Api.Invalid_argument_error; Api.Unsolvable; Api.Overloaded;
      Api.Timeout; Api.Shutting_down; Api.Internal;
    ]

let response_gen =
  Gen.(
    map3
      (fun id trace result -> { Api.id; trace; result })
      (opt (int_range 0 1_000_000))
      trace_gen
      (oneof
         [
           map (fun j -> Ok j) (json_gen 2);
           map2
             (fun code message -> Error (Api.error code message))
             error_code_gen
             (string_size ~gen:printable (int_range 0 30));
         ]))

let request_print r = Api.request_to_line r
let response_print r = Api.response_to_line r

(* ---------- codec round-trips ---------- *)

let request_roundtrip =
  to_alcotest
    (QCheck.Test.make ~count:300 ~name:"decode ∘ encode = id on requests"
       (QCheck.make ~print:request_print request_gen) (fun r ->
         match Api.request_of_line (Api.request_to_line r) with
         | Ok r' -> r' = r
         | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e.Api.message))

let response_roundtrip =
  to_alcotest
    (QCheck.Test.make ~count:300 ~name:"decode ∘ encode = id on responses"
       (QCheck.make ~print:response_print response_gen) (fun r ->
         match Api.response_of_line (Api.response_to_line r) with
         | Ok r' -> r' = r
         | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e.Api.message))

(* ---------- total decoding: rejection, never exceptions ---------- *)

let truncated_frames_rejected =
  to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"every strict prefix of a valid frame is rejected as bad_request"
       (QCheck.make ~print:request_print request_gen) (fun r ->
         let line = String.trim (Api.request_to_line r) in
         let ok = ref true in
         for len = 0 to String.length line - 1 do
           match Api.request_of_line (String.sub line 0 len) with
           | Ok _ -> ok := false
           | Error { Api.code = Api.Bad_request; _ } -> ()
           | Error _ -> ok := false
           | exception _ -> ok := false
         done;
         !ok))

let garbage_never_raises =
  to_alcotest
    (QCheck.Test.make ~count:500 ~name:"request decoder never raises on bytes"
       (QCheck.make ~print:String.escaped
          Gen.(string_size ~gen:(map Char.chr (int_range 0 127)) (int_range 0 120)))
       (fun line ->
         (match Api.request_of_line line with Ok _ | Error _ -> ());
         (match Api.response_of_line line with Ok _ | Error _ -> ());
         true))

let unknown_version_rejected () =
  (match Api.request_of_line "{\"v\":2,\"op\":\"ping\"}" with
  | Error { Api.code = Api.Unsupported_version; _ } -> ()
  | Ok _ -> Alcotest.fail "accepted v=2"
  | Error e -> Alcotest.failf "wrong code: %s" (Api.error_code_to_string e.Api.code));
  (* absent "v" means current version *)
  match Api.request_of_line "{\"op\":\"ping\"}" with
  | Ok { Api.op = Api.Ping; _ } -> ()
  | _ -> Alcotest.fail "rejected a version-less ping"

let error_code_names_bijective () =
  List.iter
    (fun code ->
      let name = Api.error_code_to_string code in
      Alcotest.(check bool)
        (name ^ " survives the name round-trip")
        true
        (Api.error_code_of_string name = Some code))
    [
      Api.Bad_request; Api.Unsupported_version; Api.Invalid_platform;
      Api.Invalid_argument_error; Api.Unsolvable; Api.Overloaded;
      Api.Timeout; Api.Shutting_down; Api.Internal;
    ];
  Alcotest.(check bool)
    "unknown names map to None" true
    (Api.error_code_of_string "no_such_code" = None)

let prefix_convention_classified () =
  let e1 = Api.error_of_solve_failure "Msts.Netsim.execute: negative start" in
  Alcotest.(check bool) "Msts.-prefixed message is invalid_argument" true
    (e1.Api.code = Api.Invalid_argument_error
    && e1.Api.message = "Msts.Netsim.execute: negative start");
  let e2 = Api.error_of_solve_failure "give either tasks or a deadline" in
  Alcotest.(check bool) "plain refusal is unsolvable" true
    (e2.Api.code = Api.Unsolvable);
  let e3 = Api.error_of_exn (Invalid_argument "Msts.Chain.of_pairs: empty") in
  Alcotest.(check bool) "Invalid_argument exception keeps its message" true
    (e3.Api.code = Api.Invalid_argument_error
    && e3.Api.message = "Msts.Chain.of_pairs: empty");
  let e4 = Api.error_of_exn Not_found in
  Alcotest.(check bool) "other exceptions are internal" true
    (e4.Api.code = Api.Internal)

let workload_names_roundtrip () =
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Api.workload_to_string w ^ " round-trips")
        true
        (Api.workload_of_string (Api.workload_to_string w) = Some w))
    [ Api.Solve_only; Api.Execute; Api.Pull; Api.Faults ]

(* ---------- exec over the direct solver = the Solve facade ---------- *)

let exec_matches_solve =
  to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"exec Schedule/Deadline agrees with Solve.solve"
       (QCheck.make ~print:request_print
          Gen.(
            map
              (fun p -> { Api.id = None; trace = None; op = Api.Schedule p })
              problem_gen))
       (fun { Api.op; _ } ->
         let problem =
           match op with Api.Schedule p -> p | _ -> assert false
         in
         let direct = Msts.Solve.solve problem in
         match (Api.exec ~solver:Api.direct_solver op, direct) with
         | Ok (Api.Solved { plan; _ }), Ok plan' -> Msts.Plan.equal plan plan'
         | Error _, Error _ -> true
         | Ok _, Error msg ->
             QCheck.Test.fail_reportf "exec solved, facade refused: %s" msg
         | Error e, Ok _ ->
             QCheck.Test.fail_reportf "exec refused a solvable problem: %s"
               e.Api.message
         | _ -> false))

(* ---------- the engine answers with the same bytes ---------- *)

let figure2_problem () =
  Msts.Solve.problem ~tasks:5
    (Msts.Platform_format.Chain_platform figure2_chain)

let engine_config =
  { Msts_serve.Engine.default_config with jobs = 1; cache_capacity = 4 }

let engine_wire_equals_direct () =
  let engine = Msts_serve.Engine.create engine_config in
  let problem = figure2_problem () in
  let ask op =
    let got = ref None in
    Msts_serve.Engine.handle_line engine
      ~reply:(fun line -> got := Some line)
      (Api.request_to_line { Api.id = Some 9; trace = None; op });
    ignore (Msts_serve.Engine.dispatch engine);
    match !got with
    | Some line -> line
    | None -> Alcotest.fail "engine never replied"
  in
  List.iter
    (fun op ->
      let wire = ask op in
      let direct =
        Api.response_to_line
          (Api.respond ~solver:Api.direct_solver
             { Api.id = Some 9; trace = None; op })
      in
      Alcotest.(check string)
        (Api.op_name op ^ " over the wire = direct exec")
        direct wire)
    [
      Api.Schedule problem;
      Api.Deadline { problem with Msts.Solve.tasks = None; deadline = Some 40 };
      Api.Metrics problem;
      Api.Report { problem; planned = true };
      Api.Check { problem; trace = false; seed = 0; events = 3 };
    ];
  Msts_serve.Engine.shutdown engine

(* ---------- trace context and the metrics control op ---------- *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let trace_context_echoed () =
  (match Api.request_of_line {|{"id":4,"trace":"req-7","op":"ping"}|} with
  | Ok { Api.id = Some 4; trace = Some "req-7"; op = Api.Ping } -> ()
  | _ -> Alcotest.fail "the trace field did not decode");
  let answered =
    Api.response_to_line
      (Api.respond ~solver:Api.direct_solver
         { Api.id = Some 4; trace = Some "req-7"; op = Api.Ping })
  in
  (match Api.response_of_line answered with
  | Ok { Api.id = Some 4; trace = Some "req-7"; _ } -> ()
  | _ -> Alcotest.failf "respond lost the trace: %s" answered);
  (* A trace-less request must produce a trace-less response frame —
     clients that never send the field never see it. *)
  let bare =
    Api.response_to_line
      (Api.respond ~solver:Api.direct_solver
         { Api.id = Some 4; trace = None; op = Api.Ping })
  in
  Alcotest.(check bool) "no trace field injected" false (contains bare "trace")

let engine_echoes_trace () =
  let engine = Msts_serve.Engine.create engine_config in
  let ask frame =
    let got = ref None in
    Msts_serve.Engine.handle_line engine ~reply:(fun l -> got := Some l) frame;
    ignore (Msts_serve.Engine.dispatch engine);
    match !got with
    | Some line -> line
    | None -> Alcotest.fail "engine never replied"
  in
  (* control fast path *)
  (match Api.response_of_line (ask {|{"id":1,"trace":"t-a","op":"ping"}|}) with
  | Ok { Api.trace = Some "t-a"; _ } -> ()
  | _ -> Alcotest.fail "control reply lost the trace");
  (* queued solve path *)
  let solve =
    Api.request_to_line
      {
        Api.id = Some 2;
        trace = Some "t-b";
        op = Api.Schedule (figure2_problem ());
      }
  in
  (match Api.response_of_line (ask solve) with
  | Ok { Api.id = Some 2; trace = Some "t-b"; result = Ok _ } -> ()
  | _ -> Alcotest.fail "solve reply lost the trace");
  (* malformed frame: trace recovered best-effort from the raw bytes *)
  (match
     Api.response_of_line
       (ask {|{"id":3,"trace":"t-c","op":"schedule","platform":12}|})
   with
  | Ok { Api.trace = Some "t-c"; result = Error { Api.code = Api.Bad_request; _ }; _ }
    ->
      ()
  | _ -> Alcotest.fail "bad_request reply lost the trace");
  Msts_serve.Engine.shutdown engine

let metrics_op_decoding () =
  (* Bare "metrics" is the control op; with a platform it stays the
     Metrics plan operation — the wire name is shared. *)
  (match Api.request_of_line {|{"op":"metrics"}|} with
  | Ok { Api.op = Api.Metrics_dump; _ } -> ()
  | _ -> Alcotest.fail "bare metrics frame is not Metrics_dump");
  let plan_metrics =
    { Api.id = None; trace = None; op = Api.Metrics (figure2_problem ()) }
  in
  (match Api.request_of_line (Api.request_to_line plan_metrics) with
  | Ok { Api.op = Api.Metrics _; _ } -> ()
  | _ -> Alcotest.fail "metrics-with-platform lost its problem");
  let dump = { Api.id = Some 8; trace = None; op = Api.Metrics_dump } in
  match Api.request_of_line (Api.request_to_line dump) with
  | Ok r -> Alcotest.(check bool) "Metrics_dump round-trips" true (r = dump)
  | Error e -> Alcotest.failf "Metrics_dump decode failed: %s" e.Api.message

let engine_serves_metrics_dump () =
  let engine = Msts_serve.Engine.create engine_config in
  let got = ref None in
  Msts_serve.Engine.submit engine
    ~reply:(fun r -> got := Some r)
    { Api.id = Some 1; trace = None; op = Api.Metrics_dump };
  (match !got with
  | Some { Api.result = Ok (Json.Obj fields); _ } -> (
      (match List.assoc_opt "format" fields with
      | Some (Json.String "prometheus-text-0.0.4") -> ()
      | _ -> Alcotest.fail "metrics reply lost its format tag");
      match List.assoc_opt "body" fields with
      | Some (Json.String body) ->
          Alcotest.(check bool) "exposition has TYPE lines" true
            (contains body "# TYPE ")
      | _ -> Alcotest.fail "metrics reply lost its body")
  | Some _ -> Alcotest.fail "metrics reply malformed"
  | None -> Alcotest.fail "metrics op was queued instead of answered");
  Msts_serve.Engine.shutdown engine

let engine_admission_control () =
  let engine =
    Msts_serve.Engine.create
      { engine_config with Msts_serve.Engine.queue_cap = 1 }
  in
  let responses = ref [] in
  let reply r = responses := r :: !responses in
  let submit () =
    Msts_serve.Engine.submit engine ~reply
      { Api.id = None; trace = None; op = Api.Schedule (figure2_problem ()) }
  in
  submit ();
  submit ();
  (* second one bounced: queue_cap 1 *)
  (match !responses with
  | [ { Api.result = Error { Api.code = Api.Overloaded; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "expected exactly one overloaded rejection");
  ignore (Msts_serve.Engine.drain engine);
  Alcotest.(check int) "queued request still answered" 2
    (List.length !responses);
  Msts_serve.Engine.stop engine;
  submit ();
  (match !responses with
  | { Api.result = Error { Api.code = Api.Shutting_down; _ }; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected shutting_down after stop");
  Alcotest.(check int) "served counts every response" 3
    (Msts_serve.Engine.served engine);
  Msts_serve.Engine.shutdown engine

let engine_malformed_frames_answered () =
  let engine = Msts_serve.Engine.create engine_config in
  let got = ref None in
  Msts_serve.Engine.handle_line engine
    ~reply:(fun line -> got := Some line)
    "{\"id\":3,\"op\":\"schedule\",\"platform\":12}";
  (match !got with
  | Some line -> (
      match Api.response_of_line line with
      | Ok
          {
            Api.id = Some 3;
            result = Error { Api.code = Api.Bad_request; _ };
            _;
          } ->
          ()
      | _ -> Alcotest.failf "unexpected reply %s" line)
  | None -> Alcotest.fail "malformed frame got no reply");
  Msts_serve.Engine.shutdown engine

let suites =
  [
    ( "api.codecs",
      [
        request_roundtrip;
        response_roundtrip;
        truncated_frames_rejected;
        garbage_never_raises;
        case "unknown version rejected, absent version accepted"
          unknown_version_rejected;
        case "error-code names are bijective" error_code_names_bijective;
        case "Msts. prefix convention maps to invalid_argument"
          prefix_convention_classified;
        case "workload names round-trip" workload_names_roundtrip;
        case "trace context decoded, echoed, never injected"
          trace_context_echoed;
        case "bare metrics decodes as the control op" metrics_op_decoding;
      ] );
    ( "api.exec",
      [
        exec_matches_solve;
        case "engine wire responses = direct exec bytes"
          engine_wire_equals_direct;
        case "admission control: overload, drain, shutting down"
          engine_admission_control;
        case "malformed frames answered, id echoed"
          engine_malformed_frames_answered;
        case "engine echoes the trace on every path" engine_echoes_trace;
        case "metrics op answers the live exposition"
          engine_serves_metrics_dump;
      ] );
  ]
