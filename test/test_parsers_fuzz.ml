(* Parser robustness: random and adversarial inputs must produce [Error],
   never an exception, and valid inputs survive mangling detection. *)

open Helpers

module Gen = QCheck.Gen

let garbage_gen =
  Gen.(string_size ~gen:(map Char.chr (int_range 0 127)) (int_range 0 200))

let structured_garbage_gen =
  (* strings built from the format's own vocabulary — likelier to reach the
     deep branches of the parsers *)
  Gen.(
    list_size (int_range 0 12)
      (oneofl
         [ "chain"; "spider"; "fork"; "tree"; "leg"; "task"; "1 2"; "3 4 0";
           "-1 2"; "0 0"; "x y"; ""; " "; "# comment"; "1 2 3 4";
           "chain-schedule"; "spider-schedule"; "task 1 2 0" ])
    |> map (String.concat "\n"))

let never_raises name parse gen =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:500 ~name (QCheck.make ~print:String.escaped gen)
       (fun text ->
         match parse text with
         | Ok _ | Error _ -> true
         | exception e ->
             QCheck.Test.fail_reportf "raised %s on %S" (Printexc.to_string e) text))

let platform_garbage =
  never_raises "platform parser never raises on random bytes"
    Msts.Platform_format.of_string garbage_gen

let platform_structured_garbage =
  never_raises "platform parser never raises on vocabulary soup"
    Msts.Platform_format.of_string structured_garbage_gen

let schedule_garbage =
  never_raises "chain schedule parser never raises on random bytes"
    (Msts.Serial.schedule_of_string figure2_chain)
    garbage_gen

let schedule_structured_garbage =
  never_raises "chain schedule parser never raises on vocabulary soup"
    (Msts.Serial.schedule_of_string figure2_chain)
    structured_garbage_gen

let spider_schedule_garbage =
  never_raises "spider schedule parser never raises on vocabulary soup"
    (Msts.Serial.spider_schedule_of_string (Msts.Spider.of_chain figure2_chain))
    structured_garbage_gen

(* mangling a serialised schedule must either parse to a different-but-
   structurally-valid schedule or produce an error — never an exception,
   and never silently parse to the original when a digit changed *)
let mangled_plan_detected =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"mangled plans never crash the parser"
       (QCheck.make
          ~print:(fun ((chain, n), pos) ->
            Printf.sprintf "%s, n=%d, mangle@%d" (Msts.Chain.to_string chain) n pos)
          Gen.(pair (pair (chain_gen ~max_p:3 ()) (int_range 1 6)) (int_range 0 400)))
       (fun ((chain, n), pos) ->
         let text = Msts.Serial.schedule_to_string (Msts.Chain_algorithm.schedule chain n) in
         let pos = pos mod String.length text in
         let mangled =
           String.mapi (fun i ch -> if i = pos then 'X' else ch) text
         in
         match Msts.Serial.schedule_of_string chain mangled with
         | Ok _ | Error _ -> true
         | exception e ->
             QCheck.Test.fail_reportf "raised %s" (Printexc.to_string e)))

(* the library's own output always parses back *)
let own_output_always_parses =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"serialised platforms always re-parse"
       (spider_arb ~max_legs:4 ~max_depth:3 ())
       (fun spider ->
         match
           Msts.Platform_format.of_string
             (Msts.Platform_format.platform_to_string
                (Msts.Platform_format.Spider_platform spider))
         with
         | Ok _ -> true
         | Error e -> QCheck.Test.fail_reportf "no parse: %s" e))

let suites =
  [
    ( "fuzz.parsers",
      [
        platform_garbage;
        platform_structured_garbage;
        schedule_garbage;
        schedule_structured_garbage;
        spider_schedule_garbage;
        mangled_plan_detected;
        own_output_always_parses;
      ] );
  ]
