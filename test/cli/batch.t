The batch subcommand: many instances across a domain pool, one report.

The contract under test here is determinism: whatever --jobs is, the
output — text and JSON — is byte for byte the same.  The worker count may
change wall time, never results.

  $ ../../bin/msts.exe batch --count 6 --seed 3 --jobs 2
  batch: 6 instances (cache capacity 256)
    1: kind=chain tasks=3 makespan=21
    2: kind=spider tasks=11 makespan=28
    3: kind=fork tasks=15 makespan=204
    4: kind=spider tasks=11 makespan=28
    5: kind=spider tasks=23 makespan=94
    6: kind=fork tasks=4 makespan=9
  pool.cache_hits: 1
  pool.cache_misses: 5
  pool.solves: 5

Byte-identical across jobs=1, 2 and 4, in both formats:

  $ ../../bin/msts.exe batch --count 6 --seed 3 --jobs 1 > j1.txt
  $ ../../bin/msts.exe batch --count 6 --seed 3 --jobs 2 > j2.txt
  $ ../../bin/msts.exe batch --count 6 --seed 3 --jobs 4 > j4.txt
  $ cmp j1.txt j2.txt && cmp j1.txt j4.txt && echo text identical
  text identical
  $ ../../bin/msts.exe batch --count 6 --seed 3 --jobs 1 --format=json > j1.json
  $ ../../bin/msts.exe batch --count 6 --seed 3 --jobs 2 --format=json > j2.json
  $ ../../bin/msts.exe batch --count 6 --seed 3 --jobs 4 --format=json > j4.json
  $ cmp j1.json j2.json && cmp j1.json j4.json && echo json identical
  json identical

The JSON report carries the cache tallies alongside the results:

  $ head -7 j1.json
  {
    "instances": 6,
    "cache": {
      "capacity": 256,
      "hits": 1,
      "misses": 5
    },

Manifest mode: one instance per line, "<platform-file> <tasks> [<deadline>]"
with "-" for an unset objective.  Both lines share the Figure 2 chain; they
have different objectives, so they are distinct cache entries:

  $ cat > fig2.txt <<'PLATFORM'
  > chain
  > 2 3
  > 3 5
  > PLATFORM
  $ cat > man.txt <<'MANIFEST'
  > # two instances over one platform
  > fig2.txt 5 -
  > fig2.txt - 14
  > MANIFEST
  $ ../../bin/msts.exe batch --manifest man.txt --jobs 2
  batch: 2 instances (cache capacity 256)
    1: kind=chain tasks=5 makespan=14
    2: kind=chain tasks=5 makespan=14
  pool.cache_hits: 0
  pool.cache_misses: 2
  pool.solves: 2

A repeated manifest line is a cache hit, not a second solve:

  $ cat > man2.txt <<'MANIFEST'
  > fig2.txt 5 -
  > fig2.txt 5 -
  > fig2.txt 5 -
  > MANIFEST
  $ ../../bin/msts.exe batch --manifest man2.txt
  batch: 3 instances (cache capacity 256)
    1: kind=chain tasks=5 makespan=14
    2: kind=chain tasks=5 makespan=14
    3: kind=chain tasks=5 makespan=14
  pool.cache_hits: 2
  pool.cache_misses: 1
  pool.solves: 1

Usage errors are rejected up front:

  $ ../../bin/msts.exe batch --count 4 --manifest man.txt
  error: --manifest and --count are mutually exclusive
  [2]
  $ ../../bin/msts.exe batch --count 4 --seed 1 --cache-size 0
  error: --cache-size must be >= 1
  [2]
