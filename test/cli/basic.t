The full command-line workflow, end to end.

Generate platforms (deterministic from the seed):

  $ ../../bin/msts.exe generate --kind chain --size 2 --seed 3 -o chain.txt
  $ cat chain.txt
  chain
  5 2
  5 3
  $ ../../bin/msts.exe generate --kind spider --size 2 --depth 2 --seed 7 -o spider.txt
  $ cat spider.txt
  spider
  leg
  2 19
  3 10
  leg
  10 9

Hand-written platform matching the paper's Figure 2:

  $ cat > fig2.txt <<'PLATFORM'
  > chain
  > 2 3
  > 3 5
  > PLATFORM

Optimal schedule (paper: makespan 14, emissions 0,2,4,6,9, task 3 on P2):

  $ ../../bin/msts.exe schedule -p fig2.txt -n 5 --plan-out plan.txt
  optimal makespan: 14
  schedule on chain[(c=2,w=3); (c=3,w=5)] (makespan 14):
    task 1 -> P1, start 2, comms {0}
    task 2 -> P1, start 5, comms {2}
    task 3 -> P2, start 9, comms {4; 6}
    task 4 -> P1, start 8, comms {6}
    task 5 -> P1, start 11, comms {9}
  

Validate the plan with the independent checker:

  $ ../../bin/msts.exe validate -p fig2.txt --plan plan.txt
  feasible; makespan 14

A corrupted plan is rejected with a diagnostic and exit code 1:

  $ sed 's/task 1 2 0/task 1 1 0/' plan.txt > broken.txt
  $ ../../bin/msts.exe validate -p fig2.txt --plan broken.txt
  task 1 starts before it is fully received
  [1]

The trace invariant checker audits the planned trace and, with --trace,
the recorded execution plus a seeded fault replay (docs/VERIFICATION.md):

  $ ../../bin/msts.exe check -p fig2.txt -n 5 --trace
  plan: 5 tasks, makespan 14
  feasibility oracle: ok
  planned trace: 22 events — all invariants hold
  recorded execution: 22 events — all invariants hold
  recorded fault replay (seed 0, 3 events): 20 events — all invariants hold

Deadline variant (T_lim = 14 fits exactly the 5 tasks of the figure):

  $ ../../bin/msts.exe deadline -p fig2.txt -d 14 | head -2
  tasks completed by 14: 5
  schedule on chain[(c=2,w=3); (c=3,w=5)] (makespan 14):

Bounds and heuristics comparison:

  $ ../../bin/msts.exe bounds -p fig2.txt -n 5
  == bounds and schedulers, n=5 ==
  +-------------------------------+----------+
  | method                        | makespan |
  +===============================+==========+
  | port lower bound              | 13       |
  | capacity lower bound          | 14       |
  | fluid lower bound             | 10.000   |
  | optimal (this paper)          | 14       |
  | heuristic earliest-completion | 17       |
  | heuristic round-robin         | 17       |
  | heuristic master-only         | 17       |
  | heuristic fastest-processor   | 17       |
  | heuristic random(0)           | 25       |
  +-------------------------------+----------+

Steady-state throughput (paper chain saturates the first link at 1/2):

  $ ../../bin/msts.exe throughput -p fig2.txt
  steady-state throughput: 0.5000 tasks/unit
    leg 1: 0.5000 tasks/unit

Metrics report:

  $ ../../bin/msts.exe metrics -p fig2.txt -n 5
  tasks: 5, makespan: 14
  total waiting: 1, max single wait: 1
    P1   tasks 4    link busy  71.4%  cpu busy  85.7%  max buffered 1
    P2   tasks 1    link busy  21.4%  cpu busy  35.7%  max buffered 0

The construction trace narrates each backward placement:

  $ ../../bin/msts.exe explain -p fig2.txt -n 2
  Backward construction on chain[(c=2,w=3); (c=3,w=5)], n = 2, horizon T-inf = 8
  
  Placing task 2:
    candidate for P1: {3}   <- greatest (Def. 3)
    candidate for P2: {-2; 0}
    => P(2) = 1, T(2) = 5 (before shift)
  
  Placing task 1:
    candidate for P1: {0}   <- greatest (Def. 3)
    candidate for P2: {-2; 0}
    => P(1) = 1, T(1) = 2 (before shift)
  
  Final shift: 0 time units; makespan = 8

DOT export:

  $ ../../bin/msts.exe dot -p fig2.txt
  digraph platform {
    rankdir=LR;
    master [shape=doublecircle, label="M"];
    p1 [shape=circle, label="w=3"];
    master -> p1 [label="c=2"];
    p2 [shape=circle, label="w=5"];
    p1 -> p2 [label="c=3"];
  }

Spider scheduling and the demand-driven baseline:

  $ ../../bin/msts.exe schedule -p spider.txt -n 6 | head -1
  optimal makespan: 37
  $ ../../bin/msts.exe pull -p spider.txt -n 6
  demand-driven makespan: 42 (optimal 37, overhead 13.5%)

Unknown platform files produce a clean error:

  $ ../../bin/msts.exe schedule -p missing.txt -n 1 2>/dev/null
  [124]

General trees: the cover heuristics (`msts tree`) and exact promotion when
only the master branches:

  $ cat > tree.txt <<'PLATFORM'
  > tree
  > 1 3 0
  > 2 2 1
  > 4 2 1
  > 3 4 0
  > PLATFORM
  $ ../../bin/msts.exe tree -p tree.txt -n 8
  == tree scheduling, n=8 ==
  +------------------------------+----------+
  | method                       | makespan |
  +==============================+==========+
  | cover: fastest processor     | 13       |
  | cover: cheapest link         | 13       |
  | cover: best subtree rate     | 13       |
  | forward: earliest-completion | 13       |
  | forward: random(0)           | 21       |
  | forward: root-only           | 25       |
  | lower bound                  | 11       |
  +------------------------------+----------+
  steady-state rate of the full tree: 0.8889 tasks/unit
  $ cat > spidertree.txt <<'PLATFORM'
  > tree
  > 2 3 0
  > 3 5 1
  > 1 4 0
  > PLATFORM
  $ ../../bin/msts.exe schedule -p spidertree.txt -n 4 | head -1
  optimal makespan: 9

Spider construction narrated (the §7 pipeline):

  $ ../../bin/msts.exe explain -p spider.txt -n 2
  Spider algorithm, T_lim = 21, on spider{chain[(c=2,w=19); (c=3,w=10)]; chain[(c=10,w=9)]}
  
  Step 1 - deadline schedules per leg:
    leg 1: 2 tasks fit by 21
    leg 2: 1 tasks fit by 21
  
  Steps 2-3 - virtual fork (one single-task node per leg task):
    leg 1 rank 0: comm 2, remaining work 13
    leg 1 rank 1: comm 2, remaining work 19
    leg 2 rank 0: comm 10, remaining work 9
  
  Step 4 - greedy one-port allocation (emissions back-to-back, decreasing remaining work):
    #1: leg 1 task 1, emit at 0 (leg plan had 0; Lemma 3: never later), work 19
    #2: leg 1 task 2, emit at 2 (leg plan had 6; Lemma 3: never later), work 13
  
  Step 5 - reverted spider schedule: 2 tasks, makespan 21

CSV export for plotting:

  $ ../../bin/msts.exe schedule -p fig2.txt -n 3 --csv out.csv >/dev/null
  $ cat out.csv
  task,processor,start,completion,emissions
  1,2,5,10,0;2
  2,1,4,7,2
  3,1,7,10,5

Spider bounds (including the fluid relaxation) and metrics:

  $ ../../bin/msts.exe bounds -p spider.txt -n 6
  == bounds and schedulers, n=6 ==
  +-------------------------------+----------+
  | method                        | makespan |
  +===============================+==========+
  | port lower bound              | 25       |
  | capacity lower bound          | 35       |
  | fluid lower bound             | 27.014   |
  | optimal (this paper)          | 37       |
  | heuristic earliest-completion | 45       |
  | heuristic round-robin         | 40       |
  | heuristic first-leg           | 116      |
  | heuristic random(0)           | 55       |
  +-------------------------------+----------+
  $ ../../bin/msts.exe metrics -p spider.txt -n 6
  tasks: 6, makespan: 37, master port busy 75.7%
  leg 1: 4 tasks
    depth 1   tasks 1    link busy  21.6%  cpu busy  51.4%  max buffered 1
    depth 2   tasks 3    link busy  24.3%  cpu busy  81.1%  max buffered 0
  leg 2: 2 tasks
    depth 1   tasks 2    link busy  54.1%  cpu busy  48.6%  max buffered 1

Mid-run fault injection: scripted slowdown + crash, static replay vs
online replanning vs the pull baseline on identical traces:

  $ cat > trace.txt <<'TRACE'
  > # leg 1 slows, then its deep node dies mid-run
  > 4 slow-proc 1 2 3
  > 12 crash 1 2
  > TRACE
  $ ../../bin/msts.exe faults -p spider.txt -n 6 --trace trace.txt
  fault trace:
  4 slow-proc 1 2 3
  12 crash 1 2
  == execution under faults, n=6 ==
  +-------------------------------+----------+---------+-----------+---------+
  | policy                        | makespan | aborted | re-issued | retries |
  +===============================+==========+=========+===========+=========+
  | planned (no faults)           | 37       | -       | -         | -       |
  | static replay (blind)         | 82       | 1       | 2         | 0       |
  | replan on fault (1/2 adopted) | 63       | 1       | 2         | 0       |
  | demand-driven pull            | 63       | 1       | 1         | 0       |
  +-------------------------------+----------+---------+-----------+---------+

A malformed trace is rejected with a diagnostic:

  $ printf '5 meteor 1 1\n' > bad.txt
  $ ../../bin/msts.exe faults -p spider.txt -n 6 --trace bad.txt
  error: cannot load trace bad.txt: line 1: unknown event kind "meteor"
  [2]
