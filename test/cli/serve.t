The solver daemon: `msts serve` answers JSONL request frames on a Unix
socket, and `msts call` is the one-shot client.  A decoded `ok` payload
is byte-identical to the matching subcommand's --format=json output —
both sides render through the same Msts.Api.json_of_reply (docs/API.md).

  $ cat > fig2.txt <<'PLATFORM'
  > chain
  > 2 3
  > 3 5
  > PLATFORM

Boot the daemon and wait for its socket:

  $ ../../bin/msts.exe serve --socket msts.sock > serve.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S msts.sock ] && break; sleep 0.1; done

Ping answers with the protocol version:

  $ ../../bin/msts.exe call --socket msts.sock '{"op":"ping"}'
  {
    "version": 1
  }

The platform travels in the frame as its canonical multi-line
serialization (the same text `msts generate -o` writes), embedded as a
JSON string:

  $ P=$(awk '{printf "%s\\n", $0}' fig2.txt)

Solve through the daemon and directly; the bytes must match:

  $ ../../bin/msts.exe call --socket msts.sock \
  >   "{\"op\":\"schedule\",\"platform\":\"$P\",\"tasks\":5}" > served.json
  $ ../../bin/msts.exe schedule -p fig2.txt -n 5 --format=json > direct.json
  $ cmp served.json direct.json && echo schedule-identical
  schedule-identical

  $ ../../bin/msts.exe call --socket msts.sock \
  >   "{\"op\":\"metrics\",\"platform\":\"$P\",\"tasks\":5}" > served.json
  $ ../../bin/msts.exe metrics -p fig2.txt -n 5 --format=json > direct.json
  $ cmp served.json direct.json && echo metrics-identical
  metrics-identical

Errors come back as structured frames with stable codes — the daemon
never hangs up on a bad request (exit 1 = error response):

  $ ../../bin/msts.exe call --socket msts.sock '{"op":"frobnicate"}'
  error [bad_request]: unknown op "frobnicate"
  [1]

  $ ../../bin/msts.exe call --socket msts.sock '{"v":9,"op":"ping"}'
  error [unsupported_version]: protocol version 9 not supported (this is version 1)
  [1]

  $ ../../bin/msts.exe call --socket msts.sock \
  >   '{"op":"schedule","platform":"gibberish","tasks":2}'
  error [invalid_platform]: platform: line 1: unknown platform kind "gibberish"
  [1]

The shutdown operation drains and exits cleanly (the socket is removed):

  $ ../../bin/msts.exe call --socket msts.sock '{"op":"shutdown"}'
  {
    "shutting_down": true
  }
  $ for i in $(seq 1 100); do [ ! -S msts.sock ] && break; sleep 0.1; done
  $ wait

Every request — including the rejected ones — got exactly one response:

  $ cat serve.log
  msts serve: listening on msts.sock (jobs=1, cache=256, queue=1024)
  msts serve: drained 0 request(s), served 7, bye

A batch request is sharded across the worker pool at admission (one
unit per distinct uncached solve — note the duplicate below) and
reassembled in submission order.  Whatever --jobs, the raw reply frame
is byte-identical:

  $ REQ="{\"op\":\"batch\",\"problems\":[{\"platform\":\"$P\",\"tasks\":3},{\"platform\":\"$P\",\"tasks\":5},{\"platform\":\"$P\",\"tasks\":4},{\"platform\":\"$P\",\"tasks\":3},{\"platform\":\"$P\",\"tasks\":6}]}"

  $ ../../bin/msts.exe serve --socket j1.sock --jobs 1 > j1.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S j1.sock ] && break; sleep 0.1; done
  $ echo "$REQ" | ../../bin/msts.exe call --socket j1.sock --stdin --raw > batch-j1.raw
  $ ../../bin/msts.exe call --socket j1.sock '{"op":"shutdown"}' > /dev/null
  $ wait

  $ ../../bin/msts.exe serve --socket j4.sock --jobs 4 > j4.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S j4.sock ] && break; sleep 0.1; done
  $ echo "$REQ" | ../../bin/msts.exe call --socket j4.sock --stdin --raw > batch-j4.raw
  $ ../../bin/msts.exe call --socket j4.sock '{"op":"shutdown"}' > /dev/null
  $ wait

  $ cmp batch-j1.raw batch-j4.raw && echo batch-identical-across-jobs
  batch-identical-across-jobs
