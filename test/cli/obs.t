Observability and the unified facade from the command line.

  $ cat > fig2.txt <<'PLATFORM'
  > chain
  > 2 3
  > 3 5
  > PLATFORM
  $ ../../bin/msts.exe generate --kind spider --size 3 --seed 5 -o spider.txt

Profiling a pure solve: the summary and counter totals are deterministic
(span timings are not, so only the counter table is checked here).

  $ ../../bin/msts.exe profile -p spider.txt -n 6 --workload solve --trace-out trace.json > out.txt
  $ head -3 out.txt
  workload: solve
  makespan: 20
  tasks: 6
  $ sed -n '/== counters ==/,/== spans ==/p' out.txt | grep -E '\| (chain|fork|spider)\.'
  | chain.candidate_scans        | 32    |
  | chain.hull_updates           | 20    |
  | chain.kernel.fast_placements | 18    |
  | chain.tasks_placed           | 18    |
  | fork.insert_probes           | 27    |
  | fork.nodes_accepted          | 22    |
  | fork.nodes_considered        | 33    |
  | spider.leg_reuses            | 9     |
  | spider.search_probes         | 3     |
  | spider.virtual_nodes         | 33    |

The spans table follows (timings vary run to run, so only names are checked):

  $ sed -n '/== spans ==/,$p' out.txt | grep -oE '(chain|fork|spider|netsim)\.[a-z_.]+' | sort -u
  chain.deadline.schedule
  fork.allocate
  spider.leg_schedules
  spider.min_makespan
  spider.schedule
  $ grep '^trace:' out.txt
  trace: trace.json (169 events, valid chrome trace)

The emitted trace is a valid Chrome trace_event document (the profile
command re-parses the written file itself; double-check the shape):

  $ grep -c '"traceEvents"' trace.json
  1
  $ grep -o '"ph": "[BEC]"' trace.json | sort | uniq -c | sed 's/^ *//'
  11 "ph": "B"
  147 "ph": "C"
  11 "ph": "E"

Every read-only subcommand speaks JSON through the same encoder:

  $ ../../bin/msts.exe schedule -p fig2.txt -n 3 --format=json
  {
    "kind": "chain",
    "tasks": 3,
    "makespan": 10,
    "entries": [
      {
        "task": 1,
        "proc": 2,
        "start": 5,
        "comms": [
          0,
          2
        ]
      },
      {
        "task": 2,
        "proc": 1,
        "start": 4,
        "comms": [
          2
        ]
      },
      {
        "task": 3,
        "proc": 1,
        "start": 7,
        "comms": [
          5
        ]
      }
    ]
  }
  $ ../../bin/msts.exe bounds -p fig2.txt -n 5 --format=json | head -12
  {
    "title": "bounds and schedulers, n=5",
    "columns": [
      "method",
      "makespan"
    ],
    "rows": [
      [
        "port lower bound",
        "13"
      ],
      [
  $ ../../bin/msts.exe metrics -p fig2.txt -n 3 --format=json | head -8
  {
    "kind": "chain",
    "tasks": 3,
    "makespan": 10,
    "total_waiting": 0,
    "max_waiting": 0,
    "processors": [
      {
  $ ../../bin/msts.exe deadline -p fig2.txt -d 10 --format=json | head -6
  {
    "deadline": 10,
    "kind": "chain",
    "tasks": 3,
    "makespan": 10,
    "entries": [
  $ ../../bin/msts.exe faults -p spider.txt -n 4 --seed 2 --events 2 --format=json | head -10
  {
    "trace": [
      "7 slow-proc 3 1 3",
      "12 drop 1 1 1"
    ],
    "replans_adopted": 0,
    "replans_considered": 0,
    "results": {
      "title": "execution under faults, n=4",
      "columns": [

The execute workload drives the plan through the event-driven simulator:

  $ ../../bin/msts.exe profile -p spider.txt -n 6 --workload execute > big.txt; head -4 big.txt
  workload: execute
  planned_makespan: 20
  realized_makespan: 20
  tasks: 6
  $ sed -n '/== counters ==/,/== spans ==/p' big.txt | grep -E '\| (engine|netsim)\.'
  | engine.events                | 24    |
  | netsim.executions            | 6     |
  | netsim.resource_waits        | 5     |

Solving errors surface through the facade with exit code 2:

  $ cat > branchy.txt <<'PLATFORM'
  > tree
  > 1 1 0
  > 1 2 1
  > 1 3 1
  > PLATFORM
  $ ../../bin/msts.exe schedule -p branchy.txt -n 3
  error: this tree branches below the master; use the tree cover heuristics instead
  [2]
  $ ../../bin/msts.exe schedule -p fig2.txt -n 3 --format=yaml 2>&1 | head -2
  msts: option '--format': invalid value 'yaml', expected either 'text' or
        'json'
