The online anytime scheduler, end to end.  `msts online` drives the same
session registry (`Msts_online.Service`) that the `msts serve` engine
embeds, so a scripted session produces byte-identical response frames
whether it runs locally or over the daemon's socket (docs/ONLINE.md).

  $ cat > session.jsonl <<'EOF'
  > # figure-2 chain: five tasks fit before deadline 14
  > {"id":1,"op":"online-open","platform":"chain\n2 3\n3 5","deadline":14}
  > {"id":2,"op":"online-submit","session":1,"tasks":6}
  > {"id":3,"op":"online-advance","session":1,"time":5}
  > {"id":4,"op":"online-extend","session":1,"deadline":15}
  > {"id":5,"op":"online-extend","session":1,"deadline":22}
  > {"id":6,"op":"online-degrade","session":1,"at":2,"work_factor":3}
  > {"id":7,"op":"online-plan","session":1}
  > {"id":8,"op":"online-close","session":1}
  > {"id":9,"op":"online-submit","session":1,"tasks":1}
  > EOF

The local session.  Six arrivals: five place (each later arrival emits
earlier — the plan grows backward from the deadline), the sixth is
rejected.  Advancing the execution frontier to 5 freezes three
placements; a one-tick extension cannot clear them and the refusal names
the minimal acceptable deadline; extending to exactly that deadline
displaces the two revisable tasks.  The degradation is refused because
processor 2 already executed a frozen placement.  The plan payload
renders like `msts deadline --format=json`, prefixed with the session
state; closed sessions answer `unknown session`:

  $ ../../bin/msts.exe online --script session.jsonl | tee local.out
  {"v":1,"id":1,"ok":{"session":1,"deadline":14,"procs":2}}
  {"v":1,"id":2,"ok":{"session":1,"placed":5,"rejected":1,"deltas":[{"delta":"placed","task":1,"proc":1,"start":11,"comms":[9]},{"delta":"placed","task":2,"proc":1,"start":8,"comms":[6]},{"delta":"placed","task":3,"proc":2,"start":9,"comms":[4,6]},{"delta":"placed","task":4,"proc":1,"start":5,"comms":[2]},{"delta":"placed","task":5,"proc":1,"start":2,"comms":[0]},{"delta":"rejected","task":6}]}}
  {"v":1,"id":3,"ok":{"session":1,"frontier":5,"frozen":3,"deltas":[{"delta":"frozen","frontier":5,"tasks":3}]}}
  {"v":1,"id":4,"error":{"code":"invalid_argument","message":"Msts.Online.extend: 15 does not clear the frozen prefix; extend to at least 22"}}
  {"v":1,"id":5,"ok":{"session":1,"deadline":22,"displaced":2,"deltas":[{"delta":"displaced","task":1,"proc":1,"start":19,"comms":[17]},{"delta":"displaced","task":2,"proc":1,"start":16,"comms":[14]}]}}
  {"v":1,"id":6,"error":{"code":"invalid_argument","message":"Msts.Online.degrade: processor 2 holds 1 frozen placement(s)"}}
  {"v":1,"id":7,"ok":{"session":1,"frontier":5,"frozen":3,"rejected":1,"deadline":22,"kind":"chain","tasks":5,"makespan":22,"entries":[{"task":1,"proc":1,"start":2,"comms":[0]},{"task":2,"proc":1,"start":5,"comms":[2]},{"task":3,"proc":2,"start":9,"comms":[4,6]},{"task":4,"proc":1,"start":16,"comms":[14]},{"task":5,"proc":1,"start":19,"comms":[17]}]}}
  {"v":1,"id":8,"ok":{"session":1,"closed":true,"placed":5,"rejected":1}}
  {"v":1,"id":9,"error":{"code":"invalid_argument","message":"Msts.Online.Service: unknown session 1"}}

Non-online operations don't belong here — the daemon answers them
engine-side, the local session runner points at `msts call`:

  $ echo '{"op":"ping"}' | ../../bin/msts.exe online
  {"v":1,"error":{"code":"bad_request","message":"ping is not an online operation; use msts call"}}

A mid-run fault that *is* adoptable: with the frontier at 1 only the
earliest placement is frozen (on processor 1), so degrading processor 2
re-places every revisable task on the slower platform and extends the
deadline by exactly the slack the new suffix needs:

  $ ../../bin/msts.exe online <<'EOF'
  > {"op":"online-open","platform":"chain\n2 3\n3 5","deadline":14}
  > {"op":"online-submit","session":1,"tasks":5}
  > {"op":"online-advance","session":1,"time":1}
  > {"op":"online-degrade","session":1,"at":2,"work_factor":2}
  > {"op":"online-close","session":1}
  > EOF
  {"v":1,"ok":{"session":1,"deadline":14,"procs":2}}
  {"v":1,"ok":{"session":1,"placed":5,"rejected":0,"deltas":[{"delta":"placed","task":1,"proc":1,"start":11,"comms":[9]},{"delta":"placed","task":2,"proc":1,"start":8,"comms":[6]},{"delta":"placed","task":3,"proc":2,"start":9,"comms":[4,6]},{"delta":"placed","task":4,"proc":1,"start":5,"comms":[2]},{"delta":"placed","task":5,"proc":1,"start":2,"comms":[0]}]}}
  {"v":1,"ok":{"session":1,"frontier":1,"frozen":1,"deltas":[{"delta":"frozen","frontier":1,"tasks":1}]}}
  {"v":1,"ok":{"session":1,"replaced":4,"extended_by":5,"deadline":19,"deltas":[{"delta":"displaced","task":1,"proc":1,"start":16,"comms":[14]},{"delta":"displaced","task":2,"proc":1,"start":13,"comms":[11]},{"delta":"displaced","task":3,"proc":1,"start":10,"comms":[8]},{"delta":"displaced","task":4,"proc":1,"start":7,"comms":[5]}]}}
  {"v":1,"ok":{"session":1,"closed":true,"placed":5,"rejected":0}}

Now the same script through a real daemon.  `msts call --stdin` streams
the frames over one persistent connection (session ids stay valid) and
`--raw` echoes the response frames untouched:

  $ ../../bin/msts.exe serve --socket msts.sock > serve.log 2>&1 &
  $ SERVE=$!
  $ for i in $(seq 1 100); do [ -S msts.sock ] && break; sleep 0.1; done

  $ grep -v '^#' session.jsonl \
  >   | ../../bin/msts.exe call --socket msts.sock --stdin --raw > daemon.out
  $ cmp daemon.out local.out && echo byte-identical
  byte-identical

SIGTERM mid-session: a second connection opens a session and submits,
the daemon is terminated while the connection is live, and every frame
written still gets its response — zero dropped deltas — before the
daemon drains out:

  $ mkfifo req
  $ ../../bin/msts.exe call --socket msts.sock --stdin --raw < req > drain.out &
  $ CLIENT=$!
  $ exec 9> req
  $ printf '%s\n' '{"op":"online-open","platform":"chain\n2 3\n3 5","deadline":40}' >&9
  $ printf '%s\n' '{"op":"online-submit","session":2,"tasks":3}' >&9
  $ sleep 0.5
  $ kill -TERM $SERVE
  $ exec 9>&-
  $ wait $CLIENT
  $ wait $SERVE
  $ cat drain.out
  {"v":1,"ok":{"session":2,"deadline":40,"procs":2}}
  {"v":1,"ok":{"session":2,"placed":3,"rejected":0,"deltas":[{"delta":"placed","task":1,"proc":1,"start":37,"comms":[35]},{"delta":"placed","task":2,"proc":1,"start":34,"comms":[32]},{"delta":"placed","task":3,"proc":2,"start":35,"comms":[30,32]}]}}

Every request got exactly one response and the daemon exited cleanly:

  $ grep -c bye serve.log
  1
