Per-resource utilization reports and trace diffing.

A two-slave chain small enough to verify by hand: task 1 travels
master->P1 on [0,1], P1->P2 on [1,2] and computes on [2,4]; task 2
occupies the master port on [1,2] and P1 computes it on [2,4].  Every
processor's compute + starved + idle sums to the makespan.

  $ cat > two.txt <<'PLATFORM'
  > chain
  > 1 2
  > 1 2
  > PLATFORM
  $ ../../bin/msts.exe report -p two.txt -n 2
  source: realized execution
  tasks: 2, makespan: 4
  master port: busy 2/4 ( 50.0%)
  leg 1:
    depth 1   link busy 2    ( 50.0%)  compute 2    ( 50.0%)  starved 2    idle 0     tasks 1
    depth 2   link busy 1    ( 25.0%)  compute 2    ( 50.0%)  starved 2    idle 0     tasks 1
  $ ../../bin/msts.exe report -p two.txt -n 2 --planned --format=json
  {
    "source": "planned schedule",
    "tasks": 2,
    "makespan": 4,
    "master_port": {
      "busy": 2,
      "busy_pct": 50.0
    },
    "legs": [
      {
        "leg": 1,
        "nodes": [
          {
            "depth": 1,
            "link_busy": 2,
            "link_busy_pct": 50.0,
            "tasks": 1,
            "compute": 2,
            "starved": 2,
            "idle": 0,
            "cpu_busy_pct": 50.0
          },
          {
            "depth": 2,
            "link_busy": 1,
            "link_busy_pct": 25.0,
            "tasks": 1,
            "compute": 2,
            "starved": 2,
            "idle": 0,
            "cpu_busy_pct": 50.0
          }
        ]
      }
    ]
  }

Diffing a profile against itself finds nothing and exits 0 (the CI
self-check):

  $ ../../bin/msts.exe generate --kind spider --size 3 --seed 5 -o spider.txt
  $ ../../bin/msts.exe profile -p spider.txt -n 6 --workload execute --format=json > base.json
  $ ../../bin/msts.exe profile -p spider.txt -n 6 --workload execute --format=json > again.json
  $ ../../bin/msts.exe trace diff base.json again.json
  trace diff: base.json -> again.json (threshold 10.0%)
  no differences
  regressions: 0

An injected slowdown (every link and processor 3x slower) shifts the
simulated-time histograms and the realized makespan; the diff flags the
regressions and exits 1:

  $ awk 'NF==2 {print $1*3, $2*3; next} {print}' spider.txt > slow.txt
  $ ../../bin/msts.exe profile -p slow.txt -n 6 --workload execute --format=json > cand.json
  $ ../../bin/msts.exe trace diff base.json cand.json
  trace diff: base.json -> cand.json (threshold 10.0%)
  == changes ==
  +-----------+-----------------------+--------+----------+-----------+-----------+
  | section   | name                  | metric | baseline | candidate | delta     |
  +===========+=======================+========+==========+===========+===========+
  | summary   | planned_makespan      | value  | 20       | 60        | +200.0% ! |
  | summary   | realized_makespan     | value  | 20       | 60        | +200.0% ! |
  | counter   | fork.insert_probes    | total  | 27       | 35        | +29.6% !  |
  | counter   | fork.nodes_accepted   | total  | 22       | 27        | +22.7% !  |
  | counter   | fork.nodes_considered | total  | 33       | 41        | +24.2% !  |
  | counter   | spider.leg_reuses     | total  | 9        | 12        | +33.3% !  |
  | counter   | spider.search_probes  | total  | 3        | 4         | +33.3% !  |
  | counter   | spider.virtual_nodes  | total  | 33       | 41        | +24.2% !  |
  | span      | fork.allocate         | calls  | 4        | 5         | +25.0% !  |
  | histogram | engine.event_gap_us   | p99    | 3        | 9         | +200.0% ! |
  | histogram | engine.event_gap_us   | max    | 3        | 9         | +200.0% ! |
  +-----------+-----------------------+--------+----------+-----------+-----------+
  regressions: 11
  [1]

A loose threshold demotes the same shifts to mere changes (exit 0), and
JSON output carries the verdicts machine-readably:

  $ ../../bin/msts.exe trace diff base.json cand.json --threshold 500 | tail -1
  regressions: 0
  $ ../../bin/msts.exe trace diff base.json base.json --format=json
  {
    "baseline": "base.json",
    "candidate": "base.json",
    "threshold_pct": 10.0,
    "changes": [],
    "regressions": 0
  }
