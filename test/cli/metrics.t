Live metrics exposition: `msts serve --metrics-out` atomically rewrites
a Prometheus text file, the `metrics` control op serves the same
exposition over the socket, and `msts stats` is the terminal client
(docs/OBSERVABILITY.md, docs/API.md).

  $ cat > fig2.txt <<'PLATFORM'
  > chain
  > 2 3
  > 3 5
  > PLATFORM

Boot with a metrics file and a short rewrite interval:

  $ ../../bin/msts.exe serve --socket msts.sock --metrics-out metrics.prom \
  >   --metrics-interval 0.05 --quiet > serve.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S msts.sock ] && break; sleep 0.1; done

The scrape file exists from boot, before any request arrives:

  $ test -f metrics.prom && echo boot-written
  boot-written

Drive some traffic so the counters move:

  $ P=$(awk '{printf "%s\\n", $0}' fig2.txt)
  $ ../../bin/msts.exe call --socket msts.sock \
  >   "{\"op\":\"schedule\",\"platform\":\"$P\",\"tasks\":5}" > /dev/null
  $ ../../bin/msts.exe call --socket msts.sock '{"op":"ping"}' > /dev/null

A client-supplied trace context is echoed verbatim on the response
frame; trace-less frames get no injected field (the ping above):

  $ ../../bin/msts.exe call --raw --socket msts.sock '{"id":7,"trace":"t-1","op":"ping"}'
  {"v":1,"id":7,"trace":"t-1","ok":{"version":1}}

The `metrics` control op wraps the exposition in a versioned envelope:

  $ ../../bin/msts.exe call --socket msts.sock '{"op":"metrics"}' | grep '"format"'
    "format": "prometheus-text-0.0.4",

`msts stats` prints the daemon's statistics document — including the
per-request latency breakdown and the bounded slow-request log:

  $ ../../bin/msts.exe stats --socket msts.sock > stats.json
  $ grep -c '"request"\|"slow_requests"\|"stopping"' stats.json
  3

`msts stats --metrics` prints the raw Prometheus text, and `--watch`
polls — two rounds separated by one `---` line:

  $ ../../bin/msts.exe stats --socket msts.sock --metrics | head -2
  # HELP msts_chain_candidate_scans_total Counter chain.candidate_scans.
  # TYPE msts_chain_candidate_scans_total counter
  $ ../../bin/msts.exe stats --socket msts.sock --watch --interval 0.1 --count 2 \
  >   --metrics | grep -c '^---'
  1

Shut down; the epilogue writes the exposition one last time:

  $ ../../bin/msts.exe call --socket msts.sock '{"op":"shutdown"}' > /dev/null
  $ for i in $(seq 1 100); do [ ! -S msts.sock ] && break; sleep 0.1; done
  $ wait

The scrape file is well-formed text format 0.0.4.  Every `# TYPE` is
preceded by its family's `# HELP`:

  $ awk '/^# HELP/ { help = $3 }
  >      /^# TYPE/ { if ($3 != help) { print "TYPE without HELP: " $3; exit 1 } }' \
  >   metrics.prom && echo help-type-paired
  help-type-paired

Histogram buckets are cumulative (monotone, per family, in file order)
and the `+Inf` bucket equals the family's `_count`:

  $ awk '
  >   /_bucket\{le="/ {
  >     name = $1; sub(/_bucket\{.*/, "", name)
  >     if (name != prev) { last = -1; prev = name }
  >     if ($2 + 0 < last) { print "non-monotone: " $0; bad = 1 }
  >     last = $2 + 0
  >     if (index($1, "le=\"+Inf\"") > 0) inf[name] = $2 + 0
  >   }
  >   /_count / { cnt[$1] = $2 + 0 }
  >   END {
  >     for (n in inf) if (inf[n] != cnt[n "_count"]) { print "bucket/count mismatch: " n; bad = 1 }
  >     exit bad
  >   }' metrics.prom && echo buckets-monotone
  buckets-monotone

The traffic we sent is in the final scrape — counters carry the
conventional `_total` suffix, and the per-request breakdown histograms
are exported:

  $ grep -c '^msts_serve_requests_total \|^msts_request_solve_us_count \|^msts_request_queue_wait_us_count \|^msts_request_encode_us_count ' metrics.prom
  4
