(* Unit and property tests for Msts_util: PRNG, heap, stats, intx, table. *)

open Helpers

(* ---------- Prng ---------- *)

let prng_deterministic () =
  let a = Msts.Prng.create 123 and b = Msts.Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Msts.Prng.bits64 a) (Msts.Prng.bits64 b)
  done

let prng_seed_sensitivity () =
  let a = Msts.Prng.create 1 and b = Msts.Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Msts.Prng.bits64 a <> Msts.Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let prng_copy_independent () =
  let a = Msts.Prng.create 9 in
  let b = Msts.Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Msts.Prng.bits64 a)
    (Msts.Prng.bits64 b);
  let _ = Msts.Prng.bits64 a in
  let after_a = Msts.Prng.bits64 a in
  let after_b = Msts.Prng.bits64 b in
  Alcotest.(check bool) "advancing one does not touch the other" true
    (after_a <> after_b || after_a = after_b (* streams now out of sync *))

let prng_split_decorrelates () =
  let a = Msts.Prng.create 5 in
  let b = Msts.Prng.split a in
  let equal_count = ref 0 in
  for _ = 1 to 50 do
    if Msts.Prng.bits64 a = Msts.Prng.bits64 b then incr equal_count
  done;
  Alcotest.(check int) "split streams do not coincide" 0 !equal_count

let prng_int_bounds =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"Prng.int stays in [0, bound)"
       QCheck.(pair (int_range 1 1000) small_int)
       (fun (bound, seed) ->
         let rng = Msts.Prng.create seed in
         let v = Msts.Prng.int rng bound in
         v >= 0 && v < bound))

let prng_int_in_bounds =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"Prng.int_in stays in [lo, hi]"
       QCheck.(triple (int_range (-50) 50) (int_range 0 100) small_int)
       (fun (lo, span, seed) ->
         let hi = lo + span in
         let rng = Msts.Prng.create seed in
         let v = Msts.Prng.int_in rng lo hi in
         v >= lo && v <= hi))

let prng_int_rejects_nonpositive () =
  let rng = Msts.Prng.create 0 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Msts.Prng.int rng 0))

let prng_permutation_is_permutation =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"Prng.permutation is a permutation"
       QCheck.(pair (int_range 0 50) small_int)
       (fun (n, seed) ->
         let rng = Msts.Prng.create seed in
         let perm = Msts.Prng.permutation rng n in
         let sorted = Array.copy perm in
         Array.sort compare sorted;
         sorted = Array.init n (fun i -> i)))

let prng_shuffle_preserves_elements =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"Prng.shuffle preserves the multiset"
       QCheck.(pair (list small_int) small_int)
       (fun (xs, seed) ->
         let rng = Msts.Prng.create seed in
         let a = Array.of_list xs in
         Msts.Prng.shuffle rng a;
         List.sort compare (Array.to_list a) = List.sort compare xs))

let prng_float_bounds () =
  let rng = Msts.Prng.create 77 in
  for _ = 1 to 1000 do
    let v = Msts.Prng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let prng_choice_uniformish () =
  let rng = Msts.Prng.create 3 in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    let v = Msts.Prng.choice rng [| 0; 1; 2; 3 |] in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 800 && c < 1200))
    counts

(* ---------- Heap ---------- *)

let heap_sorts =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"Heap.drain returns sorted order"
       QCheck.(list int)
       (fun xs ->
         let h = Msts.Heap.create ~cmp:Int.compare in
         List.iter (Msts.Heap.push h) xs;
         Msts.Heap.drain h = List.sort Int.compare xs))

let heap_of_array_sorts =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"Heap.of_array heapifies correctly"
       QCheck.(array int)
       (fun xs ->
         let h = Msts.Heap.of_array ~cmp:Int.compare xs in
         Msts.Heap.drain h = List.sort Int.compare (Array.to_list xs)))

let heap_peek_pop () =
  let h = Msts.Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Msts.Heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Msts.Heap.peek h);
  Alcotest.(check (option int)) "pop empty" None (Msts.Heap.pop h);
  Msts.Heap.push h 5;
  Msts.Heap.push h 2;
  Msts.Heap.push h 9;
  Alcotest.(check (option int)) "peek min" (Some 2) (Msts.Heap.peek h);
  Alcotest.(check int) "length" 3 (Msts.Heap.length h);
  Alcotest.(check int) "pop_exn" 2 (Msts.Heap.pop_exn h);
  Alcotest.(check int) "length after pop" 2 (Msts.Heap.length h)

let heap_pop_exn_empty () =
  let h = Msts.Heap.create ~cmp:Int.compare in
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Msts.Heap.pop_exn h))

let heap_custom_order () =
  let h = Msts.Heap.create ~cmp:(fun a b -> Int.compare b a) in
  List.iter (Msts.Heap.push h) [ 3; 1; 4; 1; 5 ];
  Alcotest.(check (list int)) "max-heap drain" [ 5; 4; 3; 1; 1 ] (Msts.Heap.drain h)

(* ---------- Stats ---------- *)

let feq = Alcotest.float 1e-9

let stats_mean () =
  Alcotest.check feq "mean" 2.5 (Msts.Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.check feq "empty mean" 0.0 (Msts.Stats.mean [||])

let stats_median () =
  Alcotest.check feq "odd" 3.0 (Msts.Stats.median [| 5.0; 1.0; 3.0 |]);
  Alcotest.check feq "even" 2.5 (Msts.Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  Alcotest.check feq "empty" 0.0 (Msts.Stats.median [||])

let stats_stddev () =
  Alcotest.check feq "constant" 0.0 (Msts.Stats.stddev [| 2.0; 2.0; 2.0 |]);
  Alcotest.check (Alcotest.float 1e-6) "known" 2.0
    (Msts.Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.check feq "p0" 1.0 (Msts.Stats.percentile xs 0.0);
  Alcotest.check feq "p50" 3.0 (Msts.Stats.percentile xs 50.0);
  Alcotest.check feq "p100" 5.0 (Msts.Stats.percentile xs 100.0);
  Alcotest.check feq "p25" 2.0 (Msts.Stats.percentile xs 25.0)

let stats_min_max () =
  let lo, hi = Msts.Stats.min_max [| 3.0; -1.0; 7.0 |] in
  Alcotest.check feq "min" (-1.0) lo;
  Alcotest.check feq "max" 7.0 hi

(* Error messages carry the repo-wide [Msts.<Module>.<fn>: ...] prefix —
   Api.error_of_solve_failure classifies on it, so it is load-bearing. *)
let stats_error_prefix_pinned () =
  Alcotest.check_raises "empty min_max"
    (Invalid_argument "Msts.Stats.min_max: empty array") (fun () ->
      ignore (Msts.Stats.min_max [||]))

let stats_geometric_mean () =
  Alcotest.check feq "geo" 2.0 (Msts.Stats.geometric_mean [| 1.0; 2.0; 4.0 |])

(* ---------- Intx ---------- *)

let intx_ceil_div () =
  Alcotest.(check int) "exact" 3 (Msts.Intx.ceil_div 9 3);
  Alcotest.(check int) "round up" 4 (Msts.Intx.ceil_div 10 3);
  Alcotest.(check int) "zero" 0 (Msts.Intx.ceil_div 0 5)

let intx_clamp () =
  Alcotest.(check int) "below" 2 (Msts.Intx.clamp ~lo:2 ~hi:5 1);
  Alcotest.(check int) "above" 5 (Msts.Intx.clamp ~lo:2 ~hi:5 9);
  Alcotest.(check int) "inside" 3 (Msts.Intx.clamp ~lo:2 ~hi:5 3)

let intx_range () =
  Alcotest.(check (list int)) "basic" [ 2; 3; 4 ] (Msts.Intx.range 2 4);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Msts.Intx.range 7 7);
  Alcotest.(check (list int)) "empty" [] (Msts.Intx.range 3 2)

let intx_argmin_minmax () =
  Alcotest.(check int) "argmin" 1 (Msts.Intx.argmin [| 4; 1; 3; 1 |]);
  Alcotest.(check int) "min" 1 (Msts.Intx.min_array [| 4; 1; 3 |]);
  Alcotest.(check int) "max" 4 (Msts.Intx.max_array [| 4; 1; 3 |]);
  Alcotest.(check int) "sum" 8 (Msts.Intx.sum [| 4; 1; 3 |])

let intx_binary_search =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"binary_search_least finds the threshold"
       QCheck.(pair (int_range 0 100) (int_range 0 120))
       (fun (threshold, hi) ->
         let p x = x >= threshold in
         match Msts.Intx.binary_search_least ~lo:0 ~hi p with
         | Some x -> x = threshold && threshold <= hi
         | None -> threshold > hi))

let intx_binary_search_empty () =
  Alcotest.(check (option int)) "lo > hi" None
    (Msts.Intx.binary_search_least ~lo:5 ~hi:3 (fun _ -> true))

(* ---------- Table ---------- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let index_of ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i =
    if i + m > n then -1 else if String.sub s i m = sub then i else at (i + 1)
  in
  at 0

let table_render () =
  let t = Msts.Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Msts.Table.add_row t [ "1"; "hello" ];
  Msts.Table.add_int_row t [ 22; 333 ];
  let rendered = Msts.Table.render t in
  Alcotest.(check bool) "contains title" true (contains ~sub:"demo" rendered)

let table_arity () =
  let t = Msts.Table.create ~title:"x" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Msts.Table.add_row t [ "only-one" ])

let table_csv () =
  let t = Msts.Table.create ~title:"t" ~columns:[ "name"; "value" ] in
  Msts.Table.add_row t [ "plain"; "1" ];
  Msts.Table.add_row t [ "with,comma"; "quote\"inside" ];
  let csv = Msts.Table.to_csv t in
  Alcotest.(check string) "csv"
    "name,value\nplain,1\n\"with,comma\",\"quote\"\"inside\"" csv

let table_rows_in_order () =
  let t = Msts.Table.create ~title:"t" ~columns:[ "i" ] in
  List.iter (fun i -> Msts.Table.add_int_row t [ i ]) [ 1; 2; 3 ];
  let rendered = Msts.Table.render t in
  let pos s = index_of ~sub:s rendered in
  Alcotest.(check bool) "ordered" true
    (pos "| 1" < pos "| 2" && pos "| 2" < pos "| 3")

(* ---------- Lru ---------- *)

let lru_case msg expected got = Alcotest.(check int) msg expected got

let lru_basics () =
  let c = Msts.Lru.create ~capacity:2 in
  Msts.Lru.add c "a" 1;
  Msts.Lru.add c "b" 2;
  lru_case "two bindings" 2 (Msts.Lru.length c);
  Alcotest.(check (option int)) "hit a" (Some 1) (Msts.Lru.find c "a");
  Msts.Lru.add c "c" 3;
  (* "a" was just promoted, so "b" is the eviction victim *)
  Alcotest.(check (option int)) "b evicted" None (Msts.Lru.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Msts.Lru.find c "a");
  Alcotest.(check (list (pair string int))) "MRU order"
    [ ("a", 1); ("c", 3) ] (Msts.Lru.to_list c);
  Msts.Lru.clear c;
  lru_case "cleared" 0 (Msts.Lru.length c)

let lru_rejects_zero_capacity () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Lru.create: capacity must be >= 1") (fun () ->
      ignore (Msts.Lru.create ~capacity:0))

(* The model-based property: an LRU of capacity k behaves exactly like the
   obvious list model, and a lookup only ever returns the value bound to
   that very key — a colliding hash bucket (many keys, small table) can
   never serve a poisoned entry.  Ops: add / find over a small key space so
   collisions, duplicates and evictions all actually happen. *)
let lru_matches_model =
  let open QCheck in
  to_alcotest
    (Test.make ~count:300 ~name:"lru agrees with a list model"
       (pair (int_range 1 6)
          (list (pair (int_range 0 11) (option (int_range 0 999)))))
       (fun (capacity, ops) ->
         let c = Msts.Lru.create ~capacity in
         (* model: assoc list, MRU first *)
         let model = ref [] in
         List.for_all
           (fun (key, op) ->
             match op with
             | Some v ->
                 Msts.Lru.add c key v;
                 model := (key, v) :: List.remove_assoc key !model;
                 if List.length !model > capacity then
                   model := List.filteri (fun i _ -> i < capacity) !model;
                 Msts.Lru.length c = List.length !model
                 && Msts.Lru.to_list c
                    = List.map (fun (k, v) -> (k, v)) !model
             | None -> (
                 let expected = List.assoc_opt key !model in
                 (match expected with
                 | Some _ ->
                     model :=
                       (key, Option.get expected)
                       :: List.remove_assoc key !model
                 | None -> ());
                 Msts.Lru.find c key = expected
                 && Msts.Lru.length c <= capacity))
           ops))

(* A hit must hand back the physically identical value — the batch cache
   relies on this to return the very same plan, not a reconstruction. *)
let lru_hit_is_physical () =
  let c = Msts.Lru.create ~capacity:4 in
  let value = Array.init 32 Fun.id in
  Msts.Lru.add c "k" value;
  (match Msts.Lru.find c "k" with
  | Some v -> Alcotest.(check bool) "physically equal" true (v == value)
  | None -> Alcotest.fail "lost binding");
  (* still the same object after being churned by other keys *)
  Msts.Lru.add c "x" [| 0 |];
  Msts.Lru.add c "y" [| 1 |];
  match Msts.Lru.find c "k" with
  | Some v -> Alcotest.(check bool) "still physically equal" true (v == value)
  | None -> Alcotest.fail "binding churned away"

let suites =
  [
    ( "util.prng",
      [
        case "deterministic from seed" prng_deterministic;
        case "different seeds differ" prng_seed_sensitivity;
        case "copy is independent" prng_copy_independent;
        case "split decorrelates" prng_split_decorrelates;
        prng_int_bounds;
        prng_int_in_bounds;
        case "int rejects non-positive bound" prng_int_rejects_nonpositive;
        prng_permutation_is_permutation;
        prng_shuffle_preserves_elements;
        case "float stays in range" prng_float_bounds;
        case "choice is roughly uniform" prng_choice_uniformish;
      ] );
    ( "util.heap",
      [
        heap_sorts;
        heap_of_array_sorts;
        case "peek/pop basics" heap_peek_pop;
        case "pop_exn on empty raises" heap_pop_exn_empty;
        case "custom comparison" heap_custom_order;
      ] );
    ( "util.stats",
      [
        case "mean" stats_mean;
        case "median" stats_median;
        case "stddev" stats_stddev;
        case "percentile" stats_percentile;
        case "min_max" stats_min_max;
        case "error messages carry the Msts. prefix" stats_error_prefix_pinned;
        case "geometric mean" stats_geometric_mean;
      ] );
    ( "util.intx",
      [
        case "ceil_div" intx_ceil_div;
        case "clamp" intx_clamp;
        case "range" intx_range;
        case "argmin/min/max/sum" intx_argmin_minmax;
        intx_binary_search;
        case "binary search on empty range" intx_binary_search_empty;
      ] );
    ( "util.table",
      [
        case "render contains title" table_render;
        case "arity mismatch raises" table_arity;
        case "csv escaping" table_csv;
        case "rows keep insertion order" table_rows_in_order;
      ] );
    ( "util.lru",
      [
        case "basics: hit, evict, order, clear" lru_basics;
        case "capacity must be positive" lru_rejects_zero_capacity;
        case "hits are physically identical" lru_hit_is_physical;
        lru_matches_model;
      ] );
  ]
