(* Tests for the metaheuristic baselines. *)

open Helpers

let restarts_feasible_and_bounded =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"random restarts: feasible and above optimal"
       (QCheck.make
          ~print:(fun ((chain, n), r) ->
            Printf.sprintf "%s, n=%d, restarts=%d" (Msts.Chain.to_string chain) n r)
          QCheck.Gen.(
            pair (pair (chain_gen ~max_p:4 ()) (int_range 0 10)) (int_range 0 30)))
       (fun ((chain, n), restarts) ->
         let s = Msts.Local_search.random_restarts ~restarts chain n in
         check_feasible s
         && Msts.Schedule.task_count s = n
         && Msts.Schedule.makespan s >= Msts.Chain_algorithm.makespan chain n))

let restarts_never_worse_than_master_only =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"random restarts include the master-only fallback"
       (chain_with_n_arb ~max_p:4 ~max_n:10 ())
       (fun (chain, n) ->
         Msts.Schedule.makespan (Msts.Local_search.random_restarts ~restarts:0 chain n)
         <= Msts.Chain.master_only_makespan chain n))

let hill_climb_improves_or_keeps =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"hill climbing never ends above its start"
       (chain_with_n_arb ~max_p:5 ~max_n:15 ())
       (fun (chain, n) ->
         let r = Msts.Local_search.hill_climb chain n in
         Msts.Schedule.makespan r.Msts.Local_search.schedule
         <= r.Msts.Local_search.start_makespan
         && check_feasible r.Msts.Local_search.schedule))

let hill_climb_sandwiched =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"hill climbing lands between optimal and the greedy start"
       (chain_with_n_arb ~max_p:4 ~max_n:12 ())
       (fun (chain, n) ->
         let r = Msts.Local_search.hill_climb chain n in
         let m = Msts.Schedule.makespan r.Msts.Local_search.schedule in
         Msts.Chain_algorithm.makespan chain n <= m
         && m <= Msts.List_sched.(chain_makespan Earliest_completion) chain n))

let hill_climb_often_optimal () =
  (* statistical check: on small instances the climber usually closes the
     greedy gap entirely *)
  let rng = Msts.Prng.create 31415 in
  let optimal = ref 0 in
  let trials = 60 in
  for _ = 1 to trials do
    let chain =
      Msts.Generator.chain rng Msts.Generator.default_profile
        ~p:(Msts.Prng.int_in rng 2 4)
    in
    let n = Msts.Prng.int_in rng 4 10 in
    if
      Msts.Local_search.hill_climb_makespan chain n
      = Msts.Chain_algorithm.makespan chain n
    then incr optimal
  done;
  Alcotest.(check bool)
    (Printf.sprintf "optimal on %d/%d small instances (needs > 60%%)" !optimal trials)
    true
    (!optimal * 10 > trials * 6)

let deterministic_by_seed () =
  let chain = figure2_chain in
  let a = Msts.Local_search.hill_climb ~seed:7 chain 12 in
  let b = Msts.Local_search.hill_climb ~seed:7 chain 12 in
  Alcotest.(check bool) "same seed, same schedule" true
    (Msts.Schedule.equal a.Msts.Local_search.schedule b.Msts.Local_search.schedule);
  Alcotest.(check int) "same evaluations" a.Msts.Local_search.evaluations
    b.Msts.Local_search.evaluations

let rejects_negative () =
  Alcotest.check_raises "negative restarts"
    (Invalid_argument "Local_search.random_restarts: negative restarts") (fun () ->
      ignore (Msts.Local_search.random_restarts ~restarts:(-1) figure2_chain 2))

let suites =
  [
    ( "baseline.local_search",
      [
        restarts_feasible_and_bounded;
        restarts_never_worse_than_master_only;
        hill_climb_improves_or_keeps;
        hill_climb_sandwiched;
        case "usually optimal on small instances" hill_climb_often_optimal;
        case "deterministic by seed" deterministic_by_seed;
        case "negative arguments rejected" rejects_negative;
      ] );
  ]
