(* Cross-cutting algebraic properties of the optimal makespan — invariances
   and monotonicities that must hold for any correct implementation of the
   model, checked against the production algorithm. *)

open Helpers

let scale_chain lambda chain =
  Msts.Chain.of_pairs
    (List.map (fun (c, w) -> (lambda * c, lambda * w)) (Msts.Chain.to_pairs chain))

(* time-unit invariance: multiplying every latency and work time by λ
   multiplies the optimal makespan by exactly λ *)
let makespan_scales_linearly =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"makespan scales linearly with the time unit"
       (QCheck.make
          ~print:(fun ((chain, n), lambda) ->
            Printf.sprintf "%s, n=%d, lambda=%d" (Msts.Chain.to_string chain) n lambda)
          QCheck.Gen.(
            pair (pair (chain_gen ~max_p:4 ()) (int_range 0 12)) (int_range 1 5)))
       (fun ((chain, n), lambda) ->
         Msts.Chain_algorithm.makespan (scale_chain lambda chain) n
         = lambda * Msts.Chain_algorithm.makespan chain n))

(* appending a processor at the far end never hurts *)
let extra_processor_never_hurts =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"appending a processor never increases the makespan"
       (QCheck.make
          ~print:(fun ((chain, n), (c, w)) ->
            Printf.sprintf "%s + (c=%d,w=%d), n=%d" (Msts.Chain.to_string chain) c w n)
          QCheck.Gen.(
            pair
              (pair (chain_gen ~max_p:4 ()) (int_range 0 12))
              (pair (int_range 1 10) (int_range 1 10))))
       (fun ((chain, n), (c, w)) ->
         let extended = Msts.Chain.of_pairs (Msts.Chain.to_pairs chain @ [ (c, w) ]) in
         Msts.Chain_algorithm.makespan extended n
         <= Msts.Chain_algorithm.makespan chain n))

(* speeding up any single resource never hurts: decrement one latency or
   one work time (keeping it positive) *)
let speedup_never_hurts =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"speeding up one resource never increases the makespan"
       (QCheck.make
          ~print:(fun ((chain, n), (idx, which)) ->
            Printf.sprintf "%s, n=%d, target=%d/%s" (Msts.Chain.to_string chain) n idx
              (if which then "latency" else "work"))
          QCheck.Gen.(
            pair
              (pair (chain_gen ~max_p:4 ~max_val:10 ()) (int_range 0 12))
              (pair (int_range 0 3) bool)))
       (fun ((chain, n), (idx, which)) ->
         let pairs = Msts.Chain.to_pairs chain in
         let k = idx mod List.length pairs in
         let faster =
           List.mapi
             (fun i (c, w) ->
               if i = k then if which then (max 1 (c - 1), w) else (c, max 1 (w - 1))
               else (c, w))
             pairs
         in
         Msts.Chain_algorithm.makespan (Msts.Chain.of_pairs faster) n
         <= Msts.Chain_algorithm.makespan chain n))

(* prefix monotonicity: truncating a chain cannot help *)
let truncation_never_helps =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"keeping only a prefix of the chain never helps"
       (QCheck.make
          ~print:(fun ((chain, n), k) ->
            Printf.sprintf "%s, n=%d, prefix=%d" (Msts.Chain.to_string chain) n k)
          QCheck.Gen.(
            pair (pair (chain_gen ~min_p:2 ~max_p:5 ()) (int_range 0 12)) (int_range 1 4)))
       (fun ((chain, n), k) ->
         let k = 1 + (k mod Msts.Chain.length chain) in
         Msts.Chain_algorithm.makespan chain n
         <= Msts.Chain_algorithm.makespan (Msts.Chain.prefix chain k) n))

(* spider versions of the key invariances *)
let scale_spider lambda spider =
  Msts.Spider.of_legs
    (List.init (Msts.Spider.legs spider) (fun idx ->
         scale_chain lambda (Msts.Spider.leg_chain spider (idx + 1))))

let spider_makespan_scales =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"spider makespan scales linearly with the time unit"
       (QCheck.make
          ~print:(fun ((spider, n), lambda) ->
            Printf.sprintf "%s, n=%d, lambda=%d" (Msts.Spider.to_string spider) n lambda)
          QCheck.Gen.(
            pair
              (pair (spider_gen ~max_legs:3 ~max_depth:2 ()) (int_range 0 8))
              (int_range 1 4)))
       (fun ((spider, n), lambda) ->
         Msts.Spider_algorithm.min_makespan (scale_spider lambda spider) n
         = lambda * Msts.Spider_algorithm.min_makespan spider n))

(* the deadline staircase and the makespan function are inverse monotone
   Galois-connected maps: tasks(makespan(n)) >= n and
   makespan(tasks(d)) <= d *)
let galois_connection =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"deadline and makespan form a Galois connection"
       (QCheck.make
          ~print:(fun ((chain, n), d) ->
            Printf.sprintf "%s, n=%d, d=%d" (Msts.Chain.to_string chain) n d)
          QCheck.Gen.(
            pair (pair (chain_gen ~max_p:4 ()) (int_range 1 10)) (int_range 0 60)))
       (fun ((chain, n), d) ->
         Msts.Chain_deadline.max_tasks chain
           ~deadline:(Msts.Chain_algorithm.makespan chain n)
         >= n
         && Msts.Chain_algorithm.makespan chain
              (Msts.Chain_deadline.max_tasks chain ~deadline:d)
            <= d))

(* duplicating a leg of a spider never hurts (more resources) *)
let duplicated_leg_never_hurts =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"duplicating a spider leg never increases the makespan"
       (spider_with_n_arb ~max_legs:2 ~max_depth:2 ~max_n:8 ())
       (fun (spider, n) ->
         let legs =
           List.init (Msts.Spider.legs spider) (fun idx ->
               Msts.Spider.leg_chain spider (idx + 1))
         in
         let doubled = Msts.Spider.of_legs (legs @ [ List.hd legs ]) in
         Msts.Spider_algorithm.min_makespan doubled n
         <= Msts.Spider_algorithm.min_makespan spider n))

(* within each processor, the optimal schedule executes tasks in emission
   order — no overtaking (the FIFO structure the proofs rely on) *)
let no_overtaking_within_processor =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"tasks execute in emission order on each processor"
       (chain_with_n_arb ~max_p:5 ~max_n:20 ())
       (fun (chain, n) ->
         let sched = Msts.Chain_algorithm.schedule chain n in
         List.for_all
           (fun k ->
             let tasks = Msts.Schedule.tasks_on sched k in
             (* tasks_on is in start order; index order = emission order *)
             tasks = List.sort compare tasks)
           (Msts.Intx.range 1 (Msts.Chain.length chain))))

(* likewise across links: transfers on every link happen in task order *)
let no_overtaking_on_links =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"transfers cross each link in task order"
       (chain_with_n_arb ~max_p:5 ~max_n:20 ())
       (fun (chain, n) ->
         let sched = Msts.Chain_algorithm.schedule chain n in
         List.for_all
           (fun k ->
             let sorted_by_time =
               List.sort
                 (fun a b ->
                   Int.compare a.Msts.Intervals.start b.Msts.Intervals.start)
                 (Msts.Schedule.link_intervals sched k)
             in
             let tags = List.map (fun iv -> iv.Msts.Intervals.tag) sorted_by_time in
             tags = List.sort compare tags)
           (Msts.Intx.range 1 (Msts.Chain.length chain))))

let suites =
  [
    ( "properties.algebraic",
      [
        makespan_scales_linearly;
        extra_processor_never_hurts;
        speedup_never_hurts;
        truncation_never_helps;
        spider_makespan_scales;
        galois_connection;
        duplicated_leg_never_hurts;
      ] );
    ( "properties.fifo",
      [ no_overtaking_within_processor; no_overtaking_on_links ] );
  ]
