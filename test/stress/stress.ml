(* Long-running randomized campaign — heavier than the default test suite.

   Run with:  dune build @stress
   Exits non-zero on the first discrepancy.  Everything is seeded, so a
   failure is reproducible. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("STRESS FAILURE: " ^ s); exit 1) fmt

let section name = Printf.printf "== %s\n%!" name

let () =
  let rng = Msts.Prng.create 777 in

  section "chain optimality vs brute force (2000 instances, p<=3, n<=9)";
  for i = 1 to 2000 do
    let p = Msts.Prng.int_in rng 1 3 in
    let n = Msts.Prng.int_in rng 0 9 in
    let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p in
    let a = Msts.Chain_algorithm.makespan chain n in
    let b = Msts.Brute_force.chain_makespan chain n in
    if a <> b then fail "instance %d: %s n=%d alg=%d bf=%d" i (Msts.Chain.to_string chain) n a b
  done;

  section "chain optimality, wider (400 instances, p=4, n<=7)";
  for i = 1 to 400 do
    let n = Msts.Prng.int_in rng 0 7 in
    let chain = Msts.Generator.chain rng Msts.Generator.balanced_profile ~p:4 in
    let a = Msts.Chain_algorithm.makespan chain n in
    let b = Msts.Brute_force.chain_makespan chain n in
    if a <> b then fail "instance %d: %s n=%d alg=%d bf=%d" i (Msts.Chain.to_string chain) n a b
  done;

  section "spider optimality vs brute force (400 instances)";
  let checked = ref 0 in
  while !checked < 400 do
    let legs = Msts.Prng.int_in rng 1 3 in
    let spider =
      Msts.Generator.spider rng Msts.Generator.balanced_profile ~legs ~max_depth:2
    in
    if Msts.Spider.processor_count spider <= 5 then begin
      incr checked;
      let n = Msts.Prng.int_in rng 1 5 in
      let a = Msts.Spider_algorithm.min_makespan spider n in
      let b = Msts.Brute_force.spider_makespan spider n in
      if a <> b then
        fail "spider %d: %s n=%d alg=%d bf=%d" !checked (Msts.Spider.to_string spider) n a b
    end
  done;

  section "chain optimality vs the pruned oracle (100 instances, n<=14)";
  for i = 1 to 100 do
    let p = Msts.Prng.int_in rng 1 5 in
    let n = Msts.Prng.int_in rng 8 14 in
    let chain = Msts.Generator.chain rng Msts.Generator.balanced_profile ~p in
    let a = Msts.Chain_algorithm.makespan chain n in
    let b = Msts.Brute_force.chain_makespan_pruned chain n in
    if a <> b then
      fail "pruned %d: %s n=%d alg=%d oracle=%d" i (Msts.Chain.to_string chain) n a b
  done;

  section "Figure-3 transcription differential (1000 instances, n<=40)";
  for i = 1 to 1000 do
    let p = Msts.Prng.int_in rng 1 6 in
    let n = Msts.Prng.int_in rng 0 40 in
    let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p in
    if
      not
        (Msts.Schedule.equal
           (Msts.Chain_pseudocode.schedule chain n)
           (Msts.Chain_algorithm.schedule chain n))
    then fail "pseudocode divergence %d: %s n=%d" i (Msts.Chain.to_string chain) n
  done;

  section "event-driven execution vs analytic ASAP (1000 sequences)";
  for i = 1 to 1000 do
    let p = Msts.Prng.int_in rng 1 5 in
    let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p in
    let n = Msts.Prng.int_in rng 0 25 in
    let seq = Array.init n (fun _ -> Msts.Prng.int_in rng 1 p) in
    if
      not
        (Msts.Schedule.equal
           (Msts.Netsim.run_sequence_chain chain seq)
           (Msts.Asap.chain_of_sequence chain seq))
    then fail "DES divergence %d: %s" i (Msts.Chain.to_string chain)
  done;

  section "deadline Galois connection (2000 instances)";
  for i = 1 to 2000 do
    let p = Msts.Prng.int_in rng 1 5 in
    let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p in
    let n = Msts.Prng.int_in rng 1 15 in
    let d = Msts.Prng.int_in rng 0 120 in
    if Msts.Chain_deadline.max_tasks chain ~deadline:(Msts.Chain_algorithm.makespan chain n) < n
    then fail "galois-1 %d: %s n=%d" i (Msts.Chain.to_string chain) n;
    if Msts.Chain_algorithm.makespan chain (Msts.Chain_deadline.max_tasks chain ~deadline:d) > d
    then fail "galois-2 %d: %s d=%d" i (Msts.Chain.to_string chain) d
  done;

  section "feasibility of large optimal schedules (100 instances, n<=2000)";
  for i = 1 to 100 do
    let p = Msts.Prng.int_in rng 1 10 in
    let n = Msts.Prng.int_in rng 100 2000 in
    let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p in
    let s = Msts.Chain_algorithm.schedule chain n in
    match Msts.Feasibility.check ~require_nonnegative:true s with
    | [] -> ()
    | vs ->
        fail "large instance %d infeasible: %s (first: %s)" i
          (Msts.Chain.to_string chain)
          (Msts.Feasibility.violation_to_string (List.hd vs))
  done;

  section "domain pool: many small batches, jobs in {1,2,4} (60 batches)";
  (* Hammer the pool machinery rather than the solver: lots of small
     batches with within-batch duplicates, each checked element-wise
     against the sequential path — no lost, duplicated or reordered
     results, whatever the worker count. *)
  let outcome_equal a b =
    match (a, b) with
    | Ok p, Ok q -> Msts.Plan.equal p q
    | Error e, Error f -> String.equal e f
    | _ -> false
  in
  let shared_cache = Msts.Batch.cache ~capacity:32 in
  for batch = 1 to 60 do
    let size = Msts.Prng.int_in rng 1 24 in
    let problems =
      Array.init size (fun _ ->
          let p = Msts.Prng.int_in rng 1 4 in
          let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p in
          Msts.Solve.problem
            ~tasks:(Msts.Prng.int_in rng 0 12)
            (Msts.Platform_format.Chain_platform chain))
    in
    (* plant within-batch duplicates so the dedupe path gets exercised *)
    Array.iteri
      (fun i _ ->
        if i > 1 && i mod 5 = 0 then problems.(i) <- problems.(i / 2))
      problems;
    let expected = Array.map Msts.Solve.solve problems in
    List.iter
      (fun jobs ->
        let got, stats =
          Msts.Batch.run ~jobs ~cache:shared_cache ~solve:Msts.Solve.solve
            problems
        in
        if Array.length got <> size then
          fail "pool batch %d jobs=%d: %d results for %d requests" batch jobs
            (Array.length got) size;
        if stats.Msts.Batch.requests <> size then
          fail "pool batch %d jobs=%d: stats.requests=%d" batch jobs
            stats.Msts.Batch.requests;
        if
          stats.Msts.Batch.cache_hits + stats.Msts.Batch.cache_misses <> size
        then
          fail "pool batch %d jobs=%d: hits+misses <> requests" batch jobs;
        Array.iteri
          (fun i o ->
            if not (outcome_equal expected.(i) o) then
              fail "pool batch %d jobs=%d slot %d diverges from sequential"
                batch jobs i)
          got;
        if Msts.Batch.cache_length shared_cache > 32 then
          fail "pool batch %d jobs=%d: cache overflowed its bound" batch jobs)
      [ 1; 2; 4 ]
  done;

  section "domain pool: one long-lived pool across 40 maps";
  Msts.Pool.with_pool ~jobs:4 (fun pool ->
      for round = 1 to 40 do
        let size = Msts.Prng.int_in rng 1 200 in
        let items = Array.init size (fun i -> (round * 1_000) + i) in
        let got = Msts.Pool.map pool (fun x -> (x * 2) + 1) items in
        if Array.length got <> size then
          fail "pool map round %d: wrong length" round;
        Array.iteri
          (fun i v ->
            if v <> (items.(i) * 2) + 1 then
              fail "pool map round %d slot %d: got %d" round i v)
          got
      done);

  section "streaming sink: 200k events, constant memory";
  (* The acceptance bar for the JSONL sink: a >=1e5-event run must stay
     within its flush window (no unbounded buffering) and write one
     parseable line per event. *)
  let stream_path = Filename.temp_file "msts_stress_stream" ".jsonl" in
  let oc = open_out stream_path in
  let st = Msts.Obs.Streaming.create ~flush_every:1024 oc in
  Msts.Obs.with_sink (Msts.Obs.Streaming.sink st) (fun () ->
      for i = 1 to 100_000 do
        Msts.Obs.record "stress.value" (i land 1023);
        Msts.Obs.count "stress.count"
      done);
  Msts.Obs.Streaming.flush st;
  close_out oc;
  if Msts.Obs.Streaming.events_seen st <> 200_000 then
    fail "streaming: saw %d events, expected 200000"
      (Msts.Obs.Streaming.events_seen st);
  if Msts.Obs.Streaming.events_written st <> 200_000 then
    fail "streaming: wrote %d events, expected 200000"
      (Msts.Obs.Streaming.events_written st);
  if Msts.Obs.Streaming.max_buffered st > 1024 then
    fail "streaming: buffer high-water %d exceeds flush_every 1024"
      (Msts.Obs.Streaming.max_buffered st);
  let lines = ref 0 in
  In_channel.with_open_text stream_path (fun ic ->
      try
        while true do
          let line = Option.get (In_channel.input_line ic) in
          incr lines;
          (* spot-check the JSONL shape without parsing 200k documents *)
          if !lines mod 37_777 = 1 then
            match Msts.Json.parse line with
            | Ok _ -> ()
            | Error msg -> fail "streaming: line %d unparseable: %s" !lines msg
        done
      with Invalid_argument _ -> ());
  if !lines <> 200_000 then
    fail "streaming: %d lines on disk, expected 200000" !lines;
  Sys.remove stream_path;

  section "histogram quantiles vs sorted oracle (200 sample sets)";
  for i = 1 to 200 do
    let n = Msts.Prng.int_in rng 1 2000 in
    let values = Array.init n (fun _ -> Msts.Prng.int_in rng 0 1_000_000) in
    let h = Msts.Obs.Histogram.create () in
    Array.iter (Msts.Obs.Histogram.add h) values;
    let sorted = Array.copy values in
    Array.sort compare sorted;
    List.iter
      (fun q ->
        let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
        let exact = sorted.(rank - 1) in
        let approx = Msts.Obs.Histogram.quantile h q in
        if not (approx <= exact && exact - approx <= exact / 16) then
          fail "histogram set %d q=%.2f: exact=%d approx=%d" i q exact approx)
      [ 0.5; 0.9; 0.99; 1.0 ]
  done;

  print_endline "stress campaign: all checks passed"
