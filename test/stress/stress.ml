(* Long-running randomized campaign — heavier than the default test suite.

   Run with:  dune build @stress
   Exits non-zero on the first discrepancy.  Everything is seeded, so a
   failure is reproducible. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("STRESS FAILURE: " ^ s); exit 1) fmt

let section name = Printf.printf "== %s\n%!" name

let () =
  let rng = Msts.Prng.create 777 in

  section "chain optimality vs brute force (2000 instances, p<=3, n<=9)";
  for i = 1 to 2000 do
    let p = Msts.Prng.int_in rng 1 3 in
    let n = Msts.Prng.int_in rng 0 9 in
    let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p in
    let a = Msts.Chain_algorithm.makespan chain n in
    let b = Msts.Brute_force.chain_makespan chain n in
    if a <> b then fail "instance %d: %s n=%d alg=%d bf=%d" i (Msts.Chain.to_string chain) n a b
  done;

  section "chain optimality, wider (400 instances, p=4, n<=7)";
  for i = 1 to 400 do
    let n = Msts.Prng.int_in rng 0 7 in
    let chain = Msts.Generator.chain rng Msts.Generator.balanced_profile ~p:4 in
    let a = Msts.Chain_algorithm.makespan chain n in
    let b = Msts.Brute_force.chain_makespan chain n in
    if a <> b then fail "instance %d: %s n=%d alg=%d bf=%d" i (Msts.Chain.to_string chain) n a b
  done;

  section "spider optimality vs brute force (400 instances)";
  let checked = ref 0 in
  while !checked < 400 do
    let legs = Msts.Prng.int_in rng 1 3 in
    let spider =
      Msts.Generator.spider rng Msts.Generator.balanced_profile ~legs ~max_depth:2
    in
    if Msts.Spider.processor_count spider <= 5 then begin
      incr checked;
      let n = Msts.Prng.int_in rng 1 5 in
      let a = Msts.Spider_algorithm.min_makespan spider n in
      let b = Msts.Brute_force.spider_makespan spider n in
      if a <> b then
        fail "spider %d: %s n=%d alg=%d bf=%d" !checked (Msts.Spider.to_string spider) n a b
    end
  done;

  section "chain optimality vs the pruned oracle (100 instances, n<=14)";
  for i = 1 to 100 do
    let p = Msts.Prng.int_in rng 1 5 in
    let n = Msts.Prng.int_in rng 8 14 in
    let chain = Msts.Generator.chain rng Msts.Generator.balanced_profile ~p in
    let a = Msts.Chain_algorithm.makespan chain n in
    let b = Msts.Brute_force.chain_makespan_pruned chain n in
    if a <> b then
      fail "pruned %d: %s n=%d alg=%d oracle=%d" i (Msts.Chain.to_string chain) n a b
  done;

  section "Figure-3 transcription differential (1000 instances, n<=40)";
  for i = 1 to 1000 do
    let p = Msts.Prng.int_in rng 1 6 in
    let n = Msts.Prng.int_in rng 0 40 in
    let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p in
    if
      not
        (Msts.Schedule.equal
           (Msts.Chain_pseudocode.schedule chain n)
           (Msts.Chain_algorithm.schedule chain n))
    then fail "pseudocode divergence %d: %s n=%d" i (Msts.Chain.to_string chain) n
  done;

  section "event-driven execution vs analytic ASAP (1000 sequences)";
  for i = 1 to 1000 do
    let p = Msts.Prng.int_in rng 1 5 in
    let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p in
    let n = Msts.Prng.int_in rng 0 25 in
    let seq = Array.init n (fun _ -> Msts.Prng.int_in rng 1 p) in
    if
      not
        (Msts.Schedule.equal
           (Msts.Netsim.run_sequence_chain chain seq)
           (Msts.Asap.chain_of_sequence chain seq))
    then fail "DES divergence %d: %s" i (Msts.Chain.to_string chain)
  done;

  section "deadline Galois connection (2000 instances)";
  for i = 1 to 2000 do
    let p = Msts.Prng.int_in rng 1 5 in
    let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p in
    let n = Msts.Prng.int_in rng 1 15 in
    let d = Msts.Prng.int_in rng 0 120 in
    if Msts.Chain_deadline.max_tasks chain ~deadline:(Msts.Chain_algorithm.makespan chain n) < n
    then fail "galois-1 %d: %s n=%d" i (Msts.Chain.to_string chain) n;
    if Msts.Chain_algorithm.makespan chain (Msts.Chain_deadline.max_tasks chain ~deadline:d) > d
    then fail "galois-2 %d: %s d=%d" i (Msts.Chain.to_string chain) d
  done;

  section "feasibility of large optimal schedules (100 instances, n<=2000)";
  for i = 1 to 100 do
    let p = Msts.Prng.int_in rng 1 10 in
    let n = Msts.Prng.int_in rng 100 2000 in
    let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p in
    let s = Msts.Chain_algorithm.schedule chain n in
    match Msts.Feasibility.check ~require_nonnegative:true s with
    | [] -> ()
    | vs ->
        fail "large instance %d infeasible: %s (first: %s)" i
          (Msts.Chain.to_string chain)
          (Msts.Feasibility.violation_to_string (List.hd vs))
  done;

  print_endline "stress campaign: all checks passed"
