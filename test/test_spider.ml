(* Tests for the spider algorithm (§7): the chain→fork transformation
   (Figure 7), the five-step schedule, Theorems 2/3, and the binary search
   for the optimal makespan. *)

open Helpers

(* ---------- Figure 7 ---------- *)

let figure7_virtual_nodes () =
  let deadline = 14 in
  let leg_sched = Msts.Chain_deadline.schedule figure2_chain ~deadline in
  Alcotest.(check int) "five tasks" 5 (Msts.Schedule.task_count leg_sched);
  let nodes = Msts.Spider_transform.virtual_nodes ~leg:1 ~deadline leg_sched in
  let works =
    List.sort compare (List.map (fun v -> v.Msts.Fork_expansion.work) nodes)
  in
  (* the paper's Figure 7: processing times {12,10,8,6,3}, all comms = 2 *)
  Alcotest.(check (list int)) "virtual works" [ 3; 6; 8; 10; 12 ] works;
  List.iter
    (fun v -> Alcotest.(check int) "comm is c1" 2 v.Msts.Fork_expansion.comm)
    nodes;
  (* "the task scheduled on the second processor corresponds to the node
     with processing time 8" *)
  let task_with_8 =
    List.find (fun v -> v.Msts.Fork_expansion.work = 8) nodes
  in
  let task =
    Msts.Spider_transform.task_of_rank leg_sched
      ~rank:task_with_8.Msts.Fork_expansion.rank
  in
  Alcotest.(check int) "node 8 is the P2 task" 2
    (Msts.Schedule.entry leg_sched task).Msts.Schedule.proc

let transform_rank_mapping () =
  let deadline = 14 in
  let leg_sched = Msts.Chain_deadline.schedule figure2_chain ~deadline in
  (* rank 0 = latest emission = last task *)
  Alcotest.(check int) "rank 0 -> last task" 5
    (Msts.Spider_transform.task_of_rank leg_sched ~rank:0);
  Alcotest.(check int) "rank 4 -> first task" 1
    (Msts.Spider_transform.task_of_rank leg_sched ~rank:4);
  Alcotest.check_raises "rank out of range"
    (Invalid_argument "Transform.task_of_rank: rank 5 outside 0..4") (fun () ->
      ignore (Msts.Spider_transform.task_of_rank leg_sched ~rank:5))

let transform_rejects_overflow () =
  let leg_sched = Msts.Chain_deadline.schedule figure2_chain ~deadline:14 in
  Alcotest.(check bool) "negative slack rejected" true
    (match Msts.Spider_transform.virtual_nodes ~leg:1 ~deadline:5 leg_sched with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- spider schedules ---------- *)

let spider_schedules_feasible =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:250
       ~name:"spider deadline schedules are feasible and fit"
       (QCheck.make
          ~print:(fun (spider, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Spider.to_string spider) d)
          QCheck.Gen.(pair (spider_gen ~max_legs:3 ~max_depth:3 ()) (int_range 0 60)))
       (fun (spider, deadline) ->
         let s = Msts.Spider_algorithm.schedule spider ~deadline in
         check_spider_feasible s
         && (Msts.Spider_schedule.task_count s = 0
            || Msts.Spider_schedule.makespan s <= deadline)))

let spider_single_leg_equals_chain =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"one-leg spider matches the chain algorithm's makespan"
       (chain_with_n_arb ~max_p:4 ~max_n:10 ())
       (fun (chain, n) ->
         Msts.Spider_algorithm.min_makespan (Msts.Spider.of_chain chain) n
         = Msts.Chain_algorithm.makespan chain n))

let spider_optimal_vs_brute_force =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"Theorem 3: spider makespan equals brute force"
       (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:5 ())
       (fun (spider, n) ->
         QCheck.assume (Msts.Spider.processor_count spider <= 5);
         Msts.Spider_algorithm.min_makespan spider n
         = Msts.Brute_force.spider_makespan spider n))

let spider_max_tasks_vs_brute_force =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:80
       ~name:"Theorem 3: spider deadline task count equals brute force"
       (QCheck.make
          ~print:(fun (spider, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Spider.to_string spider) d)
          QCheck.Gen.(
            pair (spider_gen ~max_legs:3 ~max_depth:2 ~max_val:8 ()) (int_range 0 40)))
       (fun (spider, deadline) ->
         QCheck.assume (Msts.Spider.processor_count spider <= 5);
         min 5 (Msts.Spider_algorithm.max_tasks ~budget:5 spider ~deadline)
         = Msts.Brute_force.spider_max_tasks spider ~deadline ~limit:5))

let spider_schedule_tasks_exact_count =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"schedule_tasks returns exactly n tasks"
       (spider_with_n_arb ~max_legs:3 ~max_depth:3 ~max_n:12 ())
       (fun (spider, n) ->
         let s = Msts.Spider_algorithm.schedule_tasks spider n in
         Msts.Spider_schedule.task_count s = n
         && check_spider_feasible s
         && Msts.Spider_schedule.makespan s
            = Msts.Spider_algorithm.min_makespan spider n))

let spider_max_tasks_monotone =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"spider task count is monotone in the deadline"
       (QCheck.make
          ~print:(fun (spider, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Spider.to_string spider) d)
          QCheck.Gen.(pair (spider_gen ~max_legs:3 ~max_depth:2 ()) (int_range 0 50)))
       (fun (spider, d) ->
         Msts.Spider_algorithm.max_tasks spider ~deadline:d
         <= Msts.Spider_algorithm.max_tasks spider ~deadline:(d + 1)))

let spider_never_worse_than_heuristics =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"optimal spider beats forward heuristics"
       (spider_with_n_arb ~max_legs:3 ~max_depth:3 ~max_n:10 ())
       (fun (spider, n) ->
         let opt = Msts.Spider_algorithm.min_makespan spider n in
         List.for_all
           (fun policy -> opt <= Msts.List_sched.spider_makespan policy spider n)
           Msts.List_sched.all_spider_policies))

let spider_makespan_monotone_in_n =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"spider optimal makespan is monotone in n"
       (spider_with_n_arb ~max_legs:3 ~max_depth:2 ~max_n:8 ())
       (fun (spider, n) ->
         Msts.Spider_algorithm.min_makespan spider n
         <= Msts.Spider_algorithm.min_makespan spider (n + 1)))

let spider_more_legs_help =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"adding a leg never hurts the makespan"
       (QCheck.make
          ~print:(fun ((spider, chain), n) ->
            Printf.sprintf "%s + %s, n=%d" (Msts.Spider.to_string spider)
              (Msts.Chain.to_string chain) n)
          QCheck.Gen.(
            pair
              (pair (spider_gen ~max_legs:2 ~max_depth:2 ()) (chain_gen ~max_p:2 ()))
              (int_range 0 8)))
       (fun ((spider, extra_leg), n) ->
         let legs =
           List.init (Msts.Spider.legs spider) (fun idx ->
               Msts.Spider.leg_chain spider (idx + 1))
         in
         let bigger = Msts.Spider.of_legs (legs @ [ extra_leg ]) in
         Msts.Spider_algorithm.min_makespan bigger n
         <= Msts.Spider_algorithm.min_makespan spider n))

(* differential check of the binary search: a plain linear scan over
   deadlines must find the same least feasible one *)
let min_makespan_vs_linear_scan =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"binary search agrees with a linear deadline scan"
       (spider_with_n_arb ~max_legs:2 ~max_depth:2 ~max_n:5 ~max_val:6 ())
       (fun (spider, n) ->
         QCheck.assume (n > 0);
         let by_search = Msts.Spider_algorithm.min_makespan spider n in
         let rec scan d =
           if Msts.Spider_algorithm.max_tasks ~budget:n spider ~deadline:d >= n then d
           else scan (d + 1)
         in
         by_search = scan 0))

(* the model is integer-exact at large magnitudes too (63-bit headroom) *)
let large_values_no_overflow () =
  let big = 1_000_000 in
  let chain = Msts.Chain.of_pairs [ (2 * big, 3 * big); (3 * big, 5 * big) ] in
  let s = Msts.Chain_algorithm.schedule chain 5 in
  (* exactly the Figure-2 schedule scaled by one million *)
  Alcotest.(check int) "scaled makespan" (14 * big) (Msts.Schedule.makespan s);
  Alcotest.(check bool) "feasible" true
    (Msts.Feasibility.is_feasible ~require_nonnegative:true s);
  let many = Msts.Chain_algorithm.makespan (Msts.Chain.of_pairs [ (big, big) ]) 100_000 in
  Alcotest.(check bool) "hundred thousand tasks" true (many > 0)

let spider_zero_tasks () =
  let spider = Msts.Spider.of_legs [ figure2_chain ] in
  Alcotest.(check int) "0 tasks -> makespan 0" 0
    (Msts.Spider_algorithm.min_makespan spider 0);
  Alcotest.(check int) "0 tasks -> empty schedule" 0
    (Msts.Spider_schedule.task_count (Msts.Spider_algorithm.schedule_tasks spider 0))

let spider_rejects_negative () =
  let spider = Msts.Spider.of_legs [ figure2_chain ] in
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Spider algorithm: negative deadline") (fun () ->
      ignore (Msts.Spider_algorithm.schedule spider ~deadline:(-1)));
  Alcotest.check_raises "negative n"
    (Invalid_argument "Spider algorithm: negative task count") (fun () ->
      ignore (Msts.Spider_algorithm.min_makespan spider (-1)))

let spider_emission_earlier_than_leg_plan =
  (* Lemma 3: the fork allocator never delays a first emission *)
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"Lemma 3: emissions only move earlier"
       (QCheck.make
          ~print:(fun (spider, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Spider.to_string spider) d)
          QCheck.Gen.(pair (spider_gen ~max_legs:3 ~max_depth:2 ()) (int_range 0 40)))
       (fun (spider, deadline) ->
         let s = Msts.Spider_algorithm.schedule spider ~deadline in
         (* each task still completes by the deadline after the re-stamp,
            and its first emission leaves room for c1 + remaining work *)
         Array.for_all
           (fun (e : Msts.Spider_schedule.entry) ->
             let chain = Msts.Spider.leg_chain spider e.address.Msts.Spider.leg in
             e.comms.(0) + Msts.Chain.latency chain 1 <= deadline)
           (Msts.Spider_schedule.entries s)))

let suites =
  [
    ( "spider.figure7",
      [
        case "virtual nodes reproduce Figure 7" figure7_virtual_nodes;
        case "rank-to-task mapping" transform_rank_mapping;
        case "overflowing leg schedules rejected" transform_rejects_overflow;
      ] );
    ( "spider.schedule",
      [
        spider_schedules_feasible;
        spider_schedule_tasks_exact_count;
        spider_max_tasks_monotone;
        spider_makespan_monotone_in_n;
        spider_more_legs_help;
        min_makespan_vs_linear_scan;
        case "large values do not overflow" large_values_no_overflow;
        case "zero tasks" spider_zero_tasks;
        case "negative inputs rejected" spider_rejects_negative;
        spider_emission_earlier_than_leg_plan;
      ] );
    ( "spider.optimality",
      [
        spider_single_leg_equals_chain;
        spider_optimal_vs_brute_force;
        spider_max_tasks_vs_brute_force;
        spider_never_worse_than_heuristics;
      ] );
  ]
