(* End-to-end integration tests: the full pipelines a user of the library
   would run, crossing every module boundary. *)

open Helpers

(* generate -> schedule -> serialise -> reload -> validate -> execute *)
let full_chain_pipeline () =
  let rng = Msts.Prng.create 2024 in
  let chain = Msts.Generator.chain rng Msts.Generator.default_profile ~p:5 in
  let n = 15 in
  let sched = Msts.Chain_algorithm.schedule chain n in
  (* serialise both platform and schedule, then reload *)
  let platform_text =
    Msts.Platform_format.platform_to_string (Msts.Platform_format.Chain_platform chain)
  in
  let chain' =
    match Msts.Platform_format.chain_of_string platform_text with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "platform round-trip" true (Msts.Chain.equal chain chain');
  let sched' =
    match
      Msts.Serial.schedule_of_string chain' (Msts.Serial.schedule_to_string sched)
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "schedule round-trip" true (Msts.Schedule.equal sched sched');
  (* validate with the independent checker *)
  Alcotest.(check (list string)) "feasible" []
    (List.map Msts.Feasibility.violation_to_string
       (Msts.Feasibility.check ~require_nonnegative:true sched'));
  (* and by actual execution *)
  let report = Msts.Netsim.execute (Msts.Plan.Chain sched') in
  Alcotest.(check bool) "execution meets the plan" true
    (report.Msts.Netsim.realized_makespan <= report.Msts.Netsim.planned_makespan)

let full_spider_pipeline () =
  let rng = Msts.Prng.create 99 in
  let spider =
    Msts.Generator.spider rng Msts.Generator.default_profile ~legs:3 ~max_depth:3
  in
  let n = 12 in
  let sched = Msts.Spider_algorithm.schedule_tasks spider n in
  Alcotest.(check int) "n tasks" n (Msts.Spider_schedule.task_count sched);
  Alcotest.(check (list string)) "feasible" []
    (Msts.Spider_schedule.check ~require_nonnegative:true sched);
  let report = Msts.Netsim.execute (Msts.Plan.Spider sched) in
  Alcotest.(check bool) "execution meets the plan" true
    (report.Msts.Netsim.realized_makespan <= report.Msts.Netsim.planned_makespan);
  (* the gantt and svg render without raising and mention the master *)
  let gantt = Msts.Gantt.render_spider sched in
  Alcotest.(check bool) "gantt" true (String.length gantt > 0);
  let svg = Msts.Svg.render_spider sched in
  Alcotest.(check bool) "svg" true (String.length svg > 0)

(* tree -> spider extraction -> schedule: the conclusion's "cover the graph
   with simpler structures" pipeline *)
let tree_extraction_pipeline () =
  let rng = Msts.Prng.create 7 in
  let tree =
    Msts.Generator.tree rng Msts.Generator.default_profile ~nodes:12 ~max_children:3
  in
  let n = 10 in
  let results =
    List.map
      (fun policy ->
        let spider = Msts.Tree.extract_spider policy tree in
        let makespan = Msts.Spider_algorithm.min_makespan spider n in
        let sched = Msts.Spider_algorithm.schedule_tasks spider n in
        Alcotest.(check (list string)) "feasible" []
          (Msts.Spider_schedule.check ~require_nonnegative:true sched);
        makespan)
      [ Msts.Tree.Fastest_processor; Msts.Tree.Cheapest_link; Msts.Tree.Best_rate ]
  in
  Alcotest.(check int) "three policies ran" 3 (List.length results);
  List.iter (fun m -> Alcotest.(check bool) "positive makespan" true (m > 0)) results

(* spider of one leg behaves exactly like the chain algorithm end-to-end *)
let chain_spider_consistency =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"one-leg spider schedule realises the chain schedule's makespan"
       (chain_with_n_arb ~max_p:4 ~max_n:10 ())
       (fun (chain, n) ->
         let chain_makespan = Msts.Chain_algorithm.makespan chain n in
         let spider_sched =
           Msts.Spider_algorithm.schedule_tasks (Msts.Spider.of_chain chain) n
         in
         Msts.Spider_schedule.makespan spider_sched = chain_makespan))

(* fork platforms: builder and spider algorithm agree on the task count *)
let fork_spider_consistency =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"fork builder and spider algorithm agree on harvest size"
       (QCheck.make
          ~print:(fun (fork, d) ->
            Printf.sprintf "%s, d=%d" (Msts.Fork.to_string fork) d)
          QCheck.Gen.(pair (fork_gen ~max_slaves:4 ()) (int_range 0 50)))
       (fun (fork, deadline) ->
         Msts.Spider_schedule.task_count
           (Msts.Fork_builder.schedule fork ~deadline ~budget:8)
         = Msts.Spider_algorithm.max_tasks ~budget:8 (Msts.Spider.of_fork fork)
             ~deadline))

(* the three independent optimality routes agree: backward algorithm,
   deadline binary search, and brute force *)
let three_routes_agree =
  Helpers.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"three independent optimum computations agree"
       (chain_with_n_arb ~max_p:3 ~max_n:6 ())
       (fun (chain, n) ->
         let a = Msts.Chain_algorithm.makespan chain n in
         let b = Msts.Chain_deadline.min_makespan_via_deadline chain n in
         let c = Msts.Brute_force.chain_makespan chain n in
         a = b && b = c))

(* CSV/table plumbing used by the bench harness *)
let experiment_table_pipeline () =
  let chain = figure2_chain in
  let t =
    Msts.Table.create ~title:"makespans" ~columns:[ "n"; "optimal"; "bound" ]
  in
  List.iter
    (fun n ->
      Msts.Table.add_int_row t
        [ n; Msts.Chain_algorithm.makespan chain n; Msts.Bounds.combined_bound chain n ])
    [ 1; 2; 4; 8 ];
  let csv = Msts.Table.to_csv t in
  Alcotest.(check int) "header + 4 rows" 5
    (List.length (String.split_on_char '\n' csv))

let suites =
  [
    ( "integration",
      [
        case "chain: generate/schedule/serialise/validate/execute"
          full_chain_pipeline;
        case "spider: schedule/validate/execute/render" full_spider_pipeline;
        case "tree extraction pipeline" tree_extraction_pipeline;
        chain_spider_consistency;
        fork_spider_consistency;
        three_routes_agree;
        case "experiment table plumbing" experiment_table_pipeline;
      ] );
  ]
