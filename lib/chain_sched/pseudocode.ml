module Chain = Msts_platform.Chain
module Schedule = Msts_schedule.Schedule

(* Definition 3 on list-shaped vectors, as used by the figure's
   [if C(i) ≺ kC(i)] test. *)
let rec precedes a b =
  match (a, b) with
  | [], [] -> false
  | _ :: _, [] -> true (* longer extends equal prefix: smaller *)
  | [], _ :: _ -> false
  | x :: a', y :: b' -> x < y || (x = y && precedes a' b')

let schedule chain n =
  if n < 0 then invalid_arg "Pseudocode.schedule: negative task count";
  let p = Chain.length chain in
  let c k = Chain.latency chain k and w k = Chain.work chain k in
  (* T∞ = c1 + (n-1) * max(w1,c1) + w1 *)
  let t_infinity = if n = 0 then 0 else c 1 + ((n - 1) * max (w 1) (c 1)) + w 1 in
  (* Initialisation of h and o vectors. *)
  let h = Array.make (p + 1) t_infinity and o = Array.make (p + 1) t_infinity in
  (* Initialisation of C(i): the all-zero vector. *)
  let cvec = Array.make (n + 1) [] in
  for i = 1 to n do
    cvec.(i) <- List.init p (fun _ -> 0)
  done;
  let pvec = Array.make (n + 1) 0 and tvec = Array.make (n + 1) 0 in
  (* Computation of the communication vectors. *)
  for i = n downto 1 do
    for k = p downto 1 do
      (* kC_k = min(o_k - w_k - c_k, h_k - c_k), then backwards to link 1 *)
      let kc = Array.make (k + 1) 0 in
      kc.(k) <- min (o.(k) - w k - c k) (h.(k) - c k);
      for j = k - 1 downto 1 do
        kc.(j) <- min (kc.(j + 1) - c j) (h.(j) - c j)
      done;
      let candidate = List.init k (fun idx -> kc.(idx + 1)) in
      if precedes cvec.(i) candidate then cvec.(i) <- candidate
    done;
    pvec.(i) <- List.length cvec.(i);
    tvec.(i) <- o.(pvec.(i)) - w pvec.(i);
    o.(pvec.(i)) <- tvec.(i);
    List.iteri (fun idx x -> h.(idx + 1) <- x) cvec.(i)
  done;
  (* Apply the time shift of C¹₁. *)
  let shift = if n = 0 then 0 else List.hd cvec.(1) in
  for i = n downto 1 do
    tvec.(i) <- tvec.(i) - shift;
    cvec.(i) <- List.map (fun x -> x - shift) cvec.(i)
  done;
  Schedule.make chain
    (Array.init n (fun idx ->
         let i = idx + 1 in
         {
           Schedule.proc = pvec.(i);
           start = tvec.(i);
           comms = Array.of_list cvec.(i);
         }))
