module Chain = Msts_platform.Chain
module Comm_vector = Msts_schedule.Comm_vector

type t = {
  chain : Chain.t;
  n : int;
  horizon : int;
  steps : Algorithm.step list;
  result : Msts_schedule.Schedule.t;
}

let run chain n =
  let acc = ref [] in
  let result = Algorithm.schedule ~on_step:(fun s -> acc := s :: !acc) chain n in
  {
    chain;
    n;
    horizon = Algorithm.horizon chain n;
    steps = List.rev !acc;
    result;
  }

let step_for t task =
  match List.find_opt (fun s -> s.Algorithm.task = task) t.steps with
  | Some s -> s
  | None -> raise Not_found

let render t =
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "Backward construction on %s, n = %d, horizon T-inf = %d\n"
    (Chain.to_string t.chain) t.n t.horizon;
  List.iter
    (fun (s : Algorithm.step) ->
      Printf.bprintf buf "\nPlacing task %d:\n" s.task;
      Array.iteri
        (fun idx v ->
          Printf.bprintf buf "  candidate for P%d: %s%s\n" (idx + 1)
            (Comm_vector.to_string v)
            (if idx + 1 = s.chosen_proc then "   <- greatest (Def. 3)" else ""))
        s.all_candidates;
      Printf.bprintf buf "  => P(%d) = %d, T(%d) = %d (before shift)\n" s.task
        s.chosen_proc s.task s.start)
    t.steps;
  let shift =
    match t.steps with
    | [] -> 0
    | _ ->
        (* the shift is the first emission of the earliest task *)
        let earliest =
          List.fold_left
            (fun acc (s : Algorithm.step) -> min acc s.chosen_vector.(0))
            max_int t.steps
        in
        earliest
  in
  Printf.bprintf buf "\nFinal shift: %d time units; makespan = %d\n" shift
    (Msts_schedule.Schedule.makespan t.result);
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)
