module Chain = Msts_platform.Chain
module Schedule = Msts_schedule.Schedule

let tasks_per_processor chain n =
  let sched = Algorithm.schedule chain n in
  let counts = Array.make (Chain.length chain) 0 in
  Array.iter
    (fun (e : Schedule.entry) -> counts.(e.proc - 1) <- counts.(e.proc - 1) + 1)
    (Schedule.entries sched);
  counts

let used_depth chain n =
  let counts = tasks_per_processor chain n in
  let deepest = ref 0 in
  Array.iteri (fun idx count -> if count > 0 then deepest := idx + 1) counts;
  !deepest

let activation_threshold chain ~k ~max_n =
  if k < 1 || k > Chain.length chain then
    invalid_arg "Analysis.activation_threshold: processor out of range";
  let rec scan n =
    if n > max_n then None
    else if (tasks_per_processor chain n).(k - 1) > 0 then Some n
    else scan (n + 1)
  in
  scan 1

let depth_profile chain ~ns = List.map (fun n -> (n, tasks_per_processor chain n)) ns

(* The steady-state recursion rho_j = min(1/c_j, 1/w_j + rho_{j+1}), kept
   local: the full analysis lives in Msts_baseline.Steady_state, which sits
   above this library in the dependency order. *)
let throughput chain =
  let p = Chain.length chain in
  let rec rho j =
    if j > p then 0.0
    else
      min
        (1.0 /. float_of_int (Chain.latency chain j))
        ((1.0 /. float_of_int (Chain.work chain j)) +. rho (j + 1))
  in
  rho 1

let efficiency chain n =
  if n <= 0 then 0.0
  else
    float_of_int n /. (float_of_int (Algorithm.makespan chain n) *. throughput chain)
