(** Human-readable construction traces.

    Records every placement of the backward construction — candidates, the
    winner, hull and occupancy before the step — and renders the narrative
    the paper walks through on its Figure 2 example.  Used by the CLI's
    [explain] command and by tests that pin the worked example down
    step-by-step. *)

type t = {
  chain : Msts_platform.Chain.t;
  n : int;
  horizon : int;  (** the T∞ the construction started from *)
  steps : Algorithm.step list;  (** construction order: task [n] first *)
  result : Msts_schedule.Schedule.t;
}

val run : Msts_platform.Chain.t -> int -> t
(** Full construction of the [n]-task schedule with recording. *)

val step_for : t -> int -> Algorithm.step
(** The placement of a given task (paper numbering).
    @raise Not_found if the task was not placed. *)

val render : t -> string
(** Multi-line narrative: per task, the candidate vector for each target
    processor, the winner, and the resulting start time. *)

val pp : Format.formatter -> t -> unit
