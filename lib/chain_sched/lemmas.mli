(** Executable statements of the paper's structural lemmas.

    The optimality proof (§4–5) rests on two properties of the construction.
    These checkers re-state them as decidable predicates so the test suite
    can exercise them on thousands of random instances — a bug in the
    candidate computation or in Definition 3's order would surface here
    before it surfaced as a lost optimality case. *)

val no_crossing :
  Msts_platform.Chain.t -> Algorithm.state -> (int * int * int) option
(** Lemma 1 ("no crossing", Figure 4): for the current state's candidates,
    whenever [ᵏC ≺ ˡC], every common suffix satisfies
    [{ᵏC_q..ᵏC_k} ≺ {ˡC_q..ˡC_l}].  Returns [Some (k, l, q)] exhibiting a
    violated triple, or [None] when the lemma holds. *)

val check_no_crossing_throughout : Msts_platform.Chain.t -> int -> bool
(** Run the full construction for [n] tasks and check {!no_crossing} at
    every step. *)

val subchain_projection : Msts_platform.Chain.t -> int -> bool
(** Lemma 2: the tasks with [P(i) ≥ 2] of the [n]-task schedule, re-read on
    the sub-chain [(cᵢ,wᵢ)ᵢ≥₂], form {e the} schedule our algorithm produces
    for that many tasks on the sub-chain, up to a time shift.  Vacuously
    true on single-processor chains. *)

val incremental_suffix : Msts_platform.Chain.t -> int -> bool
(** The property behind Lemma 4: the optimal [m]-task schedule is the
    [m] latest tasks of the optimal [n]-task schedule, for every [m ≤ n]
    (modulo shift) — the algorithm builds solutions incrementally from the
    end. *)
