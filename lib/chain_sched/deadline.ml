module Chain = Msts_platform.Chain
module Obs = Msts_obs.Obs

let schedule ?max_tasks chain ~deadline =
  if deadline < 0 then invalid_arg "Deadline.schedule: negative deadline";
  (match max_tasks with
  | Some budget when budget < 0 -> invalid_arg "Deadline.schedule: negative max_tasks"
  | _ -> ());
  Obs.span "chain.deadline.schedule" ~args:[ ("deadline", string_of_int deadline) ]
  @@ fun () ->
  let construction = Incremental.create chain ~horizon:deadline in
  let (_ : int) = Incremental.fill construction ?max_tasks () in
  Incremental.schedule construction

let max_tasks chain ~deadline =
  if deadline < 0 then invalid_arg "Deadline.max_tasks: negative deadline";
  Obs.span "chain.deadline.max_tasks" ~args:[ ("deadline", string_of_int deadline) ]
  @@ fun () ->
  let construction = Incremental.create chain ~horizon:deadline in
  Incremental.fill construction ()

let min_makespan_via_deadline chain n =
  if n < 0 then invalid_arg "Deadline.min_makespan_via_deadline: negative n";
  if n = 0 then 0
  else begin
    let hi = Chain.master_only_makespan chain n in
    match
      Msts_util.Intx.binary_search_least ~lo:0 ~hi (fun d ->
          max_tasks chain ~deadline:d >= n)
    with
    | Some d -> d
    | None -> hi (* unreachable: the master-only schedule meets [hi] *)
  end
