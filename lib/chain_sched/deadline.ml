module Chain = Msts_platform.Chain
module Obs = Msts_obs.Obs

let schedule ?kernel ?max_tasks chain ~deadline =
  if deadline < 0 then invalid_arg "Deadline.schedule: negative deadline";
  (match max_tasks with
  | Some budget when budget < 0 -> invalid_arg "Deadline.schedule: negative max_tasks"
  | _ -> ());
  Obs.span "chain.deadline.schedule" ~args:[ ("deadline", string_of_int deadline) ]
  @@ fun () ->
  let construction = Incremental.create ?kernel chain ~horizon:deadline in
  let (_ : int) = Incremental.fill construction ?max_tasks () in
  Incremental.schedule construction

let max_tasks ?kernel chain ~deadline =
  if deadline < 0 then invalid_arg "Deadline.max_tasks: negative deadline";
  Obs.span "chain.deadline.max_tasks" ~args:[ ("deadline", string_of_int deadline) ]
  @@ fun () ->
  let construction = Incremental.create ?kernel chain ~horizon:deadline in
  Incremental.fill construction ()

let min_makespan_via_deadline ?kernel chain n =
  if n < 0 then invalid_arg "Deadline.min_makespan_via_deadline: negative n";
  if n = 0 then 0
  else begin
    Obs.span "chain.deadline.min_makespan" ~args:[ ("n", string_of_int n) ]
    @@ fun () ->
    let hi = Chain.master_only_makespan chain n in
    (* Every bound is provably <= OPT, so starting the search there skips
       the whole infeasible prefix without risking the answer. *)
    let lo = Msts_schedule.Bounds.combined_bound chain n in
    match
      Msts_util.Intx.binary_search_least ~lo ~hi (fun d ->
          Obs.count "chain.deadline.search_probes";
          max_tasks ?kernel chain ~deadline:d >= n)
    with
    | Some d -> d
    | None -> hi (* unreachable: the master-only schedule meets [hi] *)
  end
