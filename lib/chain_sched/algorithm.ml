module Chain = Msts_platform.Chain
module Comm_vector = Msts_schedule.Comm_vector
module Schedule = Msts_schedule.Schedule
module Obs = Msts_obs.Obs

type state = { hull : int array; occupancy : int array }

let initial_state chain ~horizon =
  let p = Chain.length chain in
  { hull = Array.make p horizon; occupancy = Array.make p horizon }

let copy_state st =
  { hull = Array.copy st.hull; occupancy = Array.copy st.occupancy }

let candidate chain st k =
  let v = Array.make k 0 in
  v.(k - 1) <-
    min
      (st.occupancy.(k - 1) - Chain.work chain k - Chain.latency chain k)
      (st.hull.(k - 1) - Chain.latency chain k);
  for j = k - 1 downto 1 do
    v.(j - 1) <-
      min (v.(j) - Chain.latency chain j) (st.hull.(j - 1) - Chain.latency chain j)
  done;
  v

let candidates chain st =
  let p = Chain.length chain in
  Obs.count ~n:p "chain.candidate_scans";
  Array.init p (fun idx -> candidate chain st (idx + 1))

let select cands =
  if Array.length cands = 0 then invalid_arg "Algorithm.select: no candidates";
  let best = ref 0 in
  for idx = 1 to Array.length cands - 1 do
    if Comm_vector.precedes cands.(!best) cands.(idx) then best := idx
  done;
  !best

type step = {
  task : int;
  chosen_proc : int;
  chosen_vector : Comm_vector.t;
  start : int;
  all_candidates : Comm_vector.t array;
  state_before : state;
}

let place_with ~select chain st ~task =
  let state_before = copy_state st in
  let all_candidates = candidates chain st in
  let chosen_proc = select all_candidates + 1 in
  let chosen_vector = all_candidates.(chosen_proc - 1) in
  let start = st.occupancy.(chosen_proc - 1) - Chain.work chain chosen_proc in
  st.occupancy.(chosen_proc - 1) <- start;
  for j = 1 to chosen_proc do
    st.hull.(j - 1) <- chosen_vector.(j - 1)
  done;
  Obs.count "chain.tasks_placed";
  Obs.count ~n:chosen_proc "chain.hull_updates";
  { task; chosen_proc; chosen_vector; start; all_candidates; state_before }

let place = place_with ~select

let horizon = Chain.master_only_makespan

let schedule_core ~select ?on_step chain n =
  if n < 0 then invalid_arg "Algorithm.schedule: negative task count";
  Obs.span "chain.schedule" ~args:[ ("n", string_of_int n) ] @@ fun () ->
  let st = initial_state chain ~horizon:(horizon chain n) in
  let entries =
    Array.init n (fun _ -> { Schedule.proc = 1; start = 0; comms = [| 0 |] })
  in
  for task = n downto 1 do
    let step = place_with ~select chain st ~task in
    (match on_step with Some f -> f step | None -> ());
    entries.(task - 1) <-
      {
        Schedule.proc = step.chosen_proc;
        start = step.start;
        comms = step.chosen_vector;
      }
  done;
  Schedule.normalise (Schedule.make chain entries)

let schedule ?on_step chain n = schedule_core ~select ?on_step chain n

let schedule_with_selector ~select chain n = schedule_core ~select chain n

let makespan chain n =
  if n = 0 then 0
  else begin
    Obs.span "chain.makespan" ~args:[ ("n", string_of_int n) ] @@ fun () ->
    (* The last-placed (first-emitted) task fixes the shift; task n always
       finishes exactly at the horizon. *)
    let st = initial_state chain ~horizon:(horizon chain n) in
    let first_emission = ref 0 in
    for task = n downto 1 do
      let step = place chain st ~task in
      if task = 1 then first_emission := step.chosen_vector.(0)
    done;
    horizon chain n - !first_emission
  end
