module Chain = Msts_platform.Chain
module Comm_vector = Msts_schedule.Comm_vector
module Schedule = Msts_schedule.Schedule
module Obs = Msts_obs.Obs

type state = { hull : int array; occupancy : int array }

let initial_state chain ~horizon =
  let p = Chain.length chain in
  { hull = Array.make p horizon; occupancy = Array.make p horizon }

let copy_state st =
  { hull = Array.copy st.hull; occupancy = Array.copy st.occupancy }

let candidate chain st k =
  let v = Array.make k 0 in
  v.(k - 1) <-
    min
      (st.occupancy.(k - 1) - Chain.work chain k - Chain.latency chain k)
      (st.hull.(k - 1) - Chain.latency chain k);
  for j = k - 1 downto 1 do
    v.(j - 1) <-
      min (v.(j) - Chain.latency chain j) (st.hull.(j - 1) - Chain.latency chain j)
  done;
  v

let candidates chain st =
  let p = Chain.length chain in
  Obs.count ~n:p "chain.candidate_scans";
  Array.init p (fun idx -> candidate chain st (idx + 1))

let select cands =
  if Array.length cands = 0 then invalid_arg "Algorithm.select: no candidates";
  let best = ref 0 in
  for idx = 1 to Array.length cands - 1 do
    if Comm_vector.precedes cands.(!best) cands.(idx) then best := idx
  done;
  !best

type step = {
  task : int;
  chosen_proc : int;
  chosen_vector : Comm_vector.t;
  start : int;
  all_candidates : Comm_vector.t array;
  state_before : state;
}

let place_with ~select chain st ~task =
  let state_before = copy_state st in
  let all_candidates = candidates chain st in
  let chosen_proc = select all_candidates + 1 in
  let chosen_vector = all_candidates.(chosen_proc - 1) in
  let start = st.occupancy.(chosen_proc - 1) - Chain.work chain chosen_proc in
  st.occupancy.(chosen_proc - 1) <- start;
  for j = 1 to chosen_proc do
    st.hull.(j - 1) <- chosen_vector.(j - 1)
  done;
  Obs.count "chain.tasks_placed";
  Obs.count ~n:chosen_proc "chain.hull_updates";
  { task; chosen_proc; chosen_vector; start; all_candidates; state_before }

let place = place_with ~select

(* Placement without the step record: same state mutation and counters as
   [place_with], but no [state_before] deep copy and no retained candidate
   array — for callers with no observer installed. *)
let place_light ~select chain st =
  let all_candidates = candidates chain st in
  let proc = select all_candidates + 1 in
  let vector = all_candidates.(proc - 1) in
  let start = st.occupancy.(proc - 1) - Chain.work chain proc in
  st.occupancy.(proc - 1) <- start;
  for j = 1 to proc do
    st.hull.(j - 1) <- vector.(j - 1)
  done;
  Obs.count "chain.tasks_placed";
  Obs.count ~n:proc "chain.hull_updates";
  (proc, vector, start)

let horizon = Chain.master_only_makespan

let resolve_kernel = function Some k -> k | None -> Kernel.default ()

let schedule_core ~select ?on_step chain n =
  if n < 0 then invalid_arg "Algorithm.schedule: negative task count";
  Obs.span "chain.schedule" ~args:[ ("n", string_of_int n) ] @@ fun () ->
  let st = initial_state chain ~horizon:(horizon chain n) in
  let entries =
    Array.init n (fun _ -> { Schedule.proc = 1; start = 0; comms = [| 0 |] })
  in
  (match on_step with
  | Some f ->
      for task = n downto 1 do
        let step = place_with ~select chain st ~task in
        f step;
        entries.(task - 1) <-
          {
            Schedule.proc = step.chosen_proc;
            start = step.start;
            comms = step.chosen_vector;
          }
      done
  | None ->
      for task = n downto 1 do
        let proc, vector, start = place_light ~select chain st in
        entries.(task - 1) <- { Schedule.proc; start; comms = vector }
      done);
  Schedule.normalise (Schedule.make chain entries)

let fast_schedule chain n =
  if n < 0 then invalid_arg "Algorithm.schedule: negative task count";
  Obs.span "chain.schedule" ~args:[ ("n", string_of_int n) ] @@ fun () ->
  let st = initial_state chain ~horizon:(horizon chain n) in
  let sc = Kernel.scratch () in
  let entries =
    Array.init n (fun _ -> { Schedule.proc = 1; start = 0; comms = [| 0 |] })
  in
  for task = n downto 1 do
    let proc = Kernel.sweep chain ~hull:st.hull ~occupancy:st.occupancy sc in
    let comms = Kernel.chosen_vector sc ~proc in
    let start = Kernel.commit chain ~hull:st.hull ~occupancy:st.occupancy sc ~proc in
    entries.(task - 1) <- { Schedule.proc; start; comms }
  done;
  Schedule.normalise (Schedule.make chain entries)

let schedule ?kernel ?on_step chain n =
  match (on_step, resolve_kernel kernel) with
  | None, Kernel.Fast -> fast_schedule chain n
  | Some _, _ | None, Kernel.Reference -> schedule_core ~select ?on_step chain n

let schedule_with_selector ~select chain n = schedule_core ~select chain n

let makespan ?kernel chain n =
  if n = 0 then 0
  else begin
    Obs.span "chain.makespan" ~args:[ ("n", string_of_int n) ] @@ fun () ->
    (* The last-placed (first-emitted) task fixes the shift; task n always
       finishes exactly at the horizon. *)
    let st = initial_state chain ~horizon:(horizon chain n) in
    let first_emission = ref 0 in
    (match resolve_kernel kernel with
    | Kernel.Fast ->
        let sc = Kernel.scratch () in
        for task = n downto 1 do
          let proc = Kernel.sweep chain ~hull:st.hull ~occupancy:st.occupancy sc in
          let (_ : int) =
            Kernel.commit chain ~hull:st.hull ~occupancy:st.occupancy sc ~proc
          in
          if task = 1 then first_emission := Kernel.first_emission sc
        done
    | Kernel.Reference ->
        for task = n downto 1 do
          let _, vector, _ = place_light ~select chain st in
          if task = 1 then first_emission := vector.(0)
        done);
    horizon chain n - !first_emission
  end
