(** Incremental backward construction.

    The algorithm builds the optimal [n]-task schedule as an extension of
    the optimal [(n−1)]-task one (the suffix property behind Lemma 4), so
    the construction can be driven one task at a time: start from a
    horizon, keep placing tasks while they fit.  This powers the deadline
    variant, the online scheduler ([Msts_online.Online]), and lets clients
    answer "how many more tasks until [T]?" without recomputing from
    scratch.

    Placements are stored in preallocated struct-of-arrays buffers, so
    once the store has grown to its working capacity (or was created with
    [~capacity]), {!add_task} on the fast kernel performs {e zero} minor-
    heap allocation — asserted by the test suite via [Gc.minor_words] and
    gated in [BENCH_online.json].

    Dates are absolute in [\[0, horizon\]]; no final shift is applied. *)

type t

val create :
  ?kernel:Kernel.t -> ?capacity:int -> Msts_platform.Chain.t -> horizon:int -> t
(** Fresh construction ending at [horizon]; [kernel] (default
    {!Kernel.default}) picks the placement kernel for the whole lifetime
    of this construction.  [capacity] (default 0) preallocates room for
    that many placements, making the allocation-free steady state
    immediate instead of reached after geometric growth.
    @raise Invalid_argument on a negative horizon or capacity (message
    prefixed [Msts.Chain.Incremental]). *)

val add_task : t -> bool
(** Place one more task (earlier than everything placed so far).  Returns
    [false] — and places nothing — when the task's first emission would
    fall before time 0, i.e. the horizon is full.  On the fast kernel a
    single O(p) sweep both probes and places; the reference kernel probes
    with a full candidate scan before committing. *)

val add_task_from : t -> min_emission:int -> bool
(** {!add_task} with an explicit floor: refuse (returning [false]) when
    the task's first emission would fall before [min_emission].  The
    online scheduler uses the execution frontier as the floor so frozen
    history is never re-entered.  [add_task t] = [add_task_from t
    ~min_emission:0].  The label is non-optional so the per-arrival hot
    path never boxes an argument. *)

val placed : t -> int
(** Number of tasks placed so far. *)

val horizon : t -> int
(** Current horizon (grows under {!extend}). *)

val extend : t -> by:int -> unit
(** Push the horizon [by] time units later, shifting the hull/occupancy
    state and every stored placement with it — the construction behaves
    exactly as if it had started from the longer horizon (the sweep is
    shift-equivariant), and a construction that was full may accept tasks
    again.  O(placed + p).
    @raise Invalid_argument when [by < 0]. *)

val proc_at : t -> int -> int
(** Processor of placement [i] (0-based construction order: placement 0
    is the oldest, latest-in-time task).  @raise Invalid_argument outside
    [0..placed-1]. *)

val start_at : t -> int -> int
(** Compute start date of placement [i]. *)

val emission_at : t -> int -> int
(** Link-1 emission date of placement [i]; strictly decreasing in [i]. *)

val comms_at : t -> int -> Msts_schedule.Comm_vector.t
(** Fresh copy of placement [i]'s communication vector. *)

val entry_at : t -> int -> Msts_schedule.Schedule.entry
(** Placement [i] as a schedule entry (fresh copy). *)

val schedule : t -> Msts_schedule.Schedule.t
(** Snapshot of the current schedule; tasks renumbered 1.. in emission
    order.  O(placed). *)

val state : t -> Algorithm.state
(** Deep copy of the hull/occupancy state (for inspection and tests). *)

val earliest_emission : t -> int option
(** First-link emission of the earliest task placed ([None] when empty) —
    how much of the horizon remains. *)

val fill : t -> ?max_tasks:int -> unit -> int
(** Place tasks until full (or until [max_tasks] in total); returns
    {!placed}. *)
