(** Incremental backward construction.

    The algorithm builds the optimal [n]-task schedule as an extension of
    the optimal [(n−1)]-task one (the suffix property behind Lemma 4), so
    the construction can be driven one task at a time: start from a
    horizon, keep placing tasks while they fit.  This powers the deadline
    variant and lets clients answer "how many more tasks until [T]?"
    without recomputing from scratch.

    Dates are absolute in [\[0, horizon\]]; no final shift is applied. *)

type t

val create : ?kernel:Kernel.t -> Msts_platform.Chain.t -> horizon:int -> t
(** Fresh construction ending at [horizon]; [kernel] (default
    {!Kernel.default}) picks the placement kernel for the whole lifetime
    of this construction.
    @raise Invalid_argument on a negative horizon. *)

val add_task : t -> bool
(** Place one more task (earlier than everything placed so far).  Returns
    [false] — and places nothing — when the task's first emission would
    fall before time 0, i.e. the horizon is full.  On the fast kernel a
    single O(p) sweep both probes and places; the reference kernel probes
    with a full candidate scan before committing. *)

val placed : t -> int
(** Number of tasks placed so far. *)

val schedule : t -> Msts_schedule.Schedule.t
(** Snapshot of the current schedule; tasks renumbered 1.. in emission
    order.  O(placed). *)

val state : t -> Algorithm.state
(** Deep copy of the hull/occupancy state (for inspection and tests). *)

val earliest_emission : t -> int option
(** First-link emission of the earliest task placed ([None] when empty) —
    how much of the horizon remains. *)

val fill : t -> ?max_tasks:int -> unit -> int
(** Place tasks until full (or until [max_tasks] in total); returns
    {!placed}. *)
