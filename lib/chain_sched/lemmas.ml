module Chain = Msts_platform.Chain
module Comm_vector = Msts_schedule.Comm_vector
module Schedule = Msts_schedule.Schedule

let suffix v q = Array.sub v (q - 1) (Array.length v - q + 1)

let no_crossing chain st =
  let cands = Algorithm.candidates chain st in
  let p = Array.length cands in
  let violation = ref None in
  for k = 1 to p do
    for l = 1 to p do
      if !violation = None && k <> l
         && Comm_vector.precedes cands.(k - 1) cands.(l - 1)
      then
        for q = 1 to min k l do
          if !violation = None
             && Comm_vector.precedes (suffix cands.(l - 1) q) (suffix cands.(k - 1) q)
          then violation := Some (k, l, q)
        done
    done
  done;
  !violation

let check_no_crossing_throughout chain n =
  let ok = ref true in
  let check step =
    if no_crossing chain step.Algorithm.state_before <> None then ok := false
  in
  let (_ : Schedule.t) = Algorithm.schedule ~on_step:check chain n in
  !ok

let subchain_projection chain n =
  if Chain.length chain < 2 then true
  else begin
    let full = Algorithm.schedule chain n in
    let projected = Schedule.restrict_beyond_first full in
    let expected =
      Algorithm.schedule (Chain.drop_first chain) (Schedule.task_count projected)
    in
    Schedule.task_count projected = 0
    || Schedule.equal_modulo_shift projected expected
  end

let incremental_suffix chain n =
  let full = Algorithm.schedule chain n in
  let all = Schedule.entries full in
  let ok = ref true in
  for m = 1 to n - 1 do
    let tail = Array.sub all (n - m) m in
    let tail_schedule = Schedule.make chain tail in
    let expected = Algorithm.schedule chain m in
    if not (Schedule.equal_modulo_shift tail_schedule expected) then ok := false
  done;
  !ok
