(** How optimal schedules use a chain.

    The questions a platform owner asks once makespans are optimal: which
    processors actually receive work, how the load spreads as the batch
    grows, and how close a finite batch gets to the steady-state rate.
    Everything here just runs the §3 algorithm and summarises the result. *)

val tasks_per_processor : Msts_platform.Chain.t -> int -> int array
(** Index [k-1]: tasks executed on processor [k] in the optimal [n]-task
    schedule.  Entries sum to [n]. *)

val used_depth : Msts_platform.Chain.t -> int -> int
(** Deepest processor executing at least one task (0 when [n = 0]). *)

val activation_threshold :
  Msts_platform.Chain.t -> k:int -> max_n:int -> int option
(** Least [n ≤ max_n] whose optimal schedule gives processor [k] work, if
    any.  A deep processor activates once nearer ones saturate; the
    threshold marks the crossover the layered-network example studies. *)

val depth_profile :
  Msts_platform.Chain.t -> ns:int list -> (int * int array) list
(** [(n, tasks_per_processor n)] for each requested [n]. *)

val efficiency : Msts_platform.Chain.t -> int -> float
(** [n / (makespan(n) · ρ)] where ρ is the steady-state throughput: 1.0
    means the batch already runs at the asymptotic rate, small values mean
    start-up/wind-down dominate. *)
