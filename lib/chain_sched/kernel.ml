module Chain = Msts_platform.Chain
module Comm_vector = Msts_schedule.Comm_vector
module Obs = Msts_obs.Obs

type t = Fast | Reference

let to_string = function Fast -> "fast" | Reference -> "reference"

let of_string = function
  | "fast" -> Some Fast
  | "reference" -> Some Reference
  | _ -> None

let selected = Atomic.make Fast
let set_default k = Atomic.set selected k
let default () = Atomic.get selected

type scratch = { mutable vals : int array }

let scratch () = { vals = [||] }

(* Candidate [k]'s own value at coordinate [k]:
   min(o_k − w_k, h_k) − c_k, the latest arrival compatible with both the
   processor's occupancy and the link's hull. *)
let seed chain ~hull ~occupancy k =
  min (occupancy.(k - 1) - Chain.work chain k) hull.(k - 1)
  - Chain.latency chain k

(* Why one backward sweep suffices (the suffix-min structure): every
   candidate propagates towards the master through the same monotone maps
   g_j(x) = min(x, h_j) − c_j.  Monotonicity means the sign of the
   difference between two candidates' values is preserved coordinate by
   coordinate as the sweep moves towards link 1 — a strict gap can only
   collapse to zero (both clamped by the hull), never flip.  So scanning
   from coordinate 1, the first coordinate where candidates [a < b]
   differ carries the same sign as their gap at coordinate [a]; and when
   that gap is zero the whole common prefix is equal, in which case
   Definition 3 prefers the shorter vector, i.e. [a].  Hence candidate
   [a] beats any longer rival iff its seed is >= the rival's value
   propagated down to coordinate [a] — one scalar comparison. *)
let sweep chain ~hull ~occupancy sc =
  let p = Chain.length chain in
  if Array.length sc.vals < p then sc.vals <- Array.make p 0;
  let vals = sc.vals in
  (* The [~n:..] application boxes its optional argument; skipping it when
     no sink is installed keeps the sweep allocation-free in steady state
     (asserted by the online bench via [Gc.minor_words]). *)
  if Obs.enabled () then Obs.count ~n:p "chain.candidate_scans";
  let best = ref p in
  let tracked = ref (seed chain ~hull ~occupancy p) in
  vals.(p - 1) <- !tracked;
  for k = p - 1 downto 1 do
    let propagated = min !tracked hull.(k - 1) - Chain.latency chain k in
    let own = seed chain ~hull ~occupancy k in
    if own >= propagated then begin
      best := k;
      tracked := own
    end
    else tracked := propagated;
    vals.(k - 1) <- !tracked
  done;
  !best

let first_emission sc = sc.vals.(0)

let chosen_vector sc ~proc = Array.sub sc.vals 0 proc

let blit_chosen sc ~proc dst ~pos = Array.blit sc.vals 0 dst pos proc

let commit chain ~hull ~occupancy sc ~proc =
  let start = occupancy.(proc - 1) - Chain.work chain proc in
  occupancy.(proc - 1) <- start;
  Array.blit sc.vals 0 hull 0 proc;
  Obs.count "chain.tasks_placed";
  if Obs.enabled () then Obs.count ~n:proc "chain.hull_updates";
  Obs.count "chain.kernel.fast_placements";
  start
