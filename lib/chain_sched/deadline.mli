(** Deadline variant of the chain algorithm (paper §7).

    Same backward construction but started at a caller-supplied time limit
    [T_lim] instead of T∞, and stopped as soon as a task's first emission
    would fall before time 0 (or once [max_tasks] tasks are placed).  The
    paper proves (via the spider optimality argument of Lemma 4) that this
    schedules the largest possible number of tasks completing within
    [T_lim].

    Dates are absolute in [\[0, T_lim\]] — no final shift is applied, since
    the emission times are reused by the spider transformation. *)

val schedule :
  ?kernel:Kernel.t ->
  ?max_tasks:int -> Msts_platform.Chain.t -> deadline:int -> Msts_schedule.Schedule.t
(** Largest schedule fitting in [\[0, deadline\]]; at most [max_tasks] tasks
    when given.  Tasks are renumbered 1.. in emission order.
    @raise Invalid_argument on a negative deadline or negative
    [max_tasks]. *)

val max_tasks : ?kernel:Kernel.t -> Msts_platform.Chain.t -> deadline:int -> int
(** Number of tasks {!schedule} places (without materialising entries). *)

val min_makespan_via_deadline : ?kernel:Kernel.t -> Msts_platform.Chain.t -> int -> int
(** Optimal makespan for [n] tasks recovered by binary-searching the least
    deadline [d] with [max_tasks d >= n] — used in tests as an independent
    cross-check of {!Algorithm.makespan} (the two must agree).  The search
    is warm-started at {!Msts_schedule.Bounds.combined_bound} (provably
    [<= OPT]); each probe bumps the [chain.deadline.search_probes]
    counter. *)
