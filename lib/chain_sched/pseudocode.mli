(** Literal transcription of the paper's Figure 3 pseudo-code.

    {!Algorithm} is the production implementation (arrays, no intermediate
    allocation, shared candidate machinery).  This module is a deliberate,
    line-by-line transcription of the pseudo-code as printed — including
    its quirks: communication vectors initialised to an all-zero vector of
    length [p], candidate replacement by strict [≺] comparison while
    scanning [k = p downto 1], and the final shift by [C¹₁].  It exists
    only for differential testing: on every input the two implementations
    must produce the same schedule, which ties the code base back to the
    paper's own text.

    Do not use this in production: it allocates lists per candidate and is
    noticeably slower. *)

val schedule : Msts_platform.Chain.t -> int -> Msts_schedule.Schedule.t
(** Figure 3, verbatim.  @raise Invalid_argument if [n < 0]. *)
