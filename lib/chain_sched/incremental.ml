module Schedule = Msts_schedule.Schedule

(* Placements live in a struct-of-arrays store (processor / start / comm
   vector offset, plus one flat int pool for the vectors themselves)
   instead of a consed entry list: once the store has warmed up to its
   working capacity, placing a task touches no allocator at all — the
   property the online scheduler's steady state is benchmarked on.
   Construction order is newest-first-in-time: placement [i] emits
   strictly earlier than placement [i-1]. *)

type t = {
  chain : Msts_platform.Chain.t;
  kernel : Kernel.t;
  sc : Kernel.scratch;
  st : Algorithm.state;
  mutable horizon : int;
  mutable procs : int array; (* procs.(i): processor of placement i *)
  mutable starts : int array; (* starts.(i): compute start date *)
  mutable offs : int array; (* offs.(i): offset of comms in [pool] *)
  mutable pool : int array; (* flat comm-vector storage *)
  mutable pool_len : int;
  mutable placed : int;
  mutable full : bool;
}

let create ?kernel ?(capacity = 0) chain ~horizon =
  if Msts_platform.Chain.length chain = 0 then
    (* Unreachable through Chain.make (which refuses empty arrays), kept as
       a defensive guard with the same Msts.Chain.* error convention. *)
    invalid_arg "Msts.Chain.Incremental.create: zero-processor chain";
  if horizon < 0 then
    invalid_arg "Msts.Chain.Incremental.create: negative horizon";
  if capacity < 0 then
    invalid_arg "Msts.Chain.Incremental.create: negative capacity";
  let p = Msts_platform.Chain.length chain in
  {
    chain;
    kernel = (match kernel with Some k -> k | None -> Kernel.default ());
    sc = Kernel.scratch ();
    st = Algorithm.initial_state chain ~horizon;
    horizon;
    procs = Array.make capacity 0;
    starts = Array.make capacity 0;
    offs = Array.make capacity 0;
    pool = Array.make (capacity * p) 0;
    pool_len = 0;
    placed = 0;
    full = false;
  }

let grow a n = Array.append a (Array.make n 0)

(* Geometric growth: amortized O(1) words per placement, and exactly zero
   allocation while [placed] stays within the warmed-up capacity. *)
let ensure_room t ~proc =
  let cap = Array.length t.procs in
  if t.placed >= cap then begin
    let extra = max 8 cap in
    t.procs <- grow t.procs extra;
    t.starts <- grow t.starts extra;
    t.offs <- grow t.offs extra
  end;
  let pcap = Array.length t.pool in
  if t.pool_len + proc > pcap then
    t.pool <- grow t.pool (max proc (max 64 pcap))

let record_fast t ~proc ~start =
  let i = t.placed in
  t.procs.(i) <- proc;
  t.starts.(i) <- start;
  t.offs.(i) <- t.pool_len;
  t.pool_len <- t.pool_len + proc;
  t.placed <- i + 1

let add_task_reference t ~min_emission =
  (* Probe with the would-be greatest candidate before committing. *)
  let cands = Algorithm.candidates t.chain t.st in
  let best = Algorithm.select cands in
  if cands.(best).(0) < min_emission then begin
    t.full <- true;
    false
  end
  else begin
    let step = Algorithm.place t.chain t.st ~task:(t.placed + 1) in
    ensure_room t ~proc:step.Algorithm.chosen_proc;
    Array.blit step.Algorithm.chosen_vector 0 t.pool t.pool_len
      step.Algorithm.chosen_proc;
    record_fast t ~proc:step.Algorithm.chosen_proc ~start:step.Algorithm.start;
    true
  end

let add_task_fast t ~min_emission =
  (* One sweep both probes and decides; commit only if the task fits. *)
  let proc =
    Kernel.sweep t.chain ~hull:t.st.Algorithm.hull
      ~occupancy:t.st.Algorithm.occupancy t.sc
  in
  if Kernel.first_emission t.sc < min_emission then begin
    t.full <- true;
    false
  end
  else begin
    ensure_room t ~proc;
    Kernel.blit_chosen t.sc ~proc t.pool ~pos:t.pool_len;
    let start =
      Kernel.commit t.chain ~hull:t.st.Algorithm.hull
        ~occupancy:t.st.Algorithm.occupancy t.sc ~proc
    in
    record_fast t ~proc ~start;
    true
  end

let add_task_from t ~min_emission =
  if t.full then false
  else
    match t.kernel with
    | Kernel.Reference -> add_task_reference t ~min_emission
    | Kernel.Fast -> add_task_fast t ~min_emission

let add_task t = add_task_from t ~min_emission:0

let placed t = t.placed
let horizon t = t.horizon

let check_index t i name =
  if i < 0 || i >= t.placed then
    invalid_arg
      (Printf.sprintf "Msts.Chain.Incremental.%s: placement %d outside 0..%d"
         name i (t.placed - 1))

let proc_at t i =
  check_index t i "proc_at";
  t.procs.(i)

let start_at t i =
  check_index t i "start_at";
  t.starts.(i)

let emission_at t i =
  check_index t i "emission_at";
  t.pool.(t.offs.(i))

let comms_at t i =
  check_index t i "comms_at";
  Array.sub t.pool t.offs.(i) t.procs.(i)

let entry_at t i =
  { Schedule.proc = proc_at t i; start = start_at t i; comms = comms_at t i }

let extend t ~by =
  if by < 0 then
    invalid_arg "Msts.Chain.Incremental.extend: negative extension";
  if by > 0 then begin
    t.horizon <- t.horizon + by;
    let shift a n = for i = 0 to n - 1 do a.(i) <- a.(i) + by done in
    shift t.st.Algorithm.hull (Array.length t.st.Algorithm.hull);
    shift t.st.Algorithm.occupancy (Array.length t.st.Algorithm.occupancy);
    shift t.starts t.placed;
    shift t.pool t.pool_len;
    (* A construction that was full may fit more tasks on the longer
       horizon: the refusal is no longer a permanent fact. *)
    t.full <- false
  end

let schedule t =
  (* Placement i emits earlier than placement i-1, so emission order —
     the task numbering Schedule.make expects — is reverse construction
     order: task 1 is the newest placement. *)
  Schedule.make t.chain
    (Array.init t.placed (fun j -> entry_at t (t.placed - 1 - j)))

let state t =
  {
    Algorithm.hull = Array.copy t.st.Algorithm.hull;
    occupancy = Array.copy t.st.Algorithm.occupancy;
  }

let earliest_emission t =
  if t.placed = 0 then None else Some (emission_at t (t.placed - 1))

let fill t ?(max_tasks = max_int) () =
  while t.placed < max_tasks && add_task t do
    ()
  done;
  t.placed
