module Schedule = Msts_schedule.Schedule

type t = {
  chain : Msts_platform.Chain.t;
  st : Algorithm.state;
  mutable entries : Schedule.entry list; (* emission order: earliest first *)
  mutable placed : int;
  mutable full : bool;
}

let create chain ~horizon =
  if horizon < 0 then invalid_arg "Incremental.create: negative horizon";
  {
    chain;
    st = Algorithm.initial_state chain ~horizon;
    entries = [];
    placed = 0;
    full = false;
  }

let add_task t =
  if t.full then false
  else begin
    (* Probe with the would-be greatest candidate before committing. *)
    let cands = Algorithm.candidates t.chain t.st in
    let best = Algorithm.select cands in
    if cands.(best).(0) < 0 then begin
      t.full <- true;
      false
    end
    else begin
      let step = Algorithm.place t.chain t.st ~task:(t.placed + 1) in
      t.entries <-
        {
          Schedule.proc = step.Algorithm.chosen_proc;
          start = step.Algorithm.start;
          comms = step.Algorithm.chosen_vector;
        }
        :: t.entries;
      t.placed <- t.placed + 1;
      true
    end
  end

let placed t = t.placed

let schedule t = Schedule.make t.chain (Array.of_list t.entries)

let state t =
  {
    Algorithm.hull = Array.copy t.st.Algorithm.hull;
    occupancy = Array.copy t.st.Algorithm.occupancy;
  }

let earliest_emission t =
  match t.entries with
  | [] -> None
  | e :: _ -> Some (Msts_schedule.Comm_vector.first_emission e.Schedule.comms)

let fill t ?(max_tasks = max_int) () =
  while t.placed < max_tasks && add_task t do
    ()
  done;
  t.placed
