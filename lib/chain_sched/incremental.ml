module Schedule = Msts_schedule.Schedule

type t = {
  chain : Msts_platform.Chain.t;
  kernel : Kernel.t;
  sc : Kernel.scratch;
  st : Algorithm.state;
  mutable entries : Schedule.entry list; (* emission order: earliest first *)
  mutable placed : int;
  mutable full : bool;
}

let create ?kernel chain ~horizon =
  if horizon < 0 then invalid_arg "Incremental.create: negative horizon";
  {
    chain;
    kernel = (match kernel with Some k -> k | None -> Kernel.default ());
    sc = Kernel.scratch ();
    st = Algorithm.initial_state chain ~horizon;
    entries = [];
    placed = 0;
    full = false;
  }

let record t entry =
  t.entries <- entry :: t.entries;
  t.placed <- t.placed + 1;
  true

let add_task_reference t =
  (* Probe with the would-be greatest candidate before committing. *)
  let cands = Algorithm.candidates t.chain t.st in
  let best = Algorithm.select cands in
  if cands.(best).(0) < 0 then begin
    t.full <- true;
    false
  end
  else begin
    let step = Algorithm.place t.chain t.st ~task:(t.placed + 1) in
    record t
      {
        Schedule.proc = step.Algorithm.chosen_proc;
        start = step.Algorithm.start;
        comms = step.Algorithm.chosen_vector;
      }
  end

let add_task_fast t =
  (* One sweep both probes and decides; commit only if the task fits. *)
  let proc =
    Kernel.sweep t.chain ~hull:t.st.Algorithm.hull
      ~occupancy:t.st.Algorithm.occupancy t.sc
  in
  if Kernel.first_emission t.sc < 0 then begin
    t.full <- true;
    false
  end
  else begin
    let comms = Kernel.chosen_vector t.sc ~proc in
    let start =
      Kernel.commit t.chain ~hull:t.st.Algorithm.hull
        ~occupancy:t.st.Algorithm.occupancy t.sc ~proc
    in
    record t { Schedule.proc; start; comms }
  end

let add_task t =
  if t.full then false
  else
    match t.kernel with
    | Kernel.Reference -> add_task_reference t
    | Kernel.Fast -> add_task_fast t

let placed t = t.placed

let schedule t = Schedule.make t.chain (Array.of_list t.entries)

let state t =
  {
    Algorithm.hull = Array.copy t.st.Algorithm.hull;
    occupancy = Array.copy t.st.Algorithm.occupancy;
  }

let earliest_emission t =
  match t.entries with
  | [] -> None
  | e :: _ -> Some (Msts_schedule.Comm_vector.first_emission e.Schedule.comms)

let fill t ?(max_tasks = max_int) () =
  while t.placed < max_tasks && add_task t do
    ()
  done;
  t.placed
