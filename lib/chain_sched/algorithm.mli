(** The chain algorithm (paper §3) — the core contribution.

    Tasks are scheduled one at a time, {e backwards} from a horizon, and a
    decision is never reconsidered.  Two vectors of length [p] summarise the
    partially built (future) schedule:

    - the {e hull} [h_k]: earliest time at which link [k] is already in use;
    - the {e occupancy} [o_k]: earliest time at which processor [k] is
      already busy.

    For the next task (moving towards time 0) and every target processor
    [k], the latest legal communication vector is
    [v_k = min(o_k − w_k − c_k, h_k − c_k)] and, going back towards the
    master, [v_j = min(v_{j+1} − c_j, h_j − c_j)].  The greatest candidate
    in Definition 3's order wins; hull and occupancy are updated, and the
    final schedule is shifted so that it starts at time 0.

    The construction costs [O(p²)] per task, [O(n·p²)] overall (Theorem 1
    proves the result makespan-optimal). *)

type state = {
  hull : int array;  (** [hull.(k-1) = h_k] *)
  occupancy : int array;  (** [occupancy.(k-1) = o_k] *)
}
(** Construction state, exposed for the lemma checkers and the trace. *)

val initial_state : Msts_platform.Chain.t -> horizon:int -> state

val candidate : Msts_platform.Chain.t -> state -> int -> Msts_schedule.Comm_vector.t
(** [candidate chain st k] is [ᵏC(i)], the latest communication vector
    routing the next task to processor [k] (length [k]). *)

val candidates : Msts_platform.Chain.t -> state -> Msts_schedule.Comm_vector.t array
(** All [p] candidates, index [k-1] for processor [k]. *)

val select : Msts_schedule.Comm_vector.t array -> int
(** Index (0-based) of the greatest candidate per Definition 3. *)

type step = {
  task : int;  (** task index being placed (paper numbering, 1-based) *)
  chosen_proc : int;
  chosen_vector : Msts_schedule.Comm_vector.t;
  start : int;  (** T(i) before the final shift *)
  all_candidates : Msts_schedule.Comm_vector.t array;
  state_before : state;  (** deep copy *)
}

val place :
  Msts_platform.Chain.t -> state -> task:int -> step
(** Place one task: compute candidates, select, mutate the state, and
    report what happened. *)

val horizon : Msts_platform.Chain.t -> int -> int
(** T∞ = [c₁ + (n−1)·max(w₁,c₁) + w₁] for [n] tasks (0 when [n = 0]). *)

val schedule :
  ?kernel:Kernel.t ->
  ?on_step:(step -> unit) ->
  Msts_platform.Chain.t -> int -> Msts_schedule.Schedule.t
(** [schedule chain n] is the paper's algorithm: optimal schedule for [n]
    tasks, normalised to start at time 0.  [on_step] observes each
    placement (in construction order, task [n] first); installing it
    forces the reference kernel, which is the only one that materialises
    full {!step} records.  [kernel] defaults to {!Kernel.default}; both
    kernels produce identical schedules.
    @raise Invalid_argument if [n < 0]. *)

val makespan : ?kernel:Kernel.t -> Msts_platform.Chain.t -> int -> int
(** Makespan of {!schedule} without materialising the trace (and, on the
    fast kernel, without allocating any per-task vectors at all). *)

val schedule_with_selector :
  select:(Msts_schedule.Comm_vector.t array -> int) ->
  Msts_platform.Chain.t -> int -> Msts_schedule.Schedule.t
(** Same backward construction but with a caller-supplied candidate
    selection rule (0-based index into the candidate array) instead of
    Definition 3's maximum.  The result is feasible by construction for any
    rule; only the paper's rule is optimal.  Used by the ablation benches
    to quantify how much Definition 3's order matters. *)
