(** Kernel selection for the backward chain construction.

    The reference kernel materialises all [p] candidate vectors (total
    size O(p²)) on every placement and compares them with
    {!Msts_schedule.Comm_vector.precedes} — the paper's O(n·p²) cost,
    kept as the executable specification.  The fast kernel exploits the
    suffix-min structure of the candidates: they all share the
    propagation [v_j = min(v_{j+1}, h_j) − c_j], whose maps are monotone,
    so the Definition 3 winner can be decided with one scalar comparison
    per processor during a single O(p) backward sweep over a reusable
    scratch buffer — no per-task allocation beyond the chosen vector
    itself.  Both kernels produce byte-identical schedules (enforced by
    the differential test suite).

    The selected kernel is a process-wide atomic so batch-solver domains
    and the CLI share one switch; call sites can override it per call
    with their [?kernel] argument. *)

type t = Fast | Reference

val to_string : t -> string
val of_string : string -> t option

val default : unit -> t
(** Process-wide default, [Fast] unless {!set_default} was called. *)

val set_default : t -> unit

type scratch
(** Reusable buffer for the fast sweep; grows to the largest [p] seen. *)

val scratch : unit -> scratch

val sweep :
  Msts_platform.Chain.t ->
  hull:int array -> occupancy:int array -> scratch -> int
(** One fused candidates+select pass: returns the winning processor
    (1-based, the same index {!Algorithm.select} would pick) and leaves
    the winner's communication vector in the scratch buffer, readable
    through {!first_emission} and {!chosen_vector}.  Does not mutate the
    state arrays.  O(p) time, zero allocation after warm-up. *)

val first_emission : scratch -> int
(** The winner's link-1 emission date (coordinate 1 of its vector) after
    a {!sweep}; negative when the next task no longer fits the horizon. *)

val chosen_vector : scratch -> proc:int -> Msts_schedule.Comm_vector.t
(** Copy of the winner's communication vector (length [proc]) after a
    {!sweep} returning [proc].  The only allocation on the fast path. *)

val blit_chosen : scratch -> proc:int -> int array -> pos:int -> unit
(** Allocation-free variant of {!chosen_vector}: write the winner's vector
    (length [proc]) into [dst] at [pos].  Lets {!Incremental} store
    placements in a preallocated pool, so the whole per-arrival path runs
    without touching the minor heap. *)

val commit :
  Msts_platform.Chain.t ->
  hull:int array -> occupancy:int array -> scratch -> proc:int -> int
(** Apply the placement the last {!sweep} decided: update occupancy and
    hull in place exactly as {!Algorithm.place} would, bump the same
    counters, and return the task's start time. *)
