module Chain = Msts_platform.Chain
module Spider = Msts_platform.Spider

let task_symbol i =
  if i < 1 then '?'
  else if i <= 9 then Char.chr (Char.code '0' + i)
  else if i <= 9 + 26 then Char.chr (Char.code 'a' + i - 10)
  else '#'

type row = { label : string; cells : Bytes.t }

let blank_row label columns = { label; cells = Bytes.make columns '.' }

let paint ~scale row intervals =
  List.iter
    (fun { Intervals.start; duration; tag } ->
      let col_start = start / scale in
      let col_end = (start + duration - 1) / scale in
      for col = col_start to min col_end (Bytes.length row.cells - 1) do
        if col >= 0 && Bytes.get row.cells col = '.' then
          Bytes.set row.cells col (task_symbol tag)
      done)
    intervals

let ruler ~scale ~columns =
  let b = Bytes.make columns ' ' in
  let mark = ref 0 in
  while !mark / scale < columns do
    let col = !mark / scale in
    let s = string_of_int !mark in
    if col + String.length s <= columns then
      String.iteri (fun j ch -> Bytes.set b (col + j) ch) s;
    mark := !mark + (10 * scale)
  done;
  Bytes.to_string b

let assemble ~scale ~columns rows =
  let label_width =
    List.fold_left (fun acc r -> max acc (String.length r.label)) 0 rows
  in
  let pad s = s ^ String.make (label_width - String.length s) ' ' in
  let line r = pad r.label ^ " |" ^ Bytes.to_string r.cells ^ "|" in
  let header = String.make label_width ' ' ^ "  " ^ ruler ~scale ~columns in
  String.concat "\n" (header :: List.map line rows)

let plan_scale ~width horizon =
  let horizon = max horizon 1 in
  let scale = (horizon + width - 1) / width in
  let scale = max scale 1 in
  (scale, (horizon + scale - 1) / scale)

let render ?(width = 100) sched =
  let chain = Schedule.chain sched in
  let scale, columns = plan_scale ~width (Schedule.makespan sched) in
  let p = Chain.length chain in
  let rows =
    List.concat_map
      (fun k ->
        let link = blank_row (Printf.sprintf "link %d" k) columns in
        paint ~scale link (Schedule.link_intervals sched k);
        let proc = blank_row (Printf.sprintf "proc %d" k) columns in
        paint ~scale proc (Schedule.proc_intervals sched k);
        [ link; proc ])
      (Msts_util.Intx.range 1 p)
  in
  assemble ~scale ~columns rows

let render_spider ?(width = 100) sched =
  let spider = Spider_schedule.spider sched in
  let scale, columns = plan_scale ~width (Spider_schedule.makespan sched) in
  let master = blank_row "master port" columns in
  paint ~scale master (Spider_schedule.master_port_intervals sched);
  let leg_rows =
    List.concat_map
      (fun l ->
        let chain = Spider.leg_chain spider l in
        List.concat_map
          (fun k ->
            let link = blank_row (Printf.sprintf "leg %d link %d" l k) columns in
            paint ~scale link (Spider_schedule.leg_link_intervals sched ~leg:l ~link:k);
            let proc = blank_row (Printf.sprintf "leg %d proc %d" l k) columns in
            paint ~scale proc (Spider_schedule.leg_proc_intervals sched ~leg:l ~depth:k);
            [ link; proc ])
          (Msts_util.Intx.range 1 (Chain.length chain)))
      (Msts_util.Intx.range 1 (Spider.legs spider))
  in
  assemble ~scale ~columns (master :: leg_rows)
