(** Spider schedules (paper §6–7).

    Each task is routed down one leg of the spider; within the leg the chain
    rules of Definition 1 apply, and across legs the master may drive only
    one outgoing transfer at a time (its port is busy for [c₁] of the chosen
    leg at each emission). *)

type entry = {
  address : Msts_platform.Spider.address;  (** executing processor *)
  start : int;  (** T(i) *)
  comms : Comm_vector.t;  (** emissions along the leg; length = depth *)
}

type t

val make : Msts_platform.Spider.t -> entry array -> t
(** Structural validation only (addresses and vector lengths).
    @raise Invalid_argument on structural errors. *)

val spider : t -> Msts_platform.Spider.t

val task_count : t -> int

val entry : t -> int -> entry

val entries : t -> entry array

val makespan : t -> int

val tasks_on_leg : t -> int -> int list
(** Tasks routed down leg [l], in first-emission order. *)

val leg_schedule : t -> int -> Schedule.t
(** The chain schedule induced on leg [l] (possibly empty). *)

val master_port_intervals : t -> int Intervals.interval list
(** Busy intervals of the master's single outgoing port. *)

val leg_link_intervals : t -> leg:int -> link:int -> int Intervals.interval list
(** Busy intervals of one link of one leg, tagged with {e global} task
    indices (unlike {!leg_schedule}, which renumbers per leg). *)

val leg_proc_intervals : t -> leg:int -> depth:int -> int Intervals.interval list
(** Busy intervals of one processor of one leg, tagged with global task
    indices. *)

val check : ?require_nonnegative:bool -> t -> string list
(** Human-readable violations: per-leg Definition 1 checks plus the master's
    one-port rule.  Empty list = feasible. *)

val is_feasible : ?require_nonnegative:bool -> t -> bool

val meets_deadline : t -> deadline:int -> bool

val of_chain_schedule : Schedule.t -> t
(** View a chain schedule as a one-leg spider schedule. *)

val shift : t -> delta:int -> t
(** All dates (starts and emissions) moved by [delta] — re-anchors a plan
    computed from time 0 at an absolute date, e.g. when splicing a
    replanned suffix into a running execution.
    @raise Invalid_argument if any date would become negative. *)

val filter_tasks : t -> keep:(int -> bool) -> t
(** Sub-schedule of the tasks whose (1-based) index satisfies [keep];
    survivors are renumbered consecutively, entry order preserved. *)

val equal : t -> t -> bool
(** Same spider, same entries (routes, starts and emission dates all
    included). *)

val concat : t -> t -> t
(** Entries of both schedules, first then second, renumbered — the splice
    of two partial schedules.  Purely structural: feasibility of the result
    is the caller's claim to check.
    @raise Invalid_argument if the spiders differ. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
