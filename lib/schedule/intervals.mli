(** Disjointness checking for tagged busy intervals.

    A shared primitive of the feasibility checker: a resource (a link, a
    processor, the master's outgoing port) is a sequence of half-open busy
    intervals [\[start, start+duration)]; the one-port and one-task-at-a-time
    rules say these intervals must be pairwise disjoint. *)

type 'tag interval = { start : int; duration : int; tag : 'tag }

val overlap_witness : 'tag interval list -> ('tag interval * 'tag interval) option
(** First overlapping pair in start order, if any; [None] means pairwise
    disjoint.  Zero-duration intervals never overlap anything. *)

val are_disjoint : 'tag interval list -> bool

val utilisation : 'tag interval list -> horizon:int -> float
(** Fraction of [\[0, horizon)] covered by the intervals (they are assumed
    disjoint); used by the experiment harness to report link/processor
    occupancy. *)
