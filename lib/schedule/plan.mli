(** The unified plan: one polymorphic result type covering both schedule
    shapes the algorithms produce.

    [Msts.Solve] returns it, [Msts.Netsim.execute] consumes it, and the
    CLI renders every subcommand through it — so chains and spiders flow
    through one code path end to end.  Chain plans promote losslessly to
    one-leg spider plans ({!to_spider}) whenever an executor only speaks
    spider. *)

type t =
  | Chain of Schedule.t
  | Spider of Spider_schedule.t

val makespan : t -> int
val task_count : t -> int

val to_string : t -> string
(** The shape's native human rendering ({!Schedule.to_string} /
    {!Spider_schedule.to_string}). *)

val equal : t -> t -> bool
(** Structural equality: same shape, same platform, same dates — the
    invariant the batch solver's differential tests enforce against the
    sequential path.  A chain plan is never equal to a spider plan, even
    its own one-leg promotion. *)

val check : ?require_nonnegative:bool -> t -> string list
(** Feasibility audit; [[]] means feasible. *)

val to_spider : t -> Spider_schedule.t
(** Promote a chain plan to its one-leg spider equivalent; the identity on
    spider plans. *)

val gantt : ?width:int -> t -> string
(** ASCII Gantt chart. *)

val svg : t -> string
(** SVG Gantt chart. *)

val serialize : t -> string
(** Machine-readable form ({!Serial}). *)

val to_csv : t -> string
(** Per-task CSV table ({!Serial}). *)
