module Chain = Msts_platform.Chain
module Spider = Msts_platform.Spider

let lane_height = 24
let lane_gap = 6
let label_width = 120
let top_margin = 30

(* Well-spaced hues so neighbouring task indices are easy to tell apart. *)
let task_color i =
  let hue = float_of_int (i * 137 mod 360) in
  Printf.sprintf "hsl(%.0f, 65%%, 55%%)" hue

type lane = { label : string; intervals : int Intervals.interval list }

let render_lanes ~px_per_unit ~horizon lanes =
  let width = label_width + int_of_float (px_per_unit *. float_of_int (max horizon 1)) + 20 in
  let height = top_margin + (List.length lanes * (lane_height + lane_gap)) + 20 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"monospace\" font-size=\"12\">\n"
       width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" fill=\"white\"/>\n"
       width height);
  (* vertical grid every 10 time units *)
  let mark = ref 0 in
  while !mark <= horizon do
    let x = label_width + int_of_float (px_per_unit *. float_of_int !mark) in
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#ddd\"/>\n" x
         (top_margin - 5) x (height - 15));
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"%d\" y=\"%d\" fill=\"#666\">%d</text>\n" x
         (top_margin - 10) !mark);
    mark := !mark + 10
  done;
  List.iteri
    (fun row lane ->
      let y = top_margin + (row * (lane_height + lane_gap)) in
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"4\" y=\"%d\" fill=\"#333\">%s</text>\n"
           (y + (lane_height / 2) + 4)
           lane.label);
      List.iter
        (fun { Intervals.start; duration; tag } ->
          let x = label_width + int_of_float (px_per_unit *. float_of_int start) in
          let w =
            max 1 (int_of_float (px_per_unit *. float_of_int duration))
          in
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" \
                stroke=\"#333\"/>\n"
               x y w lane_height (task_color tag));
          Buffer.add_string buf
            (Printf.sprintf
               "<text x=\"%d\" y=\"%d\" fill=\"white\">%d</text>\n" (x + 4)
               (y + (lane_height / 2) + 4)
               tag))
        lane.intervals)
    lanes;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let render ?(px_per_unit = 8.0) sched =
  let chain = Schedule.chain sched in
  let lanes =
    List.concat_map
      (fun k ->
        [
          { label = Printf.sprintf "link %d" k;
            intervals = Schedule.link_intervals sched k };
          { label = Printf.sprintf "proc %d" k;
            intervals = Schedule.proc_intervals sched k };
        ])
      (Msts_util.Intx.range 1 (Chain.length chain))
  in
  render_lanes ~px_per_unit ~horizon:(Schedule.makespan sched) lanes

let render_spider ?(px_per_unit = 8.0) sched =
  let spider = Spider_schedule.spider sched in
  let master =
    { label = "master port";
      intervals = Spider_schedule.master_port_intervals sched }
  in
  let leg_lanes =
    List.concat_map
      (fun l ->
        let chain = Spider.leg_chain spider l in
        List.concat_map
          (fun k ->
            [
              { label = Printf.sprintf "leg %d link %d" l k;
                intervals = Spider_schedule.leg_link_intervals sched ~leg:l ~link:k };
              { label = Printf.sprintf "leg %d proc %d" l k;
                intervals = Spider_schedule.leg_proc_intervals sched ~leg:l ~depth:k };
            ])
          (Msts_util.Intx.range 1 (Chain.length chain)))
      (Msts_util.Intx.range 1 (Spider.legs spider))
  in
  render_lanes ~px_per_unit
    ~horizon:(Spider_schedule.makespan sched)
    (master :: leg_lanes)

let save path svg =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc svg)
