module Chain = Msts_platform.Chain

type entry = { proc : int; start : int; comms : Comm_vector.t }

type t = { chain : Chain.t; entries : entry array }

let make chain entries =
  let p = Chain.length chain in
  Array.iteri
    (fun idx e ->
      let task = idx + 1 in
      if e.proc < 1 || e.proc > p then
        invalid_arg
          (Printf.sprintf "Schedule.make: task %d on processor %d outside 1..%d"
             task e.proc p);
      if Array.length e.comms <> e.proc then
        invalid_arg
          (Printf.sprintf
             "Schedule.make: task %d has %d communications for processor %d"
             task (Array.length e.comms) e.proc))
    entries;
  { chain; entries = Array.copy entries }

let chain t = t.chain

let task_count t = Array.length t.entries

let entry t i =
  if i < 1 || i > task_count t then
    invalid_arg
      (Printf.sprintf "Schedule.entry: task %d outside 1..%d" i (task_count t));
  t.entries.(i - 1)

let entries t = Array.copy t.entries

let makespan t =
  Array.fold_left
    (fun acc e -> max acc (e.start + Chain.work t.chain e.proc))
    0 t.entries

let start_time t =
  Array.fold_left
    (fun acc e -> min acc (Comm_vector.first_emission e.comms))
    max_int t.entries

let shift d t =
  let move e =
    { e with start = e.start - d; comms = Comm_vector.shift d e.comms }
  in
  { t with entries = Array.map move t.entries }

let normalise t = if task_count t = 0 then t else shift (start_time t) t

let tasks_on t k =
  let with_start =
    List.filter_map
      (fun idx ->
        let e = t.entries.(idx) in
        if e.proc = k then Some (e.start, idx + 1) else None)
      (List.init (task_count t) Fun.id)
  in
  List.map snd (List.sort compare with_start)

let load_of t k = Chain.work t.chain k * List.length (tasks_on t k)

let link_intervals t k =
  let c = Chain.latency t.chain k in
  List.filter_map
    (fun idx ->
      let e = t.entries.(idx) in
      if e.proc >= k then
        Some { Intervals.start = e.comms.(k - 1); duration = c; tag = idx + 1 }
      else None)
    (List.init (task_count t) Fun.id)

let proc_intervals t k =
  let w = Chain.work t.chain k in
  List.filter_map
    (fun idx ->
      let e = t.entries.(idx) in
      if e.proc = k then
        Some { Intervals.start = e.start; duration = w; tag = idx + 1 }
      else None)
    (List.init (task_count t) Fun.id)

let emission_order t =
  let keyed =
    List.init (task_count t) (fun idx ->
        (Comm_vector.first_emission t.entries.(idx).comms, idx + 1))
  in
  List.map snd (List.sort compare keyed)

let restrict_beyond_first t =
  let sub_chain = Chain.drop_first t.chain in
  let entries =
    Array.of_list
      (List.filter_map
         (fun e ->
           if e.proc >= 2 then
             Some
               {
                 proc = e.proc - 1;
                 start = e.start;
                 comms = Array.sub e.comms 1 (e.proc - 1);
               }
           else None)
         (Array.to_list t.entries))
  in
  make sub_chain entries

let equal a b =
  Chain.equal a.chain b.chain
  && task_count a = task_count b
  && Array.for_all2
       (fun x y -> x.proc = y.proc && x.start = y.start && x.comms = y.comms)
       a.entries b.entries

let equal_modulo_shift a b = equal (normalise a) (normalise b)

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule on %a (makespan %d):@," Chain.pp t.chain
    (makespan t);
  Array.iteri
    (fun idx e ->
      Format.fprintf ppf "  task %d -> P%d, start %d, comms %a@," (idx + 1)
        e.proc e.start Comm_vector.pp e.comms)
    t.entries;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
