(** Quantitative views of a schedule.

    The paper's Figure 2 points at a buffered task (received, then waiting
    for the processor); these metrics make such phenomena measurable:
    per-task waiting times, per-processor buffer high-water marks, and
    resource utilisation.  Used by the experiment harness and the
    examples; none of this feeds back into the algorithms. *)

type task_timing = {
  task : int;
  arrival : int;  (** end of the last transfer: [C_{P} + c_{P}] *)
  start : int;  (** T(i) *)
  waiting : int;  (** start − arrival (≥ 0 in a feasible schedule) *)
  completion : int;  (** start + w *)
}

val task_timings : Schedule.t -> task_timing list
(** Timing of every task, in task order. *)

val total_waiting : Schedule.t -> int
(** Sum of waiting times — how much buffering the schedule relies on. *)

val max_waiting : Schedule.t -> int
(** Largest single wait (0 for an empty schedule). *)

val buffer_high_water : Schedule.t -> int -> int
(** [buffer_high_water t k] is the maximum number of tasks simultaneously
    received-but-not-yet-started on processor [k] (a task starting at the
    instant another arrives does not count as overlapping it). *)

val link_utilisation : Schedule.t -> int -> float
(** Busy fraction of link [k] over [\[0, makespan)]. *)

val proc_utilisation : Schedule.t -> int -> float
(** Busy fraction of processor [k] over [\[0, makespan)]. *)

val summary : Schedule.t -> string
(** Multi-line human-readable report of all the above. *)

val spider_master_utilisation : Spider_schedule.t -> float
(** Busy fraction of the master's port — the resource the whole paper is
    about saturating. *)

val spider_summary : Spider_schedule.t -> string
(** Multi-line report: master-port utilisation, then per-leg task counts,
    per-resource utilisation and buffering (via each leg's induced chain
    schedule). *)
