module Chain = Msts_platform.Chain

type violation =
  | Reemitted_before_received of { task : int; link : int }
  | Started_before_received of { task : int }
  | Computation_overlap of { first : int; second : int; proc : int }
  | Communication_overlap of { first : int; second : int; link : int }
  | Negative_date of { task : int }

let pp_violation ppf = function
  | Reemitted_before_received { task; link } ->
      Format.fprintf ppf
        "task %d re-emitted on link %d before its reception completed" task link
  | Started_before_received { task } ->
      Format.fprintf ppf "task %d starts before it is fully received" task
  | Computation_overlap { first; second; proc } ->
      Format.fprintf ppf "tasks %d and %d overlap on processor %d" first second proc
  | Communication_overlap { first; second; link } ->
      Format.fprintf ppf "transfers of tasks %d and %d overlap on link %d" first
        second link
  | Negative_date { task } ->
      Format.fprintf ppf "task %d has a date before time 0" task

let violation_to_string v = Format.asprintf "%a" pp_violation v

(* Properties 1 and 2, one task at a time. *)
let per_task_violations chain i (e : Schedule.entry) =
  let store_and_forward =
    List.filter_map
      (fun k ->
        if e.comms.(k - 2) + Chain.latency chain (k - 1) > e.comms.(k - 1) then
          Some (Reemitted_before_received { task = i; link = k })
        else None)
      (Msts_util.Intx.range 2 e.proc)
  in
  let reception =
    if e.comms.(e.proc - 1) + Chain.latency chain e.proc > e.start then
      [ Started_before_received { task = i } ]
    else []
  in
  store_and_forward @ reception

(* Properties 3 and 4 via sorted busy intervals: since all intervals on a
   given resource have the same duration, pairwise disjointness is
   equivalent to consecutive disjointness in start order. *)
let resource_violations t =
  let chain = Schedule.chain t in
  let p = Chain.length chain in
  let on_proc k =
    match Intervals.overlap_witness (Schedule.proc_intervals t k) with
    | Some (a, b) ->
        [ Computation_overlap { first = a.Intervals.tag; second = b.Intervals.tag; proc = k } ]
    | None -> []
  in
  let on_link k =
    match Intervals.overlap_witness (Schedule.link_intervals t k) with
    | Some (a, b) ->
        [ Communication_overlap { first = a.Intervals.tag; second = b.Intervals.tag; link = k } ]
    | None -> []
  in
  List.concat_map (fun k -> on_link k @ on_proc k) (Msts_util.Intx.range 1 p)

let negative_dates t =
  List.filter_map
    (fun i ->
      let e = Schedule.entry t i in
      if e.start < 0 || Array.exists (fun x -> x < 0) e.comms then
        Some (Negative_date { task = i })
      else None)
    (Msts_util.Intx.range 1 (Schedule.task_count t))

let check ?(require_nonnegative = false) t =
  let chain = Schedule.chain t in
  let per_task =
    List.concat_map
      (fun i -> per_task_violations chain i (Schedule.entry t i))
      (Msts_util.Intx.range 1 (Schedule.task_count t))
  in
  let negatives = if require_nonnegative then negative_dates t else [] in
  negatives @ per_task @ resource_violations t

let is_feasible ?require_nonnegative t = check ?require_nonnegative t = []

let check_exn ?require_nonnegative t =
  match check ?require_nonnegative t with
  | [] -> ()
  | violations ->
      failwith
        ("infeasible schedule: "
        ^ String.concat "; " (List.map violation_to_string violations))

let meets_deadline t ~deadline =
  is_feasible ~require_nonnegative:true t && Schedule.makespan t <= deadline
