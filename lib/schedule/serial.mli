(** Textual (de)serialisation of schedules.

    Format, one task per line after a header (blank lines and [#] comments
    ignored):

    {v
    chain-schedule                 spider-schedule
    task <proc> <start> <C1> ...   task <leg> <depth> <start> <C1> ...
    v}

    The platform itself travels separately (see
    {!Msts_platform.Parse}); loading re-checks structural consistency
    against the platform it is paired with. *)

val schedule_to_string : Schedule.t -> string

val schedule_of_string :
  Msts_platform.Chain.t -> string -> (Schedule.t, string) result

val spider_schedule_to_string : Spider_schedule.t -> string

val spider_schedule_of_string :
  Msts_platform.Spider.t -> string -> (Spider_schedule.t, string) result

val schedule_to_csv : Schedule.t -> string
(** Spreadsheet-friendly export: one row per task with columns
    [task,processor,start,completion,emissions] (emissions
    semicolon-separated within the field). *)

val spider_schedule_to_csv : Spider_schedule.t -> string
(** Columns [task,leg,depth,start,completion,emissions]. *)
