type t = int array

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let n = min la lb in
  let rec loop j =
    if j < n then
      if a.(j) < b.(j) then -1
      else if a.(j) > b.(j) then 1
      else loop (j + 1)
    else Int.compare lb la (* equal common prefix: the longer vector is smaller *)
  in
  loop 0

let precedes a b = compare a b < 0

let max_of = function
  | [] -> invalid_arg "Comm_vector.max_of: empty list"
  | v :: vs -> List.fold_left (fun acc u -> if precedes acc u then u else acc) v vs

let shift d v = Array.map (fun x -> x - d) v

let target v = Array.length v

let first_emission v =
  if Array.length v = 0 then invalid_arg "Comm_vector.first_emission: empty vector";
  v.(0)

let is_prefix a b =
  let la = Array.length a in
  la <= Array.length b
  &&
  let rec loop j = j >= la || (a.(j) = b.(j) && loop (j + 1)) in
  loop 0

let pp ppf v =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_int)
    (Array.to_list v)

let to_string v = Format.asprintf "%a" pp v
