module Spider = Msts_platform.Spider
module Chain = Msts_platform.Chain

type entry = { address : Spider.address; start : int; comms : Comm_vector.t }

type t = { spider : Spider.t; entries : entry array }

let make spider entries =
  Array.iteri
    (fun idx e ->
      let task = idx + 1 in
      let { Spider.leg; depth } = e.address in
      if leg < 1 || leg > Spider.legs spider then
        invalid_arg (Printf.sprintf "Spider_schedule.make: task %d on leg %d" task leg);
      let chain = Spider.leg_chain spider leg in
      if depth < 1 || depth > Chain.length chain then
        invalid_arg
          (Printf.sprintf "Spider_schedule.make: task %d at depth %d on leg %d"
             task depth leg);
      if Array.length e.comms <> depth then
        invalid_arg
          (Printf.sprintf "Spider_schedule.make: task %d comm vector length" task))
    entries;
  { spider; entries = Array.copy entries }

let spider t = t.spider

let task_count t = Array.length t.entries

let entry t i =
  if i < 1 || i > task_count t then
    invalid_arg
      (Printf.sprintf "Spider_schedule.entry: task %d outside 1..%d" i (task_count t));
  t.entries.(i - 1)

let entries t = Array.copy t.entries

let makespan t =
  Array.fold_left
    (fun acc e -> max acc (e.start + Spider.work t.spider e.address))
    0 t.entries

let tasks_on_leg t l =
  let keyed =
    List.filter_map
      (fun idx ->
        let e = t.entries.(idx) in
        if e.address.Spider.leg = l then
          Some (Comm_vector.first_emission e.comms, idx + 1)
        else None)
      (List.init (task_count t) Fun.id)
  in
  List.map snd (List.sort compare keyed)

let leg_schedule t l =
  let chain = Spider.leg_chain t.spider l in
  let entries =
    Array.of_list
      (List.filter_map
         (fun e ->
           if e.address.Spider.leg = l then
             Some
               {
                 Schedule.proc = e.address.Spider.depth;
                 start = e.start;
                 comms = e.comms;
               }
           else None)
         (Array.to_list t.entries))
  in
  Schedule.make chain entries

let master_port_intervals t =
  List.map
    (fun idx ->
      let e = t.entries.(idx) in
      let c1 = Chain.latency (Spider.leg_chain t.spider e.address.Spider.leg) 1 in
      {
        Intervals.start = Comm_vector.first_emission e.comms;
        duration = c1;
        tag = idx + 1;
      })
    (List.init (task_count t) Fun.id)

let leg_link_intervals t ~leg ~link =
  let c = Chain.latency (Spider.leg_chain t.spider leg) link in
  List.filter_map
    (fun idx ->
      let e = t.entries.(idx) in
      if e.address.Spider.leg = leg && e.address.Spider.depth >= link then
        Some { Intervals.start = e.comms.(link - 1); duration = c; tag = idx + 1 }
      else None)
    (List.init (task_count t) Fun.id)

let leg_proc_intervals t ~leg ~depth =
  let w = Chain.work (Spider.leg_chain t.spider leg) depth in
  List.filter_map
    (fun idx ->
      let e = t.entries.(idx) in
      if e.address.Spider.leg = leg && e.address.Spider.depth = depth then
        Some { Intervals.start = e.start; duration = w; tag = idx + 1 }
      else None)
    (List.init (task_count t) Fun.id)

let check ?(require_nonnegative = false) t =
  let leg_reports =
    List.concat_map
      (fun l ->
        let local = leg_schedule t l in
        List.map
          (fun v ->
            Printf.sprintf "leg %d: %s" l (Feasibility.violation_to_string v))
          (Feasibility.check ~require_nonnegative local))
      (Msts_util.Intx.range 1 (Spider.legs t.spider))
  in
  let master_report =
    match Intervals.overlap_witness (master_port_intervals t) with
    | Some (a, b) ->
        [
          Printf.sprintf "master port: emissions of tasks %d and %d overlap"
            a.Intervals.tag b.Intervals.tag;
        ]
    | None -> []
  in
  leg_reports @ master_report

let is_feasible ?require_nonnegative t = check ?require_nonnegative t = []

let meets_deadline t ~deadline =
  is_feasible ~require_nonnegative:true t && makespan t <= deadline

let shift t ~delta =
  let move (e : entry) =
    if e.start + delta < 0 || Array.exists (fun c -> c + delta < 0) e.comms then
      invalid_arg "Spider_schedule.shift: negative date after shift";
    { e with start = e.start + delta; comms = Array.map (( + ) delta) e.comms }
  in
  { t with entries = Array.map move t.entries }

let filter_tasks t ~keep =
  let entries =
    Array.of_list
      (List.filter_map
         (fun idx -> if keep (idx + 1) then Some t.entries.(idx) else None)
         (List.init (task_count t) Fun.id))
  in
  { t with entries }

let concat a b =
  if not (Msts_platform.Spider.equal a.spider b.spider) then
    invalid_arg "Spider_schedule.concat: schedules are on different spiders";
  { a with entries = Array.append a.entries b.entries }

let of_chain_schedule sched =
  let spider = Spider.of_chain (Schedule.chain sched) in
  let entries =
    Array.map
      (fun (e : Schedule.entry) ->
        {
          address = { Spider.leg = 1; depth = e.proc };
          start = e.start;
          comms = e.comms;
        })
      (Schedule.entries sched)
  in
  make spider entries

let equal a b =
  Spider.equal a.spider b.spider
  && Array.length a.entries = Array.length b.entries
  && Array.for_all2
       (fun x y -> x.address = y.address && x.start = y.start && x.comms = y.comms)
       a.entries b.entries

let pp ppf t =
  Format.fprintf ppf "@[<v>spider schedule (makespan %d):@," (makespan t);
  Array.iteri
    (fun idx e ->
      Format.fprintf ppf "  task %d -> leg %d depth %d, start %d, comms %a@,"
        (idx + 1) e.address.Spider.leg e.address.Spider.depth e.start
        Comm_vector.pp e.comms)
    t.entries;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
