let ints_line ints = String.concat " " (List.map string_of_int ints)

let schedule_to_string sched =
  let entry (e : Schedule.entry) =
    "task " ^ ints_line (e.proc :: e.start :: Array.to_list e.comms)
  in
  String.concat "\n"
    ("chain-schedule"
    :: List.map entry (Array.to_list (Schedule.entries sched)))
  ^ "\n"

let spider_schedule_to_string sched =
  let entry (e : Spider_schedule.entry) =
    "task "
    ^ ints_line
        (e.address.Msts_platform.Spider.leg
        :: e.address.Msts_platform.Spider.depth
        :: e.start
        :: Array.to_list e.comms)
  in
  String.concat "\n"
    ("spider-schedule"
    :: List.map entry (Array.to_list (Spider_schedule.entries sched)))
  ^ "\n"

let schedule_to_csv sched =
  let chain = Schedule.chain sched in
  let table =
    Msts_util.Table.create ~title:"schedule"
      ~columns:[ "task"; "processor"; "start"; "completion"; "emissions" ]
  in
  Array.iteri
    (fun idx (e : Schedule.entry) ->
      Msts_util.Table.add_row table
        [
          string_of_int (idx + 1);
          string_of_int e.proc;
          string_of_int e.start;
          string_of_int (e.start + Msts_platform.Chain.work chain e.proc);
          String.concat ";" (List.map string_of_int (Array.to_list e.comms));
        ])
    (Schedule.entries sched);
  Msts_util.Table.to_csv table

let spider_schedule_to_csv sched =
  let spider = Spider_schedule.spider sched in
  let table =
    Msts_util.Table.create ~title:"schedule"
      ~columns:[ "task"; "leg"; "depth"; "start"; "completion"; "emissions" ]
  in
  Array.iteri
    (fun idx (e : Spider_schedule.entry) ->
      Msts_util.Table.add_row table
        [
          string_of_int (idx + 1);
          string_of_int e.address.Msts_platform.Spider.leg;
          string_of_int e.address.Msts_platform.Spider.depth;
          string_of_int e.start;
          string_of_int (e.start + Msts_platform.Spider.work spider e.address);
          String.concat ";" (List.map string_of_int (Array.to_list e.comms));
        ])
    (Spider_schedule.entries sched);
  Msts_util.Table.to_csv table

let meaningful_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, String.trim line))
  |> List.filter (fun (_, line) ->
         line <> "" && not (String.length line > 0 && line.[0] = '#'))

let parse_task_line (lineno, line) =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | "task" :: fields -> (
      let ints = List.map int_of_string_opt fields in
      if List.exists Option.is_none ints then
        Error (Printf.sprintf "line %d: non-integer field" lineno)
      else Ok (List.map Option.get ints))
  | _ -> Error (Printf.sprintf "line %d: expected 'task ...'" lineno)

let parse_body ~header ~entry_of_ints lines =
  match lines with
  | [] -> Error "empty schedule description"
  | (lineno, first) :: rest ->
      if first <> header then
        Error (Printf.sprintf "line %d: expected %S header" lineno header)
      else begin
        let rec loop acc = function
          | [] -> Ok (List.rev acc)
          | entry_line :: more -> (
              match parse_task_line entry_line with
              | Error e -> Error e
              | Ok ints -> (
                  match entry_of_ints (fst entry_line) ints with
                  | Error e -> Error e
                  | Ok entry -> loop (entry :: acc) more))
        in
        loop [] rest
      end

let schedule_of_string chain text =
  let entry_of_ints lineno = function
    | proc :: start :: comms when List.length comms = proc ->
        Ok { Schedule.proc; start; comms = Array.of_list comms }
    | _ -> Error (Printf.sprintf "line %d: malformed chain task" lineno)
  in
  match parse_body ~header:"chain-schedule" ~entry_of_ints (meaningful_lines text) with
  | Error e -> Error e
  | Ok entries -> (
      match Schedule.make chain (Array.of_list entries) with
      | sched -> Ok sched
      | exception Invalid_argument msg -> Error msg)

let spider_schedule_of_string spider text =
  let entry_of_ints lineno = function
    | leg :: depth :: start :: comms when List.length comms = depth ->
        Ok
          {
            Spider_schedule.address = { Msts_platform.Spider.leg; depth };
            start;
            comms = Array.of_list comms;
          }
    | _ -> Error (Printf.sprintf "line %d: malformed spider task" lineno)
  in
  match
    parse_body ~header:"spider-schedule" ~entry_of_ints (meaningful_lines text)
  with
  | Error e -> Error e
  | Ok entries -> (
      match Spider_schedule.make spider (Array.of_list entries) with
      | sched -> Ok sched
      | exception Invalid_argument msg -> Error msg)
