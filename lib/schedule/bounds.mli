(** Lower bounds on the optimal makespan.

    Used by the experiment harness to situate the optimal schedule and the
    heuristics on an absolute scale, and by tests as one-sided oracles on
    instances too large for brute force: every bound here is provably
    [<= OPT]. *)

val port_bound : Msts_platform.Chain.t -> int -> int
(** Master-port argument: all [n] tasks cross link 1, one at a time, and the
    last one emitted still needs its best-case path and execution:
    [(n−1)·c₁ + min_k (c₁+…+c_k + w_k)].  0 when [n = 0]. *)

val capacity_bound : Msts_platform.Chain.t -> int -> int
(** Processing-capacity argument: within a horizon [M] processor [k]
    completes at most [⌊(M − (c₁+…+c_k))/w_k⌋] tasks (it cannot even
    receive anything earlier).  The bound is the least [M] whose total
    capacity reaches [n]. *)

val fluid_bound : Msts_platform.Chain.t -> int -> float
(** Divisible-load (fluid) relaxation, the model of the related work the
    paper contrasts itself with ([5][10][4]): tasks become an infinitely
    divisible load, latencies collapse into bandwidth caps.  With horizon
    [M], deliverable load beyond link [j] is
    [g(j) = min(M/c_j, M/w_j + g(j+1))]; the bound is the least [M] (real)
    with [g(1) >= n].  A valid relaxation: any integral schedule is a
    fluid one. *)

val combined_bound : Msts_platform.Chain.t -> int -> int
(** Max of the integer bounds (port, capacity, and ⌈fluid⌉). *)

val spider_port_bound : Msts_platform.Spider.t -> int -> int
(** One-port argument at the master when every leg is used: crude but safe —
    the [n]-th cheapest emission still has to complete somewhere:
    [(n−1)·min_l c₁(l) + min over addresses of (path + work)]. *)

val spider_capacity_bound : Msts_platform.Spider.t -> int -> int
(** Capacity argument summed over every processor of every leg. *)

val spider_fluid_bound : Msts_platform.Spider.t -> int -> float
(** Fluid relaxation for spiders: each leg can absorb at most its chain
    fluid load [g(1)] within horizon [M], and the master's port carries at
    most [M] time units of first-hop traffic ([Σ load_l·c₁(l) ≤ M]).
    Maximising total load under both caps is a fractional knapsack solved
    greedily by ascending [c₁]; the bound is the least [M] reaching [n]. *)

val spider_combined_bound : Msts_platform.Spider.t -> int -> int
(** Max of the spider bounds (port, capacity, ⌈fluid⌉). *)
