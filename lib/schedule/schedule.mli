(** Chain schedules (paper Definition 1).

    A schedule for [n] tasks on a chain assigns each task [i] a processor
    [P(i)], a start time [T(i)], and a communication vector
    [C(i) = (C¹ᵢ, ..., C^{P(i)}ᵢ)].  This module stores schedules, computes
    the makespan (Definition 2) and derived views (per-link traffic,
    per-processor load); feasibility itself lives in {!Feasibility} so that
    checking never shares code with the constructors it audits. *)

type entry = {
  proc : int;  (** P(i): executing processor, 1-indexed *)
  start : int;  (** T(i) *)
  comms : Comm_vector.t;  (** C(i); [Array.length comms = proc] *)
}

type t

val make : Msts_platform.Chain.t -> entry array -> t
(** [make chain entries] with [entries.(i-1)] describing task [i].
    Performs only structural validation (each [comms] length equals [proc],
    [proc] within the chain); temporal feasibility is {!Feasibility}'s job.
    @raise Invalid_argument on structural errors. *)

val chain : t -> Msts_platform.Chain.t

val task_count : t -> int

val entry : t -> int -> entry
(** [entry t i] for task [i] in [1..task_count t]. *)

val entries : t -> entry array
(** Fresh copy of all entries. *)

val makespan : t -> int
(** Definition 2: [max_i (T(i) + w_{P(i)})].  0 for an empty schedule. *)

val start_time : t -> int
(** Smallest first-link emission time (0 after the paper's final shift). *)

val shift : int -> t -> t
(** Subtract a constant from every date. *)

val normalise : t -> t
(** Shift so that the earliest emission is at time 0. *)

val tasks_on : t -> int -> int list
(** Tasks executed on a given processor, in start-time order. *)

val load_of : t -> int -> int
(** Total busy time of a processor. *)

val link_intervals : t -> int -> int Intervals.interval list
(** Busy intervals of link [k] (tagged by task index). *)

val proc_intervals : t -> int -> int Intervals.interval list
(** Busy intervals of processor [k] (tagged by task index). *)

val emission_order : t -> int list
(** Tasks sorted by first-link emission time (the paper's canonical task
    numbering). *)

val restrict_beyond_first : t -> t
(** Sub-schedule of the tasks with [P(i) ≥ 2], re-indexed and expressed on
    the sub-chain [(cᵢ,wᵢ), i ≥ 2] — the object of Lemma 2.  Dates are
    {e not} shifted; pair with {!normalise} to compare schedules.
    @raise Invalid_argument on a single-processor chain. *)

val equal : t -> t -> bool
(** Same chain, same entries (dates included). *)

val equal_modulo_shift : t -> t -> bool
(** Equal after normalising both. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
