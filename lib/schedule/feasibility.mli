(** Independent feasibility checker for chain schedules.

    Implements the four properties of Definition 1 verbatim; shares no code
    with the schedule constructors so it can serve as an oracle in tests:

    + a task is not re-emitted by a processor before its reception there has
      completed: [C^i_{k-1} + c_{k-1} <= C^i_k];
    + a task starts only after it has been fully received:
      [C^i_{P(i)} + c_{P(i)} <= T(i)];
    + two tasks executed on one processor do not overlap:
      [|T(i) - T(j)| >= w_{P(i)}];
    + two transfers on one link do not overlap: [|C^i_k - C^j_k| >= c_k].

    A fifth, optional property — all dates non-negative — corresponds to the
    paper's final normalisation (schedules start at time 0) and matters for
    the deadline variant of §7. *)

type violation =
  | Reemitted_before_received of { task : int; link : int }
      (** property 1 broken at [link] *)
  | Started_before_received of { task : int }  (** property 2 broken *)
  | Computation_overlap of { first : int; second : int; proc : int }
      (** property 3 broken on [proc] *)
  | Communication_overlap of { first : int; second : int; link : int }
      (** property 4 broken on [link] *)
  | Negative_date of { task : int }
      (** emission or start before time 0 (only with [~require_start_at_zero]) *)

val pp_violation : Format.formatter -> violation -> unit

val violation_to_string : violation -> string

val check : ?require_nonnegative:bool -> Schedule.t -> violation list
(** All violations, deterministically ordered.  [require_nonnegative]
    (default [false]) additionally enforces dates ≥ 0. *)

val is_feasible : ?require_nonnegative:bool -> Schedule.t -> bool

val check_exn : ?require_nonnegative:bool -> Schedule.t -> unit
(** @raise Failure with a readable report when the schedule is infeasible. *)

val meets_deadline : Schedule.t -> deadline:int -> bool
(** Feasible (with non-negative dates) and completing by [deadline]. *)
