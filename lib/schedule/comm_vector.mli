(** Communication vectors and their total order (paper Definitions 1 & 3).

    The communication vector of a task executed on processor [k] is
    [(C_1, ..., C_k)]: [C_j] is the time at which the task's transfer over
    link [j] (from processor [j-1] to processor [j]) starts.

    Definition 3 orders two vectors [A] and [B] as follows: [A ≺ B] iff
    either the first differing coordinate is smaller in [A], or [A] extends
    [B] ([B] is a strict prefix of [A]).  Intuitively the {e greatest}
    vector starts its first communication as late as possible, breaks ties
    on later links, and — all common coordinates equal — prefers the
    processor closest to the master.  The chain algorithm always picks the
    greatest candidate vector. *)

type t = int array
(** Index [j-1] holds [C_j].  Vectors are at least of length 1. *)

val compare : t -> t -> int
(** Definition 3; negative means [≺].  Total on vectors of any lengths. *)

val precedes : t -> t -> bool
(** [precedes a b] iff [a ≺ b] strictly. *)

val max_of : t list -> t
(** Greatest vector of a non-empty list. @raise Invalid_argument on []. *)

val shift : int -> t -> t
(** [shift d v] subtracts [d] from every coordinate (the paper's final
    normalisation step applies [shift (C¹_1)]). *)

val target : t -> int
(** The processor index the vector routes to, i.e. its length. *)

val first_emission : t -> int
(** [C_1], the emission time on the master's port. *)

val is_prefix : t -> t -> bool
(** [is_prefix a b] iff [a] equals the first [length a] coordinates of
    [b]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
