(** SVG Gantt rendering.

    Produces a self-contained SVG document: one horizontal lane per resource
    (links, processors, master port), one rectangle per busy interval,
    colour-coded by task.  Used by the CLI's [gantt --svg] command and the
    examples to produce figures comparable to the paper's Figure 2. *)

val render : ?px_per_unit:float -> Schedule.t -> string
(** SVG for a chain schedule.  [px_per_unit] (default 8.0) is the horizontal
    scale in pixels per time unit. *)

val render_spider : ?px_per_unit:float -> Spider_schedule.t -> string

val save : string -> string -> unit
(** [save path svg] writes the document to a file. *)
