module Chain = Msts_platform.Chain
module Spider = Msts_platform.Spider

let best_single_completion chain =
  let p = Chain.length chain in
  let best = ref max_int in
  for k = 1 to p do
    best := min !best (Chain.path_latency chain k + Chain.work chain k)
  done;
  !best

let port_bound chain n =
  if n < 0 then invalid_arg "Bounds.port_bound: negative n";
  if n = 0 then 0
  else ((n - 1) * Chain.latency chain 1) + best_single_completion chain

let capacity_at chain m =
  let p = Chain.length chain in
  let total = ref 0 in
  for k = 1 to p do
    let window = m - Chain.path_latency chain k in
    if window > 0 then total := !total + (window / Chain.work chain k)
  done;
  !total

let capacity_bound chain n =
  if n < 0 then invalid_arg "Bounds.capacity_bound: negative n";
  if n = 0 then 0
  else begin
    let hi = Chain.master_only_makespan chain n in
    match
      Msts_util.Intx.binary_search_least ~lo:0 ~hi (fun m ->
          capacity_at chain m >= n)
    with
    | Some m -> m
    | None -> hi
  end

let fluid_load chain m =
  let p = Chain.length chain in
  let rec g j =
    if j > p then 0.0
    else
      min
        (m /. float_of_int (Chain.latency chain j))
        ((m /. float_of_int (Chain.work chain j)) +. g (j + 1))
  in
  g 1

let fluid_bound chain n =
  if n < 0 then invalid_arg "Bounds.fluid_bound: negative n";
  if n = 0 then 0.0
  else begin
    let target = float_of_int n in
    let lo = ref 0.0 and hi = ref (float_of_int (Chain.master_only_makespan chain n)) in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if fluid_load chain mid >= target then hi := mid else lo := mid
    done;
    !hi
  end

let combined_bound chain n =
  let fluid = int_of_float (ceil (fluid_bound chain n -. 1e-9)) in
  max (port_bound chain n) (max (capacity_bound chain n) fluid)

let spider_port_bound spider n =
  if n < 0 then invalid_arg "Bounds.spider_port_bound: negative n";
  if n = 0 then 0
  else begin
    let min_c1 = ref max_int and best_completion = ref max_int in
    for l = 1 to Spider.legs spider do
      let chain = Spider.leg_chain spider l in
      min_c1 := min !min_c1 (Chain.latency chain 1);
      best_completion := min !best_completion (best_single_completion chain)
    done;
    ((n - 1) * !min_c1) + !best_completion
  end

let spider_capacity_at spider m =
  let total = ref 0 in
  for l = 1 to Spider.legs spider do
    total := !total + capacity_at (Spider.leg_chain spider l) m
  done;
  !total

let spider_capacity_bound spider n =
  if n < 0 then invalid_arg "Bounds.spider_capacity_bound: negative n";
  if n = 0 then 0
  else begin
    let hi =
      Chain.master_only_makespan (Spider.leg_chain spider 1) n
    in
    match
      Msts_util.Intx.binary_search_least ~lo:0 ~hi (fun m ->
          spider_capacity_at spider m >= n)
    with
    | Some m -> m
    | None -> hi
  end

(* max load deliverable through the master's port within horizon [m]:
   fractional knapsack by ascending first-hop cost, each leg capped by its
   own fluid capacity *)
let spider_fluid_load spider m =
  let legs =
    List.map
      (fun l ->
        let chain = Spider.leg_chain spider l in
        (float_of_int (Chain.latency chain 1), fluid_load chain m))
      (List.init (Spider.legs spider) (fun i -> i + 1))
  in
  let sorted = List.sort (fun (ca, _) (cb, _) -> compare ca cb) legs in
  let total, _ =
    List.fold_left
      (fun (total, port_left) (c1, cap) ->
        let load = min cap (port_left /. c1) in
        (total +. load, port_left -. (load *. c1)))
      (0.0, m) sorted
  in
  total

let spider_fluid_bound spider n =
  if n < 0 then invalid_arg "Bounds.spider_fluid_bound: negative n";
  if n = 0 then 0.0
  else begin
    let target = float_of_int n in
    let lo = ref 0.0
    and hi =
      ref
        (float_of_int
           (Chain.master_only_makespan (Spider.leg_chain spider 1) n))
    in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if spider_fluid_load spider mid >= target then hi := mid else lo := mid
    done;
    !hi
  end

let spider_combined_bound spider n =
  let fluid = int_of_float (ceil (spider_fluid_bound spider n -. 1e-9)) in
  max (spider_port_bound spider n) (max (spider_capacity_bound spider n) fluid)
