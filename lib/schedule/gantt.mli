(** ASCII Gantt charts (the textual analogue of the paper's Figure 2).

    One row per resource — each link and each processor of the chain, plus
    the master port for spiders — with time flowing left to right.  Each
    busy slot is filled with the symbol of the task occupying it (1–9, then
    a–z, then [#]).  A dot marks idle time.  When the makespan exceeds
    [width] columns the chart is scaled down; slots that collide under
    scaling keep the earlier task's symbol. *)

val task_symbol : int -> char
(** Symbol used for a task index (1-based). *)

val render : ?width:int -> Schedule.t -> string
(** Chart of a chain schedule.  [width] (default 100) caps the number of
    time columns. *)

val render_spider : ?width:int -> Spider_schedule.t -> string
(** Chart of a spider schedule: master port first, then each leg's links and
    processors. *)
