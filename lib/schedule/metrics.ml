module Chain = Msts_platform.Chain

type task_timing = {
  task : int;
  arrival : int;
  start : int;
  waiting : int;
  completion : int;
}

let task_timings t =
  let chain = Schedule.chain t in
  List.map
    (fun task ->
      let e = Schedule.entry t task in
      let arrival = e.Schedule.comms.(e.proc - 1) + Chain.latency chain e.proc in
      {
        task;
        arrival;
        start = e.start;
        waiting = e.start - arrival;
        completion = e.start + Chain.work chain e.proc;
      })
    (Msts_util.Intx.range 1 (Schedule.task_count t))

let total_waiting t =
  List.fold_left (fun acc timing -> acc + timing.waiting) 0 (task_timings t)

let max_waiting t =
  List.fold_left (fun acc timing -> max acc timing.waiting) 0 (task_timings t)

let buffer_high_water t k =
  let timings =
    List.filter
      (fun timing -> (Schedule.entry t timing.task).Schedule.proc = k)
      (task_timings t)
  in
  (* +1 when a task lands in the buffer, -1 when it starts executing; on a
     tie the departure is processed first. *)
  let events =
    List.sort compare
      (List.concat_map
         (fun timing -> [ (timing.arrival, 1, 1); (timing.start, 0, -1) ])
         timings)
  in
  let high = ref 0 and current = ref 0 in
  List.iter
    (fun (_, _, delta) ->
      current := !current + delta;
      if !current > !high then high := !current)
    events;
  !high

let utilisation intervals ~makespan =
  Intervals.utilisation intervals ~horizon:makespan

let link_utilisation t k =
  utilisation (Schedule.link_intervals t k) ~makespan:(Schedule.makespan t)

let proc_utilisation t k =
  utilisation (Schedule.proc_intervals t k) ~makespan:(Schedule.makespan t)

let summary t =
  let chain = Schedule.chain t in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "tasks: %d, makespan: %d\n" (Schedule.task_count t)
    (Schedule.makespan t);
  Printf.bprintf buf "total waiting: %d, max single wait: %d\n" (total_waiting t)
    (max_waiting t);
  List.iter
    (fun k ->
      Printf.bprintf buf
        "  P%-2d  tasks %-3d  link busy %5.1f%%  cpu busy %5.1f%%  max buffered %d\n"
        k
        (List.length (Schedule.tasks_on t k))
        (100.0 *. link_utilisation t k)
        (100.0 *. proc_utilisation t k)
        (buffer_high_water t k))
    (Msts_util.Intx.range 1 (Chain.length chain));
  Buffer.contents buf

let spider_master_utilisation t =
  Intervals.utilisation
    (Spider_schedule.master_port_intervals t)
    ~horizon:(Spider_schedule.makespan t)

let spider_summary t =
  let spider = Spider_schedule.spider t in
  let makespan = Spider_schedule.makespan t in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "tasks: %d, makespan: %d, master port busy %.1f%%\n"
    (Spider_schedule.task_count t) makespan
    (100.0 *. spider_master_utilisation t);
  List.iter
    (fun l ->
      let leg = Spider_schedule.leg_schedule t l in
      Printf.bprintf buf "leg %d: %d tasks\n" l (Schedule.task_count leg);
      List.iter
        (fun k ->
          Printf.bprintf buf
            "  depth %-2d  tasks %-3d  link busy %5.1f%%  cpu busy %5.1f%%  max buffered %d\n"
            k
            (List.length (Schedule.tasks_on leg k))
            (100.0
            *. utilisation (Schedule.link_intervals leg k) ~makespan)
            (100.0
            *. utilisation (Schedule.proc_intervals leg k) ~makespan)
            (buffer_high_water leg k))
        (Msts_util.Intx.range 1
           (Chain.length (Msts_platform.Spider.leg_chain spider l))))
    (Msts_util.Intx.range 1 (Msts_platform.Spider.legs spider));
  Buffer.contents buf
