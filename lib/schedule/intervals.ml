type 'tag interval = { start : int; duration : int; tag : 'tag }

let sorted ivs =
  List.sort (fun a b -> Int.compare a.start b.start) ivs

let overlap_witness ivs =
  let rec scan = function
    | a :: (b :: _ as rest) ->
        if a.duration > 0 && b.duration > 0 && a.start + a.duration > b.start
        then Some (a, b)
        else scan rest
    | [] | [ _ ] -> None
  in
  scan (sorted ivs)

let are_disjoint ivs = overlap_witness ivs = None

let utilisation ivs ~horizon =
  if horizon <= 0 then 0.0
  else begin
    let busy =
      List.fold_left (fun acc iv -> acc + iv.duration) 0 ivs
    in
    float_of_int busy /. float_of_int horizon
  end
