type t =
  | Chain of Schedule.t
  | Spider of Spider_schedule.t

let makespan = function
  | Chain s -> Schedule.makespan s
  | Spider s -> Spider_schedule.makespan s

let task_count = function
  | Chain s -> Schedule.task_count s
  | Spider s -> Spider_schedule.task_count s

let to_string = function
  | Chain s -> Schedule.to_string s
  | Spider s -> Spider_schedule.to_string s

let equal a b =
  match (a, b) with
  | Chain x, Chain y -> Schedule.equal x y
  | Spider x, Spider y -> Spider_schedule.equal x y
  | Chain _, Spider _ | Spider _, Chain _ -> false

let check ?require_nonnegative = function
  | Chain s ->
      List.map Feasibility.violation_to_string
        (Feasibility.check ?require_nonnegative s)
  | Spider s -> Spider_schedule.check ?require_nonnegative s

let to_spider = function
  | Chain s -> Spider_schedule.of_chain_schedule s
  | Spider s -> s

let gantt ?width = function
  | Chain s -> Gantt.render ?width s
  | Spider s -> Gantt.render_spider ?width s

let svg = function
  | Chain s -> Svg.render s
  | Spider s -> Svg.render_spider s

let serialize = function
  | Chain s -> Serial.schedule_to_string s
  | Spider s -> Serial.spider_schedule_to_string s

let to_csv = function
  | Chain s -> Serial.schedule_to_csv s
  | Spider s -> Serial.spider_schedule_to_csv s
