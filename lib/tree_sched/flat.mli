(** Indexed view of a tree platform.

    {!Msts_platform.Tree} is a recursive description; the schedulers need
    random access.  Nodes are numbered 1..N in depth-first preorder (the
    master is 0); each node carries its parent, its link latency, its work
    time and the full path of node ids from the master. *)

type node_info = {
  id : int;  (** 1-based preorder index *)
  parent : int;  (** 0 for children of the master *)
  latency : int;  (** incoming link latency *)
  work : int;
  depth : int;  (** 1 for children of the master *)
  path : int list;  (** node ids from a master child down to this node *)
}

type t

val of_tree : Msts_platform.Tree.t -> t

val node_count : t -> int

val info : t -> int -> node_info
(** @raise Invalid_argument outside 1..{!node_count}. *)

val nodes : t -> node_info list
(** All nodes in preorder. *)

val children : t -> int -> int list
(** Children ids of a node id (0 = the master). *)

val path_latency : t -> int -> int
(** Sum of latencies along the path from the master. *)
