(* Port allocation by ascending link cost: fractional knapsack where a unit
   of rate to a child with link cost c consumes c of the port. *)
let allocate_port children_rates =
  let sorted =
    List.sort (fun (ca, _) (cb, _) -> Int.compare ca cb) children_rates
  in
  let total, _ =
    List.fold_left
      (fun (total, port_left) (c, cap) ->
        let rate = min cap (port_left /. float_of_int c) in
        (total +. rate, port_left -. (rate *. float_of_int c)))
      (0.0, 1.0) sorted
  in
  total

let rec node_rate flat id =
  let info = Flat.info flat id in
  let children =
    List.map
      (fun child -> ((Flat.info flat child).Flat.latency, node_rate flat child))
      (Flat.children flat id)
  in
  min
    (1.0 /. float_of_int info.Flat.latency)
    ((1.0 /. float_of_int info.Flat.work) +. allocate_port children)

let throughput tree =
  let flat = Flat.of_tree tree in
  allocate_port
    (List.map
       (fun child -> ((Flat.info flat child).Flat.latency, node_rate flat child))
       (Flat.children flat 0))

let subtree_rates tree =
  let flat = Flat.of_tree tree in
  List.map (fun info -> (info.Flat.id, node_rate flat info.Flat.id)) (Flat.nodes flat)
