(** Bandwidth-centric steady-state throughput for general trees.

    The tree result of Beaumont et al. [2] that the paper builds on: in
    steady state, the rate a subtree rooted through link [c_v] can absorb
    is [min(1/c_v, 1/w_v + alloc(children))] where [alloc] distributes the
    node's unit outgoing port to its children {e by ascending link cost} —
    priority to the child cheapest to feed, regardless of speed — each
    child capped by its own subtree rate.  The master's children share the
    master's port the same way.

    This is both an extension (the paper only handles chains and spiders
    exactly) and a diagnostic: for large [n] the best finite schedules
    approach [n/ρ]. *)

val throughput : Msts_platform.Tree.t -> float
(** ρ: tasks per time unit the tree absorbs in steady state. *)

val subtree_rates : Msts_platform.Tree.t -> (int * float) list
(** [(node id, rate of the subtree hanging from it)] for every node, in
    preorder — where the tree saturates. *)
