(** Schedules on general trees.

    The same model as chains and spiders, generalised: every node (master
    included) sends at most one task at a time through its single outgoing
    port — so an inner node with several children must serialise transfers
    to {e all} of them — receives at most one at a time (automatic in a
    tree: one incoming link), and computes one task at a time, with
    communication/computation overlap and store-and-forward relaying.

    The paper leaves optimal tree scheduling open; this module provides the
    representation and the independent feasibility checker that the
    heuristics of {!Heuristics}, the search of {!Search} and the
    spider-cover pipeline are audited against. *)

type entry = {
  node : int;  (** executing node id (see {!Flat}) *)
  start : int;
  comms : int array;  (** emission time of each hop along the path *)
}

type t

val make : Flat.t -> entry array -> t
(** Structural validation (node ids, comm vector lengths).
    @raise Invalid_argument on structural errors. *)

val flat : t -> Flat.t

val task_count : t -> int

val entry : t -> int -> entry

val entries : t -> entry array

val makespan : t -> int

val tasks_on : t -> int -> int list
(** Tasks executed on a node, in start order. *)

val out_port_intervals : t -> int -> int Msts_schedule.Intervals.interval list
(** Busy intervals of a node's outgoing port (0 = the master), tagged by
    task. *)

val check : ?require_nonnegative:bool -> t -> string list
(** Definition 1 generalised to trees; empty list = feasible. *)

val is_feasible : ?require_nonnegative:bool -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
