(** Forward heuristics and the spider-cover pipeline for trees.

    Optimal tree scheduling is the open problem the paper closes with; what
    it proposes is to {e cover} the tree with structures it can schedule
    optimally.  This module implements that pipeline — extract a spider
    (see {!Msts_platform.Tree.extract_spider}), schedule it with the §7
    algorithm, and read the result back as a tree schedule — next to the
    myopic forward heuristics one would otherwise use. *)

type policy =
  | Tree_earliest_completion  (** one-step-lookahead greedy over all nodes *)
  | Tree_random of int  (** uniform destination, seeded *)
  | Tree_root_only  (** everything on the first child of the master *)

val policy_name : policy -> string

val all_policies : policy list

val schedule : policy -> Msts_platform.Tree.t -> int -> Tree_schedule.t

val makespan : policy -> Msts_platform.Tree.t -> int -> int

val spider_cover :
  Msts_platform.Tree.extraction_policy -> Msts_platform.Tree.t -> int ->
  Tree_schedule.t
(** Extract a spider with the given policy, schedule [n] tasks optimally on
    it (§7), and replay the result on the tree (the unused subtrees stay
    idle).  Feasible on the tree because the legs are node-disjoint paths
    sharing only the master. *)

val spider_cover_makespan :
  Msts_platform.Tree.extraction_policy -> Msts_platform.Tree.t -> int -> int

val best_cover : Msts_platform.Tree.t -> int -> Msts_platform.Tree.extraction_policy * int
(** The best of the three extraction policies for this instance. *)
