(** ASAP timing of destination sequences on trees.

    Same idea as {!Msts_baseline.Asap} with one generalisation: each hop
    claims the {e sender}'s outgoing port (the only shared resource in a
    tree under the one-port model — a node's incoming link has a single
    writer, so receive exclusivity is automatic).  Ports serve hops in
    request (FIFO) order; within the FIFO class, ASAP timing is optimal for
    a fixed sequence by the usual pointwise-lower-bound argument. *)

type state

val start : Flat.t -> state

val copy : state -> state

val push : state -> dest:int -> Tree_schedule.entry
(** Route one more task to node [dest].
    @raise Invalid_argument on an unknown node. *)

val of_sequence : Flat.t -> int array -> Tree_schedule.t

val makespan : Flat.t -> int array -> int
