module Tree = Msts_platform.Tree
module Chain = Msts_platform.Chain
module Spider = Msts_platform.Spider
module Prng = Msts_util.Prng

type policy =
  | Tree_earliest_completion
  | Tree_random of int
  | Tree_root_only

let policy_name = function
  | Tree_earliest_completion -> "earliest-completion"
  | Tree_random seed -> Printf.sprintf "random(%d)" seed
  | Tree_root_only -> "root-only"

let all_policies = [ Tree_earliest_completion; Tree_random 0; Tree_root_only ]

let completion_if st dest flat =
  let probe = Asap.copy st in
  let e = Asap.push probe ~dest in
  e.Tree_schedule.start + (Flat.info flat dest).Flat.work

let schedule policy tree n =
  if n < 0 then invalid_arg "Heuristics.schedule: negative task count";
  let flat = Flat.of_tree tree in
  let count = Flat.node_count flat in
  let rng = match policy with Tree_random seed -> Some (Prng.create seed) | _ -> None in
  let choose st =
    match policy with
    | Tree_root_only -> 1
    | Tree_random _ -> Prng.int_in (Option.get rng) 1 count
    | Tree_earliest_completion ->
        let best = ref 1 and best_time = ref (completion_if st 1 flat) in
        for dest = 2 to count do
          let t = completion_if st dest flat in
          if t < !best_time then begin
            best := dest;
            best_time := t
          end
        done;
        !best
  in
  let st = Asap.start flat in
  Tree_schedule.make flat (Array.init n (fun _ -> Asap.push st ~dest:(choose st)))

let makespan policy tree n = Tree_schedule.makespan (schedule policy tree n)

(* ---------- spider cover ---------- *)

(* Re-derive the extraction over the flat view so each spider address maps
   back to a tree node; tests cross-check the resulting spider against
   Msts_platform.Tree.extract_spider. *)
let rec subtree_rate flat id =
  (1.0 /. float_of_int (Flat.info flat id).Flat.work)
  +. List.fold_left
       (fun acc child -> acc +. subtree_rate flat child)
       0.0 (Flat.children flat id)

let pick policy flat ids =
  let better a b =
    match policy with
    | Tree.Fastest_processor ->
        if (Flat.info flat b).Flat.work < (Flat.info flat a).Flat.work then b else a
    | Tree.Cheapest_link ->
        if (Flat.info flat b).Flat.latency < (Flat.info flat a).Flat.latency then b
        else a
    | Tree.Best_rate -> if subtree_rate flat b > subtree_rate flat a then b else a
  in
  match ids with [] -> None | first :: rest -> Some (List.fold_left better first rest)

let leg_paths policy flat =
  let rec extend id acc =
    let acc = id :: acc in
    match pick policy flat (Flat.children flat id) with
    | None -> List.rev acc
    | Some next -> extend next acc
  in
  List.map (fun root -> extend root []) (Flat.children flat 0)

let spider_cover policy tree n =
  let flat = Flat.of_tree tree in
  let paths = leg_paths policy flat in
  let spider =
    Spider.of_legs
      (List.map
         (fun path ->
           Chain.of_pairs
             (List.map
                (fun id ->
                  let info = Flat.info flat id in
                  (info.Flat.latency, info.Flat.work))
                path))
         paths)
  in
  let spider_sched = Msts_spider.Algorithm.schedule_tasks spider n in
  let paths = Array.of_list paths in
  let entries =
    Array.map
      (fun (e : Msts_schedule.Spider_schedule.entry) ->
        let { Spider.leg; depth } = e.address in
        {
          Tree_schedule.node = List.nth paths.(leg - 1) (depth - 1);
          start = e.start;
          comms = Array.copy e.comms;
        })
      (Msts_schedule.Spider_schedule.entries spider_sched)
  in
  Tree_schedule.make flat entries

let spider_cover_makespan policy tree n =
  Tree_schedule.makespan (spider_cover policy tree n)

let best_cover tree n =
  let candidates =
    List.map
      (fun policy -> (policy, spider_cover_makespan policy tree n))
      [ Tree.Fastest_processor; Tree.Cheapest_link; Tree.Best_rate ]
  in
  List.fold_left
    (fun (bp, bm) (p, m) -> if m < bm then (p, m) else (bp, bm))
    (List.hd candidates) (List.tl candidates)
