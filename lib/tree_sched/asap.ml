type state = {
  flat : Flat.t;
  port_free : int array; (* index = node id; 0 = the master *)
  proc_free : int array; (* index = node id - 1 *)
}

let start flat =
  {
    flat;
    port_free = Array.make (Flat.node_count flat + 1) 0;
    proc_free = Array.make (Flat.node_count flat) 0;
  }

let copy st =
  {
    flat = st.flat;
    port_free = Array.copy st.port_free;
    proc_free = Array.copy st.proc_free;
  }

let push st ~dest =
  let info = Flat.info st.flat dest in
  let path = info.Flat.path in
  let comms = Array.make (List.length path) 0 in
  let rec walk hop_index sender available = function
    | [] -> available
    | node_id :: rest ->
        let c = (Flat.info st.flat node_id).Flat.latency in
        let emit = max available st.port_free.(sender) in
        comms.(hop_index) <- emit;
        st.port_free.(sender) <- emit + c;
        walk (hop_index + 1) node_id (emit + c) rest
  in
  let arrival = walk 0 0 0 path in
  let begin_ = max arrival st.proc_free.(dest - 1) in
  st.proc_free.(dest - 1) <- begin_ + info.Flat.work;
  { Tree_schedule.node = dest; start = begin_; comms }

let of_sequence flat seq =
  let st = start flat in
  Tree_schedule.make flat (Array.map (fun dest -> push st ~dest) seq)

let makespan flat seq =
  let st = start flat in
  Array.fold_left
    (fun acc dest ->
      let e = push st ~dest in
      max acc (e.Tree_schedule.start + (Flat.info flat dest).Flat.work))
    0 seq
