module Intervals = Msts_schedule.Intervals

type entry = { node : int; start : int; comms : int array }

type t = { flat : Flat.t; entries : entry array }

let make flat entries =
  Array.iteri
    (fun idx e ->
      let task = idx + 1 in
      if e.node < 1 || e.node > Flat.node_count flat then
        invalid_arg (Printf.sprintf "Tree_schedule.make: task %d on node %d" task e.node);
      let path = (Flat.info flat e.node).Flat.path in
      if Array.length e.comms <> List.length path then
        invalid_arg
          (Printf.sprintf "Tree_schedule.make: task %d comm vector length" task))
    entries;
  { flat; entries = Array.copy entries }

let flat t = t.flat

let task_count t = Array.length t.entries

let entry t i =
  if i < 1 || i > task_count t then
    invalid_arg
      (Printf.sprintf "Tree_schedule.entry: task %d outside 1..%d" i (task_count t));
  t.entries.(i - 1)

let entries t = Array.copy t.entries

let makespan t =
  Array.fold_left
    (fun acc e -> max acc (e.start + (Flat.info t.flat e.node).Flat.work))
    0 t.entries

let tasks_on t node =
  let keyed =
    List.filter_map
      (fun idx ->
        let e = t.entries.(idx) in
        if e.node = node then Some (e.start, idx + 1) else None)
      (List.init (task_count t) Fun.id)
  in
  List.map snd (List.sort compare keyed)

(* The hop leaving [sender] towards a task's destination, if the task's
   path goes through [sender]'s port. *)
let hop_through flat (e : entry) ~sender =
  let path = (Flat.info flat e.node).Flat.path in
  let rec scan hop_index prev = function
    | [] -> None
    | next :: rest ->
        if prev = sender then Some (hop_index, next)
        else scan (hop_index + 1) next rest
  in
  scan 0 0 path

let out_port_intervals t sender =
  List.filter_map
    (fun idx ->
      let e = t.entries.(idx) in
      match hop_through t.flat e ~sender with
      | None -> None
      | Some (hop_index, next) ->
          Some
            {
              Intervals.start = e.comms.(hop_index);
              duration = (Flat.info t.flat next).Flat.latency;
              tag = idx + 1;
            })
    (List.init (task_count t) Fun.id)

let check ?(require_nonnegative = false) t =
  let flat = t.flat in
  let problems = ref [] in
  let report fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (* per-task: store-and-forward order and reception-before-start *)
  Array.iteri
    (fun idx e ->
      let task = idx + 1 in
      let path = (Flat.info flat e.node).Flat.path in
      let rec walk hop_index = function
        | [] -> ()
        | node_id :: rest ->
            let c = (Flat.info flat node_id).Flat.latency in
            let emitted = e.comms.(hop_index) in
            if require_nonnegative && emitted < 0 then
              report "task %d has a negative date" task;
            (match rest with
            | next :: _ ->
                ignore next;
                if e.comms.(hop_index + 1) < emitted + c then
                  report "task %d re-emitted by node %d before reception" task
                    node_id
            | [] ->
                if e.start < emitted + c then
                  report "task %d starts before it is received" task);
            walk (hop_index + 1) rest
      in
      walk 0 path)
    t.entries;
  (* one-port per sender *)
  List.iter
    (fun sender ->
      match Intervals.overlap_witness (out_port_intervals t sender) with
      | Some (a, b) ->
          report "node %d sends tasks %d and %d simultaneously" sender
            a.Intervals.tag b.Intervals.tag
      | None -> ())
    (0 :: List.map (fun n -> n.Flat.id) (Flat.nodes flat));
  (* one task at a time per processor *)
  List.iter
    (fun n ->
      let node = n.Flat.id in
      let intervals =
        List.filter_map
          (fun idx ->
            let e = t.entries.(idx) in
            if e.node = node then
              Some { Intervals.start = e.start; duration = n.Flat.work; tag = idx + 1 }
            else None)
          (List.init (task_count t) Fun.id)
      in
      match Intervals.overlap_witness intervals with
      | Some (a, b) ->
          report "tasks %d and %d overlap on node %d" a.Intervals.tag
            b.Intervals.tag node
      | None -> ())
    (Flat.nodes flat);
  List.rev !problems

let is_feasible ?require_nonnegative t = check ?require_nonnegative t = []

let pp ppf t =
  Format.fprintf ppf "@[<v>tree schedule (makespan %d):@," (makespan t);
  Array.iteri
    (fun idx e ->
      Format.fprintf ppf "  task %d -> node %d, start %d, comms [%s]@," (idx + 1)
        e.node e.start
        (String.concat "; " (List.map string_of_int (Array.to_list e.comms))))
    t.entries;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
