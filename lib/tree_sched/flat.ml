module Tree = Msts_platform.Tree

type node_info = {
  id : int;
  parent : int;
  latency : int;
  work : int;
  depth : int;
  path : int list;
}

type t = { infos : node_info array (* index id-1 *) }

let of_tree tree =
  let acc = ref [] in
  let counter = ref 0 in
  let rec visit parent depth rev_path (n : Tree.node) =
    incr counter;
    let id = !counter in
    let rev_path = id :: rev_path in
    acc :=
      {
        id;
        parent;
        latency = n.Tree.latency;
        work = n.Tree.work;
        depth;
        path = List.rev rev_path;
      }
      :: !acc;
    List.iter (visit id (depth + 1) rev_path) n.Tree.children
  in
  List.iter (visit 0 1 []) (Tree.roots tree);
  { infos = Array.of_list (List.rev !acc) }

let node_count t = Array.length t.infos

let info t id =
  if id < 1 || id > node_count t then
    invalid_arg (Printf.sprintf "Flat.info: node %d outside 1..%d" id (node_count t));
  t.infos.(id - 1)

let nodes t = Array.to_list t.infos

let children t id =
  List.filter_map
    (fun n -> if n.parent = id then Some n.id else None)
    (nodes t)

let path_latency t id =
  List.fold_left (fun acc hop -> acc + (info t hop).latency) 0 (info t id).path
