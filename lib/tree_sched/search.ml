module Tree = Msts_platform.Tree

let search flat n =
  let count = Flat.node_count flat in
  let best = ref max_int in
  let best_seq = ref [||] in
  let seq = Array.make (max n 1) 1 in
  let rec explore st depth makespan =
    if makespan < !best then begin
      if depth = n then begin
        best := makespan;
        best_seq := Array.sub seq 0 n
      end
      else
        for dest = 1 to count do
          let st' = Asap.copy st in
          let e = Asap.push st' ~dest in
          seq.(depth) <- dest;
          explore st' (depth + 1)
            (max makespan
               (e.Tree_schedule.start + (Flat.info flat dest).Flat.work))
        done
    end
  in
  if n = 0 then (0, [||])
  else begin
    explore (Asap.start flat) 0 0;
    (!best, !best_seq)
  end

let best_fifo_makespan tree n =
  if n < 0 then invalid_arg "Search: negative task count";
  fst (search (Flat.of_tree tree) n)

let best_fifo_schedule tree n =
  if n < 0 then invalid_arg "Search: negative task count";
  let flat = Flat.of_tree tree in
  let _, seq = search flat n in
  Asap.of_sequence flat seq

let lower_bound tree n =
  if n < 0 then invalid_arg "Search.lower_bound: negative task count";
  if n = 0 then 0
  else begin
    let flat = Flat.of_tree tree in
    (* master-port argument: every task leaves through the master's port *)
    let min_first_hop =
      List.fold_left
        (fun acc id -> min acc (Flat.info flat id).Flat.latency)
        max_int
        (Flat.children flat 0)
    in
    let best_completion =
      List.fold_left
        (fun acc info ->
          min acc (Flat.path_latency flat info.Flat.id + info.Flat.work))
        max_int (Flat.nodes flat)
    in
    let port = ((n - 1) * min_first_hop) + best_completion in
    (* capacity argument: node v completes at most
       floor((M - path_latency)/w) tasks by M *)
    let capacity_at m =
      List.fold_left
        (fun acc info ->
          let window = m - Flat.path_latency flat info.Flat.id in
          if window > 0 then acc + (window / info.Flat.work) else acc)
        0 (Flat.nodes flat)
    in
    let hi =
      (* everything on the first master child *)
      let first = Flat.info flat (List.hd (Flat.children flat 0)) in
      first.Flat.latency
      + ((n - 1) * max first.Flat.latency first.Flat.work)
      + first.Flat.work
    in
    let capacity =
      match
        Msts_util.Intx.binary_search_least ~lo:0 ~hi (fun m -> capacity_at m >= n)
      with
      | Some m -> m
      | None -> hi
    in
    max port capacity
  end
