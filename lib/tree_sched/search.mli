(** Exhaustive search over FIFO tree schedules.

    Enumerates every destination sequence and times it with the ASAP sweep,
    with branch-and-bound pruning on the partial makespan.  Within the
    class of schedules where every port serves hops in emission order this
    is exact; unlike chains and spiders, on trees out-of-order service can
    in principle help (tasks bound for different subtrees are not
    interchangeable), so the result is an upper bound on the true optimum
    and a strong baseline for the cover heuristics.  Cost is
    [N^n], so keep instances tiny. *)

val best_fifo_makespan : Msts_platform.Tree.t -> int -> int
(** Minimum ASAP makespan over destination sequences. *)

val best_fifo_schedule : Msts_platform.Tree.t -> int -> Tree_schedule.t
(** A witness schedule. *)

val lower_bound : Msts_platform.Tree.t -> int -> int
(** Capacity/port lower bound on the true optimum: max of the master-port
    argument and the per-node window capacity argument (both valid for
    arbitrary, not just FIFO, schedules). *)
