(** Minimal JSON values: the shared encoder behind every [--format=json]
    CLI output, the Chrome-trace exporter and the bench counter dumps.

    Deliberately tiny — no external dependency, no streaming.  The printer
    escapes strings per RFC 8259; integers print as integers, floats with
    enough digits to round-trip.  The parser accepts exactly the documents
    the printer produces (plus whitespace and any standard JSON), so a
    written trace can be re-read and validated without another library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialise.  [pretty] (default false) indents with two spaces. *)

val parse : string -> (t, string) result
(** Recursive-descent parser for ordinary JSON documents; errors carry a
    byte offset.  Numbers with a fraction or exponent become [Float],
    anything else [Int]. *)

val member : string -> t -> t option
(** [member key json] is the value bound to [key] when [json] is an
    object. *)

val of_table :
  title:string -> columns:string list -> rows:string list list -> t
(** The uniform JSON shape for every tabular CLI report:
    [{"title": ..., "columns": [...], "rows": [[...], ...]}].  Cells stay
    strings — they come from already-formatted table renderers. *)
