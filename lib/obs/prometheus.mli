(** Prometheus text exposition (format 0.0.4) for {!Obs} aggregates.

    Metric names are mangled to the Prometheus charset ([.] and any other
    invalid character become [_]) and prefixed with [msts_]; counters gain
    the conventional [_total] suffix.  Histograms are rendered with
    cumulative [_bucket{le="..."}] samples derived from the log-bucketed
    layout ({!Obs.Histogram.buckets}): each non-empty bucket's inclusive
    upper bound is a [le] boundary, counts are monotone by construction,
    and the [+Inf] bucket equals [_count].  Every family carries [# HELP]
    and [# TYPE] lines; families are sorted by name so successive scrapes
    diff cleanly. *)

val mangle : string -> string
(** [mangle "serve.queue_wait_us"] is ["msts_serve_queue_wait_us"]. *)

val render :
  ?counters:(string * int) list ->
  ?gauges:(string * int) list ->
  ?histograms:(string * Obs.Histogram.t) list ->
  unit ->
  string
(** Render one exposition document (empty string when nothing to show).
    Input names are raw [Obs] names ([subsystem.metric]); duplicates
    within a list, or a name appearing both as counter and histogram,
    would render duplicate families — callers keep the lists disjoint. *)

val of_memory : ?gauges:(string * int) list -> Obs.Memory.t -> string
(** Convenience: render a {!Obs.Memory} sink's counter totals and
    recorded-value histograms, plus caller-supplied gauges. *)
