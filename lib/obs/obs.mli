(** Zero-dependency observability: hierarchical spans, named counters and
    pluggable sinks.

    The library's hot paths (chain placement, fork allocation, the event
    engine, the network executors, the replanner) call {!span} and
    {!count} unconditionally.  With no sink installed — the default, the
    "null sink" — both are a single mutable-field read and a branch: no
    clock is read, nothing allocates, and no behaviour changes (the
    instrumentation only observes; the test suite asserts outputs are
    identical with and without a sink).

    With a sink installed every event carries a timestamp from a
    non-decreasing (monotonised wall) microsecond clock, overridable for
    deterministic tests via {!set_clock}.

    Sink and clock are {e domain-local}: a freshly spawned domain starts
    with the null sink, so the pool's worker domains ({!Msts_pool.Pool})
    stay silent and race-free no matter what the spawning domain has
    installed.  Multi-domain components gather their own per-domain
    statistics and emit totals from the coordinating domain (see the
    [pool.*] counters).

    Naming convention: [<subsystem>.<metric>], lowercase, dot-separated —
    e.g. [chain.candidate_scans], [engine.events], [netsim.transfers].
    See docs/OBSERVABILITY.md for the full catalogue. *)

type event =
  | Span_begin of { name : string; ts : int; args : (string * string) list }
  | Span_end of { name : string; ts : int }
  | Count of { name : string; delta : int; ts : int }
      (** timestamps in microseconds *)

type sink = event -> unit

(** {2 Sink management} *)

val set_sink : sink option -> unit
(** Install ([Some]) or remove ([None], the null sink) the calling
    domain's sink. *)

val current_sink : unit -> sink option

val enabled : unit -> bool
(** [true] iff a sink is installed. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install a sink, run, restore the previous sink (also on exceptions). *)

(** {2 Clock} *)

val set_clock : (unit -> int) option -> unit
(** Override the microsecond clock ([None] restores the wall clock).
    Whatever the source, emitted timestamps never decrease. *)

val now_us : unit -> int
(** Current (monotonised) timestamp in microseconds. *)

(** {2 Instrumentation points} *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a [name] span.  The end event is emitted
    even when [f] raises.  Free when no sink is installed. *)

val count : ?n:int -> string -> unit
(** Add [n] (default 1) to a named counter.  Free when no sink is
    installed. *)

(** {2 Sinks} *)

(** Aggregating in-memory sink: counter totals, per-span statistics and the
    raw event log (for exporters and tests). *)
module Memory : sig
  type t

  val create : unit -> t
  val sink : t -> sink

  val counters : t -> (string * int) list
  (** Counter totals, sorted by name. *)

  val counter : t -> string -> int
  (** A single total (0 when never incremented). *)

  type span_stat = {
    calls : int;
    total_us : int;  (** summed wall time, nested spans included *)
    max_us : int;
  }

  val spans : t -> (string * span_stat) list
  (** Completed-span statistics, sorted by name. *)

  val events : t -> event list
  (** The raw log, in emission order. *)

  val max_depth : t -> int
  (** Deepest span nesting observed. *)

  val open_spans : t -> string list
  (** Names of begun-but-unfinished spans, outermost first (empty after a
      balanced run). *)

  val counter_rows : t -> string list list
  (** Counter totals as [[name; total]] rows for the shared table
      renderers (columns: counter, total). *)

  val span_rows : t -> string list list
  (** Span statistics as [[name; calls; total_us; max_us]] rows. *)

  val to_json : t -> Json.t
  (** [{"counters": {...}, "spans": {name: {calls, total_us, max_us}}}]. *)

  val chrome_trace : ?process_name:string -> t -> Json.t
  (** The event log as a Chrome [trace_event] document (the JSON-object
      format with a ["traceEvents"] array of [B]/[E] duration events and
      [C] counter samples), loadable in [about:tracing] and Perfetto.
      Counter samples carry running totals. *)
end
