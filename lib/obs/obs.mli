(** Zero-dependency observability: hierarchical spans, named counters,
    value recordings (histograms) and pluggable sinks.

    The library's hot paths (chain placement, fork allocation, the event
    engine, the network executors, the replanner) call {!span}, {!count}
    and {!record} unconditionally.  With no sink installed — the default,
    the "null sink" — all three are a single mutable-field read and a
    branch: no clock is read, nothing allocates, and no behaviour changes
    (the instrumentation only observes; the test suite asserts outputs are
    identical with and without a sink).

    With a sink installed every event carries a timestamp from a
    non-decreasing (monotonised wall) microsecond clock, overridable for
    deterministic tests via {!set_clock}.

    Sink and clock are {e domain-local}: a freshly spawned domain starts
    with the null sink, so the pool's worker domains ({!Msts_pool.Pool})
    stay silent and race-free no matter what the spawning domain has
    installed.  Multi-domain components gather their own per-domain
    statistics and emit totals from the coordinating domain (see the
    [pool.*] counters).

    Four stock sinks cover the common deployments: {!Memory} (aggregating,
    bounded raw log) for profiling and tests, {!Streaming} (bounded-buffer
    JSONL) for week-long runs that must not grow the heap, {!Ring} (last-N
    events) for post-mortem dumps after a fault, and the null sink for
    production-default zero cost.

    Naming convention: [<subsystem>.<metric>], lowercase, dot-separated —
    e.g. [chain.candidate_scans], [engine.events], [netsim.transfer_us].
    See docs/OBSERVABILITY.md for the full catalogue. *)

type event =
  | Span_begin of {
      name : string;
      ts : int;
      args : (string * string) list;
      scope : int;
    }
  | Span_end of { name : string; ts : int; scope : int }
  | Count of { name : string; delta : int; ts : int; scope : int }
  | Value of { name : string; value : int; ts : int; scope : int }
      (** timestamps in microseconds; [Value] carries one histogram
          sample (a duration, a queue wait, a gap — any non-negative
          magnitude).  [scope] attributes the event to a request scope
          ({!Scope}); {!Scope.none} (0) means unscoped. *)

type sink = event -> unit

(** {2 Sink management} *)

val set_sink : sink option -> unit
(** Install ([Some]) or remove ([None], the null sink) the calling
    domain's sink. *)

val current_sink : unit -> sink option

val enabled : unit -> bool
(** [true] iff a sink is installed. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install a sink, run, restore the previous sink (also on exceptions). *)

val tee : sink list -> sink
(** Fan one event stream out to several sinks (e.g. a {!Streaming} file
    plus a {!Ring} for post-mortems), in list order.  A sink that raises
    is skipped for that event: the remaining sinks still receive it and
    the instrumented computation never observes the exception. *)

(** {2 Request scopes}

    A scope is a lightweight integer id stamped on every event a
    computation emits, so one sink can attribute interleaved work (e.g.
    100 concurrent daemon requests) to its originator.  Scopes are
    domain-local like the sink; {!Msts_pool.Pool.map} explicitly forwards
    the submitting domain's scope into its worker closures.  With the null
    sink installed, {!Scope.with_scope} is the same single load-and-branch
    as {!span} — the disabled path allocates nothing (scopes only exist on
    events, and no events are being emitted). *)
module Scope : sig
  val none : int
  (** 0 — the ambient "unscoped" scope.  Unscoped events serialise without
      the ["sc"] member, byte-identical to pre-scope streams. *)

  val fresh : unit -> int
  (** A process-unique scope id (never {!none}); safe from any domain. *)

  val current : unit -> int
  (** The calling domain's active scope ({!none} by default). *)

  val set : int -> unit
  (** Unconditionally set the calling domain's scope — the low-level hook
      worker pools use to propagate a submitter's scope. Prefer
      {!with_scope}. *)

  val with_scope : int -> (unit -> 'a) -> 'a
  (** Run [f] with the given scope active, restoring the previous scope
      afterwards (also on exceptions).  Free when no sink is installed
      (the scope is observable only through emitted events). *)
end

(** {2 Clock} *)

val set_clock : (unit -> int) option -> unit
(** Override the microsecond clock ([None] restores the wall clock).
    Whatever the source, emitted timestamps never decrease. *)

val now_us : unit -> int
(** Current (monotonised) timestamp in microseconds. *)

(** {2 Instrumentation points} *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a [name] span.  The end event is emitted
    even when [f] raises.  Free when no sink is installed. *)

val count : ?n:int -> string -> unit
(** Add [n] (default 1) to a named counter.  Free when no sink is
    installed. *)

val record : string -> int -> unit
(** [record name v] emits one histogram sample for [name] (negative values
    are clamped to 0 by the aggregating sinks).  Free when no sink is
    installed. *)

val event_to_json : event -> Json.t
(** One event as a compact JSON object ([{"ev": "B"|"E"|"C"|"V", "name",
    "ts", ...}]) — the line format of the {!Streaming} sink and
    {!Ring.to_jsonl}. *)

(** {2 Histograms} *)

(** Log-bucketed (HDR-style) histogram of non-negative integers: constant
    memory (one small int array) however many samples it absorbs.  Values
    below 16 are exact; larger values land in one of 16 sub-buckets per
    power of two, so quantiles carry < 1/16 relative error.  Quantiles
    report the bucket's deterministic lower bound, clamped to the observed
    [min]/[max]. *)
module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  (** Absorb one sample ([max 0 v]). *)

  val count : t -> int
  val sum : t -> int
  val min_value : t -> int
  (** 0 when empty. *)

  val max_value : t -> int
  (** Exact largest sample (0 when empty). *)

  val mean : t -> float

  val quantile : t -> float -> int
  (** [quantile t q] for [q] in [\[0,1\]] (clamped); 0 when empty. *)

  val merge_into : into:t -> t -> unit
  (** Add every bucket of the second histogram into [into] — how
      per-domain histograms combine on a coordinator. *)

  val buckets : t -> (int * int) list
  (** Non-empty buckets as [(inclusive upper bound, count)] pairs in
      ascending bound order — the raw material for cumulative exports
      ({!Msts_obs.Prometheus} [le] boundaries). *)

  val to_json : t -> Json.t
  (** [{"count", "sum", "min", "max", "p50", "p90", "p99"}]. *)
end

(** {2 Sinks} *)

(** Aggregating in-memory sink: counter totals, per-span statistics,
    histograms and a {e bounded} raw event log (for exporters and tests).
    Aggregates are exact regardless of the log cap: they are updated
    incrementally as events arrive, never recomputed from the log. *)
module Memory : sig
  type t

  val default_max_events : int
  (** 100_000 — the default raw-log cap. *)

  val default_max_scopes : int
  (** 256 — the default cap on distinct scopes with live sub-aggregates. *)

  val create : ?max_events:int -> ?max_scopes:int -> unit -> t
  (** [max_events] caps the stored raw events (oldest dropped first);
      counter totals, span statistics and histograms stay exact past the
      cap.  [max_scopes] caps the per-scope sub-aggregate table (oldest
      scopes evicted FIFO; 0 disables per-scope aggregation) — global
      aggregates are never affected. *)

  val sink : t -> sink

  val counters : t -> (string * int) list
  (** Counter totals, sorted by name. *)

  val counter : t -> string -> int
  (** A single total (0 when never incremented). *)

  type span_stat = {
    calls : int;
    total_us : int;  (** summed wall time, nested spans included *)
    max_us : int;
  }

  val spans : t -> (string * span_stat) list
  (** Completed-span statistics, sorted by name. *)

  val histograms : t -> (string * Histogram.t) list
  (** Histograms of {!record}ed values, sorted by name. *)

  val histogram : t -> string -> Histogram.t option
  (** One recorded-value histogram. *)

  val span_histogram : t -> string -> Histogram.t option
  (** Duration histogram (µs) of one span's completed calls. *)

  val events : t -> event list
  (** The bounded raw log, in emission order (newest
      [min stored (max_events)] events). *)

  val stored_events : t -> int
  val dropped_events : t -> int
  (** Events evicted from the raw log by the cap (aggregates unaffected). *)

  val max_events : t -> int

  val max_depth : t -> int
  (** Deepest span nesting observed. *)

  val open_spans : t -> string list
  (** Names of begun-but-unfinished spans, outermost first (empty after a
      balanced run). *)

  (** {3 Per-scope aggregates}

      Events carrying a non-{!Scope.none} scope are additionally
      aggregated per scope (counters; histograms of both recorded values
      and span durations, keyed by name).  The table is bounded by
      [max_scopes] with FIFO eviction. *)

  val scopes : t -> int list
  (** Scope ids with live sub-aggregates, ascending. *)

  val scope_counters : t -> int -> (string * int) list
  (** One scope's counter totals, sorted by name ([[]] for unknown or
      evicted scopes). *)

  val scope_counter : t -> int -> string -> int

  val scope_histograms : t -> int -> (string * Histogram.t) list
  (** One scope's histograms (recorded values and span durations), sorted
      by name. *)

  val scope_histogram : t -> int -> string -> Histogram.t option
  val max_scopes : t -> int

  val evicted_scopes : t -> int
  (** Scopes whose sub-aggregates were dropped by the [max_scopes] cap. *)

  val counter_rows : t -> string list list
  (** Counter totals as [[name; total]] rows for the shared table
      renderers (columns: counter, total). *)

  val span_rows : t -> string list list
  (** Span statistics as [[name; calls; total_us; max_us; p50_us; p99_us]]
      rows. *)

  val histogram_rows : t -> string list list
  (** Recorded-value histograms as [[name; count; p50; p90; p99; max]]
      rows. *)

  val to_json : t -> Json.t
  (** [{"counters": {...},
        "spans": {name: {calls, total_us, max_us, p50_us, p99_us}},
        "histograms": {name: {count, sum, min, max, p50, p90, p99}}}]. *)

  val chrome_trace : ?process_name:string -> t -> Json.t
  (** The event log as a Chrome [trace_event] document (the JSON-object
      format with a ["traceEvents"] array of [B]/[E] duration events and
      [C] counter samples), loadable in [about:tracing] and Perfetto.
      Counter samples carry running totals; value recordings become their
      own sample tracks.  When the raw log overflowed its cap the metadata
      carries ["dropped_events"]. *)
end

(** Constant-memory streaming sink: events are serialised to one JSON line
    each (see {!event_to_json}) into a bounded buffer that is flushed to
    the output channel every [flush_every] events — a week-long [Netsim]
    run traces in O(flush_every) memory.  The caller owns the channel;
    call {!flush} before closing it. *)
module Streaming : sig
  type t

  val create : ?flush_every:int -> out_channel -> t
  (** Default [flush_every] 4096 events.
      @raise Invalid_argument if [flush_every < 1]. *)

  val sink : t -> sink

  val flush : t -> unit
  (** Drain the buffer to the channel and flush the channel. *)

  val events_seen : t -> int
  (** Total events accepted (written + still buffered). *)

  val events_written : t -> int
  (** Events already drained to the channel. *)

  val max_buffered : t -> int
  (** High-water mark of the internal buffer — the memory bound; never
      exceeds [flush_every]. *)
end

(** Last-N ring-buffer sink for post-mortem dumps: constant memory, keeps
    the newest [capacity] events.  Pair it (via {!tee}) with a real sink,
    or run it alone in production and dump on failure. *)
module Ring : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 1024.
      @raise Invalid_argument if [capacity < 1]. *)

  val sink : t -> sink
  val capacity : t -> int

  val seen : t -> int
  (** Total events accepted over the sink's lifetime. *)

  val dropped : t -> int
  (** Events overwritten ([max 0 (seen - capacity)]). *)

  val events : t -> event list
  (** Retained events, oldest first. *)

  val to_jsonl : t -> string
  (** Retained events as JSON lines (the {!Streaming} format). *)
end
