type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else
    (* shortest decimal form that round-trips *)
    let short = Printf.sprintf "%.12g" x in
    if float_of_string short = x then short else Printf.sprintf "%.17g" x

let to_string ?(pretty = false) json =
  let buf = Buffer.create 256 in
  let indent depth =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_repr x)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            go (depth + 1) item)
          items;
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (key, value) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape buf key;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) value)
          fields;
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 json;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of int * string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = text.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub text !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            (* Only BMP code points below 0x80 round-trip exactly; encode the
               rest as UTF-8 so well-formedness checks still pass. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> fail "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let consume_digits () =
      while
        match peek () with
        | Some ('0' .. '9') ->
            advance ();
            true
        | _ -> false
      do
        ()
      done
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    consume_digits ();
    (match peek () with
    | Some '.' ->
        is_float := true;
        advance ();
        consume_digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        consume_digits ()
    | _ -> ());
    let s = String.sub text start (!pos - start) in
    let float_or_fail s =
      (* [float_of_string] would raise on bare punctuation like "." or
         "-e5" that survives the scanner — keep the parser total. *)
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail "expected number"
    in
    if s = "" || s = "-" then fail "expected number"
    else if !is_float then float_or_fail s
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> float_or_fail s
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, value) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let of_table ~title ~columns ~rows =
  Obj
    [
      ("title", String title);
      ("columns", List (List.map (fun c -> String c) columns));
      ("rows", List (List.map (fun r -> List (List.map (fun c -> String c) r)) rows));
    ]
