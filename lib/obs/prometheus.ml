(* Prometheus text exposition (format 0.0.4) over Obs aggregates.

   Counters and histograms come straight from the log-bucketed layout:
   each non-empty bucket's inclusive upper bound becomes a cumulative
   [le] boundary, so the rendered bucket counts are monotone by
   construction and the [+Inf] bucket always equals [_count].  The
   output is deterministic (families sorted by name) so scrapes diff
   cleanly. *)

let mangle name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      in
      if not ok then Bytes.set b i '_')
    b;
  let mangled = Bytes.to_string b in
  "msts_" ^ mangled

(* HELP text is on one line; escape backslashes and newlines per the
   exposition format. *)
let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let header buf ~name ~help ~kind =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let counter_block buf (name, total) =
  let fam = mangle name ^ "_total" in
  header buf ~name:fam ~help:(Printf.sprintf "Counter %s." name) ~kind:"counter";
  Buffer.add_string buf (Printf.sprintf "%s %d\n" fam total)

let gauge_block buf (name, value) =
  let fam = mangle name in
  header buf ~name:fam ~help:(Printf.sprintf "Gauge %s." name) ~kind:"gauge";
  Buffer.add_string buf (Printf.sprintf "%s %d\n" fam value)

let histogram_block buf (name, h) =
  let fam = mangle name in
  header buf ~name:fam ~help:(Printf.sprintf "Histogram %s." name) ~kind:"histogram";
  let cumulative = ref 0 in
  List.iter
    (fun (upper, count) ->
      cumulative := !cumulative + count;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" fam upper !cumulative))
    (Obs.Histogram.buckets h);
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" fam (Obs.Histogram.count h));
  Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" fam (Obs.Histogram.sum h));
  Buffer.add_string buf
    (Printf.sprintf "%s_count %d\n" fam (Obs.Histogram.count h))

let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let render ?(counters = []) ?(gauges = []) ?(histograms = []) () =
  let buf = Buffer.create 4096 in
  List.iter (counter_block buf) (by_name counters);
  List.iter (gauge_block buf) (by_name gauges);
  List.iter (histogram_block buf) (by_name histograms);
  Buffer.contents buf

let of_memory ?(gauges = []) m =
  render ~counters:(Obs.Memory.counters m) ~gauges
    ~histograms:(Obs.Memory.histograms m) ()
