type event =
  | Span_begin of { name : string; ts : int; args : (string * string) list }
  | Span_end of { name : string; ts : int }
  | Count of { name : string; delta : int; ts : int }

type sink = event -> unit

(* ---------- domain-local sink ----------

   The sink (and the clock override below) lives in domain-local storage,
   not a shared ref: a freshly spawned domain starts with the null sink, so
   worker domains (Msts_pool.Pool) never race on a caller's sink and emit
   nothing.  Coordinators aggregate worker-side counters and emit the
   totals from their own domain. *)

let the_sink : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let set_sink s = Domain.DLS.set the_sink s
let current_sink () = Domain.DLS.get the_sink
let enabled () = Option.is_some (Domain.DLS.get the_sink)

let with_sink s f =
  let saved = Domain.DLS.get the_sink in
  Domain.DLS.set the_sink (Some s);
  Fun.protect ~finally:(fun () -> Domain.DLS.set the_sink saved) f

(* ---------- clock ---------- *)

let wall_us () = int_of_float (Unix.gettimeofday () *. 1e6)
let the_clock : (unit -> int) Domain.DLS.key = Domain.DLS.new_key (fun () -> wall_us)
let last_ts : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let set_clock = function
  | Some f -> Domain.DLS.set the_clock f
  | None -> Domain.DLS.set the_clock wall_us

(* Monotonised: wall clocks can step backwards (NTP); span durations and
   trace viewers both assume time never decreases. *)
let now_us () =
  let t = (Domain.DLS.get the_clock) () in
  if t > Domain.DLS.get last_ts then Domain.DLS.set last_ts t;
  Domain.DLS.get last_ts

(* ---------- instrumentation points ---------- *)

let span ?(args = []) name f =
  match Domain.DLS.get the_sink with
  | None -> f ()
  | Some sink ->
      sink (Span_begin { name; ts = now_us (); args });
      Fun.protect ~finally:(fun () -> sink (Span_end { name; ts = now_us () })) f

let count ?(n = 1) name =
  match Domain.DLS.get the_sink with
  | None -> ()
  | Some sink -> sink (Count { name; delta = n; ts = now_us () })

(* ---------- memory sink ---------- *)

module Memory = struct
  type span_stat = { calls : int; total_us : int; max_us : int }

  type t = {
    mutable log : event list; (* newest first *)
    counters : (string, int) Hashtbl.t;
    stats : (string, span_stat) Hashtbl.t;
    mutable stack : (string * int) list; (* open spans, innermost first *)
    mutable max_depth : int;
  }

  let create () =
    {
      log = [];
      counters = Hashtbl.create 32;
      stats = Hashtbl.create 32;
      stack = [];
      max_depth = 0;
    }

  let record t ev =
    t.log <- ev :: t.log;
    match ev with
    | Count { name; delta; _ } ->
        let current = Option.value ~default:0 (Hashtbl.find_opt t.counters name) in
        Hashtbl.replace t.counters name (current + delta)
    | Span_begin { name; ts; _ } ->
        t.stack <- (name, ts) :: t.stack;
        t.max_depth <- max t.max_depth (List.length t.stack)
    | Span_end { name; ts } -> (
        (* An end closes the innermost open span of that name; out-of-order
           ends (possible only through hand-fed sinks) are dropped. *)
        match t.stack with
        | (open_name, began) :: rest when open_name = name ->
            t.stack <- rest;
            let d = ts - began in
            let prev =
              Option.value
                ~default:{ calls = 0; total_us = 0; max_us = 0 }
                (Hashtbl.find_opt t.stats name)
            in
            Hashtbl.replace t.stats name
              {
                calls = prev.calls + 1;
                total_us = prev.total_us + d;
                max_us = max prev.max_us d;
              }
        | _ -> ())

  let sink t = record t

  let sorted_bindings tbl =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

  let counters t = sorted_bindings t.counters
  let counter t name = Option.value ~default:0 (Hashtbl.find_opt t.counters name)
  let spans t = sorted_bindings t.stats
  let events t = List.rev t.log
  let max_depth t = t.max_depth
  let open_spans t = List.rev_map fst t.stack

  let counter_rows t =
    List.map (fun (name, total) -> [ name; string_of_int total ]) (counters t)

  let span_rows t =
    List.map
      (fun (name, { calls; total_us; max_us }) ->
        [ name; string_of_int calls; string_of_int total_us; string_of_int max_us ])
      (spans t)

  let to_json t =
    Json.Obj
      [
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
        ( "spans",
          Json.Obj
            (List.map
               (fun (k, { calls; total_us; max_us }) ->
                 ( k,
                   Json.Obj
                     [
                       ("calls", Json.Int calls);
                       ("total_us", Json.Int total_us);
                       ("max_us", Json.Int max_us);
                     ] ))
               (spans t)) );
      ]

  let chrome_trace ?(process_name = "msts") t =
    let common ts =
      [ ("ts", Json.Int ts); ("pid", Json.Int 1); ("tid", Json.Int 1) ]
    in
    let running = Hashtbl.create 16 in
    let trace_event = function
      | Span_begin { name; ts; args } ->
          let fields =
            [
              ("name", Json.String name);
              ("cat", Json.String "msts");
              ("ph", Json.String "B");
            ]
            @ common ts
          in
          let fields =
            match args with
            | [] -> fields
            | args ->
                fields
                @ [
                    ( "args",
                      Json.Obj
                        (List.map (fun (k, v) -> (k, Json.String v)) args) );
                  ]
          in
          Json.Obj fields
      | Span_end { name; ts } ->
          Json.Obj
            ([
               ("name", Json.String name);
               ("cat", Json.String "msts");
               ("ph", Json.String "E");
             ]
            @ common ts)
      | Count { name; delta; ts } ->
          let total =
            delta + Option.value ~default:0 (Hashtbl.find_opt running name)
          in
          Hashtbl.replace running name total;
          Json.Obj
            ([
               ("name", Json.String name);
               ("cat", Json.String "msts");
               ("ph", Json.String "C");
             ]
            @ common ts
            @ [ ("args", Json.Obj [ ("value", Json.Int total) ]) ])
    in
    Json.Obj
      [
        ("traceEvents", Json.List (List.map trace_event (events t)));
        ("displayTimeUnit", Json.String "ms");
        ( "metadata",
          Json.Obj [ ("process_name", Json.String process_name) ] );
      ]
end
