type event =
  | Span_begin of {
      name : string;
      ts : int;
      args : (string * string) list;
      scope : int;
    }
  | Span_end of { name : string; ts : int; scope : int }
  | Count of { name : string; delta : int; ts : int; scope : int }
  | Value of { name : string; value : int; ts : int; scope : int }

type sink = event -> unit

(* ---------- domain-local sink ----------

   The sink (and the clock override below) lives in domain-local storage,
   not a shared ref: a freshly spawned domain starts with the null sink, so
   worker domains (Msts_pool.Pool) never race on a caller's sink and emit
   nothing.  Coordinators aggregate worker-side counters and emit the
   totals from their own domain. *)

let the_sink : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let set_sink s = Domain.DLS.set the_sink s
let current_sink () = Domain.DLS.get the_sink
let enabled () = Option.is_some (Domain.DLS.get the_sink)

let with_sink s f =
  let saved = Domain.DLS.get the_sink in
  Domain.DLS.set the_sink (Some s);
  Fun.protect ~finally:(fun () -> Domain.DLS.set the_sink saved) f

(* A failing sink must not poison the event stream: every remaining sink
   still sees the event (in list order) and the instrumented computation
   never observes a sink's exception. *)
let tee sinks ev = List.iter (fun sink -> try sink ev with _ -> ()) sinks

(* ---------- request scopes ----------

   A scope is a plain integer carried on every event; 0 ([Scope.none])
   means "unscoped" and serialises to nothing, so unscoped event streams
   are byte-identical to pre-scope ones.  Like the sink, the current scope
   is domain-local; [Msts_pool.Pool.map] forwards the submitting domain's
   scope into its workers explicitly. *)

module Scope = struct
  let none = 0
  let next = Atomic.make 0
  let the_scope : int Domain.DLS.key = Domain.DLS.new_key (fun () -> none)
  let fresh () = 1 + Atomic.fetch_and_add next 1
  let current () = Domain.DLS.get the_scope
  let set scope = Domain.DLS.set the_scope scope

  let with_scope scope f =
    (* Scopes only matter when events are being emitted: with the null
       sink installed this is the same load-and-branch as [span]/[count],
       so the disabled path allocates nothing (no closure, no protect). *)
    match Domain.DLS.get the_sink with
    | None -> f ()
    | Some _ ->
        let saved = Domain.DLS.get the_scope in
        Domain.DLS.set the_scope scope;
        Fun.protect ~finally:(fun () -> Domain.DLS.set the_scope saved) f
end

(* ---------- clock ---------- *)

let wall_us () = int_of_float (Unix.gettimeofday () *. 1e6)
let the_clock : (unit -> int) Domain.DLS.key = Domain.DLS.new_key (fun () -> wall_us)
let last_ts : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let set_clock f =
  (* A new clock source starts a new timeline: drop the monotonising floor
     so a deterministic clock installed after wall-clock readings is not
     clamped to the (much larger) old timestamps. *)
  Domain.DLS.set last_ts 0;
  match f with
  | Some f -> Domain.DLS.set the_clock f
  | None -> Domain.DLS.set the_clock wall_us

(* Monotonised: wall clocks can step backwards (NTP); span durations and
   trace viewers both assume time never decreases. *)
let now_us () =
  let t = (Domain.DLS.get the_clock) () in
  if t > Domain.DLS.get last_ts then Domain.DLS.set last_ts t;
  Domain.DLS.get last_ts

(* ---------- instrumentation points ---------- *)

let span ?(args = []) name f =
  match Domain.DLS.get the_sink with
  | None -> f ()
  | Some sink ->
      let scope = Domain.DLS.get Scope.the_scope in
      sink (Span_begin { name; ts = now_us (); args; scope });
      Fun.protect
        ~finally:(fun () -> sink (Span_end { name; ts = now_us (); scope }))
        f

let count ?(n = 1) name =
  match Domain.DLS.get the_sink with
  | None -> ()
  | Some sink ->
      sink
        (Count
           { name; delta = n; ts = now_us (); scope = Domain.DLS.get Scope.the_scope })

let record name value =
  match Domain.DLS.get the_sink with
  | None -> ()
  | Some sink ->
      sink
        (Value { name; value; ts = now_us (); scope = Domain.DLS.get Scope.the_scope })

(* ---------- event serialisation (JSONL sinks, post-mortem dumps) ---------- *)

(* Unscoped events omit the "sc" member entirely, keeping unscoped JSONL
   streams byte-identical to pre-scope ones. *)
let scope_field scope fields =
  if scope = Scope.none then fields else fields @ [ ("sc", Json.Int scope) ]

let event_to_json = function
  | Span_begin { name; ts; args; scope } ->
      let fields =
        [ ("ev", Json.String "B"); ("name", Json.String name); ("ts", Json.Int ts) ]
      in
      let fields =
        match args with
        | [] -> fields
        | args ->
            fields
            @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)) ]
      in
      Json.Obj (scope_field scope fields)
  | Span_end { name; ts; scope } ->
      Json.Obj
        (scope_field scope
           [ ("ev", Json.String "E"); ("name", Json.String name); ("ts", Json.Int ts) ])
  | Count { name; delta; ts; scope } ->
      Json.Obj
        (scope_field scope
           [
             ("ev", Json.String "C");
             ("name", Json.String name);
             ("delta", Json.Int delta);
             ("ts", Json.Int ts);
           ])
  | Value { name; value; ts; scope } ->
      Json.Obj
        (scope_field scope
           [
             ("ev", Json.String "V");
             ("name", Json.String name);
             ("value", Json.Int value);
             ("ts", Json.Int ts);
           ])

(* ---------- histograms ---------- *)

module Histogram = struct
  (* Log-bucketed (HDR-style): values below 16 get one bucket each (exact);
     above, each power of two splits into 16 sub-buckets, so any recorded
     value is reconstructed with < 1/16 relative error.  63-bit values fit
     in under 960 buckets, so a histogram is one small int array — constant
     memory regardless of how many samples it absorbs. *)

  let bucket_count = 960

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable min_v : int;
    mutable max_v : int;
  }

  let create () =
    { buckets = Array.make bucket_count 0; count = 0; sum = 0; min_v = 0; max_v = 0 }

  let msb v =
    let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
    go v 0

  let bucket_of v =
    if v < 16 then v
    else
      let m = msb v in
      ((m - 4) * 16) + (v lsr (m - 4))

  (* Lower bound of the bucket's value range — the deterministic
     representative reported by [quantile]. *)
  let bucket_value idx =
    if idx < 16 then idx
    else
      let g = (idx / 16) - 1 in
      (idx - (g * 16)) lsl g

  let add t v =
    let v = max 0 v in
    t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
    if t.count = 0 then begin
      t.min_v <- v;
      t.max_v <- v
    end
    else begin
      if v < t.min_v then t.min_v <- v;
      if v > t.max_v then t.max_v <- v
    end;
    t.count <- t.count + 1;
    t.sum <- t.sum + v

  let count t = t.count
  let sum t = t.sum
  let min_value t = t.min_v
  let max_value t = t.max_v
  let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

  let quantile t q =
    if t.count = 0 then 0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = max 1 (min t.count (int_of_float (ceil (q *. float_of_int t.count)))) in
      let idx = ref 0 and seen = ref 0 in
      (try
         for i = 0 to bucket_count - 1 do
           seen := !seen + t.buckets.(i);
           if !seen >= rank then begin
             idx := i;
             raise Exit
           end
         done
       with Exit -> ());
      max t.min_v (min t.max_v (bucket_value !idx))
    end

  let merge_into ~into t =
    Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) t.buckets;
    if t.count > 0 then begin
      if into.count = 0 then begin
        into.min_v <- t.min_v;
        into.max_v <- t.max_v
      end
      else begin
        if t.min_v < into.min_v then into.min_v <- t.min_v;
        if t.max_v > into.max_v then into.max_v <- t.max_v
      end;
      into.count <- into.count + t.count;
      into.sum <- into.sum + t.sum
    end

  (* Non-empty buckets as (inclusive upper bound, count), ascending — the
     raw material for cumulative exports (Prometheus [le] boundaries).  A
     bucket covering [bucket_value i, bucket_value (i+1) - 1] reports the
     top of that range; the last representable bucket is open-ended. *)
  let buckets t =
    let acc = ref [] in
    for i = bucket_count - 1 downto 0 do
      if t.buckets.(i) > 0 then begin
        let upper =
          if i + 1 >= bucket_count then max_int else bucket_value (i + 1) - 1
        in
        acc := (upper, t.buckets.(i)) :: !acc
      end
    done;
    !acc

  let to_json t =
    Json.Obj
      [
        ("count", Json.Int t.count);
        ("sum", Json.Int t.sum);
        ("min", Json.Int t.min_v);
        ("max", Json.Int t.max_v);
        ("p50", Json.Int (quantile t 0.50));
        ("p90", Json.Int (quantile t 0.90));
        ("p99", Json.Int (quantile t 0.99));
      ]
end

(* ---------- memory sink ---------- *)

module Memory = struct
  type span_stat = { calls : int; total_us : int; max_us : int }

  let default_max_events = 100_000
  let default_max_scopes = 256

  (* Per-scope sub-aggregates: counters plus one histogram table covering
     both recorded values and span durations (keyed by span name — the two
     namespaces do not collide in practice). *)
  type scope_agg = {
    sc_counters : (string, int) Hashtbl.t;
    sc_hists : (string, Histogram.t) Hashtbl.t;
  }

  type t = {
    log : event Queue.t; (* oldest first, capped at [max_events] *)
    max_events : int;
    mutable dropped : int;
    counters : (string, int) Hashtbl.t;
    stats : (string, span_stat) Hashtbl.t;
    hists : (string, Histogram.t) Hashtbl.t; (* Value recordings *)
    span_hists : (string, Histogram.t) Hashtbl.t; (* span durations, µs *)
    mutable stack : (string * int) list; (* open spans, innermost first *)
    mutable max_depth : int;
    scoped : (int, scope_agg) Hashtbl.t;
    scope_order : int Queue.t; (* insertion order, for FIFO eviction *)
    max_scopes : int;
    mutable evicted_scopes : int;
  }

  let create ?(max_events = default_max_events) ?(max_scopes = default_max_scopes)
      () =
    {
      log = Queue.create ();
      max_events = max 0 max_events;
      dropped = 0;
      counters = Hashtbl.create 32;
      stats = Hashtbl.create 32;
      hists = Hashtbl.create 16;
      span_hists = Hashtbl.create 16;
      stack = [];
      max_depth = 0;
      scoped = Hashtbl.create 16;
      scope_order = Queue.create ();
      max_scopes = max 0 max_scopes;
      evicted_scopes = 0;
    }

  let hist_in tbl name =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None ->
        let h = Histogram.create () in
        Hashtbl.add tbl name h;
        h

  (* Per-request scopes are unbounded over a daemon's lifetime; the scope
     table is not.  Oldest scopes are evicted FIFO past [max_scopes] —
     global aggregates are unaffected, only the per-scope breakdown of
     evicted scopes is lost. *)
  let scope_agg_in t scope =
    if scope = Scope.none || t.max_scopes = 0 then None
    else
      match Hashtbl.find_opt t.scoped scope with
      | Some agg -> Some agg
      | None ->
          if Hashtbl.length t.scoped >= t.max_scopes then begin
            (match Queue.take_opt t.scope_order with
            | Some oldest ->
                Hashtbl.remove t.scoped oldest;
                t.evicted_scopes <- t.evicted_scopes + 1
            | None -> ());
            ()
          end;
          let agg =
            { sc_counters = Hashtbl.create 8; sc_hists = Hashtbl.create 8 }
          in
          Hashtbl.add t.scoped scope agg;
          Queue.push scope t.scope_order;
          Some agg

  let record t ev =
    (* The raw log is bounded (oldest events drop out); every aggregate
       below stays exact because it is updated incrementally here, never
       recomputed from the log. *)
    Queue.push ev t.log;
    if Queue.length t.log > t.max_events then begin
      ignore (Queue.pop t.log);
      t.dropped <- t.dropped + 1
    end;
    match ev with
    | Count { name; delta; scope; _ } ->
        let current = Option.value ~default:0 (Hashtbl.find_opt t.counters name) in
        Hashtbl.replace t.counters name (current + delta);
        Option.iter
          (fun agg ->
            let sc =
              Option.value ~default:0 (Hashtbl.find_opt agg.sc_counters name)
            in
            Hashtbl.replace agg.sc_counters name (sc + delta))
          (scope_agg_in t scope)
    | Value { name; value; scope; _ } ->
        Histogram.add (hist_in t.hists name) value;
        Option.iter
          (fun agg -> Histogram.add (hist_in agg.sc_hists name) value)
          (scope_agg_in t scope)
    | Span_begin { name; ts; _ } ->
        t.stack <- (name, ts) :: t.stack;
        t.max_depth <- max t.max_depth (List.length t.stack)
    | Span_end { name; ts; scope } -> (
        (* An end closes the innermost open span of that name; out-of-order
           ends (possible only through hand-fed sinks) are dropped. *)
        match t.stack with
        | (open_name, began) :: rest when open_name = name ->
            t.stack <- rest;
            let d = ts - began in
            Histogram.add (hist_in t.span_hists name) d;
            Option.iter
              (fun agg -> Histogram.add (hist_in agg.sc_hists name) d)
              (scope_agg_in t scope);
            let prev =
              Option.value
                ~default:{ calls = 0; total_us = 0; max_us = 0 }
                (Hashtbl.find_opt t.stats name)
            in
            Hashtbl.replace t.stats name
              {
                calls = prev.calls + 1;
                total_us = prev.total_us + d;
                max_us = max prev.max_us d;
              }
        | _ -> ())

  let sink t = record t

  let sorted_bindings tbl =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

  let counters t = sorted_bindings t.counters
  let counter t name = Option.value ~default:0 (Hashtbl.find_opt t.counters name)
  let spans t = sorted_bindings t.stats
  let histograms t = sorted_bindings t.hists
  let histogram t name = Hashtbl.find_opt t.hists name
  let span_histogram t name = Hashtbl.find_opt t.span_hists name
  let events t = List.of_seq (Queue.to_seq t.log)
  let stored_events t = Queue.length t.log
  let dropped_events t = t.dropped
  let max_events t = t.max_events
  let max_depth t = t.max_depth
  let open_spans t = List.rev_map fst t.stack

  let scopes t =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.scoped [])

  let scope_counters t scope =
    match Hashtbl.find_opt t.scoped scope with
    | None -> []
    | Some agg -> sorted_bindings agg.sc_counters

  let scope_counter t scope name =
    match Hashtbl.find_opt t.scoped scope with
    | None -> 0
    | Some agg -> Option.value ~default:0 (Hashtbl.find_opt agg.sc_counters name)

  let scope_histograms t scope =
    match Hashtbl.find_opt t.scoped scope with
    | None -> []
    | Some agg -> sorted_bindings agg.sc_hists

  let scope_histogram t scope name =
    match Hashtbl.find_opt t.scoped scope with
    | None -> None
    | Some agg -> Hashtbl.find_opt agg.sc_hists name

  let max_scopes t = t.max_scopes
  let evicted_scopes t = t.evicted_scopes

  let counter_rows t =
    List.map (fun (name, total) -> [ name; string_of_int total ]) (counters t)

  let span_rows t =
    List.map
      (fun (name, { calls; total_us; max_us }) ->
        let p q =
          match span_histogram t name with
          | Some h -> string_of_int (Histogram.quantile h q)
          | None -> "0"
        in
        [
          name;
          string_of_int calls;
          string_of_int total_us;
          string_of_int max_us;
          p 0.50;
          p 0.99;
        ])
      (spans t)

  let histogram_rows t =
    List.map
      (fun (name, h) ->
        [
          name;
          string_of_int (Histogram.count h);
          string_of_int (Histogram.quantile h 0.50);
          string_of_int (Histogram.quantile h 0.90);
          string_of_int (Histogram.quantile h 0.99);
          string_of_int (Histogram.max_value h);
        ])
      (histograms t)

  let to_json t =
    Json.Obj
      [
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
        ( "spans",
          Json.Obj
            (List.map
               (fun (k, { calls; total_us; max_us }) ->
                 let quant q =
                   match span_histogram t k with
                   | Some h -> Histogram.quantile h q
                   | None -> 0
                 in
                 ( k,
                   Json.Obj
                     [
                       ("calls", Json.Int calls);
                       ("total_us", Json.Int total_us);
                       ("max_us", Json.Int max_us);
                       ("p50_us", Json.Int (quant 0.50));
                       ("p99_us", Json.Int (quant 0.99));
                     ] ))
               (spans t)) );
        ( "histograms",
          Json.Obj (List.map (fun (k, h) -> (k, Histogram.to_json h)) (histograms t))
        );
      ]

  let chrome_trace ?(process_name = "msts") t =
    (* Scoped events render on their own track so per-request timelines
       separate visually; unscoped events keep the historical tid 1. *)
    let common ts scope =
      let tid = if scope = Scope.none then 1 else scope + 1 in
      [ ("ts", Json.Int ts); ("pid", Json.Int 1); ("tid", Json.Int tid) ]
    in
    let running = Hashtbl.create 16 in
    let trace_event = function
      | Span_begin { name; ts; args; scope } ->
          let fields =
            [
              ("name", Json.String name);
              ("cat", Json.String "msts");
              ("ph", Json.String "B");
            ]
            @ common ts scope
          in
          let fields =
            match args with
            | [] -> fields
            | args ->
                fields
                @ [
                    ( "args",
                      Json.Obj
                        (List.map (fun (k, v) -> (k, Json.String v)) args) );
                  ]
          in
          Json.Obj fields
      | Span_end { name; ts; scope } ->
          Json.Obj
            ([
               ("name", Json.String name);
               ("cat", Json.String "msts");
               ("ph", Json.String "E");
             ]
            @ common ts scope)
      | Count { name; delta; ts; scope } ->
          let total =
            delta + Option.value ~default:0 (Hashtbl.find_opt running name)
          in
          Hashtbl.replace running name total;
          Json.Obj
            ([
               ("name", Json.String name);
               ("cat", Json.String "msts");
               ("ph", Json.String "C");
             ]
            @ common ts scope
            @ [ ("args", Json.Obj [ ("value", Json.Int total) ]) ])
      | Value { name; value; ts; scope } ->
          (* raw samples become their own counter track, so distributions
             are visible on the timeline *)
          Json.Obj
            ([
               ("name", Json.String name);
               ("cat", Json.String "msts");
               ("ph", Json.String "C");
             ]
            @ common ts scope
            @ [ ("args", Json.Obj [ ("value", Json.Int value) ]) ])
    in
    let metadata =
      [ ("process_name", Json.String process_name) ]
      @ if t.dropped > 0 then [ ("dropped_events", Json.Int t.dropped) ] else []
    in
    Json.Obj
      [
        ("traceEvents", Json.List (List.map trace_event (events t)));
        ("displayTimeUnit", Json.String "ms");
        ("metadata", Json.Obj metadata);
      ]
end

(* ---------- streaming JSONL sink ---------- *)

module Streaming = struct
  type t = {
    oc : out_channel;
    buf : Buffer.t;
    flush_every : int;
    mutable buffered : int;
    mutable high_water : int;
    mutable written : int;
  }

  let create ?(flush_every = 4096) oc =
    if flush_every < 1 then invalid_arg "Obs.Streaming.create: flush_every must be >= 1";
    { oc; buf = Buffer.create 4096; flush_every; buffered = 0; high_water = 0; written = 0 }

  let flush t =
    if t.buffered > 0 then begin
      Buffer.output_buffer t.oc t.buf;
      Buffer.clear t.buf;
      t.written <- t.written + t.buffered;
      t.buffered <- 0
    end;
    Out_channel.flush t.oc

  let record t ev =
    Buffer.add_string t.buf (Json.to_string (event_to_json ev));
    Buffer.add_char t.buf '\n';
    t.buffered <- t.buffered + 1;
    if t.buffered > t.high_water then t.high_water <- t.buffered;
    if t.buffered >= t.flush_every then flush t

  let sink t = record t
  let events_seen t = t.written + t.buffered
  let events_written t = t.written
  let max_buffered t = t.high_water
end

(* ---------- ring-buffer sink ---------- *)

module Ring = struct
  type t = { slots : event option array; mutable seen : int }

  let create ?(capacity = 1024) () =
    if capacity < 1 then invalid_arg "Obs.Ring.create: capacity must be >= 1";
    { slots = Array.make capacity None; seen = 0 }

  let record t ev =
    t.slots.(t.seen mod Array.length t.slots) <- Some ev;
    t.seen <- t.seen + 1

  let sink t = record t
  let capacity t = Array.length t.slots
  let seen t = t.seen
  let dropped t = max 0 (t.seen - Array.length t.slots)

  let events t =
    let cap = Array.length t.slots in
    let n = min t.seen cap in
    List.init n (fun i ->
        match t.slots.((t.seen - n + i) mod cap) with
        | Some ev -> ev
        | None -> assert false)

  let to_jsonl t =
    String.concat ""
      (List.map (fun ev -> Json.to_string (event_to_json ev) ^ "\n") (events t))
end
