module Chain = Msts_platform.Chain
module Spider = Msts_platform.Spider
module Schedule = Msts_schedule.Schedule
module Spider_schedule = Msts_schedule.Spider_schedule

type chain_state = {
  chain : Chain.t;
  link_free : int array; (* next time link k is available *)
  proc_free : int array; (* next time processor k is available *)
}

let chain_start chain =
  let p = Chain.length chain in
  { chain; link_free = Array.make p 0; proc_free = Array.make p 0 }

let chain_copy st =
  {
    chain = st.chain;
    link_free = Array.copy st.link_free;
    proc_free = Array.copy st.proc_free;
  }

let chain_push st ~dest =
  let chain = st.chain in
  if dest < 1 || dest > Chain.length chain then
    invalid_arg "Asap.chain_push: destination outside the chain";
  let comms = Array.make dest 0 in
  comms.(0) <- st.link_free.(0);
  st.link_free.(0) <- comms.(0) + Chain.latency chain 1;
  for j = 2 to dest do
    let ready = comms.(j - 2) + Chain.latency chain (j - 1) in
    comms.(j - 1) <- max ready st.link_free.(j - 1);
    st.link_free.(j - 1) <- comms.(j - 1) + Chain.latency chain j
  done;
  let arrival = comms.(dest - 1) + Chain.latency chain dest in
  let start = max arrival st.proc_free.(dest - 1) in
  st.proc_free.(dest - 1) <- start + Chain.work chain dest;
  { Schedule.proc = dest; start; comms }

let chain_of_sequence chain seq =
  let st = chain_start chain in
  Schedule.make chain (Array.map (fun dest -> chain_push st ~dest) seq)

let chain_makespan chain seq =
  let st = chain_start chain in
  Array.fold_left
    (fun acc dest ->
      let e = chain_push st ~dest in
      max acc (e.Schedule.start + Chain.work chain dest))
    0 seq

type spider_state = {
  spider : Spider.t;
  port_free : int ref; (* master's outgoing port *)
  leg_link_free : int array array; (* per leg, per link *)
  leg_proc_free : int array array;
}

let spider_start spider =
  let legs = Spider.legs spider in
  {
    spider;
    port_free = ref 0;
    leg_link_free =
      Array.init legs (fun idx ->
          Array.make (Chain.length (Spider.leg_chain spider (idx + 1))) 0);
    leg_proc_free =
      Array.init legs (fun idx ->
          Array.make (Chain.length (Spider.leg_chain spider (idx + 1))) 0);
  }

let spider_copy st =
  {
    spider = st.spider;
    port_free = ref !(st.port_free);
    leg_link_free = Array.map Array.copy st.leg_link_free;
    leg_proc_free = Array.map Array.copy st.leg_proc_free;
  }

let spider_push st ~dest =
  let { Spider.leg; depth } = dest in
  let chain = Spider.leg_chain st.spider leg in
  if depth < 1 || depth > Chain.length chain then
    invalid_arg "Asap.spider_push: destination outside the leg";
  let link_free = st.leg_link_free.(leg - 1) in
  let proc_free = st.leg_proc_free.(leg - 1) in
  let comms = Array.make depth 0 in
  (* the first hop occupies both the master's port and the leg's first link *)
  comms.(0) <- max !(st.port_free) link_free.(0);
  let c1 = Chain.latency chain 1 in
  st.port_free := comms.(0) + c1;
  link_free.(0) <- comms.(0) + c1;
  for j = 2 to depth do
    let ready = comms.(j - 2) + Chain.latency chain (j - 1) in
    comms.(j - 1) <- max ready link_free.(j - 1);
    link_free.(j - 1) <- comms.(j - 1) + Chain.latency chain j
  done;
  let arrival = comms.(depth - 1) + Chain.latency chain depth in
  let start = max arrival proc_free.(depth - 1) in
  proc_free.(depth - 1) <- start + Chain.work chain depth;
  { Spider_schedule.address = dest; start; comms }

let spider_of_sequence spider seq =
  let st = spider_start spider in
  Spider_schedule.make spider (Array.map (fun dest -> spider_push st ~dest) seq)

let spider_makespan spider seq =
  let st = spider_start spider in
  Array.fold_left
    (fun acc dest ->
      let e = spider_push st ~dest in
      max acc (e.Spider_schedule.start + Spider.work spider dest))
    0 seq
