module Chain = Msts_platform.Chain
module Spider = Msts_platform.Spider
module Schedule = Msts_schedule.Schedule
module Spider_schedule = Msts_schedule.Spider_schedule
module Prng = Msts_util.Prng

type chain_policy =
  | Earliest_completion
  | Round_robin
  | Master_only
  | Fastest_processor
  | Random of int

let chain_policy_name = function
  | Earliest_completion -> "earliest-completion"
  | Round_robin -> "round-robin"
  | Master_only -> "master-only"
  | Fastest_processor -> "fastest-processor"
  | Random seed -> Printf.sprintf "random(%d)" seed

let all_chain_policies =
  [ Earliest_completion; Round_robin; Master_only; Fastest_processor; Random 0 ]

(* One-step lookahead on a state snapshot: completion time of this task if
   routed to [dest]. *)
let chain_completion_if st dest chain =
  let probe = Asap.chain_copy st in
  let e = Asap.chain_push probe ~dest in
  e.Schedule.start + Chain.work chain dest

let chain_chooser policy chain =
  let p = Chain.length chain in
  let rr = ref 0 in
  let rng = match policy with Random seed -> Some (Prng.create seed) | _ -> None in
  let fastest =
    Msts_util.Intx.argmin (Array.init p (fun idx -> Chain.work chain (idx + 1))) + 1
  in
  fun st ->
    match policy with
    | Earliest_completion ->
        let best = ref 1 and best_time = ref (chain_completion_if st 1 chain) in
        for dest = 2 to p do
          let t = chain_completion_if st dest chain in
          if t < !best_time then begin
            best := dest;
            best_time := t
          end
        done;
        !best
    | Round_robin ->
        let dest = (!rr mod p) + 1 in
        incr rr;
        dest
    | Master_only -> 1
    | Fastest_processor -> fastest
    | Random _ -> Prng.int_in (Option.get rng) 1 p

let chain policy chain_ n =
  if n < 0 then invalid_arg "List_sched.chain: negative task count";
  let choose = chain_chooser policy chain_ in
  let st = Asap.chain_start chain_ in
  Schedule.make chain_
    (Array.init n (fun _ -> Asap.chain_push st ~dest:(choose st)))

let chain_makespan policy chain_ n = Schedule.makespan (chain policy chain_ n)

type spider_policy =
  | Spider_earliest_completion
  | Spider_round_robin
  | Spider_first_leg
  | Spider_random of int

let spider_policy_name = function
  | Spider_earliest_completion -> "earliest-completion"
  | Spider_round_robin -> "round-robin"
  | Spider_first_leg -> "first-leg"
  | Spider_random seed -> Printf.sprintf "random(%d)" seed

let all_spider_policies =
  [
    Spider_earliest_completion;
    Spider_round_robin;
    Spider_first_leg;
    Spider_random 0;
  ]

let spider_completion_if st dest spider =
  let probe = Asap.spider_copy st in
  let e = Asap.spider_push probe ~dest in
  e.Spider_schedule.start + Spider.work spider dest

let spider_chooser policy spider =
  let addresses = Array.of_list (Spider.addresses spider) in
  let rr = ref 0 in
  let rng =
    match policy with Spider_random seed -> Some (Prng.create seed) | _ -> None
  in
  fun st ->
    match policy with
    | Spider_earliest_completion ->
        let best = ref addresses.(0)
        and best_time = ref (spider_completion_if st addresses.(0) spider) in
        Array.iter
          (fun dest ->
            let t = spider_completion_if st dest spider in
            if t < !best_time then begin
              best := dest;
              best_time := t
            end)
          addresses;
        !best
    | Spider_round_robin ->
        let dest = addresses.(!rr mod Array.length addresses) in
        incr rr;
        dest
    | Spider_first_leg -> { Spider.leg = 1; depth = 1 }
    | Spider_random _ -> Prng.choice (Option.get rng) addresses

let spider policy spider_ n =
  if n < 0 then invalid_arg "List_sched.spider: negative task count";
  let choose = spider_chooser policy spider_ in
  let st = Asap.spider_start spider_ in
  Spider_schedule.make spider_
    (Array.init n (fun _ -> Asap.spider_push st ~dest:(choose st)))

let spider_makespan policy spider_ n =
  Spider_schedule.makespan (spider policy spider_ n)
