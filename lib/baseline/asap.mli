(** ASAP timing of a fixed destination sequence.

    Both brute-force oracles and the forward list-scheduling heuristics
    share one primitive: given the order in which the master emits tasks and
    each task's destination, compute the earliest-possible dates of every
    transfer and execution.  Because tasks are identical, any feasible
    schedule can be renamed so that every link serves tasks in emission
    (FIFO) order; and with the order fixed, every Definition 1 constraint is
    a lower bound that the ASAP sweep attains pointwise — so ASAP timing is
    makespan-optimal for its sequence.  Minimising over sequences therefore
    yields the true optimum (the brute-force oracle). *)

type chain_state
(** Mutable resource clocks for one chain (master port, links,
    processors). *)

val chain_start : Msts_platform.Chain.t -> chain_state

val chain_push : chain_state -> dest:int -> Msts_schedule.Schedule.entry
(** Route one more task to processor [dest]; returns its dates. *)

val chain_copy : chain_state -> chain_state
(** Snapshot for one-step lookahead in greedy heuristics. *)

val chain_of_sequence : Msts_platform.Chain.t -> int array -> Msts_schedule.Schedule.t
(** Timing of a whole destination sequence. *)

val chain_makespan : Msts_platform.Chain.t -> int array -> int
(** Makespan of {!chain_of_sequence} without materialising entries. *)

type spider_state

val spider_start : Msts_platform.Spider.t -> spider_state

val spider_push :
  spider_state -> dest:Msts_platform.Spider.address -> Msts_schedule.Spider_schedule.entry

val spider_copy : spider_state -> spider_state

val spider_of_sequence :
  Msts_platform.Spider.t -> Msts_platform.Spider.address array ->
  Msts_schedule.Spider_schedule.t

val spider_makespan :
  Msts_platform.Spider.t -> Msts_platform.Spider.address array -> int
