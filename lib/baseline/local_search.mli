(** Metaheuristic baselines over destination sequences.

    Between the myopic forward rules and the exact algorithm sits the
    practitioner's favourite middle ground: search the space of destination
    sequences directly, timing each candidate with the ASAP sweep.  These
    baselines answer the question "could a generic optimiser have found the
    paper's result?" — experiment `local-search` shows how much effort that
    costs compared to the O(n·p²) construction.

    All functions are deterministic for a given [seed]. *)

val random_restarts :
  ?seed:int -> restarts:int -> Msts_platform.Chain.t -> int -> Msts_schedule.Schedule.t
(** Best ASAP timing over [restarts] uniformly random destination
    sequences (plus the all-on-processor-1 sequence as a safety net).
    @raise Invalid_argument on negative arguments. *)

type climb_report = {
  schedule : Msts_schedule.Schedule.t;
  start_makespan : int;  (** makespan of the initial greedy sequence *)
  iterations : int;  (** improving moves applied *)
  evaluations : int;  (** ASAP timings performed *)
}

val hill_climb :
  ?seed:int -> ?max_rounds:int -> Msts_platform.Chain.t -> int -> climb_report
(** First-improvement hill climbing from the earliest-completion greedy
    sequence.  Neighbourhood: change one task's destination, or swap the
    destinations of two positions.  Stops at a local optimum or after
    [max_rounds] (default 50) full sweeps. *)

val hill_climb_makespan :
  ?seed:int -> ?max_rounds:int -> Msts_platform.Chain.t -> int -> int
