(** Exact oracles by exhaustive search.

    Enumerates every destination sequence (the order in which the master
    emits tasks, each with a target processor) and times it with the ASAP
    sweep — see {!Asap} for why this search space contains an optimal
    schedule.  Cost is [pⁿ·O(n·p)], so the oracles are reserved for the
    small instances the optimality tests run on. *)

val chain_makespan : Msts_platform.Chain.t -> int -> int
(** Optimal makespan for [n] tasks on a chain.  0 when [n = 0].
    @raise Invalid_argument if [n < 0]. *)

val chain_schedule : Msts_platform.Chain.t -> int -> Msts_schedule.Schedule.t
(** A witness optimal schedule. *)

val chain_max_tasks : Msts_platform.Chain.t -> deadline:int -> limit:int -> int
(** Largest [m <= limit] schedulable within [deadline] (exact counterpart of
    {!Msts_chain.Deadline.max_tasks}). *)

val spider_makespan : Msts_platform.Spider.t -> int -> int
(** Optimal makespan for [n] tasks on a spider. *)

val spider_schedule : Msts_platform.Spider.t -> int -> Msts_schedule.Spider_schedule.t

val spider_max_tasks : Msts_platform.Spider.t -> deadline:int -> limit:int -> int

val chain_makespan_pruned : Msts_platform.Chain.t -> int -> int
(** Same optimum as {!chain_makespan}, computed by a level-by-level state
    search with {e dominance pruning}: after placing [k] tasks the future
    depends only on the resource clocks (per-link and per-processor free
    times) plus the partial makespan, and a state that is componentwise ≤
    another can be dropped.  Reaches noticeably larger [n] than plain
    enumeration, which makes it the second, independent exact oracle the
    optimality tests cross-check against. *)

val search_space : procs:int -> tasks:int -> float
(** [procsᵗᵃˢᵏˢ] as a float — lets tests assert they stay within budget. *)
