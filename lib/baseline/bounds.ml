(* The implementation lives in [Msts_schedule.Bounds] so the chain and
   spider schedulers can warm-start their binary searches with it without
   depending on this library; re-exported here because the bounds are
   conceptually baselines and callers address them as [Msts.Bounds]. *)
include Msts_schedule.Bounds
