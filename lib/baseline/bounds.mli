(** Lower bounds on the optimal makespan.

    Re-export of {!Msts_schedule.Bounds}, kept under [Msts_baseline] (and
    hence [Msts.Bounds]) for callers that treat the bounds as baselines.
    The implementation lives low in the dependency graph so the schedulers
    themselves can warm-start their searches with it. *)

include module type of struct
  include Msts_schedule.Bounds
end
