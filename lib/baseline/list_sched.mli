(** Forward list-scheduling heuristics.

    The natural competitors a practitioner would reach for before reading
    the paper: emit tasks forwards (earliest first), choose each task's
    destination with a myopic rule, and time everything ASAP.  All of them
    are feasible by construction; none is optimal in general.  They provide
    the comparison points of experiment E11 and the ablation showing why
    the paper's {e backward} construction matters. *)

type chain_policy =
  | Earliest_completion
      (** one-step lookahead: send to the processor finishing this task
          soonest (ties to the nearer processor) *)
  | Round_robin  (** cycle through processors 1..p *)
  | Master_only  (** keep every task on processor 1 *)
  | Fastest_processor  (** always the processor with minimal [w] *)
  | Random of int  (** uniform destination, seeded *)

val chain_policy_name : chain_policy -> string

val all_chain_policies : chain_policy list
(** One representative of each constructor ([Random] seeded with 0). *)

val chain : chain_policy -> Msts_platform.Chain.t -> int -> Msts_schedule.Schedule.t
(** Schedule [n] tasks with the given rule. *)

val chain_makespan : chain_policy -> Msts_platform.Chain.t -> int -> int

type spider_policy =
  | Spider_earliest_completion
  | Spider_round_robin  (** cycle through all addresses *)
  | Spider_first_leg  (** keep every task on the first leg's first node *)
  | Spider_random of int

val spider_policy_name : spider_policy -> string

val all_spider_policies : spider_policy list

val spider :
  spider_policy -> Msts_platform.Spider.t -> int -> Msts_schedule.Spider_schedule.t

val spider_makespan : spider_policy -> Msts_platform.Spider.t -> int -> int
