module Chain = Msts_platform.Chain
module Spider = Msts_platform.Spider

(* Generic depth-first enumeration: [targets] are the possible destinations,
   [push] advances a state copy, [measure] reads the partial makespan.  The
   partial makespan only grows as tasks are appended (ASAP dates of placed
   tasks never move), so branches already worse than the incumbent are cut. *)
let search ~targets ~start ~copy ~push ~n =
  let best = ref max_int in
  let best_seq = ref [||] in
  let seq = Array.make n (List.hd targets) in
  let rec explore state depth makespan =
    if makespan < !best then begin
      if depth = n then begin
        best := makespan;
        best_seq := Array.copy seq
      end
      else
        List.iter
          (fun dest ->
            let state' = copy state in
            let completion = push state' dest in
            seq.(depth) <- dest;
            explore state' (depth + 1) (max makespan completion))
          targets
    end
  in
  if n = 0 then (0, [||])
  else begin
    explore (start ()) 0 0;
    (!best, !best_seq)
  end

let chain_targets chain = Msts_util.Intx.range 1 (Chain.length chain)

let chain_search chain n =
  if n < 0 then invalid_arg "Brute_force: negative task count";
  search
    ~targets:(chain_targets chain)
    ~start:(fun () -> Asap.chain_start chain)
    ~copy:Asap.chain_copy
    ~push:(fun st dest ->
      let e = Asap.chain_push st ~dest in
      e.Msts_schedule.Schedule.start + Chain.work chain dest)
    ~n

let chain_makespan chain n = fst (chain_search chain n)

let chain_schedule chain n =
  let _, seq = chain_search chain n in
  Asap.chain_of_sequence chain seq

let chain_max_tasks chain ~deadline ~limit =
  if deadline < 0 || limit < 0 then invalid_arg "Brute_force.chain_max_tasks";
  let rec grow m =
    if m >= limit then m
    else if chain_makespan chain (m + 1) <= deadline then grow (m + 1)
    else m
  in
  grow 0

let spider_search spider n =
  if n < 0 then invalid_arg "Brute_force: negative task count";
  search
    ~targets:(Spider.addresses spider)
    ~start:(fun () -> Asap.spider_start spider)
    ~copy:Asap.spider_copy
    ~push:(fun st dest ->
      let e = Asap.spider_push st ~dest in
      e.Msts_schedule.Spider_schedule.start + Spider.work spider dest)
    ~n

let spider_makespan spider n = fst (spider_search spider n)

let spider_schedule spider n =
  let _, seq = spider_search spider n in
  Asap.spider_of_sequence spider seq

let spider_max_tasks spider ~deadline ~limit =
  if deadline < 0 || limit < 0 then invalid_arg "Brute_force.spider_max_tasks";
  let rec grow m =
    if m >= limit then m
    else if spider_makespan spider (m + 1) <= deadline then grow (m + 1)
    else m
  in
  grow 0

(* ---------- dominance-pruned exact search ----------

   A state after placing some tasks is the vector of resource clocks
   (link_free(1..p), proc_free(1..p)) plus the partial makespan; every
   future completion is a monotone function of these, so a componentwise-
   smaller-or-equal state always leads to an optimum at least as good. *)

let dominates a b =
  let len = Array.length a in
  let rec loop i = i >= len || (a.(i) <= b.(i) && loop (i + 1)) in
  loop 0

(* Pareto-minimal insertion: drop [candidate] if dominated, evict states it
   dominates. *)
let pareto_insert pool candidate =
  if List.exists (fun s -> dominates s candidate) pool then pool
  else candidate :: List.filter (fun s -> not (dominates candidate s)) pool

let chain_makespan_pruned chain n =
  if n < 0 then invalid_arg "Brute_force: negative task count";
  if n = 0 then 0
  else begin
    let p = Chain.length chain in
    (* layout: [0..p-1] link clocks, [p..2p-1] processor clocks,
       [2p] partial makespan *)
    let push state dest =
      let state = Array.copy state in
      let emit = ref state.(0) in
      state.(0) <- !emit + Chain.latency chain 1;
      let arrival = ref (!emit + Chain.latency chain 1) in
      for j = 2 to dest do
        emit := max !arrival state.(j - 1);
        state.(j - 1) <- !emit + Chain.latency chain j;
        arrival := !emit + Chain.latency chain j
      done;
      let start = max !arrival state.(p + dest - 1) in
      let completion = start + Chain.work chain dest in
      state.(p + dest - 1) <- completion;
      state.(2 * p) <- max state.(2 * p) completion;
      state
    in
    let level = ref [ Array.make ((2 * p) + 1) 0 ] in
    for _ = 1 to n do
      let next = ref [] in
      List.iter
        (fun state ->
          for dest = 1 to p do
            next := pareto_insert !next (push state dest)
          done)
        !level;
      level := !next
    done;
    List.fold_left (fun acc state -> min acc state.(2 * p)) max_int !level
  end

let search_space ~procs ~tasks = float_of_int procs ** float_of_int tasks
