(** Steady-state throughput analysis (bandwidth-centric allocation).

    The companion viewpoint from Beaumont et al. [2], which the paper cites
    for trees: ignore start-up and wind-down and ask how many tasks per time
    unit a platform absorbs in the long run.  For large [n] the optimal
    makespan behaves like [n/ρ + O(1)], which the tests and experiment E11
    verify against the exact algorithm.

    For a chain, the deliverable rate beyond link [j] obeys
    [ρ(j) = min(1/c_j, 1/w_j + ρ(j+1))].  For a spider the master's port is
    shared: maximising total rate subject to [Σ_l ρ_l·c₁(l) ≤ 1] and each
    leg's cap is a fractional knapsack solved greedily by ascending [c₁] —
    the "bandwidth-centric" rule: priority goes to the child cheapest to
    feed, regardless of its speed. *)

val chain_throughput : Msts_platform.Chain.t -> float
(** Tasks per time unit a chain absorbs in steady state. *)

val chain_prefix_throughputs : Msts_platform.Chain.t -> float array
(** [ρ(j)] for each [j] — where the chain saturates. *)

val spider_throughput : Msts_platform.Spider.t -> float

val spider_leg_rates : Msts_platform.Spider.t -> float array
(** Per-leg rates of the optimal steady state (bandwidth-centric
    allocation); sums to {!spider_throughput}. *)

val asymptotic_makespan : Msts_platform.Chain.t -> int -> float
(** [n /. chain_throughput] — the first-order makespan prediction. *)
