module Chain = Msts_platform.Chain
module Schedule = Msts_schedule.Schedule
module Prng = Msts_util.Prng

let random_restarts ?(seed = 0) ~restarts chain n =
  if restarts < 0 then invalid_arg "Local_search.random_restarts: negative restarts";
  if n < 0 then invalid_arg "Local_search.random_restarts: negative task count";
  let p = Chain.length chain in
  let rng = Prng.create seed in
  let best_seq = ref (Array.make n 1) in
  let best = ref (Asap.chain_makespan chain !best_seq) in
  for _ = 1 to restarts do
    let seq = Array.init n (fun _ -> Prng.int_in rng 1 p) in
    let makespan = Asap.chain_makespan chain seq in
    if makespan < !best then begin
      best := makespan;
      best_seq := seq
    end
  done;
  Asap.chain_of_sequence chain !best_seq

type climb_report = {
  schedule : Schedule.t;
  start_makespan : int;
  iterations : int;
  evaluations : int;
}

(* initial sequence: the earliest-completion greedy *)
let greedy_sequence chain n =
  let sched = List_sched.chain List_sched.Earliest_completion chain n in
  Array.map (fun (e : Schedule.entry) -> e.proc) (Schedule.entries sched)

let hill_climb ?(seed = 0) ?(max_rounds = 50) chain n =
  if n < 0 then invalid_arg "Local_search.hill_climb: negative task count";
  let p = Chain.length chain in
  let rng = Prng.create seed in
  let seq = greedy_sequence chain n in
  let evaluations = ref 1 in
  let current = ref (Asap.chain_makespan chain seq) in
  let start_makespan = !current in
  let iterations = ref 0 in
  let evaluate () =
    incr evaluations;
    Asap.chain_makespan chain seq
  in
  (* first-improvement over a randomly ordered neighbourhood sweep *)
  let try_retarget position dest =
    let previous = seq.(position) in
    if previous = dest then false
    else begin
      seq.(position) <- dest;
      let makespan = evaluate () in
      if makespan < !current then begin
        current := makespan;
        true
      end
      else begin
        seq.(position) <- previous;
        false
      end
    end
  in
  let try_swap a b =
    if a = b || seq.(a) = seq.(b) then false
    else begin
      let sa = seq.(a) and sb = seq.(b) in
      seq.(a) <- sb;
      seq.(b) <- sa;
      let makespan = evaluate () in
      if makespan < !current then begin
        current := makespan;
        true
      end
      else begin
        seq.(a) <- sa;
        seq.(b) <- sb;
        false
      end
    end
  in
  let round () =
    let improved = ref false in
    if n > 0 then begin
      let order = Prng.permutation rng n in
      Array.iter
        (fun position ->
          for dest = 1 to p do
            if try_retarget position dest then begin
              improved := true;
              incr iterations
            end
          done)
        order;
      for _ = 1 to n do
        let a = Prng.int rng n and b = Prng.int rng n in
        if try_swap a b then begin
          improved := true;
          incr iterations
        end
      done
    end;
    !improved
  in
  let rounds = ref 0 in
  while !rounds < max_rounds && round () do
    incr rounds
  done;
  {
    schedule = Asap.chain_of_sequence chain seq;
    start_makespan;
    iterations = !iterations;
    evaluations = !evaluations;
  }

let hill_climb_makespan ?seed ?max_rounds chain n =
  Schedule.makespan (hill_climb ?seed ?max_rounds chain n).schedule
