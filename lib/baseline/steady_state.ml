module Chain = Msts_platform.Chain
module Spider = Msts_platform.Spider

let chain_prefix_throughputs chain =
  let p = Chain.length chain in
  let rho = Array.make (p + 1) 0.0 in
  for j = p downto 1 do
    rho.(j - 1) <-
      min
        (1.0 /. float_of_int (Chain.latency chain j))
        ((1.0 /. float_of_int (Chain.work chain j)) +. rho.(j))
  done;
  Array.sub rho 0 p

let chain_throughput chain = (chain_prefix_throughputs chain).(0)

let spider_leg_rates spider =
  let legs = Spider.legs spider in
  let caps =
    Array.init legs (fun idx -> chain_throughput (Spider.leg_chain spider (idx + 1)))
  in
  let order = Array.init legs (fun idx -> idx) in
  (* bandwidth-centric: cheapest first link first *)
  Array.sort
    (fun a b ->
      Int.compare
        (Chain.latency (Spider.leg_chain spider (a + 1)) 1)
        (Chain.latency (Spider.leg_chain spider (b + 1)) 1))
    order;
  let rates = Array.make legs 0.0 in
  let port_left = ref 1.0 in
  Array.iter
    (fun idx ->
      let c1 = float_of_int (Chain.latency (Spider.leg_chain spider (idx + 1)) 1) in
      let rate = min caps.(idx) (!port_left /. c1) in
      rates.(idx) <- rate;
      port_left := !port_left -. (rate *. c1))
    order;
  rates

let spider_throughput spider =
  Array.fold_left ( +. ) 0.0 (spider_leg_rates spider)

let asymptotic_makespan chain n = float_of_int n /. chain_throughput chain
