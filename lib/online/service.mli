(** Session registry behind the [online-*] request frames.

    One [Service.t] owns every open online session of a process — the
    [msts serve] engine holds one, and [msts online] drives one locally —
    so the JSONL transcripts of the daemon and the offline CLI are
    byte-identical: both funnel through {!exec}.

    Online operations are stateful and cheap (one O(p) sweep per
    submitted task), so the engine answers them synchronously instead of
    queueing them behind batch solves; during a SIGTERM drain they keep
    being answered, which is what guarantees zero dropped deltas.

    Each session is opened under a fresh {!Msts.Obs.Scope} and every
    later operation on it re-enters that scope, so scope-aware sinks
    attribute the [online.*] telemetry per session. *)

type t

val create : ?max_sessions:int -> unit -> t
(** [max_sessions] (default 64) bounds concurrent sessions; further
    [online-open]s are refused with an [overloaded] error. *)

val handles : Msts.Api.op -> bool
(** True exactly on the [Online_*] operations. *)

val sessions : t -> int
(** Currently open sessions. *)

val exec : t -> Msts.Api.op -> (Msts.Json.t, Msts.Api.error) result
(** Apply one online operation.  Deltas ride in the reply payload's
    ["deltas"] list, in emission order (docs/ONLINE.md).  Non-online ops
    return a [bad_request] error. *)

val close_all : t -> int
(** Drop every session (drain epilogue); returns how many were open. *)
