(* Session registry behind the [online-*] frames.  See service.mli. *)

module Api = Msts.Api
module Json = Msts.Json
module Obs = Msts.Obs
module Parse = Msts.Platform_format
module Chain = Msts.Chain

(* Each session carries the [Obs.Scope] it was opened under: every later
   operation on the session re-enters that scope, so a scope-aware sink
   (e.g. the serve engine's Memory) attributes all [online.*] events to
   the session that produced them. *)
type entry = { online : Online.t; scope : int }

type t = {
  max_sessions : int;
  sessions : (int, entry) Hashtbl.t;
  mutable next : int;
}

let create ?(max_sessions = 64) () =
  if max_sessions < 1 then
    invalid_arg "Msts.Online.Service.create: max_sessions must be >= 1";
  { max_sessions; sessions = Hashtbl.create 16; next = 1 }

let handles = Api.is_online
let sessions t = Hashtbl.length t.sessions

let close_all t =
  let n = Hashtbl.length t.sessions in
  Hashtbl.reset t.sessions;
  n

(* ---------- payload assembly ---------- *)

let json_of_delta =
  let open Json in
  let comms_json comms =
    List (Array.to_list (Array.map (fun c -> Int c) comms))
  in
  function
  | Online.Placed { task; proc; start; comms } ->
      Obj
        [
          ("delta", String "placed");
          ("task", Int task);
          ("proc", Int proc);
          ("start", Int start);
          ("comms", comms_json comms);
        ]
  | Online.Displaced { task; proc; start; comms } ->
      Obj
        [
          ("delta", String "displaced");
          ("task", Int task);
          ("proc", Int proc);
          ("start", Int start);
          ("comms", comms_json comms);
        ]
  | Online.Rejected { task } ->
      Obj [ ("delta", String "rejected"); ("task", Int task) ]
  | Online.Frozen { frontier; tasks } ->
      Obj
        [
          ("delta", String "frozen");
          ("frontier", Int frontier);
          ("tasks", Int tasks);
        ]

(* Deltas ride in the reply, in emission order. *)
let collector () =
  let acc = ref [] in
  let emit d = acc := json_of_delta d :: !acc in
  let drain () = Json.List (List.rev_map (fun j -> j) !acc) in
  (emit, drain)

let find t session =
  match Hashtbl.find_opt t.sessions session with
  | Some e -> Ok e
  | None ->
      Error
        (Api.error Api.Invalid_argument_error
           (Printf.sprintf "Msts.Online.Service: unknown session %d" session))

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

(* Run [f] on the session's [Online.t] under the session's scope. *)
let with_session t session f =
  let* e = find t session in
  Obs.Scope.with_scope e.scope (fun () -> f e.online)

let exec t op =
  try
    match op with
    | Api.Online_open { platform; deadline; capacity } -> (
        if Hashtbl.length t.sessions >= t.max_sessions then
          Error
            (Api.error Api.Overloaded
               (Printf.sprintf "online session limit %d reached" t.max_sessions))
        else
          match platform with
          | Parse.Chain_platform chain ->
              let scope = Obs.Scope.fresh () in
              let o =
                Obs.Scope.with_scope scope (fun () ->
                    Online.create ~capacity chain ~deadline)
              in
              let session = t.next in
              t.next <- session + 1;
              Hashtbl.replace t.sessions session { online = o; scope };
              Ok
                (Json.Obj
                   [
                     ("session", Json.Int session);
                     ("deadline", Json.Int (Online.deadline o));
                     ("procs", Json.Int (Chain.length chain));
                   ])
          | _ ->
              Error
                (Api.error Api.Invalid_platform
                   "online sessions require a chain platform"))
    | Api.Online_submit { session; tasks } ->
        with_session t session @@ fun o ->
        let emit, drain = collector () in
        let placed = Online.submit ~emit o tasks in
        Ok
          (Json.Obj
             [
               ("session", Json.Int session);
               ("placed", Json.Int placed);
               ("rejected", Json.Int (tasks - placed));
               ("deltas", drain ());
             ])
    | Api.Online_advance { session; time } ->
        with_session t session @@ fun o ->
        let emit, drain = collector () in
        let frozen = Online.advance ~emit o ~time in
        Ok
          (Json.Obj
             [
               ("session", Json.Int session);
               ("frontier", Json.Int (Online.frontier o));
               ("frozen", Json.Int frozen);
               ("deltas", drain ());
             ])
    | Api.Online_extend { session; deadline } -> (
        with_session t session @@ fun o ->
        let emit, drain = collector () in
        match Online.extend ~emit o ~deadline with
        | Error msg -> Error (Api.error_of_solve_failure msg)
        | Ok displaced ->
            Ok
              (Json.Obj
                 [
                   ("session", Json.Int session);
                   ("deadline", Json.Int (Online.deadline o));
                   ("displaced", Json.Int displaced);
                   ("deltas", drain ());
                 ]))
    | Api.Online_degrade { session; at; work_factor } -> (
        with_session t session @@ fun o ->
        let emit, drain = collector () in
        match Online.degrade ~emit o ~at ~work_factor with
        | Error msg -> Error (Api.error_of_solve_failure msg)
        | Ok { Online.replaced; extended_by; deadline } ->
            Ok
              (Json.Obj
                 [
                   ("session", Json.Int session);
                   ("replaced", Json.Int replaced);
                   ("extended_by", Json.Int extended_by);
                   ("deadline", Json.Int deadline);
                   ("deltas", drain ());
                 ]))
    | Api.Online_plan { session } -> (
        with_session t session @@ fun o ->
        (* The same document [msts deadline --format=json] prints, prefixed
           with the session's live counters — cram tests cmp the two. *)
        let base =
          Api.json_of_reply
            (Api.Solved
               { plan = Online.plan o; deadline = Some (Online.deadline o) })
        in
        match base with
        | Json.Obj fields ->
            Ok
              (Json.Obj
                 (("session", Json.Int session)
                 :: ("frontier", Json.Int (Online.frontier o))
                 :: ("frozen", Json.Int (Online.frozen o))
                 :: ("rejected", Json.Int (Online.rejected o))
                 :: fields))
        | other -> Ok other)
    | Api.Online_close { session } ->
        with_session t session @@ fun o ->
        Hashtbl.remove t.sessions session;
        Ok
          (Json.Obj
             [
               ("session", Json.Int session);
               ("closed", Json.Bool true);
               ("placed", Json.Int (Online.placed o));
               ("rejected", Json.Int (Online.rejected o));
             ])
    | other ->
        Error
          (Api.error Api.Bad_request
             (Printf.sprintf "%s is not an online operation" (Api.op_name other)))
  with exn -> Error (Api.error_of_exn exn)
