(** Scripted online sessions under the discrete-event engine.

    The driver is the rendezvous between the anytime scheduler and the
    simulator: a script of timed actions (arrivals, deadline extensions,
    processor degradations) runs on {!Msts.Engine}'s clock; before each
    action the session's execution frontier is pulled up to the simulated
    time, freezing the placements execution has caught up with.  When a
    {!Msts.Trace} recorder is installed, every placement emits its
    transfer and compute events {e as it freezes} — so the recorded trace
    is exactly the executed (immutable) prefix, and the PR-6 invariant
    checker audits it like any other execution.  After the script drains,
    the clock runs out to the final deadline, freezing everything. *)

type action =
  | Submit of int  (** this many tasks arrive *)
  | Extend of int  (** grow the deadline to this date *)
  | Degrade of { at : int; work_factor : int }
      (** processor [at] slows; unfrozen tasks re-place *)

type event = { at : int; action : action }
(** One scripted action at an absolute simulated time ([at >= 0]). *)

type outcome = {
  session : Online.t;  (** the session, fully frozen — inspectable *)
  plan : Msts.Plan.t;  (** final plan (equals [frozen_plan] here) *)
  frozen_plan : Msts.Plan.t;  (** what actually executed *)
  placed : int;
  rejected : int;
  frozen : int;
  refusals : (int * string) list;
      (** refused extends/degrades, with the simulated time of each *)
}

val run :
  ?kernel:Msts.Solve.kernel ->
  ?capacity:int ->
  ?emit:(Online.delta -> unit) ->
  Msts.Chain.t ->
  deadline:int ->
  event list ->
  outcome
(** Execute a script.  Events may share an instant (applied in list
    order); refused control actions are collected, not raised.
    @raise Invalid_argument on an event before time 0. *)
