module Chain = Msts.Chain
module Incremental = Msts.Chain_incremental
module Schedule = Msts.Schedule
module Obs = Msts.Obs

type delta =
  | Placed of { task : int; proc : int; start : int; comms : int array }
  | Displaced of { task : int; proc : int; start : int; comms : int array }
  | Rejected of { task : int }
  | Frozen of { frontier : int; tasks : int }

type replan = { replaced : int; extended_by : int; deadline : int }

(* The construction places every new task strictly earlier on the timeline
   than all existing placements, so inside [inc] the frozen placements are
   exactly a suffix of construction order.  Frozen placements are copied
   out into [fz_*] the moment they freeze (their dates are then immutable
   truth); the copies left inside [inc] keep the hull/occupancy state
   exact until the next extension or replan rebuilds [inc] from the
   unfrozen prefix alone.  After such a rebuild the state no longer knows
   the frozen tasks, so [floor] rises to the last frozen activity
   ([barrier]): every later placement starts after all frozen activity has
   ended, which keeps the combined plan feasible by separation instead of
   by shared state. *)
type t = {
  kernel : Msts.Solve.kernel;
  capacity : int;
  mutable chain : Chain.t;
  mutable inc : Incremental.t;
  mutable ids : int array; (* ids.(i): arrival id of inc placement i *)
  mutable unfrozen : int; (* inc placements [unfrozen..placed) are frozen *)
  mutable frontier : int;
  mutable floor : int; (* min emission once the state went stale *)
  mutable barrier : int; (* last activity end among frozen placements *)
  mutable fz_entries : Schedule.entry array; (* increasing emission order *)
  mutable fz_ids : int array;
  mutable fz_count : int;
  mutable arrivals : int;
  mutable rejected : int;
}

let dummy_entry = { Schedule.proc = 1; start = 0; comms = [| 0 |] }

let create ?kernel ?(capacity = 0) chain ~deadline =
  if deadline < 0 then invalid_arg "Msts.Online.create: negative deadline";
  if capacity < 0 then invalid_arg "Msts.Online.create: negative capacity";
  let kernel = match kernel with Some k -> k | None -> Msts.Solve.kernel () in
  Obs.count "online.sessions";
  {
    kernel;
    capacity;
    chain;
    inc = Incremental.create ~kernel ~capacity chain ~horizon:deadline;
    ids = Array.make capacity 0;
    unfrozen = 0;
    frontier = 0;
    floor = 0;
    barrier = 0;
    fz_entries = [||];
    fz_ids = [||];
    fz_count = 0;
    arrivals = 0;
    rejected = 0;
  }

let chain t = t.chain
let deadline t = Incremental.horizon t.inc
let frontier t = t.frontier
let arrivals t = t.arrivals
let rejected t = t.rejected
let frozen t = t.fz_count
let placed t = t.fz_count + t.unfrozen

let frozen_entry t i =
  if i < 0 || i >= t.fz_count then
    invalid_arg "Msts.Online.frozen_entry: outside the frozen prefix";
  (t.fz_ids.(i), t.fz_entries.(i))

(* ---------- arrivals (the zero-allocation hot path) ---------- *)

let ensure_id_room t =
  let cap = Array.length t.ids in
  if Incremental.placed t.inc > cap then
    t.ids <- Array.append t.ids (Array.make (max 8 cap) 0)

let min_emission t = if t.floor > t.frontier then t.floor else t.frontier

let submit ?emit t n =
  if n < 0 then invalid_arg "Msts.Online.submit: negative arrival count";
  let observed = Obs.enabled () in
  if observed && n > 0 then Obs.count ~n "online.arrivals";
  let floor = min_emission t in
  let accepted = ref 0 in
  for _ = 1 to n do
    let id = t.arrivals + 1 in
    t.arrivals <- id;
    let t0 = if observed then Obs.now_us () else 0 in
    if Incremental.add_task_from t.inc ~min_emission:floor then begin
      ensure_id_room t;
      let i = Incremental.placed t.inc - 1 in
      t.ids.(i) <- id;
      t.unfrozen <- t.unfrozen + 1;
      incr accepted;
      if observed then Obs.record "online.place_us" (Obs.now_us () - t0);
      match emit with
      | None -> ()
      | Some f ->
          f
            (Placed
               {
                 task = id;
                 proc = Incremental.proc_at t.inc i;
                 start = Incremental.start_at t.inc i;
                 comms = Incremental.comms_at t.inc i;
               })
    end
    else begin
      t.rejected <- t.rejected + 1;
      match emit with None -> () | Some f -> f (Rejected { task = id })
    end
  done;
  if observed then begin
    if !accepted > 0 then Obs.count ~n:!accepted "online.placed";
    if n - !accepted > 0 then Obs.count ~n:(n - !accepted) "online.rejected"
  end;
  !accepted

(* ---------- freezing ---------- *)

let fz_push t ~id entry =
  let cap = Array.length t.fz_entries in
  if t.fz_count >= cap then begin
    let extra = max 8 cap in
    t.fz_entries <- Array.append t.fz_entries (Array.make extra dummy_entry);
    t.fz_ids <- Array.append t.fz_ids (Array.make extra 0)
  end;
  t.fz_entries.(t.fz_count) <- entry;
  t.fz_ids.(t.fz_count) <- id;
  t.fz_count <- t.fz_count + 1

let advance ?emit t ~time =
  if time > t.frontier then t.frontier <- time;
  let newly = ref 0 in
  (* Emission dates decrease along construction order, so placements
     freeze from the end of [inc]'s unfrozen prefix backward — which is
     increasing emission order, exactly the order [fz_entries] keeps. *)
  while
    t.unfrozen > 0
    && Incremental.emission_at t.inc (t.unfrozen - 1) < t.frontier
  do
    let i = t.unfrozen - 1 in
    let entry = Incremental.entry_at t.inc i in
    fz_push t ~id:t.ids.(i) entry;
    let finish = entry.Schedule.start + Chain.work t.chain entry.Schedule.proc in
    if finish > t.barrier then t.barrier <- finish;
    t.unfrozen <- i;
    incr newly
  done;
  if !newly > 0 then begin
    if Obs.enabled () then Obs.count ~n:!newly "online.frozen";
    match emit with
    | None -> ()
    | Some f -> f (Frozen { frontier = t.frontier; tasks = !newly })
  end;
  !newly

(* ---------- rebuilding the revisable suffix ---------- *)

(* Re-place the [m] unfrozen tasks from scratch on [chain] at [horizon],
   unconstrained ([min_int] floor: dates may go negative), then shift the
   candidate up by exactly the slack needed to clear [need].  Because the
   construction is shift-equivariant, this yields the optimal placement of
   [m] tasks in [[need, horizon + shift]]. *)
let rebuild t chain ~horizon ~need =
  let m = t.unfrozen in
  let cand =
    Incremental.create ~kernel:t.kernel
      ~capacity:(max t.capacity m)
      chain ~horizon
  in
  for _ = 1 to m do
    if not (Incremental.add_task_from cand ~min_emission:min_int) then
      invalid_arg "Msts.Online.rebuild: unconstrained placement refused"
  done;
  let shift =
    match Incremental.earliest_emission cand with
    | None -> 0
    | Some e -> if e < need then need - e else 0
  in
  if shift > 0 then Incremental.extend cand ~by:shift;
  (cand, shift)

(* Swap the candidate in.  The arrival ids of the unfrozen prefix carry
   over unchanged: tasks are identical, so the j-th unfrozen placement of
   the old construction corresponds to the j-th of the new one. *)
let adopt ?emit t cand =
  let m = t.unfrozen in
  t.inc <- cand;
  (* The state no longer knows the frozen tasks: placements from now on
     must clear their last activity. *)
  if t.barrier > t.floor then t.floor <- t.barrier;
  if m > 0 && Obs.enabled () then Obs.count ~n:m "online.displaced";
  (match emit with
  | None -> ()
  | Some f ->
      for i = 0 to m - 1 do
        f
          (Displaced
             {
               task = t.ids.(i);
               proc = Incremental.proc_at t.inc i;
               start = Incremental.start_at t.inc i;
               comms = Incremental.comms_at t.inc i;
             })
      done);
  m

let extend ?emit t ~deadline =
  let current = Incremental.horizon t.inc in
  if deadline < current then
    Error
      (Printf.sprintf
         "Msts.Online.extend: deadline must not shrink (%d < current %d)"
         deadline current)
  else if deadline = current then Ok 0
  else begin
    if Obs.enabled () then Obs.count "online.extends";
    if t.fz_count = 0 then begin
      (* Exact path: nothing is immutable, the whole construction shifts
         and stays byte-identical to a batch solve at the new deadline. *)
      Incremental.extend t.inc ~by:(deadline - current);
      Ok (adopt ?emit t t.inc)
    end
    else begin
      let need = max t.frontier (max t.floor t.barrier) in
      let cand, shift = rebuild t t.chain ~horizon:deadline ~need in
      if shift > 0 then
        Error
          (Printf.sprintf
             "Msts.Online.extend: %d does not clear the frozen prefix; \
              extend to at least %d"
             deadline (deadline + shift))
      else Ok (adopt ?emit t cand)
    end
  end

let degrade ?emit t ~at ~work_factor =
  let p = Chain.length t.chain in
  if at < 1 || at > p then
    Error
      (Printf.sprintf "Msts.Online.degrade: processor %d outside 1..%d" at p)
  else if work_factor < 1 then
    Error "Msts.Online.degrade: work_factor must be >= 1"
  else begin
    let committed = ref 0 in
    for i = 0 to t.fz_count - 1 do
      if t.fz_entries.(i).Schedule.proc = at then incr committed
    done;
    if !committed > 0 then
      Error
        (Printf.sprintf
           "Msts.Online.degrade: processor %d holds %d frozen placement(s)"
           at !committed)
    else begin
      let chain' = Chain.scale ~work_factor t.chain ~at in
      let need = max t.frontier (max t.floor t.barrier) in
      let horizon = Incremental.horizon t.inc in
      let cand, shift = rebuild t chain' ~horizon ~need in
      t.chain <- chain';
      if Obs.enabled () then Obs.count "online.replans";
      let replaced = adopt ?emit t cand in
      Ok
        {
          replaced;
          extended_by = shift;
          deadline = Incremental.horizon t.inc;
        }
    end
  end

(* ---------- snapshots ---------- *)

let schedule t =
  let m = t.unfrozen in
  let total = t.fz_count + m in
  (* Frozen prefix in increasing emission order, then the revisable suffix
     (reverse construction order); all frozen emissions precede all
     unfrozen ones, so the concatenation is emission order overall. *)
  Schedule.make t.chain
    (Array.init total (fun j ->
         if j < t.fz_count then t.fz_entries.(j)
         else Incremental.entry_at t.inc (m - 1 - (j - t.fz_count))))

let plan t = Msts.Plan.Chain (schedule t)

let frozen_schedule t =
  Schedule.make t.chain (Array.sub t.fz_entries 0 t.fz_count)
