(** Anytime chain scheduling: tasks arrive over time, the solver emits
    deltas, and the plan's past is immutable.

    A session wraps {!Msts.Chain_incremental}: the backward §3 construction
    places each new arrival {e earlier} on the timeline than everything
    placed before it, so the plan grows from the deadline toward time 0
    while execution consumes it from time 0 toward the deadline.  The
    session tracks the execution {e frontier}: placements whose first
    emission falls behind the frontier are {e frozen} (they have started;
    they can never be displaced), and new arrivals are only admitted at or
    after the frontier.  When the region between frontier and deadline
    fills up, arrivals are rejected until the deadline is {!extend}ed; a
    mid-run processor degradation ({!degrade}) re-places every not-yet-
    frozen task on the degraded chain, extending the deadline by exactly
    the slack the slower platform needs.

    Cost model: one arrival is a single O(p) kernel sweep and — once the
    session's buffers have warmed up (or were preallocated with
    [~capacity]) and no [emit] callback is installed — performs {e zero}
    minor-heap allocation.  Freezing, extension and degradation are O(k·p)
    in the affected placements and may allocate; they are rare control
    events, not the arrival hot path.  [BENCH_online.json] gates both
    properties.

    Telemetry: sessions count [online.sessions], [online.arrivals],
    [online.placed], [online.rejected], [online.frozen],
    [online.displaced], [online.extends] and [online.replans], and record
    the arrival-to-placement latency histogram [online.place_us]
    (docs/OBSERVABILITY.md). *)

type t

(** One plan change, in the order emitted.  [Placed]/[Displaced]/[Rejected]
    name tasks by their arrival number (1-based, assigned in submission
    order); dates are absolute simulated times. *)
type delta =
  | Placed of { task : int; proc : int; start : int; comms : int array }
      (** a new arrival was admitted at this position *)
  | Displaced of { task : int; proc : int; start : int; comms : int array }
      (** an unfrozen task moved (deadline extension or replan) *)
  | Rejected of { task : int }
      (** no feasible position between frontier and deadline; resubmit
          after {!extend} *)
  | Frozen of { frontier : int; tasks : int }
      (** the execution frontier advanced; [tasks] more placements are now
          immutable *)

type replan = { replaced : int; extended_by : int; deadline : int }
(** Outcome of an adopted {!degrade}: how many unfrozen tasks were
    re-placed, and how far (possibly 0) the deadline moved to fit them on
    the degraded platform. *)

val create :
  ?kernel:Msts.Solve.kernel -> ?capacity:int -> Msts.Chain.t -> deadline:int -> t
(** Open a session on [chain] with the given deadline.  [capacity]
    preallocates placement storage (see the cost model above).
    @raise Invalid_argument on a negative deadline or capacity. *)

val chain : t -> Msts.Chain.t
(** Current platform (reflects adopted degradations). *)

val deadline : t -> int
val frontier : t -> int

val arrivals : t -> int
(** Tasks submitted so far (accepted + rejected). *)

val placed : t -> int
(** Tasks currently in the plan (frozen + revisable). *)

val rejected : t -> int

val frozen : t -> int
(** Placements behind the frontier — the immutable prefix. *)

val submit : ?emit:(delta -> unit) -> t -> int -> int
(** [submit t n] feeds [n] arrivals, one at a time, emitting a [Placed] or
    [Rejected] delta each; returns how many were placed.  Arrivals are
    placed no earlier than the frontier (and no earlier than history made
    immutable by past extensions), so the frozen prefix is never
    re-entered.  @raise Invalid_argument when [n < 0]. *)

val advance : ?emit:(delta -> unit) -> t -> time:int -> int
(** Move the execution frontier to [time] (monotone: earlier times are
    no-ops).  Placements whose first emission now lies behind the frontier
    freeze, newest-emission last, and a single [Frozen] delta summarises
    them; returns the newly frozen count. *)

val extend : ?emit:(delta -> unit) -> t -> deadline:int -> (int, string) result
(** Grow the deadline.  With nothing frozen this is an exact uniform shift
    of the whole construction (the sweep is shift-equivariant), so the
    session stays byte-identical to a batch solve at the new deadline.
    With frozen placements the revisable suffix is rebuilt at the new
    horizon and must clear the frozen prefix's last activity; an extension
    too small to do so is refused ([Error], message names the minimal
    acceptable deadline).  Every surviving placement moves: one
    [Displaced] delta each; returns how many.  Shrinking is refused. *)

val degrade :
  ?emit:(delta -> unit) ->
  t -> at:int -> work_factor:int -> (replan, string) result
(** Processor [at] slows by [work_factor] from the current frontier on.
    Every unfrozen task is re-placed on the degraded chain — the online
    rendezvous with the fault/replan machinery — and the deadline is
    extended by exactly the slack needed (possibly 0) for the new suffix
    to clear the frontier and the frozen prefix.  Emits [Displaced]
    deltas.  Refused ([Error]) when [at] holds frozen placements (their
    execution is already committed) or the arguments are invalid. *)

val schedule : t -> Msts.Schedule.t
(** Snapshot of the whole current plan — frozen prefix then revisable
    suffix, tasks renumbered 1.. in emission order.  O(placed). *)

val plan : t -> Msts.Plan.t
(** {!schedule} wrapped as a plan (for [Plan.equal], [Plan.check],
    [Trace.of_plan]). *)

val frozen_schedule : t -> Msts.Schedule.t
(** The frozen prefix alone, as its own schedule — what has actually been
    executed; the object the trace invariants audit. *)

val frozen_entry : t -> int -> int * Msts.Schedule.entry
(** [frozen_entry t i] (0-based, [i < frozen t]): the arrival id and
    placement of the [i]-th frozen task, in emission order.  Lets
    executors stream trace events as the frontier advances.
    @raise Invalid_argument outside the frozen prefix. *)
