module Chain = Msts.Chain
module Schedule = Msts.Schedule
module Engine = Msts.Engine
module Trace = Msts.Trace

type action =
  | Submit of int
  | Extend of int
  | Degrade of { at : int; work_factor : int }

type event = { at : int; action : action }

type outcome = {
  session : Online.t;
  plan : Msts.Plan.t;
  frozen_plan : Msts.Plan.t;
  placed : int;
  rejected : int;
  frozen : int;
  refusals : (int * string) list;
}

(* The planned truth of one frozen placement, as the events the simulator
   would record executing it: the chain is leg 1 of the degenerate spider,
   transfers walk hops 1..proc, the computation runs at depth proc.  Frozen
   tasks never sit on a processor degraded later (Online.degrade refuses)
   and degradations scale work only, so the current chain's durations are
   exact for every already-frozen placement. *)
let emit_frozen chain ~task (e : Schedule.entry) =
  let leg = 1 in
  for hop = 1 to e.Schedule.proc do
    let c = Chain.latency chain hop in
    let start = e.Schedule.comms.(hop - 1) in
    Trace.emit ~time:start ~task (Trace.Start (Trace.Transfer { leg; hop }));
    Trace.emit ~time:(start + c) ~task
      (Trace.Finish (Trace.Transfer { leg; hop }))
  done;
  let depth = e.Schedule.proc in
  let w = Chain.work chain depth in
  Trace.emit ~time:e.Schedule.start ~task
    (Trace.Start (Trace.Compute { leg; depth }));
  Trace.emit ~time:(e.Schedule.start + w) ~task
    (Trace.Finish (Trace.Compute { leg; depth }))

let run ?kernel ?capacity ?emit chain ~deadline events =
  List.iter
    (fun { at; _ } ->
      if at < 0 then invalid_arg "Msts.Online.Driver.run: event before time 0")
    events;
  let o = Online.create ?kernel ?capacity chain ~deadline in
  let eng = Engine.create () in
  let seen = ref 0 in
  let refusals = ref [] in
  (* Pull the frontier up to the simulated clock, then stream the trace of
     whatever just froze (arrival ids name the tasks). *)
  let sync time =
    ignore (Online.advance ?emit o ~time);
    if Trace.recording () then begin
      let fz = Online.frozen o in
      for i = !seen to fz - 1 do
        let id, entry = Online.frozen_entry o i in
        emit_frozen (Online.chain o) ~task:id entry
      done;
      seen := fz
    end
  in
  let refuse msg = refusals := (Engine.now eng, msg) :: !refusals in
  List.iter
    (fun { at; action } ->
      Engine.schedule_at eng at (fun () ->
          sync (Engine.now eng);
          match action with
          | Submit n -> ignore (Online.submit ?emit o n)
          | Extend deadline -> (
              match Online.extend ?emit o ~deadline with
              | Ok _ -> ()
              | Error msg -> refuse msg)
          | Degrade { at; work_factor } -> (
              match Online.degrade ?emit o ~at ~work_factor with
              | Ok _ -> ()
              | Error msg -> refuse msg)))
    events;
  Engine.run eng;
  (* Run the clock out to the (possibly extended) deadline: every placement
     ends up frozen, so the final plan and the executed prefix coincide. *)
  sync (Online.deadline o);
  {
    session = o;
    plan = Online.plan o;
    frozen_plan = Msts.Plan.Chain (Online.frozen_schedule o);
    placed = Online.placed o;
    rejected = Online.rejected o;
    frozen = Online.frozen o;
    refusals = List.rev !refusals;
  }
