module Obs = Msts_obs.Obs
module Spider = Msts_platform.Spider
module Chain = Msts_platform.Chain
module Spider_schedule = Msts_schedule.Spider_schedule
module Plan = Msts_schedule.Plan

type op =
  | Transfer of { leg : int; hop : int }
  | Compute of { leg : int; depth : int }

type resource =
  | Port
  | Link of { leg : int; hop : int }
  | Cpu of { leg : int; depth : int }

let resource_of_op = function
  | Transfer { hop = 1; _ } -> Port
  | Transfer { leg; hop } -> Link { leg; hop }
  | Compute { leg; depth } -> Cpu { leg; depth }

type kind = Start of op | Finish of op | Abort of op | Return

type event = { time : int; seq : int; task : int; kind : kind }

let op_to_string = function
  | Transfer { leg; hop = 1 } -> Printf.sprintf "emission (leg %d, hop 1)" leg
  | Transfer { leg; hop } -> Printf.sprintf "transfer into node %d of leg %d" hop leg
  | Compute { leg; depth } -> Printf.sprintf "execution on node %d of leg %d" depth leg

let resource_to_string = function
  | Port -> "master port"
  | Link { leg; hop } -> Printf.sprintf "link %d of leg %d" hop leg
  | Cpu { leg; depth } -> Printf.sprintf "processor %d of leg %d" depth leg

let event_to_string e =
  let what =
    match e.kind with
    | Start op -> "starts " ^ op_to_string op
    | Finish op -> "finishes " ^ op_to_string op
    | Abort op -> "aborts " ^ op_to_string op
    | Return -> "returns to the master"
  in
  Printf.sprintf "t=%d #%d task %d %s" e.time e.seq e.task what

(* Canonical order: time, then finishes before everything else at the same
   instant (busy intervals are half-open), then emission order.  Starts,
   aborts and returns keep their relative emission order: fault handling
   legitimately grants and aborts at the same instant. *)
let rank e = match e.kind with Finish _ -> 0 | Start _ | Abort _ | Return -> 1

let compare_events a b =
  let c = Int.compare a.time b.time in
  if c <> 0 then c
  else
    let c = Int.compare (rank a) (rank b) in
    if c <> 0 then c else Int.compare a.seq b.seq

type t = event list

let of_events evs = List.stable_sort compare_events evs
let events t = t
let length = List.length
let empty = []

let time_span = function
  | [] -> None
  | first :: _ as evs ->
      let last = List.fold_left (fun _ e -> e.time) first.time evs in
      Some (first.time, last)

let concat a b =
  match (time_span a, time_span b) with
  | None, _ -> b
  | _, None -> a
  | Some (_, a_last), Some (b_first, _) ->
      if a_last > b_first then
        invalid_arg
          (Printf.sprintf
             "Msts.Trace.concat: segments overlap in time (first ends at %d, \
              second starts at %d)"
             a_last b_first)
      else of_events (a @ b)

let split t ~at = List.partition (fun e -> e.time < at) t

type selector = On_resource of resource | On_task of int | On_leg of int

let selects sel e =
  match (sel, e.kind) with
  | On_task i, _ -> e.task = i
  | _, Return -> false
  | (On_resource r, (Start op | Finish op | Abort op)) -> resource_of_op op = r
  | (On_leg l, (Start op | Finish op | Abort op)) -> (
      match op with
      | Transfer { leg; _ } | Compute { leg; _ } -> leg = l)

let project t sel = List.filter (selects sel) t

let to_string t = String.concat "\n" (List.map event_to_string t)

(* ---------- recording ---------- *)

module Recorder = struct
  type t = { mutable rev : event list; mutable next_seq : int }

  let create () = { rev = []; next_seq = 0 }
  let event_count t = t.next_seq
end

let the_recorder : Recorder.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_recorder r f =
  let saved = Domain.DLS.get the_recorder in
  Domain.DLS.set the_recorder (Some r);
  Fun.protect ~finally:(fun () -> Domain.DLS.set the_recorder saved) f

let recording () = Option.is_some (Domain.DLS.get the_recorder)

let emit ~time ~task kind =
  match Domain.DLS.get the_recorder with
  | None -> ()
  | Some r ->
      r.rev <- { time; seq = r.next_seq; task; kind } :: r.rev;
      r.next_seq <- r.next_seq + 1;
      Obs.count "trace.events"

let recorded (r : Recorder.t) = of_events (List.rev r.rev)

(* ---------- planned traces ---------- *)

let of_spider_schedule sched =
  let spider = Spider_schedule.spider sched in
  let seq = ref 0 in
  let acc = ref [] in
  let push time task kind =
    acc := { time; seq = !seq; task; kind } :: !acc;
    incr seq
  in
  Array.iteri
    (fun idx (e : Spider_schedule.entry) ->
      let task = idx + 1 in
      let { Spider.leg; depth } = e.address in
      let chain = Spider.leg_chain spider leg in
      for hop = 1 to depth do
        let c = Chain.latency chain hop in
        let start = e.comms.(hop - 1) in
        push start task (Start (Transfer { leg; hop }));
        push (start + c) task (Finish (Transfer { leg; hop }))
      done;
      let w = Chain.work chain depth in
      push e.start task (Start (Compute { leg; depth }));
      push (e.start + w) task (Finish (Compute { leg; depth })))
    (Spider_schedule.entries sched);
  of_events !acc

let of_chain_schedule sched =
  of_spider_schedule (Spider_schedule.of_chain_schedule sched)

let of_plan = function
  | Plan.Spider p -> of_spider_schedule p
  | Plan.Chain p -> of_chain_schedule p

(* ---------- invariants ---------- *)

type violation = { invariant : string; message : string; witness : event list }

let explain v = Printf.sprintf "%s violated: %s" v.invariant v.message

module Check = struct
  type rinfo = { mutable open_ops : event list (* newest first *) }

  type tinfo = {
    mutable pos : int option;  (* hops fully received; 0 = at the master *)
    mutable tleg : int option;  (* the leg holding the task when pos >= 1 *)
    mutable in_flight : event list;  (* open Start events, newest first *)
    mutable completed : bool;
    mutable last_progress : event option;  (* what established [pos] *)
  }

  type state = {
    strict : bool;
    resources : (resource, rinfo) Hashtbl.t;
    tasks : (int, tinfo) Hashtbl.t;
  }

  let make strict =
    { strict; resources = Hashtbl.create 16; tasks = Hashtbl.create 16 }

  let strict () = make true
  let unknown () = make false

  let rinfo st r =
    match Hashtbl.find_opt st.resources r with
    | Some i -> i
    | None ->
        let i = { open_ops = [] } in
        Hashtbl.add st.resources r i;
        i

  let tinfo st task =
    match Hashtbl.find_opt st.tasks task with
    | Some i -> i
    | None ->
        let i =
          {
            pos = (if st.strict then Some 0 else None);
            tleg = None;
            in_flight = [];
            completed = false;
            last_progress = None;
          }
        in
        Hashtbl.add st.tasks task i;
        i

  let exclusivity_name = function
    | Port -> "one-port"
    | Link _ -> "link-exclusive"
    | Cpu _ -> "cpu-exclusive"

  (* Remove the open Start matching [task]/[op]; [None] when absent. *)
  let take_open task op lst =
    let rec go acc = function
      | [] -> None
      | e :: rest -> (
          match e.kind with
          | Start o when e.task = task && o = op ->
              Some (e, List.rev_append acc rest)
          | _ -> go (e :: acc) rest)
    in
    go [] lst

  let step st ev =
    let faults = ref [] in
    let flag invariant witness fmt =
      Printf.ksprintf
        (fun message -> faults := { invariant; message; witness } :: !faults)
        fmt
    in
    (match ev.kind with
    | Start op ->
        (* resource exclusivity: Definition 1 properties 3 and 4, plus the
           one-port rule across legs *)
        let r = resource_of_op op in
        let ri = rinfo st r in
        (match ri.open_ops with
        | prior :: _ ->
            flag (exclusivity_name r) [ prior; ev ]
              "tasks %d and %d overlap on the %s: %s while %s is still in \
               flight"
              prior.task ev.task (resource_to_string r) (event_to_string ev)
              (event_to_string prior)
        | [] -> ());
        ri.open_ops <- ev :: ri.open_ops;
        (* task progress: Definition 1 properties 1 and 2 *)
        let ti = tinfo st ev.task in
        if ti.completed then
          flag "task-serial" [ ev ] "task %d acts after completing: %s" ev.task
            (event_to_string ev);
        (match ti.in_flight with
        | prior :: _ ->
            flag "task-serial" [ prior; ev ]
              "task %d starts a second operation while one is in flight: %s \
               overlaps %s"
              ev.task (event_to_string ev) (event_to_string prior)
        | [] -> ());
        let need, leg, what =
          match op with
          | Transfer { leg; hop } ->
              ( hop - 1,
                leg,
                if hop = 1 then "is emitted" else "is re-emitted (forwarded)" )
          | Compute { leg; depth } -> (depth, leg, "starts executing")
        in
        (match ti.pos with
        | None -> ti.pos <- Some need
        | Some p when p <> need ->
            let basis =
              match ti.last_progress with
              | Some e -> [ e; ev ]
              | None -> [ ev ]
            in
            flag "store-and-forward" basis
              "task %d %s before being fully received: it has reached node %d \
               but %s requires node %d"
              ev.task what p (event_to_string ev) need;
            ti.pos <- Some need
        | Some _ -> ());
        (if need >= 1 then
           match ti.tleg with
           | Some l when l <> leg ->
               flag "store-and-forward"
                 (match ti.last_progress with
                 | Some e -> [ e; ev ]
                 | None -> [ ev ])
                 "task %d jumps from leg %d to leg %d without returning to \
                  the master: %s"
                 ev.task l leg (event_to_string ev)
           | _ -> ti.tleg <- Some leg);
        ti.in_flight <- ev :: ti.in_flight
    | Finish op | Abort op -> (
        let aborted = match ev.kind with Abort _ -> true | _ -> false in
        let r = resource_of_op op in
        let ri = rinfo st r in
        (match take_open ev.task op ri.open_ops with
        | Some (_, rest) -> ri.open_ops <- rest
        | None ->
            if st.strict then
              flag "pairing" [ ev ] "%s on the %s, but no matching start is \
                                     open"
                (event_to_string ev) (resource_to_string r));
        let ti = tinfo st ev.task in
        (match take_open ev.task op ti.in_flight with
        | Some (_, rest) -> ti.in_flight <- rest
        | None -> () (* the resource check above already flagged it *));
        if not aborted then
          match op with
          | Transfer { leg; hop } ->
              ti.pos <- Some hop;
              ti.tleg <- Some leg;
              ti.last_progress <- Some ev
          | Compute _ ->
              ti.completed <- true;
              ti.last_progress <- Some ev)
    | Return ->
        let ti = tinfo st ev.task in
        (match ti.in_flight with
        | prior :: _ ->
            flag "task-serial" [ prior; ev ]
              "task %d returns to the master with an operation in flight: %s"
              ev.task (event_to_string prior)
        | [] -> ());
        ti.pos <- Some 0;
        ti.tleg <- None;
        ti.in_flight <- [];
        ti.last_progress <- Some ev);
    List.rev !faults

  let segment st t =
    Obs.count "trace.segments_checked";
    List.concat_map (step st) t
end

let check ?(require_nonnegative = false) t =
  Obs.span "trace.check" ~args:[ ("events", string_of_int (List.length t)) ]
  @@ fun () ->
  let negatives =
    if require_nonnegative then
      List.filter_map
        (fun e ->
          if e.time < 0 then
            Some
              {
                invariant = "negative-date";
                message =
                  Printf.sprintf "event before time 0: %s" (event_to_string e);
                witness = [ e ];
              }
          else None)
        t
    else []
  in
  let faults = negatives @ Check.segment (Check.strict ()) t in
  if faults <> [] then Obs.count ~n:(List.length faults) "trace.violations";
  faults

let check_segment t = Check.segment (Check.unknown ()) t

let localize t v =
  match v.witness with
  | [] -> empty
  | first :: _ ->
      let sel =
        let by_resource op = On_resource (resource_of_op op) in
        match v.invariant with
        | "one-port" | "link-exclusive" | "cpu-exclusive" | "pairing" -> (
            match first.kind with
            | Start op | Finish op | Abort op -> by_resource op
            | Return -> On_task first.task)
        | _ -> On_task (List.nth v.witness (List.length v.witness - 1)).task
      in
      let proj = project t sel in
      let key e = (e.time, e.seq) in
      let keys = List.map key v.witness in
      let lo = List.fold_left min (List.hd keys) (List.tl keys) in
      let hi = List.fold_left max (List.hd keys) (List.tl keys) in
      List.filter (fun e -> key e >= lo && key e <= hi) proj

let report t = function
  | [] -> "all invariants hold"
  | faults ->
      let one v =
        let seg = localize t v in
        let seg_txt =
          if seg = [] then "  (no localizable segment)"
          else
            String.concat "\n"
              (List.map (fun e -> "  | " ^ event_to_string e) seg)
        in
        explain v ^ "\n" ^ seg_txt
      in
      Printf.sprintf "%d invariant violation(s):\n%s" (List.length faults)
        (String.concat "\n" (List.map one faults))
