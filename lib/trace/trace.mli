(** Typed execution traces and their segment algebra.

    A trace is the event log of one execution: every transfer and every
    computation contributes a [Start]/[Finish] pair on a named resource
    (the master's port, one link, one processor), fault handling adds
    [Abort] (an in-flight operation cut short) and [Return] (a task handed
    back to the master after a crash).  Traces come from two sources:

    - {e recorded}: install a {!Recorder} with {!with_recorder} and run any
      [Netsim] executor — eager, bounded, pull, or the fault-injection
      paths — inside the callback; the simulator emits events as they are
      granted, completed and aborted.
    - {e planned}: {!of_spider_schedule} / {!of_plan} expand a schedule's
      dates into the trace it promises — the bridge that lets the same
      invariant checker audit plans and executions alike.

    Over traces sits a small segment algebra ({!split}, {!concat},
    {!project}) in the style of trace-based separation proofs: the model's
    safety properties are phrased as {e segment-local} state machines
    ({!Check}) that thread an explicit state across segment boundaries, so
    checking a whole trace, checking its split halves in sequence, and
    checking a projection onto one resource or task all agree.  The
    invariant catalogue (one-port exclusivity, per-resource exclusivity,
    store-and-forward ordering, task serialization) restates the four
    properties of the paper's Definition 1 — on planned traces the verdict
    coincides with [Feasibility.check], which the test suite enforces
    differentially; see [docs/VERIFICATION.md]. *)

(** {1 Events} *)

type op =
  | Transfer of { leg : int; hop : int }
      (** the transfer into node [hop] of [leg]; [hop = 1] goes through the
          master's port *)
  | Compute of { leg : int; depth : int }  (** execution on one processor *)

type resource =
  | Port  (** the master's single outgoing port (every hop-1 transfer) *)
  | Link of { leg : int; hop : int }  (** link into node [hop], [hop >= 2] *)
  | Cpu of { leg : int; depth : int }

val resource_of_op : op -> resource
(** Hop-1 transfers map to {!Port}: the master's port {e is} the first link
    of every leg, so its exclusivity subsumes theirs. *)

type kind =
  | Start of op
  | Finish of op
  | Abort of op  (** cut short by a drop or crash; no progress made *)
  | Return  (** the task is back at the master and restarts from scratch *)

type event = { time : int; seq : int; task : int; kind : kind }
(** [seq] breaks ties between same-instant events; recorders assign it in
    emission order, {!of_events} preserves it. *)

val op_to_string : op -> string
val resource_to_string : resource -> string
val event_to_string : event -> string

(** {1 Segments} *)

type t
(** A trace segment: events in canonical order — by time, then
    finishes-before-starts (busy intervals are half-open, so an operation
    ending at [t] precedes one starting at [t]), then [seq]. *)

val of_events : event list -> t
val events : t -> event list
val length : t -> int

val time_span : t -> (int * int) option
(** First and last event times; [None] on the empty segment. *)

val empty : t

val concat : t -> t -> t
(** Splice two segments, first then second.
    @raise Invalid_argument if the first extends past the start of the
    second (segments may share their boundary instant). *)

val split : t -> at:int -> t * t
(** Cut at a time boundary: events strictly before [at], events at or
    after.  [concat (fst (split t ~at)) (snd (split t ~at))] is [t]. *)

type selector =
  | On_resource of resource
  | On_task of int
  | On_leg of int  (** every transfer and computation on one leg *)

val project : t -> selector -> t
(** The sub-segment a selector sees, order preserved.  Checking a
    projection with {!Check.unknown} is how violations are localized:
    exclusivity lives in [On_resource] projections, store-and-forward in
    [On_task] ones. *)

val to_string : t -> string
(** One event per line. *)

(** {1 Recording} *)

module Recorder : sig
  type t

  val create : unit -> t
  val event_count : t -> int
end

val with_recorder : Recorder.t -> (unit -> 'a) -> 'a
(** Route every {!emit} in the callback (simulator instrumentation) into
    the recorder.  Like the [Obs] sink the hook is domain-local; nesting
    restores the previous recorder on exit. *)

val recording : unit -> bool
(** Whether a recorder is installed on this domain — lets instrumentation
    skip work (e.g. scheduling a completion callback) when nobody
    listens. *)

val emit : time:int -> task:int -> kind -> unit
(** Append one event to the installed recorder; a no-op without one.
    Counts [trace.events]. *)

val recorded : Recorder.t -> t
(** The trace recorded so far, in canonical order. *)

(** {1 Planned traces} *)

val of_spider_schedule : Msts_schedule.Spider_schedule.t -> t
(** The trace a schedule promises: each task's emissions at its
    communication dates, each execution at its start date, durations from
    the platform.  Feasible schedule ⟺ clean trace ({!check}). *)

val of_chain_schedule : Msts_schedule.Schedule.t -> t

val of_plan : Msts_schedule.Plan.t -> t

(** {1 Invariants} *)

type violation = {
  invariant : string;
      (** which rule broke: ["one-port"], ["link-exclusive"],
          ["cpu-exclusive"] , ["store-and-forward"], ["task-serial"],
          ["pairing"] or ["negative-date"] *)
  message : string;  (** human-readable, names tasks, resource and times *)
  witness : event list;  (** the offending events, in trace order *)
}

val explain : violation -> string

module Check : sig
  type state
  (** The threaded precondition of a segment: per-resource open operations
      and per-task progress (hops received, operation in flight). *)

  val strict : unit -> state
  (** The initial state of a complete execution: all resources free, every
      task at the master.  Unmatched finishes are violations. *)

  val unknown : unit -> state
  (** The agnostic precondition for a segment cut out of a larger trace:
      first contact with a resource or task {e infers} its state instead of
      constraining it, so only contradictions within the segment are
      flagged. *)

  val segment : state -> t -> violation list
  (** Run the invariant machines over one segment, mutating [state] so the
      next segment continues where this one stopped —
      [segment st (concat a b) = segment st a @ segment st b].  Counts
      [trace.segments_checked]. *)
end

val check : ?require_nonnegative:bool -> t -> violation list
(** Whole-trace audit from {!Check.strict}: one-port exclusivity at the
    master, per-link and per-processor exclusivity, store-and-forward
    ordering, task serialization, start/finish pairing — Definition 1
    restated on events.  [require_nonnegative] (default [false]) also
    flags events dated before time 0.  Runs under the [trace.check] span;
    counts [trace.violations] when any are found.  [[]] = safe. *)

val check_segment : t -> violation list
(** {!Check.segment} from {!Check.unknown} — audit a segment in
    isolation. *)

val localize : t -> violation -> t
(** The minimal sub-segment exhibiting a violation: project onto the
    violated resource (exclusivity) or task (ordering), then cut down to
    the window spanned by the witness events.  For any violation found by
    {!check}, re-checking the localized segment with {!check_segment}
    reproduces it whenever the witness carries the establishing event
    (exclusivity and serialization violations always do). *)

val report : t -> violation list -> string
(** Human-readable audit report: each violation with its localized
    segment; ["all invariants hold"] on []. *)
