module Parse = Msts_platform.Parse
module Spider = Msts_platform.Spider
module Tree = Msts_platform.Tree
module Plan = Msts_schedule.Plan
module Obs = Msts_obs.Obs

type problem = Msts_pool.Batch.request = {
  platform : Parse.platform;
  tasks : int option;
  deadline : int option;
}

let problem ?tasks ?deadline platform = { platform; tasks; deadline }

type kernel = Msts_chain.Kernel.t = Fast | Reference

let set_kernel = Msts_chain.Kernel.set_default
let kernel = Msts_chain.Kernel.default
let kernel_to_string = Msts_chain.Kernel.to_string
let kernel_of_string = Msts_chain.Kernel.of_string

let as_spider = function
  | Parse.Chain_platform chain -> Ok (Spider.of_chain chain)
  | Parse.Fork_platform fork -> Ok (Spider.of_fork fork)
  | Parse.Spider_platform spider -> Ok spider
  | Parse.Tree_platform tree -> (
      match Tree.to_spider tree with
      | Some spider -> Ok spider
      | None ->
          Error
            "this tree branches below the master; use the tree cover \
             heuristics instead")

let solve { platform; tasks; deadline } =
  match (tasks, deadline) with
  | None, None -> Error "nothing to solve: set a task count or a deadline"
  | Some n, _ when n < 0 -> Error "negative task count"
  | _, Some d when d < 0 -> Error "negative deadline"
  | _ -> (
      Obs.span "solve" @@ fun () ->
      match platform with
      | Parse.Chain_platform chain ->
          Ok
            (Plan.Chain
               (match (tasks, deadline) with
               | Some n, None -> Msts_chain.Algorithm.schedule chain n
               | None, Some d -> Msts_chain.Deadline.schedule chain ~deadline:d
               | Some n, Some d ->
                   Msts_chain.Deadline.schedule ~max_tasks:n chain ~deadline:d
               | None, None -> assert false))
      | platform -> (
          match as_spider platform with
          | Error msg -> Error msg
          | Ok spider ->
              Ok
                (Plan.Spider
                   (match (tasks, deadline) with
                   | Some n, None -> Msts_spider.Algorithm.schedule_tasks spider n
                   | None, Some d -> Msts_spider.Algorithm.schedule spider ~deadline:d
                   | Some n, Some d ->
                       Msts_spider.Algorithm.schedule ~budget:n spider ~deadline:d
                   | None, None -> assert false))))

let solve_exn p =
  match solve p with
  | Ok plan -> plan
  | Error msg -> invalid_arg ("Solve.solve: " ^ msg)

let solve_batch ?pool ?jobs ?cache problems =
  fst (Msts_pool.Batch.run ?pool ?jobs ?cache ~solve problems)
