(** Master-Slave Task Scheduling — umbrella module.

    Reproduction of {e "Master-slave Tasking on Heterogeneous Processors"}
    (Pierre-François Dutot, IPPS 2003): optimal scheduling of independent
    identical tasks on heterogeneous chains and spiders under the one-port,
    store-and-forward model.

    The sub-libraries remain directly usable; this module only collects the
    public entry points under one namespace:

    {ul
    {- the unified facade: {!Solve} (one problem record, one {!Plan});}
    {- multicore batch solving: {!Pool} (domain pool, sharded queue) and
       {!Batch} (LRU solve cache, deterministic fan-out), surfaced as
       {!Solve.solve_batch};}
    {- platform descriptions: {!Chain}, {!Fork}, {!Spider}, {!Tree},
       {!Generator}, {!Platform_format}, {!Dot};}
    {- schedules and their audit: {!Comm_vector}, {!Schedule},
       {!Spider_schedule}, {!Feasibility}, {!Intervals}, {!Gantt}, {!Svg};}
    {- the paper's algorithms: {!Chain_algorithm}, {!Chain_deadline},
       {!Chain_lemmas}, {!Chain_trace}, {!Fork_expansion}, {!Fork_allocator},
       {!Fork_builder}, {!Spider_transform}, {!Spider_algorithm};}
    {- oracles and baselines: {!Asap}, {!Brute_force}, {!List_sched},
       {!Bounds}, {!Steady_state};}
    {- execution substrate: {!Engine}, {!Resource}, {!Netsim};}
    {- observability: {!Obs} (spans, counters, Chrome traces), {!Json};}
    {- utilities: {!Prng}, {!Heap}, {!Stats}, {!Table}, {!Intx}.} } *)

(* The unified facade: one problem record in, one polymorphic plan out. *)
module Solve = Solve

(* The versioned, typed request API: one wire format and one dispatcher
   shared by the CLI subcommands, the [msts serve] daemon and programmatic
   callers (docs/API.md). *)
module Api = Api

(* Multicore batch solving: a fixed-size domain pool with a sharded work
   queue, and the batch driver with its shared LRU solve cache. *)
module Pool = Msts_pool.Pool
module Batch = Msts_pool.Batch

(* Platforms *)
module Chain = Msts_platform.Chain
module Fork = Msts_platform.Fork
module Spider = Msts_platform.Spider
module Tree = Msts_platform.Tree
module Generator = Msts_platform.Generator
module Platform_format = Msts_platform.Parse
module Dot = Msts_platform.Dot

(* Schedules *)
module Comm_vector = Msts_schedule.Comm_vector
module Schedule = Msts_schedule.Schedule
module Spider_schedule = Msts_schedule.Spider_schedule
module Feasibility = Msts_schedule.Feasibility
module Intervals = Msts_schedule.Intervals
module Gantt = Msts_schedule.Gantt
module Svg = Msts_schedule.Svg
module Serial = Msts_schedule.Serial
module Metrics = Msts_schedule.Metrics
module Plan = Msts_schedule.Plan

(* The paper's algorithms *)
module Chain_algorithm = Msts_chain.Algorithm
module Chain_kernel = Msts_chain.Kernel
module Chain_deadline = Msts_chain.Deadline
module Chain_incremental = Msts_chain.Incremental
module Chain_pseudocode = Msts_chain.Pseudocode
module Chain_analysis = Msts_chain.Analysis
module Chain_lemmas = Msts_chain.Lemmas
module Chain_trace = Msts_chain.Trace
module Fork_expansion = Msts_fork.Expansion
module Fork_allocator = Msts_fork.Allocator
module Fork_builder = Msts_fork.Builder
module Spider_transform = Msts_spider.Transform
module Spider_algorithm = Msts_spider.Algorithm
module Spider_trace = Msts_spider.Trace
module Spider_analysis = Msts_spider.Analysis

(* Tree extension (the paper's stated future work) *)
module Tree_flat = Msts_tree.Flat
module Tree_schedule = Msts_tree.Tree_schedule
module Tree_asap = Msts_tree.Asap
module Tree_heuristics = Msts_tree.Heuristics
module Tree_search = Msts_tree.Search
module Tree_steady = Msts_tree.Steady

(* Oracles and baselines *)
module Asap = Msts_baseline.Asap
module Brute_force = Msts_baseline.Brute_force
module List_sched = Msts_baseline.List_sched
module Local_search = Msts_baseline.Local_search
module Bounds = Msts_baseline.Bounds
module Steady_state = Msts_baseline.Steady_state

(* Execution substrate *)
module Engine = Msts_sim.Engine
module Resource = Msts_sim.Resource
module Netsim = Msts_sim.Netsim
module Fault = Msts_sim.Fault
module Replan = Msts_sim.Replan

(* Typed execution traces, their segment algebra and the compositional
   invariant checker over them (docs/VERIFICATION.md). *)
module Trace = Msts_trace.Trace

(* Observability: spans, counters, histograms, request scopes, sinks,
   Chrome traces; Json doubles as the shared encoder behind every
   [--format=json] CLI output.  Report folds an executed schedule into
   per-resource utilization; Prometheus renders counters/histograms as a
   text exposition (the [msts serve] metrics endpoint). *)
module Obs = struct
  include Msts_obs.Obs
  module Report = Msts_sim.Report
  module Prometheus = Msts_obs.Prometheus
end

module Json = Msts_obs.Json

(* Utilities *)
module Prng = Msts_util.Prng
module Heap = Msts_util.Heap
module Stats = Msts_util.Stats
module Table = Msts_util.Table
module Intx = Msts_util.Intx
module Lru = Msts_util.Lru
