(** The unified solver facade.

    One problem record in — a platform, an optional task count, an optional
    deadline — one polymorphic {!Msts_schedule.Plan.t} out.  Dispatch to
    the paper's algorithms happens internally:

    - chains get the §3 backward construction (or its §4 deadline variant);
    - forks, spiders and master-branching-only trees are promoted to
      spiders and get the §6/§7 pipeline;
    - a tree that branches below the master is rejected (use the
      [Msts.Tree_heuristics] covers instead).

    The CLI's [schedule], [deadline] and [metrics] subcommands go through
    this facade; calling the per-shape algorithms directly from
    applications is deprecated in favour of [Msts.Solve.solve].  Every
    solve runs inside an [Obs] span, so installing a sink (see
    {!Msts_obs.Obs}) observes the full construction. *)

type problem = Msts_pool.Batch.request = {
  platform : Msts_platform.Parse.platform;
  tasks : int option;  (** number of tasks (a budget when a deadline is set) *)
  deadline : int option;  (** time limit [T_lim] *)
}
(** The same record as {!Msts_pool.Batch.request}, so problems flow into
    the batch machinery without conversion. *)

val problem :
  ?tasks:int -> ?deadline:int -> Msts_platform.Parse.platform -> problem
(** Convenience constructor. *)

type kernel = Msts_chain.Kernel.t = Fast | Reference
(** Which backward-construction kernel every solve (chain, deadline,
    spider legs, batch, replanner) uses: the O(n·p) allocation-free sweep
    ([Fast], the default) or the paper-literal O(n·p²) candidate scan
    ([Reference], the escape hatch — also the only kernel that records
    full per-step traces).  Both produce byte-identical plans; see
    docs/PERFORMANCE.md. *)

val set_kernel : kernel -> unit
(** Set the process-wide kernel (the CLI's [--kernel] flag).  Shared by
    all batch-solver domains. *)

val kernel : unit -> kernel

val kernel_to_string : kernel -> string
val kernel_of_string : string -> kernel option

val solve : problem -> (Msts_schedule.Plan.t, string) result
(** Solve the problem:

    - [tasks = Some n, deadline = None]: makespan-optimal schedule for
      exactly [n] tasks;
    - [tasks = None, deadline = Some d]: schedule the maximum number of
      tasks completing by [d];
    - both set: at most [n] tasks within [d];
    - neither set, a negative count/deadline, or a tree that branches below
      the master: [Error]. *)

val solve_exn : problem -> Msts_schedule.Plan.t
(** {!solve}, raising [Invalid_argument] on [Error]. *)

val solve_batch :
  ?pool:Msts_pool.Pool.t ->
  ?jobs:int ->
  ?cache:Msts_pool.Batch.cache ->
  problem array ->
  (Msts_schedule.Plan.t, string) result array
(** Solve a whole batch across a domain pool, deduplicated through the
    (optional, shareable) LRU solve cache.  Results come back in
    submission order and are {e structurally identical} to calling
    {!solve} one by one, whatever [jobs] is — the parallel path may not
    change a single date (see docs/PERFORMANCE.md for the determinism
    argument, and [Msts.Batch.run] for per-batch cache statistics).
    [jobs] defaults to [Domain.recommended_domain_count ()]; [pool], when
    given, wins over [jobs]. *)

val as_spider : Msts_platform.Parse.platform -> (Msts_platform.Spider.t, string) result
(** The promotion {!solve} uses for non-chain platforms, exposed for
    callers (the CLI's simulation subcommands) that need the spider
    itself. *)
