(* The versioned, typed request API.  See api.mli for the contract: total
   codecs over a JSONL wire format, one dispatcher shared by the CLI and
   the daemon, and JSON renderings that are byte-identical between the
   two because they are the same code. *)

module Json = Msts_obs.Json
module Obs = Msts_obs.Obs
module Parse = Msts_platform.Parse
module Plan = Msts_schedule.Plan
module Schedule = Msts_schedule.Schedule
module Spider_schedule = Msts_schedule.Spider_schedule
module Metrics = Msts_schedule.Metrics
module Intervals = Msts_schedule.Intervals
module Chain = Msts_platform.Chain
module Spider = Msts_platform.Spider
module Batch = Msts_pool.Batch
module Netsim = Msts_sim.Netsim
module Report = Msts_sim.Report
module Fault = Msts_sim.Fault
module Trace = Msts_trace.Trace
module Spider_algorithm = Msts_spider.Algorithm
module Prng = Msts_util.Prng
module Intx = Msts_util.Intx

let version = 1

type problem = Solve.problem

(* ---------- structured errors ---------- *)

type error_code =
  | Bad_request
  | Unsupported_version
  | Invalid_platform
  | Invalid_argument_error
  | Unsolvable
  | Overloaded
  | Timeout
  | Shutting_down
  | Internal

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Unsupported_version -> "unsupported_version"
  | Invalid_platform -> "invalid_platform"
  | Invalid_argument_error -> "invalid_argument"
  | Unsolvable -> "unsolvable"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let all_error_codes =
  [
    Bad_request;
    Unsupported_version;
    Invalid_platform;
    Invalid_argument_error;
    Unsolvable;
    Overloaded;
    Timeout;
    Shutting_down;
    Internal;
  ]

let error_code_of_string s =
  List.find_opt (fun c -> error_code_to_string c = s) all_error_codes

type error = { code : error_code; message : string }

let error code message = { code; message }

let error_of_exn = function
  | Invalid_argument msg -> { code = Invalid_argument_error; message = msg }
  | exn -> { code = Internal; message = Printexc.to_string exn }

let error_of_solve_failure msg =
  if String.length msg >= 5 && String.sub msg 0 5 = "Msts." then
    { code = Invalid_argument_error; message = msg }
  else { code = Unsolvable; message = msg }

(* ---------- operations ---------- *)

type workload = Solve_only | Execute | Pull | Faults

let workload_to_string = function
  | Solve_only -> "solve"
  | Execute -> "execute"
  | Pull -> "pull"
  | Faults -> "faults"

let workload_of_string = function
  | "solve" -> Some Solve_only
  | "execute" -> Some Execute
  | "pull" -> Some Pull
  | "faults" -> Some Faults
  | _ -> None

type op =
  | Ping
  | Schedule of problem
  | Deadline of problem
  | Metrics of problem
  | Batch of problem array
  | Report of { problem : problem; planned : bool }
  | Check of { problem : problem; trace : bool; seed : int; events : int }
  | Profile of {
      platform : Parse.platform;
      tasks : int;
      deadline : int option;
      workload : workload;
      seed : int;
      events : int;
    }
  | Stats
  | Metrics_dump
  | Shutdown
  | Online_open of { platform : Parse.platform; deadline : int; capacity : int }
  | Online_submit of { session : int; tasks : int }
  | Online_advance of { session : int; time : int }
  | Online_extend of { session : int; deadline : int }
  | Online_degrade of { session : int; at : int; work_factor : int }
  | Online_plan of { session : int }
  | Online_close of { session : int }

let op_name = function
  | Ping -> "ping"
  | Schedule _ -> "schedule"
  | Deadline _ -> "deadline"
  | Metrics _ -> "metrics"
  | Batch _ -> "batch"
  | Report _ -> "report"
  | Check _ -> "check"
  | Profile _ -> "profile"
  | Stats -> "stats"
  | Metrics_dump -> "metrics"
  | Shutdown -> "shutdown"
  | Online_open _ -> "online-open"
  | Online_submit _ -> "online-submit"
  | Online_advance _ -> "online-advance"
  | Online_extend _ -> "online-extend"
  | Online_degrade _ -> "online-degrade"
  | Online_plan _ -> "online-plan"
  | Online_close _ -> "online-close"

let is_control = function
  | Ping | Stats | Metrics_dump | Shutdown -> true
  | _ -> false

let is_online = function
  | Online_open _ | Online_submit _ | Online_advance _ | Online_extend _
  | Online_degrade _ | Online_plan _ | Online_close _ ->
      true
  | _ -> false

(* [trace] is the request-scoped correlation context: an opaque string the
   client attaches; the daemon echoes it on the response and uses it to
   label the request's scope in telemetry and the slow-request log. *)
type request = { id : int option; trace : string option; op : op }

(* ---------- request codec ---------- *)

let problem_fields (p : problem) =
  ("platform", Json.String (Parse.platform_to_string p.Solve.platform))
  :: (match p.Solve.tasks with None -> [] | Some n -> [ ("tasks", Json.Int n) ])
  @ match p.Solve.deadline with None -> [] | Some d -> [ ("deadline", Json.Int d) ]

let encode_op_fields = function
  | Ping | Stats | Metrics_dump | Shutdown -> []
  | Schedule p | Deadline p | Metrics p -> problem_fields p
  | Batch problems ->
      [
        ( "problems",
          Json.List
            (Array.to_list
               (Array.map (fun p -> Json.Obj (problem_fields p)) problems)) );
      ]
  | Report { problem; planned } ->
      problem_fields problem @ [ ("planned", Json.Bool planned) ]
  | Check { problem; trace; seed; events } ->
      problem_fields problem
      (* wire name "traced", not "trace": the request envelope's trace
         context owns that key *)
      @ [
          ("traced", Json.Bool trace);
          ("seed", Json.Int seed);
          ("events", Json.Int events);
        ]
  | Profile { platform; tasks; deadline; workload; seed; events } ->
      [
        ("platform", Json.String (Parse.platform_to_string platform));
        ("tasks", Json.Int tasks);
      ]
      @ (match deadline with None -> [] | Some d -> [ ("deadline", Json.Int d) ])
      @ [
          ("workload", Json.String (workload_to_string workload));
          ("seed", Json.Int seed);
          ("events", Json.Int events);
        ]
  | Online_open { platform; deadline; capacity } ->
      ("platform", Json.String (Parse.platform_to_string platform))
      :: ("deadline", Json.Int deadline)
      ::
      (* 0 is the default; omitting it keeps encode∘decode the identity *)
      (if capacity = 0 then [] else [ ("capacity", Json.Int capacity) ])
  | Online_submit { session; tasks } ->
      [ ("session", Json.Int session); ("tasks", Json.Int tasks) ]
  | Online_advance { session; time } ->
      [ ("session", Json.Int session); ("time", Json.Int time) ]
  | Online_extend { session; deadline } ->
      [ ("session", Json.Int session); ("deadline", Json.Int deadline) ]
  | Online_degrade { session; at; work_factor } ->
      [
        ("session", Json.Int session);
        ("at", Json.Int at);
        ("work_factor", Json.Int work_factor);
      ]
  | Online_plan { session } | Online_close { session } ->
      [ ("session", Json.Int session) ]

let encode_request { id; trace; op } =
  Json.Obj
    (("v", Json.Int version)
    :: (match id with None -> [] | Some i -> [ ("id", Json.Int i) ])
    @ (match trace with None -> [] | Some s -> [ ("trace", Json.String s) ])
    @ (("op", Json.String (op_name op)) :: encode_op_fields op))

(* Total decoding: every failure is a value, never an exception. *)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let bad fmt = Printf.ksprintf (fun m -> Error (error Bad_request m)) fmt

let field kvs key = List.assoc_opt key kvs

let int_field kvs key =
  match field kvs key with
  | None -> bad "missing integer field %S" key
  | Some (Json.Int i) -> Ok i
  | Some _ -> bad "field %S must be an integer" key

let opt_int_field kvs key =
  match field kvs key with
  | None -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> bad "field %S must be an integer" key

let opt_bool_field kvs key ~default =
  match field kvs key with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> bad "field %S must be a boolean" key

let string_field kvs key =
  match field kvs key with
  | None -> bad "missing string field %S" key
  | Some (Json.String s) -> Ok s
  | Some _ -> bad "field %S must be a string" key

let opt_string_field kvs key =
  match field kvs key with
  | None -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> bad "field %S must be a string" key

let platform_field kvs =
  let* text = string_field kvs "platform" in
  match Parse.of_string text with
  | Ok platform -> Ok platform
  | Error msg -> Error (error Invalid_platform ("platform: " ^ msg))

let problem_of_fields kvs =
  let* platform = platform_field kvs in
  let* tasks = opt_int_field kvs "tasks" in
  let* deadline = opt_int_field kvs "deadline" in
  Ok { Solve.platform; tasks; deadline }

let decode_op kvs name =
  match name with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | "schedule" ->
      let* p = problem_of_fields kvs in
      Ok (Schedule p)
  | "deadline" ->
      let* p = problem_of_fields kvs in
      Ok (Deadline p)
  | "metrics" -> (
      (* Two ops share the wire name: with a platform this is the solve
         metrics of a plan; without one it is the control op dumping the
         daemon's live telemetry.  Unambiguous because the solve form
         always requires "platform". *)
      match field kvs "platform" with
      | None -> Ok Metrics_dump
      | Some _ ->
          let* p = problem_of_fields kvs in
          Ok (Metrics p))
  | "batch" -> (
      match field kvs "problems" with
      | Some (Json.List items) ->
          let rec decode acc = function
            | [] -> Ok (Batch (Array.of_list (List.rev acc)))
            | Json.Obj item :: rest ->
                let* p = problem_of_fields item in
                decode (p :: acc) rest
            | _ -> bad "every element of \"problems\" must be an object"
          in
          decode [] items
      | Some _ -> bad "field \"problems\" must be a list"
      | None -> bad "missing list field \"problems\"")
  | "report" ->
      let* problem = problem_of_fields kvs in
      let* planned = opt_bool_field kvs "planned" ~default:false in
      Ok (Report { problem; planned })
  | "check" ->
      let* problem = problem_of_fields kvs in
      let* trace = opt_bool_field kvs "traced" ~default:false in
      let* seed = opt_int_field kvs "seed" in
      let* events = opt_int_field kvs "events" in
      Ok
        (Check
           {
             problem;
             trace;
             seed = Option.value seed ~default:0;
             events = Option.value events ~default:3;
           })
  | "profile" ->
      let* platform = platform_field kvs in
      let* tasks = int_field kvs "tasks" in
      let* deadline = opt_int_field kvs "deadline" in
      let* workload_name =
        match field kvs "workload" with
        | None -> Ok "execute"
        | Some (Json.String s) -> Ok s
        | Some _ -> bad "field \"workload\" must be a string"
      in
      let* workload =
        match workload_of_string workload_name with
        | Some w -> Ok w
        | None -> bad "unknown workload %S" workload_name
      in
      let* seed = opt_int_field kvs "seed" in
      let* events = opt_int_field kvs "events" in
      Ok
        (Profile
           {
             platform;
             tasks;
             deadline;
             workload;
             seed = Option.value seed ~default:0;
             events = Option.value events ~default:4;
           })
  | "online-open" ->
      let* platform = platform_field kvs in
      let* deadline = int_field kvs "deadline" in
      let* capacity = opt_int_field kvs "capacity" in
      Ok
        (Online_open
           { platform; deadline; capacity = Option.value capacity ~default:0 })
  | "online-submit" ->
      let* session = int_field kvs "session" in
      let* tasks = int_field kvs "tasks" in
      Ok (Online_submit { session; tasks })
  | "online-advance" ->
      let* session = int_field kvs "session" in
      let* time = int_field kvs "time" in
      Ok (Online_advance { session; time })
  | "online-extend" ->
      let* session = int_field kvs "session" in
      let* deadline = int_field kvs "deadline" in
      Ok (Online_extend { session; deadline })
  | "online-degrade" ->
      let* session = int_field kvs "session" in
      let* at = int_field kvs "at" in
      let* work_factor = int_field kvs "work_factor" in
      Ok (Online_degrade { session; at; work_factor })
  | "online-plan" ->
      let* session = int_field kvs "session" in
      Ok (Online_plan { session })
  | "online-close" ->
      let* session = int_field kvs "session" in
      Ok (Online_close { session })
  | other -> bad "unknown op %S" other

let decode_envelope json =
  match json with
  | Json.Obj kvs -> (
      let* () =
        match field kvs "v" with
        | None -> Ok () (* absent = current version *)
        | Some (Json.Int v) when v = version -> Ok ()
        | Some (Json.Int v) ->
            Error
              (error Unsupported_version
                 (Printf.sprintf "protocol version %d not supported (this is version %d)"
                    v version))
        | Some _ -> bad "field \"v\" must be an integer"
      in
      let* id = opt_int_field kvs "id" in
      Ok (kvs, id))
  | _ -> bad "frame must be a JSON object"

let decode_request json =
  let* kvs, id = decode_envelope json in
  let* trace = opt_string_field kvs "trace" in
  let* name = string_field kvs "op" in
  let* op = decode_op kvs name in
  Ok { id; trace; op }

let request_to_line r = Json.to_string (encode_request r) ^ "\n"

let parse_line line =
  match Json.parse line with
  | Ok json -> Ok json
  | Error msg -> bad "malformed frame: %s" msg

let request_of_line line =
  let* json = parse_line line in
  decode_request json

let frame_id line =
  match Json.parse line with
  | Ok (Json.Obj kvs) -> (
      match field kvs "id" with Some (Json.Int i) -> Some i | _ -> None)
  | _ -> None

let frame_trace line =
  match Json.parse line with
  | Ok (Json.Obj kvs) -> (
      match field kvs "trace" with Some (Json.String s) -> Some s | _ -> None)
  | _ -> None

(* ---------- response codec ---------- *)

type response = {
  id : int option;
  trace : string option;
  result : (Json.t, error) result;
}

let encode_response { id; trace; result } =
  Json.Obj
    (("v", Json.Int version)
    :: (match id with None -> [] | Some i -> [ ("id", Json.Int i) ])
    @ (match trace with None -> [] | Some s -> [ ("trace", Json.String s) ])
    @ [
        (match result with
        | Ok payload -> ("ok", payload)
        | Error { code; message } ->
            ( "error",
              Json.Obj
                [
                  ("code", Json.String (error_code_to_string code));
                  ("message", Json.String message);
                ] ));
      ])

let decode_response json =
  let* kvs, id = decode_envelope json in
  let* trace = opt_string_field kvs "trace" in
  match (field kvs "ok", field kvs "error") with
  | Some payload, None -> Ok { id; trace; result = Ok payload }
  | None, Some (Json.Obj ekvs) ->
      let* code_name = string_field ekvs "code" in
      let* message = string_field ekvs "message" in
      let* code =
        match error_code_of_string code_name with
        | Some c -> Ok c
        | None -> bad "unknown error code %S" code_name
      in
      Ok { id; trace; result = Error { code; message } }
  | None, Some _ -> bad "field \"error\" must be an object"
  | Some _, Some _ -> bad "frame carries both \"ok\" and \"error\""
  | None, None -> bad "frame carries neither \"ok\" nor \"error\""

let response_to_line r = Json.to_string (encode_response r) ^ "\n"

let response_of_line line =
  let* json = parse_line line in
  decode_response json

(* ---------- JSON renderings (the former per-subcommand CLI assembly,
   now the one shared definition) ---------- *)

let json_of_plan ?(extra = []) plan =
  let open Json in
  let comms_json comms = List (Array.to_list (Array.map (fun c -> Int c) comms)) in
  let entries =
    match plan with
    | Plan.Chain sched ->
        Array.to_list (Schedule.entries sched)
        |> List.mapi (fun idx (e : Schedule.entry) ->
               Obj
                 [
                   ("task", Int (idx + 1));
                   ("proc", Int e.proc);
                   ("start", Int e.start);
                   ("comms", comms_json e.comms);
                 ])
    | Plan.Spider sched ->
        Array.to_list (Spider_schedule.entries sched)
        |> List.mapi (fun idx (e : Spider_schedule.entry) ->
               Obj
                 [
                   ("task", Int (idx + 1));
                   ("leg", Int e.address.Spider.leg);
                   ("depth", Int e.address.Spider.depth);
                   ("start", Int e.start);
                   ("comms", comms_json e.comms);
                 ])
  in
  Obj
    (extra
    @ [
        ( "kind",
          String
            (match plan with Plan.Chain _ -> "chain" | Plan.Spider _ -> "spider")
        );
        ("tasks", Int (Plan.task_count plan));
        ("makespan", Int (Plan.makespan plan));
        ("entries", List entries);
      ])

let pct x = Json.Float (Float.round (1000.0 *. x) /. 10.0)

let chain_metrics_json sched =
  let open Json in
  let chain = Schedule.chain sched in
  let procs =
    List.map
      (fun k ->
        Obj
          [
            ("proc", Int k);
            ("tasks", Int (List.length (Schedule.tasks_on sched k)));
            ("link_busy_pct", pct (Metrics.link_utilisation sched k));
            ("cpu_busy_pct", pct (Metrics.proc_utilisation sched k));
            ("max_buffered", Int (Metrics.buffer_high_water sched k));
          ])
      (Intx.range 1 (Chain.length chain))
  in
  Obj
    [
      ("kind", String "chain");
      ("tasks", Int (Schedule.task_count sched));
      ("makespan", Int (Schedule.makespan sched));
      ("total_waiting", Int (Metrics.total_waiting sched));
      ("max_waiting", Int (Metrics.max_waiting sched));
      ("processors", List procs);
    ]

let spider_metrics_json sched =
  let open Json in
  let spider = Spider_schedule.spider sched in
  let makespan = Spider_schedule.makespan sched in
  let legs =
    List.map
      (fun l ->
        let leg = Spider_schedule.leg_schedule sched l in
        let nodes =
          List.map
            (fun k ->
              Obj
                [
                  ("depth", Int k);
                  ("tasks", Int (List.length (Schedule.tasks_on leg k)));
                  ( "link_busy_pct",
                    pct
                      (Intervals.utilisation (Schedule.link_intervals leg k)
                         ~horizon:makespan) );
                  ( "cpu_busy_pct",
                    pct
                      (Intervals.utilisation (Schedule.proc_intervals leg k)
                         ~horizon:makespan) );
                  ("max_buffered", Int (Metrics.buffer_high_water leg k));
                ])
            (Intx.range 1 (Chain.length (Spider.leg_chain spider l)))
        in
        Obj
          [
            ("leg", Int l);
            ("tasks", Int (Schedule.task_count leg));
            ("nodes", List nodes);
          ])
      (Intx.range 1 (Spider.legs spider))
  in
  Obj
    [
      ("kind", String "spider");
      ("tasks", Int (Spider_schedule.task_count sched));
      ("makespan", Int makespan);
      ("master_port_busy_pct", pct (Metrics.spider_master_utilisation sched));
      ("legs", List legs);
    ]

(* ---------- typed replies ---------- *)

type section = {
  label : string;
  trace : Trace.t;
  violations : Trace.violation list;
}

type reply =
  | Pong
  | Solved of { plan : Plan.t; deadline : int option }
  | Measured of Plan.t
  | Batched of {
      problems : problem array;
      outcomes : Batch.outcome array;
      stats : Batch.stats;
      cache_capacity : int;
    }
  | Reported of { source : string; report : Report.t }
  | Checked of {
      plan : Plan.t;
      oracle : string list;
      sections : section list;
      ok : bool;
    }
  | Profiled of { summary : (string * Json.t) list; mem : Obs.Memory.t }
  | Stats_info of Json.t
  | Metrics_text of string
  | Bye

let platform_kind = function
  | Parse.Chain_platform _ -> "chain"
  | Parse.Fork_platform _ -> "fork"
  | Parse.Spider_platform _ -> "spider"
  | Parse.Tree_platform _ -> "tree"

let json_of_reply = function
  | Pong -> Json.Obj [ ("version", Json.Int version) ]
  | Solved { plan; deadline } ->
      let extra =
        match deadline with
        | None -> []
        | Some d -> [ ("deadline", Json.Int d) ]
      in
      json_of_plan ~extra plan
  | Measured plan -> (
      match plan with
      | Plan.Chain sched -> chain_metrics_json sched
      | Plan.Spider sched -> spider_metrics_json sched)
  | Batched { problems; outcomes; stats; cache_capacity } ->
      let result i outcome =
        let open Json in
        let kind = platform_kind problems.(i).Solve.platform in
        match outcome with
        | Ok plan ->
            Obj
              [
                ("instance", Int (i + 1));
                ("kind", String kind);
                ("tasks", Int (Plan.task_count plan));
                ("makespan", Int (Plan.makespan plan));
              ]
        | Error msg ->
            Obj
              [ ("instance", Int (i + 1)); ("kind", String kind); ("error", String msg) ]
      in
      Json.Obj
        [
          ("instances", Json.Int stats.Batch.requests);
          ( "cache",
            Json.Obj
              [
                ("capacity", Json.Int cache_capacity);
                ("hits", Json.Int stats.Batch.cache_hits);
                ("misses", Json.Int stats.Batch.cache_misses);
              ] );
          ("results", Json.List (Array.to_list (Array.mapi result outcomes)));
        ]
  | Reported { source; report } ->
      let fields =
        match Report.to_json report with
        | Json.Obj fields -> fields
        | other -> [ ("report", other) ]
      in
      Json.Obj (("source", Json.String source) :: fields)
  | Checked { plan; oracle; sections; ok } ->
      let section_json { label; trace; violations } =
        Json.Obj
          ([
             ("name", Json.String label);
             ("events", Json.Int (Trace.length trace));
             ("violations", Json.Int (List.length violations));
           ]
          @
          if violations = [] then []
          else [ ("report", Json.String (Trace.report trace violations)) ])
      in
      Json.Obj
        [
          ("tasks", Json.Int (Plan.task_count plan));
          ("makespan", Json.Int (Plan.makespan plan));
          ("ok", Json.Bool ok);
          ( "oracle_violations",
            Json.List (List.map (fun s -> Json.String s) oracle) );
          ("sections", Json.List (List.map section_json sections));
        ]
  | Profiled { summary; mem } ->
      let fields =
        match Obs.Memory.to_json mem with
        | Json.Obj fields -> fields
        | other -> [ ("profile", other) ]
      in
      Json.Obj (summary @ fields)
  | Stats_info json -> json
  | Metrics_text body ->
      Json.Obj
        [
          ("format", Json.String "prometheus-text-0.0.4");
          ("body", Json.String body);
        ]
  | Bye -> Json.Obj [ ("shutting_down", Json.Bool true) ]

(* ---------- execution ---------- *)

type solver = problem array -> Batch.outcome array * Batch.stats

let guarded_solve problem =
  try Solve.solve problem with
  | Invalid_argument msg -> Error msg
  | exn -> Error (Printexc.to_string exn)

let direct_solver problems =
  let outcomes = Array.map guarded_solve problems in
  let n = Array.length problems in
  ( outcomes,
    {
      Batch.jobs = 1;
      requests = n;
      cache_hits = 0;
      cache_misses = n;
      queue_wait_us = 0;
      busy_us = 0;
    } )

let solve_one ~solver problem =
  match solver [| problem |] with
  | [| outcome |], _ -> (
      match outcome with
      | Ok plan -> Ok plan
      | Error msg -> Error (error_of_solve_failure msg))
  | _ -> Error (error Internal "solver returned a mis-sized outcome array")

let as_spider_or_err platform =
  match Solve.as_spider platform with
  | Ok spider -> Ok spider
  | Error msg -> Error (error_of_solve_failure msg)

let exec_check ~solver { Solve.platform; tasks; deadline } ~trace:do_trace ~seed
    ~events =
  let* plan = solve_one ~solver { Solve.platform; tasks; deadline } in
  let oracle = Plan.check ~require_nonnegative:true plan in
  let audit label trace =
    { label; trace; violations = Trace.check ~require_nonnegative:true trace }
  in
  let record f =
    let r = Trace.Recorder.create () in
    ignore (Trace.with_recorder r f);
    Trace.recorded r
  in
  let* sections =
    if not do_trace then Ok [ audit "planned trace" (Trace.of_plan plan) ]
    else if events < 0 then
      Error (error Invalid_argument_error "--events must be >= 0")
    else
      let* spider = as_spider_or_err platform in
        let n = Plan.task_count plan in
        let execution =
          audit "recorded execution" (record (fun () -> Netsim.execute plan))
        in
        let splan = Spider_algorithm.schedule_tasks spider n in
        let horizon = Spider_schedule.makespan splan in
        let ftrace = Fault.random (Prng.create seed) spider ~events ~horizon in
        let faulted =
          audit
            (Printf.sprintf "recorded fault replay (seed %d, %d events)" seed
               events)
            (record (fun () ->
                 Netsim.replay_under_faults ~max_events:1_000_000 ~trace:ftrace
                   splan))
        in
        Ok [ audit "planned trace" (Trace.of_plan plan); execution; faulted ]
    in
    let ok = oracle = [] && List.for_all (fun s -> s.violations = []) sections in
    Ok (Checked { plan; oracle; sections; ok })

let exec_profile ~platform ~tasks:n ~deadline ~workload ~seed ~events =
  let mem = Obs.Memory.create () in
  let problem =
    match deadline with
    | Some d -> Solve.problem ~deadline:d platform
    | None -> Solve.problem ~tasks:n platform
  in
  (* The workload runs under its own Memory sink — inside the daemon this
     temporarily shadows the serve telemetry sink, exactly as documented. *)
  let result =
    Obs.with_sink (Obs.Memory.sink mem) @@ fun () ->
    match workload with
    | Solve_only -> (
        match guarded_solve problem with
        | Error msg -> Error (error_of_solve_failure msg)
        | Ok plan ->
            Ok
              [
                ("workload", Json.String "solve");
                ("makespan", Json.Int (Plan.makespan plan));
                ("tasks", Json.Int (Plan.task_count plan));
              ])
    | Execute -> (
        match guarded_solve problem with
        | Error msg -> Error (error_of_solve_failure msg)
        | Ok plan ->
            let report = Netsim.execute plan in
            Ok
              [
                ("workload", Json.String "execute");
                ("planned_makespan", Json.Int report.Netsim.planned_makespan);
                ("realized_makespan", Json.Int report.Netsim.realized_makespan);
                ("tasks", Json.Int (Plan.task_count plan));
              ])
    | Pull -> (
        match as_spider_or_err platform with
        | Error e -> Error e
        | Ok spider ->
            let sched = Netsim.pull_policy spider ~tasks:n in
            Ok
              [
                ("workload", Json.String "pull");
                ("makespan", Json.Int (Spider_schedule.makespan sched));
                ("tasks", Json.Int n);
              ])
    | Faults -> (
        match as_spider_or_err platform with
        | Error e -> Error e
        | Ok spider ->
            let plan = Spider_algorithm.schedule_tasks spider n in
            let trace =
              Fault.random (Prng.create seed) spider ~events
                ~horizon:(Spider_schedule.makespan plan)
            in
            let outcome = Msts_sim.Replan.replay ~trace plan in
            Ok
              [
                ("workload", Json.String "faults");
                ( "observed_makespan",
                  Json.Int
                    outcome.Msts_sim.Replan.report.Netsim.observed_makespan );
                ("replans_adopted", Json.Int outcome.Msts_sim.Replan.replans);
                ("tasks", Json.Int n);
              ])
  in
  let* summary = result in
  Ok (Profiled { summary; mem })

let exec ?(cache_capacity = 0) ~solver op =
  try
    match op with
    | Ping -> Ok Pong
    | Stats -> Ok (Stats_info (Json.Obj [ ("version", Json.Int version) ]))
    | Metrics_dump ->
        (* The stateless dispatcher has no live aggregates; the daemon
           (Msts_serve.Engine) overrides this with its real exposition. *)
        Ok (Metrics_text "")
    | Shutdown -> Ok Bye
    | Schedule problem ->
        let* plan = solve_one ~solver problem in
        Ok (Solved { plan; deadline = None })
    | Deadline problem ->
        let* plan = solve_one ~solver problem in
        Ok (Solved { plan; deadline = problem.Solve.deadline })
    | Metrics problem ->
        let* plan = solve_one ~solver problem in
        Ok (Measured plan)
    | Batch problems ->
        let outcomes, stats = solver problems in
        Ok (Batched { problems; outcomes; stats; cache_capacity })
    | Report { problem; planned } ->
        let* plan = solve_one ~solver problem in
        let source, report =
          if planned then ("planned schedule", Report.of_plan plan)
          else ("realized execution", Report.of_execution (Netsim.execute plan))
        in
        Ok (Reported { source; report })
    | Check { problem; trace; seed; events } ->
        exec_check ~solver problem ~trace ~seed ~events
    | Profile { platform; tasks; deadline; workload; seed; events } ->
        exec_profile ~platform ~tasks ~deadline ~workload ~seed ~events
    | Online_open _ | Online_submit _ | Online_advance _ | Online_extend _
    | Online_degrade _ | Online_plan _ | Online_close _ ->
        (* Sessions are daemon/CLI-session state; the stateless dispatcher
           cannot host them.  Msts_online.Service.exec is the handler. *)
        Error
          (error Bad_request
             "online operations require a session; use msts serve or msts \
              online")
  with exn -> Error (error_of_exn exn)

let respond ?cache_capacity ~solver { id; trace; op } =
  let result =
    match exec ?cache_capacity ~solver op with
    | Ok reply -> Ok (json_of_reply reply)
    | Error e -> Error e
  in
  { id; trace; result }
