(** The versioned, typed request API — the single entry surface shared by
    the CLI subcommands, the [msts serve] daemon and programmatic callers.

    One wire format, one dispatcher: a {!request} is a typed operation
    (solve, metrics, report, check, batch, profile, plus the control
    operations ping/stats/shutdown) tagged with the protocol {!version}
    and an optional correlation id.  {!exec} runs an operation and returns
    a typed {!reply}; {!json_of_reply} renders the reply as the {e exact}
    JSON document the CLI's [--format=json] emits — so an answer computed
    through a live [msts serve] socket is byte-identical to the same
    request answered by the CLI, because both are the same code path.

    Codecs are {e total}: {!decode_request} and {!decode_response} map any
    JSON value (and {!request_of_line} any byte string) to either a value
    or a structured {!error} — a malformed or truncated frame becomes
    [`bad_request`], an unknown protocol version [`unsupported_version`];
    nothing raises.  Encoding then decoding is the identity (QCheck-tested
    in [test/test_api.ml]).

    Error classification follows the repo-wide prefix convention: an
    [Invalid_argument] whose message starts with ["Msts."] (the
    [Msts.Netsim.*]-style precondition errors) maps to the
    [`invalid_argument`] code with the message preserved verbatim; solver
    refusals map to [`unsolvable`].  See docs/API.md for the wire
    protocol, the versioning policy and the full error-code table. *)

val version : int
(** Current wire-protocol version (1).  Requests may omit ["v"] (it
    defaults to the current version); a present-but-different version is
    rejected with [`unsupported_version`]. *)

type problem = Solve.problem
(** The solve triple: platform, optional task count, optional deadline. *)

(** {2 Structured errors} *)

type error_code =
  | Bad_request  (** malformed/truncated frame, missing or ill-typed field *)
  | Unsupported_version  (** ["v"] present and not {!version} *)
  | Invalid_platform  (** the platform field did not parse *)
  | Invalid_argument_error
      (** an [Msts.*]-prefixed precondition violation (the PR-6 error
          convention), message preserved verbatim *)
  | Unsolvable  (** well-formed request the solver refuses (e.g. no objective) *)
  | Overloaded  (** admission control: the daemon's request queue is full *)
  | Timeout  (** the request exceeded its queue-wait deadline *)
  | Shutting_down  (** received while the daemon drains *)
  | Internal  (** uncaught exception; the daemon stays up *)

val error_code_to_string : error_code -> string
(** Stable wire name ([bad_request], [unsupported_version], ...). *)

val error_code_of_string : string -> error_code option

type error = { code : error_code; message : string }

val error : error_code -> string -> error
val error_of_exn : exn -> error
(** Classify an exception per the prefix convention above. *)

val error_of_solve_failure : string -> error
(** Classify a [Solve.solve] / [Solve.as_spider] [Error] message:
    [`invalid_argument`] when ["Msts."]-prefixed, [`unsolvable`]
    otherwise. *)

(** {2 Operations} *)

type workload = Solve_only | Execute | Pull | Faults

val workload_to_string : workload -> string
val workload_of_string : string -> workload option

type op =
  | Ping
  | Schedule of problem  (** makespan-optimal schedule ([tasks] objective) *)
  | Deadline of problem  (** maximise tasks within [deadline] *)
  | Metrics of problem
  | Batch of problem array
  | Report of { problem : problem; planned : bool }
  | Check of { problem : problem; trace : bool; seed : int; events : int }
      (** [trace] travels as the wire field ["traced"] — the request
          envelope's trace context owns the ["trace"] key *)
  | Profile of {
      platform : Msts_platform.Parse.platform;
      tasks : int;
      deadline : int option;
      workload : workload;
      seed : int;
      events : int;
    }
  | Stats  (** daemon statistics (answered engine-side by [msts serve]) *)
  | Metrics_dump
      (** live telemetry exposition (Prometheus text format).  Shares the
          wire name [metrics] with {!Metrics}: a frame with a [platform]
          field is the solve form, one without is this control op.
          Answered engine-side by [msts serve]; the stateless {!exec}
          returns an empty exposition. *)
  | Shutdown  (** ask the daemon to drain and exit *)
  | Online_open of {
      platform : Msts_platform.Parse.platform;
      deadline : int;
      capacity : int;
    }
      (** open an anytime-scheduling session (chain platforms only;
          [capacity] preallocates placement storage, 0 = grow on demand) *)
  | Online_submit of { session : int; tasks : int }
      (** feed [tasks] arrivals; the reply streams one delta each *)
  | Online_advance of { session : int; time : int }
      (** move the execution frontier; placements behind it freeze *)
  | Online_extend of { session : int; deadline : int }
      (** grow the session deadline, displacing the revisable suffix *)
  | Online_degrade of { session : int; at : int; work_factor : int }
      (** slow processor [at]; unfrozen tasks are re-placed *)
  | Online_plan of { session : int }  (** snapshot the current plan *)
  | Online_close of { session : int }  (** drop the session *)

val op_name : op -> string
(** The wire name ([ping], [schedule], ..., [online-close]). *)

val is_control : op -> bool
(** Control operations ([Ping]/[Stats]/[Metrics_dump]/[Shutdown]) bypass
    the daemon's request queue and are answered immediately. *)

val is_online : op -> bool
(** The [Online_*] operations.  They are stateful: {!exec} refuses them
    with [`bad_request`]; [Msts_online.Service.exec] (held by the daemon
    engine and the [msts online] CLI) is their handler, also answered
    synchronously — including during a drain, so an in-flight online
    session loses no deltas on SIGTERM (docs/ONLINE.md). *)

type request = { id : int option; trace : string option; op : op }
(** [id], when present, is echoed verbatim in the response — pipelined
    clients correlate replies with it.  [trace] is an opaque
    client-chosen correlation context, also echoed verbatim on the
    response; the daemon additionally uses it to label the request's
    telemetry scope and slow-request-log entry.  Requests without a
    [trace] get an engine-assigned label in the logs but {e no} injected
    field on the wire — responses stay byte-identical for trace-less
    clients. *)

(** {2 Wire codecs (JSONL framing: one JSON document per line)} *)

val encode_request : request -> Msts_obs.Json.t
val decode_request : Msts_obs.Json.t -> (request, error) result
val request_to_line : request -> string
(** Compact JSON, newline-terminated. *)

val request_of_line : string -> (request, error) result

val frame_id : string -> int option
(** Best-effort extraction of the correlation id from a frame that may
    not decode as a full request — so error responses can still echo
    it. *)

val frame_trace : string -> string option
(** Best-effort extraction of the [trace] context, same contract as
    {!frame_id}. *)

type response = {
  id : int option;
  trace : string option;
  result : (Msts_obs.Json.t, error) result;
}

val encode_response : response -> Msts_obs.Json.t
val decode_response : Msts_obs.Json.t -> (response, error) result
val response_to_line : response -> string
val response_of_line : string -> (response, error) result

(** {2 Execution} *)

type section = {
  label : string;
  trace : Msts_trace.Trace.t;
  violations : Msts_trace.Trace.violation list;
}
(** One audited trace of a [Check] reply. *)

type reply =
  | Pong
  | Solved of { plan : Msts_schedule.Plan.t; deadline : int option }
      (** [deadline] is [Some] for the [Deadline] operation (the JSON
          rendering carries it as an extra field, as [msts deadline
          --format=json] always has) *)
  | Measured of Msts_schedule.Plan.t
  | Batched of {
      problems : problem array;
      outcomes : Msts_pool.Batch.outcome array;
      stats : Msts_pool.Batch.stats;
      cache_capacity : int;
    }
  | Reported of { source : string; report : Msts_sim.Report.t }
  | Checked of {
      plan : Msts_schedule.Plan.t;
      oracle : string list;
      sections : section list;
      ok : bool;
    }
  | Profiled of {
      summary : (string * Msts_obs.Json.t) list;
      mem : Msts_obs.Obs.Memory.t;
          (** the sink that observed the workload — text renderers read its
              tables, {!json_of_reply} flattens its profile fields *)
    }
  | Stats_info of Msts_obs.Json.t
  | Metrics_text of string
      (** a Prometheus text-format exposition; rendered as
          [{"format": "prometheus-text-0.0.4", "body": ...}] *)
  | Bye

val json_of_reply : reply -> Msts_obs.Json.t
(** The canonical JSON document for a reply — exactly what the CLI's
    [--format=json] prints and what the daemon puts in the [ok] field. *)

type solver = problem array -> Msts_pool.Batch.outcome array * Msts_pool.Batch.stats
(** How {!exec} solves: the CLI plugs {!direct_solver} (plain sequential
    [Solve.solve], no pool, no cache — identical behaviour to the
    pre-API CLI), the daemon plugs a [Msts_pool.Batch.run] closure over
    its persistent pool and shared LRU cache. *)

val direct_solver : solver

val guarded_solve : problem -> Msts_pool.Batch.outcome
(** [Solve.solve] that turns exceptions into [Error] messages (preserving
    [Invalid_argument] text) — what long-lived daemons feed to
    [Batch.run] so one poisoned request cannot kill a worker. *)

val exec : ?cache_capacity:int -> solver:solver -> op -> (reply, error) result
(** Run one operation.  Never raises: exceptions become
    {!error_of_exn}-classified errors.  [cache_capacity] is reported in
    [Batched] replies (the CLI passes its [--cache-size], the daemon its
    configured capacity; defaults to 0). *)

val respond : ?cache_capacity:int -> solver:solver -> request -> response
(** {!exec} + {!json_of_reply}, with the request's [id] and [trace]
    echoed — the daemon's per-frame step. *)
