module Spider = Msts_platform.Spider
module Spider_schedule = Msts_schedule.Spider_schedule
module Obs = Msts_obs.Obs

type outcome = {
  report : Netsim.fault_report;
  replans : int;
  considered : int;
  final_intent : Spider_schedule.t option;
}

(* A decision list turned into a decide hook: the executor calls the hook
   exactly once per fault event, in trace order, so consuming the list
   head by head replays a decision history; past the end it keeps. *)
let scripted decisions =
  let remaining = ref decisions in
  fun (_ : Fault.snapshot) ->
    match !remaining with
    | [] -> Fault.Keep
    | d :: rest ->
        remaining := rest;
        d

(* Replan the master-resident tasks on the residual platform (surviving
   prefixes, slowdowns folded in) with the optimal spider algorithm, and
   express the result as a Redirect in the original platform's
   coordinates. *)
let candidate snap =
  match snap.Fault.at_master with
  | [] -> None
  | at_master ->
      Obs.span "replan.candidate"
        ~args:[ ("at_master", string_of_int (List.length at_master)) ]
      @@ fun () -> (
      match Fault.residual snap.Fault.state with
      | None -> None
      | Some (residual, leg_map) -> (
          let m = List.length at_master in
          match Msts_spider.Algorithm.schedule_tasks residual m with
          | exception _ -> None
          | plan ->
              let entries = Spider_schedule.entries plan in
              if Array.length entries <> m then None
              else
                let back (a : Spider.address) =
                  { Spider.leg = leg_map.(a.Spider.leg - 1); depth = a.Spider.depth }
                in
                let redirect =
                  List.mapi
                    (fun j (id, _) ->
                      (id, back entries.(j).Spider_schedule.address))
                    at_master
                in
                Some (redirect, plan, leg_map)))

(* The spliced intended schedule: the original plan's entries for tasks
   already emitted (or done), followed by the residual plan re-anchored at
   the fault's instant and mapped back onto the original platform.  A
   statement of intent, not a certified-feasible schedule: in-flight tasks
   keep their original (now possibly optimistic) dates. *)
let splice plan snap residual_plan leg_map =
  let spider = Spider_schedule.spider plan in
  let at_master_ids = List.map fst snap.Fault.at_master in
  let kept =
    Spider_schedule.filter_tasks plan ~keep:(fun i -> not (List.mem i at_master_ids))
  in
  let mapped =
    Array.map
      (fun (e : Spider_schedule.entry) ->
        {
          e with
          Spider_schedule.address =
            {
              Spider.leg = leg_map.(e.address.Spider.leg - 1);
              depth = e.address.Spider.depth;
            };
        })
      (Spider_schedule.entries
         (Spider_schedule.shift residual_plan ~delta:snap.Fault.time))
  in
  Spider_schedule.concat kept (Spider_schedule.make spider mapped)

let eval plan trace decisions =
  Obs.span "replan.lookahead" @@ fun () ->
  match Netsim.replay_under_faults ~trace ~decide:(scripted decisions) plan with
  | r -> r.Netsim.observed_makespan
  | exception _ -> max_int

let replay ?(trace = []) plan =
  Obs.span "replan.replay" ~args:[ ("fault_events", string_of_int (List.length trace)) ]
  @@ fun () ->
  let trace = Fault.normalize trace in
  let history = ref [] in (* newest first *)
  let replans = ref 0 and considered = ref 0 in
  let final_intent = ref None in
  let decide snap =
    (* Lookahead selection: simulate the whole remaining run (under the
       known trace, keeping from here on) once per candidate and keep the
       cheaper branch.  Keep-forever is always a candidate, so by induction
       the realised makespan never exceeds the blind static replay's. *)
    let h = List.rev !history in
    let choice =
      match candidate snap with
      | None -> Fault.Keep
      | Some (redirect_list, residual_plan, leg_map) ->
          incr considered;
          Obs.count "replan.considered";
          let keep_cost = eval plan trace (h @ [ Fault.Keep ]) in
          let redirect = Fault.Redirect redirect_list in
          let redirect_cost = eval plan trace (h @ [ redirect ]) in
          if redirect_cost < keep_cost then begin
            incr replans;
            Obs.count "replan.adopted";
            final_intent := Some (splice plan snap residual_plan leg_map);
            redirect
          end
          else begin
            Obs.count "replan.rejected";
            Fault.Keep
          end
    in
    history := choice :: !history;
    choice
  in
  let report = Netsim.replay_under_faults ~trace ~decide plan in
  { report; replans = !replans; considered = !considered; final_intent = !final_intent }
