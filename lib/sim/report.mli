(** Per-resource utilization report of an executed (or planned) schedule.

    The one-port model makes two resources the whole story: the master's
    single outgoing port and each link/processor down the legs.  This
    module folds a spider schedule — typically the {e realized} schedule
    out of {!Netsim.execute} — into an accounting of where the makespan
    went, resource by resource:

    - the master port's busy time and saturation (the quantity the paper's
      hull vector tracks);
    - per-link busy time and busy fraction;
    - per-processor {e compute} / {e starved} / {e idle} breakdown, where
      "starved" is idle time spent before a subsequent execution (waiting
      for input) and "idle" the tail after the processor's last task.  The
      three parts sum to the makespan {e exactly} for every processor (the
      test suite asserts it).

    Surfaced on the command line as [msts report]. *)

type resource = { busy : int; fraction : float  (** busy / makespan *) }

type processor = {
  tasks : int;  (** tasks executed here *)
  compute : int;  (** busy executing *)
  starved : int;  (** idle before a later execution — waiting for data *)
  idle : int;  (** idle after the last execution (or always, if unused) *)
  fraction : float;  (** compute / makespan *)
}

type node = {
  address : Msts_platform.Spider.address;
  link : resource;  (** the link {e into} this node *)
  proc : processor;
}

type t = {
  tasks : int;
  makespan : int;
  master_port : resource;
  nodes : node list;  (** address order: leg-major, shallow first *)
}

val of_spider_schedule : Msts_schedule.Spider_schedule.t -> t

val of_plan : Msts_schedule.Plan.t -> t
(** Chain plans are viewed as one-leg spiders. *)

val of_execution : Netsim.execution_report -> t
(** Report of the {e realized} schedule. *)

val summary : t -> string
(** Multi-line human-readable report (deterministic: simulated time
    only). *)

val to_json : t -> Msts_obs.Json.t
(** [{"tasks", "makespan", "master_port": {busy, busy_pct},
      "legs": [{leg, nodes: [{depth, link_busy, link_busy_pct, tasks,
      compute, starved, idle, cpu_busy_pct}]}]}]. *)
