module Spider = Msts_platform.Spider
module Chain = Msts_platform.Chain
module Schedule = Msts_schedule.Schedule
module Spider_schedule = Msts_schedule.Spider_schedule
module Plan = Msts_schedule.Plan
module Obs = Msts_obs.Obs
module Trace = Msts_trace.Trace

type record = {
  mutable address : Spider.address;
  mutable start : int;
  comms : int array; (* length = depth of the destination *)
}

type net = {
  engine : Engine.t;
  spider : Spider.t;
  port : Resource.t;
  links : Resource.t array array; (* links.(l-1).(k-1) = link k of leg l, k >= 2 unused slot 0 *)
  procs : Resource.t array array;
}

let build spider =
  let engine = Engine.create () in
  let legs = Spider.legs spider in
  let make_bank kind =
    Array.init legs (fun lidx ->
        let chain = Spider.leg_chain spider (lidx + 1) in
        Array.init (Chain.length chain) (fun kidx ->
            Resource.create engine
              ~name:(Printf.sprintf "%s l%d k%d" kind (lidx + 1) (kidx + 1))))
  in
  {
    engine;
    spider;
    port = Resource.create engine ~name:"master port";
    links = make_bank "link";
    procs = make_bank "proc";
  }

(* Forward a task that just became available at node [at] of its leg at the
   current simulated time; executes when it reaches its destination. *)
let rec forward net record ~task ~at ~on_complete =
  let { Spider.leg; depth } = record.address in
  let chain = Spider.leg_chain net.spider leg in
  if at = depth then begin
    Obs.count "netsim.executions";
    let w = Chain.work chain depth in
    Resource.request net.procs.(leg - 1).(depth - 1) ~duration:w ~tag:task
      ~on_start:(fun start ->
        record.start <- start;
        Trace.emit ~time:start ~task (Start (Compute { leg; depth }));
        Engine.schedule_at net.engine (start + w) (fun () ->
            Trace.emit ~time:(start + w) ~task (Finish (Compute { leg; depth }));
            on_complete ()))
  end
  else begin
    let next = at + 1 in
    let c = Chain.latency chain next in
    Obs.count "netsim.transfers";
    Obs.record "netsim.transfer_us" c;
    Resource.request net.links.(leg - 1).(next - 1) ~duration:c ~tag:task
      ~on_start:(fun start ->
        record.comms.(next - 1) <- start;
        Trace.emit ~time:start ~task (Start (Transfer { leg; hop = next }));
        Engine.schedule_at net.engine (start + c) (fun () ->
            Trace.emit ~time:(start + c) ~task
              (Finish (Transfer { leg; hop = next }));
            forward net record ~task ~at:next ~on_complete))
  end

(* Emit through the master's shared port, then forward down the leg. *)
let emit net record ~task ~on_complete =
  let { Spider.leg; _ } = record.address in
  let chain = Spider.leg_chain net.spider leg in
  let c1 = Chain.latency chain 1 in
  Obs.count "netsim.transfers";
  Obs.record "netsim.transfer_us" c1;
  Resource.request net.port ~duration:c1 ~tag:task ~on_start:(fun start ->
      record.comms.(0) <- start;
      Trace.emit ~time:start ~task (Start (Transfer { leg; hop = 1 }));
      Engine.schedule_at net.engine (start + c1) (fun () ->
          Trace.emit ~time:(start + c1) ~task (Finish (Transfer { leg; hop = 1 }));
          forward net record ~task ~at:1 ~on_complete))

let fresh_record address =
  { address; start = 0; comms = Array.make address.Spider.depth 0 }

let to_schedule spider records =
  Spider_schedule.make spider
    (Array.map
       (fun r ->
         { Spider_schedule.address = r.address; start = r.start; comms = r.comms })
       records)

let run_sequence_spider spider seq =
  let net = build spider in
  let records = Array.map fresh_record seq in
  Array.iteri
    (fun idx record ->
      emit net record ~task:(idx + 1) ~on_complete:(fun () -> ()))
    records;
  Engine.run net.engine;
  to_schedule spider records

let chain_schedule_of_spider sched =
  let spider = Spider_schedule.spider sched in
  let chain = Spider.leg_chain spider 1 in
  Schedule.make chain
    (Array.map
       (fun (e : Spider_schedule.entry) ->
         { Schedule.proc = e.address.Spider.depth; start = e.start; comms = e.comms })
       (Spider_schedule.entries sched))

let run_sequence_chain chain seq =
  let spider = Spider.of_chain chain in
  let addresses = Array.map (fun depth -> { Spider.leg = 1; depth }) seq in
  chain_schedule_of_spider (run_sequence_spider spider addresses)

type execution_report = {
  realized : Spider_schedule.t;
  planned_makespan : int;
  realized_makespan : int;
  per_task_slack : int array;
}

let execute_spider plan =
  (match Spider_schedule.check ~require_nonnegative:true plan with
  | [] -> ()
  | problems ->
      invalid_arg
        ("Msts.Netsim.execute: infeasible plan: " ^ String.concat "; " problems));
  Obs.span "netsim.execute"
    ~args:[ ("tasks", string_of_int (Spider_schedule.task_count plan)) ]
  @@ fun () ->
  let spider = Spider_schedule.spider plan in
  let net = build spider in
  let entries = Spider_schedule.entries plan in
  let records = Array.map (fun (e : Spider_schedule.entry) -> fresh_record e.address) entries in
  Array.iteri
    (fun idx (e : Spider_schedule.entry) ->
      let record = records.(idx) in
      let chain = Spider.leg_chain spider e.address.Spider.leg in
      let c1 = Chain.latency chain 1 in
      let planned_emission = Msts_schedule.Comm_vector.first_emission e.comms in
      (* Release at the planned time: the port is known free then (the plan
         is feasible), so the reservation starts exactly at that date. *)
      let task = idx + 1 in
      let hop1 = Trace.Transfer { leg = e.address.Spider.leg; hop = 1 } in
      Engine.schedule_at net.engine planned_emission (fun () ->
          record.comms.(0) <- planned_emission;
          Trace.emit ~time:planned_emission ~task (Start hop1);
          Engine.schedule_at net.engine (planned_emission + c1) (fun () ->
              Trace.emit ~time:(planned_emission + c1) ~task (Finish hop1);
              forward net record ~task ~at:1 ~on_complete:(fun () -> ()))))
    entries;
  Engine.run net.engine;
  let realized = to_schedule spider records in
  let slack =
    Array.mapi
      (fun idx (e : Spider_schedule.entry) ->
        let w = Spider.work spider e.address in
        e.start + w - (records.(idx).start + w))
      entries
  in
  {
    realized;
    planned_makespan = Spider_schedule.makespan plan;
    realized_makespan = Spider_schedule.makespan realized;
    per_task_slack = slack;
  }

let execute = function
  | Plan.Spider plan -> execute_spider plan
  | Plan.Chain plan -> execute_spider (Spider_schedule.of_chain_schedule plan)

(* ---------- finite buffers ---------- *)

(* A counting credit gate: [acquire] runs the continuation immediately when
   a slot is free, otherwise queues it; [release] hands the slot to the
   oldest waiter (the credit passes directly, so capacity is never
   exceeded). *)
module Credit = struct
  type t = { mutable free : int; waiting : (unit -> unit) Queue.t }

  let create capacity = { free = capacity; waiting = Queue.create () }

  let acquire t k =
    if t.free > 0 then begin
      t.free <- t.free - 1;
      k ()
    end
    else begin
      Msts_obs.Obs.count "netsim.buffer_waits";
      Queue.push k t.waiting
    end

  let release t =
    match Queue.take_opt t.waiting with
    | Some k -> k ()
    | None -> t.free <- t.free + 1
end

let same_shape a b =
  Spider.legs a = Spider.legs b
  && List.for_all
       (fun l -> Chain.length (Spider.leg_chain a l) = Chain.length (Spider.leg_chain b l))
       (List.init (Spider.legs a) (fun i -> i + 1))

let replay_routing ?(buffer = max_int) ?on plan =
  if buffer < 1 then invalid_arg "Msts.Netsim.replay_routing: buffer must be >= 1";
  Obs.span "netsim.replay_routing"
    ~args:[ ("tasks", string_of_int (Spider_schedule.task_count plan)) ]
  @@ fun () ->
  let spider =
    match on with
    | None -> Spider_schedule.spider plan
    | Some other ->
        if not (same_shape other (Spider_schedule.spider plan)) then
          invalid_arg "Msts.Netsim.replay_routing: platform shape mismatch";
        other
  in
  let net = build spider in
  let credits =
    Array.init (Spider.legs spider) (fun lidx ->
        Array.init
          (Chain.length (Spider.leg_chain spider (lidx + 1)))
          (fun _ -> Credit.create buffer))
  in
  let credit { Spider.leg; depth } = credits.(leg - 1).(depth - 1) in
  let entries = Spider_schedule.entries plan in
  let records =
    Array.map (fun (e : Spider_schedule.entry) -> fresh_record e.address) entries
  in
  (* forward from node [at] (just fully received there) towards the
     destination, holding [at]'s slot; slots move strictly forward. *)
  let rec forward_bounded record ~task ~at =
    let { Spider.leg; depth } = record.address in
    let chain = Spider.leg_chain net.spider leg in
    if at = depth then begin
      Obs.count "netsim.executions";
      let w = Chain.work chain depth in
      Resource.request net.procs.(leg - 1).(depth - 1) ~duration:w ~tag:task
        ~on_start:(fun start ->
          record.start <- start;
          if Trace.recording () then begin
            Trace.emit ~time:start ~task (Start (Compute { leg; depth }));
            Engine.schedule_at net.engine (start + w) (fun () ->
                Trace.emit ~time:(start + w) ~task
                  (Finish (Compute { leg; depth })))
          end;
          (* execution begins: the buffer slot at the destination frees *)
          Credit.release (credit { Spider.leg; depth = at }))
    end
    else begin
      let next = at + 1 in
      let c = Chain.latency chain next in
      Credit.acquire (credit { Spider.leg; depth = next }) (fun () ->
          Obs.count "netsim.transfers";
          Obs.record "netsim.transfer_us" c;
          Resource.request net.links.(leg - 1).(next - 1) ~duration:c ~tag:task
            ~on_start:(fun start ->
              record.comms.(next - 1) <- start;
              Trace.emit ~time:start ~task (Start (Transfer { leg; hop = next }));
              Engine.schedule_at net.engine (start + c) (fun () ->
                  Trace.emit ~time:(start + c) ~task
                    (Finish (Transfer { leg; hop = next }));
                  (* outgoing transfer done: the relay's slot frees *)
                  Credit.release (credit { Spider.leg; depth = at });
                  forward_bounded record ~task ~at:next)))
    end
  in
  (* release tasks in the plan's emission order; dates are recomputed *)
  Array.iteri
    (fun idx record ->
      let { Spider.leg; _ } = record.address in
      let chain = Spider.leg_chain net.spider leg in
      let c1 = Chain.latency chain 1 in
      Credit.acquire (credit { Spider.leg; depth = 1 }) (fun () ->
          Obs.count "netsim.transfers";
          Obs.record "netsim.transfer_us" c1;
          Resource.request net.port ~duration:c1 ~tag:(idx + 1)
            ~on_start:(fun start ->
              record.comms.(0) <- start;
              Trace.emit ~time:start ~task:(idx + 1)
                (Start (Transfer { leg; hop = 1 }));
              Engine.schedule_at net.engine (start + c1) (fun () ->
                  Trace.emit ~time:(start + c1) ~task:(idx + 1)
                    (Finish (Transfer { leg; hop = 1 }));
                  forward_bounded record ~task:(idx + 1) ~at:1))))
    records;
  Engine.run net.engine;
  let realized = to_schedule spider records in
  let slack =
    Array.mapi
      (fun idx (e : Spider_schedule.entry) ->
        let w = Spider.work spider e.address in
        e.start + w - (records.(idx).start + w))
      entries
  in
  {
    realized;
    planned_makespan = Spider_schedule.makespan plan;
    realized_makespan = Spider_schedule.makespan realized;
    per_task_slack = slack;
  }

let execute_plan_bounded ~buffer plan =
  if buffer < 1 then
    invalid_arg "Msts.Netsim.execute_plan_bounded: buffer must be >= 1";
  replay_routing ~buffer plan

let degrade ?(latency_factor = 1) spider ~address ~work_factor =
  if work_factor < 1 then
    invalid_arg "Msts.Netsim.degrade: work_factor must be >= 1";
  if latency_factor < 1 then
    invalid_arg "Msts.Netsim.degrade: latency_factor must be >= 1";
  Spider.scale ~latency_factor ~work_factor spider address

(* ---------- mid-run fault injection ---------- *)

type fault_report = {
  observed : Spider_schedule.t;
  observed_makespan : int;
  completions : int array;
  aborted_ops : int;
  returned_tasks : int;
  transfer_retries : int;
}

(* The bounded/eager executors above reserve every resource up front, which
   only works because durations never change mid-run.  Under faults an
   in-flight operation can be stretched (slowdown) or aborted (drop, crash),
   so this executor keeps explicit FIFO queues and grants one operation at a
   time; timings coincide with the reservation-based executors when the
   trace is empty (the test suite checks this). *)
module Faulty = struct
  type tstate =
    | At_master
    | Emitting (* master-port transfer (hop 1) in flight *)
    | At_node of int
    | In_transit of int (* link transfer into node [k] in flight *)
    | Executing of int
    | Finished of int

  type task = {
    id : int;
    mutable dest : Spider.address;
    mutable st : tstate;
    mutable gen : int; (* bumped whenever the task's course changes; stale
                          queue entries and retry events check it *)
    mutable comms_rev : int list; (* realised hop starts, deepest first *)
    mutable exec_start : int;
    mutable finish : int;
    mutable earliest : int; (* retry backoff for re-emission *)
  }

  type op = {
    owner : task;
    o_gen : int;
    what : Trace.op; (* identity for the trace recorder, fixed at request *)
    duration : unit -> int; (* evaluated at grant time, so accumulated
                               slowdown factors apply *)
    started : int -> unit;
    finished : unit -> unit;
  }

  (* A unit-capacity FIFO resource whose in-flight grant can be stretched or
     aborted.  [started] runs synchronously at grant; the completion event
     is guarded by an epoch counter so stretches and aborts invalidate it. *)
  type fres = {
    fengine : Engine.t;
    mutable busy : op option;
    mutable cur_end : int;
    mutable epoch : int;
    waiting : op Queue.t;
  }

  let fres_create fengine =
    { fengine; busy = None; cur_end = 0; epoch = 0; waiting = Queue.create () }

  let rec fres_arm r =
    let ep = r.epoch in
    Engine.schedule_at r.fengine r.cur_end (fun () ->
        if r.epoch = ep then
          match r.busy with
          | None -> ()
          | Some op ->
              r.busy <- None;
              r.epoch <- r.epoch + 1;
              op.finished ();
              fres_pump r)

  and fres_pump r =
    match r.busy with
    | Some _ -> ()
    | None -> (
        match Queue.take_opt r.waiting with
        | None -> ()
        | Some op ->
            if op.o_gen <> op.owner.gen then fres_pump r (* stale entry *)
            else begin
              let now = Engine.now r.fengine in
              r.busy <- Some op;
              r.epoch <- r.epoch + 1;
              r.cur_end <- now + op.duration ();
              op.started now;
              fres_arm r
            end)

  let fres_request r op =
    Queue.push op r.waiting;
    fres_pump r

  let fres_stretch r ~factor =
    match r.busy with
    | None -> ()
    | Some _ ->
        let now = Engine.now r.fengine in
        r.cur_end <- now + ((r.cur_end - now) * factor);
        r.epoch <- r.epoch + 1;
        fres_arm r

  (* Abort without pumping: the resource may just have died, in which case
     its queue must not restart (entries go stale in the task sweep). *)
  let fres_abort r =
    match r.busy with
    | None -> None
    | Some op ->
        r.busy <- None;
        r.epoch <- r.epoch + 1;
        Some op

  type mode = Plan of Spider.address array | Pull of int

  let run ?max_events spider mode trace decide =
    let fn =
      match mode with
      | Plan _ -> "Msts.Netsim.replay_under_faults"
      | Pull _ -> "Msts.Netsim.pull_under_faults"
    in
    (match Fault.validate spider trace with
    | [] -> ()
    | problems ->
        invalid_arg (fn ^ ": bad fault trace: " ^ String.concat "; " problems));
    Obs.span "netsim.faulty_run"
      ~args:
        [
          ("mode", match mode with Plan _ -> "plan" | Pull _ -> "pull");
          ("fault_events", string_of_int (List.length trace));
        ]
    @@ fun () ->
    let trace = Fault.normalize trace in
    let engine = Engine.create () in
    (* trace recorder shorthand: events dated at the engine's current time *)
    let memit id kind = Trace.emit ~time:(Engine.now engine) ~task:id kind in
    let state = Fault.init spider in
    let legs = Spider.legs spider in
    let port = fres_create engine in
    let bank () =
      Array.init legs (fun lidx ->
          Array.init
            (Chain.length (Spider.leg_chain spider (lidx + 1)))
            (fun _ -> fres_create engine))
    in
    let links = bank () and procs = bank () in
    let n = match mode with Plan dests -> Array.length dests | Pull n -> n in
    let tasks =
      Array.init n (fun idx ->
          {
            id = idx + 1;
            dest =
              (match mode with
              | Plan dests -> dests.(idx)
              | Pull _ -> { Spider.leg = 1; depth = 1 });
            st = At_master;
            gen = 0;
            comms_rev = [];
            exec_start = 0;
            finish = 0;
            earliest = 0;
          })
    in
    let aborted = ref 0 and returned = ref 0 and retries = ref 0 in
    let emitting = ref false in
    (* plan mode: the master's emission queue (ids, in order); pull mode:
       returned tasks awaiting a fresh processor request *)
    let pending =
      ref (match mode with Plan _ -> List.init n (fun i -> i + 1) | Pull _ -> [])
    in
    let requests = Queue.create () in
    let minted = ref 0 in
    let task id = tasks.(id - 1) in
    let leg_chain l = Spider.leg_chain spider l in
    let rec proceed t =
      match t.st with
      | At_node k ->
          let { Spider.leg; depth } = t.dest in
          if k = depth then (
            Obs.count "netsim.executions";
            let what = Trace.Compute { leg; depth = k } in
            fres_request procs.(leg - 1).(k - 1)
              {
                owner = t;
                o_gen = t.gen;
                what;
                duration =
                  (fun () ->
                    Chain.work (leg_chain leg) k
                    * Fault.proc_factor state { Spider.leg; depth = k });
                started =
                  (fun s ->
                    t.st <- Executing k;
                    t.exec_start <- s;
                    Trace.emit ~time:s ~task:t.id (Start what));
                finished =
                  (fun () ->
                    t.st <- Finished k;
                    t.finish <- Engine.now engine;
                    memit t.id (Finish what);
                    task_finished t k);
              })
          else begin
            let next = k + 1 in
            Obs.count "netsim.transfers";
            let what = Trace.Transfer { leg; hop = next } in
            fres_request links.(leg - 1).(next - 1)
              {
                owner = t;
                o_gen = t.gen;
                what;
                duration =
                  (fun () ->
                    let d =
                      Chain.latency (leg_chain leg) next
                      * Fault.link_factor state { Spider.leg; depth = next }
                    in
                    Obs.record "netsim.transfer_us" d;
                    d);
                started =
                  (fun s ->
                    t.st <- In_transit next;
                    t.comms_rev <- s :: t.comms_rev;
                    Trace.emit ~time:s ~task:t.id (Start what));
                finished =
                  (fun () ->
                    t.st <- At_node next;
                    memit t.id (Finish what);
                    proceed t);
              }
          end
      | _ -> ()
    and task_finished t k =
      match mode with
      | Plan _ -> ()
      | Pull _ ->
          (* the processor asks for more work as soon as it finishes *)
          Queue.push { Spider.leg = t.dest.Spider.leg; depth = k } requests;
          try_emit ()
    and emit t =
      emitting := true;
      Obs.count "netsim.transfers";
      let what = Trace.Transfer { leg = t.dest.Spider.leg; hop = 1 } in
      fres_request port
        {
          owner = t;
          o_gen = t.gen;
          what;
          duration =
            (fun () ->
              let d =
                Chain.latency (leg_chain t.dest.Spider.leg) 1
                * Fault.link_factor state
                    { Spider.leg = t.dest.Spider.leg; depth = 1 }
              in
              Obs.record "netsim.transfer_us" d;
              d);
          started =
            (fun s ->
              t.st <- Emitting;
              t.comms_rev <- [ s ];
              Trace.emit ~time:s ~task:t.id (Start what));
          finished =
            (fun () ->
              emitting := false;
              t.st <- At_node 1;
              memit t.id (Finish what);
              proceed t;
              try_emit ());
        }
    and try_emit () =
      if not !emitting then begin
        let now = Engine.now engine in
        (* first task in queue order whose retry backoff has expired *)
        let rec pick acc = function
          | [] -> None
          | id :: rest when (task id).earliest <= now ->
              pending := List.rev_append acc rest;
              Some (task id)
          | id :: rest -> pick (id :: acc) rest
        in
        let wake ids =
          let tmin =
            List.fold_left (fun m id -> min m (task id).earliest) max_int ids
          in
          if tmin > now && tmin < max_int then
            Engine.schedule_at engine tmin try_emit
        in
        match mode with
        | Plan _ -> (
            match pick [] !pending with
            | Some t -> emit t
            | None -> ( match !pending with [] -> () | ids -> wake ids))
        | Pull budget -> (
            (* oldest request from a processor that still exists *)
            let rec head () =
              match Queue.peek_opt requests with
              | None -> None
              | Some addr ->
                  if Fault.is_alive state addr then Some addr
                  else begin
                    ignore (Queue.pop requests);
                    head ()
                  end
            in
            match head () with
            | None -> ()
            | Some addr -> (
                match pick [] !pending with
                | Some t ->
                    ignore (Queue.pop requests);
                    t.dest <- addr;
                    emit t
                | None ->
                    if !minted < budget then begin
                      ignore (Queue.pop requests);
                      incr minted;
                      let t = tasks.(!minted - 1) in
                      t.dest <- addr;
                      emit t
                    end
                    else ( match !pending with [] -> () | ids -> wake ids)))
      end
    in
    (* blind static rule when a destination dies: deepest survivor on the
       same leg, else depth 1 of the first surviving leg *)
    let master_fallback t =
      let leg = t.dest.Spider.leg in
      let a = Fault.alive_depth state ~leg in
      if a >= 1 then t.dest <- { Spider.leg; depth = min t.dest.Spider.depth a }
      else begin
        let rec find l =
          if l > legs then
            invalid_arg
              (fn
             ^ ": fault trace leaves no processor alive while tasks remain")
          else if Fault.alive_depth state ~leg:l >= 1 then l
          else find (l + 1)
        in
        t.dest <- { Spider.leg = find 1; depth = 1 }
      end
    in
    let return_to_master t =
      t.gen <- t.gen + 1;
      t.st <- At_master;
      t.comms_rev <- [];
      memit t.id Trace.Return;
      incr returned;
      pending := !pending @ [ t.id ];
      match mode with Plan _ -> master_fallback t | Pull _ -> ()
    in
    let clamp t survive =
      if t.dest.Spider.depth > survive then
        t.dest <- { t.dest with Spider.depth = survive }
    in
    let sweep_task ~leg ~survive t =
      match t.st with
      | Finished _ -> ()
      | At_master -> (
          match mode with
          | Plan _ ->
              if t.dest.Spider.leg = leg && t.dest.Spider.depth > survive then
                master_fallback t
          | Pull _ -> () (* destinations are assigned at emission *))
      | Emitting ->
          if t.dest.Spider.leg = leg then
            if survive = 0 then return_to_master t else clamp t survive
      | In_transit k ->
          if t.dest.Spider.leg = leg then
            if k > survive then begin
              (* the transfer into [k] was aborted in the resource sweep *)
              let p = k - 1 in
              if p = 0 || p > survive then return_to_master t
              else begin
                t.st <- At_node p;
                t.comms_rev <- List.tl t.comms_rev;
                clamp t survive;
                t.gen <- t.gen + 1;
                proceed t
              end
            end
            else clamp t survive
      | At_node k ->
          if t.dest.Spider.leg = leg then
            if k > survive then return_to_master t
            else if t.dest.Spider.depth > survive then begin
              clamp t survive;
              if t.dest.Spider.depth = k then begin
                (* was queued on a now-dead link; execute here instead *)
                t.gen <- t.gen + 1;
                proceed t
              end
            end
      | Executing k ->
          if t.dest.Spider.leg = leg && k > survive then return_to_master t
    in
    let abort_op r =
      match fres_abort r with
      | Some op ->
          incr aborted;
          memit op.owner.id (Trace.Abort op.what);
          Some op
      | None -> None
    in
    let crash_sweep ~leg ~survive ~old_alive =
      for k = survive + 1 to old_alive do
        ignore (abort_op links.(leg - 1).(k - 1));
        ignore (abort_op procs.(leg - 1).(k - 1))
      done;
      (if survive = 0 then
         match port.busy with
         | Some op when op.owner.dest.Spider.leg = leg ->
             ignore (abort_op port);
             emitting := false
         | _ -> ());
      Array.iter (sweep_task ~leg ~survive) tasks
    in
    let build_snapshot index at =
      let completed = ref [] and in_flight = ref [] in
      Array.iter
        (fun t ->
          match t.st with
          | Finished _ -> completed := t.id :: !completed
          | At_master -> ()
          | Emitting | At_node _ | In_transit _ | Executing _ ->
              in_flight := (t.id, t.dest) :: !in_flight)
        tasks;
      {
        Fault.time = at;
        state = Fault.copy state;
        completed = List.rev !completed;
        in_flight = List.rev !in_flight;
        at_master = List.map (fun id -> (id, (task id).dest)) !pending;
        remaining = List.filteri (fun i _ -> i > index) trace;
      }
    in
    let apply_redirect lst =
      let ids = List.map fst lst in
      if List.sort compare ids <> List.sort compare !pending then
        invalid_arg
          "Msts.Netsim.replay_under_faults: Redirect must cover exactly the \
           master-resident tasks";
      List.iter
        (fun (id, addr) ->
          if not (Fault.is_alive state addr) then
            invalid_arg
              "Msts.Netsim.replay_under_faults: Redirect to a dead processor";
          (task id).dest <- addr)
        lst;
      pending := ids
    in
    let handle_fault index at event =
      Obs.count "netsim.fault_events";
      (match event with
      | Fault.Slow_proc { address = { Spider.leg; depth }; factor } ->
          Fault.apply state event;
          if depth <= Fault.alive_depth state ~leg then
            fres_stretch procs.(leg - 1).(depth - 1) ~factor
      | Fault.Slow_link { address = { Spider.leg; depth }; factor } ->
          Fault.apply state event;
          if depth = 1 then (
            (* the master port is busy for hop 1 of whichever leg it feeds *)
            match port.busy with
            | Some op when op.owner.dest.Spider.leg = leg ->
                fres_stretch port ~factor
            | _ -> ())
          else if depth <= Fault.alive_depth state ~leg then
            fres_stretch links.(leg - 1).(depth - 1) ~factor
      | Fault.Drop_transfer { address = { Spider.leg; depth }; penalty } ->
          if depth = 1 then (
            match port.busy with
            | Some op when op.owner.dest.Spider.leg = leg -> (
                match abort_op port with
                | None -> ()
                | Some { owner = t; _ } ->
                    incr retries;
                    emitting := false;
                    t.gen <- t.gen + 1;
                    t.st <- At_master;
                    t.comms_rev <- [];
                    t.earliest <- at + penalty;
                    pending := !pending @ [ t.id ];
                    (* pull mode: the requesting processor is still idle and
                       waiting — its request goes back in the queue *)
                    (match mode with
                    | Plan _ -> ()
                    | Pull _ -> Queue.push t.dest requests))
            | _ -> ())
          else (
            match abort_op links.(leg - 1).(depth - 1) with
            | None -> ()
            | Some { owner = t; _ } ->
                incr retries;
                t.gen <- t.gen + 1;
                t.st <- At_node (depth - 1);
                t.comms_rev <- List.tl t.comms_rev;
                let g = t.gen in
                Engine.schedule_at engine (at + penalty) (fun () ->
                    if t.gen = g then proceed t);
                (* the link itself recovers at once: let queued users in *)
                fres_pump links.(leg - 1).(depth - 1))
      | Fault.Crash_proc { Spider.leg; depth = _ } ->
          let old_alive = Fault.alive_depth state ~leg in
          Fault.apply state event;
          let survive = Fault.alive_depth state ~leg in
          if survive < old_alive then crash_sweep ~leg ~survive ~old_alive);
      (match mode with
      | Pull _ -> ()
      | Plan _ -> (
          match decide (build_snapshot index at) with
          | Fault.Keep -> ()
          | Fault.Redirect lst -> apply_redirect lst));
      try_emit ()
    in
    (* Fault events are scheduled first, so at equal timestamps they fire
       before any completion: faults take effect at the start of their
       instant. *)
    List.iteri
      (fun index { Fault.at; event } ->
        Engine.schedule_at engine at (fun () -> handle_fault index at event))
      trace;
    (match mode with
    | Plan _ -> ()
    | Pull _ ->
        List.iter (fun addr -> Queue.push addr requests) (Spider.addresses spider));
    try_emit ();
    Engine.run ?max_events engine;
    Array.iter
      (fun t ->
        match t.st with
        | Finished _ -> ()
        | _ ->
            invalid_arg
              (fn
             ^ ": unserved tasks remain after the run (did the trace kill \
                every processor?)"))
      tasks;
    if !aborted > 0 then Obs.count ~n:!aborted "netsim.aborted_ops";
    if !returned > 0 then Obs.count ~n:!returned "netsim.returned_tasks";
    if !retries > 0 then Obs.count ~n:!retries "netsim.transfer_retries";
    let entries =
      Array.map
        (fun t ->
          {
            Spider_schedule.address = t.dest;
            start = t.exec_start;
            comms = Array.of_list (List.rev t.comms_rev);
          })
        tasks
    in
    {
      observed = Spider_schedule.make spider entries;
      observed_makespan = Array.fold_left (fun acc t -> max acc t.finish) 0 tasks;
      completions = Array.map (fun t -> t.finish) tasks;
      aborted_ops = !aborted;
      returned_tasks = !returned;
      transfer_retries = !retries;
    }
end

let replay_under_faults ?max_events ?(trace = [])
    ?(decide = fun (_ : Fault.snapshot) -> Fault.Keep) plan =
  let spider = Spider_schedule.spider plan in
  let dests =
    Array.map
      (fun (e : Spider_schedule.entry) -> e.address)
      (Spider_schedule.entries plan)
  in
  Faulty.run ?max_events spider (Faulty.Plan dests) trace decide

let pull_under_faults ?max_events ?(trace = []) spider ~tasks =
  if tasks < 0 then
    invalid_arg "Msts.Netsim.pull_under_faults: negative task count";
  Faulty.run ?max_events spider (Faulty.Pull tasks) trace (fun _ -> Fault.Keep)

let pull_policy ?(buffer = 1) spider ~tasks =
  if buffer < 1 then invalid_arg "Msts.Netsim.pull_policy: buffer must be >= 1";
  if tasks < 0 then invalid_arg "Msts.Netsim.pull_policy: negative task count";
  Obs.span "netsim.pull" ~args:[ ("tasks", string_of_int tasks) ] @@ fun () ->
  let net = build spider in
  let emitted = ref 0 in
  let records = ref [] in
  let rec serve address =
    if !emitted < tasks then begin
      incr emitted;
      let task = !emitted in
      let record = fresh_record address in
      records := record :: !records;
      (* A processor re-requests as soon as one of its tasks completes. *)
      emit net record ~task ~on_complete:(fun () -> serve address)
    end
  in
  (* Initial credits, shallow processors first within each leg. *)
  List.iter
    (fun address ->
      for _ = 1 to buffer do
        serve address
      done)
    (Spider.addresses spider);
  Engine.run net.engine;
  to_schedule spider (Array.of_list (List.rev !records))
