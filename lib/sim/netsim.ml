module Spider = Msts_platform.Spider
module Chain = Msts_platform.Chain
module Schedule = Msts_schedule.Schedule
module Spider_schedule = Msts_schedule.Spider_schedule

type record = {
  mutable address : Spider.address;
  mutable start : int;
  comms : int array; (* length = depth of the destination *)
}

type net = {
  engine : Engine.t;
  spider : Spider.t;
  port : Resource.t;
  links : Resource.t array array; (* links.(l-1).(k-1) = link k of leg l, k >= 2 unused slot 0 *)
  procs : Resource.t array array;
}

let build spider =
  let engine = Engine.create () in
  let legs = Spider.legs spider in
  let make_bank kind =
    Array.init legs (fun lidx ->
        let chain = Spider.leg_chain spider (lidx + 1) in
        Array.init (Chain.length chain) (fun kidx ->
            Resource.create engine
              ~name:(Printf.sprintf "%s l%d k%d" kind (lidx + 1) (kidx + 1))))
  in
  {
    engine;
    spider;
    port = Resource.create engine ~name:"master port";
    links = make_bank "link";
    procs = make_bank "proc";
  }

(* Forward a task that just became available at node [at] of its leg at the
   current simulated time; executes when it reaches its destination. *)
let rec forward net record ~task ~at ~on_complete =
  let { Spider.leg; depth } = record.address in
  let chain = Spider.leg_chain net.spider leg in
  if at = depth then
    Resource.request net.procs.(leg - 1).(depth - 1)
      ~duration:(Chain.work chain depth) ~tag:task ~on_start:(fun start ->
        record.start <- start;
        Engine.schedule_at net.engine (start + Chain.work chain depth)
          on_complete)
  else begin
    let next = at + 1 in
    let c = Chain.latency chain next in
    Resource.request net.links.(leg - 1).(next - 1) ~duration:c ~tag:task
      ~on_start:(fun start ->
        record.comms.(next - 1) <- start;
        Engine.schedule_at net.engine (start + c) (fun () ->
            forward net record ~task ~at:next ~on_complete))
  end

(* Emit through the master's shared port, then forward down the leg. *)
let emit net record ~task ~on_complete =
  let { Spider.leg; _ } = record.address in
  let chain = Spider.leg_chain net.spider leg in
  let c1 = Chain.latency chain 1 in
  Resource.request net.port ~duration:c1 ~tag:task ~on_start:(fun start ->
      record.comms.(0) <- start;
      Engine.schedule_at net.engine (start + c1) (fun () ->
          forward net record ~task ~at:1 ~on_complete))

let fresh_record address =
  { address; start = 0; comms = Array.make address.Spider.depth 0 }

let to_schedule spider records =
  Spider_schedule.make spider
    (Array.map
       (fun r ->
         { Spider_schedule.address = r.address; start = r.start; comms = r.comms })
       records)

let run_sequence_spider spider seq =
  let net = build spider in
  let records = Array.map fresh_record seq in
  Array.iteri
    (fun idx record ->
      emit net record ~task:(idx + 1) ~on_complete:(fun () -> ()))
    records;
  Engine.run net.engine;
  to_schedule spider records

let chain_schedule_of_spider sched =
  let spider = Spider_schedule.spider sched in
  let chain = Spider.leg_chain spider 1 in
  Schedule.make chain
    (Array.map
       (fun (e : Spider_schedule.entry) ->
         { Schedule.proc = e.address.Spider.depth; start = e.start; comms = e.comms })
       (Spider_schedule.entries sched))

let run_sequence_chain chain seq =
  let spider = Spider.of_chain chain in
  let addresses = Array.map (fun depth -> { Spider.leg = 1; depth }) seq in
  chain_schedule_of_spider (run_sequence_spider spider addresses)

type execution_report = {
  realized : Spider_schedule.t;
  planned_makespan : int;
  realized_makespan : int;
  per_task_slack : int array;
}

let execute_plan plan =
  (match Spider_schedule.check ~require_nonnegative:true plan with
  | [] -> ()
  | problems ->
      invalid_arg
        ("Netsim.execute_plan: infeasible plan: " ^ String.concat "; " problems));
  let spider = Spider_schedule.spider plan in
  let net = build spider in
  let entries = Spider_schedule.entries plan in
  let records = Array.map (fun (e : Spider_schedule.entry) -> fresh_record e.address) entries in
  Array.iteri
    (fun idx (e : Spider_schedule.entry) ->
      let record = records.(idx) in
      let chain = Spider.leg_chain spider e.address.Spider.leg in
      let c1 = Chain.latency chain 1 in
      let planned_emission = Msts_schedule.Comm_vector.first_emission e.comms in
      (* Release at the planned time: the port is known free then (the plan
         is feasible), so the reservation starts exactly at that date. *)
      Engine.schedule_at net.engine planned_emission (fun () ->
          record.comms.(0) <- planned_emission;
          Engine.schedule_at net.engine (planned_emission + c1) (fun () ->
              forward net record ~task:(idx + 1) ~at:1 ~on_complete:(fun () -> ()))))
    entries;
  Engine.run net.engine;
  let realized = to_schedule spider records in
  let slack =
    Array.mapi
      (fun idx (e : Spider_schedule.entry) ->
        let w = Spider.work spider e.address in
        e.start + w - (records.(idx).start + w))
      entries
  in
  {
    realized;
    planned_makespan = Spider_schedule.makespan plan;
    realized_makespan = Spider_schedule.makespan realized;
    per_task_slack = slack;
  }

let execute_chain_plan plan =
  execute_plan (Spider_schedule.of_chain_schedule plan)

(* ---------- finite buffers ---------- *)

(* A counting credit gate: [acquire] runs the continuation immediately when
   a slot is free, otherwise queues it; [release] hands the slot to the
   oldest waiter (the credit passes directly, so capacity is never
   exceeded). *)
module Credit = struct
  type t = { mutable free : int; waiting : (unit -> unit) Queue.t }

  let create capacity = { free = capacity; waiting = Queue.create () }

  let acquire t k =
    if t.free > 0 then begin
      t.free <- t.free - 1;
      k ()
    end
    else Queue.push k t.waiting

  let release t =
    match Queue.take_opt t.waiting with
    | Some k -> k ()
    | None -> t.free <- t.free + 1
end

let same_shape a b =
  Spider.legs a = Spider.legs b
  && List.for_all
       (fun l -> Chain.length (Spider.leg_chain a l) = Chain.length (Spider.leg_chain b l))
       (List.init (Spider.legs a) (fun i -> i + 1))

let replay_routing ?(buffer = max_int) ?on plan =
  if buffer < 1 then invalid_arg "Netsim.execute_plan_bounded: buffer must be >= 1";
  let spider =
    match on with
    | None -> Spider_schedule.spider plan
    | Some other ->
        if not (same_shape other (Spider_schedule.spider plan)) then
          invalid_arg "Netsim.replay_routing: platform shape mismatch";
        other
  in
  let net = build spider in
  let credits =
    Array.init (Spider.legs spider) (fun lidx ->
        Array.init
          (Chain.length (Spider.leg_chain spider (lidx + 1)))
          (fun _ -> Credit.create buffer))
  in
  let credit { Spider.leg; depth } = credits.(leg - 1).(depth - 1) in
  let entries = Spider_schedule.entries plan in
  let records =
    Array.map (fun (e : Spider_schedule.entry) -> fresh_record e.address) entries
  in
  (* forward from node [at] (just fully received there) towards the
     destination, holding [at]'s slot; slots move strictly forward. *)
  let rec forward_bounded record ~task ~at =
    let { Spider.leg; depth } = record.address in
    let chain = Spider.leg_chain net.spider leg in
    if at = depth then
      Resource.request net.procs.(leg - 1).(depth - 1)
        ~duration:(Chain.work chain depth) ~tag:task ~on_start:(fun start ->
          record.start <- start;
          (* execution begins: the buffer slot at the destination frees *)
          Credit.release (credit { Spider.leg; depth = at }))
    else begin
      let next = at + 1 in
      let c = Chain.latency chain next in
      Credit.acquire (credit { Spider.leg; depth = next }) (fun () ->
          Resource.request net.links.(leg - 1).(next - 1) ~duration:c ~tag:task
            ~on_start:(fun start ->
              record.comms.(next - 1) <- start;
              Engine.schedule_at net.engine (start + c) (fun () ->
                  (* outgoing transfer done: the relay's slot frees *)
                  Credit.release (credit { Spider.leg; depth = at });
                  forward_bounded record ~task ~at:next)))
    end
  in
  (* release tasks in the plan's emission order; dates are recomputed *)
  Array.iteri
    (fun idx record ->
      let { Spider.leg; _ } = record.address in
      let chain = Spider.leg_chain net.spider leg in
      let c1 = Chain.latency chain 1 in
      Credit.acquire (credit { Spider.leg; depth = 1 }) (fun () ->
          Resource.request net.port ~duration:c1 ~tag:(idx + 1)
            ~on_start:(fun start ->
              record.comms.(0) <- start;
              Engine.schedule_at net.engine (start + c1) (fun () ->
                  forward_bounded record ~task:(idx + 1) ~at:1))))
    records;
  Engine.run net.engine;
  let realized = to_schedule spider records in
  let slack =
    Array.mapi
      (fun idx (e : Spider_schedule.entry) ->
        let w = Spider.work spider e.address in
        e.start + w - (records.(idx).start + w))
      entries
  in
  {
    realized;
    planned_makespan = Spider_schedule.makespan plan;
    realized_makespan = Spider_schedule.makespan realized;
    per_task_slack = slack;
  }

let execute_plan_bounded ~buffer plan = replay_routing ~buffer plan

let degrade spider ~address ~work_factor =
  if work_factor < 1 then invalid_arg "Netsim.degrade: work_factor must be >= 1";
  let { Spider.leg; depth } = address in
  Spider.make
    (Array.init (Spider.legs spider) (fun lidx ->
         let chain = Spider.leg_chain spider (lidx + 1) in
         if lidx + 1 <> leg then chain
         else
           Chain.of_pairs
             (List.mapi
                (fun didx (c, w) ->
                  if didx + 1 = depth then (c, w * work_factor) else (c, w))
                (Chain.to_pairs chain))))

let pull_policy ?(buffer = 1) spider ~tasks =
  if buffer < 1 then invalid_arg "Netsim.pull_policy: buffer must be >= 1";
  if tasks < 0 then invalid_arg "Netsim.pull_policy: negative task count";
  let net = build spider in
  let emitted = ref 0 in
  let records = ref [] in
  let rec serve address =
    if !emitted < tasks then begin
      incr emitted;
      let task = !emitted in
      let record = fresh_record address in
      records := record :: !records;
      (* A processor re-requests as soon as one of its tasks completes. *)
      emit net record ~task ~on_complete:(fun () -> serve address)
    end
  in
  (* Initial credits, shallow processors first within each leg. *)
  List.iter
    (fun address ->
      for _ = 1 to buffer do
        serve address
      done)
    (Spider.addresses spider);
  Engine.run net.engine;
  to_schedule spider (Array.of_list (List.rev !records))
