module Spider = Msts_platform.Spider
module Chain = Msts_platform.Chain
module Schedule = Msts_schedule.Schedule
module Spider_schedule = Msts_schedule.Spider_schedule
module Intervals = Msts_schedule.Intervals
module Plan = Msts_schedule.Plan
module Json = Msts_obs.Json

type resource = { busy : int; fraction : float }

type processor = {
  tasks : int;
  compute : int;
  starved : int;
  idle : int;
  fraction : float;
}

type node = { address : Spider.address; link : resource; proc : processor }

type t = {
  tasks : int;
  makespan : int;
  master_port : resource;
  nodes : node list; (* address order: leg-major, shallow first *)
}

let busy_total intervals =
  List.fold_left
    (fun acc { Intervals.duration; _ } -> acc + duration)
    0 intervals

let fraction_of ~makespan busy =
  if makespan <= 0 then 0.0 else float_of_int busy /. float_of_int makespan

(* Compute/starved/idle partition of [0, makespan) for one processor.
   The intervals are disjoint (one task at a time); in start order every
   gap before an execution is time the processor sat waiting for input
   ("starved"), and the tail after its last completion is plain idleness.
   The three parts sum to the makespan exactly, by construction. *)
let proc_usage ~makespan intervals =
  let sorted =
    List.sort
      (fun (a : int Intervals.interval) b -> compare a.start b.start)
      intervals
  in
  let compute = busy_total sorted in
  let cursor, starved =
    List.fold_left
      (fun (cursor, starved) { Intervals.start; duration; _ } ->
        (start + duration, starved + max 0 (start - cursor)))
      (0, 0) sorted
  in
  {
    tasks = List.length sorted;
    compute;
    starved;
    idle = max 0 (makespan - cursor);
    fraction = fraction_of ~makespan compute;
  }

let of_spider_schedule sched =
  let spider = Spider_schedule.spider sched in
  let makespan = Spider_schedule.makespan sched in
  let port_busy = busy_total (Spider_schedule.master_port_intervals sched) in
  let nodes =
    List.map
      (fun ({ Spider.leg; depth } as address) ->
        let link_busy =
          busy_total (Spider_schedule.leg_link_intervals sched ~leg ~link:depth)
        in
        {
          address;
          link = { busy = link_busy; fraction = fraction_of ~makespan link_busy };
          proc =
            proc_usage ~makespan
              (Spider_schedule.leg_proc_intervals sched ~leg ~depth);
        })
      (Spider.addresses spider)
  in
  {
    tasks = Spider_schedule.task_count sched;
    makespan;
    master_port = { busy = port_busy; fraction = fraction_of ~makespan port_busy };
    nodes;
  }

let of_plan = function
  | Plan.Spider sched -> of_spider_schedule sched
  | Plan.Chain sched -> of_spider_schedule (Spider_schedule.of_chain_schedule sched)

let of_execution (report : Netsim.execution_report) =
  of_spider_schedule report.Netsim.realized

let pct x = 100.0 *. x

let summary t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "tasks: %d, makespan: %d\n" t.tasks t.makespan;
  Printf.bprintf buf "master port: busy %d/%d (%5.1f%%)\n" t.master_port.busy
    t.makespan (pct t.master_port.fraction);
  let current_leg = ref 0 in
  List.iter
    (fun { address = { Spider.leg; depth }; link; proc } ->
      if leg <> !current_leg then begin
        current_leg := leg;
        Printf.bprintf buf "leg %d:\n" leg
      end;
      Printf.bprintf buf
        "  depth %-2d  link busy %-4d (%5.1f%%)  compute %-4d (%5.1f%%)  \
         starved %-4d idle %-4d  tasks %d\n"
        depth link.busy (pct link.fraction) proc.compute (pct proc.fraction)
        proc.starved proc.idle proc.tasks)
    t.nodes;
  Buffer.contents buf

let json_pct x = Json.Float (Float.round (1000.0 *. x) /. 10.0)

let to_json t =
  let legs =
    List.sort_uniq compare
      (List.map (fun n -> n.address.Spider.leg) t.nodes)
  in
  let leg_json l =
    let nodes =
      List.filter_map
        (fun { address = { Spider.leg; depth }; link; proc } ->
          if leg <> l then None
          else
            Some
              (Json.Obj
                 [
                   ("depth", Json.Int depth);
                   ("link_busy", Json.Int link.busy);
                   ("link_busy_pct", json_pct link.fraction);
                   ("tasks", Json.Int proc.tasks);
                   ("compute", Json.Int proc.compute);
                   ("starved", Json.Int proc.starved);
                   ("idle", Json.Int proc.idle);
                   ("cpu_busy_pct", json_pct proc.fraction);
                 ]))
        t.nodes
    in
    Json.Obj [ ("leg", Json.Int l); ("nodes", Json.List nodes) ]
  in
  Json.Obj
    [
      ("tasks", Json.Int t.tasks);
      ("makespan", Json.Int t.makespan);
      ( "master_port",
        Json.Obj
          [
            ("busy", Json.Int t.master_port.busy);
            ("busy_pct", json_pct t.master_port.fraction);
          ] );
      ("legs", Json.List (List.map leg_json legs));
    ]
